#include "common/status.h"

#include <gtest/gtest.h>

#include "common/table.h"

namespace aqsios {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::NotFound("trace.txt");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "trace.txt");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: trace.txt");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IO_ERROR");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::InvalidArgument("bad");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

StatusOr<double> Half(int n) {
  if (n % 2 != 0) return Status::InvalidArgument("odd");
  return n / 2.0;
}

Status UseHalf(int n, double* out) {
  StatusOr<double> half = Half(n);
  AQSIOS_RETURN_IF_ERROR(half.status());
  *out = half.value();
  return Status::Ok();
}

TEST(StatusOrTest, ReturnIfErrorPropagates) {
  double out = 0.0;
  EXPECT_TRUE(UseHalf(4, &out).ok());
  EXPECT_DOUBLE_EQ(out, 2.0);
  const Status bad = UseHalf(3, &out);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, AsciiAndCsvRendering) {
  Table table({"policy", "slowdown"});
  table.AddRow({"HNR", "2.9"});
  table.AddRow("HR", {3.875}, 4);
  const std::string ascii = table.ToAscii();
  EXPECT_NE(ascii.find("policy"), std::string::npos);
  EXPECT_NE(ascii.find("HNR"), std::string::npos);
  EXPECT_NE(ascii.find("3.875"), std::string::npos);
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("policy,slowdown"), std::string::npos);
  EXPECT_NE(csv.find("HR,3.875"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 3), "3.14");
  EXPECT_EQ(FormatDouble(1234.5, 5), "1234.5");  // significant digits
}

}  // namespace
}  // namespace aqsios
