// Tuple-train batching: equivalence and amortization guarantees.
//
// The batched dispatcher is only allowed to change *when* decisions happen,
// never *what* a tuple experiences beyond that:
//  * with the train path forced at train length 1 (a vanishingly small
//    batch_quantum), every policy must reproduce the per-tuple engine's
//    results exactly — same emissions, same response moments, same clock;
//  * the default batch_size=1 must serialize byte-identically to an
//    explicit batch_size=1 (the committed BENCH_sweep.json stays pinned);
//  * on a single-query one-operator workload with zero overhead cost,
//    batching must leave every individual tuple's response time unchanged
//    (work-conserving single server, FIFO order — the golden trace);
//  * schedule-independent single-stream totals (emitted, filtered, busy
//    time) must be invariant under any batch size;
//  * under §9.2 overhead charging, batching must actually amortize: fewer
//    scheduling points, less charged overhead time.

#include <vector>

#include <gtest/gtest.h>

#include "core/dsms.h"
#include "core/report.h"
#include "query/workload.h"

namespace aqsios::core {
namespace {

const sched::PolicyKind kAllPolicies[] = {
    sched::PolicyKind::kFcfs,        sched::PolicyKind::kRoundRobin,
    sched::PolicyKind::kSrpt,        sched::PolicyKind::kHr,
    sched::PolicyKind::kHnr,         sched::PolicyKind::kLsf,
    sched::PolicyKind::kBsd,         sched::PolicyKind::kBsdClustered,
    sched::PolicyKind::kChain,       sched::PolicyKind::kTwoLevelRr,
    sched::PolicyKind::kLpNorm,      sched::PolicyKind::kQosGraph,
};

query::Workload TestWorkload(uint64_t seed, bool multi_stream = false) {
  query::WorkloadConfig config;
  config.num_queries = 20;
  config.num_arrivals = 3000;
  config.utilization = 0.9;
  config.seed = seed;
  config.multi_stream = multi_stream;
  return query::GenerateWorkload(config);
}

void ExpectSameRun(const RunResult& a, const RunResult& b,
                   const std::string& what) {
  EXPECT_EQ(a.qos.tuples_emitted, b.qos.tuples_emitted) << what;
  EXPECT_EQ(a.qos.avg_response, b.qos.avg_response) << what;
  EXPECT_EQ(a.qos.avg_slowdown, b.qos.avg_slowdown) << what;
  EXPECT_EQ(a.qos.max_slowdown, b.qos.max_slowdown) << what;
  EXPECT_EQ(a.qos.l2_slowdown, b.qos.l2_slowdown) << what;
  EXPECT_EQ(a.counters.busy_time, b.counters.busy_time) << what;
  EXPECT_EQ(a.counters.end_time, b.counters.end_time) << what;
  EXPECT_EQ(a.counters.overhead_time, b.counters.overhead_time) << what;
  EXPECT_EQ(a.counters.scheduling_points, b.counters.scheduling_points)
      << what;
  EXPECT_EQ(a.counters.unit_executions, b.counters.unit_executions) << what;
  EXPECT_EQ(a.counters.tuples_filtered, b.counters.tuples_filtered) << what;
  EXPECT_EQ(a.counters.operator_invocations, b.counters.operator_invocations)
      << what;
}

class BatchingEquivalenceTest : public testing::TestWithParam<uint64_t> {};

// A vanishingly small batch_quantum caps every train at one tuple while
// still routing dispatch through the batched code path — the per-tuple and
// train-of-one engines must be indistinguishable for every policy.
TEST_P(BatchingEquivalenceTest, TrainOfOneMatchesPerTupleForEveryPolicy) {
  const query::Workload workload = TestWorkload(GetParam());
  for (const sched::PolicyKind kind : kAllPolicies) {
    const sched::PolicyConfig policy = sched::PolicyConfig::Of(kind);
    const RunResult per_tuple = Simulate(workload, policy);
    SimulationOptions forced;
    forced.batch_quantum = 1e-300;
    const RunResult train = Simulate(workload, policy, forced);
    EXPECT_GT(train.counters.train_dispatches, 0)
        << sched::PolicyKindName(kind) << ": batched path not engaged";
    EXPECT_EQ(train.counters.max_train_tuples, 1)
        << sched::PolicyKindName(kind);
    ExpectSameRun(per_tuple, train, sched::PolicyKindName(kind));
  }
}

TEST_P(BatchingEquivalenceTest, TrainOfOneMatchesPerTupleWithOverhead) {
  const query::Workload workload = TestWorkload(GetParam());
  for (const sched::PolicyKind kind :
       {sched::PolicyKind::kLsf, sched::PolicyKind::kBsd,
        sched::PolicyKind::kBsdClustered}) {
    const sched::PolicyConfig policy = sched::PolicyConfig::Of(kind);
    SimulationOptions charged;
    charged.charge_scheduling_overhead = true;
    const RunResult per_tuple = Simulate(workload, policy, charged);
    SimulationOptions forced = charged;
    forced.batch_quantum = 1e-300;
    const RunResult train = Simulate(workload, policy, forced);
    ExpectSameRun(per_tuple, train, sched::PolicyKindName(kind));
  }
}

TEST_P(BatchingEquivalenceTest, TrainOfOneMatchesAtOperatorLevel) {
  const query::Workload workload = TestWorkload(GetParam());
  for (const sched::PolicyKind kind :
       {sched::PolicyKind::kHnr, sched::PolicyKind::kBsd}) {
    const sched::PolicyConfig policy = sched::PolicyConfig::Of(kind);
    SimulationOptions options;
    options.level = exec::SchedulingLevel::kOperatorLevel;
    const RunResult per_tuple = Simulate(workload, policy, options);
    SimulationOptions forced = options;
    forced.batch_quantum = 1e-300;
    const RunResult train = Simulate(workload, policy, forced);
    ExpectSameRun(per_tuple, train,
                  std::string(sched::PolicyKindName(kind)) + "/op-level");
  }
}

TEST_P(BatchingEquivalenceTest, TrainOfOneMatchesOnWindowJoins) {
  const query::Workload workload =
      TestWorkload(GetParam(), /*multi_stream=*/true);
  for (const sched::PolicyKind kind :
       {sched::PolicyKind::kHnr, sched::PolicyKind::kLsf}) {
    const sched::PolicyConfig policy = sched::PolicyConfig::Of(kind);
    const RunResult per_tuple = Simulate(workload, policy);
    SimulationOptions forced;
    forced.batch_quantum = 1e-300;
    const RunResult train = Simulate(workload, policy, forced);
    ExpectSameRun(per_tuple, train,
                  std::string(sched::PolicyKindName(kind)) + "/joins");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchingEquivalenceTest,
                         testing::Values(1u, 7u, 42u));

// batch_size=1 (the default) must not merely be equivalent — it must be the
// *same engine*, serializing byte-for-byte identically. This is what pins
// the committed BENCH_sweep.json across the batching change.
TEST(BatchingDefaultTest, ExplicitBatchSizeOneSerializesIdentically) {
  const query::Workload workload = TestWorkload(42);
  for (const sched::PolicyKind kind :
       {sched::PolicyKind::kBsd, sched::PolicyKind::kHnr,
        sched::PolicyKind::kFcfs}) {
    const sched::PolicyConfig policy = sched::PolicyConfig::Of(kind);
    const RunResult implicit = Simulate(workload, policy);
    SimulationOptions explicit_one;
    explicit_one.batch_size = 1;
    const RunResult explicit_run = Simulate(workload, policy, explicit_one);
    EXPECT_EQ(implicit.counters.train_dispatches, 0)
        << sched::PolicyKindName(kind);
    EXPECT_EQ(RunResultToJson(implicit), RunResultToJson(explicit_run))
        << sched::PolicyKindName(kind);
  }
}

// Golden trace: one query, one operator, zero overhead cost. A single
// work-conserving server draining one FIFO emits every tuple at the same
// virtual instant no matter how many tuples each dispatch drains, so each
// individual response time must be bit-identical across batch sizes.
TEST(BatchingGoldenTraceTest, PerTupleResponseTimesUnchangedByBatching) {
  Dsms dsms(query::SelectivityMode::kCorrelatedAttribute);
  query::QuerySpec spec;
  spec.left_stream = 0;
  spec.left_ops = {query::MakeSelect(/*cost_ms=*/1.0, /*selectivity=*/0.6)};
  dsms.AddQuery(std::move(spec));

  // Bursts of 12 back-to-back tuples followed by a drain gap: deep enough
  // backlogs that batch>1 runs form real multi-tuple trains.
  stream::ArrivalTable arrivals;
  for (int i = 0; i < 480; ++i) {
    stream::Arrival a;
    a.id = i;
    a.stream = 0;
    a.time = static_cast<double>(i / 12) * 0.02 +
             static_cast<double>(i % 12) * 1e-4;
    a.attribute = static_cast<double>((i * 37) % 100) + 0.5;
    arrivals.arrivals.push_back(a);
  }
  dsms.SetArrivals(std::move(arrivals));

  SimulationOptions options;
  options.qos.track_outputs = true;
  const RunResult baseline =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kHnr), options);
  ASSERT_GT(baseline.qos.outputs.size(), 100u);

  for (const int batch : {2, 4, 16, 0}) {
    SimulationOptions batched = options;
    batched.batch_size = batch;
    const RunResult r =
        dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kHnr), batched);
    ASSERT_EQ(r.qos.outputs.size(), baseline.qos.outputs.size())
        << "batch=" << batch;
    EXPECT_GT(r.counters.max_train_tuples, 1)
        << "batch=" << batch << ": no multi-tuple train ever formed";
    for (size_t i = 0; i < baseline.qos.outputs.size(); ++i) {
      const metrics::OutputRecord& want = baseline.qos.outputs[i];
      const metrics::OutputRecord& got = r.qos.outputs[i];
      ASSERT_EQ(got.query, want.query) << "batch=" << batch << " tuple " << i;
      ASSERT_EQ(got.arrival_time, want.arrival_time)
          << "batch=" << batch << " tuple " << i;
      ASSERT_EQ(got.response, want.response)
          << "batch=" << batch << " tuple " << i;
      ASSERT_EQ(got.slowdown, want.slowdown)
          << "batch=" << batch << " tuple " << i;
    }
  }
}

// Which tuples survive their filters is frozen per (arrival, query,
// operator) — independent of execution order — so single-stream emission,
// filter, and busy-time totals may not move with the batch size even when
// batching reorders service.
TEST(BatchingInvariantsTest, ScheduleIndependentTotalsHoldAtAnyBatchSize) {
  const query::Workload workload = TestWorkload(42);
  for (const sched::PolicyKind kind :
       {sched::PolicyKind::kHnr, sched::PolicyKind::kBsd,
        sched::PolicyKind::kRoundRobin}) {
    const sched::PolicyConfig policy = sched::PolicyConfig::Of(kind);
    const RunResult base = Simulate(workload, policy);
    for (const int batch : {4, 32, 0}) {
      SimulationOptions options;
      options.batch_size = batch;
      const RunResult r = Simulate(workload, policy, options);
      const std::string what = std::string(sched::PolicyKindName(kind)) +
                               "/batch=" + std::to_string(batch);
      EXPECT_EQ(r.qos.tuples_emitted, base.qos.tuples_emitted) << what;
      EXPECT_EQ(r.counters.tuples_filtered, base.counters.tuples_filtered)
          << what;
      EXPECT_NEAR(r.counters.busy_time, base.counters.busy_time, 1e-9)
          << what;
      EXPECT_EQ(r.counters.unit_executions, base.counters.unit_executions)
          << what;
      EXPECT_GT(r.counters.train_dispatches, 0) << what;
      EXPECT_LT(r.counters.train_dispatches, r.counters.train_tuples)
          << what << ": trains never exceeded one tuple";
    }
  }
}

// The point of batching (§9.2, Figure 14): one priority decision — and one
// overhead charge — buys up to k tuples of progress.
TEST(BatchingAmortizationTest, FewerDecisionsAndLessOverheadCharged) {
  const query::Workload workload = TestWorkload(42);
  for (const sched::PolicyKind kind :
       {sched::PolicyKind::kLsf, sched::PolicyKind::kBsd}) {
    const sched::PolicyConfig policy = sched::PolicyConfig::Of(kind);
    SimulationOptions charged;
    charged.charge_scheduling_overhead = true;
    const RunResult per_tuple = Simulate(workload, policy, charged);
    SimulationOptions batched = charged;
    batched.batch_size = 8;
    const RunResult r = Simulate(workload, policy, batched);
    const std::string what = sched::PolicyKindName(kind);
    EXPECT_LT(r.counters.scheduling_points,
              per_tuple.counters.scheduling_points)
        << what;
    EXPECT_LT(r.counters.overhead_time, per_tuple.counters.overhead_time)
        << what;
    EXPECT_EQ(r.qos.tuples_emitted, per_tuple.qos.tuples_emitted) << what;
    EXPECT_LE(r.qos.avg_response, per_tuple.qos.avg_response)
        << what << ": amortization did not help under overload";
  }
}

// The quantum knob: with batch_size unbounded, a quantum of a few expected
// costs caps train length by simulated-time budget instead of tuple count.
TEST(BatchingQuantumTest, QuantumBoundsTrainsByExpectedCost) {
  const query::Workload workload = TestWorkload(42);
  const sched::PolicyConfig policy =
      sched::PolicyConfig::Of(sched::PolicyKind::kBsd);
  SimulationOptions unbounded;
  unbounded.batch_size = 0;
  const RunResult free_run = Simulate(workload, policy, unbounded);
  ASSERT_GT(free_run.counters.max_train_tuples, 4);

  SimulationOptions quantum = unbounded;
  // The workload's cheapest operator cost bounds expected unit cost below,
  // so a tiny multiple of it keeps trains far shorter than the unbounded
  // run's deepest drain.
  quantum.batch_quantum = 2.0 * workload.plan.MinOperatorCost();
  const RunResult bounded = Simulate(workload, policy, quantum);
  EXPECT_LT(bounded.counters.max_train_tuples,
            free_run.counters.max_train_tuples);
  EXPECT_EQ(bounded.qos.tuples_emitted, free_run.qos.tuples_emitted);
}

}  // namespace
}  // namespace aqsios::core
