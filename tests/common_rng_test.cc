#include "common/rng.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace aqsios {
namespace {

TEST(RngTest, UniformWithinBounds) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u) << "all values of the range should appear";
}

TEST(RngTest, ExponentialMean) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(4);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.7)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.7, 0.01);
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, ForkedSeedsDiffer) {
  Rng parent(5);
  Rng child_a(parent.Fork());
  Rng child_b(parent.Fork());
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child_a.NextUint64() == child_b.NextUint64()) ++equal;
  }
  EXPECT_EQ(equal, 0) << "forked streams should be independent";
}

TEST(MixTest, Avalanche) {
  // Flipping one input bit should change roughly half the output bits.
  const uint64_t base = Mix64(0x123456789abcdefULL);
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const uint64_t flipped = Mix64(0x123456789abcdefULL ^ (1ULL << bit));
    total_flips += __builtin_popcountll(base ^ flipped);
  }
  const double average = total_flips / 64.0;
  EXPECT_GT(average, 24.0);
  EXPECT_LT(average, 40.0);
}

TEST(MixTest, MixKeysOrderSensitive) {
  EXPECT_NE(MixKeys(1, 2), MixKeys(2, 1));
  EXPECT_NE(MixKeys(1, 2, 3), MixKeys(3, 2, 1));
  EXPECT_NE(MixKeys(1, 2, 3, 4), MixKeys(4, 3, 2, 1));
  EXPECT_EQ(MixKeys(1, 2, 3), MixKeys(1, 2, 3));
}

TEST(MixTest, NoShortCycleCollisions) {
  std::set<uint64_t> values;
  for (uint64_t i = 0; i < 100000; ++i) {
    values.insert(Mix64(i));
  }
  EXPECT_EQ(values.size(), 100000u);
}

TEST(FrozenTest, UniformInUnitInterval) {
  for (uint64_t i = 0; i < 1000; ++i) {
    const double v = FrozenUniform(i);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(FrozenTest, MeanNearHalf) {
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += FrozenUniform(MixKeys(77, static_cast<uint64_t>(i)));
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(FrozenTest, IndependenceAcrossSalts) {
  // Outcomes under two different salts should be uncorrelated.
  int both = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const bool a = FrozenBernoulli(MixKeys(1, static_cast<uint64_t>(i)), 0.5);
    const bool b = FrozenBernoulli(MixKeys(2, static_cast<uint64_t>(i)), 0.5);
    if (a && b) ++both;
  }
  EXPECT_NEAR(static_cast<double>(both) / n, 0.25, 0.01);
}

}  // namespace
}  // namespace aqsios
