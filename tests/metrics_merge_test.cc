// Merge-of-parts == single-pass, exactly — the aggregation spine the sharded
// runtime stands on (core/sharded_dsms.h). Test values are dyadic rationals
// (representable in binary floating point), so every "equal" below is exact
// EXPECT_EQ on doubles, not a tolerance.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "exec/engine.h"
#include "metrics/qos.h"
#include "obs/attribution.h"
#include "obs/histogram.h"

namespace aqsios {
namespace {

// Dyadic sample spread over several log-buckets, with repeats (exercising
// the memo cache) and values below min_value (underflow bucket).
std::vector<double> SampleValues() {
  std::vector<double> values;
  for (int i = 0; i < 400; ++i) {
    values.push_back(0.25 * (1 + i % 37));        // repeats
    values.push_back(1.0 + 0.5 * (i % 9));        // low buckets
    values.push_back(1024.0 * (1 + i % 5));       // high buckets
    if (i % 11 == 0) values.push_back(0.0);       // underflow
    // Past the last bucket edge (~2^40.9 for min_value=1) but dyadic and
    // small enough that partial sums stay exact in any order.
    if (i % 97 == 0) values.push_back(4398046511104.0);  // 2^42
  }
  return values;
}

TEST(HistogramMergeTest, MergeOfPartsEqualsSinglePass) {
  const obs::HistogramOptions options{.min_value = 1.0};
  obs::Histogram whole(options);
  obs::Histogram part_a(options);
  obs::Histogram part_b(options);
  const std::vector<double> values = SampleValues();
  for (size_t i = 0; i < values.size(); ++i) {
    whole.Add(values[i]);
    (i % 3 == 0 ? part_a : part_b).Add(values[i]);
  }
  part_a.Merge(part_b);

  EXPECT_EQ(part_a.count(), whole.count());
  EXPECT_EQ(part_a.sum(), whole.sum());
  EXPECT_EQ(part_a.Min(), whole.Min());
  EXPECT_EQ(part_a.Max(), whole.Max());
  EXPECT_EQ(part_a.overflow(), whole.overflow());
  // Log-bucket alignment: identical options => identical bucket edges, so
  // the merged bucket counts must match the single pass bucket for bucket.
  ASSERT_EQ(part_a.num_buckets(), whole.num_buckets());
  for (int b = 0; b < whole.num_buckets(); ++b) {
    EXPECT_EQ(part_a.bucket_count(b), whole.bucket_count(b)) << "bucket " << b;
    EXPECT_EQ(part_a.BucketLowerEdge(b), whole.BucketLowerEdge(b));
  }
  // Quantiles are pure functions of (buckets, min, max, count): p99/p999
  // of the merge must be bit-equal to the single pass.
  for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(part_a.Quantile(q), whole.Quantile(q)) << "q=" << q;
  }
  const obs::HistogramSummary merged = part_a.Summarize();
  const obs::HistogramSummary single = whole.Summarize();
  EXPECT_EQ(merged.count, single.count);
  EXPECT_EQ(merged.mean, single.mean);
  EXPECT_EQ(merged.p50, single.p50);
  EXPECT_EQ(merged.p99, single.p99);
}

TEST(HistogramMergeTest, MergeIntoEmptyAndFromEmpty) {
  obs::Histogram a;
  obs::Histogram b;
  b.Add(0.5);
  b.Add(2.0);
  a.Merge(b);  // empty <- nonempty
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.Min(), 0.5);
  EXPECT_EQ(a.Max(), 2.0);
  obs::Histogram empty;
  a.Merge(empty);  // nonempty <- empty: unchanged
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.sum(), 2.5);
}

TEST(RunningStatsMergeTest, MergeOfPartsEqualsSinglePass) {
  RunningStats whole;
  RunningStats part_a;
  RunningStats part_b;
  for (int i = 0; i < 100; ++i) {
    const double v = 0.125 * (i % 17) + (i % 2 ? 4.0 : 0.5);
    whole.Add(v);
    (i < 40 ? part_a : part_b).Add(v);
  }
  part_a.Merge(part_b);
  EXPECT_EQ(part_a.count(), whole.count());
  EXPECT_EQ(part_a.sum(), whole.sum());
  EXPECT_EQ(part_a.sum_squares(), whole.sum_squares());
  EXPECT_EQ(part_a.Min(), whole.Min());
  EXPECT_EQ(part_a.Max(), whole.Max());
}

TEST(StageAttributionMergeTest, ComponentsMergeAndPeriodPropagates) {
  obs::StageAttribution a;
  obs::StageAttribution b;
  b.sample_every = 32;
  b.AddSample(/*response=*/1.5, /*wait=*/1.0, /*overhead=*/0.25,
              /*busy=*/0.25);
  b.AddSample(3.0, 2.0, 0.5, 0.5);
  b.dependency_delay.Add(0.125);
  a.Merge(b);
  EXPECT_EQ(a.sample_every, 32);
  EXPECT_EQ(a.samples(), 2);
  EXPECT_EQ(a.response.sum(), 4.5);
  EXPECT_EQ(a.queue_wait.sum(), 3.0);
  EXPECT_EQ(a.sched_overhead.sum(), 0.75);
  EXPECT_EQ(a.processing.sum(), 0.75);
  EXPECT_EQ(a.dependency_delay.count(), 1);
}

exec::RunCounters MakeCounters(int64_t scale, double busy, double end,
                               int64_t peak, double avg_queued) {
  exec::RunCounters c;
  c.scheduling_points = 10 * scale;
  c.unit_executions = 20 * scale;
  c.operator_invocations = 30 * scale;
  c.tuples_emitted = 40 * scale;
  c.tuples_filtered = 5 * scale;
  c.composites_generated = scale;
  c.overhead_operations = 2 * scale;
  c.adaptation_ticks = scale;
  c.decision_candidates = 100 * scale;
  c.priority_computations = 50 * scale;
  c.train_dispatches = 4 * scale;
  c.train_tuples = 16 * scale;
  c.max_train_tuples = 4 + scale;
  c.busy_time = busy;
  c.overhead_time = busy / 4.0;
  c.end_time = end;
  c.peak_queued_tuples = peak;
  c.avg_queued_tuples = avg_queued;
  for (int i = 0; i < 8; ++i) {
    c.queue_length_hist.Add(static_cast<double>(1 + (i + scale) % 5));
    c.exec_busy_hist.Add(0.001 * static_cast<double>(1 + i % 3));
  }
  c.queue_length = c.queue_length_hist.Summarize();
  c.exec_busy = c.exec_busy_hist.Summarize();
  return c;
}

TEST(RunCountersMergeTest, CountsSumClocksMaxQueueAveragesReweight) {
  exec::RunCounters a = MakeCounters(1, /*busy=*/2.0, /*end=*/8.0,
                                     /*peak=*/10, /*avg_queued=*/2.0);
  const exec::RunCounters b = MakeCounters(3, 3.0, 16.0, 7, 0.5);
  a.Merge(b);

  EXPECT_EQ(a.scheduling_points, 40);
  EXPECT_EQ(a.unit_executions, 80);
  EXPECT_EQ(a.tuples_emitted, 160);
  EXPECT_EQ(a.decision_candidates, 400);
  EXPECT_EQ(a.train_dispatches, 16);
  EXPECT_EQ(a.max_train_tuples, 7);  // max, not sum
  EXPECT_EQ(a.busy_time, 5.0);
  EXPECT_EQ(a.overhead_time, 1.25);
  // Shards run concurrently on the virtual clock: the merged run ends when
  // the last shard drains.
  EXPECT_EQ(a.end_time, 16.0);
  // Concurrent shards each hold their peak simultaneously-queued memory.
  EXPECT_EQ(a.peak_queued_tuples, 17);
  // avg re-weights by queued-tuple-seconds: (2*8 + 0.5*16) / 16 = 1.5.
  EXPECT_EQ(a.avg_queued_tuples, 1.5);
  // Summaries are rebuilt from the merged full histograms.
  EXPECT_EQ(a.queue_length.count, a.queue_length_hist.count());
  EXPECT_EQ(a.queue_length.count, 16);
  EXPECT_EQ(a.queue_length.p50, a.queue_length_hist.Quantile(0.5));
  EXPECT_EQ(a.exec_busy.count, 16);
}

// ---------------------------------------------------------------------------
// QosCollector::MergeFrom — the full aggregation path.

metrics::QosCollector::Options FullTracking() {
  metrics::QosCollector::Options options;
  options.track_per_class = true;
  options.track_per_query = true;
  options.timeline_bucket = 0.5;
  options.track_outputs = true;
  return options;
}

struct FakeOutput {
  int32_t query;
  int cost_class;
  double selectivity;
  double arrival;
  double response;
  double slowdown;
};

std::vector<FakeOutput> FakeOutputs() {
  std::vector<FakeOutput> outputs;
  for (int i = 0; i < 240; ++i) {
    FakeOutput o;
    o.query = i % 6;
    o.cost_class = o.query % 3;
    o.selectivity = 0.5;
    o.arrival = 0.125 * i;
    o.response = 0.25 + 0.0625 * (i % 13);
    o.slowdown = 1.0 + 0.5 * (i % 21);
    outputs.push_back(o);
  }
  return outputs;
}

TEST(QosMergeTest, MergeOfShardsEqualsSinglePass) {
  metrics::QosCollector whole(FullTracking());
  // Two "shards" with local id spaces: shard 0 owns global queries {0,2,4},
  // shard 1 owns {1,3,5}; outputs are routed by ownership, as the sharded
  // runtime routes by assignment.
  metrics::QosCollector shard0(FullTracking());
  metrics::QosCollector shard1(FullTracking());
  const std::vector<int32_t> map0 = {0, 2, 4};  // local -> global
  const std::vector<int32_t> map1 = {1, 3, 5};
  for (const FakeOutput& o : FakeOutputs()) {
    whole.RecordOutput(o.query, o.cost_class, o.selectivity, o.arrival,
                       o.response, o.slowdown);
    const int32_t local = o.query / 2;
    (o.query % 2 == 0 ? shard0 : shard1)
        .RecordOutput(local, o.cost_class, o.selectivity, o.arrival,
                      o.response, o.slowdown);
  }
  metrics::QosCollector merged(FullTracking());
  merged.MergeFrom(shard0, map0);
  merged.MergeFrom(shard1, map1);

  const metrics::QosSnapshot want = whole.Snapshot();
  const metrics::QosSnapshot got = merged.Snapshot();
  EXPECT_EQ(got.tuples_emitted, want.tuples_emitted);
  EXPECT_EQ(got.avg_response, want.avg_response);
  EXPECT_EQ(got.max_response, want.max_response);
  EXPECT_EQ(got.avg_slowdown, want.avg_slowdown);
  EXPECT_EQ(got.max_slowdown, want.max_slowdown);
  EXPECT_EQ(got.l2_slowdown, want.l2_slowdown);
  EXPECT_EQ(got.rms_slowdown, want.rms_slowdown);
  // Histogram-backed quantiles: p99/p999 invariance under partitioning.
  EXPECT_EQ(got.p50_slowdown, want.p50_slowdown);
  EXPECT_EQ(got.p95_slowdown, want.p95_slowdown);
  EXPECT_EQ(got.p99_slowdown, want.p99_slowdown);
  EXPECT_EQ(got.p999_slowdown, want.p999_slowdown);

  // Per-class and per-query maps merge key-exactly (ids back in the global
  // space via the query_id_map).
  ASSERT_EQ(got.per_class_slowdown.size(), want.per_class_slowdown.size());
  for (const auto& [key, stats] : want.per_class_slowdown) {
    const auto& other = got.per_class_slowdown.at(key);
    EXPECT_EQ(other.count(), stats.count());
    EXPECT_EQ(other.sum(), stats.sum());
    EXPECT_EQ(other.sum_squares(), stats.sum_squares());
  }
  ASSERT_EQ(got.per_query_slowdown.size(), want.per_query_slowdown.size());
  for (const auto& [query, stats] : want.per_query_slowdown) {
    const auto& other = got.per_query_slowdown.at(query);
    EXPECT_EQ(other.count(), stats.count());
    EXPECT_EQ(other.sum(), stats.sum());
  }
  EXPECT_EQ(got.JainFairnessIndex(), want.JainFairnessIndex());

  // Timeline buckets key on arrival time, which sharding preserves.
  EXPECT_EQ(got.timeline_bucket, want.timeline_bucket);
  ASSERT_EQ(got.slowdown_timeline_mean.size(),
            want.slowdown_timeline_mean.size());
  for (size_t i = 0; i < want.slowdown_timeline_mean.size(); ++i) {
    EXPECT_EQ(got.slowdown_timeline_mean[i], want.slowdown_timeline_mean[i]);
    EXPECT_EQ(got.slowdown_timeline_max[i], want.slowdown_timeline_max[i]);
  }

  // Outputs append in merge order (documented), so compare as multisets of
  // identifying pairs: the same tuples must be present.
  ASSERT_EQ(got.outputs.size(), want.outputs.size());
  int64_t want_sum = 0;
  int64_t got_sum = 0;
  for (size_t i = 0; i < want.outputs.size(); ++i) {
    want_sum += want.outputs[i].query;
    got_sum += got.outputs[i].query;
  }
  EXPECT_EQ(got_sum, want_sum);
}

TEST(QosMergeTest, IdentityMapAndEmptyShard) {
  metrics::QosCollector whole(FullTracking());
  metrics::QosCollector shard(FullTracking());
  for (const FakeOutput& o : FakeOutputs()) {
    whole.RecordOutput(o.query, o.cost_class, o.selectivity, o.arrival,
                       o.response, o.slowdown);
    shard.RecordOutput(o.query, o.cost_class, o.selectivity, o.arrival,
                       o.response, o.slowdown);
  }
  metrics::QosCollector merged(FullTracking());
  merged.MergeFrom(shard, {});  // empty map = identity
  const metrics::QosCollector empty(FullTracking());
  merged.MergeFrom(empty, {});  // merging an idle shard changes nothing
  const metrics::QosSnapshot want = whole.Snapshot();
  const metrics::QosSnapshot got = merged.Snapshot();
  EXPECT_EQ(got.tuples_emitted, want.tuples_emitted);
  EXPECT_EQ(got.avg_slowdown, want.avg_slowdown);
  EXPECT_EQ(got.p999_slowdown, want.p999_slowdown);
  ASSERT_EQ(got.per_query_slowdown.size(), want.per_query_slowdown.size());
}

}  // namespace
}  // namespace aqsios
