// Regression tests for scheduling-overhead accounting (§9.2, Figures 13–14).
//
// The overhead experiments compare policies by the number of priority
// computations and comparisons their decisions need, so every policy must
// charge SchedulingCost consistently: scan-based time-varying policies (LSF,
// BSD, lp-norm) charge one computation and one comparison per unit touched;
// O(1)/amortized policies (FCFS, RR, static-priority, two-level) charge
// zero. These tests pin the exact counts for small fixed configurations so
// accounting drift shows up as a diff, not as a silently biased figure.

#include <gtest/gtest.h>

#include "core/dsms.h"
#include "sched/basic_policies.h"
#include "sched/lp_norm_policy.h"
#include "sched/two_level.h"

namespace aqsios::sched {
namespace {

Unit MakeUnit(int id, double output_rate, double normalized_rate, double phi,
              SimTime ideal_time) {
  Unit unit;
  unit.id = id;
  unit.kind = UnitKind::kQueryChain;
  unit.query = id;
  unit.input_stream = 0;
  unit.stats.output_rate = output_rate;
  unit.stats.normalized_rate = normalized_rate;
  unit.stats.phi = phi;
  unit.stats.ideal_time = ideal_time;
  return unit;
}

UnitTable FourUnits() {
  UnitTable units;
  units.push_back(MakeUnit(0, 5.0, 0.5, 0.05, 10.0));
  units.push_back(MakeUnit(1, 2.0, 2.0, 2.0, 1.0));
  units.push_back(MakeUnit(2, 3.0, 0.75, 0.1875, 4.0));
  units.push_back(MakeUnit(3, 1.0, 1.0, 1.0, 2.0));
  return units;
}

void Enqueue(UnitTable& units, Scheduler& scheduler, int unit,
             stream::ArrivalId arrival, SimTime time) {
  units[static_cast<size_t>(unit)].queue.push_back(QueueEntry{arrival, time});
  scheduler.OnEnqueue(unit);
}

/// Runs one decision and returns the charged cost.
SchedulingCost PickCost(Scheduler& scheduler, SimTime now) {
  SchedulingCost cost;
  std::vector<int> out;
  EXPECT_TRUE(scheduler.PickNext(now, &cost, &out));
  return cost;
}

TEST(OverheadAccountingTest, FcfsChargesZero) {
  UnitTable units = FourUnits();
  FcfsScheduler scheduler;
  scheduler.Attach(&units);
  Enqueue(units, scheduler, 0, 0, 0.0);
  Enqueue(units, scheduler, 1, 1, 0.0);
  const SchedulingCost cost = PickCost(scheduler, 1.0);
  EXPECT_EQ(cost.total(), 0);
}

TEST(OverheadAccountingTest, RoundRobinChargesZero) {
  UnitTable units = FourUnits();
  RoundRobinScheduler scheduler;
  scheduler.Attach(&units);
  Enqueue(units, scheduler, 2, 0, 0.0);
  const SchedulingCost cost = PickCost(scheduler, 1.0);
  EXPECT_EQ(cost.total(), 0);
}

TEST(OverheadAccountingTest, StaticPriorityChargesZero) {
  UnitTable units = FourUnits();
  StaticPriorityScheduler scheduler(StaticPolicy::kHnr);
  scheduler.Attach(&units);
  Enqueue(units, scheduler, 0, 0, 0.0);
  Enqueue(units, scheduler, 1, 1, 0.0);
  Enqueue(units, scheduler, 2, 2, 0.0);
  const SchedulingCost cost = PickCost(scheduler, 1.0);
  EXPECT_EQ(cost.total(), 0);
}

TEST(OverheadAccountingTest, TwoLevelRrChargesZero) {
  UnitTable units = FourUnits();
  TwoLevelRrScheduler scheduler;
  scheduler.Attach(&units);
  Enqueue(units, scheduler, 1, 0, 0.0);
  const SchedulingCost cost = PickCost(scheduler, 1.0);
  EXPECT_EQ(cost.total(), 0);
}

TEST(OverheadAccountingTest, LsfChargesPerReadyUnit) {
  UnitTable units = FourUnits();
  LsfScheduler scheduler;
  scheduler.Attach(&units);
  Enqueue(units, scheduler, 0, 0, 0.0);
  Enqueue(units, scheduler, 1, 1, 0.0);
  Enqueue(units, scheduler, 3, 2, 0.0);
  // Three ready units: one computation + one comparison each.
  SchedulingCost cost = PickCost(scheduler, 1.0);
  EXPECT_EQ(cost.computations, 3);
  EXPECT_EQ(cost.comparisons, 3);
  // Idle units (2) are never touched; a lone ready unit still costs 1+1.
  units[0].queue.clear();
  scheduler.OnDequeue(0);
  units[1].queue.clear();
  scheduler.OnDequeue(1);
  cost = PickCost(scheduler, 2.0);
  EXPECT_EQ(cost.computations, 1);
  EXPECT_EQ(cost.comparisons, 1);
}

TEST(OverheadAccountingTest, BsdNaiveChargesAllUnits) {
  UnitTable units = FourUnits();
  BsdScheduler scheduler(/*count_all_units=*/true);
  scheduler.Attach(&units);
  Enqueue(units, scheduler, 1, 0, 0.0);
  // §6.2 naive accounting: all four installed units are touched.
  const SchedulingCost cost = PickCost(scheduler, 1.0);
  EXPECT_EQ(cost.computations, 4);
  EXPECT_EQ(cost.comparisons, 4);
}

TEST(OverheadAccountingTest, BsdReadyOnlyChargesReadyUnits) {
  UnitTable units = FourUnits();
  BsdScheduler scheduler(/*count_all_units=*/false);
  scheduler.Attach(&units);
  Enqueue(units, scheduler, 1, 0, 0.0);
  Enqueue(units, scheduler, 2, 1, 0.0);
  const SchedulingCost cost = PickCost(scheduler, 1.0);
  EXPECT_EQ(cost.computations, 2);
  EXPECT_EQ(cost.comparisons, 2);
}

TEST(OverheadAccountingTest, LpNormChargesPerReadyUnit) {
  UnitTable units = FourUnits();
  LpNormScheduler scheduler(2.0);
  scheduler.Attach(&units);
  Enqueue(units, scheduler, 0, 0, 0.0);
  Enqueue(units, scheduler, 3, 1, 0.0);
  const SchedulingCost cost = PickCost(scheduler, 1.0);
  EXPECT_EQ(cost.computations, 2);
  EXPECT_EQ(cost.comparisons, 2);
}

// End-to-end: with a single registered query the LSF ready set is never
// larger than one, so every successful pick charges exactly 1+1 and the run
// counter must equal 2 × unit_executions. Before the fix LSF charged nothing
// and this counter stayed 0, biasing the Figure 13–14 comparisons.
TEST(OverheadAccountingTest, LsfRunChargesTwoOpsPerPick) {
  core::Dsms dsms(query::SelectivityMode::kCorrelatedAttribute);
  query::QuerySpec spec;
  spec.left_stream = 0;
  spec.left_ops = {query::MakeSelect(1.0, 0.5), query::MakeProject(1.0)};
  dsms.AddQuery(std::move(spec));
  stream::ArrivalTable table;
  for (int i = 0; i < 40; ++i) {
    stream::Arrival a;
    a.id = i;
    a.stream = 0;
    a.time = 0.01 * i;
    a.attribute = 1.0;
    table.arrivals.push_back(a);
  }
  dsms.SetArrivals(std::move(table));
  const core::RunResult r = dsms.Run(PolicyConfig::Of(PolicyKind::kLsf));
  EXPECT_GT(r.counters.unit_executions, 0);
  EXPECT_EQ(r.counters.overhead_operations, 2 * r.counters.unit_executions);
}

}  // namespace
}  // namespace aqsios::sched
