// QoS-aware load shedding (docs/overload.md): policy-consistent shed
// priorities, bounded queues under overload, first-class shed accounting,
// and — above all — byte-identity of every report when shedding is off.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dsms.h"
#include "core/report.h"
#include "query/workload.h"
#include "sched/policy.h"
#include "sched/scheduler.h"
#include "sched/unit.h"

namespace aqsios::exec {
namespace {

constexpr sched::PolicyKind kAllPolicies[] = {
    sched::PolicyKind::kFcfs,        sched::PolicyKind::kRoundRobin,
    sched::PolicyKind::kSrpt,        sched::PolicyKind::kHr,
    sched::PolicyKind::kHnr,         sched::PolicyKind::kLsf,
    sched::PolicyKind::kBsd,         sched::PolicyKind::kBsdClustered,
    sched::PolicyKind::kChain,       sched::PolicyKind::kTwoLevelRr,
    sched::PolicyKind::kLpNorm,      sched::PolicyKind::kQosGraph,
};

query::Workload Overloaded(double utilization = 2.0, int queries = 40,
                           int64_t arrivals = 2000) {
  query::WorkloadConfig config;
  config.num_queries = queries;
  config.num_arrivals = arrivals;
  config.utilization = utilization;
  config.seed = 42;
  return query::GenerateWorkload(config);
}

TEST(ShedTest, DisabledSheddingIsByteIdenticalAcrossAllPolicies) {
  // The shed wiring must be invisible until enabled: for every policy, a
  // run with an explicit (disabled) ShedConfig carrying exotic knob values
  // serializes byte-for-byte like a plain default run, and no shed keys
  // appear anywhere in the JSON.
  const query::Workload workload = Overloaded(0.9, 20, 1500);
  for (const sched::PolicyKind kind : kAllPolicies) {
    const sched::PolicyConfig policy = sched::PolicyConfig::Of(kind);
    const core::RunResult plain =
        core::Simulate(workload, policy, core::SimulationOptions{});
    core::SimulationOptions options;
    options.shed.enabled = false;
    options.shed.queue_cap = 7;        // must be ignored while disabled
    options.shed.shed_fraction = 1.0;  // must be ignored while disabled
    const core::RunResult configured = core::Simulate(workload, policy, options);
    const std::string plain_json = core::RunResultToJson(plain);
    EXPECT_EQ(plain_json, core::RunResultToJson(configured))
        << "policy " << sched::PolicyKindName(kind);
    EXPECT_EQ(plain_json.find("shed"), std::string::npos)
        << "policy " << sched::PolicyKindName(kind);
    EXPECT_EQ(plain.counters.tuples_offered, 0);
    EXPECT_EQ(plain.counters.tuples_shed, 0);
  }
}

TEST(ShedTest, FullSheddingBoundsThePeakQueueUnderOverload) {
  const query::Workload workload = Overloaded();
  core::SimulationOptions options;
  options.shed.enabled = true;
  options.shed.queue_cap = 256;
  options.shed.shed_fraction = 1.0;
  const core::RunResult shed = core::Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr), options);
  const core::RunResult unshed = core::Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr));

  // Utilization 2.0 drives the unshed queue far past the cap; with every
  // leaf sheddable the queue can never exceed it.
  EXPECT_GT(unshed.counters.peak_queued_tuples, 256);
  EXPECT_LE(shed.counters.peak_queued_tuples, 256);
  EXPECT_GT(shed.counters.tuples_shed, 0);
  EXPECT_LT(shed.counters.tuples_shed, shed.counters.tuples_offered);
  EXPECT_LT(shed.qos.tuples_emitted, unshed.qos.tuples_emitted);
}

TEST(ShedTest, ShedTuplesAreFirstClassInAccounting) {
  const query::Workload workload = Overloaded();
  core::SimulationOptions options;
  options.shed.enabled = true;
  options.shed.queue_cap = 256;
  options.shed.shed_fraction = 1.0;
  const core::RunResult result = core::Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr), options);

  // The QoS snapshot surfaces the loss without the collector ever seeing a
  // shed tuple: slowdown moments are over delivered tuples only.
  EXPECT_EQ(result.qos.shed_count, result.counters.tuples_shed);
  EXPECT_DOUBLE_EQ(result.qos.shed_ratio, result.counters.ShedRatio());
  EXPECT_GT(result.qos.shed_ratio, 0.0);
  EXPECT_LT(result.qos.shed_ratio, 1.0);

  // And the report carries both the qos and counters shed blocks.
  const std::string json = core::RunResultToJson(result);
  EXPECT_NE(json.find("\"shed_count\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shed_ratio\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shed\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"offered\":"), std::string::npos) << json;
}

TEST(ShedTest, ZeroFractionShedsNothingButStillAccountsOffers) {
  const query::Workload workload = Overloaded();
  core::SimulationOptions options;
  options.shed.enabled = true;
  options.shed.queue_cap = 256;
  options.shed.shed_fraction = 0.0;
  const core::RunResult result = core::Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr), options);
  const core::RunResult plain = core::Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr));
  EXPECT_GT(result.counters.tuples_offered, 0);
  EXPECT_EQ(result.counters.tuples_shed, 0);
  // Virtual results are untouched when the sheddable set is empty.
  EXPECT_EQ(result.qos.tuples_emitted, plain.qos.tuples_emitted);
  EXPECT_DOUBLE_EQ(result.qos.avg_slowdown, plain.qos.avg_slowdown);
}

TEST(ShedTest, SheddingIsDeterministic) {
  const query::Workload workload = Overloaded();
  for (const sched::PolicyKind kind :
       {sched::PolicyKind::kHnr, sched::PolicyKind::kLsf,
        sched::PolicyKind::kBsd}) {
    core::SimulationOptions options;
    options.shed.enabled = true;
    options.shed.queue_cap = 512;
    options.shed.shed_fraction = 0.5;
    const sched::PolicyConfig policy = sched::PolicyConfig::Of(kind);
    const core::RunResult a = core::Simulate(workload, policy, options);
    const core::RunResult b = core::Simulate(workload, policy, options);
    EXPECT_EQ(core::RunResultToJson(a), core::RunResultToJson(b))
        << "policy " << sched::PolicyKindName(kind);
  }
}

TEST(ShedTest, ShedRatioGrowsWithTheSheddableFraction) {
  const query::Workload workload = Overloaded();
  double previous = -1.0;
  for (const double fraction : {0.0, 0.25, 0.5, 1.0}) {
    core::SimulationOptions options;
    options.shed.enabled = true;
    options.shed.queue_cap = 256;
    options.shed.shed_fraction = fraction;
    const core::RunResult result = core::Simulate(
        workload, sched::PolicyConfig::Of(sched::PolicyKind::kBsd), options);
    EXPECT_GE(result.counters.ShedRatio(), previous)
        << "fraction " << fraction;
    previous = result.counters.ShedRatio();
  }
  EXPECT_GT(previous, 0.0);
}

// The shed priority is the policy's marginal-slowdown line slope: the
// shedder drops from the flattest lines first, so shedding is consistent
// with what the policy would have served last anyway.
TEST(ShedPriorityTest, MatchesEachPolicysPriorityLine) {
  sched::Unit unit;
  unit.stats.selectivity = 0.8;
  unit.stats.expected_cost = 0.002;
  unit.stats.output_rate = 400.0;
  unit.stats.normalized_rate = 50.0;
  unit.stats.phi = 6.25;
  unit.stats.ideal_time = 0.016;

  const auto shed_priority = [&](sched::PolicyKind kind) {
    sched::PolicyConfig policy = sched::PolicyConfig::Of(kind);
    return sched::CreateScheduler(policy)->ShedPriority(unit);
  };
  // LSF ranks by W/T: slope 1/T.
  EXPECT_DOUBLE_EQ(shed_priority(sched::PolicyKind::kLsf),
                   1.0 / unit.stats.ideal_time);
  // BSD (exact and clustered) rank by Φ·W: slope Φ.
  EXPECT_DOUBLE_EQ(shed_priority(sched::PolicyKind::kBsd), unit.stats.phi);
  EXPECT_DOUBLE_EQ(shed_priority(sched::PolicyKind::kBsdClustered),
                   unit.stats.phi);
  // HNR's own static priority; also the default for policies without a
  // wait-time line (FCFS, RR, two-level, QoS-graph).
  EXPECT_DOUBLE_EQ(shed_priority(sched::PolicyKind::kHnr),
                   unit.stats.normalized_rate);
  EXPECT_DOUBLE_EQ(shed_priority(sched::PolicyKind::kFcfs),
                   unit.stats.normalized_rate);
  // Lp-norm: V = (S/(C̄·T^p))·W^(p-1); the W-independent factor is
  // normalized_rate / T^(p-1). Default p = 2.
  EXPECT_DOUBLE_EQ(shed_priority(sched::PolicyKind::kLpNorm),
                   unit.stats.normalized_rate / unit.stats.ideal_time);
}

TEST(ShedPriorityTest, LowerSlopeUnitsShedFirst) {
  // Two units, one clearly cheaper to delay (lower Φ). With fraction 0.5
  // under BSD, the engine's sheddable set must be exactly the low-Φ unit —
  // verified behaviourally: the high-Φ query keeps emitting at full rate.
  query::WorkloadConfig config;
  config.num_queries = 12;
  config.num_arrivals = 3000;
  config.utilization = 2.5;
  config.seed = 11;
  const query::Workload workload = query::GenerateWorkload(config);

  core::SimulationOptions options;
  options.qos.track_per_query = true;
  options.shed.enabled = true;
  options.shed.queue_cap = 64;
  options.shed.shed_fraction = 0.5;
  const core::RunResult shed = core::Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kBsd), options);
  core::SimulationOptions plain_options;
  plain_options.qos.track_per_query = true;
  const core::RunResult plain =
      core::Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kBsd),
                     plain_options);

  // Something was shed, yet at least one query (a protected, steep-line
  // one) delivered exactly its unshed output.
  ASSERT_GT(shed.counters.tuples_shed, 0);
  int intact = 0;
  int reduced = 0;
  for (const auto& [query, stats] : plain.qos.per_query_slowdown) {
    const auto it = shed.qos.per_query_slowdown.find(query);
    const int64_t shed_count =
        it != shed.qos.per_query_slowdown.end() ? it->second.count() : 0;
    if (shed_count == stats.count()) {
      ++intact;
    } else {
      ++reduced;
    }
  }
  EXPECT_GT(intact, 0) << "protected units must keep their full output";
  EXPECT_GT(reduced, 0) << "sheddable units must have lost output";
}

}  // namespace
}  // namespace aqsios::exec
