#include "obs/attribution.h"

#include <gtest/gtest.h>

#include "core/dsms.h"
#include "query/workload.h"

namespace aqsios::exec {
namespace {

TEST(StageAttributionTest, AddSampleAccumulates) {
  obs::StageAttribution attribution;
  attribution.sample_every = 4;
  attribution.AddSample(/*response_time=*/1.0, /*wait=*/0.6, /*overhead=*/0.1,
                        /*busy=*/0.3);
  attribution.AddSample(3.0, 2.0, 0.2, 0.8);
  EXPECT_EQ(attribution.samples(), 2);
  EXPECT_DOUBLE_EQ(attribution.response.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(attribution.queue_wait.Mean(), 1.3);
  EXPECT_DOUBLE_EQ(attribution.sched_overhead.Mean(), 0.15);
  EXPECT_DOUBLE_EQ(attribution.processing.Mean(), 0.55);
  EXPECT_EQ(attribution.dependency_delay.count(), 0);
}

core::RunResult RunAttributed(const query::WorkloadConfig& config,
                              bool charge_overhead,
                              int64_t sample_every = 1,
                              sched::PolicyKind kind = sched::PolicyKind::kHnr) {
  const query::Workload workload = query::GenerateWorkload(config);
  core::SimulationOptions options;
  options.attribution_sample_every = sample_every;
  options.charge_scheduling_overhead = charge_overhead;
  return core::Simulate(workload, sched::PolicyConfig::Of(kind), options);
}

query::WorkloadConfig SingleStreamConfig() {
  query::WorkloadConfig config;
  config.num_queries = 8;
  config.num_arrivals = 500;
  config.seed = 23;
  config.utilization = 0.9;
  return config;
}

// The core identity: R = queue_wait + sched_overhead + processing holds
// exactly per sample, hence also for the accumulated sums.
TEST(StageAttributionTest, ResponseDecomposesExactly) {
  const core::RunResult result = RunAttributed(SingleStreamConfig(),
                                               /*charge_overhead=*/false);
  const obs::StageAttribution& attribution = result.counters.attribution;
  ASSERT_GT(attribution.samples(), 100);
  EXPECT_EQ(attribution.queue_wait.count(), attribution.samples());
  EXPECT_EQ(attribution.processing.count(), attribution.samples());
  EXPECT_NEAR(attribution.response.sum(),
              attribution.queue_wait.sum() + attribution.sched_overhead.sum() +
                  attribution.processing.sum(),
              1e-9 * attribution.response.sum());
  // No overhead charging: that component is identically zero.
  EXPECT_DOUBLE_EQ(attribution.sched_overhead.sum(), 0.0);
  // Waits and processing are nonnegative throughout.
  EXPECT_GE(attribution.queue_wait.Min(), 0.0);
  EXPECT_GT(attribution.processing.Min(), 0.0);
  // Single-stream workload: no composites, no dependency delay.
  EXPECT_EQ(attribution.dependency_delay.count(), 0);
}

TEST(StageAttributionTest, OverheadChargingShowsUpAsOverheadComponent) {
  // LSF rescans the ready set at every decision, so every scheduling point
  // charges overhead (HNR's O(1) heap picks mostly charge none).
  const core::RunResult result = RunAttributed(SingleStreamConfig(),
                                               /*charge_overhead=*/true,
                                               /*sample_every=*/1,
                                               sched::PolicyKind::kLsf);
  const obs::StageAttribution& attribution = result.counters.attribution;
  ASSERT_GT(attribution.samples(), 0);
  EXPECT_GT(attribution.sched_overhead.sum(), 0.0);
  EXPECT_NEAR(attribution.response.sum(),
              attribution.queue_wait.sum() + attribution.sched_overhead.sum() +
                  attribution.processing.sum(),
              1e-9 * attribution.response.sum());
}

// §5.1.2: composite outputs carry a dependency delay — the wait for the
// trigger tuple — which sits outside R and therefore outside slowdown.
TEST(StageAttributionTest, JoinWorkloadRecordsDependencyDelay) {
  query::WorkloadConfig config;
  config.num_queries = 6;
  config.num_arrivals = 600;
  config.seed = 29;
  config.utilization = 0.8;
  config.multi_stream = true;
  config.arrival_pattern = query::ArrivalPattern::kPoisson;
  config.poisson_rate = 50.0;
  config.window_min_seconds = 0.5;
  config.window_max_seconds = 2.0;
  config.num_join_keys = 1;
  const core::RunResult result = RunAttributed(config,
                                               /*charge_overhead=*/false);
  const obs::StageAttribution& attribution = result.counters.attribution;
  ASSERT_GT(result.counters.composites_generated, 0);
  ASSERT_GT(attribution.dependency_delay.count(), 0);
  // Constituents never arrive simultaneously under Poisson arrivals, so the
  // delay is strictly positive somewhere — and never negative.
  EXPECT_GE(attribution.dependency_delay.Min(), 0.0);
  EXPECT_GT(attribution.dependency_delay.Max(), 0.0);
  // The identity still holds for composite emissions.
  EXPECT_NEAR(attribution.response.sum(),
              attribution.queue_wait.sum() + attribution.sched_overhead.sum() +
                  attribution.processing.sum(),
              1e-9 * attribution.response.sum());
}

// Sampling is keyed on arrival id, so different policies sample the same
// tuples: the response-time means differ, the sample counts do not.
TEST(StageAttributionTest, SamePopulationSampledUnderEveryPolicy) {
  const query::Workload workload =
      query::GenerateWorkload(SingleStreamConfig());
  core::SimulationOptions options;
  options.attribution_sample_every = 8;
  const core::RunResult fcfs = core::Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kFcfs), options);
  const core::RunResult hnr = core::Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr), options);
  ASSERT_GT(fcfs.counters.attribution.samples(), 0);
  EXPECT_EQ(fcfs.counters.attribution.samples(),
            hnr.counters.attribution.samples());
  // Frozen randomness: processing cost of the same tuples is
  // policy-invariant; only the queueing differs.
  EXPECT_NEAR(fcfs.counters.attribution.processing.sum(),
              hnr.counters.attribution.processing.sum(),
              1e-9 * fcfs.counters.attribution.processing.sum());
}

TEST(StageAttributionTest, DisabledByDefault) {
  const core::RunResult result = RunAttributed(SingleStreamConfig(),
                                               /*charge_overhead=*/false,
                                               /*sample_every=*/0);
  EXPECT_EQ(result.counters.attribution.samples(), 0);
}

}  // namespace
}  // namespace aqsios::exec
