#include "stream/arrival_process.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace aqsios::stream {
namespace {

TEST(PoissonArrivalProcessTest, MonotoneAndMeanRate) {
  PoissonArrivalProcess process(100.0, /*seed=*/1);
  SimTime prev = 0.0;
  SimTime last = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const SimTime t = process.NextArrivalTime();
    EXPECT_GE(t, prev);
    prev = t;
    last = t;
  }
  // Mean inter-arrival should be close to 1/rate = 10 ms.
  EXPECT_NEAR(last / n, 0.01, 0.001);
}

TEST(PoissonArrivalProcessTest, DeterministicInSeed) {
  PoissonArrivalProcess a(50.0, 7);
  PoissonArrivalProcess b(50.0, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.NextArrivalTime(), b.NextArrivalTime());
  }
}

TEST(DeterministicArrivalProcessTest, FixedSpacing) {
  DeterministicArrivalProcess process(0.5, 1.0);
  EXPECT_DOUBLE_EQ(process.NextArrivalTime(), 1.0);
  EXPECT_DOUBLE_EQ(process.NextArrivalTime(), 1.5);
  EXPECT_DOUBLE_EQ(process.NextArrivalTime(), 2.0);
}

TEST(OnOffArrivalProcessTest, MonotoneNonDecreasing) {
  OnOffConfig config;
  config.on_rate = 1000.0;
  config.mean_on_duration = 0.1;
  config.mean_off_duration = 0.3;
  OnOffArrivalProcess process(config, 11);
  SimTime prev = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const SimTime t = process.NextArrivalTime();
    ASSERT_GE(t, prev);
    prev = t;
  }
}

TEST(OnOffArrivalProcessTest, LongRunRateMatchesConfig) {
  OnOffConfig config;
  config.on_rate = 2000.0;
  config.mean_on_duration = 0.2;
  config.mean_off_duration = 0.6;
  OnOffArrivalProcess process(config, 5);
  const int n = 200000;
  SimTime last = 0.0;
  for (int i = 0; i < n; ++i) last = process.NextArrivalTime();
  const double measured_rate = n / last;
  EXPECT_NEAR(measured_rate / config.MeanRate(), 1.0, 0.1);
}

TEST(OnOffArrivalProcessTest, BurstierThanPoisson) {
  // The squared coefficient of variation of inter-arrivals must exceed 1
  // (the Poisson value) by a clear margin.
  OnOffConfig config;
  config.on_rate = 5000.0;
  config.mean_on_duration = 0.05;
  config.mean_off_duration = 0.2;
  OnOffArrivalProcess process(config, 13);
  const int n = 100000;
  double prev = 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const SimTime t = process.NextArrivalTime();
    const double gap = t - prev;
    prev = t;
    sum += gap;
    sum_sq += gap * gap;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  const double cv2 = var / (mean * mean);
  EXPECT_GT(cv2, 2.0);
}

TEST(TraceArrivalProcessTest, ReplaysAndExhausts) {
  TraceArrivalProcess process({0.5, 1.0, 2.5});
  EXPECT_DOUBLE_EQ(process.NextArrivalTime(), 0.5);
  EXPECT_DOUBLE_EQ(process.NextArrivalTime(), 1.0);
  EXPECT_EQ(process.remaining(), 1);
  EXPECT_DOUBLE_EQ(process.NextArrivalTime(), 2.5);
  EXPECT_TRUE(std::isinf(process.NextArrivalTime()));
}

TEST(GenerateArrivalsTest, AttributesInRangeAndDeterministic) {
  PoissonArrivalProcess p1(100.0, 3);
  PoissonArrivalProcess p2(100.0, 3);
  const auto a = GenerateArrivals(p1, 0, 1000, /*seed=*/9, 50);
  const auto b = GenerateArrivals(p2, 0, 1000, /*seed=*/9, 50);
  ASSERT_EQ(a.size(), 1000u);
  ASSERT_EQ(b.size(), 1000u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
    EXPECT_DOUBLE_EQ(a[i].attribute, b[i].attribute);
    EXPECT_GT(a[i].attribute, 0.0);
    EXPECT_LE(a[i].attribute, 100.0);
    EXPECT_GE(a[i].join_key, 0);
    EXPECT_LT(a[i].join_key, 50);
    EXPECT_EQ(a[i].stream, 0);
  }
}

TEST(MergeArrivalTablesTest, MergesSortedWithDenseIds) {
  PoissonArrivalProcess p0(100.0, 1);
  PoissonArrivalProcess p1(100.0, 2);
  auto s0 = GenerateArrivals(p0, 0, 500, 10);
  auto s1 = GenerateArrivals(p1, 1, 500, 11);
  const ArrivalTable table = MergeArrivalTables({s0, s1});
  ASSERT_EQ(table.size(), 1000);
  for (int64_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(table.arrivals[static_cast<size_t>(i)].id, i);
    if (i > 0) {
      EXPECT_GE(table.arrivals[static_cast<size_t>(i)].time,
                table.arrivals[static_cast<size_t>(i - 1)].time);
    }
  }
}

TEST(ArrivalTableTest, MeanInterArrivalPerStream) {
  ArrivalTable table;
  for (int i = 0; i < 10; ++i) {
    Arrival a;
    a.id = i;
    a.stream = i % 2;
    a.time = i * 0.5;
    table.arrivals.push_back(a);
  }
  // Whole table: gaps of 0.5.
  EXPECT_NEAR(table.MeanInterArrival(), 0.5, 1e-12);
  // Each stream: gaps of 1.0.
  EXPECT_NEAR(table.MeanInterArrival(0), 1.0, 1e-12);
  EXPECT_NEAR(table.MeanInterArrival(1), 1.0, 1e-12);
  EXPECT_NEAR(table.Horizon(), 4.5, 1e-12);
}

TEST(ArrivalTableTest, DegenerateCases) {
  ArrivalTable table;
  EXPECT_DOUBLE_EQ(table.MeanInterArrival(), 0.0);
  EXPECT_DOUBLE_EQ(table.Horizon(), 0.0);
  Arrival a;
  a.time = 3.0;
  table.arrivals.push_back(a);
  EXPECT_DOUBLE_EQ(table.MeanInterArrival(), 0.0);
  EXPECT_DOUBLE_EQ(table.Horizon(), 3.0);
  EXPECT_DOUBLE_EQ(table.MeanInterArrival(5), 0.0);
}

TEST(FrozenRandomnessTest, PureFunctionOfKey) {
  EXPECT_DOUBLE_EQ(FrozenUniform(42), FrozenUniform(42));
  EXPECT_NE(FrozenUniform(42), FrozenUniform(43));
  EXPECT_EQ(FrozenBernoulli(7, 0.5), FrozenBernoulli(7, 0.5));
}

TEST(FrozenRandomnessTest, ApproximatelyUniform) {
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (FrozenBernoulli(MixKeys(1, static_cast<uint64_t>(i)), 0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

}  // namespace
}  // namespace aqsios::stream
