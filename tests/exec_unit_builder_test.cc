// Tests for the plan -> schedulable-unit translation.

#include "exec/unit_builder.h"

#include <gtest/gtest.h>

#include "gtest_compat.h"

#include "query/operator.h"

namespace aqsios::exec {
namespace {

query::CompiledQuery Chain(query::QueryId id,
                           std::vector<query::OperatorSpec> ops) {
  query::QuerySpec spec;
  spec.id = id;
  spec.left_stream = 0;
  spec.left_ops = std::move(ops);
  return query::CompiledQuery(spec, query::SelectivityMode::kIndependent);
}

TEST(UnitBuilderTest, QueryLevelOneUnitPerSingleStreamQuery) {
  std::vector<query::CompiledQuery> queries;
  queries.push_back(Chain(0, {query::MakeSelect(1.0, 0.5)}));
  queries.push_back(
      Chain(1, {query::MakeSelect(2.0, 0.4), query::MakeProject(1.0)}));
  query::GlobalPlan plan(std::move(queries), {}, 1);
  const BuiltUnits built = BuildUnits(plan, {});
  ASSERT_EQ(built.units.size(), 2u);
  for (const sched::Unit& unit : built.units) {
    EXPECT_EQ(unit.kind, sched::UnitKind::kQueryChain);
    EXPECT_EQ(unit.input_stream, 0);
    EXPECT_GT(unit.stats.normalized_rate, 0.0);
    EXPECT_GT(unit.stats.chain_slope, 0.0);
  }
  // Unit stats mirror the leaf segment.
  EXPECT_NEAR(built.units[0].stats.selectivity, 0.5, 1e-12);
  EXPECT_NEAR(built.units[1].stats.selectivity, 0.4, 1e-12);
}

TEST(UnitBuilderTest, OperatorLevelOneUnitPerOperator) {
  std::vector<query::CompiledQuery> queries;
  queries.push_back(Chain(0, {query::MakeSelect(1.0, 0.5),
                              query::MakeStoredJoin(2.0, 0.4),
                              query::MakeProject(1.0)}));
  query::GlobalPlan plan(std::move(queries), {}, 1);
  UnitBuilderOptions options;
  options.level = SchedulingLevel::kOperatorLevel;
  const BuiltUnits built = BuildUnits(plan, options);
  ASSERT_EQ(built.units.size(), 3u);
  ASSERT_EQ(built.op_units.size(), 1u);
  ASSERT_EQ(built.op_units[0].size(), 3u);
  for (int x = 0; x < 3; ++x) {
    const sched::Unit& unit =
        built.units[static_cast<size_t>(built.op_units[0][x])];
    EXPECT_EQ(unit.kind, sched::UnitKind::kOperator);
    EXPECT_EQ(unit.op_index, x);
    // Only the leaf is stream-fed.
    EXPECT_EQ(unit.input_stream, x == 0 ? 0 : -1);
  }
  // Segment priorities grow toward the root (less remaining work).
  const auto& leaf = built.units[static_cast<size_t>(built.op_units[0][0])];
  const auto& root = built.units[static_cast<size_t>(built.op_units[0][2])];
  EXPECT_GT(root.stats.output_rate, leaf.stats.output_rate);
}

TEST(UnitBuilderTest, MultiStreamOneUnitPerJoinInput) {
  query::QuerySpec spec;
  spec.id = 0;
  spec.left_stream = 0;
  spec.right_stream = 1;
  spec.left_ops = {query::MakeSelect(1.0, 0.5)};
  spec.right_ops = {query::MakeSelect(1.0, 0.5)};
  spec.join_op = query::MakeWindowJoin(1.0, 0.5, 1.0);
  query::JoinStage stage;
  stage.stream = 2;
  stage.side_ops = {query::MakeSelect(1.0, 0.5)};
  stage.join = query::MakeWindowJoin(1.0, 0.5, 1.0);
  stage.mean_inter_arrival = 0.1;
  spec.extra_stages = {stage};
  spec.left_mean_inter_arrival = 0.1;
  spec.right_mean_inter_arrival = 0.1;
  std::vector<query::CompiledQuery> queries;
  queries.emplace_back(spec, query::SelectivityMode::kIndependent);
  query::GlobalPlan plan(std::move(queries), {}, 3);
  const BuiltUnits built = BuildUnits(plan, {});
  ASSERT_EQ(built.units.size(), 3u);
  EXPECT_EQ(built.units[0].kind, sched::UnitKind::kJoinSideLeft);
  EXPECT_EQ(built.units[1].kind, sched::UnitKind::kJoinSideRight);
  EXPECT_EQ(built.units[2].kind, sched::UnitKind::kJoinInput);
  EXPECT_EQ(built.units[0].input_stream, 0);
  EXPECT_EQ(built.units[1].input_stream, 1);
  EXPECT_EQ(built.units[2].input_stream, 2);
  EXPECT_EQ(built.units[2].op_index, 2);
}

query::GlobalPlan SharedPlan() {
  const query::OperatorSpec shared = query::MakeSelect(1.0, 0.5);
  std::vector<query::CompiledQuery> queries;
  // Member 0: productive remainder; member 1: dreadful remainder that a PDT
  // must exclude.
  queries.push_back(Chain(0, {shared, query::MakeProject(1.0)}));
  queries.push_back(Chain(1, {shared, query::MakeStoredJoin(500.0, 0.01),
                              query::MakeProject(1.0)}));
  query::SharingGroup group;
  group.id = 0;
  group.members = {0, 1};
  return query::GlobalPlan(std::move(queries), {group}, 1);
}

TEST(UnitBuilderTest, PdtSplitsGroupIntoBundleAndRemainder) {
  UnitBuilderOptions options;
  options.sharing_strategy = sched::SharingStrategy::kPdt;
  const query::GlobalPlan plan = SharedPlan();
  const BuiltUnits built = BuildUnits(plan, options);
  ASSERT_EQ(built.groups.size(), 1u);
  const GroupRuntime& runtime = built.groups[0];
  ASSERT_EQ(runtime.executed.size(), 1u);
  EXPECT_EQ(runtime.executed[0], 0);
  ASSERT_EQ(runtime.remainder_queries.size(), 1u);
  EXPECT_EQ(runtime.remainder_queries[0], 1);
  ASSERT_EQ(runtime.remainder_units.size(), 1u);
  // Units: the shared-group unit plus one remainder unit.
  ASSERT_EQ(built.units.size(), 2u);
  const sched::Unit& remainder =
      built.units[static_cast<size_t>(runtime.remainder_units[0])];
  EXPECT_EQ(remainder.kind, sched::UnitKind::kRemainder);
  EXPECT_EQ(remainder.query, 1);
  EXPECT_EQ(remainder.op_index, 1);
  EXPECT_EQ(remainder.input_stream, -1);
}

TEST(UnitBuilderTest, MaxAndSumKeepGroupWhole) {
  for (sched::SharingStrategy strategy :
       {sched::SharingStrategy::kMax, sched::SharingStrategy::kSum}) {
    UnitBuilderOptions options;
    options.sharing_strategy = strategy;
    const query::GlobalPlan plan = SharedPlan();
    const BuiltUnits built = BuildUnits(plan, options);
    ASSERT_EQ(built.units.size(), 1u) << sched::SharingStrategyName(strategy);
    EXPECT_EQ(built.groups[0].executed.size(), 2u);
    EXPECT_TRUE(built.groups[0].remainder_units.empty());
  }
}

TEST(UnitBuilderTest, OperatorChainSlopesAreExactEnvelopes) {
  std::vector<query::CompiledQuery> queries;
  queries.push_back(Chain(0, {query::MakeSelect(1.0, 0.2),
                              query::MakeProject(4.0)}));
  query::GlobalPlan plan(std::move(queries), {}, 1);
  UnitBuilderOptions options;
  options.level = SchedulingLevel::kOperatorLevel;
  const BuiltUnits built = BuildUnits(plan, options);
  // Leaf: max((1-0.2)/1ms, 1/5ms) = 800; root (project): 1/4ms = 250.
  EXPECT_NEAR(built.units[0].stats.chain_slope, 0.8 / 0.001, 1e-6);
  EXPECT_NEAR(built.units[1].stats.chain_slope, 1.0 / 0.004, 1e-6);
}

TEST(UnitBuilderDeathTest, OperatorLevelRejectsSharingAndJoins) {
  AQSIOS_GTEST_SET_FLAG(death_test_style, "threadsafe");
  UnitBuilderOptions options;
  options.level = SchedulingLevel::kOperatorLevel;
  {
    const query::GlobalPlan plan = SharedPlan();
    EXPECT_DEATH(BuildUnits(plan, options), "without sharing");
  }
  {
    query::QuerySpec spec;
    spec.id = 0;
    spec.left_stream = 0;
    spec.right_stream = 1;
    spec.left_ops = {query::MakeSelect(1.0, 0.5)};
    spec.right_ops = {query::MakeSelect(1.0, 0.5)};
    spec.join_op = query::MakeWindowJoin(1.0, 0.5, 1.0);
    std::vector<query::CompiledQuery> queries;
    queries.emplace_back(spec, query::SelectivityMode::kIndependent);
    query::GlobalPlan plan(std::move(queries), {}, 2);
    EXPECT_DEATH(BuildUnits(plan, options), "single-stream");
  }
}

TEST(SchedulingLevelTest, Names) {
  EXPECT_STREQ(SchedulingLevelName(SchedulingLevel::kQueryLevel),
               "query_level");
  EXPECT_STREQ(SchedulingLevelName(SchedulingLevel::kOperatorLevel),
               "operator_level");
}

}  // namespace
}  // namespace aqsios::exec
