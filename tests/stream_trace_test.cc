#include "stream/trace.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace aqsios::stream {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(TraceTest, GenerateOnOffTraceCountAndOrder) {
  OnOffConfig config;
  const auto trace = GenerateOnOffTrace(config, 5000, /*seed=*/4);
  ASSERT_EQ(trace.size(), 5000u);
  for (size_t i = 1; i < trace.size(); ++i) {
    ASSERT_GE(trace[i], trace[i - 1]);
  }
}

TEST(TraceTest, WriteReadRoundTrip) {
  OnOffConfig config;
  const auto trace = GenerateOnOffTrace(config, 1000, 8);
  const std::string path = TempPath("roundtrip.trace");
  ASSERT_TRUE(WriteTrace(path, trace).ok());
  const auto read = ReadTrace(path);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read.value().size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_NEAR(read.value()[i], trace[i], 1e-9);
  }
  std::remove(path.c_str());
}

TEST(TraceTest, ReadMissingFileIsNotFound) {
  const auto result = ReadTrace("/nonexistent/definitely/missing.trace");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(TraceTest, ReadRejectsDecreasingTimestamps) {
  const std::string path = TempPath("decreasing.trace");
  {
    std::ofstream out(path);
    out << "# aqsios-trace v1\n1.0\n0.5\n";
  }
  const auto result = ReadTrace(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TraceTest, ReadRejectsGarbage) {
  const std::string path = TempPath("garbage.trace");
  {
    std::ofstream out(path);
    out << "not-a-number\n";
  }
  EXPECT_FALSE(ReadTrace(path).ok());
  std::remove(path.c_str());
}

TEST(TraceTest, ReadTimestampColumnSortsAndRebases) {
  const std::string path = TempPath("lbl.trace");
  {
    std::ofstream out(path);
    // LBL-style lines: "timestamp src dst proto len", unordered.
    out << "# comment\n";
    out << "100.5 a b tcp 40\n";
    out << "100.2 c d udp 80\n";
    out << "101.0 e f tcp 40\n";
  }
  const auto result = ReadTimestampColumn(path);
  ASSERT_TRUE(result.ok()) << result.status();
  const auto& ts = result.value();
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_NEAR(ts[0], 0.0, 1e-9);
  EXPECT_NEAR(ts[1], 0.3, 1e-9);
  EXPECT_NEAR(ts[2], 0.8, 1e-9);
  std::remove(path.c_str());
}

TEST(TraceTest, StatsOfDeterministicTrace) {
  std::vector<SimTime> trace;
  for (int i = 0; i < 101; ++i) trace.push_back(i * 0.25);
  const TraceStats stats = ComputeTraceStats(trace);
  EXPECT_EQ(stats.count, 101);
  EXPECT_NEAR(stats.duration, 25.0, 1e-9);
  EXPECT_NEAR(stats.mean_inter_arrival, 0.25, 1e-9);
  EXPECT_NEAR(stats.inter_arrival_cv, 0.0, 1e-9);
  EXPECT_NEAR(stats.max_inter_arrival, 0.25, 1e-9);
}

TEST(TraceTest, OnOffTraceIsBursty) {
  OnOffConfig config;
  config.on_rate = 5000.0;
  config.mean_on_duration = 0.05;
  config.mean_off_duration = 0.2;
  const auto trace = GenerateOnOffTrace(config, 50000, 21);
  const TraceStats stats = ComputeTraceStats(trace);
  // On/Off traffic: inter-arrival CV well above the Poisson value of 1.
  EXPECT_GT(stats.inter_arrival_cv, 1.5);
}

TEST(TraceTest, StatsDegenerate) {
  EXPECT_EQ(ComputeTraceStats({}).count, 0);
  EXPECT_EQ(ComputeTraceStats({1.0}).count, 1);
  EXPECT_DOUBLE_EQ(ComputeTraceStats({1.0}).mean_inter_arrival, 0.0);
}

}  // namespace
}  // namespace aqsios::stream
