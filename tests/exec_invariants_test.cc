// Engine invariants that every policy must preserve.

#include <map>

#include <gtest/gtest.h>

#include "core/dsms.h"
#include "query/workload.h"

namespace aqsios::exec {
namespace {

using core::RunResult;
using core::Simulate;
using core::SimulationOptions;

const sched::PolicyKind kAllPolicies[] = {
    sched::PolicyKind::kFcfs,   sched::PolicyKind::kRoundRobin,
    sched::PolicyKind::kSrpt,   sched::PolicyKind::kHr,
    sched::PolicyKind::kHnr,    sched::PolicyKind::kLsf,
    sched::PolicyKind::kBsd,    sched::PolicyKind::kBsdClustered,
    sched::PolicyKind::kChain,  sched::PolicyKind::kTwoLevelRr,
    sched::PolicyKind::kLpNorm, sched::PolicyKind::kQosGraph,
};

query::Workload SmallWorkload(uint64_t seed) {
  query::WorkloadConfig config;
  config.num_queries = 12;
  config.num_arrivals = 1500;
  config.utilization = 0.9;
  config.seed = seed;
  return query::GenerateWorkload(config);
}

TEST(EngineInvariantsTest, EveryPolicyProcessesEverything) {
  const query::Workload workload = SmallWorkload(21);
  for (sched::PolicyKind kind : kAllPolicies) {
    const RunResult r = Simulate(workload, sched::PolicyConfig::Of(kind));
    // Work conservation: every (arrival × query) item executes exactly once
    // at query level.
    EXPECT_EQ(r.counters.unit_executions, 1500 * 12)
        << sched::PolicyKindName(kind);
    // For single-stream chains at query level every execution either emits
    // its tuple or filters it: emitted + filtered == executions.
    EXPECT_EQ(r.counters.tuples_emitted + r.counters.tuples_filtered,
              r.counters.unit_executions)
        << sched::PolicyKindName(kind);
    EXPECT_GE(r.qos.avg_slowdown, 1.0) << sched::PolicyKindName(kind);
    EXPECT_GE(r.counters.end_time, r.counters.busy_time)
        << sched::PolicyKindName(kind);
    // All queues drained: average queue occupancy is finite and bounded by
    // the peak.
    EXPECT_LE(r.counters.avg_queued_tuples,
              static_cast<double>(r.counters.peak_queued_tuples))
        << sched::PolicyKindName(kind);
  }
}

TEST(EngineInvariantsTest, BusyTimeIdenticalAcrossPolicies) {
  const query::Workload workload = SmallWorkload(22);
  double reference = -1.0;
  for (sched::PolicyKind kind : kAllPolicies) {
    const RunResult r = Simulate(workload, sched::PolicyConfig::Of(kind));
    if (reference < 0.0) {
      reference = r.counters.busy_time;
    } else {
      EXPECT_NEAR(r.counters.busy_time, reference, 1e-9)
          << sched::PolicyKindName(kind);
    }
  }
}

TEST(EngineInvariantsTest, PerQueryEmissionsPolicyInvariant) {
  const query::Workload workload = SmallWorkload(23);
  SimulationOptions options;
  options.qos.track_per_query = true;
  std::map<int32_t, int64_t> reference;
  for (sched::PolicyKind kind :
       {sched::PolicyKind::kFcfs, sched::PolicyKind::kHnr,
        sched::PolicyKind::kBsd, sched::PolicyKind::kChain}) {
    const RunResult r =
        Simulate(workload, sched::PolicyConfig::Of(kind), options);
    std::map<int32_t, int64_t> counts;
    for (const auto& [query, stats] : r.qos.per_query_slowdown) {
      counts[query] = stats.count();
    }
    if (reference.empty()) {
      reference = counts;
      EXPECT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(counts, reference) << sched::PolicyKindName(kind);
    }
  }
}

TEST(EngineInvariantsTest, OverheadTimeAccountingIdentity) {
  const query::Workload workload = SmallWorkload(24);
  SimulationOptions charged;
  charged.charge_scheduling_overhead = true;
  const RunResult r = Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kBsd), charged);
  // overhead_time == overhead_operations × cheapest operator cost.
  EXPECT_NEAR(r.counters.overhead_time,
              static_cast<double>(r.counters.overhead_operations) *
                  workload.plan.MinOperatorCost(),
              1e-6);
  EXPECT_GT(r.counters.overhead_time, 0.0);
  // End time covers busy + overhead (idle gaps make it >=).
  EXPECT_GE(r.counters.end_time,
            r.counters.busy_time + r.counters.overhead_time - 1e-9);
}

TEST(EngineInvariantsTest, FifoWithinQueryUnderEveryPolicy) {
  // With selectivity-1 single-operator queries, each query's emissions must
  // be in arrival order (unit queues are FIFO) whatever the policy.
  for (sched::PolicyKind kind : kAllPolicies) {
    core::Dsms dsms(query::SelectivityMode::kCorrelatedAttribute);
    query::QuerySpec fast;
    fast.left_stream = 0;
    fast.left_ops = {query::MakeSelect(1.0, 1.0)};
    dsms.AddQuery(fast);
    query::QuerySpec slow;
    slow.left_stream = 0;
    slow.left_ops = {query::MakeSelect(7.0, 1.0)};
    dsms.AddQuery(slow);
    stream::ArrivalTable arrivals;
    for (int i = 0; i < 40; ++i) {
      stream::Arrival a;
      a.id = i;
      a.stream = 0;
      a.time = 0.0005 * i;  // overload: both queries backlog
      a.attribute = 1.0;
      arrivals.arrivals.push_back(a);
    }
    dsms.SetArrivals(arrivals);
    SimulationOptions options;
    options.qos.track_per_query = true;
    const RunResult r =
        dsms.Run(sched::PolicyConfig::Of(kind), options);
    EXPECT_EQ(r.qos.tuples_emitted, 80) << sched::PolicyKindName(kind);
    // FIFO within a query implies each query's max response >= its mean and
    // its emitted count equals the arrivals.
    for (const auto& [query, stats] : r.qos.per_query_slowdown) {
      EXPECT_EQ(stats.count(), 40) << sched::PolicyKindName(kind);
    }
  }
}

TEST(EngineInvariantsTest, AdaptiveBsdReadsRefreshedStatsLive) {
  // BSD reads unit stats at pick time, so it works with adaptation without
  // any OnStatsUpdated override; the run must stay self-consistent.
  query::WorkloadConfig config;
  config.num_queries = 10;
  config.num_arrivals = 2000;
  config.utilization = 0.9;
  config.seed = 25;
  config.selectivity_misestimation = 0.7;
  const query::Workload workload = query::GenerateWorkload(config);
  SimulationOptions adaptive;
  adaptive.adaptation.enabled = true;
  adaptive.adaptation.period = 0.2;
  const RunResult with = Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kBsd), adaptive);
  const RunResult without =
      Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kBsd));
  EXPECT_GT(with.counters.adaptation_ticks, 0);
  EXPECT_EQ(with.qos.tuples_emitted, without.qos.tuples_emitted);
  EXPECT_GE(with.qos.avg_slowdown, 1.0);
}

TEST(EngineInvariantsTest, SharingWorkloadAcrossStrategiesConserved) {
  query::WorkloadConfig config;
  config.num_queries = 20;
  config.num_arrivals = 1500;
  config.utilization = 0.85;
  config.sharing_group_size = 5;
  config.seed = 26;
  const query::Workload workload = query::GenerateWorkload(config);
  int64_t reference = -1;
  for (sched::SharingStrategy strategy :
       {sched::SharingStrategy::kMax, sched::SharingStrategy::kSum,
        sched::SharingStrategy::kPdt}) {
    SimulationOptions options;
    options.sharing_strategy = strategy;
    const RunResult r = Simulate(
        workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr), options);
    if (reference < 0) {
      reference = r.qos.tuples_emitted;
      EXPECT_GT(reference, 0);
    } else {
      // Strategy changes the order (and with PDT, the bundling), never the
      // tuple flow.
      EXPECT_EQ(r.qos.tuples_emitted, reference)
          << sched::SharingStrategyName(strategy);
    }
  }
}

}  // namespace
}  // namespace aqsios::exec
