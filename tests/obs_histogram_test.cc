#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/rng.h"
#include "obs/registry.h"

namespace aqsios::obs {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);
  const HistogramSummary summary = histogram.Summarize();
  EXPECT_EQ(summary.count, 0);
  EXPECT_DOUBLE_EQ(summary.p99, 0.0);
}

TEST(HistogramTest, ZerosAndNegativesLandInUnderflowBucket) {
  Histogram histogram({.min_value = 1.0});
  histogram.Add(0.0);
  histogram.Add(-3.0);
  histogram.Add(0.5);
  EXPECT_EQ(histogram.count(), 3);
  EXPECT_EQ(histogram.bucket_count(0), 3);
  EXPECT_DOUBLE_EQ(histogram.BucketLowerEdge(0), 0.0);
  EXPECT_DOUBLE_EQ(histogram.BucketUpperEdge(0), 1.0);
}

TEST(HistogramTest, BucketEdgesAreGeometric) {
  Histogram histogram({.min_value = 1.0, .growth = 2.0, .max_buckets = 8});
  histogram.Add(1.0);   // [1, 2)    -> bucket 1
  histogram.Add(3.0);   // [2, 4)    -> bucket 2
  histogram.Add(5.0);   // [4, 8)    -> bucket 3
  histogram.Add(7.9);   // [4, 8)    -> bucket 3
  EXPECT_EQ(histogram.bucket_count(1), 1);
  EXPECT_EQ(histogram.bucket_count(2), 1);
  EXPECT_EQ(histogram.bucket_count(3), 2);
  EXPECT_DOUBLE_EQ(histogram.BucketLowerEdge(1), 1.0);
  EXPECT_DOUBLE_EQ(histogram.BucketUpperEdge(1), 2.0);
  EXPECT_DOUBLE_EQ(histogram.BucketLowerEdge(3), 4.0);
  EXPECT_DOUBLE_EQ(histogram.BucketUpperEdge(3), 8.0);
}

TEST(HistogramTest, ValuesBeyondRangeClampIntoLastBucketAsOverflow) {
  Histogram histogram({.min_value = 1.0, .growth = 2.0, .max_buckets = 4});
  histogram.Add(1e12);
  EXPECT_EQ(histogram.count(), 1);
  EXPECT_EQ(histogram.overflow(), 1);
  EXPECT_EQ(histogram.bucket_count(histogram.num_buckets() - 1), 1);
  // Min/Max still track the exact observed values.
  EXPECT_DOUBLE_EQ(histogram.Max(), 1e12);
}

TEST(HistogramTest, ExtremeValuesSaturateIntoLastBucket) {
  // 1e300 and infinity push the scaled bucket offset far outside int range;
  // the index must saturate into the last bucket (counted as overflow)
  // instead of reaching the undefined double-to-int conversion.
  Histogram histogram({.min_value = 1.0, .growth = 2.0, .max_buckets = 8});
  histogram.Add(1e300);
  histogram.Add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(histogram.count(), 2);
  EXPECT_EQ(histogram.overflow(), 2);
  EXPECT_EQ(histogram.bucket_count(7), 2);
  EXPECT_DOUBLE_EQ(histogram.Max(),
                   std::numeric_limits<double>::infinity());
  // The saturated histogram still quantiles deterministically.
  EXPECT_GE(histogram.Quantile(0.99), histogram.BucketLowerEdge(7));
}

TEST(HistogramTest, TightGrowthDoesNotOverflowTheIndex) {
  // A growth barely above 1 makes 1/log2(growth) enormous (~7e6 here), so a
  // large value scales to an offset way past INT_MAX. The pre-cast clamp
  // must absorb it; without it the conversion itself is undefined.
  Histogram histogram(
      {.min_value = 1.0, .growth = 1.0000001, .max_buckets = 16});
  histogram.Add(1e12);
  histogram.Add(1e300);
  EXPECT_EQ(histogram.count(), 2);
  EXPECT_EQ(histogram.overflow(), 2);
  EXPECT_EQ(histogram.bucket_count(15), 2);
}

TEST(HistogramTest, ExactLastBucketLowerEdgeIsNotOverflow) {
  // growth=2, max_buckets=4: the last bucket 3 covers [4, 8). Its lower
  // edge is in range (not overflow); its upper edge is the first value that
  // clamps and counts as overflow.
  Histogram histogram({.min_value = 1.0, .growth = 2.0, .max_buckets = 4});
  histogram.Add(4.0);
  EXPECT_EQ(histogram.overflow(), 0);
  EXPECT_EQ(histogram.bucket_count(3), 1);
  histogram.Add(8.0);
  EXPECT_EQ(histogram.overflow(), 1);
  EXPECT_EQ(histogram.bucket_count(3), 2);
  histogram.Add(7.9999999);
  EXPECT_EQ(histogram.overflow(), 1);
  EXPECT_EQ(histogram.bucket_count(3), 3);
}

TEST(HistogramTest, MergeAfterLazyResizeExtendsTheShorterSide) {
  // Buckets grow lazily with the largest recorded value, so merging a tall
  // histogram into a short one must extend the short one's array first and
  // leave every bucket count exact.
  Histogram small({.min_value = 1.0, .growth = 2.0, .max_buckets = 12});
  Histogram tall({.min_value = 1.0, .growth = 2.0, .max_buckets = 12});
  small.Add(1.5);  // bucket 1 only
  tall.Add(100.0); // bucket 7: [64, 128)
  ASSERT_LT(small.num_buckets(), tall.num_buckets());
  small.Merge(tall);
  EXPECT_EQ(small.num_buckets(), tall.num_buckets());
  EXPECT_EQ(small.count(), 2);
  EXPECT_EQ(small.bucket_count(1), 1);
  EXPECT_EQ(small.bucket_count(7), 1);
  EXPECT_DOUBLE_EQ(small.Max(), 100.0);
  // The reverse direction (short into tall) must agree.
  Histogram tall2({.min_value = 1.0, .growth = 2.0, .max_buckets = 12});
  Histogram small2({.min_value = 1.0, .growth = 2.0, .max_buckets = 12});
  tall2.Add(100.0);
  small2.Add(1.5);
  tall2.Merge(small2);
  EXPECT_EQ(tall2.count(), small.count());
  EXPECT_DOUBLE_EQ(tall2.Quantile(0.5), small.Quantile(0.5));
}

TEST(HistogramTest, UnderflowStaysBelowTheGeometricRange) {
  // Values below min_value — including denormals and exact zero — all land
  // in bucket 0 and never perturb the geometric buckets.
  Histogram histogram({.min_value = 1e-6});
  histogram.Add(0.0);
  histogram.Add(std::numeric_limits<double>::denorm_min());
  histogram.Add(1e-300);
  histogram.Add(-1e300);
  EXPECT_EQ(histogram.bucket_count(0), 4);
  EXPECT_EQ(histogram.overflow(), 0);
  EXPECT_EQ(histogram.count(), 4);
}

TEST(HistogramTest, QuantileRelativeErrorBoundedByBucketWidth) {
  // Uniform ramp 1..10000: every quantile of the histogram must sit within
  // one bucket's relative width (2^(1/16) with the defaults) of the truth.
  Histogram histogram({.min_value = 1e-3});
  for (int i = 1; i <= 10000; ++i) histogram.Add(static_cast<double>(i));
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double exact = q * 10000.0;
    const double approx = histogram.Quantile(q);
    EXPECT_NEAR(approx / exact, 1.0, 0.05) << "q=" << q;
  }
  // Extremes stay within one bucket of the observed min/max; the top
  // quantile clamps to the exact observed maximum.
  EXPECT_GE(histogram.Quantile(0.0), 1.0);
  EXPECT_LE(histogram.Quantile(0.0), 1.05);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 10000.0);
}

TEST(HistogramTest, QuantilesAreOrderIndependentAndDeterministic) {
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) values.push_back(rng.Exponential(0.01));

  Histogram forward;
  for (double v : values) forward.Add(v);
  std::reverse(values.begin(), values.end());
  Histogram backward;
  for (double v : values) backward.Add(v);

  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(forward.Quantile(q), backward.Quantile(q)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(forward.Mean(), backward.Mean());
}

TEST(HistogramTest, MergeMatchesSingleHistogram) {
  Histogram a, b, whole;
  for (int i = 1; i <= 100; ++i) {
    const double v = 0.001 * i;
    (i % 2 == 0 ? a : b).Add(v);
    whole.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.Mean(), whole.Mean());
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), whole.Quantile(0.5));
  EXPECT_DOUBLE_EQ(a.Quantile(0.99), whole.Quantile(0.99));
}

TEST(HistogramTest, SummarizeCarriesMoments) {
  Histogram histogram;
  histogram.Add(0.010);
  histogram.Add(0.030);
  const HistogramSummary summary = histogram.Summarize();
  EXPECT_EQ(summary.count, 2);
  EXPECT_DOUBLE_EQ(summary.mean, 0.020);
  EXPECT_DOUBLE_EQ(summary.min, 0.010);
  EXPECT_DOUBLE_EQ(summary.max, 0.030);
  EXPECT_LE(summary.p50, summary.p95);
  EXPECT_LE(summary.p95, summary.p99);
  EXPECT_LE(summary.p99, summary.p999);
}

TEST(HistogramTest, ToStringListsNonEmptyBuckets) {
  Histogram histogram({.min_value = 1.0, .growth = 2.0});
  histogram.Add(3.0);
  const std::string text = histogram.ToString();
  EXPECT_NE(text.find("[2, 4)"), std::string::npos) << text;
}

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry registry;
  registry.Counter("tuples") += 5;
  registry.Counter("tuples") += 2;
  registry.Gauge("load") = 0.8;
  registry.GetHistogram("latency").Add(0.25);
  EXPECT_EQ(registry.Counter("tuples"), 7);
  EXPECT_EQ(registry.num_counters(), 1u);
  EXPECT_EQ(registry.num_gauges(), 1u);
  EXPECT_TRUE(registry.HasHistogram("latency"));
  EXPECT_FALSE(registry.HasHistogram("missing"));

  JsonWriter json;
  registry.WriteJson(json);
  const std::string text = json.str();
  EXPECT_NE(text.find("\"tuples\":7"), std::string::npos) << text;
  EXPECT_NE(text.find("\"load\":0.8"), std::string::npos) << text;
  EXPECT_NE(text.find("\"latency\""), std::string::npos) << text;
}

}  // namespace
}  // namespace aqsios::obs
