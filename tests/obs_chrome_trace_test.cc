#include "obs/chrome_trace.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dsms.h"
#include "obs/tracer.h"
#include "query/workload.h"

namespace aqsios::obs {
namespace {

// A minimal recursive-descent JSON parser: the well-formedness check for the
// exporter is that its output parses back and has the advertised structure,
// not merely that braces look balanced.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const { return object.count(key) != 0; }
  const JsonValue& At(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = text_[pos_] == 't';
        return ParseLiteral(out->boolean ? "true" : "false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return ParseLiteral("null");
      default:
        out->type = JsonValue::Type::kNumber;
        return ParseNumber(&out->number);
    }
  }

  bool ParseLiteral(const std::string& literal) {
    if (text_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  bool ParseNumber(double* out) {
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return false;
    try {
      *out = std::stod(text_.substr(pos_, end - pos_));
    } catch (...) {
      return false;
    }
    pos_ = end;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char escape = text_[pos_++];
        switch (escape) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': pos_ += 4; c = '?'; break;
          default: c = escape; break;
        }
      }
      out->push_back(c);
    }
    return Consume('"');
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      if (!ParseString(&key) || !Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

struct TracedRun {
  std::unique_ptr<EventTracer> tracer;
  ChromeTraceMeta meta;
};

TracedRun RunTracedSimulation() {
  query::WorkloadConfig config;
  config.num_queries = 6;
  config.num_arrivals = 300;
  config.seed = 11;
  config.utilization = 0.8;
  const query::Workload workload = query::GenerateWorkload(config);

  TracedRun run;
  run.tracer = std::make_unique<EventTracer>();
  core::SimulationOptions options;
  options.tracer = run.tracer.get();
  const core::RunResult result = core::Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr), options);
  run.meta.num_queries = workload.plan.num_queries();
  run.meta.policy = result.policy_name;
  return run;
}

TEST(ChromeTraceTest, ExportParsesBackWithExpectedStructure) {
  const TracedRun run = RunTracedSimulation();
  const std::string text = ChromeTraceJson(run.tracer->Events(), run.meta);

  JsonValue root;
  ASSERT_TRUE(JsonParser(text).Parse(&root)) << text.substr(0, 200);
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  EXPECT_EQ(root.At("displayTimeUnit").string, "ms");
  ASSERT_TRUE(root.Has("traceEvents"));
  const JsonValue& events = root.At("traceEvents");
  ASSERT_EQ(events.type, JsonValue::Type::kArray);
  ASSERT_GT(events.array.size(), 10u);

  std::set<std::string> names;
  std::set<double> tids;
  for (const JsonValue& event : events.array) {
    ASSERT_EQ(event.type, JsonValue::Type::kObject);
    ASSERT_TRUE(event.Has("name"));
    ASSERT_TRUE(event.Has("ph"));
    ASSERT_TRUE(event.Has("pid"));
    ASSERT_TRUE(event.Has("tid"));
    const std::string& ph = event.At("ph").string;
    EXPECT_TRUE(ph == "X" || ph == "i" || ph == "M") << ph;
    if (ph == "X") {
      EXPECT_GE(event.At("ts").number, 0.0);
      EXPECT_GE(event.At("dur").number, 0.0);
    }
    if (ph != "M") names.insert(event.At("name").string);
    tids.insert(event.At("tid").number);
  }
  for (const char* required : {"sched_decision", "tuple_arrival", "enqueue",
                               "segment_run", "operator", "emit"}) {
    EXPECT_TRUE(names.count(required)) << "missing event kind " << required;
  }
  // Lane layout: scheduler (0), arrivals (1), one lane per query (2+q).
  EXPECT_TRUE(tids.count(0.0));
  EXPECT_TRUE(tids.count(1.0));
  EXPECT_TRUE(tids.count(2.0));
}

TEST(ChromeTraceTest, MetadataNamesEveryLane) {
  const TracedRun run = RunTracedSimulation();
  const std::string text = ChromeTraceJson(run.tracer->Events(), run.meta);
  JsonValue root;
  ASSERT_TRUE(JsonParser(text).Parse(&root));

  std::map<double, std::string> lane_names;
  for (const JsonValue& event : root.At("traceEvents").array) {
    if (event.At("ph").string != "M") continue;
    EXPECT_EQ(event.At("name").string, "thread_name");
    lane_names[event.At("tid").number] = event.At("args").At("name").string;
  }
  ASSERT_EQ(lane_names.size(),
            static_cast<size_t>(2 + run.meta.num_queries));
  EXPECT_NE(lane_names[0.0].find("scheduler"), std::string::npos);
  EXPECT_NE(lane_names[0.0].find(run.meta.policy), std::string::npos);
  EXPECT_EQ(lane_names[1.0], "arrivals");
  EXPECT_EQ(lane_names[2.0], "Q0");
}

TEST(ChromeTraceTest, SchedDecisionArgsCarryCandidatesAndPriority) {
  const TracedRun run = RunTracedSimulation();
  const std::string text = ChromeTraceJson(run.tracer->Events(), run.meta);
  JsonValue root;
  ASSERT_TRUE(JsonParser(text).Parse(&root));

  int64_t decisions = 0;
  for (const JsonValue& event : root.At("traceEvents").array) {
    if (event.At("name").string != "sched_decision") continue;
    ++decisions;
    const JsonValue& args = event.At("args");
    EXPECT_GE(args.At("candidates").number, 1.0);
    EXPECT_TRUE(args.Has("priority"));
    EXPECT_GE(args.At("unit").number, 0.0);
  }
  EXPECT_GT(decisions, 0);
}

TEST(ChromeTraceTest, WriteChromeTraceRoundTripsThroughAFile) {
  const TracedRun run = RunTracedSimulation();
  const std::string path = testing::TempDir() + "/aqsios_trace_test.json";
  ASSERT_TRUE(WriteChromeTrace(path, *run.tracer, run.meta).ok());

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  std::string text = buffer.str();
  while (!text.empty() && text.back() == '\n') text.pop_back();
  JsonValue root;
  EXPECT_TRUE(JsonParser(text).Parse(&root));
  EXPECT_GT(root.At("traceEvents").array.size(), 0u);
  std::remove(path.c_str());
}

TEST(ChromeTraceTest, FailsCleanlyOnUnwritablePath) {
  EventTracer tracer(4);
  const Status status =
      WriteChromeTrace("/nonexistent-dir/trace.json", tracer, {});
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace aqsios::obs
