// Per-class admission control at the shard router (docs/overload.md):
// lane construction from the plan's dominant cost classes, budget caps
// under adversarial bursts, DRS-style reallocation, and determinism of the
// end-to-end capped sharded run.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/report.h"
#include "core/sharded_dsms.h"
#include "query/workload.h"
#include "sched/admission.h"
#include "sched/shard_router.h"

namespace aqsios::sched {
namespace {

query::Workload MakeWorkload(int queries, int64_t arrivals,
                             double utilization = 2.0, uint64_t seed = 42) {
  query::WorkloadConfig config;
  config.num_queries = queries;
  config.num_arrivals = arrivals;
  config.utilization = utilization;
  config.seed = seed;
  return query::GenerateWorkload(config);
}

TEST(AdmissionControllerTest, LanesCoverEverySubscribedShard) {
  const query::Workload workload = MakeWorkload(64, 500);
  const ShardAssignment assignment =
      AssignShards(workload.plan, 4, 0x5eedc0de);
  AdmissionConfig config;
  config.enabled = true;
  config.tuples_per_window = 100;
  const AdmissionController admission(workload.plan, assignment, config);

  ASSERT_GT(admission.num_lanes(), 0);
  // Single-stream workload: every non-empty shard subscribes to stream 0
  // and must own a lane metering a real cost class.
  for (int s = 0; s < 4; ++s) {
    if (assignment.queries_of_shard[static_cast<size_t>(s)].empty()) {
      EXPECT_EQ(admission.LaneOf(s, 0), -1);
      continue;
    }
    const int lane = admission.LaneOf(s, 0);
    ASSERT_GE(lane, 0);
    EXPECT_EQ(admission.LaneShard(lane), s);
    EXPECT_GE(admission.LaneClass(lane), 0);
  }
  // Unsubscribed streams have no lane and are never metered.
  EXPECT_EQ(admission.LaneOf(0, 999), -1);
}

TEST(AdmissionControllerTest, CapsAreRespectedUnderAnAdversarialBurst) {
  // All arrivals land inside one window. Each lane may admit at most its
  // budget; everything else must be rejected and accounted.
  const query::Workload workload = MakeWorkload(48, 500);
  const ShardAssignment assignment =
      AssignShards(workload.plan, 2, 0x5eedc0de);
  AdmissionConfig config;
  config.enabled = true;
  config.tuples_per_window = 40;
  config.window_seconds = 1e9;  // the whole run is one window
  AdmissionController admission(workload.plan, assignment, config);

  std::vector<int64_t> admitted(2, 0);
  for (int64_t i = 0; i < 1000; ++i) {
    for (int s = 0; s < 2; ++s) {
      if (admission.Admit(s, 0, 0.001 * static_cast<double>(i))) {
        ++admitted[static_cast<size_t>(s)];
      }
    }
  }
  int64_t total_budget = 0;
  for (int64_t b : admission.budgets()) total_budget += b;
  for (int s = 0; s < 2; ++s) {
    const int lane = admission.LaneOf(s, 0);
    ASSERT_GE(lane, 0);
    EXPECT_EQ(admitted[static_cast<size_t>(s)],
              admission.budgets()[static_cast<size_t>(lane)])
        << "shard " << s;
  }
  EXPECT_EQ(admission.offered(), 2000);
  EXPECT_EQ(admission.dropped(), 2000 - admitted[0] - admitted[1]);
  EXPECT_LE(admitted[0] + admitted[1], total_budget);
  // Per-shard drop accounting adds up to the total.
  int64_t per_shard_total = 0;
  for (int64_t d : admission.dropped_per_shard()) per_shard_total += d;
  EXPECT_EQ(per_shard_total, admission.dropped());
}

TEST(AdmissionControllerTest, WindowRollRefillsBudgets) {
  const query::Workload workload = MakeWorkload(16, 100);
  const ShardAssignment assignment =
      AssignShards(workload.plan, 1, 0x5eedc0de);
  AdmissionConfig config;
  config.enabled = true;
  config.tuples_per_window = 5;
  config.window_seconds = 1.0;
  AdmissionController admission(workload.plan, assignment, config);

  int admitted_first = 0;
  for (int i = 0; i < 20; ++i) {
    if (admission.Admit(0, 0, 0.1)) ++admitted_first;
  }
  EXPECT_EQ(admitted_first, 5) << "first window capped at the budget";
  int admitted_second = 0;
  for (int i = 0; i < 20; ++i) {
    if (admission.Admit(0, 0, 1.5)) ++admitted_second;
  }
  EXPECT_EQ(admitted_second, 5) << "a fresh window refills the budget";
}

TEST(AdmissionControllerTest, ReallocationFollowsDemand) {
  // Two shards, one receiving 9x the traffic: after a few EWMA windows the
  // hot lane's budget must exceed the cold one's, and the cold lane must
  // keep at least the min-share floor.
  const query::Workload workload = MakeWorkload(64, 500);
  const ShardAssignment assignment =
      AssignShards(workload.plan, 2, 0x5eedc0de);
  AdmissionConfig config;
  config.enabled = true;
  config.tuples_per_window = 100;
  config.window_seconds = 1.0;
  config.min_share = 0.05;
  AdmissionController admission(workload.plan, assignment, config);
  const int hot = admission.LaneOf(0, 0);
  const int cold = admission.LaneOf(1, 0);
  ASSERT_GE(hot, 0);
  ASSERT_GE(cold, 0);

  for (int window = 0; window < 6; ++window) {
    const double base = static_cast<double>(window);
    for (int i = 0; i < 90; ++i) admission.Admit(0, 0, base + 0.5);
    for (int i = 0; i < 10; ++i) admission.Admit(1, 0, base + 0.6);
  }
  const std::vector<int64_t>& budgets = admission.budgets();
  EXPECT_GT(budgets[static_cast<size_t>(hot)],
            budgets[static_cast<size_t>(cold)]);
  EXPECT_GE(budgets[static_cast<size_t>(cold)],
            static_cast<int64_t>(0.05 * 100.0 / 2.0))
      << "the floor must keep the cold lane alive";
}

TEST(AdmissionControllerTest, DisabledBudgetAdmitsEverything) {
  const query::Workload workload = MakeWorkload(16, 100);
  const ShardAssignment assignment =
      AssignShards(workload.plan, 2, 0x5eedc0de);
  AdmissionConfig config;
  config.enabled = true;
  config.tuples_per_window = 0;  // track demand, never drop
  AdmissionController admission(workload.plan, assignment, config);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(admission.Admit(i % 2, 0, 0.01 * static_cast<double>(i)));
  }
  EXPECT_EQ(admission.dropped(), 0);
}

TEST(AdmissionControllerTest, DecisionsAreAPureFunctionOfTheCallSequence) {
  const query::Workload workload = MakeWorkload(48, 500);
  const ShardAssignment assignment =
      AssignShards(workload.plan, 2, 0x5eedc0de);
  AdmissionConfig config;
  config.enabled = true;
  config.tuples_per_window = 30;
  config.window_seconds = 0.5;
  AdmissionController a(workload.plan, assignment, config);
  AdmissionController b(workload.plan, assignment, config);
  for (const stream::Arrival& arrival : workload.arrivals.arrivals) {
    for (int s = 0; s < 2; ++s) {
      EXPECT_EQ(a.Admit(s, arrival.stream, arrival.time),
                b.Admit(s, arrival.stream, arrival.time));
    }
  }
  EXPECT_EQ(a.dropped(), b.dropped());
  EXPECT_EQ(a.budgets(), b.budgets());
}

TEST(AdmissionEndToEndTest, CappedShardedRunIsDeterministicAndAccounted) {
  const query::Workload workload = MakeWorkload(64, 2000);
  core::SimulationOptions options;
  options.shards = 4;
  options.admission.enabled = true;
  options.admission.window_seconds = 1.0;
  options.admission.tuples_per_window = 200;

  const sched::PolicyConfig policy = PolicyConfig::Of(PolicyKind::kHnr);
  const core::ShardedRunResult a =
      core::SimulateSharded(workload, policy, options);
  const core::ShardedRunResult b =
      core::SimulateSharded(workload, policy, options);

  int64_t dropped = 0;
  for (size_t s = 0; s < a.shard_stats.size(); ++s) {
    EXPECT_EQ(a.shard_stats[s].arrivals, b.shard_stats[s].arrivals);
    EXPECT_EQ(a.shard_stats[s].admission_dropped,
              b.shard_stats[s].admission_dropped);
    dropped += a.shard_stats[s].admission_dropped;
  }
  EXPECT_GT(dropped, 0) << "a tight budget under overload must drop";
  EXPECT_EQ(core::RunResultToJson(a.result), core::RunResultToJson(b.result));

  // Uncapped run for contrast: no drops, more tuples delivered.
  core::SimulationOptions uncapped = options;
  uncapped.admission.enabled = false;
  const core::ShardedRunResult full =
      core::SimulateSharded(workload, policy, uncapped);
  for (const core::ShardRunStats& stats : full.shard_stats) {
    EXPECT_EQ(stats.admission_dropped, 0);
  }
  EXPECT_GT(full.result.qos.tuples_emitted, a.result.qos.tuples_emitted);
}

}  // namespace
}  // namespace aqsios::sched
