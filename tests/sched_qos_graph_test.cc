#include "sched/qos_graph.h"

#include <gtest/gtest.h>

#include "gtest_compat.h"

#include "core/dsms.h"
#include "query/workload.h"
#include "sched/policy.h"

namespace aqsios::sched {
namespace {

TEST(QosGraphTest, UtilityInterpolation) {
  const QosGraph graph({{0.0, 1.0}, {1.0, 1.0}, {3.0, 0.0}});
  EXPECT_DOUBLE_EQ(graph.UtilityAt(0.0), 1.0);
  EXPECT_DOUBLE_EQ(graph.UtilityAt(0.5), 1.0);
  EXPECT_DOUBLE_EQ(graph.UtilityAt(1.0), 1.0);
  EXPECT_DOUBLE_EQ(graph.UtilityAt(2.0), 0.5);
  EXPECT_DOUBLE_EQ(graph.UtilityAt(3.0), 0.0);
  EXPECT_DOUBLE_EQ(graph.UtilityAt(10.0), 0.0);
}

TEST(QosGraphTest, DecayRate) {
  const QosGraph graph({{0.0, 1.0}, {1.0, 1.0}, {3.0, 0.0}});
  EXPECT_DOUBLE_EQ(graph.DecayRateAt(0.5), 0.0);   // flat segment
  EXPECT_DOUBLE_EQ(graph.DecayRateAt(2.0), 0.5);   // 1 utility over 2 s
  EXPECT_DOUBLE_EQ(graph.DecayRateAt(5.0), 0.0);   // past the cliff
}

TEST(QosGraphTest, FlatThenLinearFactory) {
  const QosGraph graph = QosGraph::FlatThenLinear(2.0, 6.0);
  EXPECT_DOUBLE_EQ(graph.UtilityAt(1.0), 1.0);
  EXPECT_DOUBLE_EQ(graph.UtilityAt(4.0), 0.5);
  EXPECT_DOUBLE_EQ(graph.DecayRateAt(3.0), 0.25);
}

TEST(QosGraphDeathTest, RejectsMalformedGraphs) {
  AQSIOS_GTEST_SET_FLAG(death_test_style, "threadsafe");
  EXPECT_DEATH(QosGraph({{1.0, 1.0}, {1.0, 0.5}}), "increasing");
  EXPECT_DEATH(QosGraph({{0.0, 0.5}, {1.0, 0.8}}), "non-increasing");
  EXPECT_DEATH(QosGraph({}), "");
}

Unit UnitWith(int id, double output_rate, SimTime ideal_time) {
  Unit unit;
  unit.id = id;
  unit.query = id;
  unit.stats.output_rate = output_rate;
  unit.stats.ideal_time = ideal_time;
  return unit;
}

TEST(QosGraphSchedulerTest, PicksSteepestUtilityLoss) {
  UnitTable units;
  // Unit 0: T = 1 s -> decays over [5 s, 50 s]. Unit 1: T = 0.01 s ->
  // decays over [0.05 s, 0.5 s].
  units.push_back(UnitWith(0, 1.0, 1.0));
  units.push_back(UnitWith(1, 1.0, 0.01));
  QosGraphScheduler scheduler(QosGraphOptions{});
  scheduler.Attach(&units);
  units[0].queue.push_back(QueueEntry{0, 0.0});
  scheduler.OnEnqueue(0);
  units[1].queue.push_back(QueueEntry{1, 0.0});
  scheduler.OnEnqueue(1);
  // At t = 0.1 s: unit 0 still flat (priority 0); unit 1 decaying.
  SchedulingCost cost;
  std::vector<int> out;
  ASSERT_TRUE(scheduler.PickNext(0.1, &cost, &out));
  EXPECT_EQ(out.front(), 1);
}

TEST(QosGraphSchedulerTest, FallsBackToRateWhenAllFlat) {
  UnitTable units;
  units.push_back(UnitWith(0, /*rate=*/2.0, 1.0));
  units.push_back(UnitWith(1, /*rate=*/9.0, 1.0));
  QosGraphScheduler scheduler(QosGraphOptions{});
  scheduler.Attach(&units);
  for (int u = 0; u < 2; ++u) {
    units[static_cast<size_t>(u)].queue.push_back(QueueEntry{0, 0.0});
    scheduler.OnEnqueue(u);
  }
  // Immediately after arrival everything is on the flat segment.
  SchedulingCost cost;
  std::vector<int> out;
  ASSERT_TRUE(scheduler.PickNext(0.001, &cost, &out));
  EXPECT_EQ(out.front(), 1);  // higher output rate
}

TEST(QosGraphSchedulerTest, ZeroUtilityTuplesStillServed) {
  UnitTable units;
  units.push_back(UnitWith(0, 1.0, 0.001));
  QosGraphScheduler scheduler(QosGraphOptions{});
  scheduler.Attach(&units);
  units[0].queue.push_back(QueueEntry{0, 0.0});
  scheduler.OnEnqueue(0);
  // Way past the graph cliff: decay 0 everywhere, fallback must fire.
  SchedulingCost cost;
  std::vector<int> out;
  ASSERT_TRUE(scheduler.PickNext(1000.0, &cost, &out));
  EXPECT_EQ(out.front(), 0);
}

TEST(QosGraphSchedulerTest, EndToEndComparableToSlowdownPolicies) {
  query::WorkloadConfig config;
  config.num_queries = 20;
  config.num_arrivals = 3000;
  config.utilization = 0.9;
  config.seed = 17;
  const query::Workload workload = query::GenerateWorkload(config);
  const core::RunResult qos_graph = core::Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kQosGraph));
  const core::RunResult rr = core::Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kRoundRobin));
  EXPECT_EQ(qos_graph.policy_name, "QoS-Graph");
  EXPECT_EQ(qos_graph.qos.tuples_emitted, rr.qos.tuples_emitted);
  EXPECT_GE(qos_graph.qos.avg_slowdown, 1.0);
  // Latency-aware: clearly better than the blind baseline.
  EXPECT_LT(qos_graph.qos.avg_slowdown, rr.qos.avg_slowdown);
}

}  // namespace
}  // namespace aqsios::sched
