#include "query/workload.h"

#include "stream/trace.h"

#include <cmath>
#include <cstdio>
#include <set>

#include <gtest/gtest.h>

#include "gtest_compat.h"

namespace aqsios::query {
namespace {

WorkloadConfig SmallConfig() {
  WorkloadConfig config;
  config.num_queries = 20;
  config.num_arrivals = 2000;
  config.utilization = 0.8;
  config.seed = 7;
  return config;
}

TEST(WorkloadTest, GeneratesRequestedPopulation) {
  const Workload w = GenerateWorkload(SmallConfig());
  EXPECT_EQ(w.plan.num_queries(), 20);
  EXPECT_EQ(w.plan.num_streams(), 1);
  EXPECT_EQ(w.arrivals.size(), 2000);
  EXPECT_GT(w.scale_factor_k_ms, 0.0);
}

TEST(WorkloadTest, QueriesAreSelectJoinProject) {
  const Workload w = GenerateWorkload(SmallConfig());
  for (const CompiledQuery& q : w.plan.queries()) {
    ASSERT_EQ(q.chain_length(), 3);
    const auto& ops = q.spec().left_ops;
    EXPECT_EQ(ops[0].kind, OperatorKind::kSelect);
    EXPECT_EQ(ops[1].kind, OperatorKind::kStoredJoin);
    EXPECT_EQ(ops[2].kind, OperatorKind::kProject);
    // Same selectivity for select and join (paper §8), project passes all.
    EXPECT_DOUBLE_EQ(ops[0].selectivity, ops[1].selectivity);
    EXPECT_DOUBLE_EQ(ops[2].selectivity, 1.0);
    // Same cost for all operators of a query: K·2^i.
    EXPECT_DOUBLE_EQ(ops[0].cost_ms, ops[1].cost_ms);
    EXPECT_DOUBLE_EQ(ops[0].cost_ms, ops[2].cost_ms);
    const double expected_cost =
        w.scale_factor_k_ms * std::pow(2.0, q.spec().cost_class);
    EXPECT_NEAR(ops[0].cost_ms, expected_cost, 1e-12);
  }
}

TEST(WorkloadTest, CostClassesAndSelectivitiesInRange) {
  const Workload w = GenerateWorkload(SmallConfig());
  std::set<int> classes;
  for (const CompiledQuery& q : w.plan.queries()) {
    EXPECT_GE(q.spec().cost_class, 0);
    EXPECT_LT(q.spec().cost_class, 5);
    classes.insert(q.spec().cost_class);
    EXPECT_GE(q.spec().class_selectivity, 0.1 - 1e-12);
    EXPECT_LE(q.spec().class_selectivity, 1.0 + 1e-12);
  }
  EXPECT_GE(classes.size(), 3u) << "cost classes should be diverse";
}

TEST(WorkloadTest, QuantizedSelectivitiesOnDecileGrid) {
  WorkloadConfig config = SmallConfig();
  config.num_queries = 200;
  const Workload w = GenerateWorkload(config);
  for (const CompiledQuery& q : w.plan.queries()) {
    const double s = q.spec().class_selectivity;
    const double snapped = std::round(s * 10.0) / 10.0;
    EXPECT_NEAR(s, snapped, 1e-9) << "selectivity should be on 0.1 grid";
  }
}

TEST(WorkloadTest, CalibrationHitsTargetUtilization) {
  for (double target : {0.3, 0.7, 0.95}) {
    WorkloadConfig config = SmallConfig();
    config.utilization = target;
    const Workload w = GenerateWorkload(config);
    // Expected work per arrival divided by mean inter-arrival must equal the
    // target (the calibration identity of §8).
    const double tau = w.arrivals.MeanInterArrival();
    const double work = w.plan.ExpectedWorkPerArrival(0);
    EXPECT_NEAR(work / tau, target, 1e-9);
    EXPECT_NEAR(w.expected_utilization, target, 1e-9);
  }
}

TEST(WorkloadTest, DeterministicInSeed) {
  const Workload a = GenerateWorkload(SmallConfig());
  const Workload b = GenerateWorkload(SmallConfig());
  ASSERT_EQ(a.plan.num_queries(), b.plan.num_queries());
  EXPECT_DOUBLE_EQ(a.scale_factor_k_ms, b.scale_factor_k_ms);
  for (int i = 0; i < a.plan.num_queries(); ++i) {
    EXPECT_DOUBLE_EQ(a.plan.query(i).spec().class_selectivity,
                     b.plan.query(i).spec().class_selectivity);
    EXPECT_EQ(a.plan.query(i).spec().cost_class,
              b.plan.query(i).spec().cost_class);
  }
  for (int64_t i = 0; i < a.arrivals.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.arrivals.arrivals[static_cast<size_t>(i)].time,
                     b.arrivals.arrivals[static_cast<size_t>(i)].time);
  }
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  WorkloadConfig other = SmallConfig();
  other.seed = 8;
  const Workload a = GenerateWorkload(SmallConfig());
  const Workload b = GenerateWorkload(other);
  bool any_difference = false;
  for (int i = 0; i < a.plan.num_queries() && !any_difference; ++i) {
    any_difference =
        a.plan.query(i).spec().cost_class != b.plan.query(i).spec().cost_class ||
        a.plan.query(i).spec().class_selectivity !=
            b.plan.query(i).spec().class_selectivity;
  }
  EXPECT_TRUE(any_difference);
}

TEST(WorkloadTest, SharingGroupsPartitionQueries) {
  WorkloadConfig config = SmallConfig();
  config.sharing_group_size = 5;
  const Workload w = GenerateWorkload(config);
  ASSERT_EQ(w.plan.sharing_groups().size(), 4u);
  std::set<QueryId> seen;
  for (const SharingGroup& group : w.plan.sharing_groups()) {
    EXPECT_EQ(group.members.size(), 5u);
    const CompiledQuery& first = w.plan.query(group.members.front());
    for (QueryId member : group.members) {
      EXPECT_TRUE(seen.insert(member).second);
      const auto& leaf = w.plan.query(member).spec().left_ops.front();
      EXPECT_DOUBLE_EQ(leaf.cost_ms, first.spec().left_ops.front().cost_ms);
      EXPECT_DOUBLE_EQ(leaf.selectivity,
                       first.spec().left_ops.front().selectivity);
    }
  }
  EXPECT_EQ(seen.size(), 20u);
  // Calibration still hits the target with the sharing discount.
  EXPECT_NEAR(w.plan.ExpectedWorkPerArrival(0) / w.arrivals.MeanInterArrival(),
              config.utilization, 1e-9);
}

TEST(WorkloadTest, MultiStreamWorkload) {
  WorkloadConfig config = SmallConfig();
  config.multi_stream = true;
  config.arrival_pattern = ArrivalPattern::kPoisson;
  config.poisson_rate = 20.0;
  config.num_arrivals = 4000;
  config.num_join_keys = 1;
  const Workload w = GenerateWorkload(config);
  EXPECT_EQ(w.plan.num_streams(), 2);
  for (const CompiledQuery& q : w.plan.queries()) {
    ASSERT_TRUE(q.is_multi_stream());
    EXPECT_GE(q.spec().join_op->window_seconds, 1.0);
    EXPECT_LE(q.spec().join_op->window_seconds, 10.0);
  }
  // Both streams populated, each with ~half the arrivals.
  int64_t left = 0;
  for (const stream::Arrival& a : w.arrivals.arrivals) {
    if (a.stream == 0) ++left;
  }
  EXPECT_EQ(left, 2000);
  // Calibration: total work rate across both streams equals the target.
  const double rate =
      w.plan.ExpectedWorkPerArrival(0) / w.arrivals.MeanInterArrival(0) +
      w.plan.ExpectedWorkPerArrival(1) / w.arrivals.MeanInterArrival(1);
  EXPECT_NEAR(rate, config.utilization, 1e-9);
}

TEST(WorkloadTest, TraceFileReplay) {
  // Write a deterministic trace, replay it as the workload's arrivals.
  const std::string path = testing::TempDir() + "/workload.trace";
  std::vector<SimTime> timestamps;
  for (int i = 0; i < 500; ++i) timestamps.push_back(0.01 * i);
  ASSERT_TRUE(stream::WriteTrace(path, timestamps).ok());

  WorkloadConfig config = SmallConfig();
  config.arrival_pattern = ArrivalPattern::kTraceFile;
  config.trace_path = path;
  config.num_arrivals = 400;  // cap below the trace length
  const Workload w = GenerateWorkload(config);
  ASSERT_EQ(w.arrivals.size(), 400);
  for (int64_t i = 0; i < w.arrivals.size(); ++i) {
    EXPECT_NEAR(w.arrivals.arrivals[static_cast<size_t>(i)].time, 0.01 * i,
                1e-9);
  }
  // Calibration against the trace's inter-arrival time still holds.
  EXPECT_NEAR(w.plan.ExpectedWorkPerArrival(0) / w.arrivals.MeanInterArrival(),
              config.utilization, 1e-9);
  std::remove(path.c_str());
}

TEST(WorkloadTest, TraceShorterThanRequestedTruncates) {
  const std::string path = testing::TempDir() + "/short.trace";
  ASSERT_TRUE(stream::WriteTrace(path, {0.0, 0.5, 1.0, 1.5}).ok());
  WorkloadConfig config = SmallConfig();
  config.arrival_pattern = ArrivalPattern::kTraceFile;
  config.trace_path = path;
  config.num_arrivals = 100;
  const Workload w = GenerateWorkload(config);
  EXPECT_EQ(w.arrivals.size(), 4);
  std::remove(path.c_str());
}

TEST(WorkloadTest, ArrivalPatternNames) {
  EXPECT_STREQ(ArrivalPatternName(ArrivalPattern::kOnOff), "onoff");
  EXPECT_STREQ(ArrivalPatternName(ArrivalPattern::kPoisson), "poisson");
  EXPECT_STREQ(ArrivalPatternName(ArrivalPattern::kDeterministic),
               "deterministic");
}

TEST(WorkloadDeathTest, RejectsBadConfigs) {
  AQSIOS_GTEST_SET_FLAG(death_test_style, "threadsafe");
  WorkloadConfig zero_queries = SmallConfig();
  zero_queries.num_queries = 0;
  EXPECT_DEATH(GenerateWorkload(zero_queries), "");
  WorkloadConfig sharing_multi = SmallConfig();
  sharing_multi.multi_stream = true;
  sharing_multi.sharing_group_size = 5;
  EXPECT_DEATH(GenerateWorkload(sharing_multi), "single-stream");
}

}  // namespace
}  // namespace aqsios::query
