#include "query/query.h"

#include <gtest/gtest.h>

#include "gtest_compat.h"

#include "query/operator.h"

namespace aqsios::query {
namespace {

QuerySpec SimpleChain(QueryId id, std::vector<OperatorSpec> ops) {
  QuerySpec spec;
  spec.id = id;
  spec.left_stream = 0;
  spec.left_ops = std::move(ops);
  return spec;
}

TEST(OperatorSpecTest, CostConversionAndNames) {
  const OperatorSpec op = MakeSelect(5.0, 0.5);
  EXPECT_DOUBLE_EQ(op.cost(), 0.005);
  EXPECT_STREQ(OperatorKindName(op.kind), "select");
  EXPECT_STREQ(OperatorKindName(OperatorKind::kWindowJoin), "window_join");
  EXPECT_NE(op.ToString().find("select"), std::string::npos);
}

TEST(CompiledQueryTest, SingleOperatorStats) {
  // Example 1 of the paper, Q1: one operator, cost 5 ms, selectivity 1.0.
  CompiledQuery q1(SimpleChain(0, {MakeSelect(5.0, 1.0)}),
                   SelectivityMode::kIndependent);
  const SegmentStats stats = q1.LeafStats();
  EXPECT_DOUBLE_EQ(stats.selectivity, 1.0);
  EXPECT_DOUBLE_EQ(SimTimeToMillis(stats.expected_cost), 5.0);
  EXPECT_DOUBLE_EQ(SimTimeToMillis(stats.ideal_time), 5.0);
  // HR priority 1/5 per ms = 0.2/ms = 200/s.
  EXPECT_NEAR(stats.OutputRate(), 200.0, 1e-9);
  // HNR priority 1/(5*5) per ms^2 = 0.04/ms².
  EXPECT_NEAR(stats.NormalizedRate(), 0.04 * 1e6, 1e-3);
}

TEST(CompiledQueryTest, Example1PriorityOrderingFlipsBetweenHrAndHnr) {
  // Q1: c=5ms s=1.0; Q2: c=2ms s=0.33 (paper Example 1). HR prefers Q1,
  // HNR prefers Q2.
  CompiledQuery q1(SimpleChain(0, {MakeSelect(5.0, 1.0)}),
                   SelectivityMode::kIndependent);
  CompiledQuery q2(SimpleChain(1, {MakeSelect(2.0, 0.33)}),
                   SelectivityMode::kIndependent);
  EXPECT_GT(q1.LeafStats().OutputRate(), q2.LeafStats().OutputRate());
  EXPECT_LT(q1.LeafStats().NormalizedRate(), q2.LeafStats().NormalizedRate());
}

TEST(CompiledQueryTest, ChainExpectedCostDiscountsBySelectivity) {
  // C̄ = c1 + s1·c2 + s1·s2·c3 (independent mode).
  CompiledQuery q(SimpleChain(0, {MakeSelect(1.0, 0.5),
                                  MakeStoredJoin(2.0, 0.4),
                                  MakeProject(3.0)}),
                  SelectivityMode::kIndependent);
  const SegmentStats leaf = q.LeafStats();
  EXPECT_NEAR(SimTimeToMillis(leaf.expected_cost),
              1.0 + 0.5 * 2.0 + 0.5 * 0.4 * 3.0, 1e-9);
  EXPECT_NEAR(leaf.selectivity, 0.5 * 0.4, 1e-12);
  EXPECT_NEAR(SimTimeToMillis(leaf.ideal_time), 6.0, 1e-9);
}

TEST(CompiledQueryTest, MidChainSegmentStats) {
  CompiledQuery q(SimpleChain(0, {MakeSelect(1.0, 0.5),
                                  MakeStoredJoin(2.0, 0.4),
                                  MakeProject(3.0)}),
                  SelectivityMode::kIndependent);
  // Segment starting at operator 1: S = 0.4, C̄ = 2 + 0.4·3, T unchanged.
  const SegmentStats mid = q.ChainSegmentStats(1);
  EXPECT_NEAR(mid.selectivity, 0.4, 1e-12);
  EXPECT_NEAR(SimTimeToMillis(mid.expected_cost), 2.0 + 0.4 * 3.0, 1e-9);
  EXPECT_NEAR(SimTimeToMillis(mid.ideal_time), 6.0, 1e-9);
  // Root segment: just the project.
  const SegmentStats root = q.ChainSegmentStats(2);
  EXPECT_NEAR(root.selectivity, 1.0, 1e-12);
  EXPECT_NEAR(SimTimeToMillis(root.expected_cost), 3.0, 1e-9);
}

TEST(CompiledQueryTest, CorrelatedModeCollapsesEqualSelectivities) {
  // Paper §8: all filters of a query share the same predicate attribute, so
  // with equal selectivities the global selectivity is s, not s².
  CompiledQuery q(SimpleChain(0, {MakeSelect(1.0, 0.5),
                                  MakeStoredJoin(2.0, 0.5),
                                  MakeProject(3.0)}),
                  SelectivityMode::kCorrelatedAttribute);
  const SegmentStats leaf = q.LeafStats();
  EXPECT_NEAR(leaf.selectivity, 0.5, 1e-12);
  // Survivors of the first filter pass the rest: C̄ = 1 + 0.5·(2+3).
  EXPECT_NEAR(SimTimeToMillis(leaf.expected_cost), 1.0 + 0.5 * 5.0, 1e-9);
  // Effective selectivities are (0.5, 1, 1).
  EXPECT_NEAR(q.EffectiveChainSelectivity(0), 0.5, 1e-12);
  EXPECT_NEAR(q.EffectiveChainSelectivity(1), 1.0, 1e-12);
  EXPECT_NEAR(q.EffectiveChainSelectivity(2), 1.0, 1e-12);
}

TEST(CompiledQueryTest, CorrelatedModeDecreasingThresholds) {
  // Mixed selectivities: conditional pass prob = min-chain ratio.
  CompiledQuery q(SimpleChain(0, {MakeSelect(1.0, 0.8),
                                  MakeStoredJoin(1.0, 0.2),
                                  MakeProject(1.0)}),
                  SelectivityMode::kCorrelatedAttribute);
  EXPECT_NEAR(q.EffectiveChainSelectivity(0), 0.8, 1e-12);
  EXPECT_NEAR(q.EffectiveChainSelectivity(1), 0.25, 1e-12);  // 0.2/0.8
  EXPECT_NEAR(q.LeafStats().selectivity, 0.2, 1e-12);
}

TEST(CompiledQueryTest, HnrEqualsSrptWhenSelectivityOne) {
  // §3.5: with all selectivities 1, both HR and HNR order by 1/T (SRPT).
  CompiledQuery cheap(SimpleChain(0, {MakeSelect(1.0, 1.0),
                                      MakeProject(1.0)}),
                      SelectivityMode::kIndependent);
  CompiledQuery pricey(SimpleChain(1, {MakeSelect(4.0, 1.0),
                                       MakeProject(4.0)}),
                       SelectivityMode::kIndependent);
  EXPECT_GT(cheap.LeafStats().OutputRate(), pricey.LeafStats().OutputRate());
  EXPECT_GT(cheap.LeafStats().NormalizedRate(),
            pricey.LeafStats().NormalizedRate());
  // And C̄ == T for both.
  EXPECT_DOUBLE_EQ(cheap.LeafStats().expected_cost,
                   cheap.LeafStats().ideal_time);
  EXPECT_DOUBLE_EQ(pricey.LeafStats().expected_cost,
                   pricey.LeafStats().ideal_time);
}

QuerySpec TwoStreamSpec() {
  QuerySpec spec;
  spec.id = 0;
  spec.left_stream = 0;
  spec.right_stream = 1;
  spec.left_ops = {MakeSelect(1.0, 0.5)};
  spec.right_ops = {MakeSelect(2.0, 0.4)};
  spec.join_op = MakeWindowJoin(3.0, 0.25, /*window_seconds=*/2.0);
  spec.common_ops = {MakeProject(4.0)};
  spec.left_mean_inter_arrival = 0.1;   // τ_l
  spec.right_mean_inter_arrival = 0.2;  // τ_r
  return spec;
}

TEST(CompiledQueryTest, MultiStreamIdealTimeDefinition6) {
  CompiledQuery q(TwoStreamSpec(), SelectivityMode::kIndependent);
  // T = C_L + C_R + 2·C_J + C_C = 1 + 2 + 6 + 4 ms.
  EXPECT_NEAR(SimTimeToMillis(q.ideal_time()), 13.0, 1e-9);
  EXPECT_NEAR(SimTimeToMillis(q.TotalSideCost(Side::kLeft)), 1.0, 1e-9);
  EXPECT_NEAR(SimTimeToMillis(q.TotalSideCost(Side::kRight)), 2.0, 1e-9);
  EXPECT_NEAR(SimTimeToMillis(q.JoinCost()), 3.0, 1e-9);
  EXPECT_NEAR(SimTimeToMillis(q.TotalCommonCost()), 4.0, 1e-9);
}

TEST(CompiledQueryTest, MultiStreamWindowPartners) {
  CompiledQuery q(TwoStreamSpec(), SelectivityMode::kIndependent);
  // Partners of a left tuple: S_R · V/τ_R = 0.4 · 2/0.2 = 4.
  EXPECT_NEAR(q.ExpectedWindowPartners(Side::kLeft), 4.0, 1e-9);
  // Partners of a right tuple: S_L · V/τ_L = 0.5 · 2/0.1 = 10.
  EXPECT_NEAR(q.ExpectedWindowPartners(Side::kRight), 10.0, 1e-9);
}

TEST(CompiledQueryTest, MultiStreamSideLeafStats) {
  CompiledQuery q(TwoStreamSpec(), SelectivityMode::kIndependent);
  const SegmentStats left = q.SideLeafStats(Side::kLeft);
  // S_LL = S_L·S_J·(S_R·V/τ_R)·S_C = 0.5·0.25·4·1 = 0.5.
  EXPECT_NEAR(left.selectivity, 0.5, 1e-9);
  // C̄_LL = C_L + S_L·C_J + S_L·S_J·(S_R·V/τ_R)·C_C
  //      = 1 + 0.5·3 + 0.5·0.25·4·4 = 4.5 ms.
  EXPECT_NEAR(SimTimeToMillis(left.expected_cost), 4.5, 1e-9);
  EXPECT_NEAR(SimTimeToMillis(left.ideal_time), 13.0, 1e-9);

  const SegmentStats right = q.SideLeafStats(Side::kRight);
  // S_RR = 0.4·0.25·10·1 = 1.0 (join selectivity may exceed filter range).
  EXPECT_NEAR(right.selectivity, 1.0, 1e-9);
  // C̄_RR = 2 + 0.4·3 + 0.4·0.25·10·4 = 7.2 ms.
  EXPECT_NEAR(SimTimeToMillis(right.expected_cost), 7.2, 1e-9);
}

TEST(CompiledQueryTest, MultiStreamIdealCompositePath) {
  CompiledQuery q(TwoStreamSpec(), SelectivityMode::kIndependent);
  // Trigger left: C_L + C_J + C_C = 1+3+4; trigger right: 2+3+4.
  EXPECT_NEAR(SimTimeToMillis(q.IdealCompositePathCost(Side::kLeft)), 8.0,
              1e-9);
  EXPECT_NEAR(SimTimeToMillis(q.IdealCompositePathCost(Side::kRight)), 9.0,
              1e-9);
}

TEST(CompiledQueryTest, ExpectedWorkPerArrival) {
  CompiledQuery single(SimpleChain(0, {MakeSelect(1.0, 0.5),
                                       MakeProject(2.0)}),
                       SelectivityMode::kIndependent);
  EXPECT_NEAR(SimTimeToMillis(single.ExpectedWorkPerArrival(0)), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(single.ExpectedWorkPerArrival(1), 0.0);

  CompiledQuery multi(TwoStreamSpec(), SelectivityMode::kIndependent);
  EXPECT_NEAR(SimTimeToMillis(multi.ExpectedWorkPerArrival(0)), 4.5, 1e-9);
  EXPECT_NEAR(SimTimeToMillis(multi.ExpectedWorkPerArrival(1)), 7.2, 1e-9);
}

TEST(CompiledQueryTest, MinOperatorCost) {
  CompiledQuery q(TwoStreamSpec(), SelectivityMode::kIndependent);
  EXPECT_NEAR(SimTimeToMillis(q.MinOperatorCost()), 1.0, 1e-9);
}

TEST(CompiledQueryDeathTest, RejectsInvalidSpecs) {
  AQSIOS_GTEST_SET_FLAG(death_test_style, "threadsafe");
  // Empty single-stream chain.
  EXPECT_DEATH(CompiledQuery(SimpleChain(0, {}),
                             SelectivityMode::kIndependent),
               "no operators");
  // Zero-cost operator.
  EXPECT_DEATH(CompiledQuery(SimpleChain(0, {MakeSelect(0.0, 0.5)}),
                             SelectivityMode::kIndependent),
               "");
  // Multi-stream without join.
  QuerySpec bad = TwoStreamSpec();
  bad.join_op.reset();
  EXPECT_DEATH(CompiledQuery(bad, SelectivityMode::kIndependent),
               "join");
  // Same stream on both sides.
  QuerySpec same = TwoStreamSpec();
  same.right_stream = same.left_stream;
  EXPECT_DEATH(CompiledQuery(same, SelectivityMode::kIndependent), "");
}

TEST(SelectivityModeTest, Names) {
  EXPECT_STREQ(SelectivityModeName(SelectivityMode::kCorrelatedAttribute),
               "correlated_attribute");
  EXPECT_STREQ(SelectivityModeName(SelectivityMode::kIndependent),
               "independent");
}

}  // namespace
}  // namespace aqsios::query
