// Tests for the extension policies: Chain (memory minimization), the
// generalized lp-norm slowdown family, Aurora's two-level RR+RB, and the
// stats-refresh (OnStatsUpdated) contract.

#include <gtest/gtest.h>

#include "gtest_compat.h"

#include "sched/basic_policies.h"
#include "sched/chain_policy.h"
#include "sched/lp_norm_policy.h"
#include "sched/policy.h"
#include "sched/two_level.h"

namespace aqsios::sched {
namespace {

// --- Chain progress-chart slopes ---------------------------------------------

TEST(ChainPolicyTest, SingleFilterSlope) {
  // One op, cost 2 ms: both filtered (0.75) and emitted (0.25) tuples leave
  // the system, so the drop is the full tuple: slope = 1 / 0.002.
  const std::vector<query::OperatorSpec> ops = {query::MakeSelect(2.0, 0.25)};
  EXPECT_NEAR(ChainEnvelopeSlope(ops, {0.25}, 0), 1.0 / 0.002, 1e-6);
}

TEST(ChainPolicyTest, SelectivityOneChainDropsViaEmission) {
  // No filtering, but survivors depart at the root: slope = 1 / total cost.
  const std::vector<query::OperatorSpec> ops = {query::MakeProject(1.0),
                                                query::MakeProject(2.0)};
  EXPECT_NEAR(ChainEnvelopeSlope(ops, {1.0, 1.0}, 0), 1.0 / 0.003, 1e-6);
}

TEST(ChainPolicyTest, EnvelopeTakesSteepestForwardSegment) {
  // Op 0: expensive no-op filter (s=1, c=10ms); op 1: sharp filter
  // (s=0.1, c=1ms). From position 0 the steepest drop needs the whole
  // segment (terminal departure): 1/11ms.
  const std::vector<query::OperatorSpec> ops = {
      query::MakeSelect(10.0, 1.0), query::MakeSelect(1.0, 0.1)};
  const double from0 = ChainEnvelopeSlope(ops, {1.0, 0.1}, 0);
  EXPECT_NEAR(from0, 1.0 / 0.011, 1e-6);
  // From position 1 the slope is much steeper.
  const double from1 = ChainEnvelopeSlope(ops, {1.0, 0.1}, 1);
  EXPECT_NEAR(from1, 1.0 / 0.001, 1e-6);
  EXPECT_GT(from1, from0);
}

TEST(ChainPolicyTest, EarlyDropBeatsLaterDrop) {
  // A chain whose first op already filters hard: the envelope slope from 0
  // is achieved at the first op alone (0.8/1ms beats 1/5ms).
  const std::vector<query::OperatorSpec> ops = {
      query::MakeSelect(1.0, 0.2), query::MakeSelect(4.0, 0.9)};
  EXPECT_NEAR(ChainEnvelopeSlope(ops, {0.2, 0.9}, 0), 0.8 / 0.001, 1e-6);
}

TEST(ChainPolicyTest, AggregateSlopeIsQueueDrainRate) {
  // One queued tuple departs per execution, whatever its fate.
  EXPECT_NEAR(AggregateSlope(0.3, 0.010), 100.0, 1e-9);
  EXPECT_NEAR(AggregateSlope(2.5, 0.010), 100.0, 1e-9);
  EXPECT_NEAR(AggregateSlope(1.0, 0.020), 50.0, 1e-9);
}

TEST(ChainPolicyTest, ChainSchedulerOrdersBySlope) {
  UnitTable units;
  for (int i = 0; i < 3; ++i) {
    Unit unit;
    unit.id = i;
    unit.query = i;
    unit.stats.ideal_time = 1.0;
    units.push_back(unit);
  }
  units[0].stats.chain_slope = 10.0;
  units[1].stats.chain_slope = 30.0;
  units[2].stats.chain_slope = 20.0;
  StaticPriorityScheduler scheduler(StaticPolicy::kChain);
  scheduler.Attach(&units);
  for (int u = 0; u < 3; ++u) {
    units[static_cast<size_t>(u)].queue.push_back(QueueEntry{0, 0.0});
    scheduler.OnEnqueue(u);
  }
  SchedulingCost cost;
  std::vector<int> out;
  ASSERT_TRUE(scheduler.PickNext(1.0, &cost, &out));
  EXPECT_EQ(out.front(), 1);
  EXPECT_STREQ(scheduler.name(), "Chain");
}

// --- lp-norm family -----------------------------------------------------------

Unit UnitWithRates(int id, double selectivity, SimTime cost, SimTime t) {
  Unit unit;
  unit.id = id;
  unit.query = id;
  unit.stats.selectivity = selectivity;
  unit.stats.expected_cost = cost;
  unit.stats.ideal_time = t;
  RederiveUnitStats(&unit.stats);
  return unit;
}

TEST(LpNormTest, P1EqualsHnrOrdering) {
  UnitTable units;
  units.push_back(UnitWithRates(0, 1.0, 0.005, 0.005));   // Example 1 Q1
  units.push_back(UnitWithRates(1, 0.33, 0.002, 0.002));  // Example 1 Q2
  LpNormScheduler scheduler(1.0);
  scheduler.Attach(&units);
  // p=1 priority is the static normalized rate regardless of wait.
  units[0].queue.push_back(QueueEntry{0, 0.0});
  units[1].queue.push_back(QueueEntry{1, 0.9});
  EXPECT_GT(scheduler.PriorityOf(units[1], 1.0),
            scheduler.PriorityOf(units[0], 1.0));
  // Same comparison much later: unchanged (no W dependence).
  EXPECT_GT(scheduler.PriorityOf(units[1], 100.0),
            scheduler.PriorityOf(units[0], 100.0));
}

TEST(LpNormTest, P2EqualsBsdPriority) {
  UnitTable units;
  units.push_back(UnitWithRates(0, 0.5, 0.004, 0.010));
  LpNormScheduler scheduler(2.0);
  scheduler.Attach(&units);
  units[0].queue.push_back(QueueEntry{0, 2.0});
  // BSD: phi * W.
  const double expected = units[0].stats.phi * (5.0 - 2.0);
  EXPECT_NEAR(scheduler.PriorityOf(units[0], 5.0), expected, 1e-9);
}

TEST(LpNormTest, LargePFavorsLongestStretch) {
  UnitTable units;
  // Unit 0: hugely productive, short wait. Unit 1: unproductive, waited
  // long relative to its tiny T (large stretch).
  units.push_back(UnitWithRates(0, 1.0, 0.001, 0.010));
  units.push_back(UnitWithRates(1, 0.01, 0.001, 0.001));
  LpNormScheduler scheduler(16.0);
  scheduler.Attach(&units);
  units[0].queue.push_back(QueueEntry{0, 9.9});
  scheduler.OnEnqueue(0);
  units[1].queue.push_back(QueueEntry{1, 1.0});
  scheduler.OnEnqueue(1);
  SchedulingCost cost;
  std::vector<int> out;
  ASSERT_TRUE(scheduler.PickNext(10.0, &cost, &out));
  // stretch(1) = 9/0.001 = 9000 vs stretch(0) = 0.1/0.01 = 10: with p=16
  // the stretch term dominates any rate advantage.
  EXPECT_EQ(out.front(), 1);
}

TEST(LpNormTest, NameEncodesP) {
  EXPECT_STREQ(LpNormScheduler(3.0).name(), "L3-SD");
}

TEST(LpNormDeathTest, RejectsPBelowOne) {
  AQSIOS_GTEST_SET_FLAG(death_test_style, "threadsafe");
  EXPECT_DEATH(LpNormScheduler(0.5), "");
}

// --- Two-level RR + RB --------------------------------------------------------

TEST(TwoLevelTest, OuterRoundRobinAcrossQueries) {
  UnitTable units;
  // Two queries, two operator units each; rates make op order deterministic.
  for (int q = 0; q < 2; ++q) {
    for (int x = 0; x < 2; ++x) {
      Unit unit;
      unit.id = static_cast<int>(units.size());
      unit.kind = UnitKind::kOperator;
      unit.query = q;
      unit.op_index = x;
      unit.stats.output_rate = x == 0 ? 1.0 : 5.0;  // downstream op faster
      unit.stats.ideal_time = 1.0;
      units.push_back(unit);
    }
  }
  TwoLevelRrScheduler scheduler;
  scheduler.Attach(&units);
  auto push = [&](int unit) {
    units[static_cast<size_t>(unit)].queue.push_back(QueueEntry{0, 0.0});
    scheduler.OnEnqueue(unit);
  };
  auto pick = [&]() {
    SchedulingCost cost;
    std::vector<int> out;
    if (!scheduler.PickNext(1.0, &cost, &out)) return -1;
    units[static_cast<size_t>(out.front())].queue.pop_front();
    scheduler.OnDequeue(out.front());
    return out.front();
  };
  // Query 0 has work pending on both its operators; query 1 on its leaf.
  push(0);
  push(1);
  push(2);
  // RR starts at query 0 and picks its highest-rate ready op (unit 1).
  EXPECT_EQ(pick(), 1);
  // Next round: query 1's leaf (unit 2).
  EXPECT_EQ(pick(), 2);
  // Back to query 0: remaining unit 0.
  EXPECT_EQ(pick(), 0);
  EXPECT_EQ(pick(), -1);
}

TEST(TwoLevelTest, SkipsQueriesWithoutWork) {
  UnitTable units;
  for (int q = 0; q < 3; ++q) {
    Unit unit;
    unit.id = q;
    unit.query = q;
    unit.stats.output_rate = 1.0;
    units.push_back(unit);
  }
  TwoLevelRrScheduler scheduler;
  scheduler.Attach(&units);
  units[2].queue.push_back(QueueEntry{0, 0.0});
  scheduler.OnEnqueue(2);
  SchedulingCost cost;
  std::vector<int> out;
  ASSERT_TRUE(scheduler.PickNext(1.0, &cost, &out));
  EXPECT_EQ(out.front(), 2);
}

// --- OnStatsUpdated re-ranking --------------------------------------------------

TEST(StatsUpdateTest, StaticSchedulerReordersAfterRefresh) {
  UnitTable units;
  units.push_back(UnitWithRates(0, 0.9, 0.001, 0.001));
  units.push_back(UnitWithRates(1, 0.1, 0.001, 0.001));
  StaticPriorityScheduler scheduler(StaticPolicy::kHnr);
  scheduler.Attach(&units);
  for (int u = 0; u < 2; ++u) {
    units[static_cast<size_t>(u)].queue.push_back(QueueEntry{0, 0.0});
    scheduler.OnEnqueue(u);
  }
  SchedulingCost cost;
  std::vector<int> out;
  ASSERT_TRUE(scheduler.PickNext(1.0, &cost, &out));
  EXPECT_EQ(out.front(), 0);

  // Monitoring discovers unit 1 is actually far more selective-productive.
  units[1].stats.selectivity = 0.99;
  RederiveUnitStats(&units[1].stats);
  units[0].stats.selectivity = 0.05;
  RederiveUnitStats(&units[0].stats);
  scheduler.OnStatsUpdated();

  out.clear();
  ASSERT_TRUE(scheduler.PickNext(1.0, &cost, &out));
  EXPECT_EQ(out.front(), 1);
}

TEST(StatsUpdateTest, RederivePreservesIdealTime) {
  UnitStats stats;
  stats.selectivity = 0.5;
  stats.expected_cost = 0.002;
  stats.ideal_time = 0.004;
  RederiveUnitStats(&stats);
  EXPECT_NEAR(stats.output_rate, 250.0, 1e-9);
  EXPECT_NEAR(stats.normalized_rate, 250.0 / 0.004, 1e-9);
  EXPECT_NEAR(stats.phi, 250.0 / 0.004 / 0.004, 1e-6);
  EXPECT_NEAR(stats.chain_slope, 1.0 / 0.002, 1e-9);
  EXPECT_DOUBLE_EQ(stats.ideal_time, 0.004);
}

// --- Factory coverage of new kinds ---------------------------------------------

TEST(PolicyFactoryExtensionsTest, CreatesAndParses) {
  EXPECT_STREQ(
      CreateScheduler(PolicyConfig::Of(PolicyKind::kChain))->name(), "Chain");
  EXPECT_STREQ(
      CreateScheduler(PolicyConfig::Of(PolicyKind::kTwoLevelRr))->name(),
      "RR+RB");
  PolicyConfig lp = PolicyConfig::Of(PolicyKind::kLpNorm);
  lp.lp_norm_p = 4.0;
  EXPECT_STREQ(CreateScheduler(lp)->name(), "L4-SD");
  EXPECT_EQ(ParsePolicyKind("chain").value(), PolicyKind::kChain);
  EXPECT_EQ(ParsePolicyKind("rr-rb").value(), PolicyKind::kTwoLevelRr);
  EXPECT_EQ(ParsePolicyKind("lp").value(), PolicyKind::kLpNorm);
}

}  // namespace
}  // namespace aqsios::sched
