#include "query/plan.h"

#include <gtest/gtest.h>

#include "gtest_compat.h"

#include "query/operator.h"

namespace aqsios::query {
namespace {

CompiledQuery Chain(QueryId id, std::vector<OperatorSpec> ops,
                    SelectivityMode mode = SelectivityMode::kIndependent,
                    stream::StreamId stream = 0) {
  QuerySpec spec;
  spec.id = id;
  spec.left_stream = stream;
  spec.left_ops = std::move(ops);
  return CompiledQuery(std::move(spec), mode);
}

TEST(GlobalPlanTest, BasicAccessors) {
  std::vector<CompiledQuery> queries;
  queries.push_back(Chain(0, {MakeSelect(1.0, 0.5)}));
  queries.push_back(Chain(1, {MakeSelect(2.0, 1.0), MakeProject(4.0)}));
  GlobalPlan plan(std::move(queries), {}, 1);
  EXPECT_EQ(plan.num_queries(), 2);
  EXPECT_EQ(plan.num_streams(), 1);
  EXPECT_EQ(plan.query(1).chain_length(), 2);
  EXPECT_EQ(plan.SharingGroupOf(0), -1);
  EXPECT_NEAR(SimTimeToMillis(plan.MinOperatorCost()), 1.0, 1e-9);
}

TEST(GlobalPlanTest, ExpectedWorkPerArrivalSumsQueries) {
  std::vector<CompiledQuery> queries;
  queries.push_back(Chain(0, {MakeSelect(1.0, 0.5), MakeProject(2.0)}));
  queries.push_back(Chain(1, {MakeSelect(3.0, 1.0)}));
  GlobalPlan plan(std::move(queries), {}, 1);
  // (1 + 0.5·2) + 3 = 5 ms.
  EXPECT_NEAR(SimTimeToMillis(plan.ExpectedWorkPerArrival(0)), 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(plan.ExpectedWorkPerArrival(1), 0.0);
}

TEST(GlobalPlanTest, ExpectedOutputsPerArrival) {
  std::vector<CompiledQuery> queries;
  queries.push_back(Chain(0, {MakeSelect(1.0, 0.5)}));
  queries.push_back(Chain(1, {MakeSelect(1.0, 0.25)}));
  GlobalPlan plan(std::move(queries), {}, 1);
  EXPECT_NEAR(plan.ExpectedOutputsPerArrival(0), 0.75, 1e-12);
}

TEST(GlobalPlanTest, SharingGroupDiscountsSharedCost) {
  // Three queries, two of which share their select operator.
  std::vector<CompiledQuery> queries;
  queries.push_back(Chain(0, {MakeSelect(2.0, 0.5), MakeProject(1.0)}));
  queries.push_back(Chain(1, {MakeSelect(2.0, 0.5), MakeProject(3.0)}));
  queries.push_back(Chain(2, {MakeSelect(4.0, 1.0)}));
  SharingGroup group;
  group.id = 0;
  group.members = {0, 1};
  GlobalPlan plan(std::move(queries), {group}, 1);
  EXPECT_EQ(plan.SharingGroupOf(0), 0);
  EXPECT_EQ(plan.SharingGroupOf(1), 0);
  EXPECT_EQ(plan.SharingGroupOf(2), -1);
  // Without sharing: (2+0.5) + (2+1.5) + 4 = 10; shared select counted once
  // removes one 2 ms charge.
  EXPECT_NEAR(SimTimeToMillis(plan.ExpectedWorkPerArrival(0)), 8.0, 1e-9);
}

TEST(GlobalPlanDeathTest, ValidatesStructure) {
  AQSIOS_GTEST_SET_FLAG(death_test_style, "threadsafe");
  {
    // Non-dense ids.
    std::vector<CompiledQuery> queries;
    queries.push_back(Chain(5, {MakeSelect(1.0, 0.5)}));
    EXPECT_DEATH(GlobalPlan(std::move(queries), {}, 1), "dense");
  }
  {
    // Sharing group with one member.
    std::vector<CompiledQuery> queries;
    queries.push_back(Chain(0, {MakeSelect(1.0, 0.5)}));
    SharingGroup group;
    group.members = {0};
    EXPECT_DEATH(GlobalPlan(std::move(queries), {group}, 1), "two members");
  }
  {
    // Sharing group with mismatched leaf operators.
    std::vector<CompiledQuery> queries;
    queries.push_back(Chain(0, {MakeSelect(1.0, 0.5)}));
    queries.push_back(Chain(1, {MakeSelect(2.0, 0.5)}));
    SharingGroup group;
    group.members = {0, 1};
    EXPECT_DEATH(GlobalPlan(std::move(queries), {group}, 1), "identical");
  }
  {
    // Query listed in two groups.
    std::vector<CompiledQuery> queries;
    queries.push_back(Chain(0, {MakeSelect(1.0, 0.5)}));
    queries.push_back(Chain(1, {MakeSelect(1.0, 0.5)}));
    SharingGroup g0;
    g0.members = {0, 1};
    SharingGroup g1;
    g1.id = 1;
    g1.members = {1, 0};
    EXPECT_DEATH(GlobalPlan(std::move(queries), {g0, g1}, 1),
                 "two sharing groups");
  }
}

}  // namespace
}  // namespace aqsios::query
