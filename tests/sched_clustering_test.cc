#include "sched/clustering.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sched/clustered_bsd.h"

namespace aqsios::sched {
namespace {

Unit UnitWithPhi(int id, double phi) {
  Unit unit;
  unit.id = id;
  unit.stats.phi = phi;
  unit.stats.output_rate = phi;
  unit.stats.normalized_rate = phi;
  unit.stats.ideal_time = 1.0;
  return unit;
}

UnitTable UnitsWithPhis(const std::vector<double>& phis) {
  UnitTable units;
  for (size_t i = 0; i < phis.size(); ++i) {
    units.push_back(UnitWithPhi(static_cast<int>(i), phis[i]));
  }
  return units;
}

TEST(ClusteringTest, LogarithmicBoundsIntraClusterRatioByEpsilon) {
  // Paper's example: domain [1, 100], 2 clusters -> ε = 10; clusters
  // [1, 10) and [10, 100].
  const UnitTable units = UnitsWithPhis({1.0, 2.0, 9.0, 10.1, 50.0, 100.0});
  const Clustering c =
      BuildClustering(units, ClusteringKind::kLogarithmic, 2);
  EXPECT_EQ(c.num_clusters, 2);
  EXPECT_NEAR(c.delta, 100.0, 1e-9);
  EXPECT_NEAR(c.epsilon, 10.0, 1e-9);
  EXPECT_EQ(c.cluster_of_unit[0], 0);
  EXPECT_EQ(c.cluster_of_unit[1], 0);
  EXPECT_EQ(c.cluster_of_unit[2], 0);
  EXPECT_EQ(c.cluster_of_unit[3], 1);
  EXPECT_EQ(c.cluster_of_unit[4], 1);
  EXPECT_EQ(c.cluster_of_unit[5], 1);
  EXPECT_NEAR(c.pseudo_priority[0], 1.0, 1e-9);
  EXPECT_NEAR(c.pseudo_priority[1], 10.0, 1e-9);
}

TEST(ClusteringTest, UniformSplitsRangeEvenly) {
  // Same domain uniform: clusters [1, 50.5) and [50.5, 100].
  const UnitTable units = UnitsWithPhis({1.0, 2.0, 9.0, 10.1, 50.0, 100.0});
  const Clustering c = BuildClustering(units, ClusteringKind::kUniform, 2);
  EXPECT_EQ(c.cluster_of_unit[0], 0);
  EXPECT_EQ(c.cluster_of_unit[3], 0);  // 10.1 still in the wide low cluster
  EXPECT_EQ(c.cluster_of_unit[4], 0);  // 50 < 50.5
  EXPECT_EQ(c.cluster_of_unit[5], 1);
  EXPECT_NEAR(c.pseudo_priority[0], 1.0, 1e-9);
  EXPECT_NEAR(c.pseudo_priority[1], 50.5, 1e-9);
}

TEST(ClusteringTest, EveryPhiInItsClusterRange) {
  std::vector<double> phis;
  for (int i = 0; i < 100; ++i) phis.push_back(std::pow(1.17, i));
  const UnitTable units = UnitsWithPhis(phis);
  for (ClusteringKind kind :
       {ClusteringKind::kLogarithmic, ClusteringKind::kUniform}) {
    for (int m : {1, 3, 12, 40}) {
      const Clustering c = BuildClustering(units, kind, m);
      for (size_t u = 0; u < units.size(); ++u) {
        const int cluster = c.cluster_of_unit[u];
        ASSERT_GE(cluster, 0);
        ASSERT_LT(cluster, c.num_clusters);
        // Pseudo priority (lower edge) never exceeds the member's phi by
        // more than floating noise.
        EXPECT_LE(c.pseudo_priority[static_cast<size_t>(cluster)],
                  units[u].stats.phi * (1.0 + 1e-9));
        if (cluster + 1 < c.num_clusters) {
          EXPECT_GE(c.pseudo_priority[static_cast<size_t>(cluster) + 1],
                    units[u].stats.phi * (1.0 - 1e-9));
        }
      }
    }
  }
}

TEST(ClusteringTest, LogIntraClusterRatioNeverExceedsEpsilon) {
  std::vector<double> phis;
  for (int i = 0; i < 200; ++i) {
    phis.push_back(1.0 + 1e4 * (i / 199.0) * (i / 199.0));
  }
  const UnitTable units = UnitsWithPhis(phis);
  const int m = 8;
  const Clustering c = BuildClustering(units, ClusteringKind::kLogarithmic, m);
  std::vector<double> lo(static_cast<size_t>(m), 1e300);
  std::vector<double> hi(static_cast<size_t>(m), 0.0);
  for (size_t u = 0; u < units.size(); ++u) {
    auto& l = lo[static_cast<size_t>(c.cluster_of_unit[u])];
    auto& h = hi[static_cast<size_t>(c.cluster_of_unit[u])];
    l = std::min(l, units[u].stats.phi);
    h = std::max(h, units[u].stats.phi);
  }
  for (int i = 0; i < m; ++i) {
    if (hi[static_cast<size_t>(i)] == 0.0) continue;  // empty cluster
    EXPECT_LE(hi[static_cast<size_t>(i)] / lo[static_cast<size_t>(i)],
              c.epsilon * (1.0 + 1e-9));
  }
}

TEST(ClusteringTest, DegenerateSinglePriority) {
  const UnitTable units = UnitsWithPhis({3.0, 3.0, 3.0});
  const Clustering c = BuildClustering(units, ClusteringKind::kLogarithmic, 5);
  EXPECT_EQ(c.num_clusters, 1);
  EXPECT_NEAR(c.pseudo_priority[0], 3.0, 1e-12);
  for (int cluster : c.cluster_of_unit) EXPECT_EQ(cluster, 0);
}

TEST(ClusteringTest, Names) {
  EXPECT_STREQ(ClusteringKindName(ClusteringKind::kUniform), "uniform");
  EXPECT_STREQ(ClusteringKindName(ClusteringKind::kLogarithmic),
               "logarithmic");
}

// --- ClusteredBsdScheduler ---------------------------------------------------

void Push(UnitTable& units, Scheduler& scheduler, int unit,
          stream::ArrivalId arrival, SimTime time) {
  units[static_cast<size_t>(unit)].queue.push_back(QueueEntry{arrival, time});
  scheduler.OnEnqueue(unit);
}

std::vector<int> Pick(UnitTable& units, Scheduler& scheduler, SimTime now,
                      SchedulingCost* cost = nullptr) {
  SchedulingCost local;
  std::vector<int> out;
  if (!scheduler.PickNext(now, cost != nullptr ? cost : &local, &out)) {
    return {};
  }
  for (int u : out) {
    units[static_cast<size_t>(u)].queue.pop_front();
    scheduler.OnDequeue(u);
  }
  return out;
}

TEST(ClusteredBsdTest, PicksByPseudoPriorityTimesWait) {
  // Units with phis 1 and 100 land in different clusters (m=2, ε=10).
  UnitTable units = UnitsWithPhis({1.0, 100.0});
  ClusteredBsdOptions options;
  options.num_clusters = 2;
  ClusteredBsdScheduler scheduler(options);
  scheduler.Attach(&units);

  Push(units, scheduler, 0, 0, 0.0);    // low-phi cluster, long wait
  Push(units, scheduler, 1, 1, 9.99);   // high-phi cluster, short wait
  // At t=10: cluster(0) priority = 1 * 10 = 10; cluster(1) = 10 * 0.01.
  EXPECT_EQ(Pick(units, scheduler, 10.0), std::vector<int>({0}));
  // Next pick gets the remaining unit.
  EXPECT_EQ(Pick(units, scheduler, 10.0), std::vector<int>({1}));
  EXPECT_TRUE(Pick(units, scheduler, 10.0).empty());
}

TEST(ClusteredBsdTest, ClusteredProcessingBundlesSameArrival) {
  // Three units in one cluster, all fed the same arrival.
  UnitTable units = UnitsWithPhis({5.0, 5.5, 6.0});
  ClusteredBsdOptions options;
  options.num_clusters = 1;
  options.clustered_processing = true;
  ClusteredBsdScheduler scheduler(options);
  scheduler.Attach(&units);
  for (int u = 0; u < 3; ++u) Push(units, scheduler, u, /*arrival=*/7, 1.0);
  Push(units, scheduler, 0, /*arrival=*/8, 2.0);

  const std::vector<int> first = Pick(units, scheduler, 3.0);
  EXPECT_EQ(first, std::vector<int>({0, 1, 2}));
  const std::vector<int> second = Pick(units, scheduler, 3.0);
  EXPECT_EQ(second, std::vector<int>({0}));
}

TEST(ClusteredBsdTest, WithoutClusteredProcessingOneAtATime) {
  UnitTable units = UnitsWithPhis({5.0, 5.5});
  ClusteredBsdOptions options;
  options.num_clusters = 1;
  options.clustered_processing = false;
  ClusteredBsdScheduler scheduler(options);
  scheduler.Attach(&units);
  Push(units, scheduler, 0, 7, 1.0);
  Push(units, scheduler, 1, 7, 1.0);
  EXPECT_EQ(Pick(units, scheduler, 2.0).size(), 1u);
  EXPECT_EQ(Pick(units, scheduler, 2.0).size(), 1u);
  EXPECT_TRUE(Pick(units, scheduler, 2.0).empty());
}

TEST(ClusteredBsdTest, FaginAgreesWithScan) {
  // Many clusters, random-ish waits: FA must return the same cluster as the
  // scan-based selection at every step.
  std::vector<double> phis;
  for (int i = 0; i < 64; ++i) phis.push_back(std::pow(1.3, i % 23) + i);
  UnitTable units_scan = UnitsWithPhis(phis);
  UnitTable units_fa = UnitsWithPhis(phis);

  ClusteredBsdOptions scan_options;
  scan_options.num_clusters = 16;
  scan_options.use_fagin = false;
  ClusteredBsdOptions fa_options = scan_options;
  fa_options.use_fagin = true;

  ClusteredBsdScheduler scan(scan_options);
  ClusteredBsdScheduler fagin(fa_options);
  scan.Attach(&units_scan);
  fagin.Attach(&units_fa);

  // Deterministic pseudo-random enqueue pattern.
  uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  SimTime t = 0.0;
  for (int i = 0; i < 200; ++i) {
    t += 0.01;
    const int unit = static_cast<int>(next() % phis.size());
    Push(units_scan, scan, unit, i, t);
    Push(units_fa, fagin, unit, i, t);
  }
  for (int step = 0; step < 200; ++step) {
    t += 0.005;
    SchedulingCost scan_cost;
    SchedulingCost fa_cost;
    const auto a = Pick(units_scan, scan, t, &scan_cost);
    const auto b = Pick(units_fa, fagin, t, &fa_cost);
    ASSERT_EQ(a, b) << "step " << step;
    if (a.empty()) break;
  }
}

TEST(ClusteredBsdTest, FaginTouchesFewerClustersOnSkewedWaits) {
  // All clusters enqueued at the same time except one stale cluster: FA
  // should prune most of the scan.
  std::vector<double> phis;
  for (int i = 0; i < 128; ++i) phis.push_back(std::pow(1.1, i));
  UnitTable units = UnitsWithPhis(phis);
  ClusteredBsdOptions options;
  options.num_clusters = 64;
  options.use_fagin = true;
  ClusteredBsdScheduler scheduler(options);
  scheduler.Attach(&units);
  for (int u = 0; u < 128; ++u) Push(units, scheduler, u, u, 10.0);
  SchedulingCost cost;
  std::vector<int> out;
  ASSERT_TRUE(scheduler.PickNext(10.001, &cost, &out));
  // A full scan would evaluate every non-empty cluster (64); FA should do
  // substantially better here.
  EXPECT_LT(cost.computations, 40);
}

TEST(ClusteredBsdTest, NameEncodesConfiguration) {
  ClusteredBsdOptions options;
  options.clustering = ClusteringKind::kUniform;
  options.use_fagin = true;
  options.clustered_processing = true;
  ClusteredBsdScheduler scheduler(options);
  EXPECT_STREQ(scheduler.name(), "BSD-Uniform+FA+CP");
}

}  // namespace
}  // namespace aqsios::sched
