#include "common/spsc_ring.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace aqsios {
namespace {

TEST(SpscRingTest, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.TryPush(i));
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRingTest, FullRingRejectsPushUntilPop) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));
  EXPECT_EQ(ring.size(), 4u);
  int out = -1;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.TryPush(99));
  EXPECT_FALSE(ring.TryPush(100));
}

TEST(SpscRingTest, WraparoundPreservesValues) {
  SpscRing<int64_t> ring(4);
  int64_t out = -1;
  // Many more pushes than capacity: the head/tail counters wrap the buffer
  // repeatedly and every value must come back intact and in order.
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
    ASSERT_TRUE(ring.TryPush(i + 1000000));
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i + 1000000);
  }
  EXPECT_EQ(ring.size(), 0u);
}

TEST(SpscRingTest, CloseProtocol) {
  SpscRing<int> ring(4);
  EXPECT_FALSE(ring.closed());
  ASSERT_TRUE(ring.TryPush(7));
  ring.Close();
  EXPECT_TRUE(ring.closed());
  // Closing does not discard queued entries: the consumer drains first.
  int out = -1;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRingTest, ThreadedTransferDeliversEverythingInOrder) {
  // Small capacity so the producer hits a full ring constantly — the
  // backpressure path, not just the happy path — while a real consumer
  // thread drains concurrently.
  constexpr int64_t kCount = 200000;
  SpscRing<int64_t> ring(8);
  std::vector<int64_t> received;
  received.reserve(kCount);

  std::thread consumer([&] {
    int64_t value;
    while (true) {
      if (ring.TryPop(&value)) {
        received.push_back(value);
        continue;
      }
      // A failed pop *after* observing closed means the stream is complete
      // (one re-pop covers the push-then-Close race).
      if (ring.closed()) {
        if (!ring.TryPop(&value)) break;
        received.push_back(value);
        continue;
      }
      std::this_thread::yield();
    }
  });

  for (int64_t i = 0; i < kCount; ++i) {
    while (!ring.TryPush(i)) std::this_thread::yield();
  }
  ring.Close();
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<size_t>(kCount));
  for (int64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(received[static_cast<size_t>(i)], i) << "out of order at " << i;
  }
}

}  // namespace
}  // namespace aqsios
