#include "exec/window_join.h"

#include <gtest/gtest.h>

namespace aqsios::exec {
namespace {

using Entry = SymmetricHashJoinState::Entry;
using query::Side;

Entry E(stream::ArrivalId id, SimTime ts) {
  Entry entry;
  entry.id = id;
  entry.timestamp = ts;
  entry.arrival_time = ts;
  return entry;
}

TEST(WindowJoinTest, ProbeFindsWindowCandidates) {
  SymmetricHashJoinState state(/*window=*/2.0);
  state.Insert(Side::kRight, /*key=*/7, E(1, 0.0));
  state.Insert(Side::kRight, 7, E(2, 1.5));
  state.Insert(Side::kRight, 7, E(3, 5.0));

  std::vector<Entry> candidates;
  state.Probe(Side::kLeft, 7, /*timestamp=*/1.0, &candidates);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].id, 1);
  EXPECT_EQ(candidates[1].id, 2);
}

TEST(WindowJoinTest, ProbeRespectsKey) {
  SymmetricHashJoinState state(10.0);
  state.Insert(Side::kRight, 1, E(1, 0.0));
  state.Insert(Side::kRight, 2, E(2, 0.0));
  std::vector<Entry> candidates;
  state.Probe(Side::kLeft, 1, 0.5, &candidates);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].id, 1);
}

TEST(WindowJoinTest, ProbesAreSymmetricAcrossSides) {
  SymmetricHashJoinState state(2.0);
  state.Insert(Side::kLeft, 7, E(1, 0.0));
  std::vector<Entry> candidates;
  state.Probe(Side::kRight, 7, 1.0, &candidates);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].id, 1);
  // A left probe must not see left entries.
  candidates.clear();
  state.Probe(Side::kLeft, 7, 1.0, &candidates);
  EXPECT_TRUE(candidates.empty());
}

TEST(WindowJoinTest, ExpiredEntriesEvictedByProbe) {
  SymmetricHashJoinState state(1.0);
  state.Insert(Side::kRight, 3, E(1, 0.0));
  state.Insert(Side::kRight, 3, E(2, 5.0));
  EXPECT_EQ(state.size(Side::kRight), 2);
  std::vector<Entry> candidates;
  state.Probe(Side::kLeft, 3, 5.5, &candidates);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].id, 2);
  EXPECT_EQ(state.size(Side::kRight), 1);  // entry 1 evicted
}

TEST(WindowJoinTest, InsertNeverEvicts) {
  // Insert-time eviction would be unsafe: a delayed probe from the other
  // stream with an older timestamp may still need old entries.
  SymmetricHashJoinState state(1.0);
  state.Insert(Side::kLeft, 3, E(1, 0.0));
  state.Insert(Side::kLeft, 3, E(2, 10.0));
  EXPECT_EQ(state.size(Side::kLeft), 2);
  // An old right-side probe still matches the old entry.
  std::vector<Entry> candidates;
  state.Probe(Side::kRight, 3, 0.5, &candidates);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].id, 1);
}

TEST(WindowJoinTest, FutureEntriesBeyondWindowExcludedButKept) {
  // A right tuple with a much later source timestamp can already be resident
  // when an old left tuple probes (heavy queueing); it must not match but
  // must stay for later probes.
  SymmetricHashJoinState state(1.0);
  state.Insert(Side::kRight, 3, E(1, 5.0));
  std::vector<Entry> candidates;
  state.Probe(Side::kLeft, 3, 0.5, &candidates);
  EXPECT_TRUE(candidates.empty());
  EXPECT_EQ(state.size(Side::kRight), 1);
  state.Probe(Side::kLeft, 3, 4.5, &candidates);
  ASSERT_EQ(candidates.size(), 1u);
}

TEST(WindowJoinTest, BoundaryTimestampsInclusive) {
  SymmetricHashJoinState state(2.0);
  state.Insert(Side::kRight, 1, E(1, 0.0));
  state.Insert(Side::kRight, 1, E(2, 4.0));
  std::vector<Entry> candidates;
  state.Probe(Side::kLeft, 1, 2.0, &candidates);
  // |2-0| <= 2 and |2-4| <= 2: both inclusive.
  EXPECT_EQ(candidates.size(), 2u);
}

TEST(WindowJoinTest, SizeTracksBothSides) {
  SymmetricHashJoinState state(100.0);
  for (int i = 0; i < 5; ++i) {
    state.Insert(Side::kLeft, i % 2, E(i, 0.1 * i));
  }
  for (int i = 0; i < 3; ++i) {
    state.Insert(Side::kRight, 0, E(10 + i, 0.1 * i));
  }
  EXPECT_EQ(state.size(Side::kLeft), 5);
  EXPECT_EQ(state.size(Side::kRight), 3);
}

}  // namespace
}  // namespace aqsios::exec
