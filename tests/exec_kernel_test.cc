// Columnar kernel path: scalar-vs-columnar equivalence and fusion rules.
//
// use_columnar_kernels only selects an execution strategy for batched chain
// trains — SoA columns, branch-free depth kernels, fused operator runs —
// and must never change a single observable bit: the equivalence suites
// assert byte-equal RunResultToJson between the two engines across every
// policy, batch size, selectivity mode, and the features that ride the
// train path (sharing remainders, adaptation, overhead charging, shedding).
// The fusion tests pin FuseChainOps itself, including the stateful-operator
// boundary that validated plans can never produce (window joins are barred
// from chains by CompiledQuery validation) but the pass must still handle.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dsms.h"
#include "core/report.h"
#include "exec/unit_builder.h"
#include "obs/tracer.h"
#include "query/workload.h"

namespace aqsios::core {
namespace {

const sched::PolicyKind kAllPolicies[] = {
    sched::PolicyKind::kFcfs,        sched::PolicyKind::kRoundRobin,
    sched::PolicyKind::kSrpt,        sched::PolicyKind::kHr,
    sched::PolicyKind::kHnr,         sched::PolicyKind::kLsf,
    sched::PolicyKind::kBsd,         sched::PolicyKind::kBsdClustered,
    sched::PolicyKind::kChain,       sched::PolicyKind::kTwoLevelRr,
    sched::PolicyKind::kLpNorm,      sched::PolicyKind::kQosGraph,
};

query::Workload TestWorkload(uint64_t seed, query::SelectivityMode mode,
                             int sharing_group_size = 0,
                             bool multi_stream = false) {
  query::WorkloadConfig config;
  config.num_queries = 20;
  config.num_arrivals = 2500;
  config.utilization = 0.9;
  config.seed = seed;
  config.selectivity_mode = mode;
  config.sharing_group_size = sharing_group_size;
  config.multi_stream = multi_stream;
  return query::GenerateWorkload(config);
}

/// Runs `workload` twice, identical but for use_columnar_kernels, and
/// asserts the serialized results are byte-equal.
void ExpectColumnarMatchesScalar(const query::Workload& workload,
                                 sched::PolicyKind kind,
                                 SimulationOptions options,
                                 const std::string& what) {
  const sched::PolicyConfig policy = sched::PolicyConfig::Of(kind);
  options.use_columnar_kernels = false;
  const RunResult scalar = Simulate(workload, policy, options);
  options.use_columnar_kernels = true;
  const RunResult columnar = Simulate(workload, policy, options);
  EXPECT_EQ(RunResultToJson(scalar), RunResultToJson(columnar)) << what;
}

class KernelEquivalenceTest : public testing::TestWithParam<uint64_t> {};

// The acceptance matrix: every policy x batch in {1, 8, 32, unbounded} x
// both selectivity modes. batch=1 never engages the columnar path (the
// flag must be a no-op there); the rest run real multi-tuple trains.
TEST_P(KernelEquivalenceTest, ByteEqualAcrossPoliciesBatchesAndModes) {
  for (const query::SelectivityMode mode :
       {query::SelectivityMode::kCorrelatedAttribute,
        query::SelectivityMode::kIndependent}) {
    const query::Workload workload = TestWorkload(GetParam(), mode);
    const char* mode_name =
        mode == query::SelectivityMode::kCorrelatedAttribute ? "correlated"
                                                             : "independent";
    for (const sched::PolicyKind kind : kAllPolicies) {
      for (const int batch : {1, 8, 32, 0}) {
        SimulationOptions options;
        options.batch_size = batch;
        ExpectColumnarMatchesScalar(
            workload, kind, options,
            std::string(sched::PolicyKindName(kind)) + "/" + mode_name +
                "/batch=" + std::to_string(batch));
      }
    }
  }
}

// Sharing groups produce kRemainder units whose segments start mid-chain
// (op_index 1): the kernels must pick up the frozen-draw ordinals from the
// absolute chain position, not the segment-local one.
TEST_P(KernelEquivalenceTest, ByteEqualWithSharingRemainders) {
  for (const query::SelectivityMode mode :
       {query::SelectivityMode::kCorrelatedAttribute,
        query::SelectivityMode::kIndependent}) {
    const query::Workload workload =
        TestWorkload(GetParam(), mode, /*sharing_group_size=*/5);
    for (const sched::PolicyKind kind :
         {sched::PolicyKind::kHnr, sched::PolicyKind::kBsd}) {
      SimulationOptions options;
      options.batch_size = 32;
      ExpectColumnarMatchesScalar(
          workload, kind, options,
          std::string(sched::PolicyKindName(kind)) + "/sharing");
    }
  }
}

// The statistics monitor consumes per-charge busy time (AddBusyTime) and
// per-root emissions: the columnar clock replay must feed it the identical
// sequence, or adaptation ticks would re-key priorities differently.
TEST_P(KernelEquivalenceTest, ByteEqualUnderAdaptation) {
  query::WorkloadConfig config;
  config.num_queries = 20;
  config.num_arrivals = 2500;
  config.utilization = 0.9;
  config.seed = GetParam();
  config.selectivity_misestimation = 0.4;
  const query::Workload workload = query::GenerateWorkload(config);
  for (const sched::PolicyKind kind :
       {sched::PolicyKind::kLsf, sched::PolicyKind::kBsd}) {
    SimulationOptions options;
    options.batch_size = 32;
    options.adaptation.enabled = true;
    ExpectColumnarMatchesScalar(
        workload, kind, options,
        std::string(sched::PolicyKindName(kind)) + "/adaptation");
  }
}

// Overhead charging and source-side shedding both interleave with train
// dispatch (clock charges at scheduling points, queue-cap decisions at
// delivery): identical clocks must yield identical decisions.
TEST_P(KernelEquivalenceTest, ByteEqualWithOverheadAndShedding) {
  const query::Workload workload = TestWorkload(
      GetParam(), query::SelectivityMode::kCorrelatedAttribute);
  for (const sched::PolicyKind kind :
       {sched::PolicyKind::kLsf, sched::PolicyKind::kHnr}) {
    SimulationOptions options;
    options.batch_size = 32;
    options.charge_scheduling_overhead = true;
    options.shed.enabled = true;
    options.shed.queue_cap = 64;
    options.shed.shed_fraction = 0.5;
    ExpectColumnarMatchesScalar(
        workload, kind, options,
        std::string(sched::PolicyKindName(kind)) + "/overhead+shed");
  }
}

// Window-join workloads never qualify for the columnar path (join inputs
// are stateful units); the flag must still be a strict no-op around them.
TEST_P(KernelEquivalenceTest, ByteEqualOnWindowJoinWorkloads) {
  const query::Workload workload =
      TestWorkload(GetParam(), query::SelectivityMode::kIndependent,
                   /*sharing_group_size=*/0, /*multi_stream=*/true);
  SimulationOptions options;
  options.batch_size = 32;
  ExpectColumnarMatchesScalar(workload, sched::PolicyKind::kHnr, options,
                              "hnr/window-joins");
}

// Operator-level scheduling has no chain units at all.
TEST_P(KernelEquivalenceTest, ByteEqualAtOperatorLevel) {
  const query::Workload workload = TestWorkload(
      GetParam(), query::SelectivityMode::kCorrelatedAttribute);
  SimulationOptions options;
  options.level = exec::SchedulingLevel::kOperatorLevel;
  options.batch_size = 32;
  ExpectColumnarMatchesScalar(workload, sched::PolicyKind::kBsd, options,
                              "bsd/operator-level");
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelEquivalenceTest,
                         testing::Values(1u, 42u));

// An attached tracer forces the scalar pass (per-invocation events): a
// traced columnar-flagged run must serialize identically to a traced
// scalar run, and record the same number of events.
TEST(KernelTracerFallbackTest, TracedRunsMatchScalarByteForByte) {
  const query::Workload workload = TestWorkload(
      7, query::SelectivityMode::kCorrelatedAttribute);
  const sched::PolicyConfig policy =
      sched::PolicyConfig::Of(sched::PolicyKind::kLsf);
  obs::EventTracer scalar_tracer(size_t{1} << 20);
  obs::EventTracer columnar_tracer(size_t{1} << 20);
  SimulationOptions options;
  options.batch_size = 32;
  options.use_columnar_kernels = false;
  options.tracer = &scalar_tracer;
  const RunResult scalar = Simulate(workload, policy, options);
  options.use_columnar_kernels = true;
  options.tracer = &columnar_tracer;
  const RunResult columnar = Simulate(workload, policy, options);
  EXPECT_EQ(RunResultToJson(scalar), RunResultToJson(columnar));
  EXPECT_EQ(scalar_tracer.recorded(), columnar_tracer.recorded());
}

// --- Fusion pass (exec::FuseChainOps) ---

TEST(FuseChainOpsTest, StatelessChainCollapsesToOneRun) {
  const std::vector<query::OperatorSpec> ops = {
      query::MakeSelect(1.0, 0.5), query::MakeStoredJoin(2.0, 0.4),
      query::MakeProject(1.0), query::MakeSelect(1.0, 0.9)};
  const exec::ChainFusion fusion = exec::FuseChainOps(ops, 0);
  EXPECT_TRUE(fusion.contiguous);
  ASSERT_EQ(fusion.runs.size(), 1u);
  EXPECT_EQ(fusion.runs[0].first_op, 0);
  EXPECT_EQ(fusion.runs[0].num_ops, 4);
}

TEST(FuseChainOpsTest, MidChainStartKeepsAbsoluteOrdinals) {
  const std::vector<query::OperatorSpec> ops = {
      query::MakeSelect(1.0, 0.5), query::MakeSelect(1.0, 0.6),
      query::MakeProject(1.0)};
  const exec::ChainFusion fusion = exec::FuseChainOps(ops, 1);
  EXPECT_TRUE(fusion.contiguous);
  ASSERT_EQ(fusion.runs.size(), 1u);
  EXPECT_EQ(fusion.runs[0].first_op, 1);
  EXPECT_EQ(fusion.runs[0].num_ops, 2);
}

// The fusion boundary: a stateful operator (window join) splits the fused
// runs and belongs to neither. Validated plans cannot contain one inside a
// chain, so this exercises the pass directly on a hand-built vector.
TEST(FuseChainOpsTest, StatefulOperatorSplitsTheRun) {
  const std::vector<query::OperatorSpec> ops = {
      query::MakeSelect(1.0, 0.5), query::MakeProject(1.0),
      query::MakeWindowJoin(2.0, 0.1, 5.0), query::MakeSelect(1.0, 0.7),
      query::MakeSelect(1.0, 0.8)};
  const exec::ChainFusion fusion = exec::FuseChainOps(ops, 0);
  EXPECT_FALSE(fusion.contiguous) << "the join is covered by no kernel";
  ASSERT_EQ(fusion.runs.size(), 2u);
  EXPECT_EQ(fusion.runs[0].first_op, 0);
  EXPECT_EQ(fusion.runs[0].num_ops, 2);
  EXPECT_EQ(fusion.runs[1].first_op, 3);
  EXPECT_EQ(fusion.runs[1].num_ops, 2);
}

TEST(FuseChainOpsTest, SegmentPastTheStatefulOperatorIsContiguous) {
  const std::vector<query::OperatorSpec> ops = {
      query::MakeSelect(1.0, 0.5), query::MakeWindowJoin(2.0, 0.1, 5.0),
      query::MakeSelect(1.0, 0.7)};
  const exec::ChainFusion fusion = exec::FuseChainOps(ops, 2);
  EXPECT_TRUE(fusion.contiguous);
  ASSERT_EQ(fusion.runs.size(), 1u);
  EXPECT_EQ(fusion.runs[0].first_op, 2);
  EXPECT_EQ(fusion.runs[0].num_ops, 1);
}

TEST(FuseChainOpsTest, EmptySegmentHasNoRuns) {
  const std::vector<query::OperatorSpec> ops = {query::MakeSelect(1.0, 0.5)};
  const exec::ChainFusion fusion = exec::FuseChainOps(ops, 1);
  EXPECT_TRUE(fusion.contiguous);
  EXPECT_TRUE(fusion.runs.empty());
}

// BuildUnits attaches a fusion plan to every chain unit, tiling its
// segment — the precondition for the engine to enable the columnar path.
TEST(FuseChainOpsTest, BuildUnitsTilesEveryChainSegment) {
  const query::Workload workload = TestWorkload(
      3, query::SelectivityMode::kCorrelatedAttribute,
      /*sharing_group_size=*/5);
  const exec::BuiltUnits built = exec::BuildUnits(workload.plan, {});
  ASSERT_EQ(built.chain_fusion.size(), built.units.size());
  int chain_units = 0;
  for (const sched::Unit& unit : built.units) {
    if (unit.kind != sched::UnitKind::kQueryChain &&
        unit.kind != sched::UnitKind::kRemainder) {
      continue;
    }
    ++chain_units;
    const exec::ChainFusion& fusion =
        built.chain_fusion[static_cast<size_t>(unit.id)];
    EXPECT_TRUE(fusion.contiguous) << "unit " << unit.id;
    const int from =
        unit.kind == sched::UnitKind::kRemainder ? unit.op_index : 0;
    const int chain_length =
        workload.plan.query(unit.query).chain_length();
    if (from >= chain_length) {
      EXPECT_TRUE(fusion.runs.empty()) << "unit " << unit.id;
      continue;
    }
    ASSERT_EQ(fusion.runs.size(), 1u) << "unit " << unit.id;
    EXPECT_EQ(fusion.runs[0].first_op, from) << "unit " << unit.id;
    EXPECT_EQ(fusion.runs[0].first_op + fusion.runs[0].num_ops, chain_length)
        << "unit " << unit.id;
  }
  EXPECT_GT(chain_units, 0);
}

}  // namespace
}  // namespace aqsios::core
