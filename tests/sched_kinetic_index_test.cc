// KineticIndex correctness: randomized equivalence against a brute-force
// reference (both eval modes, dense and tournament-tree regimes, and the
// dense-to-tree growth switch), golden-trace equivalence of the kinetic
// schedulers against their naive scan twins (picks *and* simulated
// SchedulingCost charges), and full-simulation equality kinetic on vs off.

#include "sched/kinetic_index.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <random>
#include <vector>

#include "core/dsms.h"
#include "query/workload.h"
#include "sched/basic_policies.h"
#include "sched/clustered_bsd.h"
#include "sched/policy.h"

namespace aqsios::sched {
namespace {

// ---------------------------------------------------------------------------
// Brute-force reference.

struct RefLine {
  double anchor = 0.0;
  double coef = 1.0;
  double tie = 0.0;
};

/// The scan the index must reproduce bit for bit: first maximum under
/// strict >, iterating ids in ascending order (ties therefore go to the
/// smallest (tie, id)).
int ReferenceArgMax(const std::map<int, RefLine>& lines,
                    KineticIndex::EvalMode mode, double now,
                    double* priority) {
  int best = -1;
  double best_priority = 0.0;
  double best_tie = 0.0;
  for (const auto& [id, line] : lines) {
    const double p = mode == KineticIndex::EvalMode::kRatio
                         ? (now - line.anchor) / line.coef
                         : line.coef * (now - line.anchor);
    if (best < 0 || p > best_priority ||
        (p == best_priority && line.tie < best_tie)) {
      best = id;
      best_priority = p;
      best_tie = line.tie;
    }
  }
  if (best >= 0 && priority != nullptr) *priority = best_priority;
  return best;
}

/// Drives the index and the reference through `steps` random mutations and
/// queries over ids in [0, max_id) and asserts identical answers throughout.
void RunRandomizedTrace(KineticIndex::EvalMode mode, int max_id, int steps,
                        uint64_t seed, bool reserve_first) {
  KineticIndex index(mode);
  if (reserve_first) index.Reserve(max_id);
  std::map<int, RefLine> reference;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> id_dist(0, max_id - 1);
  std::uniform_real_distribution<double> anchor_dist(0.0, 10.0);
  std::uniform_real_distribution<double> coef_dist(0.01, 5.0);
  std::uniform_int_distribution<int> op_dist(0, 9);
  std::uniform_int_distribution<int> tie_dist(0, 2);
  double now = 0.0;
  for (int step = 0; step < steps; ++step) {
    const int op = op_dist(rng);
    if (op < 5) {  // insert or re-key
      const int id = id_dist(rng);
      RefLine line;
      // Anchors may lie ahead of `now` (a queue head that arrived "recently"
      // relative to a stale clock) and ties collide often on purpose.
      line.anchor = anchor_dist(rng);
      line.coef = coef_dist(rng);
      line.tie = static_cast<double>(tie_dist(rng));
      reference[id] = line;
      index.Insert(id, line.anchor, line.coef, line.tie);
    } else if (op < 7) {  // erase
      const int id = id_dist(rng);
      reference.erase(id);
      index.Erase(id);
    } else {  // query at an advanced clock
      now += anchor_dist(rng) * 0.3;
      double expected_priority = 0.0;
      const int expected =
          ReferenceArgMax(reference, mode, now, &expected_priority);
      double actual_priority = 0.0;
      const int actual = index.ArgMax(now, &actual_priority);
      ASSERT_EQ(actual, expected) << "step " << step << " now=" << now;
      if (expected >= 0) {
        // Exact equality: both sides must use the same arithmetic.
        ASSERT_EQ(actual_priority, expected_priority) << "step " << step;
      }
    }
    ASSERT_EQ(index.size(), static_cast<int>(reference.size()));
  }
}

TEST(KineticIndexTest, RandomizedTraceDenseRatio) {
  // max_id 60 <= kDenseMaxCapacity: the whole trace runs in dense mode.
  RunRandomizedTrace(KineticIndex::EvalMode::kRatio, 60, 4000, 0xA1, true);
}

TEST(KineticIndexTest, RandomizedTraceDenseScaled) {
  RunRandomizedTrace(KineticIndex::EvalMode::kScaled, 60, 4000, 0xB2, true);
}

TEST(KineticIndexTest, RandomizedTraceTreeRatio) {
  // max_id 600 forces the tournament tree (capacity 1024 > 128).
  RunRandomizedTrace(KineticIndex::EvalMode::kRatio, 600, 4000, 0xC3, true);
}

TEST(KineticIndexTest, RandomizedTraceTreeScaled) {
  RunRandomizedTrace(KineticIndex::EvalMode::kScaled, 600, 4000, 0xD4, true);
}

TEST(KineticIndexTest, RandomizedTraceGrowthSwitch) {
  // No Reserve: the index starts dense at capacity 1 and crosses into tree
  // mode mid-trace when an id past kDenseMaxCapacity arrives.
  RunRandomizedTrace(KineticIndex::EvalMode::kScaled, 400, 4000, 0xE5, false);
}

TEST(KineticIndexTest, DenseModeFlagTracksCapacity) {
  KineticIndex index(KineticIndex::EvalMode::kScaled);
  index.Reserve(60);
  EXPECT_TRUE(index.dense());
  index.Insert(5, 0.0, 1.0);
  EXPECT_EQ(index.ArgMax(1.0), 5);
  EXPECT_EQ(index.node_recomputes(), 0) << "dense mode keeps no tree";
  // Inserting an id past the dense cap flips the index to the tournament;
  // the existing entry must survive the switch.
  index.Insert(KineticIndex::kDenseMaxCapacity + 1, 0.0, 2.0);
  EXPECT_FALSE(index.dense());
  EXPECT_EQ(index.size(), 2);
  EXPECT_EQ(index.ArgMax(1.0), KineticIndex::kDenseMaxCapacity + 1);
  index.Erase(KineticIndex::kDenseMaxCapacity + 1);
  EXPECT_EQ(index.ArgMax(1.0), 5);
}

TEST(KineticIndexTest, ReserveAboveCapGoesStraightToTree) {
  KineticIndex index(KineticIndex::EvalMode::kRatio);
  index.Reserve(500);
  EXPECT_FALSE(index.dense());
  index.Insert(400, 0.0, 2.0);
  index.Insert(7, 0.0, 4.0);
  // (now - 0) / 2 > (now - 0) / 4.
  EXPECT_EQ(index.ArgMax(8.0), 400);
  EXPECT_GT(index.node_recomputes(), 0);
}

TEST(KineticIndexTest, TreeCertificatesSuppressRecomputes) {
  // With static lines and a monotone clock, repeated queries after the first
  // must ride the root certificate (no recomputation) until a crossover.
  KineticIndex index(KineticIndex::EvalMode::kScaled);
  index.Reserve(500);  // tree mode
  // Line A: 1.0 * (t - 0)  — wins early. Line B: 10 * (t - 9) — overtakes at
  // t = 10.
  index.Insert(0, 0.0, 1.0);
  index.Insert(300, 9.0, 10.0);
  EXPECT_EQ(index.ArgMax(9.5), 0);
  const int64_t after_first = index.node_recomputes();
  EXPECT_EQ(index.ArgMax(9.6), 0);
  EXPECT_EQ(index.ArgMax(9.7), 0);
  EXPECT_EQ(index.node_recomputes(), after_first)
      << "queries inside the certificate window must be O(1)";
  EXPECT_EQ(index.ArgMax(11.0), 300) << "crossover must be noticed";
}

TEST(KineticIndexTest, ClearEmptiesBothModes) {
  for (const int reserve : {60, 500}) {
    KineticIndex index(KineticIndex::EvalMode::kScaled);
    index.Reserve(reserve);
    index.Insert(1, 0.0, 1.0);
    index.Insert(2, 0.0, 2.0);
    index.Clear();
    EXPECT_TRUE(index.empty());
    EXPECT_EQ(index.ArgMax(5.0), -1);
    index.Insert(3, 0.0, 1.0);
    EXPECT_EQ(index.ArgMax(5.0), 3);
  }
}

// ---------------------------------------------------------------------------
// Golden-trace equivalence: kinetic scheduler vs its naive scan twin.

Unit MakeUnit(int id, double phi, SimTime ideal_time) {
  Unit unit;
  unit.id = id;
  unit.kind = UnitKind::kQueryChain;
  unit.query = id;
  unit.input_stream = 0;
  unit.stats.phi = phi;
  unit.stats.output_rate = phi * 2.0;
  unit.stats.normalized_rate = phi * 1.5;
  unit.stats.ideal_time = ideal_time;
  return unit;
}

UnitTable MakeUnits(int n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> phi_dist(0.05, 20.0);
  std::uniform_int_distribution<int> ideal_dist(1, 5);
  UnitTable units;
  for (int i = 0; i < n; ++i) {
    // Few distinct ideal_times (LSF coefficient classes) and continuous phi,
    // mirroring the testbed's shape; both produce frequent priority ties.
    units.push_back(
        MakeUnit(i, phi_dist(rng), 0.001 * ideal_dist(rng)));
  }
  return units;
}

/// Runs the same random enqueue/pick trace through both schedulers and
/// asserts identical picks and identical SchedulingCost charges. The two
/// unit tables evolve in lockstep because picks match.
void RunGoldenTrace(Scheduler& kinetic, Scheduler& scan, int n, int steps,
                    uint64_t seed) {
  UnitTable units_a = MakeUnits(n, seed);
  UnitTable units_b = MakeUnits(n, seed);
  kinetic.Attach(&units_a);
  scan.Attach(&units_b);
  std::mt19937_64 rng(seed ^ 0x5EED);
  std::uniform_int_distribution<int> unit_dist(0, n - 1);
  std::uniform_int_distribution<int> op_dist(0, 3);
  double now = 0.0;
  int64_t arrival = 0;
  for (int step = 0; step < steps; ++step) {
    now += 0.001;
    if (op_dist(rng) != 0) {  // enqueue (weighted 3:1 over pick)
      const int u = unit_dist(rng);
      units_a[static_cast<size_t>(u)].queue.push_back(QueueEntry{arrival, now});
      units_b[static_cast<size_t>(u)].queue.push_back(QueueEntry{arrival, now});
      ++arrival;
      kinetic.OnEnqueue(u);
      scan.OnEnqueue(u);
      continue;
    }
    SchedulingCost cost_a;
    SchedulingCost cost_b;
    std::vector<int> out_a;
    std::vector<int> out_b;
    const bool ok_a = kinetic.PickNext(now, &cost_a, &out_a);
    const bool ok_b = scan.PickNext(now, &cost_b, &out_b);
    ASSERT_EQ(ok_a, ok_b) << "step " << step;
    ASSERT_EQ(out_a, out_b) << "step " << step;
    // The simulated overhead charges must be identical: the kinetic index is
    // a wall-clock optimization, not a change to the costs the §9.2
    // experiments charge to the virtual clock.
    ASSERT_EQ(cost_a.computations, cost_b.computations) << "step " << step;
    ASSERT_EQ(cost_a.comparisons, cost_b.comparisons) << "step " << step;
    ASSERT_EQ(cost_a.candidates, cost_b.candidates) << "step " << step;
    ASSERT_EQ(cost_a.chosen_priority, cost_b.chosen_priority)
        << "step " << step;
    if (!ok_a) continue;
    for (const int u : out_a) {
      units_a[static_cast<size_t>(u)].queue.pop_front();
      units_b[static_cast<size_t>(u)].queue.pop_front();
      kinetic.OnDequeue(u);
      scan.OnDequeue(u);
    }
  }
}

TEST(KineticEquivalenceTest, LsfGoldenTrace) {
  for (const int n : {7, 60, 200}) {
    LsfScheduler kinetic(/*use_kinetic_index=*/true);
    LsfScheduler scan(/*use_kinetic_index=*/false);
    RunGoldenTrace(kinetic, scan, n, 6000, 0x11F + static_cast<uint64_t>(n));
  }
}

TEST(KineticEquivalenceTest, BsdGoldenTraceBothCountModes) {
  for (const bool count_all : {false, true}) {
    for (const int n : {7, 60, 200}) {
      BsdScheduler kinetic(count_all, /*use_kinetic_index=*/true);
      BsdScheduler scan(count_all, /*use_kinetic_index=*/false);
      RunGoldenTrace(kinetic, scan, n, 6000,
                     0xB5D + static_cast<uint64_t>(n) + (count_all ? 1 : 0));
    }
  }
}

TEST(KineticEquivalenceTest, ClusteredBsdGoldenTrace) {
  for (const bool clustered_processing : {false, true}) {
    for (const int n : {20, 60}) {
      ClusteredBsdOptions on;
      on.num_clusters = 6;
      on.clustered_processing = clustered_processing;
      on.use_kinetic_index = true;
      ClusteredBsdOptions off = on;
      off.use_kinetic_index = false;
      ClusteredBsdScheduler kinetic(on);
      ClusteredBsdScheduler scan(off);
      RunGoldenTrace(kinetic, scan, n, 6000,
                     0xC1 + static_cast<uint64_t>(n) +
                         (clustered_processing ? 7 : 0));
    }
  }
}

// ---------------------------------------------------------------------------
// Full-simulation equality.

core::RunResult RunSim(sched::PolicyConfig config, bool kinetic,
                       bool charge_overhead) {
  query::WorkloadConfig workload_config;
  workload_config.num_queries = 24;
  workload_config.num_arrivals = 3000;
  workload_config.seed = 42;
  workload_config.utilization = 0.9;
  const query::Workload workload = query::GenerateWorkload(workload_config);
  config.use_kinetic_index = kinetic;
  config.clustered.use_kinetic_index = kinetic;
  core::SimulationOptions options;
  options.charge_scheduling_overhead = charge_overhead;
  return core::Simulate(workload, config, options);
}

void ExpectSameRun(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.qos.tuples_emitted, b.qos.tuples_emitted);
  EXPECT_EQ(a.qos.avg_response, b.qos.avg_response);
  EXPECT_EQ(a.qos.avg_slowdown, b.qos.avg_slowdown);
  EXPECT_EQ(a.qos.max_slowdown, b.qos.max_slowdown);
  EXPECT_EQ(a.qos.l2_slowdown, b.qos.l2_slowdown);
  EXPECT_EQ(a.counters.scheduling_points, b.counters.scheduling_points);
  EXPECT_EQ(a.counters.priority_computations, b.counters.priority_computations);
  EXPECT_EQ(a.counters.decision_candidates, b.counters.decision_candidates);
  EXPECT_EQ(a.counters.overhead_operations, b.counters.overhead_operations);
  EXPECT_EQ(a.counters.overhead_time, b.counters.overhead_time);
  EXPECT_EQ(a.counters.end_time, b.counters.end_time);
}

TEST(KineticEquivalenceTest, SimulationBitIdenticalKineticOnOff) {
  // Both with and without §9.2 overhead charging: the kinetic index must
  // leave the virtual clock — including the charged scheduling costs —
  // untouched.
  for (const bool charge : {false, true}) {
    for (const PolicyKind kind :
         {PolicyKind::kLsf, PolicyKind::kBsd, PolicyKind::kBsdClustered}) {
      const auto config = PolicyConfig::Of(kind);
      ExpectSameRun(RunSim(config, /*kinetic=*/true, charge),
                    RunSim(config, /*kinetic=*/false, charge));
    }
  }
}

}  // namespace
}  // namespace aqsios::sched
