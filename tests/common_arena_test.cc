// Arena / ObjectPool: the allocator behind the engine's tuple trains and the
// window-join bucket nodes. Pointers must stay stable for the life of the
// arena, alignment must hold for every request, and the pool's free list
// must actually recycle.

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"

namespace aqsios {
namespace {

TEST(ArenaTest, StartsEmpty) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.num_chunks(), 0u);
}

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena(/*min_chunk_bytes=*/256);
  for (const size_t alignment : {1u, 2u, 4u, 8u, 16u, 64u}) {
    for (int i = 0; i < 10; ++i) {
      void* p = arena.Allocate(3, alignment);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignment, 0u)
          << "alignment " << alignment << " request " << i;
    }
  }
}

TEST(ArenaTest, PointersStableAcrossChunkGrowth) {
  Arena arena(/*min_chunk_bytes=*/64);
  std::vector<int64_t*> ptrs;
  for (int i = 0; i < 1000; ++i) {
    auto* p = static_cast<int64_t*>(arena.Allocate(sizeof(int64_t),
                                                   alignof(int64_t)));
    *p = i;
    ptrs.push_back(p);
  }
  EXPECT_GT(arena.num_chunks(), 1u) << "growth must have happened";
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(*ptrs[static_cast<size_t>(i)], i);
  }
}

TEST(ArenaTest, OversizedRequestGetsItsOwnChunk) {
  Arena arena(/*min_chunk_bytes=*/64);
  void* small = arena.Allocate(8, 8);
  void* big = arena.Allocate(10000, 8);
  ASSERT_NE(big, nullptr);
  auto* bytes = static_cast<unsigned char*>(big);
  bytes[0] = 1;
  bytes[9999] = 2;
  EXPECT_NE(small, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 10000u + 8u);
}

TEST(ArenaTest, ResetReleasesEverything) {
  Arena arena(/*min_chunk_bytes=*/64);
  for (int i = 0; i < 100; ++i) arena.Allocate(32, 8);
  EXPECT_GT(arena.bytes_used(), 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.num_chunks(), 0u);
  // And it is usable again.
  auto* p = static_cast<int*>(arena.Allocate(sizeof(int), alignof(int)));
  *p = 7;
  EXPECT_EQ(*p, 7);
}

TEST(ArenaTest, MoveTransfersOwnership) {
  Arena a(/*min_chunk_bytes=*/64);
  auto* p = static_cast<int*>(a.Allocate(sizeof(int), alignof(int)));
  *p = 42;
  Arena b = std::move(a);
  EXPECT_EQ(*p, 42);
  EXPECT_GT(b.bytes_used(), 0u);
}

TEST(ArenaTest, AllocateAlignedHonorsLargeAlignments) {
  Arena arena(/*min_chunk_bytes=*/128);
  for (const size_t alignment : {64u, 128u, 256u, 512u}) {
    for (int i = 0; i < 16; ++i) {
      // Odd sizes force padding between consecutive requests.
      void* p = arena.AllocateAligned(alignment + 3, alignment);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignment, 0u)
          << "alignment " << alignment << " request " << i;
    }
  }
}

TEST(ArenaTest, AllocateSpanGivesAlignedDisjointColumns) {
  Arena arena;
  constexpr size_t kCount = 1000;
  double* attr = arena.AllocateSpan<double>(kCount);
  int64_t* id = arena.AllocateSpan<int64_t>(kCount);
  uint32_t* sel = arena.AllocateSpan<uint32_t>(kCount);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(attr) % Arena::kColumnAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(id) % Arena::kColumnAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(sel) % Arena::kColumnAlignment, 0u);
  // Columns must not overlap: fill each fully, then verify all of them.
  for (size_t i = 0; i < kCount; ++i) attr[i] = static_cast<double>(i);
  for (size_t i = 0; i < kCount; ++i) id[i] = static_cast<int64_t>(i) * 3;
  for (size_t i = 0; i < kCount; ++i) sel[i] = static_cast<uint32_t>(i) + 7;
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(attr[i], static_cast<double>(i));
    ASSERT_EQ(id[i], static_cast<int64_t>(i) * 3);
    ASSERT_EQ(sel[i], static_cast<uint32_t>(i) + 7);
  }
}

TEST(ArenaTest, AlignedAllocationsReuseThePool) {
  Arena arena(/*min_chunk_bytes=*/4096);
  // First aligned request reserves a chunk...
  arena.AllocateAligned(256, 64);
  const size_t reserved = arena.bytes_reserved();
  EXPECT_EQ(arena.num_chunks(), 1u);
  // ...and subsequent aligned requests bump within it instead of reserving
  // fresh chunks (padding included in bytes_used, pool capacity unchanged).
  for (int i = 0; i < 8; ++i) arena.AllocateAligned(256, 64);
  EXPECT_EQ(arena.bytes_reserved(), reserved)
      << "small aligned allocations must reuse the reserved chunk";
  EXPECT_EQ(arena.num_chunks(), 1u);
  EXPECT_GE(arena.bytes_used(), 9u * 256u);
}

struct PoolNode {
  int64_t value = 0;
  int64_t extra = 0;
};

TEST(ObjectPoolTest, NewConstructsAndLiveCounts) {
  ObjectPool<PoolNode> pool;
  EXPECT_EQ(pool.live(), 0);
  PoolNode* a = pool.New(PoolNode{1, 2});
  PoolNode* b = pool.New(PoolNode{3, 4});
  EXPECT_EQ(a->value, 1);
  EXPECT_EQ(b->value, 3);
  EXPECT_EQ(pool.live(), 2);
  EXPECT_EQ(pool.free_count(), 0);
}

TEST(ObjectPoolTest, ReleaseRecyclesMemory) {
  ObjectPool<PoolNode> pool;
  PoolNode* a = pool.New(PoolNode{1, 0});
  pool.Release(a);
  EXPECT_EQ(pool.live(), 0);
  EXPECT_EQ(pool.free_count(), 1);
  // LIFO free list: the very next New reuses a's slot with no arena growth.
  const size_t used = pool.arena().bytes_used();
  PoolNode* b = pool.New(PoolNode{2, 0});
  EXPECT_EQ(b, a);
  EXPECT_EQ(b->value, 2);
  EXPECT_EQ(pool.arena().bytes_used(), used);
  EXPECT_EQ(pool.free_count(), 0);
}

TEST(ObjectPoolTest, SteadyStateChurnDoesNotGrowArena) {
  ObjectPool<PoolNode> pool;
  std::vector<PoolNode*> live;
  for (int i = 0; i < 64; ++i) live.push_back(pool.New(PoolNode{i, 0}));
  const size_t reserved = pool.arena().bytes_reserved();
  // FIFO-ish churn at constant population, the window-join's steady state.
  for (int i = 0; i < 10000; ++i) {
    pool.Release(live[static_cast<size_t>(i % 64)]);
    live[static_cast<size_t>(i % 64)] = pool.New(PoolNode{i, 1});
  }
  EXPECT_EQ(pool.arena().bytes_reserved(), reserved)
      << "churn at constant population must be allocation-free";
  EXPECT_EQ(pool.live(), 64);
}

TEST(ObjectPoolTest, DistinctLivePointers) {
  ObjectPool<PoolNode> pool;
  std::set<PoolNode*> seen;
  for (int i = 0; i < 500; ++i) {
    PoolNode* p = pool.New(PoolNode{i, 0});
    EXPECT_TRUE(seen.insert(p).second) << "duplicate live pointer";
  }
}

TEST(ObjectPoolTest, ClearResetsPoolAndArena) {
  ObjectPool<PoolNode> pool;
  for (int i = 0; i < 100; ++i) pool.New(PoolNode{i, 0});
  pool.Clear();
  EXPECT_EQ(pool.live(), 0);
  EXPECT_EQ(pool.free_count(), 0);
  EXPECT_EQ(pool.arena().bytes_used(), 0u);
  PoolNode* p = pool.New(PoolNode{5, 6});
  EXPECT_EQ(p->extra, 6);
}

}  // namespace
}  // namespace aqsios
