// Scheduler state export/import round-trip: after a warm-up of enqueues and
// picks, a second scheduler attached to a copy of the unit table and fed
// ExportState() must reproduce the exporter's remaining pick sequence
// exactly. This is the contract elastic group migration relies on
// (core/rebalance.h): queues move wholesale, the scheduler re-derives or
// imports its bookkeeping, and the merged run stays deterministic.

#include "sched/policy.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace aqsios::sched {
namespace {

/// Six query-level units with pairwise-distinct priority ingredients so no
/// policy faces a priority tie (ties would make pick order legitimately
/// implementation-defined and the comparison meaningless).
UnitTable MakeUnits() {
  UnitTable units;
  for (int i = 0; i < 6; ++i) {
    Unit unit;
    unit.id = i;
    unit.kind = UnitKind::kQueryChain;
    unit.query = i;
    unit.input_stream = 0;
    unit.stats.selectivity = 0.25 + 0.09 * i;
    unit.stats.expected_cost = 0.004 + 0.0017 * i;
    unit.stats.ideal_time = 0.012 + 0.005 * (6 - i);
    RederiveUnitStats(&unit.stats);
    unit.stats.chain_slope = 1.0 + 0.3 * ((i * 5) % 7);
    units.push_back(unit);
  }
  return units;
}

/// Interleaved arrival script touching every unit several times, with
/// strictly increasing arrival ids and times (so FIFO order, head waits, and
/// kinetic keys are all unambiguous).
void FeedScript(UnitTable& units, Scheduler& scheduler) {
  static const int kOrder[] = {3, 0, 5, 1, 4, 2, 0, 3, 1, 5,
                               2, 4, 3, 1, 0, 2, 5, 4, 1, 3,
                               2, 0, 4, 5, 0, 1, 2, 3, 4, 5};
  stream::ArrivalId arrival = 0;
  SimTime t = 0.0;
  for (int unit : kOrder) {
    units[static_cast<size_t>(unit)].queue.push_back(QueueEntry{arrival, t});
    scheduler.OnEnqueue(unit);
    ++arrival;
    t += 0.003;
  }
}

/// Runs `rounds` scheduling points with the engine's dequeue protocol (pop
/// the head of each returned unit, then notify). Returns the advanced clock.
SimTime WarmUp(UnitTable& units, Scheduler& scheduler, int rounds,
               SimTime now) {
  for (int i = 0; i < rounds; ++i) {
    SchedulingCost cost;
    std::vector<int> out;
    if (!scheduler.PickNext(now, &cost, &out)) break;
    for (int unit : out) {
      units[static_cast<size_t>(unit)].queue.pop_front();
      scheduler.OnDequeue(unit);
    }
    now += 0.0021;
  }
  return now;
}

/// Drains the scheduler to empty, recording the executed unit sequence.
std::vector<int> Drain(UnitTable& units, Scheduler& scheduler, SimTime now) {
  std::vector<int> sequence;
  while (true) {
    SchedulingCost cost;
    std::vector<int> out;
    if (!scheduler.PickNext(now, &cost, &out)) break;
    for (int unit : out) {
      sequence.push_back(unit);
      units[static_cast<size_t>(unit)].queue.pop_front();
      scheduler.OnDequeue(unit);
    }
    now += 0.0017;
  }
  return sequence;
}

struct Case {
  std::string label;
  PolicyConfig config;
};

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (PolicyKind kind :
       {PolicyKind::kFcfs, PolicyKind::kRoundRobin, PolicyKind::kSrpt,
        PolicyKind::kHr, PolicyKind::kHnr, PolicyKind::kLsf, PolicyKind::kBsd,
        PolicyKind::kBsdClustered, PolicyKind::kChain, PolicyKind::kTwoLevelRr,
        PolicyKind::kLpNorm, PolicyKind::kQosGraph}) {
    cases.push_back({PolicyKindName(kind), PolicyConfig::Of(kind)});
  }
  // The scan-based (non-kinetic) wait-varying variants keep separate
  // bookkeeping and deserve their own round trip.
  PolicyConfig lsf_scan = PolicyConfig::Of(PolicyKind::kLsf);
  lsf_scan.use_kinetic_index = false;
  cases.push_back({"lsf-scan", lsf_scan});
  PolicyConfig bsd_scan = PolicyConfig::Of(PolicyKind::kBsd);
  bsd_scan.use_kinetic_index = false;
  cases.push_back({"bsd-scan", bsd_scan});
  return cases;
}

TEST(SchedulerStateTest, ExportImportRoundTripPreservesPicks) {
  for (const Case& c : AllCases()) {
    SCOPED_TRACE(c.label);
    UnitTable original = MakeUnits();
    std::unique_ptr<Scheduler> exporter = CreateScheduler(c.config);
    exporter->Attach(&original);
    FeedScript(original, *exporter);
    SimTime now = 30 * 0.003 + 0.01;
    now = WarmUp(original, *exporter, 7, now);

    // The migration target: identical queue contents, fresh scheduler,
    // imported bookkeeping.
    UnitTable copy = original;
    std::unique_ptr<Scheduler> importer = CreateScheduler(c.config);
    importer->Attach(&copy);
    importer->ImportState(exporter->ExportState(), now);

    const std::vector<int> expected = Drain(original, *exporter, now);
    const std::vector<int> actual = Drain(copy, *importer, now);
    EXPECT_FALSE(expected.empty());
    EXPECT_EQ(expected, actual);
    // Both drained to empty.
    for (const Unit& unit : copy) EXPECT_TRUE(unit.queue.empty());
  }
}

TEST(SchedulerStateTest, ResyncAloneReproducesPicksForStatDerivedPolicies) {
  // Policies whose bookkeeping is fully queue-derived must survive a
  // canonical ResyncQueues with no imported payload at all — this is the
  // path work stealing takes (queues mutate, ResyncQueues, no export).
  for (PolicyKind kind :
       {PolicyKind::kSrpt, PolicyKind::kHr, PolicyKind::kHnr,
        PolicyKind::kLsf, PolicyKind::kBsd, PolicyKind::kBsdClustered,
        PolicyKind::kChain, PolicyKind::kLpNorm, PolicyKind::kQosGraph}) {
    SCOPED_TRACE(PolicyKindName(kind));
    const PolicyConfig config = PolicyConfig::Of(kind);
    UnitTable original = MakeUnits();
    std::unique_ptr<Scheduler> reference = CreateScheduler(config);
    reference->Attach(&original);
    FeedScript(original, *reference);
    SimTime now = 30 * 0.003 + 0.01;
    now = WarmUp(original, *reference, 7, now);

    UnitTable copy = original;
    std::unique_ptr<Scheduler> resynced = CreateScheduler(config);
    resynced->Attach(&copy);
    resynced->ResyncQueues(now);

    EXPECT_EQ(Drain(original, *reference, now), Drain(copy, *resynced, now));
  }
}

TEST(SchedulerStateTest, ImportOnEmptyQueuesIsANoOp) {
  for (const Case& c : AllCases()) {
    SCOPED_TRACE(c.label);
    UnitTable units = MakeUnits();
    std::unique_ptr<Scheduler> scheduler = CreateScheduler(c.config);
    scheduler->Attach(&units);
    scheduler->ImportState(SchedulerState{}, /*now=*/1.0);
    SchedulingCost cost;
    std::vector<int> out;
    EXPECT_FALSE(scheduler->PickNext(1.0, &cost, &out));
  }
}

}  // namespace
}  // namespace aqsios::sched
