#include "obs/telemetry.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dsms.h"
#include "core/report.h"
#include "core/sharded_dsms.h"
#include "obs/openmetrics.h"
#include "query/workload.h"
#include "sched/policy.h"

namespace aqsios::obs {
namespace {

TelemetrySample MakeSample(int64_t i) {
  // Fields are functions of one generation counter, so any mixed-generation
  // (torn) read is detectable by cross-checking them.
  TelemetrySample s;
  s.virtual_sec = static_cast<double>(i);
  s.busy_sec = static_cast<double>(2 * i);
  s.queued_tuples = 3 * i;
  s.tuples_executed = 5 * i;
  s.tuples_emitted = 7 * i;
  s.tuples_filtered = 11 * i;
  s.tuples_shed = 13 * i;
  s.tuples_offered = 17 * i;
  s.scheduling_points = 19 * i;
  s.slowdown_sum = static_cast<double>(23 * i);
  s.slowdown_count = 29 * i;
  s.max_slowdown = static_cast<double>(31 * i);
  s.done = false;
  return s;
}

void ExpectInternallyConsistent(const TelemetrySample& s) {
  const int64_t i = static_cast<int64_t>(s.virtual_sec);
  EXPECT_EQ(s.busy_sec, static_cast<double>(2 * i));
  EXPECT_EQ(s.queued_tuples, 3 * i);
  EXPECT_EQ(s.tuples_executed, 5 * i);
  EXPECT_EQ(s.tuples_emitted, 7 * i);
  EXPECT_EQ(s.tuples_filtered, 11 * i);
  EXPECT_EQ(s.tuples_shed, 13 * i);
  EXPECT_EQ(s.tuples_offered, 17 * i);
  EXPECT_EQ(s.scheduling_points, 19 * i);
  EXPECT_EQ(s.slowdown_sum, static_cast<double>(23 * i));
  EXPECT_EQ(s.slowdown_count, 29 * i);
  EXPECT_EQ(s.max_slowdown, static_cast<double>(31 * i));
}

TEST(SnapshotCellTest, RoundTripsOneSample) {
  SnapshotCell cell;
  EXPECT_EQ(cell.publish_count(), 0u);
  TelemetrySample out;
  ASSERT_TRUE(cell.TryRead(&out));  // never-published cells read as zeros
  EXPECT_EQ(out.tuples_executed, 0);

  TelemetrySample in = MakeSample(42);
  in.done = true;
  cell.Publish(in);
  EXPECT_EQ(cell.publish_count(), 1u);
  ASSERT_TRUE(cell.TryRead(&out));
  ExpectInternallyConsistent(out);
  EXPECT_EQ(out.virtual_sec, 42.0);
  EXPECT_TRUE(out.done);
}

// The torn-read hammer (the TSan target): one writer publishing as fast as
// it can, one reader polling concurrently. Every read that reports
// consistent must be one whole Publish — the cross-field invariants of
// MakeSample catch any mixed-generation read — and the generation must
// never run backwards.
TEST(SnapshotCellTest, ConcurrentReaderNeverSeesTornOrRegressingSnapshots) {
  SnapshotCell cell;
  std::thread writer([&] {
    for (int64_t i = 1; i <= 200000; ++i) cell.Publish(MakeSample(i));
    TelemetrySample last = MakeSample(200001);
    last.done = true;
    cell.Publish(last);  // sticks — the reader always terminates
  });

  int64_t consistent_reads = 0;
  double last_virtual = 0.0;
  TelemetrySample s;
  while (true) {
    if (!cell.TryRead(&s)) continue;
    ++consistent_reads;
    ExpectInternallyConsistent(s);
    EXPECT_GE(s.virtual_sec, last_virtual);
    last_virtual = s.virtual_sec;
    if (s.done) break;
  }
  writer.join();
  EXPECT_EQ(s.virtual_sec, 200001.0);
  EXPECT_GT(consistent_reads, 0);
}

query::Workload SmallWorkload() {
  query::WorkloadConfig config;
  config.num_queries = 8;
  config.num_arrivals = 400;
  config.seed = 17;
  config.utilization = 0.9;
  return query::GenerateWorkload(config);
}

// A live reader hammering the cell while a real engine runs: consistent
// snapshots must be monotone in the virtual clock and the cumulative
// counters, and the run result must be byte-identical to an unobserved run.
TEST(SnapshotCellTest, LiveEngineReaderSeesMonotoneSnapshots) {
  const query::Workload workload = SmallWorkload();
  const auto policy = sched::PolicyConfig::Of(sched::PolicyKind::kHnr);
  core::SimulationOptions plain;
  const std::string base = core::RunResultToJson(
      core::Simulate(workload, policy, plain));

  TelemetryHub hub(1);
  core::SimulationOptions observed = plain;
  observed.telemetry = &hub;
  core::RunResult result;
  std::thread engine([&] {
    result = core::Simulate(workload, policy, observed);
  });

  TelemetrySample prev;
  TelemetrySample s;
  int64_t consistent_reads = 0;
  while (true) {
    if (hub.cell(0)->TryRead(&s)) {
      ++consistent_reads;
      EXPECT_GE(s.virtual_sec, prev.virtual_sec);
      EXPECT_GE(s.scheduling_points, prev.scheduling_points);
      EXPECT_GE(s.tuples_executed, prev.tuples_executed);
      EXPECT_GE(s.tuples_emitted, prev.tuples_emitted);
      EXPECT_GE(s.queued_tuples, 0);
      prev = s;
      if (s.done) break;
    }
  }
  engine.join();
  EXPECT_GT(consistent_reads, 0);
  EXPECT_GT(hub.cell(0)->publish_count(), 0u);
  // The final snapshot agrees with the merged counters.
  ASSERT_TRUE(hub.cell(0)->TryRead(&s));
  EXPECT_EQ(s.scheduling_points, result.counters.scheduling_points);
  EXPECT_EQ(s.tuples_emitted, result.counters.tuples_emitted);
  EXPECT_EQ(s.queued_tuples, 0);
  // Observation-only: the observed run serializes byte-identically.
  EXPECT_EQ(core::RunResultToJson(result), base);
}

// The invisibility pin for the whole sampler stack: a sharded run with a
// hub, a fast sampler, and the watchdog attached produces byte-identical
// result JSON to the bare run.
TEST(TelemetrySamplerTest, SampledRunJsonIsByteIdenticalToBareRun) {
  query::WorkloadConfig config;
  config.num_queries = 24;
  config.num_arrivals = 600;
  config.seed = 23;
  config.utilization = 1.2;
  const query::Workload workload = query::GenerateWorkload(config);
  const auto policy = sched::PolicyConfig::Of(sched::PolicyKind::kBsd);

  core::SimulationOptions plain;
  plain.shards = 2;
  const std::string base = core::RunResultToJson(
      core::SimulateSharded(workload, policy, plain).result);

  TelemetryHub hub(2);
  TelemetryOptions options;
  options.period_ms = 0.5;
  TelemetrySampler sampler(&hub, options, TelemetryMeta{});
  sampler.Start();
  core::SimulationOptions observed = plain;
  observed.telemetry = &hub;
  const std::string sampled = core::RunResultToJson(
      core::SimulateSharded(workload, policy, observed).result);
  sampler.Stop();

  EXPECT_EQ(sampled, base);
  EXPECT_GE(sampler.samples(), 1);
}

// ---------------------------------------------------------------------------
// Watchdog

ShardObservation Obs(int shard, double virtual_sec, int64_t queued) {
  ShardObservation o;
  o.shard = shard;
  o.num_queries = 4;
  o.published = true;
  o.sample.virtual_sec = virtual_sec;
  o.sample.queued_tuples = queued;
  return o;
}

TEST(HealthWatchdogTest, FlagsStalledShardOnceAndRearms) {
  WatchdogConfig config;
  config.stall_samples = 3;
  HealthWatchdog dog(config, 1);
  // Progress, then a stall long enough to fire exactly once.
  int64_t tick = 0;
  dog.Observe(tick++, 0.0, {Obs(0, 1.0, 10)});
  for (int i = 0; i < 6; ++i) dog.Observe(tick++, 0.0, {Obs(0, 1.0, 10)});
  ASSERT_EQ(dog.events().size(), 1u);
  EXPECT_EQ(dog.events()[0].kind, HealthEventKind::kStalledShard);
  EXPECT_EQ(dog.events()[0].shard, 0);
  EXPECT_GE(dog.events()[0].value, 3.0);

  // Progress clears the episode; a second stall fires a second event.
  dog.Observe(tick++, 0.0, {Obs(0, 2.0, 10)});
  for (int i = 0; i < 6; ++i) dog.Observe(tick++, 0.0, {Obs(0, 2.0, 10)});
  EXPECT_EQ(dog.events().size(), 2u);
}

TEST(HealthWatchdogTest, NeverPublishedShardWithQueriesCountsAsStalled) {
  WatchdogConfig config;
  config.stall_samples = 2;
  HealthWatchdog dog(config, 2);
  ShardObservation wedged;  // queries assigned, cell never written
  wedged.shard = 0;
  wedged.num_queries = 8;
  wedged.published = false;
  ShardObservation empty;  // no queries: legitimately idle, never flagged
  empty.shard = 1;
  empty.num_queries = 0;
  empty.published = false;
  for (int64_t tick = 0; tick < 5; ++tick) {
    dog.Observe(tick, 0.0, {wedged, empty});
  }
  ASSERT_EQ(dog.events().size(), 1u);
  EXPECT_EQ(dog.events()[0].kind, HealthEventKind::kStalledShard);
  EXPECT_EQ(dog.events()[0].shard, 0);
}

TEST(HealthWatchdogTest, FlagsDivergentQueueGrowthPastCapFraction) {
  WatchdogConfig config;
  config.divergence_window = 4;
  config.queue_cap = 1000;
  config.queue_cap_fraction = 0.5;
  HealthWatchdog dog(config, 1);
  // Grows every tick but stays far from the cap: no event.
  int64_t tick = 0;
  for (int i = 0; i < 8; ++i) {
    dog.Observe(tick++, 0.0, {Obs(0, static_cast<double>(i), 10 + i)});
  }
  EXPECT_TRUE(dog.events().empty());
  // Sustained growth past cap/2 fires.
  for (int i = 0; i < 8; ++i) {
    dog.Observe(tick++, 0.0, {Obs(0, 100.0 + i, 600 + 10 * i)});
  }
  ASSERT_EQ(dog.events().size(), 1u);
  EXPECT_EQ(dog.events()[0].kind, HealthEventKind::kQueueDivergence);
}

TEST(HealthWatchdogTest, FlagsShedAndAdmissionSpikes) {
  WatchdogConfig config;
  config.shed_spike_fraction = 0.2;
  config.admission_spike_fraction = 0.2;
  HealthWatchdog dog(config, 1);
  ShardObservation calm = Obs(0, 1.0, 0);
  calm.sample.tuples_offered = 100;
  calm.sample.tuples_shed = 5;
  calm.routed = 100;
  calm.admission_rejected = 5;
  dog.Observe(0, 0.0, {calm});
  EXPECT_TRUE(dog.events().empty());

  ShardObservation spiky = Obs(0, 2.0, 0);
  spiky.sample.tuples_offered = 200;  // window: 100 offered, 55 shed
  spiky.sample.tuples_shed = 60;
  spiky.routed = 150;  // window: 50 routed, 45 rejected
  spiky.admission_rejected = 50;
  dog.Observe(1, 0.0, {spiky});
  ASSERT_EQ(dog.events().size(), 2u);
  EXPECT_EQ(dog.events()[0].kind, HealthEventKind::kShedSpike);
  EXPECT_EQ(dog.events()[1].kind, HealthEventKind::kAdmissionSpike);
}

TEST(HealthWatchdogTest, FlagsSloBreachOnWindowedMeanSlowdown) {
  WatchdogConfig config;
  config.slo_slowdown_target = 10.0;
  HealthWatchdog dog(config, 1);
  ShardObservation ok = Obs(0, 1.0, 0);
  ok.sample.slowdown_sum = 50.0;  // mean 5 over 10 emissions
  ok.sample.slowdown_count = 10;
  dog.Observe(0, 0.0, {ok});
  EXPECT_TRUE(dog.events().empty());

  ShardObservation slow = Obs(0, 2.0, 0);
  slow.sample.slowdown_sum = 550.0;  // window: 500 over 10 -> mean 50
  slow.sample.slowdown_count = 20;
  dog.Observe(1, 0.0, {slow});
  ASSERT_EQ(dog.events().size(), 1u);
  EXPECT_EQ(dog.events()[0].kind, HealthEventKind::kSloBreach);
}

TEST(FinalizeHealthTest, FlagsAreIndependentAndHealthyWhenNoneFire) {
  WatchdogConfig config;
  config.queue_cap = 100;
  config.slo_slowdown_target = 20.0;
  RunEndStats calm;
  calm.peak_queued_tuples = 50;
  calm.tuples_offered = 1000;
  calm.tuples_shed = 10;
  calm.arrivals_routed = 900;
  calm.admission_rejected = 50;
  calm.p95_slowdown = 8.0;
  EXPECT_TRUE(FinalizeHealth(config, calm).healthy);

  RunEndStats bad = calm;
  bad.peak_queued_tuples = 100;
  bad.tuples_shed = 400;
  bad.admission_rejected = 600;
  bad.p95_slowdown = 90.0;
  const HealthVerdict verdict = FinalizeHealth(config, bad);
  EXPECT_FALSE(verdict.healthy);
  EXPECT_TRUE(verdict.queue_divergence);
  EXPECT_TRUE(verdict.shed_spike);
  EXPECT_TRUE(verdict.admission_spike);
  EXPECT_TRUE(verdict.slo_breach);
  EXPECT_EQ(verdict.ToString(),
            "queue_divergence|shed_spike|admission_spike|slo_breach");
  EXPECT_EQ(FinalizeHealth(config, calm).ToString(), "healthy");

  // p99 governs when the SLO quantile asks for it.
  WatchdogConfig p99 = config;
  p99.slo_quantile = 0.99;
  RunEndStats tail = calm;
  tail.p99_slowdown = 90.0;
  EXPECT_FALSE(FinalizeHealth(p99, tail).healthy);
  EXPECT_TRUE(FinalizeHealth(config, tail).healthy);
}

// RestateHealth on a real overloaded shed run: deterministic across repeats
// and spliced into result JSON without touching the base bytes.
TEST(FinalizeHealthTest, RestatedVerdictIsDeterministicAndSplicesIntoJson) {
  query::WorkloadConfig config;
  config.num_queries = 16;
  config.num_arrivals = 500;
  config.seed = 7;
  config.utilization = 3.0;
  const query::Workload workload = query::GenerateWorkload(config);
  core::SimulationOptions options;
  options.shed.enabled = true;
  options.shed.queue_cap = 128;
  options.shed.shed_fraction = 1.0;
  const auto policy = sched::PolicyConfig::Of(sched::PolicyKind::kHnr);
  const core::RunResult result = core::Simulate(workload, policy, options);

  WatchdogConfig watchdog;
  watchdog.queue_cap = options.shed.queue_cap;
  const HealthVerdict verdict = core::RestateHealth(result, watchdog);
  EXPECT_FALSE(verdict.healthy);  // overload past a finite cap must shed
  EXPECT_TRUE(verdict.shed_spike);
  const HealthVerdict again = core::RestateHealth(
      core::Simulate(workload, policy, options), watchdog);
  EXPECT_EQ(verdict.ToString(), again.ToString());

  const std::string base = core::RunResultToJson(result);
  const std::string with_health =
      core::RunResultToJsonWithHealth(result, verdict);
  // Byte-identical prefix; the health block rides at the tail.
  EXPECT_EQ(with_health.substr(0, base.size() - 1),
            base.substr(0, base.size() - 1));
  EXPECT_NE(with_health.find("\"health\":{\"healthy\":false"),
            std::string::npos);
  EXPECT_NE(with_health.find("\"shed_spike\":true"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sampler outputs

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(TelemetrySamplerTest, WritesExpositionFileAndJsonlLog) {
  const std::string dir = ::testing::TempDir();
  const std::string metrics_path = dir + "aqsios_telemetry_test.prom";
  const std::string jsonl_path = dir + "aqsios_telemetry_test.jsonl";

  TelemetryHub hub(2);
  hub.SetShardQueries(0, 4);
  hub.SetShardQueries(1, 4);
  hub.SetRouted(0, 100);
  hub.SetAdmissionRejected(0, 25);
  TelemetrySample s = MakeSample(3);
  hub.cell(0)->Publish(s);
  s = MakeSample(5);
  s.done = true;
  hub.cell(1)->Publish(s);

  TelemetryOptions options;
  options.period_ms = 2.0;
  options.metrics_out = metrics_path;
  options.jsonl_out = jsonl_path;
  TelemetryMeta meta;
  meta.job = "obs_telemetry_test";
  meta.policy = "hnr";
  TelemetrySampler sampler(&hub, options, meta);
  sampler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.Stop();
  ASSERT_GE(sampler.samples(), 2);

  const std::string exposition = ReadFile(metrics_path);
  EXPECT_EQ(exposition, sampler.LatestExposition());
  EXPECT_NE(exposition.find("# TYPE aqsios_tuples_executed counter"),
            std::string::npos);
  EXPECT_NE(exposition.find("aqsios_tuples_executed_total{shard=\"0\"} 15"),
            std::string::npos);
  EXPECT_NE(exposition.find("aqsios_arrivals_routed_total{shard=\"0\"} 100"),
            std::string::npos);
  EXPECT_NE(
      exposition.find("aqsios_admission_rejected_total{shard=\"0\"} 25"),
      std::string::npos);
  EXPECT_NE(exposition.find("aqsios_shard_done{shard=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(exposition.find("job=\"obs_telemetry_test\""), std::string::npos);
  ASSERT_GE(exposition.size(), 6u);
  EXPECT_EQ(exposition.substr(exposition.size() - 6), "# EOF\n");

  std::ifstream jsonl(jsonl_path);
  std::string line;
  ASSERT_TRUE(std::getline(jsonl, line));
  EXPECT_NE(line.find("\"schema\":\"aqsios-telemetry/1\""),
            std::string::npos);
  EXPECT_NE(line.find("\"shards\":2"), std::string::npos);
  int64_t sample_lines = 0;
  while (std::getline(jsonl, line)) {
    EXPECT_EQ(line.find("{\"sample\":"), 0u);
    EXPECT_NE(line.find("\"shards\":["), std::string::npos);
    ++sample_lines;
  }
  EXPECT_EQ(sample_lines, sampler.samples());
}

TEST(OpenMetricsTest, WriteFileAtomicReplacesContents) {
  const std::string path = ::testing::TempDir() + "aqsios_atomic_test.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "first\n"));
  ASSERT_TRUE(WriteFileAtomic(path, "second\n"));
  EXPECT_EQ(ReadFile(path), "second\n");
}

std::string HttpGet(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const char request[] = "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)!::send(fd, request, sizeof(request) - 1, 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(OpenMetricsTest, HttpServerServesLatestBodyOnEphemeralPort) {
  MetricsHttpServer server;
  ASSERT_TRUE(server.Start(0));
  ASSERT_GT(server.port(), 0);
  server.SetBody("aqsios_shards 2\n# EOF\n");
  const std::string response = HttpGet(server.port());
  EXPECT_EQ(response.find("HTTP/1.1 200 OK"), 0u);
  EXPECT_NE(response.find("application/openmetrics-text"),
            std::string::npos);
  EXPECT_NE(response.find("aqsios_shards 2\n# EOF\n"), std::string::npos);
  server.Stop();
}

TEST(TelemetrySamplerTest, ServesMetricsOverHttpWhileRunning) {
  TelemetryHub hub(1);
  hub.cell(0)->Publish(MakeSample(2));
  TelemetryOptions options;
  options.period_ms = 2.0;
  options.http_port = 0;  // ephemeral
  TelemetrySampler sampler(&hub, options, TelemetryMeta{});
  sampler.Start();
  ASSERT_GT(sampler.http_port(), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const std::string response = HttpGet(sampler.http_port());
  sampler.Stop();
  EXPECT_EQ(response.find("HTTP/1.1 200 OK"), 0u);
  EXPECT_NE(response.find("aqsios_shard_virtual_seconds{shard=\"0\"} 2"),
            std::string::npos);
}

TEST(OpenMetricsTest, RenderedExpositionHasCounterSuffixesAndEof) {
  std::vector<ShardObservation> observations(1);
  observations[0] = Obs(0, 4.0, 7);
  observations[0].sample.tuples_executed = 12;
  TelemetryMeta meta;
  meta.policy = "with \"quotes\" and \\ backslash";
  const std::string text = RenderOpenMetrics(meta, observations, 3, 1.5);
  EXPECT_EQ(text.find("# TYPE aqsios_build gauge"), 0u);
  // Label values are escaped per the OpenMetrics ABNF.
  EXPECT_NE(text.find("policy=\"with \\\"quotes\\\" and \\\\ backslash\""),
            std::string::npos);
  EXPECT_NE(text.find("aqsios_sampler_ticks_total 4"), std::string::npos);
  EXPECT_NE(text.find("aqsios_shard_queued_tuples{shard=\"0\"} 7"),
            std::string::npos);
  // Counters carry the _total sample suffix; gauges do not.
  EXPECT_NE(text.find("aqsios_tuples_executed_total{shard=\"0\"} 12"),
            std::string::npos);
  EXPECT_EQ(text.find("aqsios_shard_virtual_seconds_total"),
            std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

}  // namespace
}  // namespace aqsios::obs
