#include "query/builder.h"

#include <gtest/gtest.h>

#include "gtest_compat.h"

namespace aqsios::query {
namespace {

TEST(QueryBuilderTest, SingleStreamChain) {
  const QuerySpec spec = QueryBuilder(0)
                             .Select(0.5, 0.2)
                             .StoredJoin(1.0, 0.5)
                             .Project(0.2)
                             .Build();
  EXPECT_EQ(spec.left_stream, 0);
  EXPECT_FALSE(spec.is_multi_stream());
  ASSERT_EQ(spec.left_ops.size(), 3u);
  EXPECT_EQ(spec.left_ops[0].kind, OperatorKind::kSelect);
  EXPECT_EQ(spec.left_ops[1].kind, OperatorKind::kStoredJoin);
  EXPECT_EQ(spec.left_ops[2].kind, OperatorKind::kProject);
  EXPECT_DOUBLE_EQ(spec.left_ops[0].selectivity, 0.2);
}

TEST(QueryBuilderTest, TwoStreamJoin) {
  const QuerySpec spec = QueryBuilder(0)
                             .Select(0.5, 0.8)
                             .WindowJoinWith(1, 1.0, 0.3, 2.0,
                                             /*tau=*/0.05)
                             .Select(0.4, 0.9)
                             .Common()
                             .Project(0.2)
                             .LeftMeanInterArrival(0.02)
                             .Build();
  EXPECT_TRUE(spec.is_multi_stream());
  EXPECT_EQ(spec.right_stream, 1);
  ASSERT_TRUE(spec.join_op.has_value());
  EXPECT_DOUBLE_EQ(spec.join_op->window_seconds, 2.0);
  ASSERT_EQ(spec.left_ops.size(), 1u);
  ASSERT_EQ(spec.right_ops.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.right_ops[0].selectivity, 0.9);
  ASSERT_EQ(spec.common_ops.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.right_mean_inter_arrival, 0.05);
  EXPECT_DOUBLE_EQ(spec.left_mean_inter_arrival, 0.02);
}

TEST(QueryBuilderTest, ThreeStreamPipeline) {
  const QuerySpec spec = QueryBuilder(0)
                             .Select(0.5, 0.8)
                             .WindowJoinWith(1, 1.0, 0.3, 2.0, 0.1)
                             .Select(0.4, 0.9)
                             .ThenWindowJoinWith(2, 1.0, 0.5, 4.0, 0.2)
                             .Select(0.3, 0.7)
                             .Common()
                             .Project(0.2)
                             .LeftMeanInterArrival(0.1)
                             .Build();
  ASSERT_EQ(spec.extra_stages.size(), 1u);
  EXPECT_EQ(spec.extra_stages[0].stream, 2);
  ASSERT_EQ(spec.extra_stages[0].side_ops.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.extra_stages[0].side_ops[0].selectivity, 0.7);
  EXPECT_DOUBLE_EQ(spec.extra_stages[0].mean_inter_arrival, 0.2);
  // Round-trips through CompiledQuery.
  CompiledQuery q(spec, SelectivityMode::kIndependent);
  EXPECT_EQ(q.num_join_inputs(), 3);
}

TEST(QueryBuilderTest, ActualSelectivityDrift) {
  const QuerySpec spec = QueryBuilder(0)
                             .Select(0.5, 0.2)
                             .WithActualSelectivity(0.6)
                             .Project(0.2)
                             .Build();
  EXPECT_DOUBLE_EQ(spec.left_ops[0].selectivity, 0.2);
  EXPECT_DOUBLE_EQ(spec.left_ops[0].EffectiveActualSelectivity(), 0.6);
}

TEST(QueryBuilderTest, ClassMetadata) {
  const QuerySpec spec = QueryBuilder(0)
                             .Select(1.0, 0.5)
                             .CostClass(3)
                             .ClassSelectivity(0.5)
                             .Build();
  EXPECT_EQ(spec.cost_class, 3);
  EXPECT_DOUBLE_EQ(spec.class_selectivity, 0.5);
}

TEST(QueryBuilderTest, ReusableAfterBuild) {
  QueryBuilder builder(0);
  builder.Select(1.0, 0.5);
  const QuerySpec a = builder.Build();
  const QuerySpec b = builder.Build();
  EXPECT_EQ(a.left_ops.size(), b.left_ops.size());
}

TEST(QueryBuilderDeathTest, Misuse) {
  AQSIOS_GTEST_SET_FLAG(death_test_style, "threadsafe");
  // Empty chain fails validation at Build.
  EXPECT_DEATH(QueryBuilder(0).Build(), "no operators");
  // Common() without a join.
  EXPECT_DEATH(QueryBuilder(0).Select(1.0, 0.5).Common(), "join");
  // Second base join.
  EXPECT_DEATH(QueryBuilder(0)
                   .Select(1.0, 0.5)
                   .WindowJoinWith(1, 1.0, 0.5, 1.0)
                   .WindowJoinWith(2, 1.0, 0.5, 1.0),
               "first join");
  // ThenWindowJoinWith before WindowJoinWith.
  EXPECT_DEATH(QueryBuilder(0).Select(1.0, 0.5).ThenWindowJoinWith(
                   1, 1.0, 0.5, 1.0),
               "preceding");
  // WithActualSelectivity with no operator.
  EXPECT_DEATH(QueryBuilder(0).WithActualSelectivity(0.5), "preceding");
}

}  // namespace
}  // namespace aqsios::query
