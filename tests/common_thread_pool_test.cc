#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace aqsios {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> pending;
  for (int i = 0; i < 100; ++i) {
    pending.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : pending) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;  // only the lone worker writes; no lock needed
  std::vector<std::future<void>> pending;
  for (int i = 0; i < 20; ++i) {
    pending.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : pending) f.get();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, FutureRethrowsTaskException) {
  ThreadPool pool(2);
  std::future<void> ok = pool.Submit([] {});
  std::future<void> bad =
      pool.Submit([] { throw std::runtime_error("cell exploded"); });
  EXPECT_NO_THROW(ok.get());
  try {
    bad.get();
    FAIL() << "expected the task's exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cell exploded");
  }
}

TEST(ThreadPoolTest, FailedTaskDoesNotPoisonThePool) {
  ThreadPool pool(1);
  std::future<void> bad = pool.Submit([] { throw std::logic_error("boom"); });
  std::atomic<bool> ran{false};
  std::future<void> after = pool.Submit([&ran] { ran = true; });
  EXPECT_THROW(bad.get(), std::logic_error);
  after.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
    }
    // No get(): the destructor must still run every queued task.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

}  // namespace
}  // namespace aqsios
