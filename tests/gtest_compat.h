// Compatibility shims for the range of GoogleTest versions found in the
// wild (the oldest we support is the 1.11 line some distros still ship).
//
// GTEST_FLAG_SET(name, value) only exists since GoogleTest 1.12; earlier
// releases expose each flag as ::testing::FLAGS_gtest_<name> (reachable
// portably through the GTEST_FLAG(name) macro). Tests use
// AQSIOS_GTEST_SET_FLAG so they compile against both.

#ifndef AQSIOS_TESTS_GTEST_COMPAT_H_
#define AQSIOS_TESTS_GTEST_COMPAT_H_

#include <gtest/gtest.h>

#ifdef GTEST_FLAG_SET
#define AQSIOS_GTEST_SET_FLAG(name, value) GTEST_FLAG_SET(name, value)
#else
#define AQSIOS_GTEST_SET_FLAG(name, value) \
  (void)(::testing::GTEST_FLAG(name) = (value))
#endif

#endif  // AQSIOS_TESTS_GTEST_COMPAT_H_
