#include "metrics/timeline.h"

#include <limits>

#include <gtest/gtest.h>

#include "core/dsms.h"
#include "metrics/qos.h"
#include "query/workload.h"

namespace aqsios::metrics {
namespace {

TEST(TimelineCollectorTest, BucketsByArrivalTime) {
  TimelineCollector timeline(1.0);
  timeline.Record(0.1, 2.0);
  timeline.Record(0.9, 4.0);
  timeline.Record(2.5, 8.0);
  ASSERT_EQ(timeline.num_buckets(), 3);
  EXPECT_EQ(timeline.Bucket(0).count(), 2);
  EXPECT_NEAR(timeline.Bucket(0).Mean(), 3.0, 1e-12);
  EXPECT_EQ(timeline.Bucket(1).count(), 0);
  EXPECT_EQ(timeline.Bucket(2).count(), 1);
  EXPECT_DOUBLE_EQ(timeline.BucketStart(2), 2.0);
}

TEST(TimelineCollectorTest, SeriesAreDense) {
  TimelineCollector timeline(0.5);
  timeline.Record(0.1, 2.0);
  timeline.Record(1.6, 6.0);
  const auto mean = timeline.MeanSeries();
  const auto max = timeline.MaxSeries();
  ASSERT_EQ(mean.size(), 4u);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 0.0);  // empty bucket
  EXPECT_DOUBLE_EQ(mean[2], 0.0);
  EXPECT_DOUBLE_EQ(mean[3], 6.0);
  EXPECT_DOUBLE_EQ(max[3], 6.0);
}

TEST(TimelineCollectorTest, BoundaryLandsInUpperBucket) {
  TimelineCollector timeline(1.0);
  timeline.Record(1.0, 5.0);
  ASSERT_EQ(timeline.num_buckets(), 2);
  EXPECT_EQ(timeline.Bucket(0).count(), 0);
  EXPECT_EQ(timeline.Bucket(1).count(), 1);
}

TEST(TimelineCollectorTest, OutOfOrderArrivalsBucketByTimeNotCallOrder) {
  // Composite emissions report the constituents' arrival times, which need
  // not be monotone in emission order.
  TimelineCollector timeline(1.0);
  timeline.Record(5.5, 8.0);
  timeline.Record(0.5, 2.0);  // earlier arrival observed later
  timeline.Record(5.6, 4.0);
  ASSERT_EQ(timeline.num_buckets(), 6);
  EXPECT_EQ(timeline.Bucket(0).count(), 1);
  EXPECT_DOUBLE_EQ(timeline.Bucket(0).Mean(), 2.0);
  EXPECT_EQ(timeline.Bucket(5).count(), 2);
  EXPECT_NEAR(timeline.Bucket(5).Mean(), 6.0, 1e-12);
}

TEST(TimelineCollectorTest, FirstBucketStartsAtTimeZero) {
  TimelineCollector timeline(2.0);
  timeline.Record(0.0, 3.0);
  ASSERT_EQ(timeline.num_buckets(), 1);
  EXPECT_DOUBLE_EQ(timeline.BucketStart(0), 0.0);
  EXPECT_EQ(timeline.Bucket(0).count(), 1);
  EXPECT_DOUBLE_EQ(timeline.Bucket(0).Mean(), 3.0);
}

TEST(TimelineCollectorTest, HugeArrivalTimeClampsIntoLastBucket) {
  // One pathological arrival time must not allocate an unbounded dense
  // series: the index clamps to kMaxBuckets - 1.
  TimelineCollector timeline(0.001);
  timeline.Record(1e18, 7.0);
  ASSERT_EQ(timeline.num_buckets(), TimelineCollector::kMaxBuckets);
  EXPECT_EQ(timeline.Bucket(TimelineCollector::kMaxBuckets - 1).count(), 1);
  // Normal records afterwards still land where they should.
  timeline.Record(0.0005, 1.0);
  EXPECT_EQ(timeline.Bucket(0).count(), 1);
  const auto series = timeline.MeanSeries();
  ASSERT_EQ(series.size(),
            static_cast<size_t>(TimelineCollector::kMaxBuckets));
  EXPECT_DOUBLE_EQ(series.back(), 7.0);
}

TEST(TimelineCollectorTest, ExactCapBoundaryAndInfinityClampIntoLastBucket) {
  // kMaxBuckets * width is the first time past the dense range; it and
  // anything beyond (including +inf, whose scaled index would be UB to
  // cast) must clamp into the last bucket, never allocate past the cap.
  TimelineCollector timeline(1.0);
  const double cap_time = static_cast<double>(TimelineCollector::kMaxBuckets);
  timeline.Record(cap_time, 1.0);
  timeline.Record(cap_time - 1.0, 2.0);  // last in-range bucket
  timeline.Record(std::numeric_limits<double>::infinity(), 3.0);
  ASSERT_EQ(timeline.num_buckets(), TimelineCollector::kMaxBuckets);
  // cap_time and infinity share the last bucket with the in-range record.
  EXPECT_EQ(timeline.Bucket(TimelineCollector::kMaxBuckets - 1).count(), 3);
}

TEST(TimelineCollectorTest, MergeAfterResizeExtendsTheShorterSide) {
  TimelineCollector a(1.0), b(1.0);
  a.Record(0.5, 2.0);
  b.Record(10.5, 4.0);  // b is 11 buckets, a is 1
  a.Merge(b);
  ASSERT_EQ(a.num_buckets(), 11);
  EXPECT_EQ(a.Bucket(0).count(), 1);
  EXPECT_EQ(a.Bucket(10).count(), 1);
  EXPECT_DOUBLE_EQ(a.Bucket(10).Mean(), 4.0);
  // The reverse direction (tall absorbs short) agrees bucket for bucket.
  TimelineCollector c(1.0), d(1.0);
  c.Record(10.5, 4.0);
  d.Record(0.5, 2.0);
  c.Merge(d);
  ASSERT_EQ(c.num_buckets(), a.num_buckets());
  for (int i = 0; i < a.num_buckets(); ++i) {
    EXPECT_EQ(c.Bucket(i).count(), a.Bucket(i).count()) << "bucket " << i;
  }
}

TEST(QosTimelineTest, CollectorIntegration) {
  QosCollector::Options options;
  options.timeline_bucket = 1.0;
  QosCollector collector(options);
  collector.RecordOutput(0, 0, 0.5, /*arrival=*/0.2, 0.010, 2.0);
  collector.RecordOutput(0, 0, 0.5, /*arrival=*/3.4, 0.010, 6.0);
  const QosSnapshot snap = collector.Snapshot();
  EXPECT_DOUBLE_EQ(snap.timeline_bucket, 1.0);
  ASSERT_EQ(snap.slowdown_timeline_mean.size(), 4u);
  EXPECT_DOUBLE_EQ(snap.slowdown_timeline_mean[0], 2.0);
  EXPECT_DOUBLE_EQ(snap.slowdown_timeline_mean[3], 6.0);
}

TEST(QosTimelineTest, OffByDefault) {
  QosCollector collector;
  collector.RecordOutput(0, 0, 0.5, 0.0, 0.010, 2.0);
  const QosSnapshot snap = collector.Snapshot();
  EXPECT_DOUBLE_EQ(snap.timeline_bucket, 0.0);
  EXPECT_TRUE(snap.slowdown_timeline_mean.empty());
}

TEST(QosTimelineTest, EndToEndBurstsShowTransients) {
  // Bursty workload: some buckets must be much worse than the median
  // bucket — the transient the aggregate metrics average away.
  query::WorkloadConfig config;
  config.num_queries = 15;
  config.num_arrivals = 4000;
  config.utilization = 0.9;
  config.seed = 13;
  const query::Workload workload = query::GenerateWorkload(config);
  core::SimulationOptions options;
  options.qos.timeline_bucket = workload.arrivals.Horizon() / 50.0;
  const core::RunResult r = core::Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr), options);
  const auto& series = r.qos.slowdown_timeline_mean;
  ASSERT_GE(series.size(), 10u);
  double peak = 0.0;
  double lowest = std::numeric_limits<double>::infinity();
  int populated = 0;
  for (double v : series) {
    if (v <= 0.0) continue;
    peak = std::max(peak, v);
    lowest = std::min(lowest, v);
    ++populated;
  }
  ASSERT_GT(populated, 5);
  EXPECT_GT(peak, 3.0 * lowest)
      << "bursty arrivals should spread bucket slowdowns widely";
}

}  // namespace
}  // namespace aqsios::metrics
