// Cross-module property tests: the qualitative claims of the paper's
// evaluation must hold on small testbed workloads across seeds.

#include <map>

#include <gtest/gtest.h>

#include "core/dsms.h"
#include "query/workload.h"

namespace aqsios::core {
namespace {

struct PolicyResults {
  std::map<sched::PolicyKind, RunResult> runs;

  const RunResult& at(sched::PolicyKind kind) const { return runs.at(kind); }
};

PolicyResults RunAllPolicies(const query::Workload& workload,
                             const SimulationOptions& options = {}) {
  PolicyResults results;
  for (sched::PolicyKind kind :
       {sched::PolicyKind::kFcfs, sched::PolicyKind::kRoundRobin,
        sched::PolicyKind::kSrpt, sched::PolicyKind::kHr,
        sched::PolicyKind::kHnr, sched::PolicyKind::kLsf,
        sched::PolicyKind::kBsd}) {
    results.runs[kind] =
        Simulate(workload, sched::PolicyConfig::Of(kind), options);
  }
  return results;
}

class PolicyPropertyTest : public testing::TestWithParam<uint64_t> {
 protected:
  query::Workload HighLoadWorkload() const {
    query::WorkloadConfig config;
    config.num_queries = 30;
    config.num_arrivals = 4000;
    config.utilization = 0.95;
    config.seed = GetParam();
    return query::GenerateWorkload(config);
  }
};

TEST_P(PolicyPropertyTest, AllPoliciesEmitTheSameTuples) {
  const query::Workload workload = HighLoadWorkload();
  const PolicyResults results = RunAllPolicies(workload);
  const int64_t expected =
      results.at(sched::PolicyKind::kFcfs).qos.tuples_emitted;
  EXPECT_GT(expected, 0);
  for (const auto& [kind, run] : results.runs) {
    EXPECT_EQ(run.qos.tuples_emitted, expected)
        << sched::PolicyKindName(kind);
    EXPECT_NEAR(run.counters.busy_time,
                results.at(sched::PolicyKind::kFcfs).counters.busy_time, 1e-6)
        << sched::PolicyKindName(kind);
  }
}

TEST_P(PolicyPropertyTest, SlowdownsNeverBelowOne) {
  const query::Workload workload = HighLoadWorkload();
  const PolicyResults results = RunAllPolicies(workload);
  for (const auto& [kind, run] : results.runs) {
    EXPECT_GE(run.qos.avg_slowdown, 1.0) << sched::PolicyKindName(kind);
    EXPECT_GE(run.qos.max_slowdown, run.qos.avg_slowdown)
        << sched::PolicyKindName(kind);
    EXPECT_GE(run.qos.max_response, run.qos.avg_response)
        << sched::PolicyKindName(kind);
  }
}

TEST_P(PolicyPropertyTest, HnrMinimizesAverageSlowdown) {
  // Figure 5: HNR gives the lowest average slowdown; RR and FCFS are far
  // worse; SRPT sits in between.
  const query::Workload workload = HighLoadWorkload();
  const PolicyResults results = RunAllPolicies(workload);
  const double hnr = results.at(sched::PolicyKind::kHnr).qos.avg_slowdown;
  EXPECT_LE(hnr,
            results.at(sched::PolicyKind::kHr).qos.avg_slowdown * 1.02);
  EXPECT_LT(hnr, results.at(sched::PolicyKind::kSrpt).qos.avg_slowdown);
  EXPECT_LT(hnr, results.at(sched::PolicyKind::kRoundRobin).qos.avg_slowdown);
  EXPECT_LT(hnr, results.at(sched::PolicyKind::kFcfs).qos.avg_slowdown);
}

TEST_P(PolicyPropertyTest, HrMinimizesAverageResponse) {
  // Figure 6: HR's response time is the best; HNR pays a small premium.
  const query::Workload workload = HighLoadWorkload();
  const PolicyResults results = RunAllPolicies(workload);
  const double hr = results.at(sched::PolicyKind::kHr).qos.avg_response;
  EXPECT_LE(hr,
            results.at(sched::PolicyKind::kHnr).qos.avg_response * 1.02);
  EXPECT_LT(hr, results.at(sched::PolicyKind::kRoundRobin).qos.avg_response);
  EXPECT_LT(hr, results.at(sched::PolicyKind::kFcfs).qos.avg_response);
}

TEST_P(PolicyPropertyTest, LsfMinimizesMaximumSlowdown) {
  // Figure 7: LSF's max slowdown is far below HNR's.
  const query::Workload workload = HighLoadWorkload();
  const PolicyResults results = RunAllPolicies(workload);
  EXPECT_LT(results.at(sched::PolicyKind::kLsf).qos.max_slowdown,
            results.at(sched::PolicyKind::kHnr).qos.max_slowdown);
}

TEST_P(PolicyPropertyTest, BsdBalancesTheTradeoff) {
  // Figures 8-10: BSD's max slowdown is below HNR's, its average slowdown
  // below LSF's, and its l2 norm the best of the three.
  const query::Workload workload = HighLoadWorkload();
  const PolicyResults results = RunAllPolicies(workload);
  const RunResult& bsd = results.at(sched::PolicyKind::kBsd);
  const RunResult& hnr = results.at(sched::PolicyKind::kHnr);
  const RunResult& lsf = results.at(sched::PolicyKind::kLsf);
  EXPECT_LT(bsd.qos.max_slowdown, hnr.qos.max_slowdown);
  EXPECT_LT(bsd.qos.avg_slowdown, lsf.qos.avg_slowdown);
  EXPECT_LE(bsd.qos.l2_slowdown, hnr.qos.l2_slowdown * 1.02);
  EXPECT_LE(bsd.qos.l2_slowdown, lsf.qos.l2_slowdown * 1.02);
}

TEST_P(PolicyPropertyTest, HrBiasedAgainstLowSelectivityClasses) {
  // Figure 11: within the low-cost class, HR's slowdown for low-selectivity
  // queries is much worse than for high-selectivity ones; HNR's bias is
  // smaller.
  const query::Workload workload = HighLoadWorkload();
  const PolicyResults results = RunAllPolicies(workload);
  auto class_bias = [](const RunResult& run) {
    // Ratio of mean slowdown in the lowest vs highest populated selectivity
    // deciles of cost class 0.
    double low = 0.0;
    double high = 0.0;
    for (const auto& [key, stats] : run.qos.per_class_slowdown) {
      if (key.cost_class != 0 || stats.count() == 0) continue;
      if (low == 0.0) low = stats.Mean();  // lowest decile seen first
      high = stats.Mean();                 // ends at the highest decile
    }
    return high > 0.0 ? low / high : 1.0;
  };
  const double hr_bias = class_bias(results.at(sched::PolicyKind::kHr));
  const double hnr_bias = class_bias(results.at(sched::PolicyKind::kHnr));
  EXPECT_GT(hr_bias, 1.0);
  EXPECT_LT(hnr_bias, hr_bias);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyPropertyTest,
                         testing::Values(42u, 1234u, 777u));

class MultiStreamPropertyTest : public testing::TestWithParam<uint64_t> {
 protected:
  query::Workload JoinWorkload() const {
    query::WorkloadConfig config;
    config.num_queries = 10;
    config.num_arrivals = 3000;
    config.utilization = 0.9;
    config.multi_stream = true;
    config.arrival_pattern = query::ArrivalPattern::kPoisson;
    config.poisson_rate = 50.0;
    config.window_min_seconds = 0.5;
    config.window_max_seconds = 2.0;
    config.num_join_keys = 1;
    config.seed = GetParam();
    return query::GenerateWorkload(config);
  }
};

TEST_P(MultiStreamPropertyTest, CompositesFlowAndSlowdownsValid) {
  const query::Workload workload = JoinWorkload();
  const RunResult r =
      Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kBsd));
  EXPECT_GT(r.counters.composites_generated, 0);
  EXPECT_GT(r.qos.tuples_emitted, 0);
  EXPECT_GE(r.qos.avg_slowdown, 1.0);
}

TEST_P(MultiStreamPropertyTest, BsdBeatsRrAndFcfsOnL2) {
  // Figure 12: BSD's l2 norm is far better than RR's and FCFS's for
  // window-join workloads.
  const query::Workload workload = JoinWorkload();
  const RunResult bsd =
      Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kBsd));
  const RunResult rr = Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kRoundRobin));
  const RunResult fcfs =
      Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kFcfs));
  EXPECT_LT(bsd.qos.l2_slowdown, rr.qos.l2_slowdown);
  EXPECT_LT(bsd.qos.l2_slowdown, fcfs.qos.l2_slowdown);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiStreamPropertyTest,
                         testing::Values(42u, 1234u));

/// The headline figure orderings must hold across the whole load range the
/// paper sweeps, not just at the high end.
class UtilizationSweepTest : public testing::TestWithParam<double> {};

TEST_P(UtilizationSweepTest, Figure5And7OrderingsHoldAtEveryLoad) {
  query::WorkloadConfig config;
  config.num_queries = 30;
  config.num_arrivals = 4000;
  config.utilization = GetParam();
  config.seed = 42;
  const query::Workload workload = query::GenerateWorkload(config);
  const PolicyResults results = RunAllPolicies(workload);
  const double hnr = results.at(sched::PolicyKind::kHnr).qos.avg_slowdown;
  // Figure 5 ordering.
  EXPECT_LT(hnr, results.at(sched::PolicyKind::kSrpt).qos.avg_slowdown);
  EXPECT_LT(hnr, results.at(sched::PolicyKind::kRoundRobin).qos.avg_slowdown);
  EXPECT_LE(hnr, results.at(sched::PolicyKind::kHr).qos.avg_slowdown * 1.02);
  // Figure 7 ordering.
  EXPECT_LT(results.at(sched::PolicyKind::kLsf).qos.max_slowdown,
            results.at(sched::PolicyKind::kHnr).qos.max_slowdown);
  // Figure 6 ordering.
  EXPECT_LE(results.at(sched::PolicyKind::kHr).qos.avg_response,
            results.at(sched::PolicyKind::kRoundRobin).qos.avg_response);
  // Load monotonicity sanity: utilization below 1 drains within the run.
  EXPECT_GT(results.at(sched::PolicyKind::kHnr).qos.tuples_emitted, 0);
}

INSTANTIATE_TEST_SUITE_P(Loads, UtilizationSweepTest,
                         testing::Values(0.6, 0.8, 0.95));

}  // namespace
}  // namespace aqsios::core
