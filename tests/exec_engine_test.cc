#include "exec/engine.h"

#include <gtest/gtest.h>

#include "core/dsms.h"
#include "query/workload.h"

namespace aqsios::exec {
namespace {

using core::Dsms;
using core::RunResult;
using core::Simulate;
using core::SimulationOptions;

stream::ArrivalTable SingleStreamArrivals(int n, SimTime spacing,
                                          double attribute = 10.0) {
  stream::ArrivalTable table;
  for (int i = 0; i < n; ++i) {
    stream::Arrival a;
    a.id = i;
    a.stream = 0;
    a.time = spacing * i;
    a.attribute = attribute;
    a.join_key = 5;
    table.arrivals.push_back(a);
  }
  return table;
}

query::QuerySpec Chain(std::vector<query::OperatorSpec> ops) {
  query::QuerySpec spec;
  spec.left_stream = 0;
  spec.left_ops = std::move(ops);
  return spec;
}

TEST(EngineTest, IdleSystemResponseEqualsIdealTime) {
  Dsms dsms(query::SelectivityMode::kCorrelatedAttribute);
  dsms.AddQuery(Chain({query::MakeSelect(1.0, 1.0), query::MakeProject(2.0)}));
  // Spacing far larger than the 3 ms processing time: no queueing.
  dsms.SetArrivals(SingleStreamArrivals(10, 1.0));
  const RunResult r =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kFcfs));
  EXPECT_EQ(r.qos.tuples_emitted, 10);
  EXPECT_NEAR(SimTimeToMillis(r.qos.avg_response), 3.0, 1e-9);
  EXPECT_NEAR(r.qos.avg_slowdown, 1.0, 1e-9);
  EXPECT_NEAR(r.qos.max_slowdown, 1.0, 1e-9);
}

TEST(EngineTest, QueueingBuildsSlowdown) {
  Dsms dsms(query::SelectivityMode::kCorrelatedAttribute);
  dsms.AddQuery(Chain({query::MakeSelect(2.0, 1.0)}));
  // Arrivals every 1 ms into a 2 ms/tuple query: overload; the k-th tuple
  // waits ~k ms.
  dsms.SetArrivals(SingleStreamArrivals(20, 0.001));
  const RunResult r =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kFcfs));
  EXPECT_EQ(r.qos.tuples_emitted, 20);
  EXPECT_GT(r.qos.max_slowdown, 5.0);
  // Tuple k (0-based) departs at 2(k+1) ms, arrived at k ms.
  EXPECT_NEAR(SimTimeToMillis(r.qos.max_response), 2.0 * 20 - 19.0, 1e-9);
}

TEST(EngineTest, CorrelatedFilterUsesAttributeThreshold) {
  Dsms dsms(query::SelectivityMode::kCorrelatedAttribute);
  dsms.AddQuery(Chain({query::MakeSelect(1.0, 0.5)}));
  // Attribute 10 passes s=0.5 (10 <= 50); attribute 80 fails.
  dsms.SetArrivals(SingleStreamArrivals(5, 1.0, /*attribute=*/10.0));
  EXPECT_EQ(dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kFcfs))
                .qos.tuples_emitted,
            5);
  Dsms dsms2(query::SelectivityMode::kCorrelatedAttribute);
  dsms2.AddQuery(Chain({query::MakeSelect(1.0, 0.5)}));
  dsms2.SetArrivals(SingleStreamArrivals(5, 1.0, /*attribute=*/80.0));
  EXPECT_EQ(dsms2.Run(sched::PolicyConfig::Of(sched::PolicyKind::kFcfs))
                .qos.tuples_emitted,
            0);
}

TEST(EngineTest, IndependentFilterOutcomesPolicyInvariant) {
  // The same workload must emit exactly the same tuples under any policy:
  // filter outcomes are frozen per (arrival, query, operator).
  query::WorkloadConfig config;
  config.num_queries = 10;
  config.num_arrivals = 500;
  config.utilization = 0.8;
  config.seed = 3;
  config.selectivity_mode = query::SelectivityMode::kIndependent;
  const query::Workload workload = query::GenerateWorkload(config);
  const RunResult a =
      Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kHr));
  const RunResult b =
      Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kRoundRobin));
  const RunResult c =
      Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kLsf));
  EXPECT_EQ(a.qos.tuples_emitted, b.qos.tuples_emitted);
  EXPECT_EQ(a.qos.tuples_emitted, c.qos.tuples_emitted);
  EXPECT_NEAR(a.counters.busy_time, b.counters.busy_time, 1e-9);
  EXPECT_NEAR(a.counters.busy_time, c.counters.busy_time, 1e-9);
}

TEST(EngineTest, OperatorLevelEmitsSameTuplesAsQueryLevel) {
  query::WorkloadConfig config;
  config.num_queries = 8;
  config.num_arrivals = 400;
  config.utilization = 0.7;
  config.seed = 11;
  const query::Workload workload = query::GenerateWorkload(config);

  SimulationOptions query_level;
  query_level.level = SchedulingLevel::kQueryLevel;
  SimulationOptions op_level;
  op_level.level = SchedulingLevel::kOperatorLevel;

  const RunResult a = Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr), query_level);
  const RunResult b = Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr), op_level);
  EXPECT_EQ(a.qos.tuples_emitted, b.qos.tuples_emitted);
  EXPECT_NEAR(a.counters.busy_time, b.counters.busy_time, 1e-9);
  // Operator-level scheduling has (at least) one scheduling point per
  // operator invocation.
  EXPECT_GT(b.counters.unit_executions, a.counters.unit_executions);
}

TEST(EngineTest, SharedGroupRunsSharedOperatorOnce) {
  Dsms dsms(query::SelectivityMode::kCorrelatedAttribute);
  // Two queries sharing an identical 4 ms select; remainders cost 1 ms each.
  const query::OperatorSpec shared = query::MakeSelect(4.0, 1.0);
  dsms.AddQuery(Chain({shared, query::MakeProject(1.0)}));
  dsms.AddQuery(Chain({shared, query::MakeProject(1.0)}));
  dsms.AddSharingGroup({0, 1});
  dsms.SetArrivals(SingleStreamArrivals(3, 1.0));
  const RunResult r =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kHnr));
  EXPECT_EQ(r.qos.tuples_emitted, 6);
  // Per arrival: 4 (shared, once) + 1 + 1 = 6 ms; without sharing it would
  // be 10 ms.
  EXPECT_NEAR(SimTimeToMillis(r.counters.busy_time), 18.0, 1e-9);
}

TEST(EngineTest, SharedGroupFilteringAppliesToAllMembers) {
  Dsms dsms(query::SelectivityMode::kCorrelatedAttribute);
  const query::OperatorSpec shared = query::MakeSelect(1.0, 0.5);
  dsms.AddQuery(Chain({shared, query::MakeProject(1.0)}));
  dsms.AddQuery(Chain({shared, query::MakeProject(2.0)}));
  dsms.AddSharingGroup({0, 1});
  dsms.SetArrivals(SingleStreamArrivals(4, 1.0, /*attribute=*/90.0));
  const RunResult r =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kHnr));
  EXPECT_EQ(r.qos.tuples_emitted, 0);
  // Only the shared op ran: 1 ms per arrival.
  EXPECT_NEAR(SimTimeToMillis(r.counters.busy_time), 4.0, 1e-9);
}

query::QuerySpec TinyJoinQuery() {
  query::QuerySpec spec;
  spec.left_stream = 0;
  spec.right_stream = 1;
  spec.left_ops = {query::MakeSelect(1.0, 1.0)};
  spec.right_ops = {query::MakeSelect(1.0, 1.0)};
  spec.join_op = query::MakeWindowJoin(1.0, 1.0, /*window=*/10.0);
  spec.common_ops = {query::MakeProject(1.0)};
  spec.left_mean_inter_arrival = 0.1;
  spec.right_mean_inter_arrival = 0.1;
  return spec;
}

stream::ArrivalTable TwoStreamPair(SimTime left_time, SimTime right_time) {
  stream::ArrivalTable table;
  stream::Arrival l;
  l.stream = 0;
  l.time = left_time;
  l.attribute = 10.0;
  l.join_key = 5;
  stream::Arrival r;
  r.stream = 1;
  r.time = right_time;
  r.attribute = 10.0;
  r.join_key = 5;
  if (left_time <= right_time) {
    table.arrivals = {l, r};
  } else {
    table.arrivals = {r, l};
  }
  for (size_t i = 0; i < table.arrivals.size(); ++i) {
    table.arrivals[i].id = static_cast<int64_t>(i);
  }
  return table;
}

TEST(EngineTest, JoinCompositeIdleSystemHasSlowdownOne) {
  Dsms dsms(query::SelectivityMode::kCorrelatedAttribute);
  dsms.AddQuery(TinyJoinQuery());
  dsms.SetArrivals(TwoStreamPair(0.0, 0.1));
  const RunResult r =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kFcfs));
  ASSERT_EQ(r.qos.tuples_emitted, 1);
  ASSERT_EQ(r.counters.composites_generated, 1);
  // Composite arrival = max(0, 0.1); response = C_R + C_J + C_C = 3 ms.
  EXPECT_NEAR(SimTimeToMillis(r.qos.avg_response), 3.0, 1e-9);
  // Dependency delay is not penalized: slowdown is exactly 1.
  EXPECT_NEAR(r.qos.avg_slowdown, 1.0, 1e-9);
}

TEST(EngineTest, JoinCompositeQueueingDelayPenalized) {
  Dsms dsms(query::SelectivityMode::kCorrelatedAttribute);
  dsms.AddQuery(TinyJoinQuery());
  // A heavy single-stream query on stream 0 delays the join's right tuple
  // processing (FCFS: enqueued before the right arrival).
  dsms.AddQuery(Chain({query::MakeSelect(50.0, 1.0)}));
  dsms.SetArrivals(TwoStreamPair(0.0, 0.01));
  const RunResult r =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kFcfs));
  ASSERT_EQ(r.qos.tuples_emitted, 2);  // 1 composite + 1 from the heavy query
  // Composite: emitted at 55 ms (2 left ops + 50 heavy + right path 3 ms);
  // ideal departure = 0.01 + 0.003; T = 5 ms.
  // slowdown = 1 + (0.055 - 0.013)/0.005 = 9.4.
  EXPECT_NEAR(r.qos.max_slowdown, 9.4, 1e-9);
}

TEST(EngineTest, JoinSelectivityControlsComposites) {
  // match probability 0 -> no composites despite window matches.
  Dsms dsms(query::SelectivityMode::kCorrelatedAttribute);
  query::QuerySpec spec = TinyJoinQuery();
  spec.join_op = query::MakeWindowJoin(1.0, 1e-9, 10.0);
  dsms.AddQuery(spec);
  dsms.SetArrivals(TwoStreamPair(0.0, 0.1));
  const RunResult r =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kFcfs));
  EXPECT_EQ(r.counters.composites_generated, 0);
  EXPECT_EQ(r.qos.tuples_emitted, 0);
}

TEST(EngineTest, JoinWindowExcludesDistantTuples) {
  Dsms dsms(query::SelectivityMode::kCorrelatedAttribute);
  query::QuerySpec spec = TinyJoinQuery();
  spec.join_op = query::MakeWindowJoin(1.0, 1.0, /*window=*/0.05);
  dsms.AddQuery(spec);
  dsms.SetArrivals(TwoStreamPair(0.0, 0.1));  // 100 ms apart > 50 ms window
  const RunResult r =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kFcfs));
  EXPECT_EQ(r.counters.composites_generated, 0);
}

TEST(EngineTest, OverheadChargingExtendsCompletion) {
  query::WorkloadConfig config;
  config.num_queries = 10;
  config.num_arrivals = 300;
  config.utilization = 0.6;
  config.seed = 5;
  const query::Workload workload = query::GenerateWorkload(config);

  SimulationOptions no_charge;
  SimulationOptions charged;
  charged.charge_scheduling_overhead = true;

  const RunResult cheap = Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kBsd), no_charge);
  const RunResult costly = Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kBsd), charged);
  EXPECT_GT(cheap.counters.overhead_operations, 0);
  EXPECT_DOUBLE_EQ(cheap.counters.overhead_time, 0.0);
  EXPECT_GT(costly.counters.overhead_time, 0.0);
  EXPECT_GT(costly.qos.avg_slowdown, cheap.qos.avg_slowdown);
}

TEST(EngineTest, CountersAreConsistent) {
  query::WorkloadConfig config;
  config.num_queries = 6;
  config.num_arrivals = 200;
  config.utilization = 0.5;
  config.seed = 9;
  const query::Workload workload = query::GenerateWorkload(config);
  const RunResult r =
      Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr));
  // Every (arrival × query) pair is executed exactly once at query level.
  EXPECT_EQ(r.counters.unit_executions, 200 * 6);
  EXPECT_EQ(r.counters.scheduling_points, r.counters.unit_executions);
  EXPECT_GT(r.counters.operator_invocations, r.counters.unit_executions);
  EXPECT_GT(r.counters.busy_time, 0.0);
  EXPECT_GE(r.counters.end_time, r.counters.busy_time);
  const std::string text = r.counters.ToString();
  EXPECT_NE(text.find("emitted="), std::string::npos);
}

}  // namespace
}  // namespace aqsios::exec
