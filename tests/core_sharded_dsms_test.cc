// Determinism and equivalence contract of the shard-parallel runtime
// (core/sharded_dsms.h):
//  * one shard through the sharded machinery == the classic engine, byte for
//    byte (RunResultToJson equality);
//  * fixed (plan, arrivals, policy, K, seed) => identical merged results
//    across repeated runs and across worker-thread counts;
//  * emissions are schedule-invariant, so tuples_emitted matches the classic
//    run at every K.

#include "core/sharded_dsms.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dsms.h"
#include "core/report.h"
#include "query/workload.h"
#include "sched/policy.h"

namespace aqsios::core {
namespace {

query::Workload Testbed(int queries, int64_t arrivals,
                        bool multi_stream = false,
                        int sharing_group_size = 0) {
  query::WorkloadConfig config;
  config.num_queries = queries;
  config.num_arrivals = arrivals;
  config.seed = 42;
  config.utilization = 0.9;
  config.multi_stream = multi_stream;
  config.sharing_group_size = sharing_group_size;
  return query::GenerateWorkload(config);
}

SimulationOptions FullOptions(int shards) {
  SimulationOptions options;
  options.shards = shards;
  options.qos.track_per_query = true;
  options.attribution_sample_every = 32;
  return options;
}

sched::PolicyConfig Policy(sched::PolicyKind kind) {
  return sched::PolicyConfig::Of(kind);
}

TEST(ShardedDsmsTest, OneShardIsByteIdenticalToClassicEngine) {
  const query::Workload workload = Testbed(20, 3000);
  for (const sched::PolicyKind kind :
       {sched::PolicyKind::kHnr, sched::PolicyKind::kBsd,
        sched::PolicyKind::kRoundRobin}) {
    const RunResult classic =
        Simulate(workload, Policy(kind), FullOptions(/*shards=*/1));
    SimulationOptions options = FullOptions(1);
    const ShardedRunResult sharded =
        SimulateSharded(workload, Policy(kind), options);
    // The sharded path at K=1 still routes through rings, rebuilds the
    // sub-plan, and merges one shard's metrics into fresh accumulators —
    // all of which must be exact identities.
    EXPECT_EQ(RunResultToJson(sharded.result), RunResultToJson(classic));
  }
}

TEST(ShardedDsmsTest, OverheadChargingStaysByteIdenticalAtOneShard) {
  const query::Workload workload = Testbed(20, 3000);
  SimulationOptions options = FullOptions(1);
  options.charge_scheduling_overhead = true;
  const RunResult classic =
      Simulate(workload, Policy(sched::PolicyKind::kBsd), options);
  const ShardedRunResult sharded =
      SimulateSharded(workload, Policy(sched::PolicyKind::kBsd), options);
  EXPECT_EQ(RunResultToJson(sharded.result), RunResultToJson(classic));
}

TEST(ShardedDsmsTest, RepeatedRunsAndThreadCountsAreIdentical) {
  const query::Workload workload = Testbed(40, 4000);
  for (const int shards : {2, 4, 8}) {
    std::string reference;
    for (int rep = 0; rep < 3; ++rep) {
      SimulationOptions options = FullOptions(shards);
      options.shard_threads = rep == 2 ? 4 : 1;  // serial and pooled runs
      const ShardedRunResult run =
          SimulateSharded(workload, Policy(sched::PolicyKind::kHnr), options);
      const std::string json = RunResultToJson(run.result);
      if (rep == 0) {
        reference = json;
      } else {
        EXPECT_EQ(json, reference)
            << "nondeterministic merged result at shards=" << shards
            << " rep=" << rep;
      }
    }
  }
}

TEST(ShardedDsmsTest, EmissionsAreScheduleInvariantAcrossShardCounts) {
  const query::Workload workload = Testbed(40, 4000);
  const RunResult classic = Simulate(workload, Policy(sched::PolicyKind::kHnr),
                                     FullOptions(/*shards=*/1));
  for (const int shards : {2, 4, 8}) {
    const ShardedRunResult run = SimulateSharded(
        workload, Policy(sched::PolicyKind::kHnr), FullOptions(shards));
    // Frozen draws key on global ids, which sharding preserves: what gets
    // emitted/filtered never depends on the schedule, only *when* does.
    EXPECT_EQ(run.result.qos.tuples_emitted, classic.qos.tuples_emitted)
        << "shards=" << shards;
    EXPECT_EQ(run.result.counters.tuples_filtered,
              classic.counters.tuples_filtered);
    EXPECT_EQ(run.result.counters.tuples_emitted,
              classic.counters.tuples_emitted);
  }
}

TEST(ShardedDsmsTest, ShardStatsAccountForTheWholeRun) {
  const query::Workload workload = Testbed(30, 3000);
  const ShardedRunResult run = SimulateSharded(
      workload, Policy(sched::PolicyKind::kHnr), FullOptions(4));
  ASSERT_EQ(run.shard_stats.size(), 4u);
  ASSERT_EQ(run.query_id_maps.size(), 4u);
  int queries = 0;
  double busy = 0.0;
  for (int s = 0; s < 4; ++s) {
    const ShardRunStats& stats = run.shard_stats[static_cast<size_t>(s)];
    EXPECT_EQ(stats.shard, s);
    EXPECT_EQ(static_cast<size_t>(stats.num_queries),
              run.query_id_maps[static_cast<size_t>(s)].size());
    EXPECT_EQ(static_cast<size_t>(stats.num_queries),
              run.assignment.queries_of_shard[static_cast<size_t>(s)].size());
    queries += stats.num_queries;
    busy += stats.busy_seconds;
    if (stats.num_queries > 0) {
      // Single-stream workload: every live shard sees every arrival.
      EXPECT_EQ(stats.arrivals, workload.arrivals.size());
      EXPECT_GT(stats.end_seconds, 0.0);
    }
  }
  EXPECT_EQ(queries, 30);
  // Per-shard busy times partition the merged busy time exactly (sums of
  // the same per-execution addends, shard-major instead of interleaved).
  EXPECT_NEAR(busy, run.result.counters.busy_time, 1e-9);
  EXPECT_GE(run.LoadImbalance(), 1.0);
  EXPECT_LE(run.LoadImbalance(), 4.0);
}

TEST(ShardedDsmsTest, MoreShardsThanQueriesLeavesShardsEmpty) {
  const query::Workload workload = Testbed(5, 1500);
  const ShardedRunResult run = SimulateSharded(
      workload, Policy(sched::PolicyKind::kHnr), FullOptions(8));
  const RunResult classic = Simulate(workload, Policy(sched::PolicyKind::kHnr),
                                     FullOptions(1));
  int live = 0;
  for (const ShardRunStats& stats : run.shard_stats) {
    if (stats.num_queries > 0) {
      ++live;
    } else {
      EXPECT_EQ(stats.arrivals, 0);
      EXPECT_EQ(stats.busy_seconds, 0.0);
    }
  }
  EXPECT_LE(live, 5);
  EXPECT_GT(live, 0);
  EXPECT_EQ(run.result.qos.tuples_emitted, classic.qos.tuples_emitted);
}

TEST(ShardedDsmsTest, SharingGroupsSurviveSharding) {
  const query::Workload workload =
      Testbed(40, 3000, /*multi_stream=*/false, /*sharing_group_size=*/10);
  ASSERT_FALSE(workload.plan.sharing_groups().empty());
  const RunResult classic = Simulate(workload, Policy(sched::PolicyKind::kHnr),
                                     FullOptions(1));
  const ShardedRunResult run = SimulateSharded(
      workload, Policy(sched::PolicyKind::kHnr), FullOptions(4));
  // Groups co-locate, shared leaves still run once per tuple per group, and
  // the frozen shared-op draws key on stable group ids: emissions match.
  EXPECT_EQ(run.result.qos.tuples_emitted, classic.qos.tuples_emitted);
}

TEST(ShardedDsmsTest, MultiStreamJoinsSurviveSharding) {
  const query::Workload workload = Testbed(16, 3000, /*multi_stream=*/true);
  const RunResult classic = Simulate(workload, Policy(sched::PolicyKind::kHnr),
                                     FullOptions(1));
  const ShardedRunResult run = SimulateSharded(
      workload, Policy(sched::PolicyKind::kHnr), FullOptions(4));
  // Windowed joins evict state relative to the probing tuple's timestamp,
  // so match counts are schedule-dependent (true of any policy change too);
  // sharding must stay within a fraction of a percent of the global
  // schedule, and must be exactly repeatable.
  EXPECT_NEAR(static_cast<double>(run.result.qos.tuples_emitted),
              static_cast<double>(classic.qos.tuples_emitted),
              0.01 * static_cast<double>(classic.qos.tuples_emitted));
  std::string reference = RunResultToJson(run.result);
  const ShardedRunResult again = SimulateSharded(
      workload, Policy(sched::PolicyKind::kHnr), FullOptions(4));
  EXPECT_EQ(RunResultToJson(again.result), reference);
}

TEST(ShardedDsmsTest, ShardSeedSelectsThePlacement) {
  const query::Workload workload = Testbed(40, 2000);
  SimulationOptions options = FullOptions(4);
  options.shard_seed = 1;
  const ShardedRunResult a = SimulateSharded(
      workload, Policy(sched::PolicyKind::kHnr), options);
  options.shard_seed = 2;
  const ShardedRunResult b = SimulateSharded(
      workload, Policy(sched::PolicyKind::kHnr), options);
  EXPECT_NE(a.assignment.shard_of_query, b.assignment.shard_of_query);
  // Different placements are different schedules but the same emissions.
  EXPECT_EQ(a.result.qos.tuples_emitted, b.result.qos.tuples_emitted);
}

TEST(ShardedDsmsTest, SimulatePlanRoutesShardedOptions) {
  // Dsms::Simulate with options.shards > 1 transparently runs the sharded
  // runtime and returns the merged result.
  const query::Workload workload = Testbed(20, 2000);
  SimulationOptions options = FullOptions(4);
  const RunResult via_simulate =
      Simulate(workload, Policy(sched::PolicyKind::kHnr), options);
  const ShardedRunResult direct = SimulateSharded(
      workload, Policy(sched::PolicyKind::kHnr), options);
  EXPECT_EQ(RunResultToJson(via_simulate), RunResultToJson(direct.result));
}

}  // namespace
}  // namespace aqsios::core
