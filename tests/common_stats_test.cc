#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace aqsios {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_DOUBLE_EQ(stats.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.L2Norm(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Rms(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(3.0);
  EXPECT_EQ(stats.count(), 1);
  EXPECT_DOUBLE_EQ(stats.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 3.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 3.0);
  EXPECT_DOUBLE_EQ(stats.L2Norm(), 3.0);
  EXPECT_DOUBLE_EQ(stats.Rms(), 3.0);
}

TEST(RunningStatsTest, MeanMinMax) {
  RunningStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 4.0);
}

TEST(RunningStatsTest, L2NormIsPaperDefinition4) {
  // sqrt(sum of squares), unnormalized.
  RunningStats stats;
  stats.Add(3.0);
  stats.Add(4.0);
  EXPECT_DOUBLE_EQ(stats.L2Norm(), 5.0);
  EXPECT_DOUBLE_EQ(stats.Rms(), 5.0 / std::sqrt(2.0));
}

TEST(RunningStatsTest, L2PenalizesOutliersMoreThanMean) {
  // Two distributions with the same mean; the one with the outlier must
  // have the larger l2 norm.
  RunningStats even;
  for (int i = 0; i < 10; ++i) even.Add(10.0);
  RunningStats skewed;
  skewed.Add(91.0);
  for (int i = 0; i < 9; ++i) skewed.Add(1.0);
  EXPECT_DOUBLE_EQ(even.Mean(), skewed.Mean());
  EXPECT_GT(skewed.L2Norm(), even.L2Norm());
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  RunningStats a;
  RunningStats b;
  RunningStats combined;
  for (int i = 1; i <= 10; ++i) {
    const double v = i * 1.5;
    (i % 2 == 0 ? a : b).Add(v);
    combined.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.Mean(), combined.Mean());
  EXPECT_DOUBLE_EQ(a.Min(), combined.Min());
  EXPECT_DOUBLE_EQ(a.Max(), combined.Max());
  EXPECT_DOUBLE_EQ(a.L2Norm(), combined.L2Norm());
}

TEST(RunningStatsTest, MergeEmptyIsNoop) {
  RunningStats a;
  a.Add(2.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

TEST(RunningStatsTest, Variance) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_NEAR(stats.Variance(), 4.0, 1e-12);
}

TEST(LpNormTest, P1IsSum) {
  LpNorm norm(1.0);
  norm.Add(1.0);
  norm.Add(2.0);
  norm.Add(3.0);
  EXPECT_DOUBLE_EQ(norm.Value(), 6.0);
}

TEST(LpNormTest, P2MatchesRunningStats) {
  LpNorm norm(2.0);
  RunningStats stats;
  for (double v : {1.5, 2.5, 10.0, 0.25}) {
    norm.Add(v);
    stats.Add(v);
  }
  EXPECT_NEAR(norm.Value(), stats.L2Norm(), 1e-12);
}

TEST(LpNormTest, LargePApproachesMax) {
  LpNorm norm(64.0);
  for (double v : {1.0, 2.0, 9.0, 3.0}) norm.Add(v);
  EXPECT_NEAR(norm.Value(), 9.0, 0.3);
}

TEST(ReservoirSampleTest, ExactBelowCapacity) {
  ReservoirSample sample(100, /*seed=*/7);
  for (int i = 0; i <= 10; ++i) sample.Add(i);
  EXPECT_DOUBLE_EQ(sample.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sample.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(sample.Quantile(1.0), 10.0);
}

TEST(ReservoirSampleTest, EmptyQuantileIsZero) {
  ReservoirSample sample(16, 1);
  EXPECT_DOUBLE_EQ(sample.Quantile(0.5), 0.0);
}

TEST(ReservoirSampleTest, ApproximateQuantilesOnLargeStream) {
  ReservoirSample sample(2048, /*seed=*/99);
  for (int i = 0; i < 100000; ++i) sample.Add(i % 1000);
  EXPECT_NEAR(sample.Quantile(0.5), 500.0, 60.0);
  EXPECT_NEAR(sample.Quantile(0.9), 900.0, 60.0);
}

TEST(ReservoirSampleTest, CapacityBounded) {
  ReservoirSample sample(32, 3);
  for (int i = 0; i < 1000; ++i) sample.Add(i);
  EXPECT_EQ(sample.size(), 32u);
  EXPECT_EQ(sample.count(), 1000);
}

TEST(LogHistogramTest, BucketsAndOverflow) {
  LogHistogram hist(1.0, 10.0, 3);  // [1,10) [10,100) [100,1000) + overflow
  hist.Add(0.5);    // below min -> bucket 0
  hist.Add(5.0);    // bucket 0
  hist.Add(50.0);   // bucket 1
  hist.Add(500.0);  // bucket 2
  hist.Add(5000.0); // overflow -> last bucket
  EXPECT_EQ(hist.total(), 5);
  EXPECT_EQ(hist.bucket_count(0), 2);
  EXPECT_EQ(hist.bucket_count(1), 1);
  EXPECT_EQ(hist.bucket_count(2), 1);
  EXPECT_EQ(hist.bucket_count(3), 1);
}

TEST(LogHistogramTest, LowerEdges) {
  LogHistogram hist(2.0, 4.0, 4);
  EXPECT_NEAR(hist.BucketLowerEdge(0), 2.0, 1e-9);
  EXPECT_NEAR(hist.BucketLowerEdge(1), 8.0, 1e-9);
  EXPECT_NEAR(hist.BucketLowerEdge(2), 32.0, 1e-9);
}

}  // namespace
}  // namespace aqsios
