#include "core/experiment.h"

#include <gtest/gtest.h>

namespace aqsios::core {
namespace {

SweepConfig SmallSweep() {
  SweepConfig config;
  config.workload.num_queries = 8;
  config.workload.num_arrivals = 400;
  config.workload.seed = 17;
  config.utilizations = {0.4, 0.8};
  config.policies = {sched::PolicyConfig::Of(sched::PolicyKind::kHnr),
                     sched::PolicyConfig::Of(sched::PolicyKind::kHr)};
  return config;
}

TEST(ExperimentTest, RunsFullGrid) {
  const auto cells = RunSweep(SmallSweep());
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_DOUBLE_EQ(cells[0].utilization, 0.4);
  EXPECT_EQ(cells[0].policy, "HNR");
  EXPECT_EQ(cells[1].policy, "HR");
  EXPECT_DOUBLE_EQ(cells[2].utilization, 0.8);
  for (const SweepCell& cell : cells) {
    EXPECT_GT(cell.result.qos.tuples_emitted, 0);
  }
}

TEST(ExperimentTest, SamePopulationAcrossPoliciesOfAPoint) {
  const auto cells = RunSweep(SmallSweep());
  // Same utilization -> same workload -> identical emitted counts.
  EXPECT_EQ(cells[0].result.qos.tuples_emitted,
            cells[1].result.qos.tuples_emitted);
  EXPECT_EQ(cells[2].result.qos.tuples_emitted,
            cells[3].result.qos.tuples_emitted);
}

TEST(ExperimentTest, TableLayout) {
  const auto cells = RunSweep(SmallSweep());
  const Table table = SweepTable(cells, Metric::kAvgSlowdown);
  const std::string ascii = table.ToAscii();
  EXPECT_NE(ascii.find("HNR"), std::string::npos);
  EXPECT_NE(ascii.find("HR"), std::string::npos);
  EXPECT_NE(ascii.find("0.4"), std::string::npos);
  EXPECT_NE(ascii.find("0.8"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(ExperimentTest, MetricExtraction) {
  RunResult result;
  result.qos.avg_slowdown = 2.0;
  result.qos.avg_response = 0.004;
  result.qos.max_slowdown = 9.0;
  result.qos.l2_slowdown = 5.0;
  result.qos.rms_slowdown = 0.5;
  EXPECT_DOUBLE_EQ(GetMetric(result, Metric::kAvgSlowdown), 2.0);
  EXPECT_DOUBLE_EQ(GetMetric(result, Metric::kAvgResponseMs), 4.0);
  EXPECT_DOUBLE_EQ(GetMetric(result, Metric::kMaxSlowdown), 9.0);
  EXPECT_DOUBLE_EQ(GetMetric(result, Metric::kL2Slowdown), 5.0);
  EXPECT_DOUBLE_EQ(GetMetric(result, Metric::kRmsSlowdown), 0.5);
}

TEST(ExperimentTest, MetricNames) {
  EXPECT_STREQ(MetricName(Metric::kAvgSlowdown), "avg_slowdown");
  EXPECT_STREQ(MetricName(Metric::kAvgResponseMs), "avg_response_ms");
  EXPECT_STREQ(MetricName(Metric::kL2Slowdown), "l2_slowdown");
  EXPECT_STREQ(MetricName(Metric::kJainFairness), "jain_fairness");
  EXPECT_STREQ(MetricName(Metric::kPeakQueuedTuples), "peak_queued_tuples");
  EXPECT_STREQ(MetricName(Metric::kAvgQueuedTuples), "avg_queued_tuples");
}

TEST(ExperimentTest, MemoryAndFairnessMetricExtraction) {
  RunResult result;
  result.counters.peak_queued_tuples = 123;
  result.counters.avg_queued_tuples = 45.5;
  result.qos.per_query_slowdown[0].Add(2.0);
  result.qos.per_query_slowdown[1].Add(2.0);
  EXPECT_DOUBLE_EQ(GetMetric(result, Metric::kPeakQueuedTuples), 123.0);
  EXPECT_DOUBLE_EQ(GetMetric(result, Metric::kAvgQueuedTuples), 45.5);
  EXPECT_NEAR(GetMetric(result, Metric::kJainFairness), 1.0, 1e-12);
}

// The tentpole guarantee of the parallel harness: dispatching cells across a
// pool is bit-for-bit identical to the serial path — every Metric value and
// every RunCounters field, for every cell of the grid.
TEST(ExperimentTest, ParallelSweepMatchesSerialBitForBit) {
  SweepConfig config = SmallSweep();
  config.utilizations = {0.4, 0.7, 0.9};
  config.policies = {sched::PolicyConfig::Of(sched::PolicyKind::kHnr),
                     sched::PolicyConfig::Of(sched::PolicyKind::kBsd)};
  config.options.qos.track_per_query = true;
  config.options.attribution_sample_every = 8;

  config.threads = 1;
  const auto serial = RunSweep(config);
  config.threads = 4;
  const auto parallel = RunSweep(config);

  ASSERT_EQ(serial.size(), 6u);
  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    const SweepCell& a = serial[i];
    const SweepCell& b = parallel[i];
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.utilization, b.utilization);
    for (Metric metric :
         {Metric::kAvgSlowdown, Metric::kAvgResponseMs, Metric::kMaxSlowdown,
          Metric::kL2Slowdown, Metric::kRmsSlowdown, Metric::kJainFairness,
          Metric::kPeakQueuedTuples, Metric::kAvgQueuedTuples}) {
      SCOPED_TRACE(MetricName(metric));
      EXPECT_EQ(GetMetric(a.result, metric), GetMetric(b.result, metric));
    }
    const exec::RunCounters& ca = a.result.counters;
    const exec::RunCounters& cb = b.result.counters;
    EXPECT_EQ(ca.scheduling_points, cb.scheduling_points);
    EXPECT_EQ(ca.unit_executions, cb.unit_executions);
    EXPECT_EQ(ca.operator_invocations, cb.operator_invocations);
    EXPECT_EQ(ca.tuples_emitted, cb.tuples_emitted);
    EXPECT_EQ(ca.tuples_filtered, cb.tuples_filtered);
    EXPECT_EQ(ca.composites_generated, cb.composites_generated);
    EXPECT_EQ(ca.overhead_operations, cb.overhead_operations);
    EXPECT_EQ(ca.adaptation_ticks, cb.adaptation_ticks);
    EXPECT_EQ(ca.busy_time, cb.busy_time);
    EXPECT_EQ(ca.overhead_time, cb.overhead_time);
    EXPECT_EQ(ca.end_time, cb.end_time);
    EXPECT_EQ(ca.peak_queued_tuples, cb.peak_queued_tuples);
    EXPECT_EQ(ca.avg_queued_tuples, cb.avg_queued_tuples);
    // Observability additions must be just as deterministic: decision
    // shape, histogram summaries, quantiles, and attribution.
    EXPECT_EQ(ca.decision_candidates, cb.decision_candidates);
    EXPECT_EQ(ca.priority_computations, cb.priority_computations);
    EXPECT_EQ(ca.queue_length.count, cb.queue_length.count);
    EXPECT_EQ(ca.queue_length.p50, cb.queue_length.p50);
    EXPECT_EQ(ca.queue_length.p99, cb.queue_length.p99);
    EXPECT_EQ(ca.exec_busy.mean, cb.exec_busy.mean);
    EXPECT_EQ(ca.exec_busy.p95, cb.exec_busy.p95);
    EXPECT_EQ(a.result.qos.p50_slowdown, b.result.qos.p50_slowdown);
    EXPECT_EQ(a.result.qos.p95_slowdown, b.result.qos.p95_slowdown);
    EXPECT_EQ(a.result.qos.p99_slowdown, b.result.qos.p99_slowdown);
    EXPECT_EQ(a.result.qos.p999_slowdown, b.result.qos.p999_slowdown);
    EXPECT_GT(ca.attribution.samples(), 0);
    EXPECT_EQ(ca.attribution.samples(), cb.attribution.samples());
    EXPECT_EQ(ca.attribution.queue_wait.sum(), cb.attribution.queue_wait.sum());
    EXPECT_EQ(ca.attribution.processing.sum(), cb.attribution.processing.sum());
  }
}

TEST(ExperimentTest, SweepCellsCarryWallClock) {
  SweepConfig config = SmallSweep();
  config.threads = 2;
  for (const SweepCell& cell : RunSweep(config)) {
    EXPECT_GT(cell.wall_ms, 0.0);
  }
}

TEST(ExperimentTest, HigherLoadHigherSlowdown) {
  SweepConfig config = SmallSweep();
  config.utilizations = {0.3, 0.95};
  config.policies = {sched::PolicyConfig::Of(sched::PolicyKind::kHnr)};
  config.workload.num_arrivals = 2000;
  const auto cells = RunSweep(config);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_LT(cells[0].result.qos.avg_slowdown,
            cells[1].result.qos.avg_slowdown);
}

}  // namespace
}  // namespace aqsios::core
