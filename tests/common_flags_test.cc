#include "common/flags.h"

#include <gtest/gtest.h>

namespace aqsios {
namespace {

TEST(FlagSetTest, ParsesEqualsSyntax) {
  FlagSet flags("test");
  int queries = 10;
  double util = 0.5;
  std::string policy = "hnr";
  bool verbose = false;
  flags.AddInt("queries", &queries, "n");
  flags.AddDouble("util", &util, "u");
  flags.AddString("policy", &policy, "p");
  flags.AddBool("verbose", &verbose, "v");

  const char* argv[] = {"test", "--queries=25", "--util=0.9",
                        "--policy=bsd", "--verbose=true"};
  ASSERT_TRUE(flags.Parse(5, argv).ok());
  EXPECT_EQ(queries, 25);
  EXPECT_DOUBLE_EQ(util, 0.9);
  EXPECT_EQ(policy, "bsd");
  EXPECT_TRUE(verbose);
}

TEST(FlagSetTest, ParsesSpaceSyntax) {
  FlagSet flags("test");
  int64_t arrivals = 0;
  flags.AddInt("arrivals", &arrivals, "n");
  const char* argv[] = {"test", "--arrivals", "12345"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_EQ(arrivals, 12345);
}

TEST(FlagSetTest, BareBoolAndNegatedBool) {
  FlagSet flags("test");
  bool a = false;
  bool b = true;
  flags.AddBool("alpha", &a, "");
  flags.AddBool("beta", &b, "");
  const char* argv[] = {"test", "--alpha", "--nobeta"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
}

TEST(FlagSetTest, UnknownFlagFails) {
  FlagSet flags("test");
  const char* argv[] = {"test", "--nope=1"};
  const Status status = flags.Parse(2, argv);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FlagSetTest, BadValueFails) {
  FlagSet flags("test");
  int n = 0;
  flags.AddInt("n", &n, "");
  const char* argv[] = {"test", "--n=abc"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagSetTest, MissingValueFails) {
  FlagSet flags("test");
  int n = 0;
  flags.AddInt("n", &n, "");
  const char* argv[] = {"test", "--n"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagSetTest, PositionalArgumentsCollected) {
  FlagSet flags("test");
  const char* argv[] = {"test", "one", "two"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "one");
  EXPECT_EQ(flags.positional()[1], "two");
}

TEST(FlagSetTest, HelpRequested) {
  FlagSet flags("test");
  const char* argv[] = {"test", "--help"};
  const Status status = flags.Parse(2, argv);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(flags.help_requested());
}

TEST(FlagSetTest, UsageListsFlags) {
  FlagSet flags("prog");
  int n = 7;
  flags.AddInt("queries", &n, "number of queries");
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--queries=7"), std::string::npos);
  EXPECT_NE(usage.find("number of queries"), std::string::npos);
}

}  // namespace
}  // namespace aqsios
