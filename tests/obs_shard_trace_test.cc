#include "obs/shard_trace.h"

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "obs/chrome_trace.h"
#include "obs/event.h"
#include "obs/tracer.h"

namespace aqsios::obs {
namespace {

TraceEvent At(EventKind kind, SimTime time, int32_t query = -1,
              int64_t a = 0) {
  TraceEvent event;
  event.kind = kind;
  event.time = time;
  event.query = query;
  event.a = a;
  return event;
}

// Golden ordering contract (mirrors the header comment): sorted by virtual
// time; equal timestamps keep shard order; same-shard events keep their
// record order.
TEST(MergeShardTracesTest, GoldenOrdering) {
  EventTracer shard0;
  EventTracer shard1;
  shard0.Record(At(EventKind::kEnqueue, 1.0, /*query=*/0, /*a=*/100));
  shard0.Record(At(EventKind::kEmit, 3.0, 0, 100));
  shard0.Record(At(EventKind::kEmit, 3.0, 0, 101));  // same-time pair
  shard1.Record(At(EventKind::kEnqueue, 0.5, 0, 200));
  shard1.Record(At(EventKind::kEmit, 3.0, 0, 200));  // ties with shard0's
  shard1.Record(At(EventKind::kEmit, 9.0, 0, 201));

  const std::vector<int32_t> map0 = {2};  // shard0-local q0 = global q2
  const std::vector<int32_t> map1 = {5};
  const std::vector<TraceEvent> merged =
      MergeShardTraces({{&shard0, &map0}, {&shard1, &map1}});

  ASSERT_EQ(merged.size(), 6u);
  // (time, shard, a) in the contract's order.
  const std::vector<std::tuple<SimTime, int16_t, int64_t>> want = {
      {0.5, 1, 200}, {1.0, 0, 100}, {3.0, 0, 100},
      {3.0, 0, 101}, {3.0, 1, 200}, {9.0, 1, 201},
  };
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(merged[i].time, std::get<0>(want[i])) << "event " << i;
    EXPECT_EQ(merged[i].shard, std::get<1>(want[i])) << "event " << i;
    EXPECT_EQ(merged[i].a, std::get<2>(want[i])) << "event " << i;
  }
  // Query ids were translated to the global space.
  EXPECT_EQ(merged[1].query, 2);
  EXPECT_EQ(merged[0].query, 5);
}

TEST(MergeShardTracesTest, MergeIsPureFunctionOfInputs) {
  EventTracer shard0;
  EventTracer shard1;
  for (int i = 0; i < 50; ++i) {
    shard0.Record(At(EventKind::kEmit, 0.25 * (i % 7), 0, i));
    shard1.Record(At(EventKind::kEmit, 0.25 * (i % 5), 0, 1000 + i));
  }
  const std::vector<int32_t> map0 = {0};
  const std::vector<int32_t> map1 = {1};
  const std::vector<TraceEvent> once =
      MergeShardTraces({{&shard0, &map0}, {&shard1, &map1}});
  const std::vector<TraceEvent> twice =
      MergeShardTraces({{&shard0, &map0}, {&shard1, &map1}});
  ASSERT_EQ(once.size(), twice.size());
  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once[i].time, twice[i].time);
    EXPECT_EQ(once[i].shard, twice[i].shard);
    EXPECT_EQ(once[i].a, twice[i].a);
  }
}

TEST(MergeShardTracesTest, NonQueryEventsAndIdentityMapPassThrough) {
  EventTracer shard0;
  // query = -1 (scheduler/arrival events) must not be remapped.
  shard0.Record(At(EventKind::kSchedDecision, 1.0, /*query=*/-1, /*a=*/3));
  shard0.Record(At(EventKind::kTupleArrival, 2.0, -1, 7));
  const std::vector<TraceEvent> merged =
      MergeShardTraces({{&shard0, nullptr}});  // nullptr map = identity
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].query, -1);
  EXPECT_EQ(merged[1].query, -1);
  EXPECT_EQ(merged[0].shard, 0);
}

// Chrome export of a merged trace: per-shard scheduler/arrival lanes with
// stable names, query lanes offset past the shard lanes, shard recorded in
// the event args.
TEST(ShardChromeTraceTest, ShardLaneLayout) {
  EventTracer shard0;
  EventTracer shard1;
  shard0.Record(At(EventKind::kSchedDecision, 1.0, -1, 1));
  shard0.Record(At(EventKind::kEmit, 2.0, /*query=*/0, 10));
  shard1.Record(At(EventKind::kTupleArrival, 1.5, -1, 20));
  const std::vector<int32_t> map0 = {3};
  const std::vector<int32_t> map1 = {1};
  ChromeTraceMeta meta;
  meta.num_queries = 4;
  meta.num_shards = 2;
  meta.policy = "hnr";
  const std::string json = ChromeTraceJson(
      MergeShardTraces({{&shard0, &map0}, {&shard1, &map1}}), meta);

  // Stable shard lanes: shard s scheduler at tid 2s, arrivals at 2s+1.
  EXPECT_NE(json.find("\"shard0 scheduler (hnr)\""), std::string::npos);
  EXPECT_NE(json.find("\"shard0 arrivals\""), std::string::npos);
  EXPECT_NE(json.find("\"shard1 scheduler (hnr)\""), std::string::npos);
  EXPECT_NE(json.find("\"shard1 arrivals\""), std::string::npos);
  // Query lanes start at tid 2 * num_shards = 4; global q3 sits at tid 7.
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
  // Events carry their shard in args.
  EXPECT_NE(json.find("\"shard\":1"), std::string::npos);
}

TEST(ShardChromeTraceTest, SingleShardKeepsClassicLayout) {
  EventTracer tracer;
  tracer.Record(At(EventKind::kSchedDecision, 1.0, -1, 1));
  ChromeTraceMeta meta;
  meta.num_queries = 1;
  meta.num_shards = 1;
  const std::string via_merge =
      ChromeTraceJson(MergeShardTraces({{&tracer, nullptr}}), meta);
  const std::string classic = ChromeTraceJson(tracer.Events(), meta);
  // One shard => the merge is a pass-through and the classic lane layout
  // (tid 0 scheduler, no shard args) is preserved byte-for-byte.
  EXPECT_EQ(via_merge, classic);
  EXPECT_EQ(classic.find("shard"), std::string::npos);
}

}  // namespace
}  // namespace aqsios::obs
