// End-to-end reproduction of Example 1 / Table 1 of the paper.
//
// Two single-operator queries: Q1 (cost 5 ms, selectivity 1.0) and Q2
// (cost 2 ms, selectivity 0.33). Three tuples arrive at time 0; exactly the
// middle one satisfies Q2's predicate. The paper reports:
//
//              avg response (ms)   avg slowdown
//      HR          12.25               3.875
//      HNR         13.0                2.9

#include <gtest/gtest.h>

#include "core/dsms.h"

namespace aqsios::core {
namespace {

stream::ArrivalTable ThreeTuplesAtZero() {
  stream::ArrivalTable table;
  // Attributes chosen so that only the middle tuple passes a selectivity
  // 0.33 predicate (attribute <= 33) while all pass selectivity 1.0.
  const double attributes[] = {50.0, 20.0, 90.0};
  for (int i = 0; i < 3; ++i) {
    stream::Arrival a;
    a.id = i;
    a.stream = 0;
    a.time = 0.0;
    a.attribute = attributes[i];
    table.arrivals.push_back(a);
  }
  return table;
}

Dsms Example1Dsms() {
  Dsms dsms(query::SelectivityMode::kCorrelatedAttribute);
  query::QuerySpec q1;
  q1.left_stream = 0;
  q1.left_ops = {query::MakeSelect(5.0, 1.0)};
  dsms.AddQuery(q1);
  query::QuerySpec q2;
  q2.left_stream = 0;
  q2.left_ops = {query::MakeSelect(2.0, 0.33)};
  dsms.AddQuery(q2);
  dsms.SetArrivals(ThreeTuplesAtZero());
  return dsms;
}

TEST(Example1Test, HrMatchesTable1) {
  const Dsms dsms = Example1Dsms();
  const RunResult r =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kHr));
  EXPECT_EQ(r.policy_name, "HR");
  EXPECT_EQ(r.qos.tuples_emitted, 4);
  EXPECT_NEAR(SimTimeToMillis(r.qos.avg_response), 12.25, 1e-9);
  EXPECT_NEAR(r.qos.avg_slowdown, 3.875, 1e-9);
  // The single Q2 tuple suffers slowdown 19/2 = 9.5 under HR.
  EXPECT_NEAR(r.qos.max_slowdown, 9.5, 1e-9);
}

TEST(Example1Test, HnrMatchesTable1) {
  const Dsms dsms = Example1Dsms();
  const RunResult r =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kHnr));
  EXPECT_EQ(r.policy_name, "HNR");
  EXPECT_EQ(r.qos.tuples_emitted, 4);
  EXPECT_NEAR(SimTimeToMillis(r.qos.avg_response), 13.0, 1e-9);
  EXPECT_NEAR(r.qos.avg_slowdown, 2.9, 1e-9);
  // Q2's tuple now sees slowdown 4/2 = 2; the worst is Q1's last (21/5).
  EXPECT_NEAR(r.qos.max_slowdown, 4.2, 1e-9);
}

TEST(Example1Test, HnrTradesResponseForSlowdown) {
  // The structural claim of §3.4: HNR's slowdown is lower, HR's response
  // time is lower.
  const Dsms dsms = Example1Dsms();
  const RunResult hr =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kHr));
  const RunResult hnr =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kHnr));
  EXPECT_LT(hnr.qos.avg_slowdown, hr.qos.avg_slowdown);
  EXPECT_LT(hr.qos.avg_response, hnr.qos.avg_response);
}

TEST(Example1Test, FilteredTuplesDoNotCount) {
  const Dsms dsms = Example1Dsms();
  const RunResult r =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kHr));
  // 6 processed (3 per query), 2 filtered by Q2 -> 4 emitted.
  EXPECT_EQ(r.counters.tuples_filtered, 2);
  EXPECT_EQ(r.counters.tuples_emitted, 4);
  EXPECT_EQ(r.counters.unit_executions, 6);
  // Busy time: 3·5 + 3·2 = 21 ms.
  EXPECT_NEAR(SimTimeToMillis(r.counters.busy_time), 21.0, 1e-9);
  EXPECT_NEAR(SimTimeToMillis(r.counters.end_time), 21.0, 1e-9);
}

TEST(Example1Test, SrptOrdersByIdealProcessingTime) {
  // SRPT runs Q2 (T=2ms) before Q1 (T=5ms) -> same schedule as HNR here.
  const Dsms dsms = Example1Dsms();
  const RunResult r =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kSrpt));
  EXPECT_NEAR(SimTimeToMillis(r.qos.avg_response), 13.0, 1e-9);
  EXPECT_NEAR(r.qos.avg_slowdown, 2.9, 1e-9);
}

}  // namespace
}  // namespace aqsios::core
