// Online cost/selectivity calibration (sched/calibration.h,
// docs/calibration.md): estimator convergence and decay, the min-weight and
// hysteresis guards, byte-identity of every report when calibration is off,
// determinism of calibrated drift runs, equivalence of the kinetic targeted
// re-keys with the naive live-scan re-derivation, and the no-full-rebuild
// pin (KineticIndex::clears() stays 0 on the calibration path).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dsms.h"
#include "core/report.h"
#include "exec/engine.h"
#include "metrics/qos.h"
#include "query/workload.h"
#include "sched/basic_policies.h"
#include "sched/calibration.h"
#include "sched/policy.h"
#include "sched/scheduler.h"
#include "sched/unit.h"
#include "stream/drift.h"

namespace aqsios::sched {
namespace {

constexpr PolicyKind kAllPolicies[] = {
    PolicyKind::kFcfs,        PolicyKind::kRoundRobin,
    PolicyKind::kSrpt,        PolicyKind::kHr,
    PolicyKind::kHnr,         PolicyKind::kLsf,
    PolicyKind::kBsd,         PolicyKind::kBsdClustered,
    PolicyKind::kChain,       PolicyKind::kTwoLevelRr,
    PolicyKind::kLpNorm,      PolicyKind::kQosGraph,
};

/// Minimal scheduler stub recording what the calibrator hands it.
class RecordingScheduler : public Scheduler {
 public:
  void Attach(const UnitTable* units) override { units_ = units; }
  void OnEnqueue(int) override {}
  void OnDequeue(int) override {}
  bool PickNext(SimTime, SchedulingCost*, std::vector<int>*) override {
    return false;
  }
  const char* name() const override { return "recording"; }
  void ResyncQueues(SimTime) override {}
  void OnCalibratedStats(const std::vector<int>& changed, SimTime) override {
    ++calls;
    last_changed = changed;
  }

  int calls = 0;
  std::vector<int> last_changed;

 private:
  const UnitTable* units_ = nullptr;
};

Unit MakeUnit(int id, SimTime cost, double selectivity, SimTime ideal_time) {
  Unit unit;
  unit.id = id;
  unit.stats.expected_cost = cost;
  unit.stats.selectivity = selectivity;
  unit.stats.ideal_time = ideal_time;
  RederiveUnitStats(&unit.stats);
  return unit;
}

TEST(CostCalibratorTest, ConvergesToObservedRatiosAndRescalesIdealTime) {
  UnitTable units;
  units.push_back(MakeUnit(0, /*cost=*/0.001, /*selectivity=*/0.5,
                           /*ideal_time=*/0.002));
  // Give the unit pending work so its rewrite counts as a re-key.
  units[0].queue.push_back(QueueEntry{0, 0.0});
  RecordingScheduler scheduler;
  scheduler.Attach(&units);
  CalibrationConfig config;
  config.enabled = true;
  config.period = 1.0;
  CostCalibrator calibrator(config, &units, &scheduler);

  // The unit actually runs at twice the assumed cost and 0.8 selectivity.
  calibrator.OnDispatch(0, /*tuples=*/100, /*busy=*/100 * 0.002,
                        /*emitted=*/80);
  EXPECT_FALSE(calibrator.MaybeCalibrate(0.5));  // before the epoch
  EXPECT_TRUE(calibrator.MaybeCalibrate(1.0));

  EXPECT_DOUBLE_EQ(calibrator.EstimatedCost(0), 0.002);
  EXPECT_DOUBLE_EQ(calibrator.EstimatedSelectivity(0), 0.8);
  EXPECT_DOUBLE_EQ(units[0].stats.expected_cost, 0.002);
  EXPECT_DOUBLE_EQ(units[0].stats.selectivity, 0.8);
  // The whole segment drifted by one factor: T scales with the cost.
  EXPECT_DOUBLE_EQ(units[0].stats.ideal_time, 0.004);
  // Derived priorities re-derived from the calibrated inputs.
  EXPECT_DOUBLE_EQ(units[0].stats.output_rate, 0.8 / 0.002);
  EXPECT_EQ(scheduler.calls, 1);
  EXPECT_EQ(scheduler.last_changed, std::vector<int>{0});
  EXPECT_EQ(calibrator.updates(), 1);
  EXPECT_EQ(calibrator.rekeys(), 1);
  EXPECT_GT(calibrator.MeanAbsCostDrift(), 0.9);

  // Steady state: the same regime observed again moves nothing (hysteresis).
  calibrator.OnDispatch(0, 100, 100 * 0.002, 80);
  EXPECT_TRUE(calibrator.MaybeCalibrate(2.0));
  EXPECT_EQ(calibrator.updates(), 1);
  EXPECT_EQ(scheduler.calls, 1);
}

TEST(CostCalibratorTest, DecayForgetsTheOldRegime) {
  UnitTable units;
  units.push_back(MakeUnit(0, 0.001, 0.5, 0.002));
  RecordingScheduler scheduler;
  scheduler.Attach(&units);
  CalibrationConfig config;
  config.enabled = true;
  config.period = 1.0;
  config.decay = 0.5;
  CostCalibrator calibrator(config, &units, &scheduler);

  // One epoch of the old regime (cost 0.001), then several of the new
  // (cost 0.005): the exponentially-decayed estimate must approach the new
  // regime geometrically.
  calibrator.OnDispatch(0, 100, 100 * 0.001, 50);
  ASSERT_TRUE(calibrator.MaybeCalibrate(1.0));
  double previous_gap = 0.005 - calibrator.EstimatedCost(0);
  for (int epoch = 2; epoch <= 6; ++epoch) {
    calibrator.OnDispatch(0, 100, 100 * 0.005, 50);
    ASSERT_TRUE(calibrator.MaybeCalibrate(static_cast<SimTime>(epoch)));
    const double gap = 0.005 - calibrator.EstimatedCost(0);
    EXPECT_LT(gap, previous_gap) << "epoch " << epoch;
    previous_gap = gap;
  }
  EXPECT_NEAR(calibrator.EstimatedCost(0), 0.005, 2e-4);
}

TEST(CostCalibratorTest, MinWeightGuardTrustsNothingThin) {
  UnitTable units;
  units.push_back(MakeUnit(0, 0.001, 0.5, 0.002));
  RecordingScheduler scheduler;
  scheduler.Attach(&units);
  CalibrationConfig config;
  config.enabled = true;
  config.period = 1.0;
  config.min_weight = 8.0;
  CostCalibrator calibrator(config, &units, &scheduler);

  // 7 tuples of wildly different cost: below min_weight, ignored.
  calibrator.OnDispatch(0, 7, 7 * 0.010, 7);
  EXPECT_TRUE(calibrator.MaybeCalibrate(1.0));
  EXPECT_EQ(calibrator.updates(), 0);
  EXPECT_EQ(scheduler.calls, 0);
  EXPECT_DOUBLE_EQ(calibrator.EstimatedCost(0), 0.001);
  EXPECT_DOUBLE_EQ(units[0].stats.expected_cost, 0.001);
}

// ---------------------------------------------------------------------------
// Engine integration.

query::Workload TestbedWorkload(int queries = 24, int64_t arrivals = 3000,
                                double utilization = 0.4) {
  query::WorkloadConfig config;
  config.num_queries = queries;
  config.num_arrivals = arrivals;
  config.utilization = utilization;
  config.seed = 42;
  return query::GenerateWorkload(config);
}

core::SimulationOptions DriftOptions(const query::Workload& workload) {
  const SimTime span = workload.arrivals.arrivals.back().time;
  core::SimulationOptions options;
  options.drift.enabled = true;
  options.drift.modulo = 2;
  options.drift.cost_factor = 4.0;
  options.drift.selectivity_factor = 0.7;
  options.drift.step_time = 0.3 * span;
  options.drift.ramp_seconds = 0.1 * span;
  options.calibration.enabled = true;
  options.calibration.period = span / 50.0;
  return options;
}

TEST(CalibrationOffTest, DisabledCalibrationIsByteIdenticalAcrossAllPolicies) {
  // The calibration and drift wiring must be invisible until enabled: for
  // every policy, a run with explicit (disabled) configs carrying exotic
  // knob values serializes byte-for-byte like a plain default run, and no
  // calibration keys appear anywhere in the JSON.
  const query::Workload workload = TestbedWorkload(20, 1500, 0.9);
  for (const PolicyKind kind : kAllPolicies) {
    const PolicyConfig policy = PolicyConfig::Of(kind);
    const core::RunResult plain =
        core::Simulate(workload, policy, core::SimulationOptions{});
    core::SimulationOptions options;
    options.calibration.enabled = false;
    options.calibration.period = 0.001;     // must be ignored while disabled
    options.calibration.rel_epsilon = 0.0;  // must be ignored while disabled
    options.drift.enabled = false;
    options.drift.cost_factor = 9.0;        // must be ignored while disabled
    options.drift.step_time = 0.0;          // must be ignored while disabled
    const core::RunResult configured =
        core::Simulate(workload, policy, options);
    const std::string plain_json = core::RunResultToJson(plain);
    EXPECT_EQ(plain_json, core::RunResultToJson(configured))
        << "policy " << PolicyKindName(kind);
    EXPECT_EQ(plain_json.find("calibration"), std::string::npos)
        << "policy " << PolicyKindName(kind);
    EXPECT_EQ(plain.counters.calibration_epochs, 0);
    EXPECT_EQ(plain.counters.calibration_rekeys, 0);
  }
}

TEST(CalibrationDriftTest, CalibratedDriftRunsAreDeterministic) {
  const query::Workload workload = TestbedWorkload();
  const core::SimulationOptions options = DriftOptions(workload);
  for (const PolicyKind kind : {PolicyKind::kLsf, PolicyKind::kBsd}) {
    const PolicyConfig policy = PolicyConfig::Of(kind);
    const core::RunResult first = core::Simulate(workload, policy, options);
    const core::RunResult second = core::Simulate(workload, policy, options);
    EXPECT_EQ(core::RunResultToJson(first), core::RunResultToJson(second))
        << "policy " << PolicyKindName(kind);
    EXPECT_GT(first.counters.calibration_epochs, 0)
        << "policy " << PolicyKindName(kind);
    EXPECT_GT(first.counters.calibration_rekeys, 0)
        << "policy " << PolicyKindName(kind);
  }
}

TEST(CalibrationDriftTest, ShardedCalibratedDriftRunsAreDeterministic) {
  // The sharded runner translates the drift membership from global query
  // ids to each shard's local dense ids; the merged result must still be
  // bit-reproducible run over run.
  const query::Workload workload = TestbedWorkload();
  core::SimulationOptions options = DriftOptions(workload);
  options.shards = 2;
  const PolicyConfig policy = PolicyConfig::Of(PolicyKind::kLsf);
  const core::RunResult first = core::Simulate(workload, policy, options);
  const core::RunResult second = core::Simulate(workload, policy, options);
  EXPECT_EQ(core::RunResultToJson(first), core::RunResultToJson(second));
  EXPECT_GT(first.counters.calibration_rekeys, 0);
}

TEST(CalibrationDriftTest, TargetedRekeysMatchFullRederivationOracle) {
  // The kinetic policies re-key only the changed units through the index's
  // dirty-marking; the non-kinetic scan recomputes every priority from the
  // (calibrated) stats live at each pick. Byte-identical reports prove the
  // targeted O(log n) path equals the full re-derivation oracle.
  const query::Workload workload = TestbedWorkload();
  const core::SimulationOptions options = DriftOptions(workload);
  for (const PolicyKind kind : {PolicyKind::kLsf, PolicyKind::kBsd}) {
    PolicyConfig kinetic = PolicyConfig::Of(kind);
    kinetic.use_kinetic_index = true;
    PolicyConfig scan = PolicyConfig::Of(kind);
    scan.use_kinetic_index = false;
    const core::RunResult a = core::Simulate(workload, kinetic, options);
    const core::RunResult b = core::Simulate(workload, scan, options);
    EXPECT_EQ(core::RunResultToJson(a), core::RunResultToJson(b))
        << "policy " << PolicyKindName(kind);
    EXPECT_GT(a.counters.calibration_rekeys, 0)
        << "policy " << PolicyKindName(kind);
  }
}

TEST(CalibrationDriftTest, CalibrationNeverClearsTheKineticIndex) {
  // The no-full-rebuild pin: a calibrated drift run re-keys thousands of
  // priority lines, yet the kinetic index is never cleared — every rewrite
  // goes through per-unit dirty-marking.
  const query::Workload workload = TestbedWorkload();
  const core::SimulationOptions sim_options = DriftOptions(workload);
  {
    exec::EngineConfig config;
    config.drift = sim_options.drift;
    config.calibration = sim_options.calibration;
    LsfScheduler lsf(/*use_kinetic_index=*/true);
    metrics::QosCollector collector((metrics::QosCollector::Options()));
    exec::Engine engine(&workload.plan, &workload.arrivals, config, &lsf,
                        &collector);
    const exec::RunCounters counters = engine.Run();
    EXPECT_GT(counters.calibration_rekeys, 0);
    EXPECT_EQ(lsf.index().clears(), 0);
  }
  {
    exec::EngineConfig config;
    config.drift = sim_options.drift;
    config.calibration = sim_options.calibration;
    BsdScheduler bsd(/*count_all_units=*/true, /*use_kinetic_index=*/true);
    metrics::QosCollector collector((metrics::QosCollector::Options()));
    exec::Engine engine(&workload.plan, &workload.arrivals, config, &bsd,
                        &collector);
    const exec::RunCounters counters = engine.Run();
    EXPECT_GT(counters.calibration_rekeys, 0);
    EXPECT_EQ(bsd.index().clears(), 0);
  }
}

}  // namespace
}  // namespace aqsios::sched
