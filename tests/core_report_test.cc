#include "core/report.h"

#include <gtest/gtest.h>

namespace aqsios::core {
namespace {

TEST(JsonWriterTest, FlatObject) {
  JsonWriter json;
  json.BeginObject();
  json.Key("policy");
  json.String("BSD");
  json.Key("avg");
  json.Number(2.9);
  json.Key("count");
  json.Number(static_cast<int64_t>(42));
  json.Key("ok");
  json.Bool(true);
  json.EndObject();
  EXPECT_EQ(json.str(), "{\"policy\":\"BSD\",\"avg\":2.9,\"count\":42,"
                        "\"ok\":true}");
}

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter json;
  json.BeginObject();
  json.Key("values");
  json.BeginArray();
  json.Number(static_cast<int64_t>(1));
  json.Number(static_cast<int64_t>(2));
  json.BeginObject();
  json.Key("x");
  json.Number(3.5);
  json.EndObject();
  json.EndArray();
  json.Key("empty");
  json.BeginArray();
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(json.str(), "{\"values\":[1,2,{\"x\":3.5}],\"empty\":[]}");
}

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonWriter::Escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.BeginArray();
  json.Number(std::numeric_limits<double>::infinity());
  json.Number(std::numeric_limits<double>::quiet_NaN());
  json.EndArray();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(ReportTest, RunResultRoundTripContainsMetrics) {
  RunResult result;
  result.policy_name = "HNR";
  result.qos.tuples_emitted = 10;
  result.qos.avg_slowdown = 2.5;
  result.qos.avg_response = 0.004;
  result.counters.busy_time = 1.5;
  result.counters.peak_queued_tuples = 7;
  const std::string json = RunResultToJson(result);
  EXPECT_NE(json.find("\"policy\":\"HNR\""), std::string::npos);
  EXPECT_NE(json.find("\"avg_slowdown\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"avg_response_ms\":4"), std::string::npos);
  EXPECT_NE(json.find("\"busy_seconds\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"peak_queued_tuples\":7"), std::string::npos);
  // Balanced braces.
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ReportTest, PerClassAndFairnessSections) {
  RunResult result;
  result.policy_name = "BSD";
  result.qos.per_class_slowdown[metrics::MakeClassKey(0, 0.5)].Add(2.0);
  result.qos.per_query_slowdown[3].Add(4.0);
  const std::string json = RunResultToJson(result);
  EXPECT_NE(json.find("\"per_class_avg_slowdown\""), std::string::npos);
  EXPECT_NE(json.find("\"cost_class\":0"), std::string::npos);
  EXPECT_NE(json.find("\"selectivity_decile\":5"), std::string::npos);
  EXPECT_NE(json.find("\"jain_fairness\":1"), std::string::npos);
}

TEST(ReportTest, SweepToJsonIsArrayOfCells) {
  std::vector<SweepCell> cells(2);
  cells[0].utilization = 0.5;
  cells[0].policy = "HNR";
  cells[0].result.qos.avg_slowdown = 1.5;
  cells[1].utilization = 0.9;
  cells[1].policy = "BSD";
  cells[1].result.qos.avg_slowdown = 2.5;
  const std::string json = SweepToJson(cells);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"utilization\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"policy\":\"BSD\""), std::string::npos);
}

TEST(ReportTest, EndToEndFromSimulation) {
  query::WorkloadConfig config;
  config.num_queries = 5;
  config.num_arrivals = 200;
  config.seed = 2;
  const query::Workload workload = query::GenerateWorkload(config);
  const RunResult result =
      Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kBsd));
  const std::string json = RunResultToJson(result);
  EXPECT_NE(json.find("\"policy\":\"BSD\""), std::string::npos);
  EXPECT_NE(json.find("\"measured_utilization\""), std::string::npos);
}

TEST(ReportTest, QosCarriesHistogramQuantiles) {
  RunResult result;
  result.qos.p50_slowdown = 1.5;
  result.qos.p95_slowdown = 3.25;
  result.qos.p99_slowdown = 6.5;
  result.qos.p999_slowdown = 9.75;
  const std::string json = RunResultToJson(result);
  EXPECT_NE(json.find("\"p50_slowdown\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"p95_slowdown\":3.25"), std::string::npos);
  EXPECT_NE(json.find("\"p99_slowdown\":6.5"), std::string::npos);
  EXPECT_NE(json.find("\"p999_slowdown\":9.75"), std::string::npos);
}

TEST(ReportTest, DecisionsBlockAggregatesTheDecisionShape) {
  RunResult result;
  result.counters.scheduling_points = 4;
  result.counters.decision_candidates = 10;
  result.counters.priority_computations = 8;
  const std::string json = RunResultToJson(result);
  EXPECT_NE(json.find("\"decisions\":{"), std::string::npos);
  EXPECT_NE(json.find("\"candidates_total\":10"), std::string::npos);
  EXPECT_NE(json.find("\"mean_candidates\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"mean_priority_computations\":2"), std::string::npos);
}

TEST(ReportTest, AttributionBlockOnlyWhenSampled) {
  RunResult result;
  EXPECT_EQ(RunResultToJson(result).find("\"attribution\""),
            std::string::npos);

  result.counters.attribution.sample_every = 4;
  result.counters.attribution.AddSample(/*response_time=*/0.004,
                                        /*wait=*/0.003, /*overhead=*/0.0,
                                        /*busy=*/0.001);
  const std::string json = RunResultToJson(result);
  EXPECT_NE(json.find("\"attribution\""), std::string::npos);
  EXPECT_NE(json.find("\"sample_every\":4"), std::string::npos);
  EXPECT_NE(json.find("\"mean_response_ms\":4"), std::string::npos);
  EXPECT_NE(json.find("\"mean_queue_wait_ms\":3"), std::string::npos);
  EXPECT_NE(json.find("\"mean_processing_ms\":1"), std::string::npos);
  EXPECT_NE(json.find("\"dependency_samples\":0"), std::string::npos);
}

TEST(ReportTest, CountersCarryHistogramSummaries) {
  query::WorkloadConfig config;
  config.num_queries = 5;
  config.num_arrivals = 200;
  config.seed = 2;
  const query::Workload workload = query::GenerateWorkload(config);
  const RunResult result =
      Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr));
  const std::string json = RunResultToJson(result);
  EXPECT_NE(json.find("\"queue_length\":{"), std::string::npos);
  EXPECT_NE(json.find("\"exec_busy_seconds\":{"), std::string::npos);
  // The exported quantile set matches QosSnapshot: p50/p95/p99/p999.
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
  EXPECT_EQ(json.find("\"p90\""), std::string::npos);
}

TEST(ReportTest, SweepCellsCarryCountersDecisionsAndAttribution) {
  std::vector<SweepCell> cells(1);
  cells[0].utilization = 0.5;
  cells[0].policy = "HNR";
  cells[0].result.counters.scheduling_points = 2;
  cells[0].result.counters.attribution.sample_every = 2;
  cells[0].result.counters.attribution.AddSample(0.002, 0.001, 0.0, 0.001);
  const std::string json = SweepToJson(cells);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"decisions\":{"), std::string::npos);
  EXPECT_NE(json.find("\"attribution\":{"), std::string::npos);
}

}  // namespace
}  // namespace aqsios::core
