#include "sched/basic_policies.h"

#include <gtest/gtest.h>

#include <random>
#include <utility>

#include "sched/policy.h"

namespace aqsios::sched {
namespace {

/// Builds a unit with the given static priority ingredients.
Unit MakeUnit(int id, double output_rate, double normalized_rate, double phi,
              SimTime ideal_time) {
  Unit unit;
  unit.id = id;
  unit.kind = UnitKind::kQueryChain;
  unit.query = id;
  unit.input_stream = 0;
  unit.stats.output_rate = output_rate;
  unit.stats.normalized_rate = normalized_rate;
  unit.stats.phi = phi;
  unit.stats.ideal_time = ideal_time;
  return unit;
}

void Push(UnitTable& units, Scheduler& scheduler, int unit,
          stream::ArrivalId arrival, SimTime time) {
  units[static_cast<size_t>(unit)].queue.push_back(
      QueueEntry{arrival, time});
  scheduler.OnEnqueue(unit);
}

int PopPick(UnitTable& units, Scheduler& scheduler, SimTime now) {
  SchedulingCost cost;
  std::vector<int> out;
  if (!scheduler.PickNext(now, &cost, &out)) return -1;
  EXPECT_EQ(out.size(), 1u);
  const int unit = out.front();
  units[static_cast<size_t>(unit)].queue.pop_front();
  scheduler.OnDequeue(unit);
  return unit;
}

UnitTable ThreeUnits() {
  UnitTable units;
  // unit 0: high rate, low normalized rate, T = 10s.
  units.push_back(MakeUnit(0, /*rate=*/5.0, /*nrate=*/0.5, /*phi=*/0.05, 10.0));
  // unit 1: low rate, high normalized rate, T = 1s.
  units.push_back(MakeUnit(1, 2.0, 2.0, 2.0, 1.0));
  // unit 2: middling, T = 4s.
  units.push_back(MakeUnit(2, 3.0, 0.75, 0.1875, 4.0));
  return units;
}

TEST(FcfsTest, ServesInArrivalOrder) {
  UnitTable units = ThreeUnits();
  FcfsScheduler scheduler;
  scheduler.Attach(&units);
  Push(units, scheduler, 2, 0, 0.0);
  Push(units, scheduler, 0, 1, 1.0);
  Push(units, scheduler, 1, 2, 2.0);
  EXPECT_EQ(PopPick(units, scheduler, 3.0), 2);
  EXPECT_EQ(PopPick(units, scheduler, 3.0), 0);
  EXPECT_EQ(PopPick(units, scheduler, 3.0), 1);
  EXPECT_EQ(PopPick(units, scheduler, 3.0), -1);
}

TEST(RoundRobinTest, CyclesAcrossReadyUnits) {
  UnitTable units = ThreeUnits();
  RoundRobinScheduler scheduler;
  scheduler.Attach(&units);
  for (int i = 0; i < 2; ++i) {
    Push(units, scheduler, 0, i, 0.0);
    Push(units, scheduler, 1, i, 0.0);
    Push(units, scheduler, 2, i, 0.0);
  }
  EXPECT_EQ(PopPick(units, scheduler, 1.0), 0);
  EXPECT_EQ(PopPick(units, scheduler, 1.0), 1);
  EXPECT_EQ(PopPick(units, scheduler, 1.0), 2);
  EXPECT_EQ(PopPick(units, scheduler, 1.0), 0);
}

TEST(RoundRobinTest, SkipsEmptyUnits) {
  UnitTable units = ThreeUnits();
  RoundRobinScheduler scheduler;
  scheduler.Attach(&units);
  Push(units, scheduler, 1, 0, 0.0);
  Push(units, scheduler, 1, 1, 0.0);
  EXPECT_EQ(PopPick(units, scheduler, 1.0), 1);
  EXPECT_EQ(PopPick(units, scheduler, 1.0), 1);
  EXPECT_EQ(PopPick(units, scheduler, 1.0), -1);
}

TEST(StaticPriorityTest, HrOrdersByOutputRate) {
  UnitTable units = ThreeUnits();
  StaticPriorityScheduler scheduler(StaticPolicy::kHr);
  scheduler.Attach(&units);
  for (int u = 0; u < 3; ++u) Push(units, scheduler, u, u, 0.0);
  EXPECT_EQ(PopPick(units, scheduler, 1.0), 0);  // rate 5
  EXPECT_EQ(PopPick(units, scheduler, 1.0), 2);  // rate 3
  EXPECT_EQ(PopPick(units, scheduler, 1.0), 1);  // rate 2
}

TEST(StaticPriorityTest, HnrOrdersByNormalizedRate) {
  UnitTable units = ThreeUnits();
  StaticPriorityScheduler scheduler(StaticPolicy::kHnr);
  scheduler.Attach(&units);
  for (int u = 0; u < 3; ++u) Push(units, scheduler, u, u, 0.0);
  EXPECT_EQ(PopPick(units, scheduler, 1.0), 1);  // nrate 2
  EXPECT_EQ(PopPick(units, scheduler, 1.0), 2);  // nrate 0.75
  EXPECT_EQ(PopPick(units, scheduler, 1.0), 0);  // nrate 0.5
}

TEST(StaticPriorityTest, SrptOrdersByIdealTime) {
  UnitTable units = ThreeUnits();
  StaticPriorityScheduler scheduler(StaticPolicy::kSrpt);
  scheduler.Attach(&units);
  for (int u = 0; u < 3; ++u) Push(units, scheduler, u, u, 0.0);
  EXPECT_EQ(PopPick(units, scheduler, 1.0), 1);  // T = 1
  EXPECT_EQ(PopPick(units, scheduler, 1.0), 2);  // T = 4
  EXPECT_EQ(PopPick(units, scheduler, 1.0), 0);  // T = 10
}

TEST(StaticPriorityTest, HigherPriorityArrivalPreemptsOrder) {
  UnitTable units = ThreeUnits();
  StaticPriorityScheduler scheduler(StaticPolicy::kHnr);
  scheduler.Attach(&units);
  Push(units, scheduler, 0, 0, 0.0);
  EXPECT_EQ(PopPick(units, scheduler, 1.0), 0);
  Push(units, scheduler, 0, 1, 1.0);
  Push(units, scheduler, 1, 2, 1.0);  // higher HNR priority arrives
  EXPECT_EQ(PopPick(units, scheduler, 2.0), 1);
  EXPECT_EQ(PopPick(units, scheduler, 2.0), 0);
}

TEST(StaticPriorityTest, Names) {
  EXPECT_STREQ(StaticPriorityScheduler(StaticPolicy::kSrpt).name(), "SRPT");
  EXPECT_STREQ(StaticPriorityScheduler(StaticPolicy::kHr).name(), "HR");
  EXPECT_STREQ(StaticPriorityScheduler(StaticPolicy::kHnr).name(), "HNR");
}

TEST(LsfTest, PicksLargestWaitOverIdealTime) {
  UnitTable units = ThreeUnits();
  LsfScheduler scheduler;
  scheduler.Attach(&units);
  // unit 0 (T=10) waiting since t=0; unit 1 (T=1) waiting since t=8.
  Push(units, scheduler, 0, 0, 0.0);
  Push(units, scheduler, 1, 1, 8.0);
  // At t=10: stretch(0) = 10/10 = 1; stretch(1) = 2/1 = 2.
  EXPECT_EQ(PopPick(units, scheduler, 10.0), 1);
  EXPECT_EQ(PopPick(units, scheduler, 10.0), 0);
}

TEST(LsfTest, OrderingFlipsWithTime) {
  UnitTable units = ThreeUnits();
  LsfScheduler scheduler;
  scheduler.Attach(&units);
  // unit 2 (T=4) waiting since t=0, unit 0 (T=10) since t=0:
  // stretch(2) always larger -> 2 first regardless of instant; but against
  // unit 1 (T=1, arrives late) the order flips as time passes.
  Push(units, scheduler, 0, 0, 0.0);
  // At t=1: stretch(0)=0.1.
  Push(units, scheduler, 1, 1, 0.9);
  // At t=1: stretch(1)=(1-0.9)/1=0.1 -> tie; at t=1.01 unit 1 wins
  // ((0.11)/1 > 0.101/10).
  EXPECT_EQ(PopPick(units, scheduler, 1.01), 1);
}

TEST(BsdTest, CombinesPhiAndWait) {
  UnitTable units = ThreeUnits();
  BsdScheduler scheduler(/*count_all_units=*/true);
  scheduler.Attach(&units);
  // phi(0)=0.05 waiting since 0; phi(1)=2 waiting since 9.9.
  Push(units, scheduler, 0, 0, 0.0);
  Push(units, scheduler, 1, 1, 9.9);
  // At t=10: p0 = 0.05*10 = 0.5; p1 = 2*0.1 = 0.2 -> unit 0.
  EXPECT_EQ(PopPick(units, scheduler, 10.0), 0);
  // Re-enqueue unit 0 fresh; now p0 small, p1 grows.
  Push(units, scheduler, 0, 2, 10.0);
  // At t=10.5: p0 = 0.05*0.5 = 0.025; p1 = 2*0.6 = 1.2 -> unit 1.
  EXPECT_EQ(PopPick(units, scheduler, 10.5), 1);
}

TEST(BsdTest, NaiveAccountingCountsAllUnits) {
  UnitTable units = ThreeUnits();
  BsdScheduler scheduler(/*count_all_units=*/true);
  scheduler.Attach(&units);
  Push(units, scheduler, 0, 0, 0.0);
  SchedulingCost cost;
  std::vector<int> out;
  ASSERT_TRUE(scheduler.PickNext(1.0, &cost, &out));
  EXPECT_EQ(cost.computations, 3);
  EXPECT_EQ(cost.comparisons, 3);
}

TEST(BsdTest, ReadyOnlyAccounting) {
  UnitTable units = ThreeUnits();
  BsdScheduler scheduler(/*count_all_units=*/false);
  scheduler.Attach(&units);
  Push(units, scheduler, 0, 0, 0.0);
  Push(units, scheduler, 1, 1, 0.0);
  SchedulingCost cost;
  std::vector<int> out;
  ASSERT_TRUE(scheduler.PickNext(1.0, &cost, &out));
  EXPECT_EQ(cost.computations, 2);
}

TEST(PolicyFactoryTest, CreatesEveryPolicy) {
  for (PolicyKind kind :
       {PolicyKind::kFcfs, PolicyKind::kRoundRobin, PolicyKind::kSrpt,
        PolicyKind::kHr, PolicyKind::kHnr, PolicyKind::kLsf, PolicyKind::kBsd,
        PolicyKind::kBsdClustered}) {
    auto scheduler = CreateScheduler(PolicyConfig::Of(kind));
    ASSERT_NE(scheduler, nullptr) << PolicyKindName(kind);
    EXPECT_NE(std::string(scheduler->name()), "");
  }
}

TEST(PolicyFactoryTest, ParsePolicyKind) {
  EXPECT_EQ(ParsePolicyKind("hnr").value(), PolicyKind::kHnr);
  EXPECT_EQ(ParsePolicyKind("HNR").value(), PolicyKind::kHnr);
  EXPECT_EQ(ParsePolicyKind("rr").value(), PolicyKind::kRoundRobin);
  EXPECT_EQ(ParsePolicyKind("bsd-clustered").value(),
            PolicyKind::kBsdClustered);
  EXPECT_FALSE(ParsePolicyKind("nope").ok());
}

TEST(SchedulingCostTest, TotalsAndClear) {
  SchedulingCost cost;
  cost.computations = 3;
  cost.comparisons = 4;
  EXPECT_EQ(cost.total(), 7);
  cost.Clear();
  EXPECT_EQ(cost.total(), 0);
}

TEST(UnitTest, HeadWaitAndKindNames) {
  Unit unit = MakeUnit(0, 1, 1, 1, 1);
  unit.queue.push_back(QueueEntry{0, 2.0});
  EXPECT_DOUBLE_EQ(unit.HeadWait(5.0), 3.0);
  EXPECT_TRUE(unit.has_pending());
  EXPECT_STREQ(UnitKindName(UnitKind::kSharedGroup), "shared_group");
  EXPECT_STREQ(UnitKindName(UnitKind::kJoinSideLeft), "join_side_left");
}

// The bitmap-backed RR must be indistinguishable from the modular cursor
// scan it replaced: same pick sequence and same reported candidates count
// (how many units the scan would have visited), on a long randomized trace.
TEST(RoundRobinTest, RandomizedTraceMatchesCursorScanReference) {
  constexpr int kUnits = 70;  // spans more than one 64-bit bitmap word
  UnitTable units;
  for (int i = 0; i < kUnits; ++i) units.push_back(MakeUnit(i, 1, 1, 1, 1));
  RoundRobinScheduler scheduler;
  scheduler.Attach(&units);

  // Reference state: queue depths plus the cursor of the naive scan.
  std::vector<int> depth(kUnits, 0);
  int cursor = 0;

  std::mt19937_64 rng(0x88);
  std::uniform_int_distribution<int> unit_dist(0, kUnits - 1);
  std::uniform_int_distribution<int> op_dist(0, 3);
  double now = 0.0;
  int64_t arrival = 0;
  for (int step = 0; step < 20000; ++step) {
    now += 0.001;
    if (op_dist(rng) != 0) {
      const int u = unit_dist(rng);
      units[static_cast<size_t>(u)].queue.push_back(QueueEntry{arrival++, now});
      scheduler.OnEnqueue(u);
      ++depth[u];
      continue;
    }
    // Reference pick: scan cursor, cursor+1, ... (mod n) for the first
    // non-empty queue, counting visited units as candidates.
    int expected = -1;
    int64_t expected_candidates = 0;
    for (int k = 0; k < kUnits; ++k) {
      const int u = (cursor + k) % kUnits;
      ++expected_candidates;
      if (depth[u] > 0) {
        expected = u;
        break;
      }
    }
    SchedulingCost cost;
    std::vector<int> out;
    const bool picked = scheduler.PickNext(now, &cost, &out);
    ASSERT_EQ(picked, expected >= 0) << "step " << step;
    if (expected < 0) continue;
    ASSERT_EQ(out.size(), 1u);
    ASSERT_EQ(out.front(), expected) << "step " << step;
    ASSERT_EQ(cost.candidates, expected_candidates) << "step " << step;
    units[static_cast<size_t>(expected)].queue.pop_front();
    scheduler.OnDequeue(expected);
    --depth[expected];
    cursor = (expected + 1) % kUnits;
  }
}

// ---------------------------------------------------------------------------
// TupleQueue: the inline-first ring buffer behind Unit::queue.

TEST(TupleQueueTest, FifoOrderAcrossGrowth) {
  TupleQueue queue;
  for (int64_t i = 0; i < 100; ++i) {
    queue.push_back(QueueEntry{i, static_cast<double>(i)});
  }
  EXPECT_EQ(queue.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(queue.front().arrival, i);
    EXPECT_EQ(queue.at(0).arrival, i);
    queue.pop_front();
  }
  EXPECT_TRUE(queue.empty());
}

TEST(TupleQueueTest, WrapsAroundUnderChurn) {
  // Steady-state churn at depth <= 2 stays inside the inline buffer; the
  // head index must wrap cleanly for arbitrarily many operations.
  TupleQueue queue;
  for (int64_t i = 0; i < 1000; ++i) {
    queue.push_back(QueueEntry{i, 0.0});
    if (i % 2 == 1) {
      EXPECT_EQ(queue.front().arrival, i - 1);
      queue.pop_front();
      queue.pop_front();
    }
  }
  EXPECT_TRUE(queue.empty());
}

TEST(TupleQueueTest, AtIndexesFromHead) {
  TupleQueue queue;
  for (int64_t i = 0; i < 10; ++i) queue.push_back(QueueEntry{i, 0.0});
  queue.pop_front();
  queue.pop_front();
  for (size_t i = 0; i < queue.size(); ++i) {
    EXPECT_EQ(queue.at(i).arrival, static_cast<int64_t>(i) + 2);
  }
  EXPECT_EQ(queue.back().arrival, 9);
}

TEST(TupleQueueTest, CopyAndMovePreserveContents) {
  TupleQueue queue;
  for (int64_t i = 0; i < 20; ++i) queue.push_back(QueueEntry{i, 0.5 * i});
  queue.pop_front();

  TupleQueue copy(queue);
  ASSERT_EQ(copy.size(), queue.size());
  EXPECT_EQ(copy.front().arrival, 1);
  EXPECT_EQ(copy.back().arrival, 19);
  copy.pop_front();
  EXPECT_EQ(queue.front().arrival, 1) << "copy must not alias the original";

  TupleQueue assigned;
  assigned.push_back(QueueEntry{99, 0.0});
  assigned = queue;
  EXPECT_EQ(assigned.size(), 19u);
  EXPECT_EQ(assigned.front().arrival, 1);

  TupleQueue moved(std::move(assigned));
  EXPECT_EQ(moved.size(), 19u);
  EXPECT_EQ(moved.front().arrival, 1);
  moved.clear();
  EXPECT_TRUE(moved.empty());
}

}  // namespace
}  // namespace aqsios::sched
