#include "core/dsms.h"

#include <gtest/gtest.h>

#include "gtest_compat.h"

namespace aqsios::core {
namespace {

query::QuerySpec Chain(std::vector<query::OperatorSpec> ops,
                       stream::StreamId stream = 0) {
  query::QuerySpec spec;
  spec.left_stream = stream;
  spec.left_ops = std::move(ops);
  return spec;
}

stream::ArrivalTable Arrivals(int n, SimTime spacing) {
  stream::ArrivalTable table;
  for (int i = 0; i < n; ++i) {
    stream::Arrival a;
    a.id = i;
    a.stream = 0;
    a.time = spacing * i;
    a.attribute = 1.0;
    table.arrivals.push_back(a);
  }
  return table;
}

TEST(DsmsTest, AssignsDenseQueryIds) {
  Dsms dsms;
  EXPECT_EQ(dsms.AddQuery(Chain({query::MakeSelect(1.0, 0.5)})), 0);
  EXPECT_EQ(dsms.AddQuery(Chain({query::MakeSelect(2.0, 0.5)})), 1);
  EXPECT_EQ(dsms.num_queries(), 2);
}

TEST(DsmsTest, RunsEveryPolicy) {
  Dsms dsms(query::SelectivityMode::kCorrelatedAttribute);
  dsms.AddQuery(Chain({query::MakeSelect(1.0, 0.5), query::MakeProject(1.0)}));
  dsms.AddQuery(Chain({query::MakeSelect(2.0, 1.0)}));
  dsms.SetArrivals(Arrivals(50, 0.002));
  for (sched::PolicyKind kind :
       {sched::PolicyKind::kFcfs, sched::PolicyKind::kRoundRobin,
        sched::PolicyKind::kSrpt, sched::PolicyKind::kHr,
        sched::PolicyKind::kHnr, sched::PolicyKind::kLsf,
        sched::PolicyKind::kBsd, sched::PolicyKind::kBsdClustered}) {
    const RunResult r = dsms.Run(sched::PolicyConfig::Of(kind));
    EXPECT_EQ(r.qos.tuples_emitted, 100) << PolicyKindName(kind);
    EXPECT_GT(r.counters.busy_time, 0.0) << PolicyKindName(kind);
  }
}

TEST(DsmsTest, ObjectiveForPolicy) {
  EXPECT_EQ(ObjectiveForPolicy(sched::PolicyKind::kBsd),
            sched::SharingObjective::kBsd);
  EXPECT_EQ(ObjectiveForPolicy(sched::PolicyKind::kBsdClustered),
            sched::SharingObjective::kBsd);
  EXPECT_EQ(ObjectiveForPolicy(sched::PolicyKind::kHnr),
            sched::SharingObjective::kHnr);
  EXPECT_EQ(ObjectiveForPolicy(sched::PolicyKind::kFcfs),
            sched::SharingObjective::kHnr);
}

TEST(DsmsTest, SharingGroupValidatedAtRun) {
  Dsms dsms(query::SelectivityMode::kCorrelatedAttribute);
  const query::OperatorSpec shared = query::MakeSelect(1.0, 0.5);
  dsms.AddQuery(Chain({shared, query::MakeProject(1.0)}));
  dsms.AddQuery(Chain({shared, query::MakeProject(2.0)}));
  dsms.AddSharingGroup({0, 1});
  dsms.SetArrivals(Arrivals(10, 0.01));
  const RunResult r = dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kHnr));
  EXPECT_EQ(r.qos.tuples_emitted, 20);
}

TEST(DsmsDeathTest, RejectsMisuse) {
  AQSIOS_GTEST_SET_FLAG(death_test_style, "threadsafe");
  {
    Dsms dsms;
    EXPECT_DEATH(
        dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kHnr)),
        "no queries");
  }
  {
    Dsms dsms;
    dsms.AddQuery(Chain({query::MakeSelect(1.0, 0.5)}));
    EXPECT_DEATH(
        dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kHnr)),
        "no arrivals");
  }
  {
    Dsms dsms;
    // Invalid spec dies at registration.
    EXPECT_DEATH(dsms.AddQuery(Chain({})), "no operators");
    dsms.AddQuery(Chain({query::MakeSelect(1.0, 0.5)}));
    EXPECT_DEATH(dsms.AddSharingGroup({0}), "");
    EXPECT_DEATH(dsms.AddSharingGroup({0, 7}), "");
  }
}

}  // namespace
}  // namespace aqsios::core
