#include "obs/tracer.h"

#include <gtest/gtest.h>

#include "core/dsms.h"
#include "query/workload.h"

namespace aqsios::obs {
namespace {

TraceEvent Instant(EventKind kind, double time, int64_t a = 0) {
  TraceEvent event;
  event.kind = kind;
  event.time = time;
  event.a = a;
  return event;
}

TEST(EventTracerTest, RecordsInOrderBelowCapacity) {
  EventTracer tracer(8);
  tracer.Record(Instant(EventKind::kTupleArrival, 0.1, 1));
  tracer.Record(Instant(EventKind::kEmit, 0.2, 2));
  EXPECT_EQ(tracer.capacity(), 8u);
  EXPECT_EQ(tracer.recorded(), 2);
  EXPECT_EQ(tracer.dropped(), 0);
  EXPECT_EQ(tracer.size(), 2u);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kTupleArrival);
  EXPECT_EQ(events[1].kind, EventKind::kEmit);
}

TEST(EventTracerTest, RingWrapKeepsNewestOldestFirst) {
  EventTracer tracer(4);
  for (int i = 0; i < 6; ++i) {
    tracer.Record(Instant(EventKind::kEnqueue, 0.1 * i, i));
  }
  EXPECT_EQ(tracer.recorded(), 6);
  EXPECT_EQ(tracer.dropped(), 2);
  EXPECT_EQ(tracer.size(), 4u);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  // Events 0 and 1 were overwritten; the window is 2,3,4,5 oldest-first.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<size_t>(i)].a, i + 2);
  }
}

// The masked ring pin: a non-power-of-two capacity rounds up to the next
// power of two, and wraparound under the mask keeps exactly the newest
// `capacity` events oldest-first — the same window the modulo ring kept.
TEST(EventTracerTest, NonPowerOfTwoCapacityRoundsUpAndWrapsEquivalently) {
  EventTracer tracer(6);
  EXPECT_EQ(tracer.capacity(), 8u);
  for (int i = 0; i < 21; ++i) {
    tracer.Record(Instant(EventKind::kEnqueue, 0.01 * i, i));
  }
  EXPECT_EQ(tracer.recorded(), 21);
  EXPECT_EQ(tracer.dropped(), 13);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(events[static_cast<size_t>(i)].a, i + 13);
  }
}

TEST(EventTracerTest, CountOfAndClear) {
  EventTracer tracer(16);
  tracer.Record(Instant(EventKind::kEmit, 0.1));
  tracer.Record(Instant(EventKind::kEmit, 0.2));
  tracer.Record(Instant(EventKind::kFilterDrop, 0.3));
  EXPECT_EQ(tracer.CountOf(EventKind::kEmit), 2);
  EXPECT_EQ(tracer.CountOf(EventKind::kFilterDrop), 1);
  EXPECT_EQ(tracer.CountOf(EventKind::kJoinProbe), 0);
  tracer.Clear();
  EXPECT_EQ(tracer.recorded(), 0);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.CountOf(EventKind::kEmit), 0);
}

TEST(EventTracerTest, EventKindNamesAreStable) {
  EXPECT_STREQ(EventKindName(EventKind::kTupleArrival), "tuple_arrival");
  EXPECT_STREQ(EventKindName(EventKind::kSchedDecision), "sched_decision");
  EXPECT_STREQ(EventKindName(EventKind::kSegmentRun), "segment_run");
}

query::Workload SmallWorkload() {
  query::WorkloadConfig config;
  config.num_queries = 8;
  config.num_arrivals = 400;
  config.seed = 17;
  config.utilization = 0.9;
  return query::GenerateWorkload(config);
}

void ExpectSameResult(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.policy_name, b.policy_name);
  EXPECT_EQ(a.qos.tuples_emitted, b.qos.tuples_emitted);
  EXPECT_EQ(a.qos.avg_slowdown, b.qos.avg_slowdown);
  EXPECT_EQ(a.qos.max_slowdown, b.qos.max_slowdown);
  EXPECT_EQ(a.qos.l2_slowdown, b.qos.l2_slowdown);
  EXPECT_EQ(a.qos.p50_slowdown, b.qos.p50_slowdown);
  EXPECT_EQ(a.qos.p999_slowdown, b.qos.p999_slowdown);
  EXPECT_EQ(a.counters.scheduling_points, b.counters.scheduling_points);
  EXPECT_EQ(a.counters.unit_executions, b.counters.unit_executions);
  EXPECT_EQ(a.counters.operator_invocations, b.counters.operator_invocations);
  EXPECT_EQ(a.counters.tuples_emitted, b.counters.tuples_emitted);
  EXPECT_EQ(a.counters.tuples_filtered, b.counters.tuples_filtered);
  EXPECT_EQ(a.counters.decision_candidates, b.counters.decision_candidates);
  EXPECT_EQ(a.counters.priority_computations,
            b.counters.priority_computations);
  EXPECT_EQ(a.counters.busy_time, b.counters.busy_time);
  EXPECT_EQ(a.counters.end_time, b.counters.end_time);
  EXPECT_EQ(a.counters.queue_length.count, b.counters.queue_length.count);
  EXPECT_EQ(a.counters.queue_length.p99, b.counters.queue_length.p99);
  EXPECT_EQ(a.counters.exec_busy.mean, b.counters.exec_busy.mean);
}

// The null-sink fast path pin: attaching a tracer (and attribution
// sampling) is observation-only — every QoS metric and every counter is
// bit-identical to the untraced run.
TEST(EventTracerTest, TracedRunIsBitIdenticalToUntraced) {
  const query::Workload workload = SmallWorkload();
  for (auto kind : {sched::PolicyKind::kHnr, sched::PolicyKind::kBsd,
                    sched::PolicyKind::kRoundRobin}) {
    SCOPED_TRACE(static_cast<int>(kind));
    const auto policy = sched::PolicyConfig::Of(kind);
    core::SimulationOptions plain;
    const core::RunResult base = core::Simulate(workload, policy, plain);

    EventTracer tracer;
    core::SimulationOptions traced = plain;
    traced.tracer = &tracer;
    traced.attribution_sample_every = 8;
    const core::RunResult observed = core::Simulate(workload, policy, traced);

    EXPECT_GT(tracer.recorded(), 0);
    ExpectSameResult(base, observed);
    // The only allowed difference: the traced run carries attribution.
    EXPECT_EQ(base.counters.attribution.samples(), 0);
    EXPECT_GT(observed.counters.attribution.samples(), 0);
  }
}

// With a large enough ring, surviving event counts must agree exactly with
// the engine's own RunCounters — the tracer sees every countable event.
TEST(EventTracerTest, EventCountsMatchRunCounters) {
  const query::Workload workload = SmallWorkload();
  EventTracer tracer(size_t{1} << 20);
  core::SimulationOptions options;
  options.tracer = &tracer;
  const core::RunResult result = core::Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr), options);

  ASSERT_EQ(tracer.dropped(), 0) << "ring too small for this workload";
  const exec::RunCounters& counters = result.counters;
  EXPECT_EQ(tracer.CountOf(EventKind::kSchedDecision),
            counters.scheduling_points);
  EXPECT_EQ(tracer.CountOf(EventKind::kSegmentRun), counters.unit_executions);
  EXPECT_EQ(tracer.CountOf(EventKind::kOperatorInvocation),
            counters.operator_invocations);
  EXPECT_EQ(tracer.CountOf(EventKind::kEmit), counters.tuples_emitted);
  EXPECT_EQ(tracer.CountOf(EventKind::kFilterDrop), counters.tuples_filtered);
  EXPECT_EQ(tracer.CountOf(EventKind::kAdaptationTick),
            counters.adaptation_ticks);
  EXPECT_EQ(tracer.CountOf(EventKind::kTupleArrival),
            static_cast<int64_t>(workload.arrivals.arrivals.size()));
}

// Scheduling decisions expose the decision shape: candidates scanned sum to
// the counter, and every decision names a real unit.
TEST(EventTracerTest, SchedDecisionEventsCarryCandidates) {
  const query::Workload workload = SmallWorkload();
  EventTracer tracer(size_t{1} << 20);
  core::SimulationOptions options;
  options.tracer = &tracer;
  const core::RunResult result = core::Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kLsf), options);
  ASSERT_EQ(tracer.dropped(), 0);

  int64_t candidates = 0;
  for (const TraceEvent& event : tracer.Events()) {
    if (event.kind != EventKind::kSchedDecision) continue;
    EXPECT_GE(event.unit, 0);
    EXPECT_GE(event.a, 1);
    candidates += event.a;
  }
  EXPECT_EQ(candidates, result.counters.decision_candidates);
  // LSF scans the whole ready set, so on average > 1 candidate per decision.
  EXPECT_GT(result.counters.decision_candidates,
            result.counters.scheduling_points);
}

}  // namespace
}  // namespace aqsios::obs
