// TupleQueue regression tests for the ring buffer's tricky transitions:
// growing while the ring is wrapped (head past the physical middle) and
// shrinking surplus capacity back down after a burst drains.

#include <deque>

#include <gtest/gtest.h>

#include "sched/unit.h"

namespace aqsios::sched {
namespace {

QueueEntry E(int64_t i) { return QueueEntry{i, static_cast<double>(i)}; }

void ExpectFifo(const TupleQueue& queue, const std::deque<int64_t>& expected) {
  ASSERT_EQ(queue.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(queue.at(i).arrival, expected[i]) << "position " << i;
  }
}

TEST(TupleQueueTest, WraparoundThenGrowPreservesOrder) {
  // Advance head so the ring is wrapped, then force Grow() mid-wrap: the
  // relocation must emit entries in FIFO order, not physical order.
  TupleQueue queue;
  std::deque<int64_t> model;
  int64_t next = 0;
  // Fill inline capacity (2), pop one, push one: head_ = 1, ring wrapped.
  queue.push_back(E(next));
  model.push_back(next++);
  queue.push_back(E(next));
  model.push_back(next++);
  queue.pop_front();
  model.pop_front();
  queue.push_back(E(next));
  model.push_back(next++);
  // Next push grows 2 -> 4 while wrapped.
  queue.push_back(E(next));
  model.push_back(next++);
  ExpectFifo(queue, model);

  // Repeat the pattern at the larger capacity: wrap at 4, grow to 8.
  queue.pop_front();
  model.pop_front();
  for (int i = 0; i < 5; ++i) {
    queue.push_back(E(next));
    model.push_back(next++);
  }
  ExpectFifo(queue, model);
  EXPECT_GE(queue.capacity(), 8u);
}

TEST(TupleQueueTest, MirrorsDequeUnderMixedChurn) {
  TupleQueue queue;
  std::deque<int64_t> model;
  int64_t next = 0;
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int step = 0; step < 20000; ++step) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const bool push = model.empty() || (state >> 33) % 3 != 0;
    if (push) {
      queue.push_back(E(next));
      model.push_back(next++);
    } else {
      EXPECT_EQ(queue.front().arrival, model.front());
      queue.pop_front();
      model.pop_front();
    }
    if (step % 4096 == 0) ExpectFifo(queue, model);
  }
  ExpectFifo(queue, model);
}

TEST(TupleQueueTest, ShrinkToFitReturnsToInlineBuffer) {
  TupleQueue queue;
  for (int64_t i = 0; i < 100; ++i) queue.push_back(E(i));
  EXPECT_GE(queue.capacity(), 128u);
  for (int i = 0; i < 99; ++i) queue.pop_front();
  queue.shrink_to_fit();
  EXPECT_EQ(queue.capacity(), 2u) << "one survivor fits inline";
  EXPECT_EQ(queue.front().arrival, 99);
  // Still fully functional after relocating into the inline buffer.
  queue.push_back(E(100));
  queue.push_back(E(101));
  ExpectFifo(queue, {99, 100, 101});
}

TEST(TupleQueueTest, ShrinkToFitPicksSmallestSufficientPowerOfTwo) {
  TupleQueue queue;
  for (int64_t i = 0; i < 300; ++i) queue.push_back(E(i));
  const size_t grown = queue.capacity();
  EXPECT_GE(grown, 512u);
  // Drain to 5 survivors with a wrapped head, then shrink: 5 needs 8 slots.
  for (int i = 0; i < 295; ++i) queue.pop_front();
  queue.shrink_to_fit();
  EXPECT_EQ(queue.capacity(), 8u);
  ExpectFifo(queue, {295, 296, 297, 298, 299});
}

TEST(TupleQueueTest, ShrinkToFitIsANoOpWhenAlreadyTight) {
  TupleQueue queue;
  queue.push_back(E(0));
  queue.shrink_to_fit();  // inline buffer: nothing to release
  EXPECT_EQ(queue.capacity(), 2u);
  for (int64_t i = 1; i < 4; ++i) queue.push_back(E(i));
  EXPECT_EQ(queue.capacity(), 4u);
  queue.shrink_to_fit();  // 4 entries in 4 slots: already tight
  EXPECT_EQ(queue.capacity(), 4u);
  ExpectFifo(queue, {0, 1, 2, 3});
}

TEST(TupleQueueTest, ShrinkAfterWraparoundPreservesOrder) {
  TupleQueue queue;
  std::deque<int64_t> model;
  int64_t next = 0;
  for (int i = 0; i < 64; ++i) {
    queue.push_back(E(next));
    model.push_back(next++);
  }
  // Rotate so the ring wraps: pop 60, push 3.
  for (int i = 0; i < 60; ++i) {
    queue.pop_front();
    model.pop_front();
  }
  for (int i = 0; i < 3; ++i) {
    queue.push_back(E(next));
    model.push_back(next++);
  }
  queue.shrink_to_fit();
  EXPECT_EQ(queue.capacity(), 8u);
  ExpectFifo(queue, model);
  // And the shrunk queue keeps working: grow again from the compact state.
  for (int i = 0; i < 50; ++i) {
    queue.push_back(E(next));
    model.push_back(next++);
  }
  ExpectFifo(queue, model);
}

}  // namespace
}  // namespace aqsios::sched
