#include "sched/shard_router.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "query/plan.h"
#include "query/workload.h"
#include "stream/tuple.h"

namespace aqsios::sched {
namespace {

query::Workload SingleStream(int queries, int sharing_group_size = 0) {
  query::WorkloadConfig config;
  config.num_queries = queries;
  config.num_arrivals = 500;
  config.seed = 42;
  config.sharing_group_size = sharing_group_size;
  return query::GenerateWorkload(config);
}

TEST(AssignShardsTest, DeterministicAndComplete) {
  const query::Workload workload = SingleStream(64);
  const ShardAssignment a = AssignShards(workload.plan, 4, 0x5eedc0de);
  const ShardAssignment b = AssignShards(workload.plan, 4, 0x5eedc0de);
  EXPECT_EQ(a.num_shards, 4);
  ASSERT_EQ(a.shard_of_query.size(), 64u);
  EXPECT_EQ(a.shard_of_query, b.shard_of_query);

  // Every query lands on exactly one shard, and the two views agree.
  int total = 0;
  for (int s = 0; s < 4; ++s) {
    for (const query::QueryId q : a.queries_of_shard[static_cast<size_t>(s)]) {
      EXPECT_EQ(a.shard_of_query[static_cast<size_t>(q)], s);
      ++total;
    }
    // Ascending within a shard (sub-plan order).
    EXPECT_TRUE(std::is_sorted(
        a.queries_of_shard[static_cast<size_t>(s)].begin(),
        a.queries_of_shard[static_cast<size_t>(s)].end()));
  }
  EXPECT_EQ(total, 64);
}

TEST(AssignShardsTest, SeedChangesPlacement) {
  const query::Workload workload = SingleStream(64);
  const ShardAssignment a = AssignShards(workload.plan, 4, 1);
  const ShardAssignment b = AssignShards(workload.plan, 4, 2);
  EXPECT_NE(a.shard_of_query, b.shard_of_query);
}

TEST(AssignShardsTest, SingleShardTakesEverything) {
  const query::Workload workload = SingleStream(10);
  const ShardAssignment a = AssignShards(workload.plan, 1, 7);
  EXPECT_EQ(a.queries_of_shard.size(), 1u);
  EXPECT_EQ(a.queries_of_shard[0].size(), 10u);
}

TEST(AssignShardsTest, SharingGroupsColocate) {
  // §9.3-style workload: groups of 10 queries share a select operator. A
  // group's shared leaf must execute once per tuple, so the whole group
  // anchors on its smallest member id and lands on one shard.
  const query::Workload workload = SingleStream(60, /*sharing_group_size=*/10);
  ASSERT_FALSE(workload.plan.sharing_groups().empty());
  const ShardAssignment a = AssignShards(workload.plan, 4, 0x5eedc0de);
  for (const query::SharingGroup& group : workload.plan.sharing_groups()) {
    ASSERT_FALSE(group.members.empty());
    const int shard =
        a.shard_of_query[static_cast<size_t>(group.members.front())];
    for (const query::QueryId member : group.members) {
      EXPECT_EQ(a.shard_of_query[static_cast<size_t>(member)], shard)
          << "sharing group split across shards";
    }
  }
}

// Routes with one concurrent consumer thread per shard and returns the
// per-shard sub-tables.
std::vector<stream::ArrivalTable> RouteAll(const query::GlobalPlan& plan,
                                           const stream::ArrivalTable& table,
                                           const ShardAssignment& assignment,
                                           size_t ring_capacity) {
  ShardRouter router(plan, assignment, ring_capacity);
  std::vector<stream::ArrivalTable> out(
      static_cast<size_t>(assignment.num_shards));
  std::vector<std::thread> consumers;
  for (int s = 0; s < assignment.num_shards; ++s) {
    consumers.emplace_back(
        [&router, &out, s] { router.Collect(s, &out[static_cast<size_t>(s)]); });
  }
  router.Route(table);
  for (std::thread& t : consumers) t.join();
  return out;
}

TEST(ShardRouterTest, SingleStreamFanOutIsExactCopy) {
  const query::Workload workload = SingleStream(24);
  const ShardAssignment assignment =
      AssignShards(workload.plan, 3, 0x5eedc0de);
  const std::vector<stream::ArrivalTable> shards = RouteAll(
      workload.plan, workload.arrivals, assignment,
      ShardRouter::kDefaultRingCapacity);
  // Single-stream workload: every (non-empty) shard subscribes to stream 0
  // and receives the whole table — same global ids, same order.
  for (int s = 0; s < 3; ++s) {
    if (assignment.queries_of_shard[static_cast<size_t>(s)].empty()) continue;
    const stream::ArrivalTable& sub = shards[static_cast<size_t>(s)];
    ASSERT_EQ(sub.size(), workload.arrivals.size()) << "shard " << s;
    for (int64_t i = 0; i < sub.size(); ++i) {
      EXPECT_EQ(sub.arrivals[static_cast<size_t>(i)].id,
                workload.arrivals.arrivals[static_cast<size_t>(i)].id);
      EXPECT_EQ(sub.arrivals[static_cast<size_t>(i)].time,
                workload.arrivals.arrivals[static_cast<size_t>(i)].time);
    }
  }
}

TEST(ShardRouterTest, TinyRingBackpressureLosesNothing) {
  // Capacity 4 forces the producer onto the spin/yield backpressure path
  // thousands of times; delivery must still be complete and in order.
  const query::Workload workload = SingleStream(24);
  const ShardAssignment assignment =
      AssignShards(workload.plan, 4, 0x5eedc0de);
  const std::vector<stream::ArrivalTable> shards =
      RouteAll(workload.plan, workload.arrivals, assignment,
               /*ring_capacity=*/4);
  for (int s = 0; s < 4; ++s) {
    if (assignment.queries_of_shard[static_cast<size_t>(s)].empty()) continue;
    const stream::ArrivalTable& sub = shards[static_cast<size_t>(s)];
    ASSERT_EQ(sub.size(), workload.arrivals.size());
    for (int64_t i = 0; i < sub.size(); ++i) {
      ASSERT_EQ(sub.arrivals[static_cast<size_t>(i)].id,
                workload.arrivals.arrivals[static_cast<size_t>(i)].id);
    }
  }
}

TEST(ShardRouterTest, StalledConsumerCannotLivelockTheProducer) {
  // Regression: a consumer that never drains used to pin Route() in an
  // unbounded spin/yield loop — one dead shard livelocked the whole
  // router. With drop_on_stall the producer must escalate to sleeps,
  // declare the ring wedged after the stall budget, drop the overflow with
  // accounting, and return. Consumers are started only *after* Route
  // returns, so every ring is guaranteed full when the stall fires.
  const query::Workload workload = SingleStream(24);
  const ShardAssignment assignment =
      AssignShards(workload.plan, 2, 0x5eedc0de);
  StallPolicy stall;
  stall.spin_yields = 4;
  stall.sleep_micros = 1;
  stall.stall_rounds = 3;
  stall.drop_on_stall = true;
  ShardRouter router(workload.plan, assignment, /*ring_capacity=*/4, stall);

  router.Route(workload.arrivals);  // must return despite absent consumers

  std::vector<stream::ArrivalTable> shards(2);
  std::vector<std::thread> consumers;
  for (int s = 0; s < 2; ++s) {
    consumers.emplace_back([&router, &shards, s] {
      router.Collect(s, &shards[static_cast<size_t>(s)]);
    });
  }
  for (std::thread& t : consumers) t.join();

  for (int s = 0; s < 2; ++s) {
    const size_t i = static_cast<size_t>(s);
    if (assignment.queries_of_shard[i].empty()) continue;
    // Every arrival is accounted exactly once: routed (and later drained by
    // the late consumer) or dropped against the stalled ring.
    EXPECT_EQ(router.routed_counts()[i] + router.dropped_counts()[i],
              workload.arrivals.size());
    EXPECT_GT(router.dropped_counts()[i], 0)
        << "a ring of capacity 4 with no consumer must stall";
    EXPECT_EQ(static_cast<int64_t>(shards[i].size()),
              router.routed_counts()[i]);
    // The survivors preserve global ids and relative order.
    int64_t prev = -1;
    for (const stream::Arrival& arrival : shards[i].arrivals) {
      EXPECT_GT(arrival.id, prev);
      prev = arrival.id;
    }
  }
}

TEST(ShardRouterTest, LosslessDefaultStillDeliversEverythingUnderStall) {
  // Without drop_on_stall the sleep escalation must stay lossless: a
  // consumer that shows up very late still gets every arrival.
  const query::Workload workload = SingleStream(8);
  const ShardAssignment assignment =
      AssignShards(workload.plan, 1, 0x5eedc0de);
  StallPolicy stall;
  stall.spin_yields = 1;
  stall.sleep_micros = 1;
  ShardRouter router(workload.plan, assignment, /*ring_capacity=*/4, stall);
  stream::ArrivalTable out;
  std::thread consumer([&router, &out] {
    // Let the producer hit the sleep path before draining.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    router.Collect(0, &out);
  });
  router.Route(workload.arrivals);
  consumer.join();
  EXPECT_EQ(out.size(), workload.arrivals.size());
  EXPECT_EQ(router.dropped_counts()[0], 0);
}

TEST(ShardRouterTest, MultiStreamRoutesBySubscription) {
  query::WorkloadConfig config;
  config.num_queries = 16;
  config.num_arrivals = 600;
  config.seed = 7;
  config.multi_stream = true;
  const query::Workload workload = query::GenerateWorkload(config);
  const ShardAssignment assignment =
      AssignShards(workload.plan, 3, 0x5eedc0de);
  ShardRouter router(workload.plan, assignment);
  std::vector<stream::ArrivalTable> shards(3);
  std::vector<std::thread> consumers;
  for (int s = 0; s < 3; ++s) {
    consumers.emplace_back(
        [&router, &shards, s] { router.Collect(s, &shards[static_cast<size_t>(s)]); });
  }
  router.Route(workload.arrivals);
  for (std::thread& t : consumers) t.join();

  // Streams each shard's queries consume.
  for (int s = 0; s < 3; ++s) {
    std::set<stream::StreamId> subscribed;
    for (const query::QueryId q :
         assignment.queries_of_shard[static_cast<size_t>(s)]) {
      const query::QuerySpec& spec = workload.plan.query(q).spec();
      subscribed.insert(spec.left_stream);
      if (spec.right_stream >= 0) subscribed.insert(spec.right_stream);
      for (const query::JoinStage& stage : spec.extra_stages) {
        subscribed.insert(stage.stream);
      }
    }
    // The shard's sub-table must be exactly the global table filtered to its
    // subscribed streams (order and ids preserved).
    std::vector<stream::Arrival> want;
    for (const stream::Arrival& arrival : workload.arrivals.arrivals) {
      if (subscribed.count(arrival.stream)) want.push_back(arrival);
    }
    const stream::ArrivalTable& sub = shards[static_cast<size_t>(s)];
    ASSERT_EQ(sub.size(), static_cast<int64_t>(want.size())) << "shard " << s;
    EXPECT_EQ(router.routed_counts()[static_cast<size_t>(s)],
              static_cast<int64_t>(want.size()));
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(sub.arrivals[i].id, want[i].id);
      EXPECT_EQ(sub.arrivals[i].stream, want[i].stream);
    }
  }
}

}  // namespace
}  // namespace aqsios::sched
