// Tests for tuple-count (ROWS) windows: SHJ state semantics, statistics,
// and end-to-end engine behaviour.

#include <gtest/gtest.h>

#include "gtest_compat.h"

#include "core/dsms.h"
#include "exec/window_join.h"
#include "query/builder.h"

namespace aqsios::exec {
namespace {

using Entry = SymmetricHashJoinState::Entry;
using query::Side;

Entry E(stream::ArrivalId id, SimTime ts) {
  Entry entry;
  entry.id = id;
  entry.timestamp = ts;
  entry.arrival_time = ts;
  entry.identity = static_cast<uint64_t>(id);
  return entry;
}

TEST(RowWindowStateTest, KeepsLastNPerSide) {
  SymmetricHashJoinState state = SymmetricHashJoinState::RowWindow(2);
  state.Insert(Side::kRight, 1, E(1, 0.0));
  state.Insert(Side::kRight, 1, E(2, 1.0));
  state.Insert(Side::kRight, 1, E(3, 2.0));  // evicts entry 1
  EXPECT_EQ(state.size(Side::kRight), 2);
  std::vector<Entry> candidates;
  state.Probe(Side::kLeft, 1, /*timestamp=*/100.0, &candidates);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].id, 2);
  EXPECT_EQ(candidates[1].id, 3);
}

TEST(RowWindowStateTest, EvictionIsOldestAcrossKeys) {
  SymmetricHashJoinState state = SymmetricHashJoinState::RowWindow(2);
  state.Insert(Side::kRight, 1, E(1, 0.0));
  state.Insert(Side::kRight, 2, E(2, 1.0));
  state.Insert(Side::kRight, 2, E(3, 2.0));  // evicts key-1 entry
  std::vector<Entry> candidates;
  state.Probe(Side::kLeft, 1, 5.0, &candidates);
  EXPECT_TRUE(candidates.empty());
  state.Probe(Side::kLeft, 2, 5.0, &candidates);
  EXPECT_EQ(candidates.size(), 2u);
}

TEST(RowWindowStateTest, TimestampIrrelevantToMatching) {
  SymmetricHashJoinState state = SymmetricHashJoinState::RowWindow(4);
  state.Insert(Side::kRight, 1, E(1, 1000.0));  // far away in time
  std::vector<Entry> candidates;
  state.Probe(Side::kLeft, 1, 0.0, &candidates);
  ASSERT_EQ(candidates.size(), 1u);
}

TEST(RowWindowStateTest, SidesIndependent) {
  SymmetricHashJoinState state = SymmetricHashJoinState::RowWindow(1);
  state.Insert(Side::kLeft, 1, E(1, 0.0));
  state.Insert(Side::kRight, 1, E(2, 0.0));
  EXPECT_EQ(state.size(Side::kLeft), 1);
  EXPECT_EQ(state.size(Side::kRight), 1);
  state.Insert(Side::kLeft, 1, E(3, 1.0));  // evicts left only
  EXPECT_EQ(state.size(Side::kLeft), 1);
  EXPECT_EQ(state.size(Side::kRight), 1);
}

TEST(RowWindowStatsTest, OccupancyIsRowCount) {
  query::QuerySpec spec;
  spec.left_stream = 0;
  spec.right_stream = 1;
  spec.left_ops = {query::MakeSelect(1.0, 0.5)};
  spec.right_ops = {query::MakeSelect(2.0, 0.4)};
  spec.join_op = query::MakeRowWindowJoin(3.0, 0.25, /*rows=*/8);
  spec.common_ops = {query::MakeProject(4.0)};
  spec.left_mean_inter_arrival = 0.1;
  spec.right_mean_inter_arrival = 0.2;
  query::CompiledQuery q(spec, query::SelectivityMode::kIndependent);
  // Partners are the fixed window population, independent of τ.
  EXPECT_NEAR(q.ExpectedWindowPartners(Side::kLeft), 8.0, 1e-12);
  EXPECT_NEAR(q.ExpectedWindowPartners(Side::kRight), 8.0, 1e-12);
  const query::SegmentStats left = q.JoinInputStats(0);
  // S = S_L · σ · N · S_C = 0.5 · 0.25 · 8 = 1.
  EXPECT_NEAR(left.selectivity, 1.0, 1e-12);
  // C̄ = C_L + S_L·C_J + S_L·(σ·N)·C̄_C = 1 + 1.5 + 0.5·2·4 = 6.5 ms.
  EXPECT_NEAR(SimTimeToMillis(left.expected_cost), 6.5, 1e-9);
  // T unchanged by the window kind.
  EXPECT_NEAR(SimTimeToMillis(q.ideal_time()), 13.0, 1e-9);
}

TEST(RowWindowStatsDeathTest, RequiresExactlyOneWindowKind) {
  AQSIOS_GTEST_SET_FLAG(death_test_style, "threadsafe");
  query::QuerySpec spec;
  spec.left_stream = 0;
  spec.right_stream = 1;
  spec.left_ops = {query::MakeSelect(1.0, 0.5)};
  spec.right_ops = {query::MakeSelect(1.0, 0.5)};
  query::OperatorSpec both = query::MakeWindowJoin(1.0, 0.5, 1.0);
  both.window_rows = 4;
  spec.join_op = both;
  EXPECT_DEATH(
      query::CompiledQuery(spec, query::SelectivityMode::kIndependent),
      "exactly one");
  query::OperatorSpec neither = query::MakeWindowJoin(1.0, 0.5, 1.0);
  neither.window_seconds = 0.0;
  spec.join_op = neither;
  EXPECT_DEATH(
      query::CompiledQuery(spec, query::SelectivityMode::kIndependent),
      "exactly one");
}

stream::ArrivalTable AlternatingArrivals(int pairs, SimTime spacing) {
  stream::ArrivalTable table;
  for (int i = 0; i < 2 * pairs; ++i) {
    stream::Arrival a;
    a.id = i;
    a.stream = i % 2;
    a.time = spacing * i;
    a.attribute = 1.0;
    a.join_key = 7;
    table.arrivals.push_back(a);
  }
  return table;
}

TEST(RowWindowEngineTest, EachArrivalJoinsLastNOpposite) {
  core::Dsms dsms(query::SelectivityMode::kCorrelatedAttribute);
  query::QuerySpec spec;
  spec.left_stream = 0;
  spec.right_stream = 1;
  spec.left_ops = {query::MakeSelect(0.1, 1.0)};
  spec.right_ops = {query::MakeSelect(0.1, 1.0)};
  spec.join_op = query::MakeRowWindowJoin(0.1, 1.0, /*rows=*/1);
  spec.left_mean_inter_arrival = 1.0;
  spec.right_mean_inter_arrival = 1.0;
  dsms.AddQuery(spec);
  // Alternating L R L R ... with row window 1: every arrival after the
  // first joins exactly the single resident on the other side.
  dsms.SetArrivals(AlternatingArrivals(/*pairs=*/5, /*spacing=*/1.0));
  const core::RunResult r =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kFcfs));
  EXPECT_EQ(r.counters.composites_generated, 9);
  EXPECT_EQ(r.qos.tuples_emitted, 9);
  EXPECT_GE(r.qos.avg_slowdown, 1.0 - 1e-9);
}

TEST(RowWindowEngineTest, LargerWindowMoreComposites) {
  auto run_with_rows = [](int64_t rows) {
    core::Dsms dsms(query::SelectivityMode::kCorrelatedAttribute);
    query::QuerySpec spec;
    spec.left_stream = 0;
    spec.right_stream = 1;
    spec.left_ops = {query::MakeSelect(0.1, 1.0)};
    spec.right_ops = {query::MakeSelect(0.1, 1.0)};
    spec.join_op = query::MakeRowWindowJoin(0.1, 1.0, rows);
    spec.left_mean_inter_arrival = 1.0;
    spec.right_mean_inter_arrival = 1.0;
    dsms.AddQuery(spec);
    dsms.SetArrivals(AlternatingArrivals(10, 1.0));
    return dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kFcfs))
        .counters.composites_generated;
  };
  const int64_t narrow = run_with_rows(1);
  const int64_t wide = run_with_rows(5);
  EXPECT_GT(wide, narrow);
  // Alternating arrivals, 20 total: arrival k has ceil(k/2) earlier
  // opposite-side tuples, capped by the row window.
  // N=1: arrivals 1..19 join exactly 1 resident each.
  EXPECT_EQ(narrow, 19);
  // N=5: 0+1+1+2+2+3+3+4+4 = 20 for k<9, then 5 each for k=9..19.
  EXPECT_EQ(wide, 20 + 5 * 11);
}

}  // namespace
}  // namespace aqsios::exec
