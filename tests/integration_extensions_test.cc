// Cross-module property tests for the extension features: lp-norm family
// monotonicity, clustered-vs-exact BSD convergence, Chain's memory
// advantage, two-level RR, and whole-pipeline determinism.

#include <gtest/gtest.h>

#include "core/dsms.h"
#include "query/workload.h"

namespace aqsios::core {
namespace {

query::Workload TestWorkload(uint64_t seed, double utilization = 0.95) {
  query::WorkloadConfig config;
  config.num_queries = 30;
  config.num_arrivals = 4000;
  config.utilization = utilization;
  config.seed = seed;
  return query::GenerateWorkload(config);
}

RunResult RunLp(const query::Workload& workload, double p) {
  sched::PolicyConfig policy = sched::PolicyConfig::Of(sched::PolicyKind::kLpNorm);
  policy.lp_norm_p = p;
  return Simulate(workload, policy);
}

TEST(LpFamilyIntegrationTest, P1MatchesHnrExactly) {
  const query::Workload workload = TestWorkload(42);
  const RunResult hnr =
      Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr));
  const RunResult lp1 = RunLp(workload, 1.0);
  // p=1 has no wait dependence: identical schedule, identical QoS.
  EXPECT_DOUBLE_EQ(lp1.qos.avg_slowdown, hnr.qos.avg_slowdown);
  EXPECT_DOUBLE_EQ(lp1.qos.max_slowdown, hnr.qos.max_slowdown);
}

TEST(LpFamilyIntegrationTest, P2MatchesBsdExactly) {
  const query::Workload workload = TestWorkload(42);
  const RunResult bsd =
      Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kBsd));
  const RunResult lp2 = RunLp(workload, 2.0);
  EXPECT_DOUBLE_EQ(lp2.qos.avg_slowdown, bsd.qos.avg_slowdown);
  EXPECT_DOUBLE_EQ(lp2.qos.max_slowdown, bsd.qos.max_slowdown);
}

class LpMonotonicityTest : public testing::TestWithParam<uint64_t> {};

TEST_P(LpMonotonicityTest, PTradesAverageForWorstCase) {
  const query::Workload workload = TestWorkload(GetParam());
  const RunResult low = RunLp(workload, 1.0);
  const RunResult mid = RunLp(workload, 2.0);
  const RunResult high = RunLp(workload, 6.0);
  const RunResult lsf =
      Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kLsf));
  // Average slowdown increases with p (toward LSF's).
  EXPECT_LE(low.qos.avg_slowdown, mid.qos.avg_slowdown * 1.02);
  EXPECT_LE(mid.qos.avg_slowdown, high.qos.avg_slowdown * 1.02);
  EXPECT_LE(high.qos.avg_slowdown, lsf.qos.avg_slowdown * 1.02);
  // Maximum slowdown decreases with p (toward LSF's).
  EXPECT_GE(low.qos.max_slowdown, mid.qos.max_slowdown * 0.98);
  EXPECT_GE(mid.qos.max_slowdown, high.qos.max_slowdown * 0.98);
  EXPECT_GE(high.qos.max_slowdown, lsf.qos.max_slowdown * 0.98);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpMonotonicityTest,
                         testing::Values(42u, 99u, 31337u));

TEST(ClusteredBsdIntegrationTest, ManyClustersNoOverheadApproachesExact) {
  const query::Workload workload = TestWorkload(7);
  const RunResult exact =
      Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kBsd));
  sched::PolicyConfig clustered =
      sched::PolicyConfig::Of(sched::PolicyKind::kBsdClustered);
  clustered.clustered.num_clusters = 512;  // ~one unit per cluster
  clustered.clustered.use_fagin = true;
  const RunResult approx = Simulate(workload, clustered);
  // Without overhead charging and with fine clusters, the approximation
  // should land within a few percent of the exact BSD.
  EXPECT_NEAR(approx.qos.l2_slowdown / exact.qos.l2_slowdown, 1.0, 0.05);
  EXPECT_EQ(approx.qos.tuples_emitted, exact.qos.tuples_emitted);
}

TEST(ClusteredBsdIntegrationTest, CoarseClustersDegradeGracefully) {
  const query::Workload workload = TestWorkload(7);
  sched::PolicyConfig coarse =
      sched::PolicyConfig::Of(sched::PolicyKind::kBsdClustered);
  coarse.clustered.num_clusters = 2;
  const RunResult r = Simulate(workload, coarse);
  // Still a sane schedule: everything emitted, slowdowns valid.
  EXPECT_GT(r.qos.tuples_emitted, 0);
  EXPECT_GE(r.qos.avg_slowdown, 1.0);
}

TEST(ChainIntegrationTest, ChainMinimizesQueueFootprintAtOperatorLevel) {
  query::WorkloadConfig config;
  config.num_queries = 25;
  config.num_arrivals = 4000;
  config.utilization = 0.9;
  config.seed = 11;
  const query::Workload workload = query::GenerateWorkload(config);
  SimulationOptions op_level;
  op_level.level = exec::SchedulingLevel::kOperatorLevel;
  const RunResult chain = Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kChain), op_level);
  const RunResult rr = Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kRoundRobin),
      op_level);
  const RunResult fcfs = Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kFcfs), op_level);
  EXPECT_LT(chain.counters.avg_queued_tuples, rr.counters.avg_queued_tuples);
  EXPECT_LT(chain.counters.avg_queued_tuples,
            fcfs.counters.avg_queued_tuples);
  EXPECT_LT(chain.counters.peak_queued_tuples,
            rr.counters.peak_queued_tuples);
}

TEST(TwoLevelIntegrationTest, BehavesLikeRrAtQueryLevel) {
  const query::Workload workload = TestWorkload(5, 0.8);
  const RunResult rr = Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kRoundRobin));
  const RunResult rrrb = Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kTwoLevelRr));
  // With one unit per query the two-level scheme degenerates to RR.
  EXPECT_DOUBLE_EQ(rr.qos.avg_slowdown, rrrb.qos.avg_slowdown);
}

TEST(DeterminismTest, IdenticalSeedIdenticalRun) {
  const query::Workload a = TestWorkload(123);
  const query::Workload b = TestWorkload(123);
  for (sched::PolicyKind kind :
       {sched::PolicyKind::kBsd, sched::PolicyKind::kLsf,
        sched::PolicyKind::kBsdClustered}) {
    const RunResult ra = Simulate(a, sched::PolicyConfig::Of(kind));
    const RunResult rb = Simulate(b, sched::PolicyConfig::Of(kind));
    EXPECT_DOUBLE_EQ(ra.qos.avg_slowdown, rb.qos.avg_slowdown)
        << sched::PolicyKindName(kind);
    EXPECT_DOUBLE_EQ(ra.qos.l2_slowdown, rb.qos.l2_slowdown)
        << sched::PolicyKindName(kind);
    EXPECT_EQ(ra.counters.operator_invocations,
              rb.counters.operator_invocations)
        << sched::PolicyKindName(kind);
  }
}

TEST(FairnessIntegrationTest, LsfFairerThanHnr) {
  const query::Workload workload = TestWorkload(77);
  SimulationOptions options;
  options.qos.track_per_query = true;
  const RunResult hnr = Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr), options);
  const RunResult lsf = Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kLsf), options);
  EXPECT_GT(lsf.qos.JainFairnessIndex(), hnr.qos.JainFairnessIndex());
  EXPECT_GT(lsf.qos.JainFairnessIndex(), 0.5);
}

TEST(ScaleRegressionTest, NearPaperScaleRuns) {
  // A population close to the paper's 500 registered queries; guards
  // against accidental quadratic blowups in the engine or schedulers.
  query::WorkloadConfig config;
  config.num_queries = 200;
  config.num_arrivals = 8000;
  config.utilization = 0.9;
  config.seed = 404;
  const query::Workload workload = query::GenerateWorkload(config);
  for (sched::PolicyKind kind :
       {sched::PolicyKind::kHnr, sched::PolicyKind::kBsdClustered}) {
    const RunResult r = Simulate(workload, sched::PolicyConfig::Of(kind));
    EXPECT_EQ(r.counters.unit_executions, 200 * 8000)
        << sched::PolicyKindName(kind);
    EXPECT_GT(r.qos.tuples_emitted, 0) << sched::PolicyKindName(kind);
    EXPECT_GE(r.qos.avg_slowdown, 1.0) << sched::PolicyKindName(kind);
  }
}

TEST(WarmupIntegrationTest, WarmupCutReducesCountedTuples) {
  const query::Workload workload = TestWorkload(3, 0.7);
  SimulationOptions all;
  SimulationOptions cut;
  cut.qos.warmup_until = workload.arrivals.Horizon() / 2.0;
  const RunResult full = Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr), all);
  const RunResult trimmed = Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr), cut);
  EXPECT_LT(trimmed.qos.tuples_emitted, full.qos.tuples_emitted);
  EXPECT_GT(trimmed.qos.tuples_emitted, 0);
  // Engine-level counters are unaffected by the metric cut.
  EXPECT_EQ(trimmed.counters.tuples_emitted, full.counters.tuples_emitted);
}

}  // namespace
}  // namespace aqsios::core
