#include "sched/sharing.h"

#include <gtest/gtest.h>

namespace aqsios::sched {
namespace {

MemberSegment Member(query::QueryId q, double selectivity, double cost_s,
                     double ideal_s) {
  MemberSegment m;
  m.query = q;
  m.selectivity = selectivity;
  m.expected_cost = cost_s;
  m.ideal_time = ideal_s;
  return m;
}

TEST(SharingTest, AggregateCountsSharedOperatorOnce) {
  // Two members, each C̄ = 3s, shared op cost 1s:
  // S̄C = 3 + 3 − 1 = 5 (paper §7).
  const std::vector<MemberSegment> members = {Member(0, 0.5, 3.0, 4.0),
                                              Member(1, 0.25, 3.0, 2.0)};
  const GroupAggregate agg = AggregateMembers(members, {0, 1}, 1.0);
  EXPECT_NEAR(agg.shared_cost, 5.0, 1e-12);
  EXPECT_NEAR(agg.sum_selectivity, 0.75, 1e-12);
  EXPECT_NEAR(agg.sum_sel_over_t, 0.5 / 4.0 + 0.25 / 2.0, 1e-12);
  EXPECT_NEAR(agg.min_ideal_time, 2.0, 1e-12);
  // Eq. 7: V = Σ(S/T) / S̄C.
  EXPECT_NEAR(agg.NormalizedRate(), (0.125 + 0.125) / 5.0, 1e-12);
}

TEST(SharingTest, SingletonAggregateMatchesSegmentFormulas) {
  const std::vector<MemberSegment> members = {Member(0, 0.5, 2.0, 4.0)};
  const GroupAggregate agg = AggregateMembers(members, {0}, 1.0);
  EXPECT_NEAR(agg.shared_cost, 2.0, 1e-12);
  EXPECT_NEAR(agg.NormalizedRate(), 0.5 / (2.0 * 4.0), 1e-12);
  EXPECT_NEAR(agg.Phi(), 0.5 / (2.0 * 4.0 * 4.0), 1e-12);
  EXPECT_NEAR(agg.OutputRate(), 0.25, 1e-12);
}

TEST(SharingTest, MaxStrategyUsesBestSegmentButExecutesAll) {
  const std::vector<MemberSegment> members = {
      Member(0, 0.9, 2.0, 2.0),    // v = 0.9/4 = 0.225
      Member(1, 0.1, 5.0, 10.0),   // v = 0.1/50 = 0.002
  };
  const GroupPriority result = ComputeGroupPriority(
      members, 1.0, SharingStrategy::kMax, SharingObjective::kHnr);
  EXPECT_NEAR(result.stats.normalized_rate, 0.225, 1e-12);
  ASSERT_EQ(result.executed_members.size(), 2u);
  EXPECT_TRUE(result.remainder_members.empty());
}

TEST(SharingTest, SumStrategyAggregatesAll) {
  const std::vector<MemberSegment> members = {Member(0, 0.9, 2.0, 2.0),
                                              Member(1, 0.1, 5.0, 10.0)};
  const GroupPriority result = ComputeGroupPriority(
      members, 1.0, SharingStrategy::kSum, SharingObjective::kHnr);
  // S̄C = 2 + 5 − 1 = 6; Σ S/T = 0.45 + 0.01.
  EXPECT_NEAR(result.stats.normalized_rate, 0.46 / 6.0, 1e-12);
  EXPECT_EQ(result.executed_members.size(), 2u);
  EXPECT_TRUE(result.remainder_members.empty());
}

TEST(SharingTest, PdtExcludesPriorityLoweringSegments) {
  // Member 1 is so unproductive that adding it lowers the aggregate; PDT
  // must exclude it.
  const std::vector<MemberSegment> members = {Member(0, 0.9, 2.0, 2.0),
                                              Member(1, 0.01, 50.0, 10.0)};
  const GroupPriority result = ComputeGroupPriority(
      members, 1.0, SharingStrategy::kPdt, SharingObjective::kHnr);
  EXPECT_NEAR(result.stats.normalized_rate, 0.45 / 2.0, 1e-12);
  ASSERT_EQ(result.executed_members.size(), 1u);
  EXPECT_EQ(result.executed_members[0], 0);
  ASSERT_EQ(result.remainder_members.size(), 1u);
  EXPECT_EQ(result.remainder_members[0], 1);
}

TEST(SharingTest, PdtKeepsPriorityRaisingSegments) {
  // Identical members: sharing strictly helps (the shared cost is split),
  // so the PDT should take everyone.
  const std::vector<MemberSegment> members = {Member(0, 0.5, 2.0, 2.0),
                                              Member(1, 0.5, 2.0, 2.0),
                                              Member(2, 0.5, 2.0, 2.0)};
  const GroupPriority result = ComputeGroupPriority(
      members, 1.0, SharingStrategy::kPdt, SharingObjective::kHnr);
  EXPECT_EQ(result.executed_members.size(), 3u);
  EXPECT_TRUE(result.remainder_members.empty());
  // Aggregate: Σ(S/T) = 0.75; S̄C = 6 − 2 = 4.
  EXPECT_NEAR(result.stats.normalized_rate, 0.75 / 4.0, 1e-12);
}

TEST(SharingTest, PdtDominatesMaxAndSum) {
  // The PDT maximizes the aggregate over prefixes, so its priority is at
  // least that of both Max (prefix of 1) and Sum (full set) for any input.
  // Property check over a deterministic family of groups.
  for (int variant = 0; variant < 50; ++variant) {
    std::vector<MemberSegment> members;
    uint64_t state = 1000 + static_cast<uint64_t>(variant);
    auto next01 = [&state]() {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      return static_cast<double>(state >> 11) * 0x1.0p-53;
    };
    const int n = 2 + variant % 8;
    for (int i = 0; i < n; ++i) {
      members.push_back(Member(i, 0.05 + 0.95 * next01(),
                               0.5 + 5.0 * next01(), 0.5 + 10.0 * next01()));
    }
    const double shared = 0.25;
    for (SharingObjective objective :
         {SharingObjective::kHnr, SharingObjective::kBsd}) {
      const double pdt =
          objective == SharingObjective::kHnr
              ? ComputeGroupPriority(members, shared, SharingStrategy::kPdt,
                                     objective)
                    .stats.normalized_rate
              : ComputeGroupPriority(members, shared, SharingStrategy::kPdt,
                                     objective)
                    .stats.phi;
      const double max_strategy =
          objective == SharingObjective::kHnr
              ? ComputeGroupPriority(members, shared, SharingStrategy::kMax,
                                     objective)
                    .stats.normalized_rate
              : ComputeGroupPriority(members, shared, SharingStrategy::kMax,
                                     objective)
                    .stats.phi;
      const double sum_strategy =
          objective == SharingObjective::kHnr
              ? ComputeGroupPriority(members, shared, SharingStrategy::kSum,
                                     objective)
                    .stats.normalized_rate
              : ComputeGroupPriority(members, shared, SharingStrategy::kSum,
                                     objective)
                    .stats.phi;
      EXPECT_GE(pdt, max_strategy - 1e-12) << "variant " << variant;
      EXPECT_GE(pdt, sum_strategy - 1e-12) << "variant " << variant;
    }
  }
}

TEST(SharingTest, BsdObjectiveOrdersByPhi) {
  // Under the BSD objective, a segment with smaller T gets a boost from the
  // 1/T² weighting and should lead the PDT.
  const std::vector<MemberSegment> members = {
      Member(0, 0.5, 2.0, 8.0),  // v_hnr = 0.03125, phi = 0.0039
      Member(1, 0.3, 2.0, 1.0),  // v_hnr = 0.15,    phi = 0.15
  };
  const GroupPriority hnr = ComputeGroupPriority(
      members, 0.5, SharingStrategy::kPdt, SharingObjective::kHnr);
  const GroupPriority bsd = ComputeGroupPriority(
      members, 0.5, SharingStrategy::kPdt, SharingObjective::kBsd);
  EXPECT_EQ(hnr.executed_members.front(), 1);
  EXPECT_EQ(bsd.executed_members.front(), 1);
  EXPECT_GT(bsd.stats.phi, 0.0);
}

TEST(SharingTest, StrategyNames) {
  EXPECT_STREQ(SharingStrategyName(SharingStrategy::kMax), "Max");
  EXPECT_STREQ(SharingStrategyName(SharingStrategy::kSum), "Sum");
  EXPECT_STREQ(SharingStrategyName(SharingStrategy::kPdt), "PDT");
}

}  // namespace
}  // namespace aqsios::sched
