// Tests for left-deep multi-join queries (§5.2's recursive generalization):
// statistics recursion, engine execution, and the end-to-end workload.

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gtest_compat.h"

#include "core/dsms.h"
#include "query/workload.h"

namespace aqsios::query {
namespace {

/// Three-stream query: select -> join(V1) -> join(V2) -> project.
QuerySpec ThreeStreamSpec() {
  QuerySpec spec;
  spec.id = 0;
  spec.left_stream = 0;
  spec.right_stream = 1;
  spec.left_ops = {MakeSelect(1.0, 0.5)};
  spec.right_ops = {MakeSelect(2.0, 0.4)};
  spec.join_op = MakeWindowJoin(3.0, 0.25, /*window=*/2.0);
  JoinStage stage;
  stage.stream = 2;
  stage.side_ops = {MakeSelect(1.0, 0.8)};
  stage.join = MakeWindowJoin(2.0, 0.5, /*window=*/4.0);
  stage.mean_inter_arrival = 0.5;
  spec.extra_stages = {stage};
  spec.common_ops = {MakeProject(4.0)};
  spec.left_mean_inter_arrival = 0.1;
  spec.right_mean_inter_arrival = 0.2;
  return spec;
}

TEST(MultiJoinStatsTest, InputAndStageCounts) {
  CompiledQuery q(ThreeStreamSpec(), SelectivityMode::kIndependent);
  EXPECT_EQ(q.num_join_inputs(), 3);
  EXPECT_EQ(q.num_join_stages(), 2);
  EXPECT_EQ(q.JoinInputStream(0), 0);
  EXPECT_EQ(q.JoinInputStream(1), 1);
  EXPECT_EQ(q.JoinInputStream(2), 2);
  EXPECT_NEAR(q.StageJoin(0).cost_ms, 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(q.StageJoin(1).window_seconds, 4.0);
}

TEST(MultiJoinStatsTest, IdealTimeGeneralizedDefinition6) {
  CompiledQuery q(ThreeStreamSpec(), SelectivityMode::kIndependent);
  // T = C_L + C_R1 + 2·C_J1 + C_side2 + 2·C_J2 + C_C
  //   = 1 + 2 + 6 + 1 + 4 + 4 = 18 ms.
  EXPECT_NEAR(SimTimeToMillis(q.ideal_time()), 18.0, 1e-9);
}

TEST(MultiJoinStatsTest, TwoStreamStatsUnchangedByGeneralization) {
  // A plain two-stream query must produce exactly the §5.2 values through
  // the recursive code path (cross-checked against the worked numbers in
  // query_stats_test.cc).
  QuerySpec spec = ThreeStreamSpec();
  spec.extra_stages.clear();
  spec.common_ops = {MakeProject(4.0)};
  CompiledQuery q(spec, SelectivityMode::kIndependent);
  const SegmentStats left = q.JoinInputStats(0);
  EXPECT_NEAR(left.selectivity, 0.5, 1e-9);
  EXPECT_NEAR(SimTimeToMillis(left.expected_cost), 4.5, 1e-9);
  const SegmentStats right = q.JoinInputStats(1);
  EXPECT_NEAR(right.selectivity, 1.0, 1e-9);
  EXPECT_NEAR(SimTimeToMillis(right.expected_cost), 7.2, 1e-9);
}

TEST(MultiJoinStatsTest, RecursiveSelectivityAndCost) {
  CompiledQuery q(ThreeStreamSpec(), SelectivityMode::kIndependent);
  // Stage-1 amplification: ρ_2·V_1·σ_1 = (0.8/0.5)·4·0.5 = 3.2.
  // Input 0: immediate partners at stage 0 = ρ_1·V_0·σ_0 = 2·2·0.25 = 1;
  //   S = S_L · 1 · 3.2 · S_C = 0.5·3.2 = 1.6.
  const SegmentStats left = q.JoinInputStats(0);
  EXPECT_NEAR(left.selectivity, 1.6, 1e-9);
  // C̄(0) = C_L + S_L·(c_J0 + 1·D_0) with
  //   D_0 = c_J1 + 3.2·C̄_C = 2ms + 3.2·4ms = 14.8ms
  //   C̄(0) = 1 + 0.5·(3 + 14.8) = 9.9 ms.
  EXPECT_NEAR(SimTimeToMillis(left.expected_cost), 9.9, 1e-9);

  // Input 2 probes the accumulated composites of stage 0:
  //   λ_0 = 2·V_0·σ_0·ρ_0·ρ_1 = 2·2·0.25·(0.5/0.1)·(0.4/0.2) = 10/s
  //   partners = λ_0·V_1·σ_1 = 10·4·0.5 = 20;
  //   S(2) = S_side2·20·S_C = 0.8·20 = 16.
  const SegmentStats third = q.JoinInputStats(2);
  EXPECT_NEAR(third.selectivity, 16.0, 1e-9);
  //   C̄(2) = C_side2 + S_side2·(c_J1 + 20·C̄_C) = 1 + 0.8·(2 + 80) = 66.6ms.
  EXPECT_NEAR(SimTimeToMillis(third.expected_cost), 66.6, 1e-9);
}

TEST(MultiJoinStatsTest, IdealCompositePathPerTrigger) {
  CompiledQuery q(ThreeStreamSpec(), SelectivityMode::kIndependent);
  // Trigger input 0: C_L + c_J0 + c_J1 + C_C = 1+3+2+4 = 10 ms.
  EXPECT_NEAR(SimTimeToMillis(q.IdealCompositePathCost(0)), 10.0, 1e-9);
  // Trigger input 1: 2+3+2+4 = 11 ms.
  EXPECT_NEAR(SimTimeToMillis(q.IdealCompositePathCost(1)), 11.0, 1e-9);
  // Trigger input 2 enters at stage 1 only: 1+2+4 = 7 ms.
  EXPECT_NEAR(SimTimeToMillis(q.IdealCompositePathCost(2)), 7.0, 1e-9);
}

TEST(MultiJoinStatsTest, ExpectedWorkPerArrivalPerStream) {
  CompiledQuery q(ThreeStreamSpec(), SelectivityMode::kIndependent);
  EXPECT_NEAR(SimTimeToMillis(q.ExpectedWorkPerArrival(0)), 9.9, 1e-9);
  EXPECT_GT(q.ExpectedWorkPerArrival(1), 0.0);
  EXPECT_NEAR(SimTimeToMillis(q.ExpectedWorkPerArrival(2)), 66.6, 1e-9);
}

TEST(MultiJoinStatsDeathTest, Validation) {
  AQSIOS_GTEST_SET_FLAG(death_test_style, "threadsafe");
  // Duplicate stream across inputs.
  QuerySpec dup = ThreeStreamSpec();
  dup.extra_stages[0].stream = 1;
  EXPECT_DEATH(CompiledQuery(dup, SelectivityMode::kIndependent),
               "distinct");
  // Extra stages on a single-stream query.
  QuerySpec single = ThreeStreamSpec();
  single.right_stream = -1;
  single.right_ops.clear();
  single.join_op.reset();
  EXPECT_DEATH(CompiledQuery(single, SelectivityMode::kIndependent), "");
}

// --- Engine execution -------------------------------------------------------

stream::ArrivalTable ThreeArrivals(SimTime t0, SimTime t1, SimTime t2) {
  stream::ArrivalTable table;
  const SimTime times[] = {t0, t1, t2};
  std::vector<std::pair<SimTime, int>> order;
  for (int s = 0; s < 3; ++s) order.push_back({times[s], s});
  std::sort(order.begin(), order.end());
  for (size_t i = 0; i < order.size(); ++i) {
    stream::Arrival a;
    a.id = static_cast<int64_t>(i);
    a.stream = order[i].second;
    a.time = order[i].first;
    a.attribute = 1.0;  // passes every predicate
    a.join_key = 7;
    table.arrivals.push_back(a);
  }
  return table;
}

QuerySpec DeterministicThreeStream() {
  QuerySpec spec;
  spec.left_stream = 0;
  spec.right_stream = 1;
  spec.left_ops = {MakeSelect(1.0, 1.0)};
  spec.right_ops = {MakeSelect(1.0, 1.0)};
  spec.join_op = MakeWindowJoin(1.0, 1.0, /*window=*/10.0);
  JoinStage stage;
  stage.stream = 2;
  stage.side_ops = {MakeSelect(1.0, 1.0)};
  stage.join = MakeWindowJoin(1.0, 1.0, /*window=*/10.0);
  stage.mean_inter_arrival = 0.1;
  spec.extra_stages = {stage};
  spec.common_ops = {MakeProject(1.0)};
  spec.left_mean_inter_arrival = 0.1;
  spec.right_mean_inter_arrival = 0.1;
  return spec;
}

TEST(MultiJoinEngineTest, ThreeWayCompositeIdleSlowdownIsOne) {
  core::Dsms dsms(SelectivityMode::kCorrelatedAttribute);
  dsms.AddQuery(DeterministicThreeStream());
  dsms.SetArrivals(ThreeArrivals(0.0, 0.05, 0.1));
  const core::RunResult r =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kFcfs));
  // One pair composite at stage 0, one triple composite emitted.
  EXPECT_EQ(r.counters.composites_generated, 2);
  ASSERT_EQ(r.qos.tuples_emitted, 1);
  // Idle system: the triple's trigger (stream 2 at 0.1) runs select+join2+
  // project = 3 ms after its arrival.
  EXPECT_NEAR(SimTimeToMillis(r.qos.avg_response), 3.0, 1e-9);
  EXPECT_NEAR(r.qos.avg_slowdown, 1.0, 1e-9);
}

TEST(MultiJoinEngineTest, LateFirstStreamTriggersDeeperPath) {
  // Stream 0 arrives LAST: the pair and triple form when its tuple finally
  // probes through both stages; ideal path = C_L + c_J0 + c_J1 + C_C = 4ms.
  core::Dsms dsms(SelectivityMode::kCorrelatedAttribute);
  dsms.AddQuery(DeterministicThreeStream());
  dsms.SetArrivals(ThreeArrivals(/*t0=*/0.2, /*t1=*/0.0, /*t2=*/0.05));
  const core::RunResult r =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kFcfs));
  ASSERT_EQ(r.qos.tuples_emitted, 1);
  EXPECT_NEAR(SimTimeToMillis(r.qos.avg_response), 4.0, 1e-9);
  EXPECT_NEAR(r.qos.avg_slowdown, 1.0, 1e-9);
}

TEST(MultiJoinEngineTest, WindowLimitsDeepJoins) {
  core::Dsms dsms(SelectivityMode::kCorrelatedAttribute);
  QuerySpec spec = DeterministicThreeStream();
  spec.extra_stages[0].join = MakeWindowJoin(1.0, 1.0, /*window=*/0.01);
  dsms.AddQuery(spec);
  // Stream 2 arrives 1 s after the others: pair forms, triple does not.
  dsms.SetArrivals(ThreeArrivals(0.0, 0.05, 1.0));
  const core::RunResult r =
      dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kFcfs));
  EXPECT_EQ(r.counters.composites_generated, 1);
  EXPECT_EQ(r.qos.tuples_emitted, 0);
}

TEST(MultiJoinEngineTest, PolicyInvariantOutputs) {
  query::WorkloadConfig config;
  config.num_queries = 6;
  config.num_arrivals = 1800;
  config.utilization = 0.8;
  config.multi_stream = true;
  config.join_streams = 3;
  config.arrival_pattern = ArrivalPattern::kPoisson;
  config.poisson_rate = 40.0;
  config.window_min_seconds = 0.2;
  config.window_max_seconds = 0.8;
  config.num_join_keys = 1;
  config.seed = 31;
  const Workload workload = GenerateWorkload(config);
  EXPECT_EQ(workload.plan.num_streams(), 3);
  const core::RunResult a = core::Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr));
  const core::RunResult b = core::Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kFcfs));
  EXPECT_GT(a.qos.tuples_emitted, 0);
  EXPECT_EQ(a.qos.tuples_emitted, b.qos.tuples_emitted);
  EXPECT_EQ(a.counters.composites_generated,
            b.counters.composites_generated);
  EXPECT_GE(a.qos.avg_slowdown, 1.0);
  EXPECT_GE(b.qos.avg_slowdown, 1.0);
}

TEST(MultiJoinWorkloadTest, CalibrationAcrossThreeStreams) {
  query::WorkloadConfig config;
  config.num_queries = 8;
  config.num_arrivals = 3000;
  config.utilization = 0.7;
  config.multi_stream = true;
  config.join_streams = 3;
  config.arrival_pattern = ArrivalPattern::kPoisson;
  config.poisson_rate = 30.0;
  config.window_min_seconds = 0.2;
  config.window_max_seconds = 1.0;
  config.num_join_keys = 1;
  config.seed = 77;
  const Workload w = GenerateWorkload(config);
  double rate = 0.0;
  for (int s = 0; s < 3; ++s) {
    rate += w.plan.ExpectedWorkPerArrival(s) / w.arrivals.MeanInterArrival(s);
  }
  EXPECT_NEAR(rate, 0.7, 1e-9);
}

}  // namespace
}  // namespace aqsios::query
