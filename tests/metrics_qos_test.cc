#include "metrics/qos.h"

#include <cmath>

#include <gtest/gtest.h>

namespace aqsios::metrics {
namespace {

TEST(ClassKeyTest, DecileRounding) {
  EXPECT_EQ(MakeClassKey(2, 0.5).selectivity_decile, 5);
  EXPECT_EQ(MakeClassKey(2, 1.0).selectivity_decile, 10);
  EXPECT_EQ(MakeClassKey(2, 0.14).selectivity_decile, 1);
  EXPECT_EQ(MakeClassKey(0, 0.16).selectivity_decile, 2);
}

TEST(ClassKeyTest, Ordering) {
  const ClassKey a = MakeClassKey(0, 0.5);
  const ClassKey b = MakeClassKey(0, 0.6);
  const ClassKey c = MakeClassKey(1, 0.1);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, MakeClassKey(0, 0.5));
}

TEST(QosCollectorTest, AggregatesBasics) {
  QosCollector collector;
  collector.RecordOutput(0, 0, 0.5, /*arrival=*/0.0, /*response=*/0.010,
                         /*slowdown=*/2.0);
  collector.RecordOutput(1, 1, 0.8, 0.1, 0.020, 4.0);
  const QosSnapshot snap = collector.Snapshot();
  EXPECT_EQ(snap.tuples_emitted, 2);
  EXPECT_NEAR(snap.avg_response, 0.015, 1e-12);
  EXPECT_NEAR(snap.max_response, 0.020, 1e-12);
  EXPECT_NEAR(snap.avg_slowdown, 3.0, 1e-12);
  EXPECT_NEAR(snap.max_slowdown, 4.0, 1e-12);
  EXPECT_NEAR(snap.l2_slowdown, std::sqrt(4.0 + 16.0), 1e-12);
  EXPECT_NEAR(snap.rms_slowdown, std::sqrt(10.0), 1e-12);
}

TEST(QosCollectorTest, PerClassBreakdown) {
  QosCollector collector;
  collector.RecordOutput(0, 0, 0.5, 0.0, 0.010, 2.0);
  collector.RecordOutput(1, 0, 0.5, 0.0, 0.010, 4.0);
  collector.RecordOutput(2, 3, 1.0, 0.0, 0.010, 10.0);
  const QosSnapshot snap = collector.Snapshot();
  ASSERT_EQ(snap.per_class_slowdown.size(), 2u);
  const auto& low = snap.per_class_slowdown.at(MakeClassKey(0, 0.5));
  EXPECT_EQ(low.count(), 2);
  EXPECT_NEAR(low.Mean(), 3.0, 1e-12);
  const auto& high = snap.per_class_slowdown.at(MakeClassKey(3, 1.0));
  EXPECT_EQ(high.count(), 1);
  EXPECT_NEAR(high.Mean(), 10.0, 1e-12);
}

TEST(QosCollectorTest, PerClassDisabled) {
  QosCollector::Options options;
  options.track_per_class = false;
  QosCollector collector(options);
  collector.RecordOutput(0, 0, 0.5, 0.0, 0.010, 2.0);
  EXPECT_TRUE(collector.Snapshot().per_class_slowdown.empty());
}

TEST(QosCollectorTest, WarmupCutDropsEarlyArrivals) {
  QosCollector::Options options;
  options.warmup_until = 1.0;
  QosCollector collector(options);
  collector.RecordOutput(0, 0, 0.5, /*arrival=*/0.5, 0.010, 2.0);
  collector.RecordOutput(0, 0, 0.5, /*arrival=*/1.5, 0.010, 6.0);
  const QosSnapshot snap = collector.Snapshot();
  EXPECT_EQ(snap.tuples_emitted, 1);
  EXPECT_NEAR(snap.avg_slowdown, 6.0, 1e-12);
}

TEST(QosCollectorTest, QuantilesFromHistogram) {
  QosCollector collector;
  for (int i = 1; i <= 1000; ++i) {
    collector.RecordOutput(0, 0, 0.5, 0.0, 0.001 * i, 1.0 + i * 0.01);
  }
  const QosSnapshot snap = collector.Snapshot();
  EXPECT_NEAR(snap.p50_slowdown, 1.0 + 500 * 0.01, 0.5);
  EXPECT_NEAR(snap.p95_slowdown, 1.0 + 950 * 0.01, 0.6);
  EXPECT_NEAR(snap.p99_slowdown, 1.0 + 990 * 0.01, 0.6);
  EXPECT_NEAR(snap.p999_slowdown, 1.0 + 999 * 0.01, 0.6);
  EXPECT_LE(snap.p50_slowdown, snap.p95_slowdown);
  EXPECT_LE(snap.p95_slowdown, snap.p99_slowdown);
  EXPECT_LE(snap.p99_slowdown, snap.p999_slowdown);
  EXPECT_LE(snap.p999_slowdown, snap.max_slowdown);
}

TEST(QosCollectorTest, QuantilesAreDeterministic) {
  // The histogram has no reservoir and no seed: two collectors fed the same
  // observations in different orders agree bit-for-bit on every quantile.
  QosCollector forward;
  QosCollector backward;
  for (int i = 1; i <= 500; ++i) {
    forward.RecordOutput(0, 0, 0.5, 0.0, 0.001, 1.0 + (i % 37) * 0.4);
  }
  for (int i = 500; i >= 1; --i) {
    backward.RecordOutput(0, 0, 0.5, 0.0, 0.001, 1.0 + (i % 37) * 0.4);
  }
  const QosSnapshot a = forward.Snapshot();
  const QosSnapshot b = backward.Snapshot();
  EXPECT_DOUBLE_EQ(a.p50_slowdown, b.p50_slowdown);
  EXPECT_DOUBLE_EQ(a.p95_slowdown, b.p95_slowdown);
  EXPECT_DOUBLE_EQ(a.p99_slowdown, b.p99_slowdown);
  EXPECT_DOUBLE_EQ(a.p999_slowdown, b.p999_slowdown);
}

TEST(QosCollectorTest, SnapshotToStringMentionsKeyMetrics) {
  QosCollector collector;
  collector.RecordOutput(0, 0, 0.5, 0.0, 0.010, 2.0);
  const std::string text = collector.Snapshot().ToString();
  EXPECT_NE(text.find("avg_slowdown"), std::string::npos);
  EXPECT_NE(text.find("l2_slowdown"), std::string::npos);
}

TEST(QosCollectorTest, PerQueryTrackingAndJainIndex) {
  QosCollector::Options options;
  options.track_per_query = true;
  QosCollector collector(options);
  // Two queries with equal mean slowdowns: perfectly fair.
  collector.RecordOutput(0, 0, 0.5, 0.0, 0.010, 4.0);
  collector.RecordOutput(1, 0, 0.5, 0.0, 0.010, 4.0);
  QosSnapshot snap = collector.Snapshot();
  ASSERT_EQ(snap.per_query_slowdown.size(), 2u);
  EXPECT_NEAR(snap.JainFairnessIndex(), 1.0, 1e-12);

  // Add a badly starved third query: fairness drops.
  collector.RecordOutput(2, 0, 0.5, 0.0, 0.010, 400.0);
  snap = collector.Snapshot();
  // Jain = (4+4+400)^2 / (3*(16+16+160000)).
  EXPECT_NEAR(snap.JainFairnessIndex(),
              408.0 * 408.0 / (3.0 * 160032.0), 1e-9);
  EXPECT_LT(snap.JainFairnessIndex(), 0.5);
}

TEST(QosCollectorTest, JainIndexZeroWithoutPerQueryTracking) {
  QosCollector collector;  // default: per-query off
  collector.RecordOutput(0, 0, 0.5, 0.0, 0.010, 2.0);
  EXPECT_DOUBLE_EQ(collector.Snapshot().JainFairnessIndex(), 0.0);
}

TEST(QosCollectorTest, EmptySnapshot) {
  QosCollector collector;
  const QosSnapshot snap = collector.Snapshot();
  EXPECT_EQ(snap.tuples_emitted, 0);
  EXPECT_DOUBLE_EQ(snap.avg_slowdown, 0.0);
  EXPECT_DOUBLE_EQ(snap.l2_slowdown, 0.0);
}

}  // namespace
}  // namespace aqsios::metrics
