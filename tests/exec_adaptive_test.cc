// Tests for statistics drift and the adaptive monitor.

#include <gtest/gtest.h>

#include "gtest_compat.h"

#include "core/dsms.h"
#include "exec/stats_monitor.h"
#include "query/workload.h"

namespace aqsios::exec {
namespace {

using core::RunResult;
using core::Simulate;
using core::SimulatePlan;
using core::SimulationOptions;

TEST(DriftModelTest, ActualSelectivityDefaultsToAssumed) {
  query::OperatorSpec op = query::MakeSelect(1.0, 0.4);
  EXPECT_DOUBLE_EQ(op.EffectiveActualSelectivity(), 0.4);
  op.actual_selectivity = 0.7;
  EXPECT_DOUBLE_EQ(op.EffectiveActualSelectivity(), 0.7);
}

TEST(DriftModelTest, ActualStatsDifferFromAssumed) {
  query::QuerySpec spec;
  spec.left_stream = 0;
  query::OperatorSpec select = query::MakeSelect(1.0, 0.2);
  select.actual_selectivity = 0.8;
  spec.left_ops = {select, query::MakeProject(2.0)};
  query::CompiledQuery q(spec, query::SelectivityMode::kIndependent);
  EXPECT_NEAR(q.ChainSegmentStats(0).selectivity, 0.2, 1e-12);
  EXPECT_NEAR(q.ActualChainSegmentStats(0).selectivity, 0.8, 1e-12);
  // C̄: assumed 1 + 0.2·2 vs actual 1 + 0.8·2.
  EXPECT_NEAR(SimTimeToMillis(q.ChainSegmentStats(0).expected_cost), 1.4,
              1e-9);
  EXPECT_NEAR(SimTimeToMillis(q.ActualChainSegmentStats(0).expected_cost),
              2.6, 1e-9);
  EXPECT_NEAR(SimTimeToMillis(q.ActualExpectedWorkPerArrival(0)), 2.6, 1e-9);
}

TEST(DriftModelTest, WorkloadCalibratesAgainstActualLoad) {
  query::WorkloadConfig config;
  config.num_queries = 20;
  config.num_arrivals = 2000;
  config.utilization = 0.8;
  config.seed = 5;
  config.selectivity_misestimation = 0.5;
  const query::Workload w = query::GenerateWorkload(config);
  const double tau = w.arrivals.MeanInterArrival();
  // Actual work hits the target; assumed work generally does not.
  EXPECT_NEAR(w.plan.ActualExpectedWorkPerArrival(0) / tau, 0.8, 1e-9);
  EXPECT_GT(std::abs(w.plan.ExpectedWorkPerArrival(0) / tau - 0.8), 1e-3);
  // Some operator really drifted.
  bool any_drift = false;
  for (const auto& q : w.plan.queries()) {
    for (const auto& op : q.spec().left_ops) {
      if (op.actual_selectivity >= 0.0 &&
          op.actual_selectivity != op.selectivity) {
        any_drift = true;
      }
    }
  }
  EXPECT_TRUE(any_drift);
}

// --- StatsMonitor unit behaviour ------------------------------------------------

class FakeScheduler : public sched::Scheduler {
 public:
  void Attach(const sched::UnitTable* /*units*/) override {}
  void OnEnqueue(int /*unit*/) override {}
  void OnDequeue(int /*unit*/) override {}
  bool PickNext(SimTime /*now*/, sched::SchedulingCost* /*cost*/,
                std::vector<int>* /*out*/) override {
    return false;
  }
  void OnStatsUpdated() override { ++updates; }
  void ResyncQueues(SimTime /*now*/) override {}
  const char* name() const override { return "fake"; }

  int updates = 0;
};

TEST(StatsMonitorTest, EwmaConvergesToObservations) {
  sched::UnitTable units(1);
  units[0].id = 0;
  units[0].stats.selectivity = 0.9;   // assumed
  units[0].stats.expected_cost = 0.010;
  units[0].stats.ideal_time = 0.010;
  sched::RederiveUnitStats(&units[0].stats);

  FakeScheduler scheduler;
  AdaptationConfig config;
  config.enabled = true;
  config.period = 1.0;
  config.ewma_alpha = 0.5;
  config.min_executions = 10;
  StatsMonitor monitor(config, &units, &scheduler);

  // Observed behaviour: selectivity 0.1, cost 2 ms.
  SimTime now = 0.0;
  for (int tick = 0; tick < 12; ++tick) {
    for (int i = 0; i < 100; ++i) {
      monitor.OnExecutionStart(0);
      monitor.AddBusyTime(0.002);
      if (i % 10 == 0) monitor.AddEmission();  // 10% selectivity
    }
    now += 1.0;
    EXPECT_TRUE(monitor.MaybeAdapt(now));
  }
  EXPECT_EQ(monitor.ticks(), 12);
  EXPECT_EQ(scheduler.updates, 12);
  EXPECT_NEAR(monitor.EstimatedSelectivity(0), 0.1, 0.01);
  EXPECT_NEAR(monitor.EstimatedCost(0), 0.002, 1e-5);
  EXPECT_NEAR(units[0].stats.selectivity, 0.1, 0.01);
  EXPECT_NEAR(units[0].stats.output_rate, 0.1 / 0.002, 3.0);
}

TEST(StatsMonitorTest, FewSamplesKeepPriorEstimate) {
  sched::UnitTable units(1);
  units[0].id = 0;
  units[0].stats.selectivity = 0.9;
  units[0].stats.expected_cost = 0.010;
  units[0].stats.ideal_time = 0.010;
  sched::RederiveUnitStats(&units[0].stats);
  FakeScheduler scheduler;
  AdaptationConfig config;
  config.enabled = true;
  config.period = 1.0;
  config.min_executions = 50;
  StatsMonitor monitor(config, &units, &scheduler);
  for (int i = 0; i < 10; ++i) {  // below min_executions
    monitor.OnExecutionStart(0);
    monitor.AddBusyTime(0.002);
  }
  EXPECT_TRUE(monitor.MaybeAdapt(1.5));
  EXPECT_NEAR(monitor.EstimatedSelectivity(0), 0.9, 1e-12);
}

TEST(StatsMonitorTest, NoTickBeforePeriod) {
  sched::UnitTable units(1);
  units[0].id = 0;
  units[0].stats.expected_cost = 0.010;
  units[0].stats.ideal_time = 0.010;
  FakeScheduler scheduler;
  AdaptationConfig config;
  config.enabled = true;
  config.period = 2.0;
  StatsMonitor monitor(config, &units, &scheduler);
  EXPECT_FALSE(monitor.MaybeAdapt(1.0));
  EXPECT_TRUE(monitor.MaybeAdapt(2.5));
  EXPECT_FALSE(monitor.MaybeAdapt(2.6));
}

// --- End-to-end adaptation -------------------------------------------------------

query::Workload DriftedWorkload(uint64_t seed) {
  query::WorkloadConfig config;
  config.num_queries = 25;
  config.num_arrivals = 6000;
  config.utilization = 0.92;
  config.seed = seed;
  config.selectivity_misestimation = 0.8;
  return query::GenerateWorkload(config);
}

/// Builds the oracle twin: assumed statistics replaced by the actual ones.
query::GlobalPlan OraclePlan(const query::Workload& workload) {
  std::vector<query::CompiledQuery> queries;
  for (const query::CompiledQuery& q : workload.plan.queries()) {
    query::QuerySpec spec = q.spec();
    for (query::OperatorSpec& op : spec.left_ops) {
      op.selectivity = op.EffectiveActualSelectivity();
      op.actual_selectivity = -1.0;
    }
    queries.emplace_back(std::move(spec), q.selectivity_mode());
  }
  return query::GlobalPlan(std::move(queries), {}, 1);
}

class AdaptiveEndToEndTest : public testing::TestWithParam<uint64_t> {};

TEST_P(AdaptiveEndToEndTest, AdaptiveHnrApproachesOracle) {
  const query::Workload workload = DriftedWorkload(GetParam());

  const RunResult stale = Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr));

  SimulationOptions adaptive_options;
  adaptive_options.adaptation.enabled = true;
  adaptive_options.adaptation.period = 0.25;
  const RunResult adaptive =
      Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr),
               adaptive_options);
  EXPECT_GT(adaptive.counters.adaptation_ticks, 0);

  const query::GlobalPlan oracle_plan = OraclePlan(workload);
  const RunResult oracle =
      SimulatePlan(oracle_plan, workload.arrivals,
                   sched::PolicyConfig::Of(sched::PolicyKind::kHnr));

  // Identical tuple flow in all three runs (filtering is execution-side).
  EXPECT_EQ(stale.qos.tuples_emitted, adaptive.qos.tuples_emitted);
  EXPECT_EQ(stale.qos.tuples_emitted, oracle.qos.tuples_emitted);

  // Oracle <= adaptive <= stale (with a noise margin): monitoring recovers
  // most of what stale statistics lose.
  EXPECT_LT(oracle.qos.avg_slowdown, stale.qos.avg_slowdown);
  EXPECT_LT(adaptive.qos.avg_slowdown, stale.qos.avg_slowdown * 1.001);
  const double stale_gap = stale.qos.avg_slowdown - oracle.qos.avg_slowdown;
  const double adaptive_gap =
      adaptive.qos.avg_slowdown - oracle.qos.avg_slowdown;
  EXPECT_LT(adaptive_gap, 0.75 * stale_gap)
      << "adaptation should close most of the stale-statistics gap";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptiveEndToEndTest,
                         testing::Values(42u, 7u, 2024u));

TEST(AdaptiveEngineDeathTest, RequiresQueryLevel) {
  AQSIOS_GTEST_SET_FLAG(death_test_style, "threadsafe");
  query::WorkloadConfig config;
  config.num_queries = 4;
  config.num_arrivals = 100;
  config.seed = 1;
  const query::Workload workload = query::GenerateWorkload(config);
  SimulationOptions options;
  options.adaptation.enabled = true;
  options.level = SchedulingLevel::kOperatorLevel;
  EXPECT_DEATH(Simulate(workload,
                        sched::PolicyConfig::Of(sched::PolicyKind::kHnr),
                        options),
               "query-level");
}

}  // namespace
}  // namespace aqsios::exec
