// Contract of the elastic rebalancing runtime (core/rebalance.h +
// the elastic path of core/sharded_dsms.cc):
//  * rebalance enabled at one shard replays the classic engine byte for byte
//    (the epoch protocol defers idle clock jumps but changes no transition);
//  * elastic runs are deterministic: repeated runs and different worker
//    thread counts produce identical merged results and identical
//    migration/steal counts;
//  * emissions stay schedule-invariant under migration and stealing;
//  * the controller's hysteresis, greedy selection, and anti-ping-pong guard
//    behave as documented;
//  * LoadImbalance averages over populated shards only.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dsms.h"
#include "core/rebalance.h"
#include "core/report.h"
#include "core/sharded_dsms.h"
#include "query/workload.h"
#include "sched/policy.h"

namespace aqsios::core {
namespace {

query::Workload Testbed(int queries, int64_t arrivals,
                        bool multi_stream = false,
                        int sharing_group_size = 0) {
  query::WorkloadConfig config;
  config.num_queries = queries;
  config.num_arrivals = arrivals;
  config.seed = 42;
  config.utilization = 0.9;
  config.multi_stream = multi_stream;
  config.sharing_group_size = sharing_group_size;
  return query::GenerateWorkload(config);
}

sched::PolicyConfig Policy(sched::PolicyKind kind) {
  return sched::PolicyConfig::Of(kind);
}

SimulationOptions ElasticOptions(int shards) {
  SimulationOptions options;
  options.shards = shards;
  options.qos.track_per_query = true;
  options.rebalance.enabled = true;
  return options;
}

// --- LoadImbalance (fix: empty shards must not dilute the mean) -----------

ShardRunStats MakeShardStats(int shard, int num_queries, double busy) {
  ShardRunStats stats;
  stats.shard = shard;
  stats.num_queries = num_queries;
  stats.busy_seconds = busy;
  return stats;
}

TEST(LoadImbalanceTest, AveragesOverPopulatedShardsOnly) {
  ShardedRunResult run;
  run.shard_stats.push_back(MakeShardStats(0, 3, 1.0));
  run.shard_stats.push_back(MakeShardStats(1, 0, 0.0));  // hash left it empty
  run.shard_stats.push_back(MakeShardStats(2, 3, 1.0));
  run.shard_stats.push_back(MakeShardStats(3, 0, 0.0));
  // Two equally loaded shards are perfectly balanced; counting the two empty
  // shards in the mean used to report 2.0 here.
  EXPECT_DOUBLE_EQ(run.LoadImbalance(), 1.0);
}

TEST(LoadImbalanceTest, RatioOverPopulatedShards) {
  ShardedRunResult run;
  run.shard_stats.push_back(MakeShardStats(0, 2, 2.0));
  run.shard_stats.push_back(MakeShardStats(1, 2, 1.0));
  run.shard_stats.push_back(MakeShardStats(2, 2, 1.0));
  run.shard_stats.push_back(MakeShardStats(3, 0, 0.0));
  EXPECT_DOUBLE_EQ(run.LoadImbalance(), 1.5);  // 2 / (4/3) over 3 shards
}

TEST(LoadImbalanceTest, NoWorkIsBalanced) {
  ShardedRunResult run;
  EXPECT_DOUBLE_EQ(run.LoadImbalance(), 1.0);
  run.shard_stats.push_back(MakeShardStats(0, 0, 0.0));
  run.shard_stats.push_back(MakeShardStats(1, 0, 0.0));
  EXPECT_DOUBLE_EQ(run.LoadImbalance(), 1.0);
}

// --- RebalanceController ---------------------------------------------------

TEST(RebalanceControllerTest, IdleControllerIsBalancedAndInactive) {
  RebalanceController controller(RebalanceConfig{}, 4, 8);
  EXPECT_DOUBLE_EQ(controller.Imbalance(), 1.0);
  EXPECT_FALSE(controller.active());
}

TEST(RebalanceControllerTest, HysteresisBandGatesActivation) {
  RebalanceConfig config;
  config.ewma_alpha = 1.0;  // EWMA = last epoch, for easy arithmetic
  config.imbalance_high = 1.5;
  config.imbalance_low = 1.1;
  RebalanceController controller(config, 2, 2);
  std::vector<int> owner = {0, 1};
  // Imbalance 1.2: inside the band, stays inactive, no migrations.
  auto moves = controller.OnEpoch({1.2, 0.8}, {1.2, 0.8}, owner);
  EXPECT_FALSE(controller.active());
  EXPECT_TRUE(moves.empty());
  // Imbalance 1.8: crosses imbalance_high, activates.
  moves = controller.OnEpoch({1.8, 0.2}, {1.8, 0.2}, owner);
  EXPECT_TRUE(controller.active());
  // Imbalance 1.2 again: still above imbalance_low, stays active.
  moves = controller.OnEpoch({1.2, 0.8}, {1.2, 0.8}, owner);
  EXPECT_TRUE(controller.active());
  // Balanced epoch: drops below imbalance_low, deactivates.
  moves = controller.OnEpoch({1.0, 1.0}, {1.0, 1.0}, owner);
  EXPECT_FALSE(controller.active());
}

TEST(RebalanceControllerTest, MigratesLargestGroupHottestToCoolest) {
  RebalanceConfig config;
  config.ewma_alpha = 1.0;
  RebalanceController controller(config, 2, 3);
  // Groups 0 (1.1) and 1 (0.4) on shard 0, group 2 (0.5) on shard 1.
  const std::vector<int> owner = {0, 0, 1};
  const auto moves =
      controller.OnEpoch({1.5, 0.5}, {1.1, 0.4, 0.5}, owner);
  // Imbalance 1.5 > 1.2 activates. Group 0 (1.1) fails the anti-ping-pong
  // guard (0.5 + 1.1 >= 1.5); group 1 (0.4) passes (0.5 + 0.4 < 1.5) and is
  // the largest movable group.
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].group, 1);
  EXPECT_EQ(moves[0].from, 0);
  EXPECT_EQ(moves[0].to, 1);
}

TEST(RebalanceControllerTest, AntiPingPongRefusesOversizedGroup) {
  RebalanceConfig config;
  config.ewma_alpha = 1.0;
  config.max_migrations_per_epoch = 4;
  RebalanceController controller(config, 2, 1);
  // One mega-group holds all the load: moving it would only swap roles.
  const auto moves = controller.OnEpoch({2.0, 0.0}, {2.0}, {0});
  EXPECT_TRUE(controller.active());
  EXPECT_TRUE(moves.empty());
}

TEST(RebalanceControllerTest, MigrationBudgetCapsMovesPerEpoch) {
  RebalanceConfig config;
  config.ewma_alpha = 1.0;
  config.max_migrations_per_epoch = 2;
  RebalanceController controller(config, 2, 6);
  const std::vector<int> owner = {0, 0, 0, 0, 0, 0};
  const auto moves = controller.OnEpoch(
      {3.0, 0.0}, {0.5, 0.5, 0.5, 0.5, 0.5, 0.5}, owner);
  EXPECT_EQ(moves.size(), 2u);
  for (const auto& m : moves) {
    EXPECT_EQ(m.from, 0);
    EXPECT_EQ(m.to, 1);
  }
}

// --- Elastic runtime -------------------------------------------------------

TEST(ElasticDsmsTest, OneShardIsByteIdenticalToClassicEngine) {
  const query::Workload workload = Testbed(20, 3000);
  for (const sched::PolicyKind kind :
       {sched::PolicyKind::kHnr, sched::PolicyKind::kBsd,
        sched::PolicyKind::kRoundRobin, sched::PolicyKind::kFcfs,
        sched::PolicyKind::kLsf}) {
    SimulationOptions classic_options;
    classic_options.qos.track_per_query = true;
    const RunResult classic = Simulate(workload, Policy(kind), classic_options);
    const ShardedRunResult elastic =
        SimulateSharded(workload, Policy(kind), ElasticOptions(1));
    // At one shard the elastic engine owns every group, the delivery filter
    // passes everything, and RunUntil merely splits Run() at epoch barriers
    // where the engine is either mid-work or paused idle — every state
    // transition replays identically.
    EXPECT_EQ(RunResultToJson(elastic.result), RunResultToJson(classic))
        << "policy " << classic.policy_name;
  }
}

TEST(ElasticDsmsTest, OneShardJoinWorkloadStaysByteIdentical) {
  const query::Workload workload = Testbed(16, 3000, /*multi_stream=*/true);
  SimulationOptions classic_options;
  classic_options.qos.track_per_query = true;
  const RunResult classic =
      Simulate(workload, Policy(sched::PolicyKind::kHnr), classic_options);
  const ShardedRunResult elastic = SimulateSharded(
      workload, Policy(sched::PolicyKind::kHnr), ElasticOptions(1));
  EXPECT_EQ(RunResultToJson(elastic.result), RunResultToJson(classic));
}

TEST(ElasticDsmsTest, RepeatedRunsAndThreadCountsAreIdentical) {
  const query::Workload workload = Testbed(40, 4000);
  SimulationOptions options = ElasticOptions(4);
  options.rebalance.imbalance_high = 1.05;
  options.rebalance.imbalance_low = 1.01;
  options.rebalance.steal = true;
  options.rebalance.steal_min_backlog = 1;
  std::string reference;
  std::vector<int64_t> reference_migrations;
  std::vector<int64_t> reference_steals;
  for (int rep = 0; rep < 3; ++rep) {
    options.shard_threads = rep == 2 ? 4 : 1;  // serial and pooled epochs
    const ShardedRunResult run =
        SimulateSharded(workload, Policy(sched::PolicyKind::kHnr), options);
    std::vector<int64_t> migrations;
    std::vector<int64_t> steals;
    for (const ShardRunStats& stats : run.shard_stats) {
      migrations.push_back(stats.migrations);
      steals.push_back(stats.steals);
    }
    const std::string json = RunResultToJson(run.result);
    if (rep == 0) {
      reference = json;
      reference_migrations = migrations;
      reference_steals = steals;
    } else {
      EXPECT_EQ(json, reference) << "nondeterministic elastic run, rep " << rep;
      EXPECT_EQ(migrations, reference_migrations);
      EXPECT_EQ(steals, reference_steals);
    }
  }
}

TEST(ElasticDsmsTest, EmissionsAreScheduleInvariantUnderRebalance) {
  const query::Workload workload = Testbed(40, 4000);
  SimulationOptions classic_options;
  const RunResult classic =
      Simulate(workload, Policy(sched::PolicyKind::kHnr), classic_options);
  SimulationOptions options = ElasticOptions(4);
  options.rebalance.imbalance_high = 1.05;
  options.rebalance.imbalance_low = 1.01;
  options.rebalance.max_migrations_per_epoch = 4;
  options.rebalance.steal = true;
  options.rebalance.steal_min_backlog = 1;
  const ShardedRunResult run =
      SimulateSharded(workload, Policy(sched::PolicyKind::kHnr), options);
  // Migration and stealing are schedule changes; frozen draws key on global
  // ids, so what gets emitted/filtered cannot change, only when.
  EXPECT_EQ(run.result.qos.tuples_emitted, classic.qos.tuples_emitted);
  EXPECT_EQ(run.result.counters.tuples_filtered,
            classic.counters.tuples_filtered);
}

TEST(ElasticDsmsTest, TightBandTriggersMigrationsOnUnevenPlacement) {
  const query::Workload workload = Testbed(40, 6000);
  SimulationOptions options = ElasticOptions(4);
  // A band this tight flags the residual imbalance any hashed placement of
  // heterogeneous cost classes shows.
  options.rebalance.imbalance_high = 1.02;
  options.rebalance.imbalance_low = 1.01;
  options.rebalance.max_migrations_per_epoch = 4;
  const ShardedRunResult run =
      SimulateSharded(workload, Policy(sched::PolicyKind::kHnr), options);
  int64_t migrations = 0;
  for (const ShardRunStats& stats : run.shard_stats) {
    migrations += stats.migrations;
  }
  EXPECT_GT(migrations, 0);
  // Final owned-query counts still partition the population.
  int queries = 0;
  for (const ShardRunStats& stats : run.shard_stats) {
    queries += stats.num_queries;
  }
  EXPECT_EQ(queries, 40);
}

TEST(ElasticDsmsTest, IdleShardsStealWhenEnabled) {
  // 6 queries over 4 shards leaves shards idle while others hold backlog.
  const query::Workload workload = Testbed(6, 4000);
  SimulationOptions options = ElasticOptions(4);
  options.rebalance.steal = true;
  options.rebalance.steal_min_backlog = 1;
  options.rebalance.steal_max_tuples = 8;
  // Keep the controller itself quiet so steals are the only interaction.
  options.rebalance.imbalance_high = 1e9;
  const ShardedRunResult run =
      SimulateSharded(workload, Policy(sched::PolicyKind::kHnr), options);
  int64_t steals = 0;
  for (const ShardRunStats& stats : run.shard_stats) steals += stats.steals;
  EXPECT_GT(steals, 0);
  SimulationOptions classic_options;
  const RunResult classic =
      Simulate(workload, Policy(sched::PolicyKind::kHnr), classic_options);
  EXPECT_EQ(run.result.qos.tuples_emitted, classic.qos.tuples_emitted);
}

TEST(ElasticDsmsTest, SimulatePlanRoutesRebalanceOptions) {
  const query::Workload workload = Testbed(20, 2000);
  SimulationOptions options = ElasticOptions(4);
  const RunResult via_simulate =
      Simulate(workload, Policy(sched::PolicyKind::kHnr), options);
  const ShardedRunResult direct =
      SimulateSharded(workload, Policy(sched::PolicyKind::kHnr), options);
  EXPECT_EQ(RunResultToJson(via_simulate), RunResultToJson(direct.result));
}

TEST(ElasticDsmsTest, SharingGroupsMigrateWhole) {
  const query::Workload workload =
      Testbed(40, 4000, /*multi_stream=*/false, /*sharing_group_size=*/10);
  ASSERT_FALSE(workload.plan.sharing_groups().empty());
  SimulationOptions classic_options;
  const RunResult classic =
      Simulate(workload, Policy(sched::PolicyKind::kHnr), classic_options);
  SimulationOptions options = ElasticOptions(4);
  options.rebalance.imbalance_high = 1.02;
  options.rebalance.imbalance_low = 1.01;
  options.rebalance.max_migrations_per_epoch = 4;
  const ShardedRunResult run =
      SimulateSharded(workload, Policy(sched::PolicyKind::kHnr), options);
  // Shared-leaf frozen draws key on the global group id, which migration
  // preserves: emissions still match the classic schedule.
  EXPECT_EQ(run.result.qos.tuples_emitted, classic.qos.tuples_emitted);
}

}  // namespace
}  // namespace aqsios::core
