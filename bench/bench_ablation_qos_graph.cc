// Ablation: Aurora's QoS-graph scheduler vs the paper's system-metric
// policies (§10).
//
// The QoS-graph scheduler needs the user to predict a utility-of-latency
// curve per query; here every query gets the default stretch-derived graph
// (full utility until 5·T, zero at 50·T). The paper's point: slowdown-based
// policies need no such specification and still dominate the balanced
// metrics. The graph shape is also swept to show the sensitivity the user
// would have to tune away.

#include <iostream>

#include "bench_util.h"
#include "common/table.h"

namespace aqsios {
namespace {

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_ablation_qos_graph");
  double utilization = 0.95;
  flags.AddDouble("util", &utilization, "system load of the experiment");
  const bench::BenchArgs args =
      bench::ParseBenchArgs("qos_graph", argc, argv, &flags);
  bench::PrintHeader(
      "Ablation: Aurora QoS-graph scheduling vs slowdown policies",
      "BSD achieves better l2 and max slowdown without any per-query "
      "utility curves to predict");

  query::WorkloadConfig config = bench::TestbedConfig(args);
  config.utilization = utilization;
  const query::Workload workload = query::GenerateWorkload(config);

  Table table({"policy", "avg slowdown", "max slowdown", "l2 norm"});
  auto add = [&](const std::string& label, const core::RunResult& r) {
    table.AddRow(label, {r.qos.avg_slowdown, r.qos.max_slowdown,
                         r.qos.l2_slowdown});
  };
  add("HNR", core::Simulate(workload,
                            sched::PolicyConfig::Of(sched::PolicyKind::kHnr)));
  add("BSD", core::Simulate(workload,
                            sched::PolicyConfig::Of(sched::PolicyKind::kBsd)));
  for (double zero_at : {20.0, 50.0, 200.0}) {
    sched::PolicyConfig policy =
        sched::PolicyConfig::Of(sched::PolicyKind::kQosGraph);
    policy.qos_graph.flat_until_stretch = zero_at / 10.0;
    policy.qos_graph.zero_at_stretch = zero_at;
    add("QoS-Graph(zero@" + FormatDouble(zero_at, 3) + "T)",
        core::Simulate(workload, policy));
  }
  std::cout << table.ToAscii() << "\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
