// Figure 6: average response time vs system load.
//
// Paper: HR (which optimizes response time) is the best; HNR pays a small
// premium (~4% at 0.7 utilization, ~7% at 0.97).

#include <iostream>

#include "bench_util.h"

namespace aqsios {
namespace {

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_fig6_avg_response");
  const bench::BenchArgs args =
      bench::ParseBenchArgs("fig6", argc, argv, &flags);
  bench::PrintHeader("Figure 6: average response time (ms) vs utilization",
                     "HR best; HNR within a few percent of HR");

  core::SweepConfig sweep = bench::TestbedSweep(args);
  sweep.policies = {sched::PolicyConfig::Of(sched::PolicyKind::kRoundRobin),
                    sched::PolicyConfig::Of(sched::PolicyKind::kFcfs),
                    sched::PolicyConfig::Of(sched::PolicyKind::kSrpt),
                    sched::PolicyConfig::Of(sched::PolicyKind::kHr),
                    sched::PolicyConfig::Of(sched::PolicyKind::kHnr)};
  const auto cells = core::RunSweep(sweep);
  bench::MaybePrintJson(args, cells);
  bench::MaybeWriteTrace(args, sweep);
  std::cout << core::SweepTable(cells, core::Metric::kAvgResponseMs).ToAscii()
            << "\n";

  const double top = sweep.utilizations.back();
  auto at = [&](const char* policy) {
    for (const auto& cell : cells) {
      if (cell.utilization == top && cell.policy == policy) {
        return core::GetMetric(cell.result, core::Metric::kAvgResponseMs);
      }
    }
    return 0.0;
  };
  std::cout << "HNR premium over HR at util " << top << ": "
            << (at("HNR") / at("HR") - 1.0) * 100.0 << "%\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
