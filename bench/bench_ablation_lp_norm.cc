// Ablation: the generalized lp-norm slowdown policy family.
//
// One parameter p sweeps the average-case/worst-case trade-off: p=1 is HNR
// (pure average optimization), p=2 is BSD (the paper's l2 balance), large p
// approaches LSF's worst-case focus. Expect average slowdown to increase
// and maximum slowdown to decrease monotonically (modulo noise) in p.

#include <iostream>

#include "bench_util.h"
#include "common/table.h"

namespace aqsios {
namespace {

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_ablation_lp_norm");
  double utilization = 0.95;
  flags.AddDouble("util", &utilization, "system load of the experiment");
  const bench::BenchArgs args =
      bench::ParseBenchArgs("lp_norm", argc, argv, &flags);
  bench::PrintHeader(
      "Ablation: lp-norm policy family (p=1 ~ HNR, p=2 ~ BSD, p->inf ~ LSF)",
      "increasing p trades average slowdown for maximum slowdown");

  query::WorkloadConfig config = bench::TestbedConfig(args);
  config.utilization = utilization;
  const query::Workload workload = query::GenerateWorkload(config);

  Table table({"policy", "avg slowdown", "max slowdown", "l2 norm"});
  auto add = [&](const core::RunResult& r) {
    table.AddRow(r.policy_name, {r.qos.avg_slowdown, r.qos.max_slowdown,
                                 r.qos.l2_slowdown});
  };
  add(core::Simulate(workload,
                     sched::PolicyConfig::Of(sched::PolicyKind::kHnr)));
  for (double p : {1.0, 1.5, 2.0, 3.0, 4.0, 8.0}) {
    sched::PolicyConfig policy =
        sched::PolicyConfig::Of(sched::PolicyKind::kLpNorm);
    policy.lp_norm_p = p;
    add(core::Simulate(workload, policy));
  }
  add(core::Simulate(workload,
                     sched::PolicyConfig::Of(sched::PolicyKind::kLsf)));
  std::cout << table.ToAscii() << "\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
