// Figure 11: slowdown per class for low-cost queries.
//
// Paper: within the cheapest cost class, HR is strongly biased against
// low-selectivity queries (their tuples see much higher slowdown); HNR is
// biased less; BSD the least.

#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/table.h"

namespace aqsios {
namespace {

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_fig11_per_class");
  double utilization = 0.95;
  flags.AddDouble("util", &utilization, "system load of the experiment");
  bench::BenchArgs args = bench::ParseBenchArgs("fig11", argc, argv, &flags);
  args.queries = std::max(args.queries, 120);  // populate selectivity deciles
  bench::PrintHeader(
      "Figure 11: avg slowdown per selectivity class (lowest cost class)",
      "HR heavily penalizes low-selectivity queries; HNR less; BSD least");

  query::WorkloadConfig config = bench::TestbedConfig(args);
  config.utilization = utilization;
  const query::Workload workload = query::GenerateWorkload(config);

  const std::vector<sched::PolicyKind> policies = {
      sched::PolicyKind::kHr, sched::PolicyKind::kHnr, sched::PolicyKind::kBsd};
  std::map<std::string, std::map<int, double>> per_policy;
  std::vector<std::string> names;
  for (sched::PolicyKind kind : policies) {
    const core::RunResult r =
        core::Simulate(workload, sched::PolicyConfig::Of(kind));
    names.push_back(r.policy_name);
    for (const auto& [key, stats] : r.qos.per_class_slowdown) {
      if (key.cost_class != 0 || stats.count() == 0) continue;
      per_policy[r.policy_name][key.selectivity_decile] = stats.Mean();
    }
  }

  std::vector<std::string> header = {"selectivity"};
  header.insert(header.end(), names.begin(), names.end());
  Table table(header);
  for (int decile = 1; decile <= 10; ++decile) {
    bool populated = false;
    std::vector<double> row;
    for (const std::string& name : names) {
      const auto& by_decile = per_policy[name];
      auto it = by_decile.find(decile);
      row.push_back(it == by_decile.end() ? 0.0 : it->second);
      populated = populated || it != by_decile.end();
    }
    if (!populated) continue;
    table.AddRow(FormatDouble(decile / 10.0, 2), row);
  }
  std::cout << table.ToAscii() << "\n";

  // Bias self-check: slowdown(lowest populated decile)/slowdown(highest).
  for (const std::string& name : names) {
    const auto& by_decile = per_policy[name];
    if (by_decile.size() < 2) continue;
    const double low = by_decile.begin()->second;
    const double high = by_decile.rbegin()->second;
    std::cout << name << " low/high selectivity bias: " << low / high << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
