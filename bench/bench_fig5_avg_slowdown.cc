// Figure 5: average slowdown vs system load.
//
// Paper: HNR provides the lowest slowdown at every utilization — roughly
// 75% below RR, 50% below SRPT, and 20% below HR at high load.

#include <iostream>

#include "bench_util.h"

namespace aqsios {
namespace {

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_fig5_avg_slowdown");
  const bench::BenchArgs args =
      bench::ParseBenchArgs("fig5", argc, argv, &flags);
  bench::PrintHeader(
      "Figure 5: average slowdown vs utilization",
      "HNR lowest; ~75% below RR, ~50% below SRPT, ~20% below HR at 0.95");

  core::SweepConfig sweep = bench::TestbedSweep(args);
  sweep.policies = {sched::PolicyConfig::Of(sched::PolicyKind::kRoundRobin),
                    sched::PolicyConfig::Of(sched::PolicyKind::kFcfs),
                    sched::PolicyConfig::Of(sched::PolicyKind::kSrpt),
                    sched::PolicyConfig::Of(sched::PolicyKind::kHr),
                    sched::PolicyConfig::Of(sched::PolicyKind::kHnr)};
  const auto cells = core::RunSweep(sweep);
  bench::MaybePrintJson(args, cells);
  bench::MaybeWriteTrace(args, sweep);
  std::cout << core::SweepTable(cells, core::Metric::kAvgSlowdown).ToAscii()
            << "\n";

  // Self-check at the highest swept utilization.
  const double top = sweep.utilizations.back();
  auto at = [&](const char* policy) {
    for (const auto& cell : cells) {
      if (cell.utilization == top && cell.policy == policy) {
        return cell.result.qos.avg_slowdown;
      }
    }
    return 0.0;
  };
  bench::PrintReduction("HNR vs RR  ", at("HNR"), at("RR"));
  bench::PrintReduction("HNR vs SRPT", at("HNR"), at("SRPT"));
  bench::PrintReduction("HNR vs HR  ", at("HNR"), at("HR"));
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
