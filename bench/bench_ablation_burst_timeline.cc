// Ablation: slowdown transients across bursts.
//
// Aggregates hide when the slowdown is incurred. Bucketing per-tuple
// slowdowns by arrival time shows the burst dynamics: under HNR the worst
// buckets (burst peaks) spike far higher than under BSD, whose wait term
// flattens the peaks at some cost in the quiet buckets — the time-domain
// view of the average-vs-worst-case trade-off of Figures 8-9.

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"

namespace aqsios {
namespace {

struct SeriesSummary {
  double mean_of_buckets = 0.0;
  double p95_bucket = 0.0;
  double worst_bucket = 0.0;
};

SeriesSummary Summarize(const std::vector<double>& series) {
  SeriesSummary summary;
  std::vector<double> populated;
  for (double v : series) {
    if (v > 0.0) populated.push_back(v);
  }
  if (populated.empty()) return summary;
  double total = 0.0;
  for (double v : populated) total += v;
  summary.mean_of_buckets = total / static_cast<double>(populated.size());
  std::sort(populated.begin(), populated.end());
  summary.p95_bucket =
      populated[static_cast<size_t>(0.95 * (populated.size() - 1))];
  summary.worst_bucket = populated.back();
  return summary;
}

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_ablation_burst_timeline");
  double utilization = 0.95;
  int buckets = 60;
  flags.AddDouble("util", &utilization, "system load of the experiment");
  flags.AddInt("buckets", &buckets, "number of timeline buckets");
  const bench::BenchArgs args =
      bench::ParseBenchArgs("burst_timeline", argc, argv, &flags);
  bench::PrintHeader(
      "Ablation: per-burst slowdown transients (timeline buckets)",
      "BSD flattens burst peaks relative to HNR; LSF flattens hardest");

  query::WorkloadConfig config = bench::TestbedConfig(args);
  config.utilization = utilization;
  const query::Workload workload = query::GenerateWorkload(config);

  core::SimulationOptions options;
  options.qos.timeline_bucket =
      workload.arrivals.Horizon() / static_cast<double>(buckets);

  Table table({"policy", "mean bucket slowdown", "p95 bucket",
               "worst bucket", "worst/mean"});
  for (sched::PolicyKind kind :
       {sched::PolicyKind::kHr, sched::PolicyKind::kHnr,
        sched::PolicyKind::kBsd, sched::PolicyKind::kLsf}) {
    const core::RunResult r =
        core::Simulate(workload, sched::PolicyConfig::Of(kind), options);
    const SeriesSummary summary = Summarize(r.qos.slowdown_timeline_mean);
    table.AddRow(r.policy_name,
                 {summary.mean_of_buckets, summary.p95_bucket,
                  summary.worst_bucket,
                  summary.worst_bucket / summary.mean_of_buckets});
  }
  std::cout << table.ToAscii() << "\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
