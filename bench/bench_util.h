// Shared plumbing for the figure/table bench binaries.
//
// Each bench reproduces one table or figure of the paper: it runs the §8
// testbed workload (scaled down by default so every binary terminates in
// seconds on one core; scale up with --queries/--arrivals) and prints the
// same rows/series the paper reports, plus the paper's qualitative claim so
// the output is self-checking.

#ifndef AQSIOS_BENCH_BENCH_UTIL_H_
#define AQSIOS_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "core/experiment.h"
#include "core/report.h"
#include "core/sharded_dsms.h"
#include "obs/chrome_trace.h"
#include "obs/shard_trace.h"
#include "obs/tracer.h"

namespace aqsios::bench {

/// Standard workload knobs shared by all figure benches.
struct BenchArgs {
  int queries = 60;
  int64_t arrivals = 15000;
  uint64_t seed = 42;
  std::string utilizations = "0.5,0.7,0.8,0.9,0.95";
  /// Also emit the sweep as JSON (machine-readable, for plotting).
  bool json = false;
  /// Worker threads for RunSweep cells (0 = one per hardware thread,
  /// 1 = serial). Any value produces bit-identical results.
  int threads = 0;
  /// Replay arrivals from this aqsios-trace file (e.g. a converted
  /// LBL-PKT-4) instead of the synthetic On/Off process.
  std::string trace;
  /// Write a Chrome trace-event JSON of one traced simulation (the sweep's
  /// first utilization under its first policy) to this path; load it in
  /// Perfetto / chrome://tracing. Empty = no trace.
  std::string trace_out;
  /// Tuple-train batch size forwarded to SimulationOptions::batch_size:
  /// 1 = classic per-tuple dispatch, 0 = drain the picked queue, k > 1 =
  /// up to k tuples per scheduling decision.
  int batch = 1;
  /// Shards forwarded to SimulationOptions::shards: 1 = the classic
  /// single-scheduler runtime (byte-identical results); K > 1 = the
  /// shard-parallel runtime (docs/scaling.md).
  int shards = 1;

  std::vector<double> UtilizationList() const {
    std::vector<double> result;
    std::string token;
    for (char c : utilizations + ",") {
      if (c == ',') {
        if (!token.empty()) result.push_back(std::strtod(token.c_str(), nullptr));
        token.clear();
      } else {
        token += c;
      }
    }
    return result;
  }
};

/// Registers the standard flags and parses argv; exits on --help or error.
/// Callers may override the scale defaults (e.g. the clustering benches use
/// more queries so per-cluster amortization resembles the paper's 500-query
/// testbed).
inline BenchArgs ParseBenchArgs(const std::string& name, int argc,
                                const char* const* argv, FlagSet* flags,
                                int default_queries = 60,
                                int64_t default_arrivals = 15000) {
  static BenchArgs args;  // targets must outlive Parse
  args = BenchArgs();
  args.queries = default_queries;
  args.arrivals = default_arrivals;
  flags->AddInt("queries", &args.queries, "number of registered CQs");
  flags->AddInt("arrivals", &args.arrivals, "total stream arrivals");
  int64_t seed = 42;
  flags->AddInt("seed", &seed, "workload seed");
  flags->AddString("utils", &args.utilizations,
                   "comma-separated utilization sweep");
  flags->AddBool("json", &args.json, "also print the sweep as JSON");
  flags->AddInt("threads", &args.threads,
                "sweep worker threads (0 = all hardware threads, 1 = serial; "
                "results are identical for any value)");
  flags->AddString("trace", &args.trace,
                   "replay arrivals from this trace file (e.g. converted "
                   "LBL-PKT-4) instead of synthetic On/Off traffic");
  flags->AddString("trace-out", &args.trace_out,
                   "write a Chrome trace-event JSON (Perfetto-loadable) of "
                   "one traced run to this path");
  flags->AddInt("batch", &args.batch,
                "tuple-train batch size (1 = per-tuple dispatch, 0 = drain "
                "the picked queue, k > 1 = up to k tuples per decision)");
  flags->AddInt("shards", &args.shards,
                "scheduler shards (1 = classic single-scheduler runtime; "
                "K > 1 = partitioned shard-parallel runtime)");
  const Status status = flags->Parse(argc, argv);
  if (!status.ok()) {
    if (flags->help_requested()) std::exit(0);
    std::cerr << name << ": " << status << "\n" << flags->Usage();
    std::exit(2);
  }
  args.seed = static_cast<uint64_t>(seed);
  return args;
}

/// The paper's default single-stream testbed configuration.
inline query::WorkloadConfig TestbedConfig(const BenchArgs& args) {
  query::WorkloadConfig config;
  config.num_queries = args.queries;
  config.num_arrivals = args.arrivals;
  config.seed = args.seed;
  if (!args.trace.empty()) {
    config.arrival_pattern = query::ArrivalPattern::kTraceFile;
    config.trace_path = args.trace;
  }
  return config;
}

/// A SweepConfig pre-filled with the standard knobs (testbed workload,
/// utilization list, worker threads); callers add policies and options.
inline core::SweepConfig TestbedSweep(const BenchArgs& args) {
  core::SweepConfig sweep;
  sweep.workload = TestbedConfig(args);
  sweep.utilizations = args.UtilizationList();
  sweep.threads = args.threads;
  // Stage-attribute every 32nd arrival id: cheap (one modulo per emission),
  // deterministic, and the same tuples are sampled under every policy, so
  // the per-policy attribution blocks in the JSON reports are comparable.
  sweep.options.attribution_sample_every = 32;
  sweep.options.batch_size = args.batch;
  sweep.options.shards = args.shards;
  return sweep;
}

inline void PrintHeader(const std::string& title, const std::string& claim) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "paper claim: " << claim << "\n\n";
}

/// Emits the sweep as a JSON line when --json was passed.
inline void MaybePrintJson(const BenchArgs& args,
                           const std::vector<core::SweepCell>& cells) {
  if (!args.json) return;
  std::cout << "JSON: " << core::SweepToJson(cells) << "\n";
}

/// When --trace-out was passed, re-runs the sweep's (first utilization,
/// first policy) cell with an event tracer attached and writes the Chrome
/// trace-event JSON. Runs *after* the sweep so its results are untouched
/// (and identical whether or not a trace is requested — tracing is
/// observation-only).
inline void MaybeWriteTrace(const BenchArgs& args,
                            const core::SweepConfig& sweep) {
  if (args.trace_out.empty()) return;
  query::WorkloadConfig workload_config = sweep.workload;
  workload_config.utilization = sweep.utilizations.front();
  const query::Workload workload = query::GenerateWorkload(workload_config);

  core::SimulationOptions options = sweep.options;
  obs::ChromeTraceMeta meta;
  meta.num_queries = workload.plan.num_queries();
  meta.num_shards = options.shards > 1 ? options.shards : 1;
  Status status = Status::Ok();
  size_t kept = 0;
  size_t dropped = 0;
  if (options.shards > 1) {
    // Sharded runs need one private single-producer sink per shard; the
    // per-shard timelines are merged into one deterministic trace.
    std::vector<obs::EventTracer> tracers(
        static_cast<size_t>(options.shards));
    std::vector<obs::EventTracer*> tracer_ptrs;
    for (obs::EventTracer& tracer : tracers) tracer_ptrs.push_back(&tracer);
    const core::ShardedRunResult sharded = core::SimulateSharded(
        workload, sweep.policies.front(), options, &tracer_ptrs);
    meta.policy = sharded.result.policy_name;
    std::vector<obs::ShardTraceInput> inputs;
    for (size_t s = 0; s < tracers.size(); ++s) {
      inputs.push_back({&tracers[s], &sharded.query_id_maps[s]});
      kept += tracers[s].size();
      dropped += tracers[s].dropped();
    }
    status = obs::WriteChromeTrace(args.trace_out,
                                   obs::MergeShardTraces(inputs), meta);
  } else {
    obs::EventTracer tracer;
    options.tracer = &tracer;
    const core::RunResult result =
        core::Simulate(workload, sweep.policies.front(), options);
    meta.policy = result.policy_name;
    kept = tracer.size();
    dropped = tracer.dropped();
    status = obs::WriteChromeTrace(args.trace_out, tracer, meta);
  }
  if (!status.ok()) {
    std::cerr << "trace-out: " << status << "\n";
    std::exit(1);
  }
  std::cout << "wrote trace " << args.trace_out << " (" << kept
            << " events kept, " << dropped << " dropped, policy "
            << meta.policy << " at utilization "
            << sweep.utilizations.front() << ")\n";
}

/// Prints "<label>: <a> vs <b> (<percent>% lower)" comparisons used by the
/// self-check lines under each table.
inline void PrintReduction(const std::string& label, double ours,
                           double baseline) {
  const double percent =
      baseline > 0.0 ? (1.0 - ours / baseline) * 100.0 : 0.0;
  std::cout << label << ": " << ours << " vs " << baseline << "  ("
            << percent << "% lower)\n";
}

}  // namespace aqsios::bench

#endif  // AQSIOS_BENCH_BENCH_UTIL_H_
