// Sustained-overload stress harness (docs/overload.md).
//
// Runs an O(10^4)-query §8 testbed cell under bursty MMPP On/Off arrivals
// calibrated *past* saturation (default utilization 3.0 — offered work is
// three times the service rate, so queues grow without bound unless
// something gives) and measures how the overload-survival machinery trades
// completeness for responsiveness:
//
//  * the shed frontier: policies {hnr, lsf, bsd} × shed_fraction
//    {0, 0.25, 0.5, 1.0} with the engine's QoS-aware source shedder
//    (exec::ShedConfig) — each cell reports shed_ratio vs p99_slowdown, the
//    frontier a deployment picks its operating point from;
//  * the admission cells: the same policies at shards=4 with per-class
//    admission control (sched::AdmissionConfig) capping each shard's
//    per-window tuple budget at roughly half the offered rate.
//
// Cells are spliced into the aqsios-bench-perf/1 report (default:
// BENCH_perf.json — run from the repo root to refresh the tracked
// trajectory) as
//   {"name": "stress/<policy>/q=N/shed=F", "ns_per_op": wall_ns/offered,
//    "ops": offered, "wall_ms": W, "shed_ratio": R, "p99_slowdown": P,
//    "avg_slowdown": A, "peak_queued_tuples": Q, "tuples_emitted": E,
//    "healthy": B, "health": "<verdict>"}
// and "stress/<policy>/q=N/admission=shards4" lines carrying
// "admission_dropped" instead of "shed_ratio". Existing stress/ lines are
// replaced; every other benchmark line and the report header are preserved
// byte-for-byte. The health fields restate the telemetry watchdog's run-end
// verdict (core::RestateHealth, docs/telemetry.md) from the deterministic
// counters — overload cells are expected to read unhealthy.
//
// --metrics-out / --telemetry-jsonl / --metrics-port attach a live
// telemetry sampler (obs::TelemetrySampler) to the first repetition of each
// cell; later repetitions run bare, so the determinism CHECK doubles as
// proof that sampling never perturbs results.
//
// In full mode the suite aborts unless, for every policy, (a) repeated runs
// agree exactly (the determinism contract: the shed set is static and
// admission keys on the arrival sequence alone), (b) full shedding bounds
// peak_queued_tuples by the configured queue cap, (c) the frontier is real —
// p99 slowdown under full shedding beats the no-shedding baseline — and
// (d) the admission cells actually dropped arrivals. --quick runs a
// scaled-down cell as a CI/sanitizer smoke test and skips the (c) bar
// (tiny workloads make the frontier noisy).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "core/dsms.h"
#include "core/report.h"
#include "core/sharded_dsms.h"
#include "obs/telemetry.h"
#include "query/workload.h"
#include "sched/policy.h"

namespace aqsios {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct PolicyUnderTest {
  const char* label;
  sched::PolicyKind kind;
};

constexpr PolicyUnderTest kPolicies[] = {
    {"hnr", sched::PolicyKind::kHnr},
    {"lsf", sched::PolicyKind::kLsf},
    {"bsd", sched::PolicyKind::kBsd},
};

struct StressCell {
  std::string policy;
  double shed_fraction = 0.0;   // frontier cells
  bool admission = false;       // admission cells (shards=4)
  double wall_ms = 0.0;         // fastest repetition
  int64_t offered = 0;          // tuples offered to the shedder / router
  double shed_ratio = 0.0;
  double p99_slowdown = 0.0;
  double avg_slowdown = 0.0;
  int64_t peak_queued_tuples = 0;
  int64_t tuples_emitted = 0;
  int64_t admission_dropped = 0;
  /// Run-end health verdict, restated deterministically from the merged
  /// counters (core::RestateHealth) — independent of sampler timing.
  obs::HealthVerdict health;
};

/// Live-telemetry wiring shared by all cells (docs/telemetry.md). When any
/// output is enabled the first repetition of each cell runs with a hub +
/// sampler attached; later repetitions run bare, so the existing
/// repetition-determinism CHECK doubles as a live proof that telemetry
/// never perturbs results.
struct TelemetrySetup {
  obs::TelemetryOptions options;
  bool enabled = false;
};

/// Runs `body` (one simulation) with a sampler attached to `hub`.
template <typename Body>
void WithSampler(const TelemetrySetup& telemetry, obs::TelemetryHub* hub,
                 const std::string& policy_label, Body&& body) {
  obs::TelemetryMeta meta;
  meta.job = "bench_stress";
  meta.policy = policy_label;
  obs::TelemetrySampler sampler(hub, telemetry.options, meta);
  sampler.Start();
  body();
  sampler.Stop();
}

/// The virtual-result signature repeated runs must reproduce exactly.
struct CellSignature {
  int64_t tuples_emitted = 0;
  int64_t tuples_shed = 0;
  int64_t admission_dropped = 0;
  double p99_slowdown = 0.0;

  bool operator==(const CellSignature& other) const {
    return tuples_emitted == other.tuples_emitted &&
           tuples_shed == other.tuples_shed &&
           admission_dropped == other.admission_dropped &&
           p99_slowdown == other.p99_slowdown;
  }
};

/// One frontier cell: `reps` timed runs of (policy, shed_fraction), fastest
/// wall kept, virtual results checked identical across repetitions.
StressCell RunShedCell(const query::Workload& workload,
                       const sched::PolicyConfig& policy,
                       const std::string& label, double shed_fraction,
                       int64_t queue_cap, int reps,
                       const TelemetrySetup& telemetry) {
  core::SimulationOptions options;
  options.qos.track_per_class = false;
  options.shed.enabled = true;
  options.shed.queue_cap = queue_cap;
  options.shed.shed_fraction = shed_fraction;

  StressCell cell;
  cell.policy = label;
  cell.shed_fraction = shed_fraction;
  CellSignature first_sig;
  for (int rep = 0; rep < reps; ++rep) {
    core::RunResult result;
    const bool sampled = telemetry.enabled && rep == 0;
    const Clock::time_point start = Clock::now();
    if (sampled) {
      obs::TelemetryHub hub(1);
      options.telemetry = &hub;
      WithSampler(telemetry, &hub, label, [&] {
        result = core::Simulate(workload, policy, options);
      });
      options.telemetry = nullptr;
    } else {
      result = core::Simulate(workload, policy, options);
    }
    const double ms = ElapsedMs(start);
    CellSignature sig;
    sig.tuples_emitted = result.qos.tuples_emitted;
    sig.tuples_shed = result.counters.tuples_shed;
    sig.p99_slowdown = result.qos.p99_slowdown;
    if (rep == 0) {
      first_sig = sig;
      cell.wall_ms = ms;
      cell.offered = result.counters.tuples_offered;
      cell.shed_ratio = result.counters.ShedRatio();
      cell.p99_slowdown = result.qos.p99_slowdown;
      cell.avg_slowdown = result.qos.avg_slowdown;
      cell.peak_queued_tuples = result.counters.peak_queued_tuples;
      cell.tuples_emitted = result.qos.tuples_emitted;
      cell.health = core::RestateHealth(result, telemetry.options.watchdog);
    } else {
      AQSIOS_CHECK(sig == first_sig)
          << "repeated stress runs diverged at " << label
          << "/shed=" << shed_fraction;
      cell.wall_ms = std::min(cell.wall_ms, ms);
    }
  }
  return cell;
}

/// One admission cell: shards=4, per-class admission budgets capped at
/// roughly half the offered per-window rate, shedding off.
StressCell RunAdmissionCell(const query::Workload& workload,
                            const sched::PolicyConfig& policy,
                            const std::string& label, int reps,
                            const TelemetrySetup& telemetry) {
  core::SimulationOptions options;
  options.qos.track_per_class = false;
  options.shards = 4;
  options.admission.enabled = true;
  options.admission.window_seconds = 1.0;
  // Budget ≈ half the offered rate: arrivals fan out to every shard
  // subscribed to their stream (all 4 here — queries hash across shards),
  // so the offered per-window demand is 4 × arrivals / span windows.
  const double span = workload.arrivals.arrivals.empty()
                          ? 1.0
                          : workload.arrivals.arrivals.back().time;
  const double windows = std::max(1.0, std::ceil(span / 1.0));
  options.admission.tuples_per_window = std::max<int64_t>(
      1, static_cast<int64_t>(
             4.0 * static_cast<double>(workload.arrivals.arrivals.size()) /
             (2.0 * windows)));

  StressCell cell;
  cell.policy = label;
  cell.admission = true;
  CellSignature first_sig;
  for (int rep = 0; rep < reps; ++rep) {
    core::ShardedRunResult sharded;
    const bool sampled = telemetry.enabled && rep == 0;
    const Clock::time_point start = Clock::now();
    if (sampled) {
      obs::TelemetryHub hub(4);
      options.telemetry = &hub;
      WithSampler(telemetry, &hub, label, [&] {
        sharded = core::SimulateSharded(workload, policy, options);
      });
      options.telemetry = nullptr;
    } else {
      sharded = core::SimulateSharded(workload, policy, options);
    }
    const double ms = ElapsedMs(start);
    int64_t dropped = 0;
    int64_t routed = 0;
    for (const core::ShardRunStats& stats : sharded.shard_stats) {
      dropped += stats.admission_dropped;
      routed += stats.arrivals;
    }
    CellSignature sig;
    sig.tuples_emitted = sharded.result.qos.tuples_emitted;
    sig.admission_dropped = dropped;
    sig.p99_slowdown = sharded.result.qos.p99_slowdown;
    if (rep == 0) {
      first_sig = sig;
      cell.wall_ms = ms;
      cell.offered = routed + dropped;
      cell.p99_slowdown = sharded.result.qos.p99_slowdown;
      cell.avg_slowdown = sharded.result.qos.avg_slowdown;
      cell.peak_queued_tuples = sharded.result.counters.peak_queued_tuples;
      cell.tuples_emitted = sharded.result.qos.tuples_emitted;
      cell.admission_dropped = dropped;
      cell.health = core::RestateHealth(sharded.result,
                                        telemetry.options.watchdog, routed,
                                        dropped);
    } else {
      AQSIOS_CHECK(sig == first_sig)
          << "repeated admission runs diverged at " << label;
      cell.wall_ms = std::min(cell.wall_ms, ms);
    }
  }
  return cell;
}

std::string CellName(const StressCell& cell, int queries) {
  std::ostringstream os;
  os << "stress/" << cell.policy << "/q=" << queries;
  if (cell.admission) {
    os << "/admission=shards4";
  } else {
    os << "/shed=" << cell.shed_fraction;
  }
  return os.str();
}

std::string CellLine(const StressCell& cell, int queries) {
  std::ostringstream os;
  os.precision(17);
  const double wall_ns = cell.wall_ms * 1e6;
  os << "    {\"name\": \"" << CellName(cell, queries)
     << "\", \"ns_per_op\": "
     << wall_ns / static_cast<double>(std::max<int64_t>(cell.offered, 1))
     << ", \"ops\": " << cell.offered << ", \"wall_ms\": " << cell.wall_ms;
  if (cell.admission) {
    os << ", \"admission_dropped\": " << cell.admission_dropped;
  } else {
    os << ", \"shed_ratio\": " << cell.shed_ratio;
  }
  os << ", \"p99_slowdown\": " << cell.p99_slowdown
     << ", \"avg_slowdown\": " << cell.avg_slowdown
     << ", \"peak_queued_tuples\": " << cell.peak_queued_tuples
     << ", \"tuples_emitted\": " << cell.tuples_emitted
     << ", \"healthy\": " << (cell.health.healthy ? "true" : "false")
     << ", \"health\": \"" << cell.health.ToString() << "\"}";
  return os.str();
}

bool IsBenchmarkLine(const std::string& line) {
  return line.rfind("    {\"name\": ", 0) == 0;
}

bool IsStressLine(const std::string& line) {
  return line.rfind("    {\"name\": \"stress/", 0) == 0;
}

/// Splices the stress cells into an aqsios-bench-perf/1 report: header and
/// non-stress benchmark lines (micro benches, scaling cells) are kept
/// verbatim, existing stress/ lines are replaced, trailing commas are
/// re-normalized. Falls back to a fresh report when `path` is missing or
/// not in the expected shape. Returns false when `path` cannot be written.
bool WriteReport(const std::string& path, const std::vector<std::string>& cells,
                 int queries, int64_t arrivals, uint64_t seed, int reps,
                 double total_wall_ms) {
  std::vector<std::string> header;
  std::vector<std::string> kept;
  bool parsed = false;
  {
    std::ifstream in(path);
    if (in) {
      std::string line;
      bool in_benchmarks = false;
      while (std::getline(in, line)) {
        if (!in_benchmarks) {
          header.push_back(line);
          if (line == "  \"benchmarks\": [") {
            in_benchmarks = true;
            parsed = true;
          }
        } else if (IsBenchmarkLine(line)) {
          if (!IsStressLine(line)) kept.push_back(line);
        }
        // Footer lines ("  ]", "}") and anything unexpected are re-emitted
        // from scratch below.
      }
    }
  }
  if (!parsed) {
    header.clear();
    std::ostringstream os;
    os.precision(17);
    os << "{\n  \"schema\": \"aqsios-bench-perf/1\",\n";
    os << "  \"queries\": " << queries << ",\n";
    os << "  \"arrivals\": " << arrivals << ",\n";
    os << "  \"seed\": " << seed << ",\n";
    os << "  \"reps\": " << reps << ",\n";
    os << "  \"total_wall_ms\": " << total_wall_ms << ",\n";
    os << "  \"benchmarks\": [";
    std::string line;
    std::istringstream is(os.str());
    while (std::getline(is, line)) header.push_back(line);
  }

  // Re-normalize commas: strip, then re-add on all but the last line.
  for (std::string& line : kept) {
    if (!line.empty() && line.back() == ',') line.pop_back();
  }
  std::vector<std::string> body = kept;
  body.insert(body.end(), cells.begin(), cells.end());

  std::ofstream out(path);
  if (!out.good()) return false;
  for (const std::string& line : header) out << line << "\n";
  for (size_t i = 0; i < body.size(); ++i) {
    out << body[i] << (i + 1 < body.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

int Main(int argc, char** argv) {
  std::string out = "BENCH_perf.json";
  int queries = 10000;
  int64_t arrivals = 1000;
  int64_t seed = 42;
  int reps = 2;
  double utilization = 3.0;
  int64_t queue_cap = 4096;
  bool quick = false;
  std::string metrics_out;
  std::string telemetry_jsonl;
  double telemetry_period_ms = 100.0;
  int metrics_port = -1;
  FlagSet flags("bench_stress");
  flags.AddString("out", &out,
                  "perf report to splice the stress cells into (empty = "
                  "stdout only)");
  flags.AddInt("queries", &queries, "registered CQs for the stress cell");
  flags.AddInt("arrivals", &arrivals, "stream arrivals for the stress cell");
  flags.AddInt("seed", &seed, "workload seed");
  flags.AddInt("reps", &reps, "repetitions per cell (min is reported)");
  flags.AddDouble("utilization", &utilization,
                  "target utilization; > 1 = sustained overload");
  flags.AddInt("queue-cap", &queue_cap,
               "shedder queue cap (total queued tuples) for the shed cells");
  flags.AddBool("quick", &quick,
                "CI smoke mode: scaled-down cell, 1 rep, no frontier bar");
  flags.AddString("metrics-out", &metrics_out,
                  "OpenMetrics exposition file, atomically replaced every "
                  "sampler tick (empty = no live telemetry)");
  flags.AddString("telemetry-jsonl", &telemetry_jsonl,
                  "structured telemetry log (one JSON object per sample)");
  flags.AddDouble("telemetry-period-ms", &telemetry_period_ms,
                  "sampler period in wall milliseconds");
  flags.AddInt("metrics-port", &metrics_port,
               "serve /metrics on 127.0.0.1:<port> while sampling "
               "(0 = ephemeral, -1 = off)");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    if (flags.help_requested()) return 0;
    std::cerr << "bench_stress: " << status << "\n" << flags.Usage();
    return 2;
  }
  if (quick) {
    reps = 1;
    queries = std::min(queries, 400);
    arrivals = std::min<int64_t>(arrivals, 400);
    queue_cap = std::min<int64_t>(queue_cap, 512);
  }
  AQSIOS_CHECK(utilization > 1.0)
      << "a stress harness below saturation measures nothing";

  TelemetrySetup telemetry;
  telemetry.options.metrics_out = metrics_out;
  telemetry.options.jsonl_out = telemetry_jsonl;
  telemetry.options.period_ms = telemetry_period_ms;
  telemetry.options.http_port = metrics_port;
  // The run-end verdict keys off the same cap the shedder enforces; the
  // defaults (20% shed / rejected-arrival fractions) mark the overload
  // cells unhealthy, which is the point of a stress suite.
  telemetry.options.watchdog.queue_cap = queue_cap;
  telemetry.enabled =
      !metrics_out.empty() || !telemetry_jsonl.empty() || metrics_port >= 0;

  const Clock::time_point suite_start = Clock::now();

  query::WorkloadConfig config;
  config.num_queries = queries;
  config.num_arrivals = arrivals;
  config.seed = static_cast<uint64_t>(seed);
  config.utilization = utilization;
  const query::Workload workload = query::GenerateWorkload(config);
  std::cout << "stress testbed: " << queries << " queries, " << arrivals
            << " MMPP arrivals, target utilization " << utilization
            << " (calibrated " << workload.expected_utilization << ")\n\n";

  const double shed_fractions[] = {0.0, 0.25, 0.5, 1.0};
  std::vector<StressCell> cells;
  for (const PolicyUnderTest& under_test : kPolicies) {
    const sched::PolicyConfig policy = sched::PolicyConfig::Of(under_test.kind);
    StressCell baseline;
    StressCell full_shed;
    for (const double fraction : shed_fractions) {
      cells.push_back(RunShedCell(workload, policy, under_test.label, fraction,
                                  queue_cap, reps, telemetry));
      const StressCell& cell = cells.back();
      std::cout << CellName(cell, queries) << ": shed_ratio "
                << cell.shed_ratio << ", p99 slowdown " << cell.p99_slowdown
                << ", peak queue " << cell.peak_queued_tuples << ", health "
                << cell.health.ToString() << ", " << cell.wall_ms << " ms\n";
      if (fraction == 0.0) baseline = cell;
      if (fraction == 1.0) full_shed = cell;
    }
    AQSIOS_CHECK(baseline.shed_ratio == 0.0)
        << under_test.label << ": shed_fraction=0 must shed nothing";
    AQSIOS_CHECK(full_shed.peak_queued_tuples <= queue_cap)
        << under_test.label << ": full shedding must bound the queue at "
        << queue_cap << ", got " << full_shed.peak_queued_tuples;
    if (!quick) {
      AQSIOS_CHECK(full_shed.shed_ratio > 0.0)
          << under_test.label
          << ": sustained overload past a finite cap must shed";
      AQSIOS_CHECK(full_shed.p99_slowdown < baseline.p99_slowdown)
          << under_test.label
          << ": the frontier is inverted — full shedding must beat the "
             "no-shedding p99 (" << full_shed.p99_slowdown << " vs "
          << baseline.p99_slowdown << ")";
    }

    cells.push_back(
        RunAdmissionCell(workload, policy, under_test.label, reps, telemetry));
    const StressCell& admission = cells.back();
    std::cout << CellName(admission, queries) << ": dropped "
              << admission.admission_dropped << "/" << admission.offered
              << ", p99 slowdown " << admission.p99_slowdown << ", health "
              << admission.health.ToString() << ", " << admission.wall_ms
              << " ms\n\n";
    AQSIOS_CHECK(admission.admission_dropped > 0)
        << under_test.label
        << ": a budget at half the offered rate must drop arrivals";
  }

  std::vector<std::string> lines;
  for (const StressCell& cell : cells) {
    lines.push_back(CellLine(cell, queries));
  }
  const double total_wall_ms = ElapsedMs(suite_start);
  if (!out.empty()) {
    if (!WriteReport(out, lines, queries, arrivals,
                     static_cast<uint64_t>(seed), reps, total_wall_ms)) {
      std::cerr << "bench_stress: cannot write " << out << "\n";
      return 1;
    }
    std::cout << "spliced " << lines.size() << " stress cells into " << out
              << "\n";
  } else {
    for (const std::string& line : lines) std::cout << line << "\n";
  }
  std::cout << "total: " << total_wall_ms << " ms\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
