// Ablation: tuple-train batch size vs QoS under charged scheduling overhead.
//
// The Figure 14 story, replayed along the batching axis instead of the
// implementation axis: with §9.2 overhead charged, every scheduling decision
// costs virtual time, and per-tuple dispatch (batch=1) pays it for every
// tuple. Draining a train of k tuples per decision amortizes the charge —
// overhead share falls roughly as 1/k — but large trains serve stale
// priorities and hold the served queue's head longer, so the QoS curve is a
// tradeoff: slowdown improves steeply at small k (overhead dominates) and
// flattens or degrades at large k (batching delay dominates).

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/table.h"

namespace aqsios {
namespace {

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_ablation_batching");
  double utilization = 0.95;
  std::string policy_name = "bsd";
  flags.AddDouble("util", &utilization, "system load of the experiment");
  flags.AddString("policy", &policy_name,
                  "policy under ablation: bsd or lsf (the overhead-paying "
                  "dynamic-priority policies)");
  const bench::BenchArgs args = bench::ParseBenchArgs(
      "ablation_batching", argc, argv, &flags, /*default_queries=*/60,
      /*default_arrivals=*/15000);
  bench::PrintHeader(
      "Ablation: tuple-train batch size under charged scheduling overhead",
      "overhead share falls ~1/k with batch size; slowdown improves steeply "
      "at small k, then flattens/degrades as batching delay takes over");

  const sched::PolicyKind kind = policy_name == "lsf"
                                     ? sched::PolicyKind::kLsf
                                     : sched::PolicyKind::kBsd;
  const sched::PolicyConfig policy = sched::PolicyConfig::Of(kind);

  query::WorkloadConfig config = bench::TestbedConfig(args);
  config.utilization = utilization;
  const query::Workload workload = query::GenerateWorkload(config);

  // The overhead-free per-tuple run is the hypothetical floor: batching can
  // recover the overhead it amortizes, never more.
  core::SimulationOptions free_options;
  free_options.qos.track_per_class = false;
  const core::RunResult hypothetical =
      core::Simulate(workload, policy, free_options);

  Table table({"batch", "avg slowdown", "l2 slowdown", "overhead share (%)",
               "mean train", "tuples/vsec"});
  std::vector<core::RunResult> runs;
  const std::vector<int> batches = {1, 2, 4, 8, 16, 32, 64};
  for (const int batch : batches) {
    core::SimulationOptions options;
    options.qos.track_per_class = false;
    options.charge_scheduling_overhead = true;
    options.batch_size = batch;
    const core::RunResult r = core::Simulate(workload, policy, options);
    const exec::RunCounters& c = r.counters;
    const double overhead_share =
        c.end_time > 0.0 ? c.overhead_time / c.end_time * 100.0 : 0.0;
    const double mean_train =
        c.train_dispatches > 0
            ? static_cast<double>(c.train_tuples) /
                  static_cast<double>(c.train_dispatches)
            : 1.0;
    const double throughput =
        c.end_time > 0.0
            ? static_cast<double>(r.qos.tuples_emitted) / c.end_time
            : 0.0;
    table.AddRow("batch=" + std::to_string(batch),
                 {r.qos.avg_slowdown, r.qos.l2_slowdown, overhead_share,
                  mean_train, throughput});
    runs.push_back(r);
  }
  table.AddRow(std::string(sched::PolicyKindName(kind)) +
                   "-Hypothetical (no overhead)",
               {hypothetical.qos.avg_slowdown, hypothetical.qos.l2_slowdown,
                0.0, 1.0,
                hypothetical.counters.end_time > 0.0
                    ? static_cast<double>(hypothetical.qos.tuples_emitted) /
                          hypothetical.counters.end_time
                    : 0.0});
  std::cout << table.ToAscii() << "\n";

  // Self-check: amortization is structural — a batch=8 run makes ~1/8th the
  // scheduling decisions, so its total charged overhead must fall well below
  // the per-tuple run's.
  const core::RunResult& per_tuple = runs.front();
  const core::RunResult& batch8 = runs[3];
  AQSIOS_CHECK(batch8.counters.overhead_time <
               per_tuple.counters.overhead_time)
      << "batch=8 must charge less total overhead than batch=1";
  bench::PrintReduction("overhead seconds (batch=8 vs batch=1)",
                        batch8.counters.overhead_time,
                        per_tuple.counters.overhead_time);
  bench::PrintReduction("avg slowdown (batch=8 vs batch=1)",
                        batch8.qos.avg_slowdown, per_tuple.qos.avg_slowdown);
  bench::PrintReduction(
      "avg slowdown gap to hypothetical (batch=8 vs batch=1)",
      batch8.qos.avg_slowdown - hypothetical.qos.avg_slowdown,
      per_tuple.qos.avg_slowdown - hypothetical.qos.avg_slowdown);
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
