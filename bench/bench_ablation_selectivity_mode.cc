// Ablation: correlated-attribute vs independent selectivity realization.
//
// The paper's testbed (§8) makes all predicates of a query test the same
// synthetic attribute (perfectly correlated); an alternative model draws
// each filter independently, so a query's global selectivity is the product
// of its operators'. The policy ordering must be robust to this modeling
// choice; the gaps change because global selectivities (and therefore the
// heterogeneity the policies exploit) differ.

#include <iostream>

#include "bench_util.h"
#include "common/table.h"

namespace aqsios {
namespace {

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_ablation_selectivity_mode");
  double utilization = 0.95;
  flags.AddDouble("util", &utilization, "system load of the experiment");
  const bench::BenchArgs args =
      bench::ParseBenchArgs("selectivity_mode", argc, argv, &flags);
  bench::PrintHeader(
      "Ablation: correlated-attribute vs independent filter realization",
      "HNR < HR < SRPT < RR ordering holds under both models");

  Table table({"mode", "RR", "SRPT", "HR", "HNR", "BSD"});
  for (query::SelectivityMode mode :
       {query::SelectivityMode::kCorrelatedAttribute,
        query::SelectivityMode::kIndependent}) {
    query::WorkloadConfig config = bench::TestbedConfig(args);
    config.utilization = utilization;
    config.selectivity_mode = mode;
    const query::Workload workload = query::GenerateWorkload(config);
    std::vector<double> row;
    for (sched::PolicyKind kind :
         {sched::PolicyKind::kRoundRobin, sched::PolicyKind::kSrpt,
          sched::PolicyKind::kHr, sched::PolicyKind::kHnr,
          sched::PolicyKind::kBsd}) {
      row.push_back(
          core::Simulate(workload, sched::PolicyConfig::Of(kind))
              .qos.avg_slowdown);
    }
    table.AddRow(query::SelectivityModeName(mode), row);
  }
  std::cout << table.ToAscii() << "\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
