// Ablation: adaptive statistics monitoring under stale selectivity
// estimates (§10's dynamic-environment support).
//
// Workload filters exhibit actual selectivities that deviate from the
// assumed ones by up to ±m. Compared: HNR with the stale assumed statistics,
// HNR with the run-time monitor refreshing priorities, and the oracle HNR
// that knows the actual statistics upfront. The monitor should recover most
// of the stale-statistics penalty.

#include <iostream>

#include "bench_util.h"
#include "common/table.h"

namespace aqsios {
namespace {

query::GlobalPlan OraclePlan(const query::Workload& workload) {
  std::vector<query::CompiledQuery> queries;
  for (const query::CompiledQuery& q : workload.plan.queries()) {
    query::QuerySpec spec = q.spec();
    for (query::OperatorSpec& op : spec.left_ops) {
      op.selectivity = op.EffectiveActualSelectivity();
      op.actual_selectivity = -1.0;
    }
    queries.emplace_back(std::move(spec), q.selectivity_mode());
  }
  return query::GlobalPlan(std::move(queries), {}, 1);
}

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_ablation_adaptive");
  double utilization = 0.95;
  double period = 0.25;
  flags.AddDouble("util", &utilization, "system load of the experiment");
  flags.AddDouble("period", &period, "adaptation period (virtual seconds)");
  const bench::BenchArgs args =
      bench::ParseBenchArgs("adaptive", argc, argv, &flags);
  bench::PrintHeader(
      "Ablation: adaptive statistics monitoring under selectivity drift",
      "adaptive HNR recovers most of the stale-statistics slowdown penalty");

  Table table({"misestimation", "HNR stale", "HNR adaptive", "HNR oracle",
               "gap recovered (%)"});
  for (double misestimation : {0.0, 0.4, 0.8}) {
    query::WorkloadConfig config = bench::TestbedConfig(args);
    config.utilization = utilization;
    config.selectivity_misestimation = misestimation;
    const query::Workload workload = query::GenerateWorkload(config);

    const core::RunResult stale = core::Simulate(
        workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr));
    core::SimulationOptions adaptive_options;
    adaptive_options.adaptation.enabled = true;
    adaptive_options.adaptation.period = period;
    const core::RunResult adaptive = core::Simulate(
        workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr),
        adaptive_options);
    const core::RunResult oracle = core::SimulatePlan(
        OraclePlan(workload), workload.arrivals,
        sched::PolicyConfig::Of(sched::PolicyKind::kHnr));

    const double gap = stale.qos.avg_slowdown - oracle.qos.avg_slowdown;
    const double recovered =
        gap > 0.0
            ? (stale.qos.avg_slowdown - adaptive.qos.avg_slowdown) / gap *
                  100.0
            : 100.0;
    table.AddRow(FormatDouble(misestimation, 2),
                 {stale.qos.avg_slowdown, adaptive.qos.avg_slowdown,
                  oracle.qos.avg_slowdown, recovered});
  }
  std::cout << table.ToAscii() << "\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
