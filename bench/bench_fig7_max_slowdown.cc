// Figure 7: maximum slowdown vs system load.
//
// Paper: LSF reduces the maximum slowdown by ~80% compared to HNR (at the
// cost of a much worse average, Figure 9).

#include <iostream>

#include "bench_util.h"

namespace aqsios {
namespace {

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_fig7_max_slowdown");
  const bench::BenchArgs args =
      bench::ParseBenchArgs("fig7", argc, argv, &flags);
  bench::PrintHeader("Figure 7: maximum slowdown vs utilization",
                     "LSF far below HNR (~80% lower at high load)");

  core::SweepConfig sweep = bench::TestbedSweep(args);
  sweep.policies = {sched::PolicyConfig::Of(sched::PolicyKind::kRoundRobin),
                    sched::PolicyConfig::Of(sched::PolicyKind::kSrpt),
                    sched::PolicyConfig::Of(sched::PolicyKind::kHr),
                    sched::PolicyConfig::Of(sched::PolicyKind::kHnr),
                    sched::PolicyConfig::Of(sched::PolicyKind::kLsf)};
  const auto cells = core::RunSweep(sweep);
  bench::MaybePrintJson(args, cells);
  bench::MaybeWriteTrace(args, sweep);
  std::cout << core::SweepTable(cells, core::Metric::kMaxSlowdown).ToAscii()
            << "\n";

  const double top = sweep.utilizations.back();
  auto at = [&](const char* policy) {
    for (const auto& cell : cells) {
      if (cell.utilization == top && cell.policy == policy) {
        return cell.result.qos.max_slowdown;
      }
    }
    return 0.0;
  };
  bench::PrintReduction("LSF vs HNR", at("LSF"), at("HNR"));
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
