// Ablation: fairness across queries (§4's starvation discussion,
// quantified).
//
// The paper argues average-case optimizers (HR, HNR) starve some query
// classes while LSF/BSD spread the waiting. Jain's fairness index over the
// per-query mean slowdowns makes that one number: 1 = perfectly even,
// small = a few queries carry (almost) all the stretch.

#include <iostream>

#include "bench_util.h"
#include "common/table.h"

namespace aqsios {
namespace {

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_ablation_fairness");
  double utilization = 0.95;
  flags.AddDouble("util", &utilization, "system load of the experiment");
  const bench::BenchArgs args =
      bench::ParseBenchArgs("fairness", argc, argv, &flags);
  bench::PrintHeader(
      "Ablation: Jain fairness index of per-query mean slowdowns",
      "LSF near-perfectly fair; BSD clearly fairer than HNR/HR/SRPT");

  query::WorkloadConfig config = bench::TestbedConfig(args);
  config.utilization = utilization;
  const query::Workload workload = query::GenerateWorkload(config);

  core::SimulationOptions options;
  options.qos.track_per_query = true;

  Table table({"policy", "Jain fairness", "avg slowdown", "max slowdown"});
  for (sched::PolicyKind kind :
       {sched::PolicyKind::kRoundRobin, sched::PolicyKind::kSrpt,
        sched::PolicyKind::kHr, sched::PolicyKind::kHnr,
        sched::PolicyKind::kBsd, sched::PolicyKind::kLsf}) {
    const core::RunResult r =
        core::Simulate(workload, sched::PolicyConfig::Of(kind), options);
    table.AddRow(r.policy_name,
                 {r.qos.JainFairnessIndex(), r.qos.avg_slowdown,
                  r.qos.max_slowdown});
  }
  std::cout << table.ToAscii() << "\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
