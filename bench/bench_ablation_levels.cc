// Ablation: query-level (non-preemptive) vs operator-level (preemptive)
// scheduling (§6's two scheduling-point granularities).
//
// Operator-level scheduling reacts faster to new high-priority arrivals at
// the cost of many more scheduling points; with static priorities the QoS
// difference is modest while the scheduling-point count grows by the plan
// depth, which is exactly why the paper implements BSD at query level.

#include <iostream>

#include "bench_util.h"
#include "common/table.h"

namespace aqsios {
namespace {

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_ablation_levels");
  double utilization = 0.9;
  flags.AddDouble("util", &utilization, "system load of the experiment");
  const bench::BenchArgs args =
      bench::ParseBenchArgs("levels", argc, argv, &flags);
  bench::PrintHeader(
      "Ablation: query-level vs operator-level scheduling points",
      "similar QoS; operator level multiplies scheduling points by plan "
      "depth");

  query::WorkloadConfig config = bench::TestbedConfig(args);
  config.utilization = utilization;
  const query::Workload workload = query::GenerateWorkload(config);

  Table table({"policy", "level", "avg slowdown", "avg response (ms)",
               "scheduling points"});
  for (sched::PolicyKind kind :
       {sched::PolicyKind::kRoundRobin, sched::PolicyKind::kTwoLevelRr,
        sched::PolicyKind::kHr, sched::PolicyKind::kHnr,
        sched::PolicyKind::kLsf, sched::PolicyKind::kBsd}) {
    for (exec::SchedulingLevel level :
         {exec::SchedulingLevel::kQueryLevel,
          exec::SchedulingLevel::kOperatorLevel}) {
      core::SimulationOptions options;
      options.level = level;
      const core::RunResult r =
          core::Simulate(workload, sched::PolicyConfig::Of(kind), options);
      table.AddRow(
          {r.policy_name, exec::SchedulingLevelName(level),
           FormatDouble(r.qos.avg_slowdown),
           FormatDouble(SimTimeToMillis(r.qos.avg_response)),
           FormatDouble(static_cast<double>(r.counters.scheduling_points))});
    }
  }
  std::cout << table.ToAscii() << "\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
