// Figure 13: l2 norm of slowdowns vs number of clusters at 0.95 utilization.
//
// Paper: BSD-Logarithmic approaches BSD-Hypothetical (within ~5%) around 12
// clusters and degrades on both sides (too-coarse clusters lose accuracy;
// too many clusters raise the search cost). BSD-Uniform starts terrible and
// only becomes acceptable with very many clusters. HNR is the flat
// reference. Scheduling overhead is charged at one cheapest-operator cost
// per priority computation/comparison.

#include <iostream>

#include "bench_util.h"
#include "common/table.h"

namespace aqsios {
namespace {

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_fig13_clustering");
  double utilization = 0.95;
  std::string cluster_counts = "2,4,6,8,12,16,24,48,96";
  flags.AddDouble("util", &utilization, "system load of the experiment");
  flags.AddString("clusters", &cluster_counts,
                  "comma-separated cluster counts (m)");
  const bench::BenchArgs args = bench::ParseBenchArgs(
      "fig13", argc, argv, &flags, /*default_queries=*/240,
      /*default_arrivals=*/8000);
  bench::PrintHeader(
      "Figure 13: l2 of slowdowns vs number of clusters m (overhead charged)",
      "BSD-Logarithmic ~5% above hypothetical near m=12, U-shaped; "
      "BSD-Uniform needs far more clusters");

  query::WorkloadConfig config = bench::TestbedConfig(args);
  config.utilization = utilization;
  const query::Workload workload = query::GenerateWorkload(config);

  core::SimulationOptions charged;
  charged.charge_scheduling_overhead = true;
  core::SimulationOptions free;

  // Flat references.
  const double hnr =
      core::Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr),
                     free)
          .qos.l2_slowdown;
  const double hypothetical =
      core::Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kBsd),
                     free)
          .qos.l2_slowdown;

  std::vector<int> ms;
  {
    std::string token;
    for (char c : cluster_counts + ",") {
      if (c == ',') {
        if (!token.empty()) ms.push_back(std::atoi(token.c_str()));
        token.clear();
      } else {
        token += c;
      }
    }
  }

  Table table({"m", "BSD-Hypothetical", "BSD-Logarithmic", "BSD-Uniform",
               "HNR"});
  double best_log = 0.0;
  int best_m = 0;
  for (int m : ms) {
    sched::PolicyConfig log_config =
        sched::PolicyConfig::Of(sched::PolicyKind::kBsdClustered);
    log_config.clustered.clustering = sched::ClusteringKind::kLogarithmic;
    log_config.clustered.num_clusters = m;
    log_config.clustered.use_fagin = true;
    log_config.clustered.clustered_processing = true;
    sched::PolicyConfig uniform_config = log_config;
    uniform_config.clustered.clustering = sched::ClusteringKind::kUniform;

    const double log_l2 =
        core::Simulate(workload, log_config, charged).qos.l2_slowdown;
    const double uni_l2 =
        core::Simulate(workload, uniform_config, charged).qos.l2_slowdown;
    table.AddRow(std::to_string(m), {hypothetical, log_l2, uni_l2, hnr});
    if (best_m == 0 || log_l2 < best_log) {
      best_log = log_l2;
      best_m = m;
    }
  }
  std::cout << table.ToAscii() << "\n";
  std::cout << "best BSD-Logarithmic at m=" << best_m << ": "
            << (best_log / hypothetical - 1.0) * 100.0
            << "% above BSD-Hypothetical\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
