// Shard-scaling curve for the partitioned runtime (docs/scaling.md).
//
// Runs the 500-query §8 testbed cell under BSD (§4.2.2) with the classic
// linear-scan pick — the configuration where per-decision cost is
// proportional to the number of units one scheduler owns, the scaling wall
// Aurora/STREAM describe — at shards ∈ {1, 2, 4, 8} and reports the
// wall-clock scaling curve. The win is algorithmic, not core-count-bound:
// each of K shard schedulers scans ~n/K units per pick, so the aggregate
// scheduling work drops by ~K even on a single core. (The kinetic index is
// the orthogonal single-scheduler answer to the same wall — O(log n) picks —
// and composes with sharding; it is deliberately off here so the bench
// measures the runtime's ability to shrink scan breadth, not the index.)
//
// Cells are spliced into the aqsios-bench-perf/1 report (default:
// BENCH_perf.json — run from the repo root to refresh the tracked
// trajectory) as
//   {"name": "scaling/bsd/q=500/shards=K", "ns_per_op": wall_ns/arrivals,
//    "ops": arrivals, "wall_ms": W, "tuples_per_wall_sec": T,
//    "speedup_vs_shards1": S, "load_imbalance": L, "avg_slowdown": A}
// Existing scaling/ lines are replaced; every other benchmark line and the
// report header are preserved byte-for-byte, so refreshing the scaling curve
// never perturbs the committed micro-benchmark baselines.
//
// The suite also owns the skewed-workload cells for the elastic rebalancer
// (docs/scaling.md): a hand-built plan whose sharing groups each read their
// own stream, with the dominant group carrying ~50% of the arrival mass and
// the groups that hash placement co-locates on one shard carrying ~65% of
// the busy mass. The same workload runs three ways at shards=4 —
//   {"name": "scaling/skew/static/..."}     hash placement, no controller
//   {"name": "scaling/skew/rebalance/..."}  elastic rebalance controller on
//   {"name": "scaling/skew/steal/..."}      work stealing only, no migration
// — each reporting load_imbalance, tuples_per_wall_sec, and (for the elastic
// cells) migrations/steals plus speedup_vs_static. scripts/perf_compare.py
// gates scaling/skew/rebalance at load_imbalance <= 0.5x the static cell.
//
// The suite also measures live-telemetry overhead (docs/telemetry.md): the
// shards=4 cell re-runs with an aggressive 20 ms obs::TelemetrySampler
// attached, and the pair is spliced as
//   {"name": "telemetry/sampler_off/q=500/shards=4", ...}
//   {"name": "telemetry/sampler_on/q=500/shards=4", ...,
//    "telemetry_overhead_pct": P}
// scripts/perf_compare.py gates telemetry_overhead_pct (default max 2%).
// --metrics-out / --telemetry-jsonl / --metrics-port additionally attach a
// sampler to the first repetition of every scaling cell for live viewing
// (e.g. trace_tool top); min-wall timing still comes from the bare reps.
//
// In full mode the suite aborts unless shards=4 clears 2.5x the shards=1
// throughput (the tentpole acceptance bar); --quick skips the bar and runs a
// scaled-down cell as a CI/TSan smoke test.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "core/dsms.h"
#include "core/sharded_dsms.h"
#include "obs/telemetry.h"
#include "query/workload.h"
#include "sched/policy.h"
#include "sched/shard_router.h"
#include "stream/arrival_process.h"

namespace aqsios {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct ScalingCell {
  int shards = 0;
  double wall_ms = 0.0;           // fastest repetition
  double tuples_per_wall_sec = 0.0;
  double speedup_vs_shards1 = 0.0;
  double load_imbalance = 1.0;
  double avg_slowdown = 0.0;
  int64_t tuples_emitted = 0;
};

/// Which repetitions run with a live obs::TelemetrySampler attached.
enum class SampleReps {
  kNone,      // bare timing runs
  kFirst,     // live viewing: rep 0 sampled, min-wall still from bare reps
  kAll,       // overhead measurement: every rep pays the sampler
};

/// One (shards=K) measurement: `reps` timed runs, fastest kept. Repeated
/// runs must agree exactly on the virtual results (the determinism contract
/// of docs/scaling.md) or the bench aborts — and since sampled and bare
/// repetitions are compared by the same CHECK, a sampler that perturbed
/// results would abort the suite.
ScalingCell RunCell(const query::Workload& workload,
                    const sched::PolicyConfig& policy, int shards, int reps,
                    const obs::TelemetryOptions& telemetry,
                    SampleReps sample_reps) {
  core::SimulationOptions options;
  options.qos.track_per_class = false;
  options.shards = shards;

  ScalingCell cell;
  cell.shards = shards;
  for (int rep = 0; rep < reps; ++rep) {
    const bool sampled = sample_reps == SampleReps::kAll ||
                         (sample_reps == SampleReps::kFirst && rep == 0);
    obs::TelemetryHub hub(shards);
    obs::TelemetryMeta meta;
    meta.job = "bench_scaling";
    meta.policy = "bsd";
    obs::TelemetrySampler sampler(&hub, telemetry, meta);
    options.telemetry = sampled ? &hub : nullptr;
    if (sampled) sampler.Start();
    const Clock::time_point start = Clock::now();
    int64_t tuples = 0;
    double slowdown = 0.0;
    double imbalance = 1.0;
    if (shards > 1) {
      const core::ShardedRunResult sharded =
          core::SimulateSharded(workload, policy, options);
      tuples = sharded.result.qos.tuples_emitted;
      slowdown = sharded.result.qos.avg_slowdown;
      imbalance = sharded.LoadImbalance();
    } else {
      const core::RunResult result =
          core::Simulate(workload, policy, options);
      tuples = result.qos.tuples_emitted;
      slowdown = result.qos.avg_slowdown;
    }
    if (sampled) sampler.Stop();
    const double ms = ElapsedMs(start);
    if (rep == 0) {
      cell.wall_ms = ms;
      cell.tuples_emitted = tuples;
      cell.avg_slowdown = slowdown;
      cell.load_imbalance = imbalance;
    } else {
      AQSIOS_CHECK(tuples == cell.tuples_emitted &&
                   slowdown == cell.avg_slowdown)
          << "repeated sharded runs diverged at shards=" << shards;
      cell.wall_ms = std::min(cell.wall_ms, ms);
    }
  }
  cell.tuples_per_wall_sec =
      cell.wall_ms > 0.0
          ? static_cast<double>(cell.tuples_emitted) / (cell.wall_ms / 1e3)
          : 0.0;
  return cell;
}

std::string CellLine(const ScalingCell& cell, int queries, int64_t arrivals) {
  std::ostringstream os;
  os.precision(17);
  const double wall_ns = cell.wall_ms * 1e6;
  os << "    {\"name\": \"scaling/bsd/q=" << queries
     << "/shards=" << cell.shards << "\", \"ns_per_op\": "
     << wall_ns / static_cast<double>(std::max<int64_t>(arrivals, 1))
     << ", \"ops\": " << arrivals << ", \"wall_ms\": " << cell.wall_ms
     << ", \"tuples_per_wall_sec\": " << cell.tuples_per_wall_sec
     << ", \"speedup_vs_shards1\": " << cell.speedup_vs_shards1
     << ", \"load_imbalance\": " << cell.load_imbalance
     << ", \"avg_slowdown\": " << cell.avg_slowdown << "}";
  return os.str();
}

/// The sampler-overhead pair: the shards=4 cell bare vs with an aggressive
/// sampler attached on every repetition.
std::string OverheadLine(const ScalingCell& off, const ScalingCell& on,
                         bool sampler_on, int queries, int64_t arrivals) {
  std::ostringstream os;
  os.precision(17);
  const ScalingCell& cell = sampler_on ? on : off;
  const double wall_ns = cell.wall_ms * 1e6;
  os << "    {\"name\": \"telemetry/sampler_"
     << (sampler_on ? "on" : "off") << "/q=" << queries
     << "/shards=" << cell.shards << "\", \"ns_per_op\": "
     << wall_ns / static_cast<double>(std::max<int64_t>(arrivals, 1))
     << ", \"ops\": " << arrivals << ", \"wall_ms\": " << cell.wall_ms;
  if (sampler_on) {
    const double pct = off.wall_ms > 0.0
                           ? (on.wall_ms - off.wall_ms) / off.wall_ms * 100.0
                           : 0.0;
    os << ", \"telemetry_overhead_pct\": " << pct;
  }
  os << ", \"tuples_emitted\": " << cell.tuples_emitted << "}";
  return os.str();
}

// --- Skewed-workload cells (elastic rebalancing, docs/scaling.md) ----------

/// Builds the skew plan: `num_groups` sharing groups of `group_size` queries,
/// group g reading its own stream g through a shared select leaf, a stored
/// join, and a project, all costed at `cost_ms_of_group[g]`.
query::GlobalPlan BuildSkewPlan(int num_groups, int group_size,
                                const std::vector<double>& cost_ms_of_group) {
  std::vector<query::QuerySpec> specs;
  std::vector<query::SharingGroup> groups;
  for (int g = 0; g < num_groups; ++g) {
    query::SharingGroup group;
    group.id = g;
    const double cost_ms = cost_ms_of_group[static_cast<size_t>(g)];
    for (int j = 0; j < group_size; ++j) {
      const query::QueryId id = g * group_size + j;
      query::QuerySpec spec;
      spec.id = id;
      spec.left_stream = g;
      spec.left_ops = {query::MakeSelect(cost_ms, 0.5),
                       query::MakeStoredJoin(cost_ms, 0.3 + 0.1 * (j % 5)),
                       query::MakeProject(cost_ms)};
      group.members.push_back(id);
      specs.push_back(std::move(spec));
    }
    groups.push_back(std::move(group));
  }
  std::vector<query::CompiledQuery> compiled;
  compiled.reserve(specs.size());
  for (query::QuerySpec& spec : specs) {
    compiled.emplace_back(std::move(spec), query::SelectivityMode::kIndependent);
  }
  return query::GlobalPlan(std::move(compiled), std::move(groups), num_groups);
}

/// Per-stream Poisson arrivals over a common `horizon`, `counts[s]` arrivals
/// on stream s, merged into one time-ordered table.
stream::ArrivalTable SkewArrivals(const std::vector<int64_t>& counts,
                                  double horizon, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<stream::Arrival>> per_stream;
  per_stream.reserve(counts.size());
  for (size_t s = 0; s < counts.size(); ++s) {
    const double rate =
        static_cast<double>(std::max<int64_t>(counts[s], 1)) / horizon;
    stream::PoissonArrivalProcess process(rate, rng.Fork());
    per_stream.push_back(stream::GenerateArrivals(
        process, static_cast<stream::StreamId>(s), counts[s], rng.Fork()));
  }
  return stream::MergeArrivalTables(std::move(per_stream));
}

/// The skewed cell workload. Skew is built on two axes the hash placement is
/// blind to: the dominant sharing group carries ~50% of the arrival mass,
/// and the sharing groups that AssignShards happens to co-locate on one
/// shard ("hot" groups) together carry `hot_busy_mass` of the busy time —
/// so the static placement bottlenecks on that shard while the per-group
/// masses stay small enough for the rebalance controller to spread.
query::Workload MakeSkewWorkload(int queries, int64_t arrivals, uint64_t seed,
                                 int shards, double utilization,
                                 int* hot_groups_out) {
  constexpr int kGroupSize = 10;
  constexpr double kHotBusyMass = 0.65;
  const int num_groups = std::max(queries / kGroupSize, 2 * shards);
  const size_t n = static_cast<size_t>(num_groups);

  // Shape pass: placement depends only on ids and grouping, not costs.
  std::vector<double> costs(n, 1.0);
  query::GlobalPlan shape = BuildSkewPlan(num_groups, kGroupSize, costs);
  const sched::ShardAssignment assignment = sched::AssignShards(
      shape, shards, core::SimulationOptions{}.shard_seed);
  std::vector<int> groups_of_shard(static_cast<size_t>(shards), 0);
  for (int g = 0; g < num_groups; ++g) {
    ++groups_of_shard[static_cast<size_t>(
        assignment.shard_of_query[static_cast<size_t>(g * kGroupSize)])];
  }
  int hot_shard = 0;
  for (int s = 1; s < shards; ++s) {
    if (groups_of_shard[static_cast<size_t>(s)] >
        groups_of_shard[static_cast<size_t>(hot_shard)]) {
      hot_shard = s;
    }
  }
  const int hot_groups = groups_of_shard[static_cast<size_t>(hot_shard)];
  if (hot_groups_out != nullptr) *hot_groups_out = hot_groups;
  AQSIOS_CHECK_GT(hot_groups, 0);
  AQSIOS_CHECK_LT(hot_groups, num_groups);

  // Arrival mass: the first hot group dominates with ~50% of all arrivals;
  // every other group splits the rest evenly.
  int dominant = -1;
  std::vector<bool> hot(n, false);
  for (int g = 0; g < num_groups; ++g) {
    if (assignment.shard_of_query[static_cast<size_t>(g * kGroupSize)] ==
        hot_shard) {
      hot[static_cast<size_t>(g)] = true;
      if (dominant < 0) dominant = g;
    }
  }
  std::vector<int64_t> counts(n, 0);
  counts[static_cast<size_t>(dominant)] = arrivals / 2;
  const int64_t rest = arrivals - counts[static_cast<size_t>(dominant)];
  for (int g = 0; g < num_groups; ++g) {
    if (g == dominant) continue;
    counts[static_cast<size_t>(g)] = std::max<int64_t>(
        rest / static_cast<int64_t>(num_groups - 1), 1);
  }

  // Busy mass: hot groups share kHotBusyMass evenly, the rest share the
  // remainder; per-group cost scales are mass / arrival-fraction, then one
  // global multiplier calibrates total work to `utilization` of the horizon.
  const double total_arrivals = static_cast<double>(arrivals);
  for (int g = 0; g < num_groups; ++g) {
    const double mass =
        hot[static_cast<size_t>(g)]
            ? kHotBusyMass / static_cast<double>(hot_groups)
            : (1.0 - kHotBusyMass) /
                  static_cast<double>(num_groups - hot_groups);
    costs[static_cast<size_t>(g)] =
        mass / (static_cast<double>(counts[static_cast<size_t>(g)]) /
                total_arrivals);
  }
  const double horizon =
      static_cast<double>(arrivals) / 1000.0;  // ~1000 arrivals/second
  query::Workload workload;
  workload.arrivals = SkewArrivals(counts, horizon, seed);
  const double span = workload.arrivals.Horizon();
  AQSIOS_CHECK_GT(span, 0.0);
  query::GlobalPlan probe = BuildSkewPlan(num_groups, kGroupSize, costs);
  double work = 0.0;
  for (int g = 0; g < num_groups; ++g) {
    work += static_cast<double>(counts[static_cast<size_t>(g)]) *
            probe.ExpectedWorkPerArrival(static_cast<stream::StreamId>(g));
  }
  AQSIOS_CHECK_GT(work, 0.0);
  const double scale = utilization * span / work;
  for (double& cost : costs) cost *= scale;
  workload.plan = BuildSkewPlan(num_groups, kGroupSize, costs);
  workload.expected_utilization = utilization;
  return workload;
}

struct SkewCell {
  std::string mode;  // "static", "rebalance", "steal"
  double wall_ms = 0.0;
  double tuples_per_wall_sec = 0.0;
  double load_imbalance = 1.0;
  double avg_slowdown = 0.0;
  int64_t tuples_emitted = 0;
  int64_t migrations = 0;
  int64_t steals = 0;
  double speedup_vs_static = 0.0;  // 0 on the static cell itself
};

/// One skew measurement at shards=K: `reps` timed runs, fastest kept, with
/// the same exact-replay determinism CHECK as the main scaling cells
/// (extended to migration/steal counts).
SkewCell RunSkewCell(const query::Workload& workload,
                     const sched::PolicyConfig& policy, int shards, int reps,
                     const std::string& mode) {
  core::SimulationOptions options;
  options.qos.track_per_class = false;
  options.shards = shards;
  if (mode != "static") {
    options.rebalance.enabled = true;
    // The steal cell is a pure work-stealing ablation: migrations off, so
    // the hot shard keeps its backlog and the idle cool shards must pull
    // trains through the bounded handoff. With migrations on, the epoch-1
    // group moves spread the backlog across every shard and no shard is
    // ever idle at a barrier, so stealing would never fire.
    if (mode == "steal") {
      options.rebalance.max_migrations_per_epoch = 0;
      options.rebalance.steal = true;
    } else {
      options.rebalance.max_migrations_per_epoch = 8;
    }
  }

  SkewCell cell;
  cell.mode = mode;
  for (int rep = 0; rep < reps; ++rep) {
    const Clock::time_point start = Clock::now();
    const core::ShardedRunResult sharded =
        core::SimulateSharded(workload, policy, options);
    const double ms = ElapsedMs(start);
    int64_t migrations = 0;
    int64_t steals = 0;
    for (const core::ShardRunStats& shard : sharded.shard_stats) {
      migrations += shard.migrations;
      steals += shard.steals;
    }
    if (rep == 0) {
      cell.wall_ms = ms;
      cell.tuples_emitted = sharded.result.qos.tuples_emitted;
      cell.avg_slowdown = sharded.result.qos.avg_slowdown;
      cell.load_imbalance = sharded.LoadImbalance();
      cell.migrations = migrations;
      cell.steals = steals;
    } else {
      AQSIOS_CHECK(sharded.result.qos.tuples_emitted == cell.tuples_emitted &&
                   sharded.result.qos.avg_slowdown == cell.avg_slowdown &&
                   migrations == cell.migrations && steals == cell.steals)
          << "repeated skew runs diverged in mode " << mode;
      cell.wall_ms = std::min(cell.wall_ms, ms);
    }
  }
  cell.tuples_per_wall_sec =
      cell.wall_ms > 0.0
          ? static_cast<double>(cell.tuples_emitted) / (cell.wall_ms / 1e3)
          : 0.0;
  return cell;
}

std::string SkewCellLine(const SkewCell& cell, int queries, int64_t arrivals,
                         int shards) {
  std::ostringstream os;
  os.precision(17);
  const double wall_ns = cell.wall_ms * 1e6;
  os << "    {\"name\": \"scaling/skew/" << cell.mode << "/q=" << queries
     << "/shards=" << shards << "\", \"ns_per_op\": "
     << wall_ns / static_cast<double>(std::max<int64_t>(arrivals, 1))
     << ", \"ops\": " << arrivals << ", \"wall_ms\": " << cell.wall_ms
     << ", \"tuples_per_wall_sec\": " << cell.tuples_per_wall_sec
     << ", \"load_imbalance\": " << cell.load_imbalance
     << ", \"avg_slowdown\": " << cell.avg_slowdown;
  if (cell.mode != "static") {
    os << ", \"migrations\": " << cell.migrations
       << ", \"steals\": " << cell.steals
       << ", \"speedup_vs_static\": " << cell.speedup_vs_static;
  }
  os << "}";
  return os.str();
}

bool IsBenchmarkLine(const std::string& line) {
  return line.rfind("    {\"name\": ", 0) == 0;
}

/// This bench owns both the scaling curve and the telemetry overhead pair.
bool IsScalingLine(const std::string& line) {
  return line.rfind("    {\"name\": \"scaling/", 0) == 0 ||
         line.rfind("    {\"name\": \"telemetry/", 0) == 0;
}

/// Splices the scaling cells into an aqsios-bench-perf/1 report: header and
/// non-scaling benchmark lines are kept verbatim, existing scaling/ lines are
/// replaced, and trailing commas are re-normalized. Falls back to writing a
/// fresh report when `path` is missing or not in the expected shape. Returns
/// false when `path` cannot be opened for writing.
bool WriteReport(const std::string& path, const std::vector<std::string>& cells,
                 int queries, int64_t arrivals, uint64_t seed, int reps,
                 double total_wall_ms) {
  std::vector<std::string> header;
  std::vector<std::string> kept;
  bool parsed = false;
  {
    std::ifstream in(path);
    if (in) {
      std::string line;
      bool in_benchmarks = false;
      while (std::getline(in, line)) {
        if (!in_benchmarks) {
          header.push_back(line);
          if (line == "  \"benchmarks\": [") {
            in_benchmarks = true;
            parsed = true;
          }
        } else if (IsBenchmarkLine(line)) {
          if (!IsScalingLine(line)) kept.push_back(line);
        }
        // Footer lines ("  ]", "}") and anything unexpected are re-emitted
        // from scratch below.
      }
    }
  }
  if (!parsed) {
    header.clear();
    std::ostringstream os;
    os.precision(17);
    os << "{\n  \"schema\": \"aqsios-bench-perf/1\",\n";
    os << "  \"queries\": " << queries << ",\n";
    os << "  \"arrivals\": " << arrivals << ",\n";
    os << "  \"seed\": " << seed << ",\n";
    os << "  \"reps\": " << reps << ",\n";
    os << "  \"total_wall_ms\": " << total_wall_ms << ",\n";
    os << "  \"benchmarks\": [";
    std::string line;
    std::istringstream is(os.str());
    while (std::getline(is, line)) header.push_back(line);
  }

  // Re-normalize commas: strip, then re-add on all but the last line.
  for (std::string& line : kept) {
    if (!line.empty() && line.back() == ',') line.pop_back();
  }
  std::vector<std::string> body = kept;
  body.insert(body.end(), cells.begin(), cells.end());

  std::ofstream out(path);
  if (!out.good()) return false;
  for (const std::string& line : header) out << line << "\n";
  for (size_t i = 0; i < body.size(); ++i) {
    out << body[i] << (i + 1 < body.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

int Main(int argc, char** argv) {
  std::string out = "BENCH_perf.json";
  int queries = 500;
  int64_t arrivals = 10000;
  int64_t seed = 42;
  int reps = 3;
  int threads = 0;
  bool quick = false;
  std::string metrics_out;
  std::string telemetry_jsonl;
  double telemetry_period_ms = 100.0;
  int metrics_port = -1;
  FlagSet flags("bench_scaling");
  flags.AddString("out", &out,
                  "perf report to splice the scaling cells into (empty = "
                  "stdout only)");
  flags.AddInt("queries", &queries, "registered CQs for the scaling cell");
  flags.AddInt("arrivals", &arrivals, "stream arrivals for the scaling cell");
  flags.AddInt("seed", &seed, "workload seed");
  flags.AddInt("reps", &reps, "repetitions per cell (min is reported)");
  flags.AddInt("threads", &threads,
               "shard worker threads (0 = one per hardware thread)");
  flags.AddBool("quick", &quick,
                "CI smoke mode: scaled-down cell, 1 rep, no speedup bar");
  flags.AddString("metrics-out", &metrics_out,
                  "OpenMetrics exposition file, atomically replaced every "
                  "sampler tick (empty = no live telemetry)");
  flags.AddString("telemetry-jsonl", &telemetry_jsonl,
                  "structured telemetry log (one JSON object per sample)");
  flags.AddDouble("telemetry-period-ms", &telemetry_period_ms,
                  "sampler period in wall milliseconds");
  flags.AddInt("metrics-port", &metrics_port,
               "serve /metrics on 127.0.0.1:<port> while sampling "
               "(0 = ephemeral, -1 = off)");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    if (flags.help_requested()) return 0;
    std::cerr << "bench_scaling: " << status << "\n" << flags.Usage();
    return 2;
  }
  if (quick) {
    reps = 1;
    queries = std::min(queries, 120);
    arrivals = std::min<int64_t>(arrivals, 2000);
  }

  const Clock::time_point suite_start = Clock::now();

  query::WorkloadConfig config;
  config.num_queries = queries;
  config.num_arrivals = arrivals;
  config.seed = static_cast<uint64_t>(seed);
  config.utilization = 0.9;
  const query::Workload workload = query::GenerateWorkload(config);
  sched::PolicyConfig policy = sched::PolicyConfig::Of(sched::PolicyKind::kBsd);
  policy.use_kinetic_index = false;

  obs::TelemetryOptions live;
  live.metrics_out = metrics_out;
  live.jsonl_out = telemetry_jsonl;
  live.period_ms = telemetry_period_ms;
  live.http_port = metrics_port;
  const bool live_enabled =
      !metrics_out.empty() || !telemetry_jsonl.empty() || metrics_port >= 0;
  const SampleReps live_reps =
      live_enabled ? SampleReps::kFirst : SampleReps::kNone;

  std::vector<ScalingCell> cells;
  for (const int shards : {1, 2, 4, 8}) {
    ScalingCell cell = RunCell(workload, policy, shards, reps, live, live_reps);
    cell.speedup_vs_shards1 =
        cells.empty() ? 1.0 : cells.front().wall_ms / cell.wall_ms;
    std::cout << "scaling/bsd/q=" << queries << "/shards=" << shards << ": "
              << cell.wall_ms << " ms, " << cell.tuples_per_wall_sec
              << " tuples/s, speedup " << cell.speedup_vs_shards1
              << "x, load imbalance " << cell.load_imbalance
              << ", avg slowdown " << cell.avg_slowdown << "\n";
    cells.push_back(cell);
  }

  if (!quick) {
    const ScalingCell& four = cells[2];
    AQSIOS_CHECK(four.shards == 4);
    AQSIOS_CHECK(four.speedup_vs_shards1 >= 2.5)
        << "shard-parallel runtime must clear 2.5x at 4 shards: got "
        << four.speedup_vs_shards1 << "x ("
        << cells.front().tuples_per_wall_sec << " -> "
        << four.tuples_per_wall_sec << " tuples/wall-sec)";
  }

  // Skewed cells: static hash placement vs the elastic rebalance controller
  // vs a stealing-only ablation on a workload whose hot sharing groups land
  // on one shard (docs/scaling.md). The cell gets its own query and arrival
  // budgets (the per-stream plan touches ~1 group per arrival, not all
  // queries, so it needs more arrivals to amortize setup; doubling the
  // query count doubles the units the saturated hot shard's linear scans
  // pay for — the scheduling wall the controller removes) and is calibrated
  // to 2.4x one engine's capacity: balanced that is a comfortable 0.6 per
  // shard, but the statically placed hot shard saturates — the regime the
  // controller and the stealing path exist for.
  const int skew_shards = 4;
  const int skew_queries = quick ? queries : queries * 2;
  const int64_t skew_arrivals = quick ? arrivals : arrivals * 40;
  int hot_groups = 0;
  const query::Workload skew_workload =
      MakeSkewWorkload(skew_queries, skew_arrivals, static_cast<uint64_t>(seed),
                       skew_shards, 2.4, &hot_groups);
  std::vector<SkewCell> skew_cells;
  for (const char* mode : {"static", "rebalance", "steal"}) {
    SkewCell cell =
        RunSkewCell(skew_workload, policy, skew_shards, reps, mode);
    cell.speedup_vs_static = skew_cells.empty()
                                 ? 0.0
                                 : skew_cells.front().wall_ms / cell.wall_ms;
    std::cout << "scaling/skew/" << mode << "/q=" << skew_queries
              << "/shards=" << skew_shards << ": " << cell.wall_ms << " ms, "
              << cell.tuples_per_wall_sec << " tuples/s, load imbalance "
              << cell.load_imbalance << ", migrations " << cell.migrations
              << ", steals " << cell.steals
              << (cell.mode == "static"
                      ? std::string()
                      : ", speedup vs static " +
                            std::to_string(cell.speedup_vs_static) + "x")
              << " (hot groups: " << hot_groups << ")\n";
    skew_cells.push_back(cell);
  }
  if (!quick) {
    const SkewCell& skew_static = skew_cells[0];
    const SkewCell& skew_rebalance = skew_cells[1];
    AQSIOS_CHECK(skew_rebalance.speedup_vs_static >= 1.8)
        << "elastic rebalancing must clear 1.8x on the skewed cell: got "
        << skew_rebalance.speedup_vs_static << "x";
    AQSIOS_CHECK(skew_rebalance.load_imbalance * 2.0 <=
                 skew_static.load_imbalance)
        << "elastic rebalancing must halve the skewed load imbalance: "
        << skew_static.load_imbalance << " -> "
        << skew_rebalance.load_imbalance;
  }

  // Sampler-overhead pair: re-run the shards=4 cell bare and with an
  // aggressive 20 ms sampler (5x the operational default) on every
  // repetition (no file/HTTP outputs — the cost measured is snapshot reads +
  // watchdog + exposition rendering, plus the wakeup preemption that
  // dominates on core-constrained hosts). The perf gate
  // (scripts/perf_compare.py) holds telemetry_overhead_pct <= 2%.
  obs::TelemetryOptions aggressive;
  aggressive.period_ms = 20.0;
  const ScalingCell overhead_off =
      RunCell(workload, policy, 4, reps, aggressive, SampleReps::kNone);
  const ScalingCell overhead_on =
      RunCell(workload, policy, 4, reps, aggressive, SampleReps::kAll);
  const double overhead_pct =
      overhead_off.wall_ms > 0.0
          ? (overhead_on.wall_ms - overhead_off.wall_ms) /
                overhead_off.wall_ms * 100.0
          : 0.0;
  std::cout << "telemetry/sampler q=" << queries << " shards=4: off "
            << overhead_off.wall_ms << " ms, on " << overhead_on.wall_ms
            << " ms, overhead " << overhead_pct << "%\n";

  std::vector<std::string> lines;
  for (const ScalingCell& cell : cells) {
    lines.push_back(CellLine(cell, queries, arrivals));
  }
  for (const SkewCell& cell : skew_cells) {
    lines.push_back(
        SkewCellLine(cell, skew_queries, skew_arrivals, skew_shards));
  }
  lines.push_back(
      OverheadLine(overhead_off, overhead_on, false, queries, arrivals));
  lines.push_back(
      OverheadLine(overhead_off, overhead_on, true, queries, arrivals));
  const double total_wall_ms = ElapsedMs(suite_start);
  if (!out.empty()) {
    if (!WriteReport(out, lines, queries, arrivals,
                     static_cast<uint64_t>(seed), reps, total_wall_ms)) {
      std::cerr << "bench_scaling: cannot write " << out << "\n";
      return 1;
    }
    std::cout << "spliced " << lines.size() << " scaling cells into " << out
              << "\n";
  } else {
    for (const std::string& line : lines) std::cout << line << "\n";
  }
  std::cout << "total: " << total_wall_ms << " ms\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
