// Shard-scaling curve for the partitioned runtime (docs/scaling.md).
//
// Runs the 500-query §8 testbed cell under BSD (§4.2.2) with the classic
// linear-scan pick — the configuration where per-decision cost is
// proportional to the number of units one scheduler owns, the scaling wall
// Aurora/STREAM describe — at shards ∈ {1, 2, 4, 8} and reports the
// wall-clock scaling curve. The win is algorithmic, not core-count-bound:
// each of K shard schedulers scans ~n/K units per pick, so the aggregate
// scheduling work drops by ~K even on a single core. (The kinetic index is
// the orthogonal single-scheduler answer to the same wall — O(log n) picks —
// and composes with sharding; it is deliberately off here so the bench
// measures the runtime's ability to shrink scan breadth, not the index.)
//
// Cells are spliced into the aqsios-bench-perf/1 report (default:
// BENCH_perf.json — run from the repo root to refresh the tracked
// trajectory) as
//   {"name": "scaling/bsd/q=500/shards=K", "ns_per_op": wall_ns/arrivals,
//    "ops": arrivals, "wall_ms": W, "tuples_per_wall_sec": T,
//    "speedup_vs_shards1": S, "load_imbalance": L, "avg_slowdown": A}
// Existing scaling/ lines are replaced; every other benchmark line and the
// report header are preserved byte-for-byte, so refreshing the scaling curve
// never perturbs the committed micro-benchmark baselines.
//
// The suite also measures live-telemetry overhead (docs/telemetry.md): the
// shards=4 cell re-runs with an aggressive 20 ms obs::TelemetrySampler
// attached, and the pair is spliced as
//   {"name": "telemetry/sampler_off/q=500/shards=4", ...}
//   {"name": "telemetry/sampler_on/q=500/shards=4", ...,
//    "telemetry_overhead_pct": P}
// scripts/perf_compare.py gates telemetry_overhead_pct (default max 2%).
// --metrics-out / --telemetry-jsonl / --metrics-port additionally attach a
// sampler to the first repetition of every scaling cell for live viewing
// (e.g. trace_tool top); min-wall timing still comes from the bare reps.
//
// In full mode the suite aborts unless shards=4 clears 2.5x the shards=1
// throughput (the tentpole acceptance bar); --quick skips the bar and runs a
// scaled-down cell as a CI/TSan smoke test.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "core/dsms.h"
#include "core/sharded_dsms.h"
#include "obs/telemetry.h"
#include "query/workload.h"
#include "sched/policy.h"

namespace aqsios {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct ScalingCell {
  int shards = 0;
  double wall_ms = 0.0;           // fastest repetition
  double tuples_per_wall_sec = 0.0;
  double speedup_vs_shards1 = 0.0;
  double load_imbalance = 1.0;
  double avg_slowdown = 0.0;
  int64_t tuples_emitted = 0;
};

/// Which repetitions run with a live obs::TelemetrySampler attached.
enum class SampleReps {
  kNone,      // bare timing runs
  kFirst,     // live viewing: rep 0 sampled, min-wall still from bare reps
  kAll,       // overhead measurement: every rep pays the sampler
};

/// One (shards=K) measurement: `reps` timed runs, fastest kept. Repeated
/// runs must agree exactly on the virtual results (the determinism contract
/// of docs/scaling.md) or the bench aborts — and since sampled and bare
/// repetitions are compared by the same CHECK, a sampler that perturbed
/// results would abort the suite.
ScalingCell RunCell(const query::Workload& workload,
                    const sched::PolicyConfig& policy, int shards, int reps,
                    const obs::TelemetryOptions& telemetry,
                    SampleReps sample_reps) {
  core::SimulationOptions options;
  options.qos.track_per_class = false;
  options.shards = shards;

  ScalingCell cell;
  cell.shards = shards;
  for (int rep = 0; rep < reps; ++rep) {
    const bool sampled = sample_reps == SampleReps::kAll ||
                         (sample_reps == SampleReps::kFirst && rep == 0);
    obs::TelemetryHub hub(shards);
    obs::TelemetryMeta meta;
    meta.job = "bench_scaling";
    meta.policy = "bsd";
    obs::TelemetrySampler sampler(&hub, telemetry, meta);
    options.telemetry = sampled ? &hub : nullptr;
    if (sampled) sampler.Start();
    const Clock::time_point start = Clock::now();
    int64_t tuples = 0;
    double slowdown = 0.0;
    double imbalance = 1.0;
    if (shards > 1) {
      const core::ShardedRunResult sharded =
          core::SimulateSharded(workload, policy, options);
      tuples = sharded.result.qos.tuples_emitted;
      slowdown = sharded.result.qos.avg_slowdown;
      imbalance = sharded.LoadImbalance();
    } else {
      const core::RunResult result =
          core::Simulate(workload, policy, options);
      tuples = result.qos.tuples_emitted;
      slowdown = result.qos.avg_slowdown;
    }
    if (sampled) sampler.Stop();
    const double ms = ElapsedMs(start);
    if (rep == 0) {
      cell.wall_ms = ms;
      cell.tuples_emitted = tuples;
      cell.avg_slowdown = slowdown;
      cell.load_imbalance = imbalance;
    } else {
      AQSIOS_CHECK(tuples == cell.tuples_emitted &&
                   slowdown == cell.avg_slowdown)
          << "repeated sharded runs diverged at shards=" << shards;
      cell.wall_ms = std::min(cell.wall_ms, ms);
    }
  }
  cell.tuples_per_wall_sec =
      cell.wall_ms > 0.0
          ? static_cast<double>(cell.tuples_emitted) / (cell.wall_ms / 1e3)
          : 0.0;
  return cell;
}

std::string CellLine(const ScalingCell& cell, int queries, int64_t arrivals) {
  std::ostringstream os;
  os.precision(17);
  const double wall_ns = cell.wall_ms * 1e6;
  os << "    {\"name\": \"scaling/bsd/q=" << queries
     << "/shards=" << cell.shards << "\", \"ns_per_op\": "
     << wall_ns / static_cast<double>(std::max<int64_t>(arrivals, 1))
     << ", \"ops\": " << arrivals << ", \"wall_ms\": " << cell.wall_ms
     << ", \"tuples_per_wall_sec\": " << cell.tuples_per_wall_sec
     << ", \"speedup_vs_shards1\": " << cell.speedup_vs_shards1
     << ", \"load_imbalance\": " << cell.load_imbalance
     << ", \"avg_slowdown\": " << cell.avg_slowdown << "}";
  return os.str();
}

/// The sampler-overhead pair: the shards=4 cell bare vs with an aggressive
/// sampler attached on every repetition.
std::string OverheadLine(const ScalingCell& off, const ScalingCell& on,
                         bool sampler_on, int queries, int64_t arrivals) {
  std::ostringstream os;
  os.precision(17);
  const ScalingCell& cell = sampler_on ? on : off;
  const double wall_ns = cell.wall_ms * 1e6;
  os << "    {\"name\": \"telemetry/sampler_"
     << (sampler_on ? "on" : "off") << "/q=" << queries
     << "/shards=" << cell.shards << "\", \"ns_per_op\": "
     << wall_ns / static_cast<double>(std::max<int64_t>(arrivals, 1))
     << ", \"ops\": " << arrivals << ", \"wall_ms\": " << cell.wall_ms;
  if (sampler_on) {
    const double pct = off.wall_ms > 0.0
                           ? (on.wall_ms - off.wall_ms) / off.wall_ms * 100.0
                           : 0.0;
    os << ", \"telemetry_overhead_pct\": " << pct;
  }
  os << ", \"tuples_emitted\": " << cell.tuples_emitted << "}";
  return os.str();
}

bool IsBenchmarkLine(const std::string& line) {
  return line.rfind("    {\"name\": ", 0) == 0;
}

/// This bench owns both the scaling curve and the telemetry overhead pair.
bool IsScalingLine(const std::string& line) {
  return line.rfind("    {\"name\": \"scaling/", 0) == 0 ||
         line.rfind("    {\"name\": \"telemetry/", 0) == 0;
}

/// Splices the scaling cells into an aqsios-bench-perf/1 report: header and
/// non-scaling benchmark lines are kept verbatim, existing scaling/ lines are
/// replaced, and trailing commas are re-normalized. Falls back to writing a
/// fresh report when `path` is missing or not in the expected shape. Returns
/// false when `path` cannot be opened for writing.
bool WriteReport(const std::string& path, const std::vector<std::string>& cells,
                 int queries, int64_t arrivals, uint64_t seed, int reps,
                 double total_wall_ms) {
  std::vector<std::string> header;
  std::vector<std::string> kept;
  bool parsed = false;
  {
    std::ifstream in(path);
    if (in) {
      std::string line;
      bool in_benchmarks = false;
      while (std::getline(in, line)) {
        if (!in_benchmarks) {
          header.push_back(line);
          if (line == "  \"benchmarks\": [") {
            in_benchmarks = true;
            parsed = true;
          }
        } else if (IsBenchmarkLine(line)) {
          if (!IsScalingLine(line)) kept.push_back(line);
        }
        // Footer lines ("  ]", "}") and anything unexpected are re-emitted
        // from scratch below.
      }
    }
  }
  if (!parsed) {
    header.clear();
    std::ostringstream os;
    os.precision(17);
    os << "{\n  \"schema\": \"aqsios-bench-perf/1\",\n";
    os << "  \"queries\": " << queries << ",\n";
    os << "  \"arrivals\": " << arrivals << ",\n";
    os << "  \"seed\": " << seed << ",\n";
    os << "  \"reps\": " << reps << ",\n";
    os << "  \"total_wall_ms\": " << total_wall_ms << ",\n";
    os << "  \"benchmarks\": [";
    std::string line;
    std::istringstream is(os.str());
    while (std::getline(is, line)) header.push_back(line);
  }

  // Re-normalize commas: strip, then re-add on all but the last line.
  for (std::string& line : kept) {
    if (!line.empty() && line.back() == ',') line.pop_back();
  }
  std::vector<std::string> body = kept;
  body.insert(body.end(), cells.begin(), cells.end());

  std::ofstream out(path);
  if (!out.good()) return false;
  for (const std::string& line : header) out << line << "\n";
  for (size_t i = 0; i < body.size(); ++i) {
    out << body[i] << (i + 1 < body.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

int Main(int argc, char** argv) {
  std::string out = "BENCH_perf.json";
  int queries = 500;
  int64_t arrivals = 10000;
  int64_t seed = 42;
  int reps = 3;
  int threads = 0;
  bool quick = false;
  std::string metrics_out;
  std::string telemetry_jsonl;
  double telemetry_period_ms = 100.0;
  int metrics_port = -1;
  FlagSet flags("bench_scaling");
  flags.AddString("out", &out,
                  "perf report to splice the scaling cells into (empty = "
                  "stdout only)");
  flags.AddInt("queries", &queries, "registered CQs for the scaling cell");
  flags.AddInt("arrivals", &arrivals, "stream arrivals for the scaling cell");
  flags.AddInt("seed", &seed, "workload seed");
  flags.AddInt("reps", &reps, "repetitions per cell (min is reported)");
  flags.AddInt("threads", &threads,
               "shard worker threads (0 = one per hardware thread)");
  flags.AddBool("quick", &quick,
                "CI smoke mode: scaled-down cell, 1 rep, no speedup bar");
  flags.AddString("metrics-out", &metrics_out,
                  "OpenMetrics exposition file, atomically replaced every "
                  "sampler tick (empty = no live telemetry)");
  flags.AddString("telemetry-jsonl", &telemetry_jsonl,
                  "structured telemetry log (one JSON object per sample)");
  flags.AddDouble("telemetry-period-ms", &telemetry_period_ms,
                  "sampler period in wall milliseconds");
  flags.AddInt("metrics-port", &metrics_port,
               "serve /metrics on 127.0.0.1:<port> while sampling "
               "(0 = ephemeral, -1 = off)");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    if (flags.help_requested()) return 0;
    std::cerr << "bench_scaling: " << status << "\n" << flags.Usage();
    return 2;
  }
  if (quick) {
    reps = 1;
    queries = std::min(queries, 120);
    arrivals = std::min<int64_t>(arrivals, 2000);
  }

  const Clock::time_point suite_start = Clock::now();

  query::WorkloadConfig config;
  config.num_queries = queries;
  config.num_arrivals = arrivals;
  config.seed = static_cast<uint64_t>(seed);
  config.utilization = 0.9;
  const query::Workload workload = query::GenerateWorkload(config);
  sched::PolicyConfig policy = sched::PolicyConfig::Of(sched::PolicyKind::kBsd);
  policy.use_kinetic_index = false;

  obs::TelemetryOptions live;
  live.metrics_out = metrics_out;
  live.jsonl_out = telemetry_jsonl;
  live.period_ms = telemetry_period_ms;
  live.http_port = metrics_port;
  const bool live_enabled =
      !metrics_out.empty() || !telemetry_jsonl.empty() || metrics_port >= 0;
  const SampleReps live_reps =
      live_enabled ? SampleReps::kFirst : SampleReps::kNone;

  std::vector<ScalingCell> cells;
  for (const int shards : {1, 2, 4, 8}) {
    ScalingCell cell = RunCell(workload, policy, shards, reps, live, live_reps);
    cell.speedup_vs_shards1 =
        cells.empty() ? 1.0 : cells.front().wall_ms / cell.wall_ms;
    std::cout << "scaling/bsd/q=" << queries << "/shards=" << shards << ": "
              << cell.wall_ms << " ms, " << cell.tuples_per_wall_sec
              << " tuples/s, speedup " << cell.speedup_vs_shards1
              << "x, load imbalance " << cell.load_imbalance
              << ", avg slowdown " << cell.avg_slowdown << "\n";
    cells.push_back(cell);
  }

  if (!quick) {
    const ScalingCell& four = cells[2];
    AQSIOS_CHECK(four.shards == 4);
    AQSIOS_CHECK(four.speedup_vs_shards1 >= 2.5)
        << "shard-parallel runtime must clear 2.5x at 4 shards: got "
        << four.speedup_vs_shards1 << "x ("
        << cells.front().tuples_per_wall_sec << " -> "
        << four.tuples_per_wall_sec << " tuples/wall-sec)";
  }

  // Sampler-overhead pair: re-run the shards=4 cell bare and with an
  // aggressive 20 ms sampler (5x the operational default) on every
  // repetition (no file/HTTP outputs — the cost measured is snapshot reads +
  // watchdog + exposition rendering, plus the wakeup preemption that
  // dominates on core-constrained hosts). The perf gate
  // (scripts/perf_compare.py) holds telemetry_overhead_pct <= 2%.
  obs::TelemetryOptions aggressive;
  aggressive.period_ms = 20.0;
  const ScalingCell overhead_off =
      RunCell(workload, policy, 4, reps, aggressive, SampleReps::kNone);
  const ScalingCell overhead_on =
      RunCell(workload, policy, 4, reps, aggressive, SampleReps::kAll);
  const double overhead_pct =
      overhead_off.wall_ms > 0.0
          ? (overhead_on.wall_ms - overhead_off.wall_ms) /
                overhead_off.wall_ms * 100.0
          : 0.0;
  std::cout << "telemetry/sampler q=" << queries << " shards=4: off "
            << overhead_off.wall_ms << " ms, on " << overhead_on.wall_ms
            << " ms, overhead " << overhead_pct << "%\n";

  std::vector<std::string> lines;
  for (const ScalingCell& cell : cells) {
    lines.push_back(CellLine(cell, queries, arrivals));
  }
  lines.push_back(
      OverheadLine(overhead_off, overhead_on, false, queries, arrivals));
  lines.push_back(
      OverheadLine(overhead_off, overhead_on, true, queries, arrivals));
  const double total_wall_ms = ElapsedMs(suite_start);
  if (!out.empty()) {
    if (!WriteReport(out, lines, queries, arrivals,
                     static_cast<uint64_t>(seed), reps, total_wall_ms)) {
      std::cerr << "bench_scaling: cannot write " << out << "\n";
      return 1;
    }
    std::cout << "spliced " << lines.size() << " scaling cells into " << out
              << "\n";
  } else {
    for (const std::string& line : lines) std::cout << line << "\n";
  }
  std::cout << "total: " << total_wall_ms << " ms\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
