// Figure 12: l2 norm of slowdowns for multi-stream (window-join) queries.
//
// Paper: BSD best — up to ~14% below HNR, and an order of magnitude (15-17x)
// below RR and FCFS at 0.9 utilization, because RR/FCFS ignore selectivity,
// which matters even more when join selectivities exceed 1.

#include <iostream>

#include "bench_util.h"

namespace aqsios {
namespace {

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_fig12_multistream");
  double poisson_rate = 50.0;
  flags.AddDouble("rate", &poisson_rate, "per-stream Poisson rate (1/s)");
  bench::BenchArgs args = bench::ParseBenchArgs("fig12", argc, argv, &flags);
  bench::PrintHeader(
      "Figure 12: l2 norm of slowdowns, two-stream window-join queries",
      "BSD best (~14% below HNR; ~15x below RR/FCFS at 0.9)");

  core::SweepConfig sweep = bench::TestbedSweep(args);
  sweep.workload.num_queries = std::min(args.queries, 30);
  sweep.workload.multi_stream = true;
  sweep.workload.arrival_pattern = query::ArrivalPattern::kPoisson;
  sweep.workload.poisson_rate = poisson_rate;
  sweep.workload.window_min_seconds = 0.5;
  sweep.workload.window_max_seconds = 2.0;
  sweep.workload.num_join_keys = 1;
  sweep.policies = {sched::PolicyConfig::Of(sched::PolicyKind::kRoundRobin),
                    sched::PolicyConfig::Of(sched::PolicyKind::kFcfs),
                    sched::PolicyConfig::Of(sched::PolicyKind::kHnr),
                    sched::PolicyConfig::Of(sched::PolicyKind::kBsd)};
  const auto cells = core::RunSweep(sweep);
  bench::MaybePrintJson(args, cells);
  bench::MaybeWriteTrace(args, sweep);
  std::cout << core::SweepTable(cells, core::Metric::kL2Slowdown).ToAscii()
            << "\n";

  const double top = sweep.utilizations.back();
  auto at = [&](const char* policy) {
    for (const auto& cell : cells) {
      if (cell.utilization == top && cell.policy == policy) {
        return cell.result.qos.l2_slowdown;
      }
    }
    return 0.0;
  };
  bench::PrintReduction("BSD vs HNR ", at("BSD"), at("HNR"));
  std::cout << "RR / BSD improvement factor:   " << at("RR") / at("BSD")
            << "x\n";
  std::cout << "FCFS / BSD improvement factor: " << at("FCFS") / at("BSD")
            << "x\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
