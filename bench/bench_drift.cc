// Statistics-drift benchmark: online calibration vs static priorities
// (docs/calibration.md, ROADMAP item 2).
//
// Runs a §8 testbed cell whose stream statistics *drift mid-run*: half the
// queries (ids with id % 2 == 0) ramp their per-tuple cost ×--cost-factor
// and their operator selectivities ×--selectivity-factor starting at 30% of
// the arrival span (stream/drift.h). The pre-drift utilization is low
// (default 0.3) so the post-drift system lands near saturation
// (0.3 × (1 + 5)/2 = 0.9 at the defaults): a static-priority scheduler
// keeps spending its budget by yesterday's cost model while the calibrated
// one re-keys the drifted units within a few epochs.
//
// Cells spliced into the aqsios-bench-perf/1 report (default:
// BENCH_perf.json — run from the repo root to refresh the tracked
// trajectory), for each policy in {lsf, bsd}:
//   "drift/static/<policy>/q=N"      — drift on, calibration off;
//   "drift/calibrated/<policy>/q=N"  — drift on, calibration on; carries
//       calibration_updates / calibration_rekeys / est_cost_drift /
//       est_sel_drift and p99_slowdown_vs_static (calibrated p99 ÷ static
//       p99 — scripts/perf_compare.py gates it at ≤ --max-drift-p99-ratio);
// plus a steady-state overhead pair (no drift, lsf):
//   "drift/steady/lsf/calibration=off" and "...=on" — the on cell carries
//       calibration_overhead_pct, the relative wall-clock cost of leaving
//       the calibrator running when nothing drifts (gated absolutely by
//       perf_compare.py --max-calibration-overhead).
// Existing drift/ lines are replaced; every other benchmark line and the
// report header are preserved byte-for-byte.
//
// --metrics-out / --telemetry-jsonl / --metrics-port attach a live
// telemetry sampler to the first repetition of each cell; later repetitions
// run bare, so the determinism CHECK doubles as proof that sampling never
// perturbs results. Calibrated cells give the aqsios_calibration_* metric
// families non-zero samples (the CI smoke pins them with
// check_openmetrics.py --require).
//
// In full mode the suite aborts unless (a) repeated runs agree exactly —
// drift factors are pure functions of (query id, arrival time) and
// calibration epochs fire at deterministic virtual times, so calibrated
// runs are bit-reproducible — (b) every calibrated cell actually re-keyed
// units (the adaptation engaged), and (c) for every policy the calibrated
// p99 slowdown beats the static one by at least 1.5×. --quick runs a
// scaled-down cell as a CI/sanitizer smoke test and skips the (c) bar
// (tiny workloads make the margin noisy); --shards exercises the sharded
// runtime's per-shard drift-membership translation.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "core/dsms.h"
#include "obs/telemetry.h"
#include "query/workload.h"
#include "sched/policy.h"

namespace aqsios {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct PolicyUnderTest {
  const char* label;
  sched::PolicyKind kind;
};

// The two policies the acceptance gate names: LSF keys on waiting/ideal
// time, BSD on Φ — both go stale in opposite directions under cost drift.
constexpr PolicyUnderTest kPolicies[] = {
    {"lsf", sched::PolicyKind::kLsf},
    {"bsd", sched::PolicyKind::kBsd},
};

enum class CellKind { kDriftStatic, kDriftCalibrated, kSteadyOff, kSteadyOn };

struct DriftCell {
  CellKind kind = CellKind::kDriftStatic;
  std::string policy;
  double wall_ms = 0.0;  // fastest repetition
  int64_t ops = 0;       // arrivals driven through the run
  double p99_slowdown = 0.0;
  double avg_slowdown = 0.0;
  int64_t peak_queued_tuples = 0;
  int64_t tuples_emitted = 0;
  // Calibrated cells only.
  int64_t calibration_epochs = 0;
  int64_t calibration_updates = 0;
  int64_t calibration_rekeys = 0;
  double est_cost_drift = 0.0;
  double est_sel_drift = 0.0;
  double p99_slowdown_vs_static = 0.0;
  // Steady-state on cell only.
  double calibration_overhead_pct = 0.0;
};

/// Live-telemetry wiring shared by all cells (docs/telemetry.md): sampler on
/// the first repetition only, so the repetition-determinism CHECK doubles as
/// proof that telemetry never perturbs results.
struct TelemetrySetup {
  obs::TelemetryOptions options;
  bool enabled = false;
};

template <typename Body>
void WithSampler(const TelemetrySetup& telemetry, obs::TelemetryHub* hub,
                 const std::string& policy_label, Body&& body) {
  obs::TelemetryMeta meta;
  meta.job = "bench_drift";
  meta.policy = policy_label;
  obs::TelemetrySampler sampler(hub, telemetry.options, meta);
  sampler.Start();
  body();
  sampler.Stop();
}

/// The virtual-result signature repeated runs must reproduce exactly.
struct CellSignature {
  int64_t tuples_emitted = 0;
  int64_t calibration_updates = 0;
  int64_t calibration_rekeys = 0;
  double p99_slowdown = 0.0;

  bool operator==(const CellSignature& other) const {
    return tuples_emitted == other.tuples_emitted &&
           calibration_updates == other.calibration_updates &&
           calibration_rekeys == other.calibration_rekeys &&
           p99_slowdown == other.p99_slowdown;
  }
};

struct RunOutcome {
  core::RunResult result;
  double wall_ms = 0.0;  // fastest repetition
};

/// `reps` timed runs of one configuration; fastest wall kept, virtual
/// results checked identical across repetitions.
RunOutcome TimedRuns(const query::Workload& workload,
                     const sched::PolicyConfig& policy,
                     const core::SimulationOptions& base_options,
                     const std::string& label, int reps,
                     const TelemetrySetup& telemetry) {
  core::SimulationOptions options = base_options;
  RunOutcome out;
  CellSignature first_sig;
  for (int rep = 0; rep < reps; ++rep) {
    core::RunResult result;
    const bool sampled = telemetry.enabled && rep == 0;
    const Clock::time_point start = Clock::now();
    if (sampled) {
      obs::TelemetryHub hub(options.shards);
      options.telemetry = &hub;
      WithSampler(telemetry, &hub, label, [&] {
        result = core::Simulate(workload, policy, options);
      });
      options.telemetry = nullptr;
    } else {
      result = core::Simulate(workload, policy, options);
    }
    const double ms = ElapsedMs(start);
    CellSignature sig;
    sig.tuples_emitted = result.qos.tuples_emitted;
    sig.calibration_updates = result.counters.calibration_updates;
    sig.calibration_rekeys = result.counters.calibration_rekeys;
    sig.p99_slowdown = result.qos.p99_slowdown;
    if (rep == 0) {
      first_sig = sig;
      out.result = std::move(result);
      out.wall_ms = ms;
    } else {
      AQSIOS_CHECK(sig == first_sig)
          << "repeated drift runs diverged at " << label;
      out.wall_ms = std::min(out.wall_ms, ms);
    }
  }
  return out;
}

DriftCell MakeCell(CellKind kind, const std::string& policy,
                   const RunOutcome& run, int64_t arrivals) {
  DriftCell cell;
  cell.kind = kind;
  cell.policy = policy;
  cell.wall_ms = run.wall_ms;
  cell.ops = arrivals;
  cell.p99_slowdown = run.result.qos.p99_slowdown;
  cell.avg_slowdown = run.result.qos.avg_slowdown;
  cell.peak_queued_tuples = run.result.counters.peak_queued_tuples;
  cell.tuples_emitted = run.result.qos.tuples_emitted;
  cell.calibration_epochs = run.result.counters.calibration_epochs;
  cell.calibration_updates = run.result.counters.calibration_updates;
  cell.calibration_rekeys = run.result.counters.calibration_rekeys;
  cell.est_cost_drift = run.result.counters.calibration_cost_drift;
  cell.est_sel_drift = run.result.counters.calibration_selectivity_drift;
  return cell;
}

std::string CellName(const DriftCell& cell, int queries) {
  std::ostringstream os;
  switch (cell.kind) {
    case CellKind::kDriftStatic:
      os << "drift/static/" << cell.policy << "/q=" << queries;
      break;
    case CellKind::kDriftCalibrated:
      os << "drift/calibrated/" << cell.policy << "/q=" << queries;
      break;
    case CellKind::kSteadyOff:
      os << "drift/steady/" << cell.policy << "/calibration=off";
      break;
    case CellKind::kSteadyOn:
      os << "drift/steady/" << cell.policy << "/calibration=on";
      break;
  }
  return os.str();
}

std::string CellLine(const DriftCell& cell, int queries) {
  std::ostringstream os;
  os.precision(17);
  const double wall_ns = cell.wall_ms * 1e6;
  os << "    {\"name\": \"" << CellName(cell, queries)
     << "\", \"ns_per_op\": "
     << wall_ns / static_cast<double>(std::max<int64_t>(cell.ops, 1))
     << ", \"ops\": " << cell.ops << ", \"wall_ms\": " << cell.wall_ms
     << ", \"p99_slowdown\": " << cell.p99_slowdown
     << ", \"avg_slowdown\": " << cell.avg_slowdown
     << ", \"peak_queued_tuples\": " << cell.peak_queued_tuples
     << ", \"tuples_emitted\": " << cell.tuples_emitted;
  if (cell.kind == CellKind::kDriftCalibrated ||
      cell.kind == CellKind::kSteadyOn) {
    os << ", \"calibration_epochs\": " << cell.calibration_epochs
       << ", \"calibration_updates\": " << cell.calibration_updates
       << ", \"calibration_rekeys\": " << cell.calibration_rekeys
       << ", \"est_cost_drift\": " << cell.est_cost_drift
       << ", \"est_sel_drift\": " << cell.est_sel_drift;
  }
  if (cell.kind == CellKind::kDriftCalibrated) {
    os << ", \"p99_slowdown_vs_static\": " << cell.p99_slowdown_vs_static;
  }
  if (cell.kind == CellKind::kSteadyOn) {
    os << ", \"calibration_overhead_pct\": " << cell.calibration_overhead_pct;
  }
  os << "}";
  return os.str();
}

bool IsBenchmarkLine(const std::string& line) {
  return line.rfind("    {\"name\": ", 0) == 0;
}

bool IsDriftLine(const std::string& line) {
  return line.rfind("    {\"name\": \"drift/", 0) == 0;
}

/// Splices the drift cells into an aqsios-bench-perf/1 report: header and
/// non-drift benchmark lines (micro benches, scaling, stress cells) are
/// kept verbatim, existing drift/ lines are replaced, trailing commas are
/// re-normalized. Falls back to a fresh report when `path` is missing or
/// not in the expected shape. Returns false when `path` cannot be written.
bool WriteReport(const std::string& path, const std::vector<std::string>& cells,
                 int queries, int64_t arrivals, uint64_t seed, int reps,
                 double total_wall_ms) {
  std::vector<std::string> header;
  std::vector<std::string> kept;
  bool parsed = false;
  {
    std::ifstream in(path);
    if (in) {
      std::string line;
      bool in_benchmarks = false;
      while (std::getline(in, line)) {
        if (!in_benchmarks) {
          header.push_back(line);
          if (line == "  \"benchmarks\": [") {
            in_benchmarks = true;
            parsed = true;
          }
        } else if (IsBenchmarkLine(line)) {
          if (!IsDriftLine(line)) kept.push_back(line);
        }
        // Footer lines ("  ]", "}") and anything unexpected are re-emitted
        // from scratch below.
      }
    }
  }
  if (!parsed) {
    header.clear();
    std::ostringstream os;
    os.precision(17);
    os << "{\n  \"schema\": \"aqsios-bench-perf/1\",\n";
    os << "  \"queries\": " << queries << ",\n";
    os << "  \"arrivals\": " << arrivals << ",\n";
    os << "  \"seed\": " << seed << ",\n";
    os << "  \"reps\": " << reps << ",\n";
    os << "  \"total_wall_ms\": " << total_wall_ms << ",\n";
    os << "  \"benchmarks\": [";
    std::string line;
    std::istringstream is(os.str());
    while (std::getline(is, line)) header.push_back(line);
  }

  for (std::string& line : kept) {
    if (!line.empty() && line.back() == ',') line.pop_back();
  }
  std::vector<std::string> body = kept;
  body.insert(body.end(), cells.begin(), cells.end());

  std::ofstream out(path);
  if (!out.good()) return false;
  for (const std::string& line : header) out << line << "\n";
  for (size_t i = 0; i < body.size(); ++i) {
    out << body[i] << (i + 1 < body.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

int Main(int argc, char** argv) {
  std::string out = "BENCH_perf.json";
  int queries = 100;
  int64_t arrivals = 12000;
  int64_t seed = 42;
  int reps = 2;
  double utilization = 0.3;
  double cost_factor = 5.0;
  double selectivity_factor = 0.7;
  int shards = 1;
  bool quick = false;
  std::string metrics_out;
  std::string telemetry_jsonl;
  double telemetry_period_ms = 100.0;
  int metrics_port = -1;
  FlagSet flags("bench_drift");
  flags.AddString("out", &out,
                  "perf report to splice the drift cells into (empty = "
                  "stdout only)");
  flags.AddInt("queries", &queries, "registered CQs for the drift cell");
  flags.AddInt("arrivals", &arrivals, "stream arrivals for the drift cell");
  flags.AddInt("seed", &seed, "workload seed");
  flags.AddInt("reps", &reps, "repetitions per cell (min is reported)");
  flags.AddDouble("utilization", &utilization,
                  "pre-drift target utilization (< 1; the drifted half "
                  "multiplies it toward saturation)");
  flags.AddDouble("cost-factor", &cost_factor,
                  "per-tuple cost multiplier the drifting queries ramp to");
  flags.AddDouble("selectivity-factor", &selectivity_factor,
                  "selectivity multiplier the drifting queries ramp to");
  flags.AddInt("shards", &shards,
               "shard-parallel runtime (1 = classic single scheduler); "
               "exercises the per-shard drift-membership translation");
  flags.AddBool("quick", &quick,
                "CI smoke mode: scaled-down cell, 1 rep, no p99 margin bar");
  flags.AddString("metrics-out", &metrics_out,
                  "OpenMetrics exposition file, atomically replaced every "
                  "sampler tick (empty = no live telemetry)");
  flags.AddString("telemetry-jsonl", &telemetry_jsonl,
                  "structured telemetry log (one JSON object per sample)");
  flags.AddDouble("telemetry-period-ms", &telemetry_period_ms,
                  "sampler period in wall milliseconds");
  flags.AddInt("metrics-port", &metrics_port,
               "serve /metrics on 127.0.0.1:<port> while sampling "
               "(0 = ephemeral, -1 = off)");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    if (flags.help_requested()) return 0;
    std::cerr << "bench_drift: " << status << "\n" << flags.Usage();
    return 2;
  }
  if (quick) {
    reps = 1;
    queries = std::min(queries, 60);
    arrivals = std::min<int64_t>(arrivals, 4000);
  }
  AQSIOS_CHECK(utilization < 1.0)
      << "the drift scenario starts below saturation; the drifted half "
         "pushes it toward 1";
  AQSIOS_CHECK(cost_factor > 1.0)
      << "a drift benchmark without cost drift measures nothing";

  TelemetrySetup telemetry;
  telemetry.options.metrics_out = metrics_out;
  telemetry.options.jsonl_out = telemetry_jsonl;
  telemetry.options.period_ms = telemetry_period_ms;
  telemetry.options.http_port = metrics_port;
  telemetry.enabled =
      !metrics_out.empty() || !telemetry_jsonl.empty() || metrics_port >= 0;

  const Clock::time_point suite_start = Clock::now();

  query::WorkloadConfig config;
  config.num_queries = queries;
  config.num_arrivals = arrivals;
  config.seed = static_cast<uint64_t>(seed);
  config.utilization = utilization;
  const query::Workload workload = query::GenerateWorkload(config);
  const double span = workload.arrivals.arrivals.empty()
                          ? 1.0
                          : workload.arrivals.arrivals.back().time;

  // Half the queries ramp to cost_factor over [30%, 40%] of the span; the
  // post-drift utilization is utilization × (1 + cost_factor)/2 at the
  // defaults, close to saturation — exactly where mis-prioritization hurts.
  stream::DriftConfig drift;
  drift.enabled = true;
  drift.modulo = 2;
  drift.phase = 0;
  drift.cost_factor = cost_factor;
  drift.selectivity_factor = selectivity_factor;
  drift.step_time = 0.3 * span;
  drift.ramp_seconds = 0.1 * span;

  // ~200 epochs over the run: the calibrator reacts within a few percent of
  // the span while its epoch work stays negligible next to dispatching.
  sched::CalibrationConfig calibration;
  calibration.enabled = true;
  calibration.period = span / 200.0;

  std::cout << "drift testbed: " << queries << " queries, " << arrivals
            << " MMPP arrivals over " << span << " s, pre-drift utilization "
            << workload.expected_utilization << ", cost x" << cost_factor
            << " / selectivity x" << selectivity_factor
            << " ramp on half the queries at t=" << drift.step_time << "\n\n";

  std::vector<DriftCell> cells;
  for (const PolicyUnderTest& under_test : kPolicies) {
    const sched::PolicyConfig policy = sched::PolicyConfig::Of(under_test.kind);

    core::SimulationOptions options;
    options.qos.track_per_class = false;
    options.shards = shards;
    options.drift = drift;
    const RunOutcome static_run =
        TimedRuns(workload, policy, options,
                  std::string(under_test.label) + "/static", reps, telemetry);
    AQSIOS_CHECK(static_run.result.counters.calibration_epochs == 0);
    cells.push_back(MakeCell(CellKind::kDriftStatic, under_test.label,
                             static_run, arrivals));

    options.calibration = calibration;
    const RunOutcome calibrated_run = TimedRuns(
        workload, policy, options,
        std::string(under_test.label) + "/calibrated", reps, telemetry);
    cells.push_back(MakeCell(CellKind::kDriftCalibrated, under_test.label,
                             calibrated_run, arrivals));
    DriftCell& calibrated = cells.back();
    const DriftCell& static_cell = cells[cells.size() - 2];
    calibrated.p99_slowdown_vs_static =
        static_cell.p99_slowdown > 0.0
            ? calibrated.p99_slowdown / static_cell.p99_slowdown
            : 0.0;

    std::cout << CellName(static_cell, queries) << ": p99 slowdown "
              << static_cell.p99_slowdown << ", avg "
              << static_cell.avg_slowdown << ", " << static_cell.wall_ms
              << " ms\n";
    std::cout << CellName(calibrated, queries) << ": p99 slowdown "
              << calibrated.p99_slowdown << " ("
              << calibrated.p99_slowdown_vs_static << "x static), avg "
              << calibrated.avg_slowdown << ", "
              << calibrated.calibration_updates << " updates / "
              << calibrated.calibration_rekeys << " rekeys over "
              << calibrated.calibration_epochs << " epochs, est cost drift "
              << calibrated.est_cost_drift << ", " << calibrated.wall_ms
              << " ms\n";

    AQSIOS_CHECK(calibrated.calibration_rekeys > 0)
        << under_test.label
        << ": a drifting workload must re-key priorities — the calibration "
           "path never engaged";
    if (!quick) {
      AQSIOS_CHECK(calibrated.p99_slowdown * 1.5 <= static_cell.p99_slowdown)
          << under_test.label
          << ": calibration must beat static priorities on p99 slowdown by "
             ">=1.5x under drift (" << calibrated.p99_slowdown << " vs "
          << static_cell.p99_slowdown << ")";
    }
  }

  // Steady-state overhead pair: same workload, NO drift — the calibrator
  // runs, converges, and (past its hysteresis band) stops touching the
  // scheduler; the pair isolates what that costs in wall clock.
  {
    const sched::PolicyConfig policy =
        sched::PolicyConfig::Of(sched::PolicyKind::kLsf);
    core::SimulationOptions options;
    options.qos.track_per_class = false;
    options.shards = shards;
    const RunOutcome off_run = TimedRuns(workload, policy, options,
                                         "lsf/steady-off", reps, telemetry);
    cells.push_back(MakeCell(CellKind::kSteadyOff, "lsf", off_run, arrivals));
    options.calibration = calibration;
    const RunOutcome on_run = TimedRuns(workload, policy, options,
                                        "lsf/steady-on", reps, telemetry);
    cells.push_back(MakeCell(CellKind::kSteadyOn, "lsf", on_run, arrivals));
    DriftCell& on_cell = cells.back();
    on_cell.calibration_overhead_pct =
        off_run.wall_ms > 0.0
            ? (on_run.wall_ms - off_run.wall_ms) / off_run.wall_ms * 100.0
            : 0.0;
    std::cout << "\n" << CellName(on_cell, queries) << ": "
              << on_cell.calibration_overhead_pct << "% wall overhead ("
              << on_run.wall_ms << " vs " << off_run.wall_ms << " ms)\n";
  }

  std::vector<std::string> lines;
  for (const DriftCell& cell : cells) {
    lines.push_back(CellLine(cell, queries));
  }
  const double total_wall_ms = ElapsedMs(suite_start);
  if (!out.empty()) {
    if (!WriteReport(out, lines, queries, arrivals,
                     static_cast<uint64_t>(seed), reps, total_wall_ms)) {
      std::cerr << "bench_drift: cannot write " << out << "\n";
      return 1;
    }
    std::cout << "spliced " << lines.size() << " drift cells into " << out
              << "\n";
  } else {
    for (const std::string& line : lines) std::cout << line << "\n";
  }
  std::cout << "total: " << total_wall_ms << " ms\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
