// Hand-rolled micro-benchmark suite for the scheduler and engine hot paths.
//
// Replaces the earlier google-benchmark harness with a dependency-free driver
// that writes a machine-readable report (default: BENCH_perf.json in the
// current directory — run from the repo root to refresh the tracked perf
// trajectory; compare two reports with scripts/perf_compare.py).
//
// Schema (aqsios-bench-perf/1):
//   {
//     "schema": "aqsios-bench-perf/1",
//     "queries": N, "arrivals": N, "seed": N, "reps": N,
//     "total_wall_ms": W,
//     "benchmarks": [
//       { "name": "pick/lsf/n=60/kinetic=on", "ns_per_op": X,
//         "ops": N, "wall_ms": W }, ...
//     ]
//   }
// Each benchmark runs `reps` times and reports the fastest repetition
// (minimum is the standard noise-robust statistic for micro-benchmarks on a
// shared machine); ns_per_op = wall / ops of that repetition.
//
// The suite covers:
//  * pick/<policy>/n=<units>/kinetic=<on|off> — steady-state PickNext churn
//    against a synthetic ready set. n=60 exercises the kinetic index's dense
//    small-n mode, n=500 its tournament tree (the O(log n) vs O(n)
//    separation shows up as kinetic=on scaling far better from 60 to 500
//    than kinetic=off). The on/off pick sequences are checksummed and must
//    match exactly — the index is a drop-in replacement for the scan.
//  * queue/... — TupleQueue (inline ring buffer) vs std::deque on the
//    engine's shallow-queue churn pattern.
//  * join/insert_probe — symmetric-hash-join insert+probe path.
//  * sim/<policy>/q=<n>/kinetic=<on|off> — full Simulate cells on the §8
//    testbed workload; on/off QoS results are checked for exact equality.
//  * sim/<policy>/q=<n>/ov=on/batch=<k> — overhead-charged Simulate cells
//    across tuple-train batch sizes; each carries its deterministic virtual
//    throughput (tuples_per_vsec), and batch>=8 must clear 1.5x the batch=1
//    throughput for the overhead-paying policies (LSF/BSD) or the run
//    aborts.
//  * kernel/{scalar,columnar}/<policy>/q=<n>/ov=on/batch=32 — a train-bound
//    kernel-stress cell (deep fused select chains under sustained backlog,
//    see MakeKernelStressWorkload) executed with the scalar train pass vs
//    the columnar SoA kernels (docs/performance.md). Both serialized results
//    are checked for byte equality; each cell carries its wall-clock
//    tuples_per_wall_sec, and the columnar cell carries speedup_vs_scalar,
//    which scripts/perf_compare.py gates at >= 1.5x in CI.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "core/dsms.h"
#include "core/report.h"
#include "exec/window_join.h"
#include "query/workload.h"
#include "sched/policy.h"
#include "sched/unit.h"

namespace aqsios {
namespace {

using Clock = std::chrono::steady_clock;

/// Compiler barrier standing in for benchmark::DoNotOptimize.
inline void KeepAlive(const void* p) { asm volatile("" : : "r"(p) : "memory"); }
inline void KeepAlive(int64_t v) { asm volatile("" : : "r"(v)); }

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct BenchResult {
  std::string name;
  double ns_per_op = 0.0;
  int64_t ops = 0;
  double wall_ms = 0.0;
  /// Virtual throughput (emitted tuples per simulated second) for the
  /// batched sim/ cells; 0 = not applicable, omitted from the JSON.
  /// Deterministic — a pure function of the simulation, not of the host.
  double tuples_per_vsec = 0.0;
  /// Wall-clock throughput (emitted tuples per second of host time, fastest
  /// repetition) for the kernel/ cells; 0 = not applicable, omitted.
  double tuples_per_wall_sec = 0.0;
  /// Columnar kernel/ cells only: wall-clock speedup over the paired scalar
  /// cell (scalar wall / columnar wall, fastest repetitions); 0 = not
  /// applicable, omitted. Gated by scripts/perf_compare.py.
  double speedup_vs_scalar = 0.0;
};

/// Runs `body` (which performs `ops` operations) `reps` times and keeps the
/// fastest repetition.
template <typename Body>
BenchResult RunTimed(const std::string& name, int64_t ops, int reps,
                     Body&& body) {
  BenchResult result;
  result.name = name;
  result.ops = ops;
  result.wall_ms = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const Clock::time_point start = Clock::now();
    body();
    const double ms = ElapsedMs(start);
    if (rep == 0 || ms < result.wall_ms) result.wall_ms = ms;
  }
  result.ns_per_op =
      result.wall_ms * 1e6 / static_cast<double>(std::max<int64_t>(ops, 1));
  std::cout << result.name << ": " << result.ns_per_op << " ns/op  ("
            << result.ops << " ops, " << result.wall_ms << " ms)\n";
  return result;
}

// ---------------------------------------------------------------------------
// PickNext churn.

sched::UnitTable MakeUnits(int n) {
  sched::UnitTable units;
  for (int i = 0; i < n; ++i) {
    sched::Unit unit;
    unit.id = i;
    unit.query = i;
    unit.input_stream = 0;
    const double phi = 1.0 + (i * 37 % 1000);
    unit.stats.phi = phi;
    unit.stats.output_rate = phi * 2.0;
    unit.stats.normalized_rate = phi * 1.5;
    unit.stats.ideal_time = 0.001 + 0.0001 * (i % 32);
    units.push_back(std::move(unit));
  }
  return units;
}

void FillQueues(sched::UnitTable& units, sched::Scheduler& scheduler) {
  for (size_t u = 0; u < units.size(); ++u) {
    units[u].queue.push_back(
        sched::QueueEntry{static_cast<int64_t>(u), 0.001 * static_cast<double>(u)});
    scheduler.OnEnqueue(static_cast<int>(u));
  }
}

/// Steady-state pick churn: pick, dequeue the picked units, immediately
/// re-enqueue them at the current clock. Returns a checksum of the pick
/// sequence so kinetic on/off runs can be compared for exact equality.
uint64_t PickChurn(sched::Scheduler& scheduler, sched::UnitTable& units,
                   int64_t ops) {
  FillQueues(units, scheduler);
  SimTime now = 1.0;
  std::vector<int> out;
  sched::SchedulingCost cost;
  uint64_t checksum = 1469598103934665603ull;  // FNV offset basis
  for (int64_t i = 0; i < ops; ++i) {
    out.clear();
    cost.Clear();
    if (!scheduler.PickNext(now, &cost, &out)) {
      FillQueues(units, scheduler);
      continue;
    }
    for (int u : out) {
      checksum = (checksum ^ static_cast<uint64_t>(u)) * 1099511628211ull;
      units[static_cast<size_t>(u)].queue.pop_front();
      scheduler.OnDequeue(u);
    }
    for (int u : out) {
      units[static_cast<size_t>(u)].queue.push_back(sched::QueueEntry{i, now});
      scheduler.OnEnqueue(u);
    }
    now += 1e-6;
    KeepAlive(out.data());
  }
  return checksum;
}

sched::PolicyConfig PickPolicy(const std::string& policy, bool kinetic) {
  sched::PolicyConfig config;
  if (policy == "lsf") {
    config = sched::PolicyConfig::Of(sched::PolicyKind::kLsf);
  } else if (policy == "bsd") {
    config = sched::PolicyConfig::Of(sched::PolicyKind::kBsd);
  } else if (policy == "bsd-clustered") {
    config = sched::PolicyConfig::Of(sched::PolicyKind::kBsdClustered);
    config.clustered.num_clusters = 12;
    config.clustered.use_kinetic_index = kinetic;
  } else if (policy == "rr") {
    config = sched::PolicyConfig::Of(sched::PolicyKind::kRoundRobin);
  } else if (policy == "hnr") {
    config = sched::PolicyConfig::Of(sched::PolicyKind::kHnr);
  } else {
    AQSIOS_CHECK(false) << "unknown pick policy " << policy;
  }
  config.use_kinetic_index = kinetic;
  return config;
}

/// Benchmarks PickNext churn for one (policy, n) cell. For the policies with
/// a kinetic index the off-variant is run too and its pick sequence is
/// checked to be identical.
void BenchPick(const std::string& policy, int n, int64_t ops, int reps,
               bool has_kinetic, std::vector<BenchResult>* results) {
  uint64_t checksum_on = 0;
  {
    sched::UnitTable units = MakeUnits(n);
    auto scheduler = sched::CreateScheduler(PickPolicy(policy, true));
    scheduler->Attach(&units);
    checksum_on = PickChurn(*scheduler, units, ops);  // warm-up + checksum
    std::ostringstream name;
    name << "pick/" << policy << "/n=" << n
         << (has_kinetic ? "/kinetic=on" : "");
    results->push_back(RunTimed(name.str(), ops, reps, [&] {
      sched::UnitTable fresh = MakeUnits(n);
      auto s = sched::CreateScheduler(PickPolicy(policy, true));
      s->Attach(&fresh);
      KeepAlive(static_cast<int64_t>(PickChurn(*s, fresh, ops)));
    }));
  }
  if (!has_kinetic) return;
  sched::UnitTable units = MakeUnits(n);
  auto scheduler = sched::CreateScheduler(PickPolicy(policy, false));
  scheduler->Attach(&units);
  const uint64_t checksum_off = PickChurn(*scheduler, units, ops);
  AQSIOS_CHECK(checksum_on == checksum_off)
      << "kinetic on/off pick sequences diverged for " << policy
      << " at n=" << n;
  std::ostringstream name;
  name << "pick/" << policy << "/n=" << n << "/kinetic=off";
  results->push_back(RunTimed(name.str(), ops, reps, [&] {
    sched::UnitTable fresh = MakeUnits(n);
    auto s = sched::CreateScheduler(PickPolicy(policy, false));
    s->Attach(&fresh);
    KeepAlive(static_cast<int64_t>(PickChurn(*s, fresh, ops)));
  }));
}

// ---------------------------------------------------------------------------
// TupleQueue vs std::deque.

/// The engine's dominant queue pattern: queues hover near-empty (depth 1-3)
/// with occasional bursts. Both containers run the identical sequence.
template <typename Queue>
int64_t QueueChurn(int64_t ops) {
  Queue queue;
  int64_t alive = 0;
  int64_t sink = 0;
  for (int64_t i = 0; i < ops; ++i) {
    queue.push_back(sched::QueueEntry{i, static_cast<double>(i)});
    ++alive;
    // Drain to depth (i % 4): mostly shallow, periodically deeper.
    const int64_t target = i % 4;
    while (alive > target) {
      sink += queue.front().arrival;
      queue.pop_front();
      --alive;
    }
  }
  return sink;
}

// ---------------------------------------------------------------------------
// Simulate cells.

core::RunResult SimCell(const query::Workload& workload,
                        const std::string& policy, bool kinetic) {
  sched::PolicyConfig config = PickPolicy(policy, kinetic);
  core::SimulationOptions options;
  options.qos.track_per_class = false;
  return core::Simulate(workload, config, options);
}

void CheckSameResults(const core::RunResult& a, const core::RunResult& b,
                      const std::string& what) {
  AQSIOS_CHECK(a.qos.tuples_emitted == b.qos.tuples_emitted &&
               a.qos.avg_slowdown == b.qos.avg_slowdown &&
               a.qos.max_slowdown == b.qos.max_slowdown &&
               a.qos.l2_slowdown == b.qos.l2_slowdown &&
               a.qos.avg_response == b.qos.avg_response)
      << "kinetic on/off simulation results diverged for " << what;
}

/// Benchmarks one full-simulation cell; for kinetic-capable policies the
/// off-variant runs too and both results are checked for exact equality.
void BenchSim(const query::Workload& workload, const std::string& policy,
              int queries, int reps, bool has_kinetic,
              std::vector<BenchResult>* results) {
  const core::RunResult on = SimCell(workload, policy, true);
  if (has_kinetic) {
    const core::RunResult off = SimCell(workload, policy, false);
    CheckSameResults(on, off, policy);
  }
  KeepAlive(static_cast<int64_t>(on.qos.tuples_emitted));
  {
    std::ostringstream name;
    name << "sim/" << policy << "/q=" << queries
         << (has_kinetic ? "/kinetic=on" : "");
    results->push_back(RunTimed(name.str(), 1, reps, [&] {
      const core::RunResult r = SimCell(workload, policy, true);
      KeepAlive(static_cast<int64_t>(r.qos.tuples_emitted));
    }));
  }
  if (!has_kinetic) return;
  std::ostringstream name;
  name << "sim/" << policy << "/q=" << queries << "/kinetic=off";
  results->push_back(RunTimed(name.str(), 1, reps, [&] {
    const core::RunResult r = SimCell(workload, policy, false);
    KeepAlive(static_cast<int64_t>(r.qos.tuples_emitted));
  }));
}

// ---------------------------------------------------------------------------
// Batched sim cells (§9.2 overhead amortization).

core::RunResult BatchedSimCell(const query::Workload& workload,
                               const std::string& policy, int batch) {
  sched::PolicyConfig config = PickPolicy(policy, /*kinetic=*/true);
  core::SimulationOptions options;
  options.qos.track_per_class = false;
  options.charge_scheduling_overhead = true;
  options.batch_size = batch;
  return core::Simulate(workload, config, options);
}

/// Emitted tuples per simulated second — the virtual throughput the batched
/// dispatch improves by spending fewer virtual seconds on scheduling
/// decisions. Deterministic, so CHECKable (unlike wall time).
double VirtualThroughput(const core::RunResult& r) {
  return r.counters.end_time > 0.0
             ? static_cast<double>(r.qos.tuples_emitted) / r.counters.end_time
             : 0.0;
}

/// Benchmarks overhead-charged sim cells across tuple-train batch sizes.
/// For the dynamic-priority policies (nonzero per-decision overhead) the
/// amortization must show up in the virtual metrics: at batch=8 the cell
/// has to clear 1.5× the batch=1 virtual throughput or the suite aborts.
void BenchSimBatched(const query::Workload& workload,
                     const std::string& policy, int queries, int reps,
                     const std::vector<int>& batches,
                     std::vector<BenchResult>* results) {
  double base_throughput = 0.0;
  for (const int batch : batches) {
    const core::RunResult r = BatchedSimCell(workload, policy, batch);
    const double throughput = VirtualThroughput(r);
    if (batch == 1) {
      base_throughput = throughput;
    } else if (batch >= 8 && base_throughput > 0.0) {
      AQSIOS_CHECK(throughput >= 1.5 * base_throughput)
          << "batched dispatch must amortize " << policy
          << "'s scheduling overhead: batch=" << batch << " throughput "
          << throughput << " < 1.5x batch=1 throughput " << base_throughput;
    }
    std::ostringstream name;
    name << "sim/" << policy << "/q=" << queries << "/ov=on/batch=" << batch;
    BenchResult result = RunTimed(name.str(), 1, reps, [&] {
      const core::RunResult rep = BatchedSimCell(workload, policy, batch);
      KeepAlive(static_cast<int64_t>(rep.qos.tuples_emitted));
    });
    result.tuples_per_vsec = throughput;
    results->push_back(result);
  }
}

// ---------------------------------------------------------------------------
// Columnar kernel cells (scalar vs SoA train execution).

/// Builds the kernel cells' workload: deep fused select chains under
/// sustained backlog, so the tuple-train chain pass — the code the columnar
/// kernels replace — dominates the cell instead of the delivery/QoS floor
/// that the §8 testbed cells (3-op chains, utilization 0.9) spend most of
/// their wall-clock in. Each query is a 48-select correlated chain whose
/// selectivities step down from 0.98 to 0.15 in plateaus of four operators
/// (the scalar pass evaluates ~half the chain per tuple before the first
/// failing predicate; plateaus let the columnar reach kernel reuse its
/// prefix-min survivor counts), costs cycle through four cost classes, and
/// deterministic arrivals at 1.3x capacity keep every train at the full
/// batch size. Deterministic; byte-equality between the scalar and columnar
/// runs is asserted on it like on any workload.
query::Workload MakeKernelStressWorkload(int queries, int64_t arrivals) {
  constexpr int kChainOps = 48;
  constexpr int kPlateau = 4;
  std::vector<query::CompiledQuery> compiled;
  compiled.reserve(static_cast<size_t>(queries));
  for (int qi = 0; qi < queries; ++qi) {
    query::QuerySpec spec;
    spec.id = qi;
    spec.left_stream = 0;
    const double cost_ms = 0.002 * static_cast<double>(1 << (qi % 4));
    for (int x = 0; x < kChainOps; ++x) {
      const int step = (x / kPlateau) * kPlateau;
      const double selectivity =
          0.98 - (0.98 - 0.15) * static_cast<double>(step) /
                     static_cast<double>(kChainOps - 1);
      spec.left_ops.push_back(query::MakeSelect(cost_ms, selectivity));
    }
    compiled.emplace_back(std::move(spec),
                          query::SelectivityMode::kCorrelatedAttribute);
  }
  query::Workload workload;
  workload.selectivity_mode = query::SelectivityMode::kCorrelatedAttribute;
  workload.plan = query::GlobalPlan(std::move(compiled), {}, /*num_streams=*/1);
  const double interval = workload.plan.ExpectedWorkPerArrival(0) / 1.3;
  workload.expected_utilization = 1.3;
  Rng rng(7);
  workload.arrivals.arrivals.reserve(static_cast<size_t>(arrivals));
  for (int64_t i = 0; i < arrivals; ++i) {
    stream::Arrival arrival;
    arrival.id = i;
    arrival.stream = 0;
    arrival.time = interval * static_cast<double>(i);
    arrival.attribute = rng.Uniform(0.0, 100.0);
    workload.arrivals.arrivals.push_back(arrival);
  }
  return workload;
}

core::RunResult KernelSimCell(const query::Workload& workload,
                              const std::string& policy, bool columnar) {
  sched::PolicyConfig config = PickPolicy(policy, /*kinetic=*/true);
  core::SimulationOptions options;
  options.qos.track_per_class = false;
  options.charge_scheduling_overhead = true;
  options.batch_size = 32;
  options.use_columnar_kernels = columnar;
  return core::Simulate(workload, config, options);
}

/// Benchmarks one policy's batch=32 overhead-charged kernel-stress cell
/// under the scalar train pass and under the columnar SoA kernels. The two
/// serialized results must be byte-equal — the flag selects an execution
/// strategy, not semantics — and the columnar cell carries its wall-clock
/// speedup over the scalar cell for the CI kernel gate
/// (scripts/perf_compare.py).
void BenchKernel(const query::Workload& workload, const std::string& policy,
                 int queries, int reps, std::vector<BenchResult>* results) {
  const core::RunResult scalar = KernelSimCell(workload, policy, false);
  const core::RunResult columnar = KernelSimCell(workload, policy, true);
  AQSIOS_CHECK(core::RunResultToJson(scalar) ==
               core::RunResultToJson(columnar))
      << "columnar kernels changed " << policy << "'s serialized results";
  const double emitted = static_cast<double>(scalar.qos.tuples_emitted);
  std::ostringstream scalar_name;
  scalar_name << "kernel/scalar/" << policy << "/q=" << queries
              << "/ov=on/batch=32";
  BenchResult scalar_cell = RunTimed(scalar_name.str(), 1, reps, [&] {
    const core::RunResult r = KernelSimCell(workload, policy, false);
    KeepAlive(static_cast<int64_t>(r.qos.tuples_emitted));
  });
  std::ostringstream columnar_name;
  columnar_name << "kernel/columnar/" << policy << "/q=" << queries
                << "/ov=on/batch=32";
  BenchResult columnar_cell = RunTimed(columnar_name.str(), 1, reps, [&] {
    const core::RunResult r = KernelSimCell(workload, policy, true);
    KeepAlive(static_cast<int64_t>(r.qos.tuples_emitted));
  });
  scalar_cell.tuples_per_wall_sec = emitted / (scalar_cell.wall_ms * 1e-3);
  columnar_cell.tuples_per_wall_sec = emitted / (columnar_cell.wall_ms * 1e-3);
  columnar_cell.speedup_vs_scalar =
      scalar_cell.wall_ms / columnar_cell.wall_ms;
  std::cout << "kernel/" << policy << ": columnar speedup "
            << columnar_cell.speedup_vs_scalar << "x\n";
  results->push_back(scalar_cell);
  results->push_back(columnar_cell);
}

// ---------------------------------------------------------------------------

std::string ToJson(const std::vector<BenchResult>& results, int queries,
                   int64_t arrivals, uint64_t seed, int reps,
                   double total_wall_ms) {
  std::ostringstream os;
  os.precision(17);
  os << "{\n  \"schema\": \"aqsios-bench-perf/1\",\n";
  os << "  \"queries\": " << queries << ",\n";
  os << "  \"arrivals\": " << arrivals << ",\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"reps\": " << reps << ",\n";
  os << "  \"total_wall_ms\": " << total_wall_ms << ",\n";
  os << "  \"benchmarks\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    os << "    {\"name\": \"" << r.name << "\", \"ns_per_op\": " << r.ns_per_op
       << ", \"ops\": " << r.ops << ", \"wall_ms\": " << r.wall_ms;
    if (r.tuples_per_vsec > 0.0) {
      os << ", \"tuples_per_vsec\": " << r.tuples_per_vsec;
    }
    if (r.tuples_per_wall_sec > 0.0) {
      os << ", \"tuples_per_wall_sec\": " << r.tuples_per_wall_sec;
    }
    if (r.speedup_vs_scalar > 0.0) {
      os << ", \"speedup_vs_scalar\": " << r.speedup_vs_scalar;
    }
    os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

int Main(int argc, char** argv) {
  std::string out = "BENCH_perf.json";
  int queries = 60;
  int64_t arrivals = 15000;
  int64_t seed = 42;
  int reps = 3;
  bool quick = false;
  FlagSet flags("bench_micro_sched");
  flags.AddString("out", &out, "output JSON path (empty = stdout only)");
  flags.AddInt("queries", &queries, "queries for the sim/ cells");
  flags.AddInt("arrivals", &arrivals, "arrivals for the sim/ cells");
  flags.AddInt("seed", &seed, "workload seed");
  flags.AddInt("reps", &reps, "repetitions per benchmark (min is reported)");
  flags.AddBool("quick", &quick,
                "CI smoke mode: fewer ops/reps, skip the 500-query cells");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    if (flags.help_requested()) return 0;
    std::cerr << "bench_micro_sched: " << status << "\n" << flags.Usage();
    return 2;
  }
  if (quick) reps = 1;

  const Clock::time_point suite_start = Clock::now();
  std::vector<BenchResult> results;

  // PickNext churn: n=60 runs the kinetic index in dense mode, n=500 in
  // tournament-tree mode (the dense fast path caps at
  // sched::KineticIndex::kDenseMaxCapacity = 128 slots).
  const int64_t pick_ops = quick ? 20000 : 200000;
  for (const int n : {60, 500}) {
    if (quick && n == 500) continue;
    BenchPick("lsf", n, pick_ops, reps, /*has_kinetic=*/true, &results);
    BenchPick("bsd", n, pick_ops, reps, /*has_kinetic=*/true, &results);
    BenchPick("bsd-clustered", n, pick_ops, reps, /*has_kinetic=*/true,
              &results);
    BenchPick("rr", n, pick_ops, reps, /*has_kinetic=*/false, &results);
    BenchPick("hnr", n, pick_ops, reps, /*has_kinetic=*/false, &results);
  }

  // TupleQueue vs std::deque on the engine's shallow-churn pattern.
  const int64_t queue_ops = quick ? 200000 : 2000000;
  const int64_t sink_tuple = QueueChurn<sched::TupleQueue>(queue_ops);
  const int64_t sink_deque = QueueChurn<std::deque<sched::QueueEntry>>(queue_ops);
  AQSIOS_CHECK(sink_tuple == sink_deque)
      << "TupleQueue and std::deque churn diverged";
  results.push_back(RunTimed("queue/tuple_queue/churn", queue_ops, reps, [&] {
    KeepAlive(QueueChurn<sched::TupleQueue>(queue_ops));
  }));
  results.push_back(RunTimed("queue/deque/churn", queue_ops, reps, [&] {
    KeepAlive(QueueChurn<std::deque<sched::QueueEntry>>(queue_ops));
  }));

  // Symmetric-hash-join insert+probe.
  const int64_t join_ops = quick ? 100000 : 1000000;
  results.push_back(RunTimed("join/insert_probe/keys=64", join_ops, reps, [&] {
    exec::SymmetricHashJoinState join(/*window=*/1.0);
    std::vector<exec::SymmetricHashJoinState::Entry> candidates;
    for (int64_t i = 0; i < join_ops; ++i) {
      exec::SymmetricHashJoinState::Entry entry;
      entry.id = i;
      entry.timestamp = 1e-4 * static_cast<double>(i);
      entry.arrival_time = entry.timestamp;
      const int32_t key = static_cast<int32_t>(i % 64);
      join.Insert(query::Side::kRight, key, entry);
      candidates.clear();
      join.Probe(query::Side::kLeft, key, entry.timestamp, &candidates);
      KeepAlive(candidates.data());
    }
  }));

  // Full-simulation cells on the §8 testbed workload.
  query::WorkloadConfig config;
  config.num_queries = queries;
  config.num_arrivals = quick ? std::min<int64_t>(arrivals, 3000) : arrivals;
  config.seed = static_cast<uint64_t>(seed);
  config.utilization = 0.9;
  const query::Workload workload = query::GenerateWorkload(config);
  BenchSim(workload, "lsf", queries, reps, /*has_kinetic=*/true, &results);
  BenchSim(workload, "bsd", queries, reps, /*has_kinetic=*/true, &results);
  BenchSim(workload, "bsd-clustered", queries, reps, /*has_kinetic=*/true,
           &results);
  BenchSim(workload, "hnr", queries, reps, /*has_kinetic=*/false, &results);

  // Tuple-train batching under §9.2 overhead charging. Only the
  // dynamic-priority policies (LSF, BSD) pay per-decision overhead, so only
  // they gain virtual throughput from amortizing it; the batch=8 cells must
  // clear 1.5x the batch=1 cells (checked inside BenchSimBatched).
  const std::vector<int> batches = quick ? std::vector<int>{1, 8}
                                         : std::vector<int>{1, 8, 32};
  BenchSimBatched(workload, "bsd", queries, reps, batches, &results);
  if (!quick) {
    BenchSimBatched(workload, "lsf", queries, reps, batches, &results);
  }

  // Scalar vs columnar train kernels at batch=32 on the train-bound
  // kernel-stress workload (docs/performance.md). Runs in quick mode too so
  // the CI smoke and sanitizer jobs execute the columnar path and its
  // byte-equality check.
  const query::Workload kernel_workload =
      MakeKernelStressWorkload(queries, quick ? 4000 : 15000);
  BenchKernel(kernel_workload, "lsf", queries, reps, &results);
  BenchKernel(kernel_workload, "bsd", queries, reps, &results);

  if (!quick) {
    // 500-query cell: the ready set is large enough that the kinetic
    // tournament's O(log n) picks separate clearly from the O(n) scan.
    query::WorkloadConfig big = config;
    big.num_queries = 500;
    big.num_arrivals = std::min<int64_t>(arrivals, 10000);
    const query::Workload big_workload = query::GenerateWorkload(big);
    BenchSim(big_workload, "bsd", 500, reps, /*has_kinetic=*/true, &results);
    BenchSim(big_workload, "lsf", 500, reps, /*has_kinetic=*/true, &results);
  }

  const double total_wall_ms = ElapsedMs(suite_start);
  const std::string json = ToJson(results, queries, config.num_arrivals,
                                  static_cast<uint64_t>(seed), reps,
                                  total_wall_ms);
  if (!out.empty()) {
    std::ofstream file(out);
    file << json;
    std::cout << "wrote " << out << "\n";
  } else {
    std::cout << json;
  }
  std::cout << "total: " << total_wall_ms << " ms\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
