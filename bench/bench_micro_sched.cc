// Micro-benchmarks (google-benchmark) for the scheduler hot paths: the
// per-scheduling-point cost of each policy, clustering construction, Fagin
// pruning vs linear scan, and symmetric-hash-join probes.

#include <benchmark/benchmark.h>

#include "exec/window_join.h"
#include "query/workload.h"
#include "sched/basic_policies.h"
#include "sched/clustered_bsd.h"
#include "sched/lp_norm_policy.h"
#include "sched/policy.h"
#include "sched/qos_graph.h"

namespace aqsios {
namespace {

sched::UnitTable MakeUnits(int n) {
  sched::UnitTable units;
  for (int i = 0; i < n; ++i) {
    sched::Unit unit;
    unit.id = i;
    unit.query = i;
    unit.input_stream = 0;
    const double phi = 1.0 + (i * 37 % 1000);
    unit.stats.phi = phi;
    unit.stats.output_rate = phi * 2.0;
    unit.stats.normalized_rate = phi * 1.5;
    unit.stats.ideal_time = 0.001 + 0.0001 * (i % 32);
    units.push_back(std::move(unit));
  }
  return units;
}

void FillQueues(sched::UnitTable& units, sched::Scheduler& scheduler) {
  for (size_t u = 0; u < units.size(); ++u) {
    units[u].queue.push_back(
        sched::QueueEntry{static_cast<int64_t>(u), 0.001 * u});
    scheduler.OnEnqueue(static_cast<int>(u));
  }
}

void RunPickLoop(benchmark::State& state, sched::Scheduler& scheduler,
                 sched::UnitTable& units) {
  FillQueues(units, scheduler);
  SimTime now = 1.0;
  std::vector<int> out;
  sched::SchedulingCost cost;
  for (auto _ : state) {
    out.clear();
    cost.Clear();
    if (!scheduler.PickNext(now, &cost, &out)) {
      state.PauseTiming();
      FillQueues(units, scheduler);
      state.ResumeTiming();
      continue;
    }
    for (int u : out) {
      units[static_cast<size_t>(u)].queue.pop_front();
      scheduler.OnDequeue(u);
    }
    // Re-enqueue to keep the system busy.
    for (int u : out) {
      units[static_cast<size_t>(u)].queue.push_back(
          sched::QueueEntry{0, now});
      scheduler.OnEnqueue(u);
    }
    now += 1e-6;
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_PickNextHnr(benchmark::State& state) {
  sched::UnitTable units = MakeUnits(static_cast<int>(state.range(0)));
  sched::StaticPriorityScheduler scheduler(sched::StaticPolicy::kHnr);
  scheduler.Attach(&units);
  RunPickLoop(state, scheduler, units);
}
BENCHMARK(BM_PickNextHnr)->Arg(50)->Arg(500);

void BM_PickNextLsf(benchmark::State& state) {
  sched::UnitTable units = MakeUnits(static_cast<int>(state.range(0)));
  sched::LsfScheduler scheduler;
  scheduler.Attach(&units);
  RunPickLoop(state, scheduler, units);
}
BENCHMARK(BM_PickNextLsf)->Arg(50)->Arg(500);

void BM_PickNextBsdExact(benchmark::State& state) {
  sched::UnitTable units = MakeUnits(static_cast<int>(state.range(0)));
  sched::BsdScheduler scheduler(/*count_all_units=*/true);
  scheduler.Attach(&units);
  RunPickLoop(state, scheduler, units);
}
BENCHMARK(BM_PickNextBsdExact)->Arg(50)->Arg(500);

void BM_PickNextBsdClustered(benchmark::State& state) {
  sched::UnitTable units = MakeUnits(static_cast<int>(state.range(0)));
  sched::ClusteredBsdOptions options;
  options.num_clusters = 12;
  options.use_fagin = state.range(1) != 0;
  sched::ClusteredBsdScheduler scheduler(options);
  scheduler.Attach(&units);
  RunPickLoop(state, scheduler, units);
}
BENCHMARK(BM_PickNextBsdClustered)
    ->Args({500, 0})
    ->Args({500, 1});

void BM_PickNextLpNorm(benchmark::State& state) {
  sched::UnitTable units = MakeUnits(static_cast<int>(state.range(0)));
  sched::LpNormScheduler scheduler(3.0);
  scheduler.Attach(&units);
  RunPickLoop(state, scheduler, units);
}
BENCHMARK(BM_PickNextLpNorm)->Arg(50)->Arg(500);

void BM_PickNextQosGraph(benchmark::State& state) {
  sched::UnitTable units = MakeUnits(static_cast<int>(state.range(0)));
  sched::QosGraphScheduler scheduler(sched::QosGraphOptions{});
  scheduler.Attach(&units);
  RunPickLoop(state, scheduler, units);
}
BENCHMARK(BM_PickNextQosGraph)->Arg(50)->Arg(500);

void BM_BuildClustering(benchmark::State& state) {
  const sched::UnitTable units = MakeUnits(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto clustering = sched::BuildClustering(
        units, sched::ClusteringKind::kLogarithmic, 12);
    benchmark::DoNotOptimize(clustering.cluster_of_unit.data());
  }
}
BENCHMARK(BM_BuildClustering)->Arg(500)->Arg(5000);

void BM_WindowJoinInsertProbe(benchmark::State& state) {
  exec::SymmetricHashJoinState join(/*window=*/1.0);
  const int keys = static_cast<int>(state.range(0));
  int64_t i = 0;
  std::vector<exec::SymmetricHashJoinState::Entry> candidates;
  for (auto _ : state) {
    exec::SymmetricHashJoinState::Entry entry;
    entry.id = i;
    entry.timestamp = 1e-4 * static_cast<double>(i);
    entry.arrival_time = entry.timestamp;
    const int32_t key = static_cast<int32_t>(i % keys);
    join.Insert(query::Side::kRight, key, entry);
    candidates.clear();
    // A left probe scans the right table's window bucket.
    join.Probe(query::Side::kLeft, key, entry.timestamp, &candidates);
    benchmark::DoNotOptimize(candidates.data());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowJoinInsertProbe)->Arg(1)->Arg(64);

void BM_WorkloadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    query::WorkloadConfig config;
    config.num_queries = static_cast<int>(state.range(0));
    config.num_arrivals = 2000;
    config.seed = 42;
    auto workload = query::GenerateWorkload(config);
    benchmark::DoNotOptimize(workload.scale_factor_k_ms);
  }
}
BENCHMARK(BM_WorkloadGeneration)->Arg(50)->Arg(500);

}  // namespace
}  // namespace aqsios

BENCHMARK_MAIN();
