// Extension: three-stream (two-stage) window-join workloads.
//
// §5.2 notes that the priority parameters for queries with multiple join
// operators "are defined recursively"; this bench exercises that recursion
// end-to-end on a left-deep three-stream workload and checks that the
// Figure-12 ordering (selectivity-aware BSD/HNR far ahead of RR/FCFS, BSD
// best on l2) carries over.

#include <iostream>

#include "bench_util.h"

namespace aqsios {
namespace {

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_ext_multijoin");
  double poisson_rate = 30.0;
  int streams = 3;
  flags.AddDouble("rate", &poisson_rate, "per-stream Poisson rate (1/s)");
  flags.AddInt("streams", &streams, "number of joined streams (>= 2)");
  bench::BenchArgs args = bench::ParseBenchArgs(
      "ext_multijoin", argc, argv, &flags, /*default_queries=*/12,
      /*default_arrivals=*/4500);
  bench::PrintHeader(
      "Extension: l2 norm of slowdowns, three-stream window-join queries",
      "Figure 12's ordering holds recursively: BSD best, RR/FCFS far behind");

  core::SweepConfig sweep = bench::TestbedSweep(args);
  sweep.workload.multi_stream = true;
  sweep.workload.join_streams = streams;
  sweep.workload.arrival_pattern = query::ArrivalPattern::kPoisson;
  sweep.workload.poisson_rate = poisson_rate;
  sweep.workload.window_min_seconds = 0.2;
  sweep.workload.window_max_seconds = 0.8;
  sweep.workload.num_join_keys = 1;
  sweep.policies = {sched::PolicyConfig::Of(sched::PolicyKind::kRoundRobin),
                    sched::PolicyConfig::Of(sched::PolicyKind::kFcfs),
                    sched::PolicyConfig::Of(sched::PolicyKind::kHnr),
                    sched::PolicyConfig::Of(sched::PolicyKind::kBsd)};
  const auto cells = core::RunSweep(sweep);
  bench::MaybePrintJson(args, cells);
  bench::MaybeWriteTrace(args, sweep);
  std::cout << core::SweepTable(cells, core::Metric::kL2Slowdown).ToAscii()
            << "\n";

  const double top = sweep.utilizations.back();
  auto at = [&](const char* policy) {
    for (const auto& cell : cells) {
      if (cell.utilization == top && cell.policy == policy) {
        return cell.result.qos.l2_slowdown;
      }
    }
    return 0.0;
  };
  bench::PrintReduction("BSD vs HNR", at("BSD"), at("HNR"));
  std::cout << "RR / BSD improvement factor: " << at("RR") / at("BSD")
            << "x\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
