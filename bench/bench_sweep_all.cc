// Unified experiment driver: runs the Figure 5–14 sweep grids in one binary
// and writes a machine-readable report (default: BENCH_sweep.json in the
// current directory — run from the repo root to refresh the tracked perf
// trajectory).
//
// Schema (aqsios-bench-sweep/1):
//   {
//     "schema": "aqsios-bench-sweep/1",
//     "queries": N, "arrivals": N, "seed": N, "threads": N,
//     "utilizations": [0.5, ...],
//     "total_wall_ms": W, "max_rss_kb": R,
//     "figures": [
//       { "figure": "fig5", "metric": "avg_slowdown", "wall_ms": W,
//         "cells": [ { "utilization": U, "policy": "HNR", "wall_ms": W,
//                      "max_rss_kb": R, "qos": { ... } }, ... ] },
//       ...
//     ]
//   }
// Per-cell wall_ms is the wall-clock of that cell's simulation; figure and
// total wall_ms are end-to-end (so with --threads > 1 the per-cell sum
// exceeds the elapsed total). Simulation results are independent of
// --threads; only the timing fields vary run to run.

#include <chrono>
#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "common/thread_pool.h"

namespace aqsios {
namespace {

struct FigureGrid {
  std::string figure;
  /// The primary metric the paper's figure plots (every cell still carries
  /// the full QoS snapshot).
  core::Metric metric;
  core::SweepConfig sweep;
};

sched::PolicyConfig Clustered(sched::ClusteringKind clustering, int clusters,
                              bool fagin, bool clustered_processing) {
  sched::PolicyConfig config =
      sched::PolicyConfig::Of(sched::PolicyKind::kBsdClustered);
  config.clustered.clustering = clustering;
  config.clustered.num_clusters = clusters;
  config.clustered.use_fagin = fagin;
  config.clustered.clustered_processing = clustered_processing;
  return config;
}

std::vector<FigureGrid> BuildGrids(const bench::BenchArgs& args) {
  using sched::PolicyConfig;
  using sched::PolicyKind;
  std::vector<FigureGrid> grids;
  // Per-class breakdowns are bulky and only Figure 11 plots them; it
  // re-enables tracking below.
  const auto slim = [](core::SweepConfig sweep) {
    sweep.options.qos.track_per_class = false;
    return sweep;
  };

  {  // Figure 5: average slowdown across the baseline policy ladder.
    FigureGrid grid{"fig5", core::Metric::kAvgSlowdown,
                    slim(bench::TestbedSweep(args))};
    grid.sweep.policies = {PolicyConfig::Of(PolicyKind::kRoundRobin),
                           PolicyConfig::Of(PolicyKind::kFcfs),
                           PolicyConfig::Of(PolicyKind::kSrpt),
                           PolicyConfig::Of(PolicyKind::kHr),
                           PolicyConfig::Of(PolicyKind::kHnr)};
    grids.push_back(std::move(grid));
  }
  {  // Figure 6: average response time, same ladder.
    FigureGrid grid{"fig6", core::Metric::kAvgResponseMs,
                    slim(bench::TestbedSweep(args))};
    grid.sweep.policies = {PolicyConfig::Of(PolicyKind::kRoundRobin),
                           PolicyConfig::Of(PolicyKind::kFcfs),
                           PolicyConfig::Of(PolicyKind::kSrpt),
                           PolicyConfig::Of(PolicyKind::kHr),
                           PolicyConfig::Of(PolicyKind::kHnr)};
    grids.push_back(std::move(grid));
  }
  {  // Figure 7: maximum slowdown (starvation view).
    FigureGrid grid{"fig7", core::Metric::kMaxSlowdown,
                    slim(bench::TestbedSweep(args))};
    grid.sweep.policies = {PolicyConfig::Of(PolicyKind::kRoundRobin),
                           PolicyConfig::Of(PolicyKind::kSrpt),
                           PolicyConfig::Of(PolicyKind::kHr),
                           PolicyConfig::Of(PolicyKind::kHnr),
                           PolicyConfig::Of(PolicyKind::kLsf)};
    grids.push_back(std::move(grid));
  }
  {  // Figures 8–9: BSD's worst-case/average trade-off.
    FigureGrid grid{"fig8_9", core::Metric::kMaxSlowdown,
                    slim(bench::TestbedSweep(args))};
    grid.sweep.policies = {PolicyConfig::Of(PolicyKind::kHnr),
                           PolicyConfig::Of(PolicyKind::kLsf),
                           PolicyConfig::Of(PolicyKind::kBsd)};
    grids.push_back(std::move(grid));
  }
  {  // Figure 10: l2 norm of slowdowns.
    FigureGrid grid{"fig10", core::Metric::kL2Slowdown,
                    slim(bench::TestbedSweep(args))};
    grid.sweep.policies = {PolicyConfig::Of(PolicyKind::kRoundRobin),
                           PolicyConfig::Of(PolicyKind::kSrpt),
                           PolicyConfig::Of(PolicyKind::kHr),
                           PolicyConfig::Of(PolicyKind::kHnr),
                           PolicyConfig::Of(PolicyKind::kLsf),
                           PolicyConfig::Of(PolicyKind::kBsd)};
    grids.push_back(std::move(grid));
  }
  {  // Figure 11: per-class breakdown (per_class_avg_slowdown in each cell).
    FigureGrid grid{"fig11", core::Metric::kAvgSlowdown,
                    bench::TestbedSweep(args)};
    grid.sweep.workload.num_queries = std::max(args.queries, 120);
    grid.sweep.policies = {PolicyConfig::Of(PolicyKind::kHr),
                           PolicyConfig::Of(PolicyKind::kHnr),
                           PolicyConfig::Of(PolicyKind::kBsd)};
    grids.push_back(std::move(grid));
  }
  {  // Figure 12: two-stream window-join workload.
    FigureGrid grid{"fig12", core::Metric::kL2Slowdown,
                    slim(bench::TestbedSweep(args))};
    grid.sweep.workload.num_queries = std::min(args.queries, 30);
    grid.sweep.workload.multi_stream = true;
    grid.sweep.workload.arrival_pattern = query::ArrivalPattern::kPoisson;
    grid.sweep.workload.poisson_rate = 50.0;
    grid.sweep.workload.window_min_seconds = 0.5;
    grid.sweep.workload.window_max_seconds = 2.0;
    grid.sweep.workload.num_join_keys = 1;
    grid.sweep.policies = {PolicyConfig::Of(PolicyKind::kRoundRobin),
                           PolicyConfig::Of(PolicyKind::kFcfs),
                           PolicyConfig::Of(PolicyKind::kHnr),
                           PolicyConfig::Of(PolicyKind::kBsd)};
    grids.push_back(std::move(grid));
  }
  {  // Figure 13: clustering accuracy/overhead trade-off, overhead charged.
    FigureGrid grid{"fig13", core::Metric::kL2Slowdown,
                    slim(bench::TestbedSweep(args))};
    grid.sweep.options.charge_scheduling_overhead = true;
    grid.sweep.policies = {
        PolicyConfig::Of(PolicyKind::kHnr),
        PolicyConfig::Of(PolicyKind::kBsd),
        Clustered(sched::ClusteringKind::kLogarithmic, 12, true, true),
        Clustered(sched::ClusteringKind::kUniform, 12, true, true)};
    grids.push_back(std::move(grid));
  }
  {  // Figure 14: incremental implementation gains, overhead charged.
    FigureGrid grid{"fig14", core::Metric::kL2Slowdown,
                    slim(bench::TestbedSweep(args))};
    grid.sweep.options.charge_scheduling_overhead = true;
    grid.sweep.policies = {
        PolicyConfig::Of(PolicyKind::kBsd),
        Clustered(sched::ClusteringKind::kLogarithmic, 12, false, false),
        Clustered(sched::ClusteringKind::kLogarithmic, 12, true, false),
        Clustered(sched::ClusteringKind::kLogarithmic, 12, true, true)};
    grids.push_back(std::move(grid));
  }
  return grids;
}

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_sweep_all");
  std::string out = "BENCH_sweep.json";
  flags.AddString("out", &out,
                  "output path for the JSON report ('-' = stdout only)");
  const bench::BenchArgs args =
      bench::ParseBenchArgs("sweep_all", argc, argv, &flags);

  std::vector<FigureGrid> grids = BuildGrids(args);

  core::JsonWriter json;
  json.BeginObject();
  json.Key("schema");
  json.String("aqsios-bench-sweep/1");
  json.Key("queries");
  json.Number(static_cast<int64_t>(args.queries));
  json.Key("arrivals");
  json.Number(args.arrivals);
  json.Key("seed");
  json.Number(static_cast<int64_t>(args.seed));
  json.Key("threads");
  json.Number(static_cast<int64_t>(
      args.threads > 0 ? args.threads : ThreadPool::DefaultThreads()));
  json.Key("utilizations");
  json.BeginArray();
  for (double u : args.UtilizationList()) json.Number(u);
  json.EndArray();

  const auto sweep_start = std::chrono::steady_clock::now();
  double total_wall_ms = 0.0;
  int64_t max_rss_kb = 0;
  json.Key("figures");
  json.BeginArray();
  for (FigureGrid& grid : grids) {
    std::cout << "running " << grid.figure << " ("
              << grid.sweep.utilizations.size() << " x "
              << grid.sweep.policies.size() << " cells)..." << std::flush;
    const auto start = std::chrono::steady_clock::now();
    const std::vector<core::SweepCell> cells = core::RunSweep(grid.sweep);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    std::cout << " " << wall_ms << " ms\n";
    for (const core::SweepCell& cell : cells) {
      max_rss_kb = std::max(max_rss_kb, cell.max_rss_kb);
    }
    json.BeginObject();
    json.Key("figure");
    json.String(grid.figure);
    json.Key("metric");
    json.String(core::MetricName(grid.metric));
    json.Key("wall_ms");
    json.Number(wall_ms);
    json.Key("cells");
    core::WriteSweepCells(json, cells);
    json.EndObject();
  }
  json.EndArray();
  // One extra traced run (fig5's first cell) when --trace-out is given; the
  // sweep above is untouched.
  bench::MaybeWriteTrace(args, grids.front().sweep);
  total_wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - sweep_start)
                      .count();
  json.Key("total_wall_ms");
  json.Number(total_wall_ms);
  json.Key("max_rss_kb");
  json.Number(max_rss_kb);
  json.EndObject();

  if (out == "-") {
    std::cout << "JSON: " << json.str() << "\n";
  } else {
    std::ofstream file(out);
    if (!file) {
      std::cerr << "cannot open " << out << " for writing\n";
      return 1;
    }
    file << json.str() << "\n";
    std::cout << "wrote " << out << " (" << json.str().size() << " bytes, "
              << total_wall_ms << " ms total)\n";
  }
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
