// Table 1: the worked Example 1 of §3.4.
//
// Two single-operator queries (Q1: 5 ms / selectivity 1.0; Q2: 2 ms /
// selectivity 0.33), three tuples at time 0, of which only the middle one
// satisfies Q2. Expected (exact): HR response 12.25 ms / slowdown 3.875;
// HNR response 13.0 ms / slowdown 2.9.

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/dsms.h"

namespace aqsios {
namespace {

stream::ArrivalTable ThreeTuples() {
  stream::ArrivalTable table;
  const double attributes[] = {50.0, 20.0, 90.0};
  for (int i = 0; i < 3; ++i) {
    stream::Arrival a;
    a.id = i;
    a.stream = 0;
    a.time = 0.0;
    a.attribute = attributes[i];
    table.arrivals.push_back(a);
  }
  return table;
}

int Main() {
  bench::PrintHeader("Table 1: Example 1 (HR vs HNR)",
                     "HR: response 12.25 / slowdown 3.875; "
                     "HNR: response 13.0 / slowdown 2.9");

  core::Dsms dsms(query::SelectivityMode::kCorrelatedAttribute);
  query::QuerySpec q1;
  q1.left_stream = 0;
  q1.left_ops = {query::MakeSelect(5.0, 1.0)};
  dsms.AddQuery(q1);
  query::QuerySpec q2;
  q2.left_stream = 0;
  q2.left_ops = {query::MakeSelect(2.0, 0.33)};
  dsms.AddQuery(q2);
  dsms.SetArrivals(ThreeTuples());

  Table table({"policy", "avg response (ms)", "avg slowdown"});
  for (sched::PolicyKind kind :
       {sched::PolicyKind::kHr, sched::PolicyKind::kHnr}) {
    const core::RunResult r = dsms.Run(sched::PolicyConfig::Of(kind));
    table.AddRow(r.policy_name,
                 {SimTimeToMillis(r.qos.avg_response), r.qos.avg_slowdown});
  }
  std::cout << table.ToAscii() << "\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main() { return aqsios::Main(); }
