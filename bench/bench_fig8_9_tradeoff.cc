// Figures 8 and 9: BSD's trade-off between worst-case and average-case.
//
// Paper: at 0.95 utilization BSD cuts the maximum slowdown by ~44% vs HNR
// (Figure 8) while cutting the average slowdown by ~80% vs LSF (Figure 9).

#include <iostream>

#include "bench_util.h"

namespace aqsios {
namespace {

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_fig8_9_tradeoff");
  const bench::BenchArgs args =
      bench::ParseBenchArgs("fig8_9", argc, argv, &flags);
  bench::PrintHeader(
      "Figures 8-9: max and avg slowdown for HNR / LSF / BSD",
      "BSD max ~44% below HNR; BSD avg ~80% below LSF (at 0.95)");

  core::SweepConfig sweep = bench::TestbedSweep(args);
  sweep.policies = {sched::PolicyConfig::Of(sched::PolicyKind::kHnr),
                    sched::PolicyConfig::Of(sched::PolicyKind::kLsf),
                    sched::PolicyConfig::Of(sched::PolicyKind::kBsd)};
  const auto cells = core::RunSweep(sweep);
  bench::MaybePrintJson(args, cells);
  bench::MaybeWriteTrace(args, sweep);
  std::cout << "Figure 8 (maximum slowdown):\n"
            << core::SweepTable(cells, core::Metric::kMaxSlowdown).ToAscii()
            << "\nFigure 9 (average slowdown):\n"
            << core::SweepTable(cells, core::Metric::kAvgSlowdown).ToAscii()
            << "\n";

  const double top = sweep.utilizations.back();
  auto metric = [&](const char* policy, core::Metric m) {
    for (const auto& cell : cells) {
      if (cell.utilization == top && cell.policy == policy) {
        return core::GetMetric(cell.result, m);
      }
    }
    return 0.0;
  };
  bench::PrintReduction("BSD max vs HNR max",
                        metric("BSD", core::Metric::kMaxSlowdown),
                        metric("HNR", core::Metric::kMaxSlowdown));
  bench::PrintReduction("BSD avg vs LSF avg",
                        metric("BSD", core::Metric::kAvgSlowdown),
                        metric("LSF", core::Metric::kAvgSlowdown));
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
