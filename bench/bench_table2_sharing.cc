// Table 2: performance of optimized (shared-operator) query plans.
//
// Workload: queries grouped in sets of 10, each set sharing its select
// operator (§9.3). Paper (Table 2):
//
//   metric          policy   Max      Sum      PDT
//   avg slowdown    HNR      261.6    244.2    201.1
//   l2 norm         BSD      66359    64066    60184
//
// i.e. PDT best on both (the absolute numbers depend on the testbed; the
// ordering PDT < Sum < Max is the claim).

#include <iostream>

#include "bench_util.h"
#include "common/table.h"

namespace aqsios {
namespace {

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_table2_sharing");
  double utilization = 0.95;
  int group_size = 10;
  flags.AddDouble("util", &utilization, "system load of the experiment");
  flags.AddInt("group", &group_size, "queries per sharing group");
  bench::BenchArgs args =
      bench::ParseBenchArgs("table2", argc, argv, &flags);
  args.queries = std::max(args.queries, 10 * group_size);
  bench::PrintHeader(
      "Table 2: sharing strategies (groups of 10 sharing a select)",
      "PDT beats Sum beats Max for both HNR avg slowdown and BSD l2 norm");

  query::WorkloadConfig config = bench::TestbedConfig(args);
  config.utilization = utilization;
  config.sharing_group_size = group_size;
  const query::Workload workload = query::GenerateWorkload(config);

  const sched::SharingStrategy strategies[] = {sched::SharingStrategy::kMax,
                                               sched::SharingStrategy::kSum,
                                               sched::SharingStrategy::kPdt};

  Table table({"metric", "policy", "Max", "Sum", "PDT"});
  std::vector<double> hnr_row;
  std::vector<double> bsd_row;
  for (sched::SharingStrategy strategy : strategies) {
    core::SimulationOptions options;
    options.sharing_strategy = strategy;
    hnr_row.push_back(
        core::Simulate(workload,
                       sched::PolicyConfig::Of(sched::PolicyKind::kHnr),
                       options)
            .qos.avg_slowdown);
    bsd_row.push_back(
        core::Simulate(workload,
                       sched::PolicyConfig::Of(sched::PolicyKind::kBsd),
                       options)
            .qos.l2_slowdown);
  }
  table.AddRow({"avg slowdown", "HNR", FormatDouble(hnr_row[0]),
                FormatDouble(hnr_row[1]), FormatDouble(hnr_row[2])});
  table.AddRow({"l2 norm", "BSD", FormatDouble(bsd_row[0]),
                FormatDouble(bsd_row[1]), FormatDouble(bsd_row[2])});
  std::cout << table.ToAscii() << "\n";

  bench::PrintReduction("PDT vs Max (HNR avg slowdown)", hnr_row[2],
                        hnr_row[0]);
  bench::PrintReduction("PDT vs Max (BSD l2)", bsd_row[2], bsd_row[0]);
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
