// Figure 14: incremental gains of the efficient BSD implementation.
//
// Paper: with overhead charged, a naive BSD implementation inflates the l2
// norm enormously (+6470% vs BSD-Hypothetical); adding logarithmic
// clustering (m=12), then Fagin pruning, then clustered processing brings it
// within ~5% of the hypothetical (overhead-free) BSD.

#include <iostream>

#include "bench_util.h"
#include "common/table.h"

namespace aqsios {
namespace {

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_fig14_impl_gains");
  double utilization = 0.95;
  int clusters = 12;
  flags.AddDouble("util", &utilization, "system load of the experiment");
  flags.AddInt("clusters", &clusters, "number of logarithmic clusters");
  const bench::BenchArgs args = bench::ParseBenchArgs(
      "fig14", argc, argv, &flags, /*default_queries=*/240,
      /*default_arrivals=*/8000);
  bench::PrintHeader(
      "Figure 14: incremental implementation gains for BSD (l2 norm)",
      "naive BSD enormous; +clustering, +FA, +clustered processing -> "
      "within ~5% of hypothetical");

  query::WorkloadConfig config = bench::TestbedConfig(args);
  config.utilization = utilization;
  const query::Workload workload = query::GenerateWorkload(config);

  core::SimulationOptions charged;
  charged.charge_scheduling_overhead = true;
  core::SimulationOptions free;

  const double hypothetical =
      core::Simulate(workload, sched::PolicyConfig::Of(sched::PolicyKind::kBsd),
                     free)
          .qos.l2_slowdown;

  auto clustered = [&](bool fagin, bool cp) {
    sched::PolicyConfig p =
        sched::PolicyConfig::Of(sched::PolicyKind::kBsdClustered);
    p.clustered.clustering = sched::ClusteringKind::kLogarithmic;
    p.clustered.num_clusters = clusters;
    p.clustered.use_fagin = fagin;
    p.clustered.clustered_processing = cp;
    return core::Simulate(workload, p, charged);
  };

  Table table({"implementation", "l2 slowdown", "vs hypothetical (%)",
               "overhead ops"});
  auto add = [&](const std::string& name, const core::RunResult& r) {
    table.AddRow(name,
                 {r.qos.l2_slowdown,
                  (r.qos.l2_slowdown / hypothetical - 1.0) * 100.0,
                  static_cast<double>(r.counters.overhead_operations)});
  };

  const core::RunResult naive = core::Simulate(
      workload, sched::PolicyConfig::Of(sched::PolicyKind::kBsd), charged);
  add("BSD-Naive (charged)", naive);
  add("+ log clustering", clustered(false, false));
  add("+ Fagin pruning", clustered(true, false));
  add("+ clustered processing", clustered(true, true));
  core::RunResult hypo_row;
  hypo_row.qos.l2_slowdown = hypothetical;
  table.AddRow("BSD-Hypothetical", {hypothetical, 0.0, 0.0});
  std::cout << table.ToAscii() << "\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
