// Figure 10: l2 norm of slowdowns vs system load.
//
// Paper: BSD reduces the l2 norm by up to 57% vs LSF and 24% vs HNR.

#include <iostream>

#include "bench_util.h"

namespace aqsios {
namespace {

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_fig10_l2_norm");
  const bench::BenchArgs args =
      bench::ParseBenchArgs("fig10", argc, argv, &flags);
  bench::PrintHeader("Figure 10: l2 norm of slowdowns vs utilization",
                     "BSD best: up to ~57% below LSF and ~24% below HNR");

  core::SweepConfig sweep = bench::TestbedSweep(args);
  sweep.policies = {sched::PolicyConfig::Of(sched::PolicyKind::kRoundRobin),
                    sched::PolicyConfig::Of(sched::PolicyKind::kSrpt),
                    sched::PolicyConfig::Of(sched::PolicyKind::kHr),
                    sched::PolicyConfig::Of(sched::PolicyKind::kHnr),
                    sched::PolicyConfig::Of(sched::PolicyKind::kLsf),
                    sched::PolicyConfig::Of(sched::PolicyKind::kBsd)};
  const auto cells = core::RunSweep(sweep);
  bench::MaybePrintJson(args, cells);
  bench::MaybeWriteTrace(args, sweep);
  std::cout << core::SweepTable(cells, core::Metric::kL2Slowdown).ToAscii()
            << "\n";

  const double top = sweep.utilizations.back();
  auto at = [&](const char* policy) {
    for (const auto& cell : cells) {
      if (cell.utilization == top && cell.policy == policy) {
        return cell.result.qos.l2_slowdown;
      }
    }
    return 0.0;
  };
  bench::PrintReduction("BSD vs LSF", at("BSD"), at("LSF"));
  bench::PrintReduction("BSD vs HNR", at("BSD"), at("HNR"));
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
