// Ablation: run-time memory vs QoS across policies.
//
// Chain ([5], classified in the paper's Table 3) minimizes run-time memory
// (queued tuples); the slowdown-oriented policies of this paper optimize
// QoS. The comparison runs at *operator level*, where Chain's progress-chart
// model is exact (survivors of one operator re-queue at the next; dropping
// tuples early on steep chart segments is what shrinks queues). Expect Chain
// to have the smallest queue footprint and a mediocre slowdown; HNR/BSD the
// reverse.

#include <iostream>

#include "bench_util.h"
#include "common/table.h"

namespace aqsios {
namespace {

int Main(int argc, const char* const* argv) {
  FlagSet flags("bench_ablation_chain_memory");
  double utilization = 0.9;
  flags.AddDouble("util", &utilization, "system load of the experiment");
  const bench::BenchArgs args =
      bench::ParseBenchArgs("chain_memory", argc, argv, &flags);
  bench::PrintHeader(
      "Ablation: memory (queued tuples) vs slowdown per policy",
      "Chain minimizes queue footprint; HNR/BSD minimize slowdown");

  query::WorkloadConfig config = bench::TestbedConfig(args);
  config.utilization = utilization;
  const query::Workload workload = query::GenerateWorkload(config);

  Table table({"policy", "avg queued tuples", "peak queued tuples",
               "avg slowdown", "l2 norm"});
  core::SimulationOptions options;
  options.level = exec::SchedulingLevel::kOperatorLevel;
  for (sched::PolicyKind kind :
       {sched::PolicyKind::kFcfs, sched::PolicyKind::kRoundRobin,
        sched::PolicyKind::kChain, sched::PolicyKind::kHr,
        sched::PolicyKind::kHnr, sched::PolicyKind::kBsd}) {
    const core::RunResult r =
        core::Simulate(workload, sched::PolicyConfig::Of(kind), options);
    table.AddRow(r.policy_name,
                 {r.counters.avg_queued_tuples,
                  static_cast<double>(r.counters.peak_queued_tuples),
                  r.qos.avg_slowdown, r.qos.l2_slowdown});
  }
  std::cout << table.ToAscii() << "\n";
  return 0;
}

}  // namespace
}  // namespace aqsios

int main(int argc, char** argv) { return aqsios::Main(argc, argv); }
