// Stock-market monitoring: a heterogeneous population of cheap alert
// queries and expensive analysis queries over one bursty quote stream
// (the workload class the paper's introduction motivates).
//
// Demonstrates:
//   * building a realistic mixed workload by hand through the Dsms facade,
//   * the per-class QoS breakdown: who starves under HR and how HNR/BSD
//     redistribute the waiting,
//   * the avg/max/l2 slowdown trade-off across policies.

#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "core/dsms.h"
#include "stream/arrival_process.h"

namespace {

using namespace aqsios;

// Cheap alert: single selective filter (cost class 0).
query::QuerySpec AlertQuery(double selectivity) {
  query::QuerySpec spec;
  spec.left_stream = 0;
  spec.left_ops = {query::MakeSelect(0.4, selectivity)};
  spec.cost_class = 0;
  spec.class_selectivity = selectivity;
  return spec;
}

// Technical analysis: select + stored-relation join + projection, 8x the
// per-operator cost of an alert (cost class 3).
query::QuerySpec AnalysisQuery(double selectivity) {
  query::QuerySpec spec;
  spec.left_stream = 0;
  spec.left_ops = {query::MakeSelect(3.2, selectivity),
                   query::MakeStoredJoin(3.2, selectivity),
                   query::MakeProject(3.2)};
  spec.cost_class = 3;
  spec.class_selectivity = selectivity;
  return spec;
}

}  // namespace

int main() {
  core::Dsms dsms;
  Rng rng(2024);

  // 30 cheap alerts with rare matches (0.5%-3.5% of quotes), 10 expensive
  // but very productive analyses. Output rate (HR's priority) ranks many
  // analyses above the rarest alerts; normalized rate (HNR) does not.
  for (int i = 0; i < 30; ++i) {
    dsms.AddQuery(AlertQuery(0.005 + 0.005 * static_cast<double>(i % 6)));
  }
  for (int i = 0; i < 10; ++i) {
    dsms.AddQuery(AnalysisQuery(0.9 + 0.025 * static_cast<double>(i % 4)));
  }

  // Market bursts: intense quote storms separated by quiet periods. The
  // registered queries need ~86 ms of work per quote; a mean rate of
  // ~10.5 quotes/s puts the long-run load near 0.9 with 3x bursts.
  stream::OnOffConfig bursts;
  bursts.on_rate = 30.0;
  bursts.mean_on_duration = 0.3;
  bursts.mean_off_duration = 0.7;
  stream::OnOffArrivalProcess process(bursts, rng.Fork());
  dsms.SetArrivals(stream::MergeArrivalTables(
      {stream::GenerateArrivals(process, 0, 30000, rng.Fork())}));

  Table summary({"policy", "avg slowdown", "max slowdown", "l2 norm"});
  Table per_class({"policy", "alerts (class 0) avg slowdown",
                   "analyses (class 3) avg slowdown"});
  for (sched::PolicyKind kind :
       {sched::PolicyKind::kHr, sched::PolicyKind::kHnr,
        sched::PolicyKind::kLsf, sched::PolicyKind::kBsd}) {
    const core::RunResult r = dsms.Run(sched::PolicyConfig::Of(kind));
    summary.AddRow(r.policy_name, {r.qos.avg_slowdown, r.qos.max_slowdown,
                                   r.qos.l2_slowdown});
    RunningStats alerts;
    RunningStats analyses;
    for (const auto& [key, stats] : r.qos.per_class_slowdown) {
      (key.cost_class == 0 ? alerts : analyses).Merge(stats);
    }
    per_class.AddRow(r.policy_name, {alerts.Mean(), analyses.Mean()});
  }

  std::cout << "=== stock monitoring: 30 cheap alerts + 10 heavy analyses "
               "===\n\n";
  std::cout << summary.ToAscii() << "\n";
  std::cout << "per-class view (where does the waiting go?):\n"
            << per_class.ToAscii() << "\n";
  std::cout << "HR favors the productive heavy queries; HNR and BSD keep "
               "cheap alerts timely, which is what slowdown rewards.\n";
  return 0;
}
