// Quickstart: register two continuous queries, feed a stream, compare
// scheduling policies.
//
// This is the GOOGLE vs ANALYSIS scenario from the paper's introduction:
// GOOGLE is a cheap, rarely-matching filter ("tell me when there is a quote
// for GOOGLE"); ANALYSIS is an expensive query that produces output for
// every input tuple. A slowdown-aware scheduler (HNR/BSD) keeps the cheap
// query's rare events fast instead of letting the expensive query's volume
// dominate.

#include <iostream>

#include "common/table.h"
#include "core/dsms.h"
#include "stream/arrival_process.h"

int main() {
  using namespace aqsios;

  // --- 1. Create a DSMS and register continuous queries. -------------------
  core::Dsms dsms;

  // GOOGLE: a 0.5 ms filter matching ~2% of tuples.
  query::QuerySpec google;
  google.left_stream = 0;
  google.left_ops = {query::MakeSelect(/*cost_ms=*/0.5, /*selectivity=*/0.02)};
  const query::QueryId google_id = dsms.AddQuery(google);

  // ANALYSIS: a 6 ms two-operator pipeline that emits for every tuple.
  query::QuerySpec analysis;
  analysis.left_stream = 0;
  analysis.left_ops = {query::MakeSelect(2.0, 1.0), query::MakeProject(4.0)};
  const query::QueryId analysis_id = dsms.AddQuery(analysis);

  std::cout << "registered GOOGLE as query " << google_id << ", ANALYSIS as "
            << analysis_id << "\n\n";

  // --- 2. Generate a bursty stock-quote stream. ----------------------------
  // Mean load ~0.8 of the CPU (6.5 ms of query work per quote, one quote
  // every ~8 ms on average), with 1.6x overload during bursts.
  stream::OnOffConfig bursts;
  bursts.on_rate = 250.0;       // quotes/s while the market is active
  bursts.mean_on_duration = 0.5;
  bursts.mean_off_duration = 0.5;
  stream::OnOffArrivalProcess process(bursts, /*seed=*/1);
  std::vector<stream::Arrival> quotes =
      stream::GenerateArrivals(process, /*stream=*/0, /*count=*/20000,
                               /*seed=*/2);
  dsms.SetArrivals(stream::MergeArrivalTables({std::move(quotes)}));

  // --- 3. Run under different scheduling policies. -------------------------
  Table table({"policy", "avg slowdown", "max slowdown", "l2 norm",
               "avg response (ms)"});
  for (sched::PolicyKind kind :
       {sched::PolicyKind::kRoundRobin, sched::PolicyKind::kHr,
        sched::PolicyKind::kHnr, sched::PolicyKind::kBsd}) {
    const core::RunResult r = dsms.Run(sched::PolicyConfig::Of(kind));
    table.AddRow(r.policy_name,
                 {r.qos.avg_slowdown, r.qos.max_slowdown, r.qos.l2_slowdown,
                  SimTimeToMillis(r.qos.avg_response)});
  }
  std::cout << table.ToAscii();
  std::cout << "\nHNR/BSD keep the cheap GOOGLE query's slowdown low without "
               "giving up much on ANALYSIS.\n";
  return 0;
}
