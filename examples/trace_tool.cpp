// Trace utility: generate synthetic On/Off traces, convert real packet
// traces (e.g. LBL-PKT-4 from the Internet Traffic Archive), and inspect
// burstiness statistics.
//
// Subcommands (first positional argument):
//   generate --out=trace.txt --count=100000 --on-rate=1000
//            --mean-on=0.5 --mean-off=0.5 --seed=42
//   convert  --in=lbl-pkt-4.txt --out=trace.txt
//       Reads the first whitespace-separated column of each line as a
//       timestamp, sorts, rebases to zero, and writes the aqsios format.
//   inspect  --in=trace.txt
//       Prints count, duration, mean inter-arrival, CV, and an inter-arrival
//       histogram.

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/stats.h"
#include "stream/trace.h"

namespace {

using namespace aqsios;

int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

int Generate(const std::string& out, int64_t count, double on_rate,
             double mean_on, double mean_off, int64_t seed) {
  stream::OnOffConfig config;
  config.on_rate = on_rate;
  config.mean_on_duration = mean_on;
  config.mean_off_duration = mean_off;
  const auto trace =
      stream::GenerateOnOffTrace(config, count, static_cast<uint64_t>(seed));
  const Status status = stream::WriteTrace(out, trace);
  if (!status.ok()) return Fail(status);
  const stream::TraceStats stats = stream::ComputeTraceStats(trace);
  std::cout << "wrote " << stats.count << " arrivals to " << out << " ("
            << stats.duration << "s, mean rate "
            << 1.0 / stats.mean_inter_arrival << "/s, CV "
            << stats.inter_arrival_cv << ")\n";
  return 0;
}

int Convert(const std::string& in, const std::string& out) {
  const auto timestamps = stream::ReadTimestampColumn(in);
  if (!timestamps.ok()) return Fail(timestamps.status());
  const Status status = stream::WriteTrace(out, timestamps.value());
  if (!status.ok()) return Fail(status);
  std::cout << "converted " << timestamps.value().size() << " timestamps from "
            << in << " to " << out << "\n";
  return 0;
}

int Inspect(const std::string& in) {
  const auto timestamps = stream::ReadTrace(in);
  if (!timestamps.ok()) return Fail(timestamps.status());
  const auto& trace = timestamps.value();
  const stream::TraceStats stats = stream::ComputeTraceStats(trace);
  std::cout << "count:              " << stats.count << "\n";
  std::cout << "duration:           " << stats.duration << " s\n";
  std::cout << "mean inter-arrival: " << stats.mean_inter_arrival * 1e3
            << " ms\n";
  std::cout << "mean rate:          " << 1.0 / stats.mean_inter_arrival
            << " /s\n";
  std::cout << "inter-arrival CV:   " << stats.inter_arrival_cv
            << "  (Poisson = 1; On/Off traffic is substantially higher)\n";
  std::cout << "max gap:            " << stats.max_inter_arrival << " s\n";
  if (trace.size() > 1) {
    LogHistogram histogram(stats.mean_inter_arrival / 100.0, 10.0, 6);
    for (size_t i = 1; i < trace.size(); ++i) {
      histogram.Add(trace[i] - trace[i - 1]);
    }
    std::cout << "inter-arrival histogram (seconds):\n"
              << histogram.ToString();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("trace_tool");
  std::string in;
  std::string out = "trace.txt";
  int64_t count = 100000;
  double on_rate = 1000.0;
  double mean_on = 0.5;
  double mean_off = 0.5;
  int64_t seed = 42;
  flags.AddString("in", &in, "input trace file");
  flags.AddString("out", &out, "output trace file");
  flags.AddInt("count", &count, "arrivals to generate");
  flags.AddDouble("on-rate", &on_rate, "ON-state arrival rate (1/s)");
  flags.AddDouble("mean-on", &mean_on, "mean ON duration (s)");
  flags.AddDouble("mean-off", &mean_off, "mean OFF duration (s)");
  flags.AddInt("seed", &seed, "generator seed");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    if (flags.help_requested()) return 0;
    return Fail(status);
  }
  // Default to a demo generate+inspect round trip when run without
  // arguments (so the binary is self-demonstrating).
  std::string command =
      flags.positional().empty() ? "demo" : flags.positional().front();
  if (command == "generate") {
    return Generate(out, count, on_rate, mean_on, mean_off, seed);
  }
  if (command == "convert") return Convert(in, out);
  if (command == "inspect") return Inspect(in);
  if (command == "demo") {
    std::cout << "== trace_tool demo: generate then inspect ==\n";
    const int rc = Generate(out, 50000, on_rate, mean_on, mean_off, seed);
    if (rc != 0) return rc;
    const int rc2 = Inspect(out);
    std::remove(out.c_str());
    return rc2;
  }
  std::cerr << "unknown command: " << command
            << " (expected generate | convert | inspect)\n";
  return 2;
}
