// Trace utility: generate synthetic On/Off traces, convert real packet
// traces (e.g. LBL-PKT-4 from the Internet Traffic Archive), and inspect
// burstiness statistics.
//
// Subcommands (first positional argument):
//   generate --out=trace.txt --count=100000 --on-rate=1000
//            --mean-on=0.5 --mean-off=0.5 --seed=42
//   convert  --in=lbl-pkt-4.txt --out=trace.txt
//       Reads the first whitespace-separated column of each line as a
//       timestamp, sorts, rebases to zero, and writes the aqsios format.
//   inspect  --in=trace.txt
//       Prints count, duration, mean inter-arrival, CV, inter-arrival
//       percentiles (from the obs::Histogram used engine-wide), and the
//       bucket rendering.
//   chrome   --in=trace.txt --out=trace.json --queries=30 --policy=hnr
//       Replays the trace through the §8 testbed under the given policy with
//       event tracing on and writes a Chrome trace-event JSON; open it in
//       Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//   top      --in=metrics.prom --interval-ms=500 --iterations=0
//       Tails an OpenMetrics exposition written by a running bench with
//       --metrics-out (docs/telemetry.md) and renders a per-shard live
//       table, top(1)-style. --iterations=0 keeps refreshing until every
//       shard reports done; --iterations=1 prints one table and exits
//       (useful in CI).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <thread>

#include "common/flags.h"
#include "core/dsms.h"
#include "obs/chrome_trace.h"
#include "obs/histogram.h"
#include "obs/tracer.h"
#include "stream/trace.h"

namespace {

using namespace aqsios;

int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

int Generate(const std::string& out, int64_t count, double on_rate,
             double mean_on, double mean_off, int64_t seed) {
  stream::OnOffConfig config;
  config.on_rate = on_rate;
  config.mean_on_duration = mean_on;
  config.mean_off_duration = mean_off;
  const auto trace =
      stream::GenerateOnOffTrace(config, count, static_cast<uint64_t>(seed));
  const Status status = stream::WriteTrace(out, trace);
  if (!status.ok()) return Fail(status);
  const stream::TraceStats stats = stream::ComputeTraceStats(trace);
  std::cout << "wrote " << stats.count << " arrivals to " << out << " ("
            << stats.duration << "s, mean rate "
            << 1.0 / stats.mean_inter_arrival << "/s, CV "
            << stats.inter_arrival_cv << ")\n";
  return 0;
}

int Convert(const std::string& in, const std::string& out) {
  const auto timestamps = stream::ReadTimestampColumn(in);
  if (!timestamps.ok()) return Fail(timestamps.status());
  const Status status = stream::WriteTrace(out, timestamps.value());
  if (!status.ok()) return Fail(status);
  std::cout << "converted " << timestamps.value().size() << " timestamps from "
            << in << " to " << out << "\n";
  return 0;
}

int Inspect(const std::string& in) {
  const auto timestamps = stream::ReadTrace(in);
  if (!timestamps.ok()) return Fail(timestamps.status());
  const auto& trace = timestamps.value();
  const stream::TraceStats stats = stream::ComputeTraceStats(trace);
  std::cout << "count:              " << stats.count << "\n";
  std::cout << "duration:           " << stats.duration << " s\n";
  std::cout << "mean inter-arrival: " << stats.mean_inter_arrival * 1e3
            << " ms\n";
  std::cout << "mean rate:          " << 1.0 / stats.mean_inter_arrival
            << " /s\n";
  std::cout << "inter-arrival CV:   " << stats.inter_arrival_cv
            << "  (Poisson = 1; On/Off traffic is substantially higher)\n";
  std::cout << "max gap:            " << stats.max_inter_arrival << " s\n";
  if (trace.size() > 1) {
    obs::Histogram histogram({.min_value = stats.mean_inter_arrival / 100.0});
    for (size_t i = 1; i < trace.size(); ++i) {
      histogram.Add(trace[i] - trace[i - 1]);
    }
    std::cout << "inter-arrival p50:  " << histogram.Quantile(0.5) * 1e3
              << " ms\n";
    std::cout << "inter-arrival p95:  " << histogram.Quantile(0.95) * 1e3
              << " ms\n";
    std::cout << "inter-arrival p99:  " << histogram.Quantile(0.99) * 1e3
              << " ms\n";
    std::cout << "inter-arrival p999: " << histogram.Quantile(0.999) * 1e3
              << " ms\n";
    std::cout << "inter-arrival histogram (seconds):\n"
              << histogram.ToString();
  }
  return 0;
}

int Chrome(const std::string& in, const std::string& out, int queries,
           const std::string& policy_name) {
  const StatusOr<sched::PolicyKind> kind =
      sched::ParsePolicyKind(policy_name);
  if (!kind.ok()) return Fail(kind.status());
  query::WorkloadConfig config;
  config.num_queries = queries;
  config.arrival_pattern = query::ArrivalPattern::kTraceFile;
  config.trace_path = in;
  const query::Workload workload = query::GenerateWorkload(config);

  obs::EventTracer tracer;
  core::SimulationOptions options;
  options.tracer = &tracer;
  const core::RunResult result = core::Simulate(
      workload, sched::PolicyConfig::Of(kind.value()), options);

  obs::ChromeTraceMeta meta;
  meta.num_queries = workload.plan.num_queries();
  meta.policy = result.policy_name;
  const Status status = obs::WriteChromeTrace(out, tracer, meta);
  if (!status.ok()) return Fail(status);
  std::cout << "wrote " << out << ": " << tracer.size() << " events ("
            << tracer.dropped() << " dropped), policy " << meta.policy
            << ", avg slowdown " << result.qos.avg_slowdown << "\n";
  return 0;
}

/// One parsed OpenMetrics exposition: run-wide scalars plus per-shard
/// series, keyed by sample name (counters keep their `_total` suffix).
struct ParsedMetrics {
  std::map<std::string, double> scalars;
  std::map<std::string, std::map<int, double>> by_shard;
  std::string job;
  std::string policy;
};

bool ParseExposition(const std::string& path, ParsedMetrics* out) {
  std::ifstream file(path);
  if (!file.is_open()) return false;
  bool saw_eof = false;
  std::string line;
  while (std::getline(file, line)) {
    if (line.rfind("# EOF", 0) == 0) {
      saw_eof = true;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    // `name{labels} value` or `name value`.
    const size_t brace = line.find('{');
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const double value = std::strtod(line.c_str() + space + 1, nullptr);
    if (brace != std::string::npos && brace < space) {
      const std::string name = line.substr(0, brace);
      const size_t close = line.find('}', brace);
      if (close == std::string::npos) continue;
      const std::string labels = line.substr(brace + 1, close - brace - 1);
      const size_t shard_pos = labels.find("shard=\"");
      if (shard_pos != std::string::npos) {
        const int shard =
            std::atoi(labels.c_str() + shard_pos + sizeof("shard=\"") - 1);
        out->by_shard[name][shard] = value;
      } else if (name == "aqsios_build") {
        auto label_value = [&labels](const char* key) -> std::string {
          const std::string needle = std::string(key) + "=\"";
          const size_t at = labels.find(needle);
          if (at == std::string::npos) return "";
          const size_t from = at + needle.size();
          return labels.substr(from, labels.find('"', from) - from);
        };
        out->job = label_value("job");
        out->policy = label_value("policy");
      } else {
        out->scalars[name] = value;
      }
    } else {
      out->scalars[line.substr(0, space)] = value;
    }
  }
  // A torn/partial file (mid-rename reads cannot happen, but a missing or
  // truncated write can) is signalled by the absent terminator.
  return saw_eof;
}

int Top(const std::string& in, double interval_ms, int64_t iterations) {
  if (in.empty()) {
    std::cerr << "error: top requires --in=<metrics.prom>\n";
    return 2;
  }
  int64_t shown = 0;
  int misses = 0;
  while (true) {
    ParsedMetrics metrics;
    if (!ParseExposition(in, &metrics)) {
      if (++misses > 40) {
        std::cerr << "error: no readable exposition at " << in << "\n";
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          std::max(interval_ms, 25.0)));
      continue;
    }
    misses = 0;
    if (shown > 0) std::cout << "\033[2J\033[H";  // clear + home when live
    const double ticks = metrics.scalars["aqsios_sampler_ticks_total"];
    const double wall = metrics.scalars["aqsios_sampler_wall_seconds"];
    std::printf("aqsios top — job %s  policy %s  tick %.0f  wall %.1fs\n",
                metrics.job.c_str(), metrics.policy.c_str(), ticks, wall);
    std::printf("%5s %12s %12s %9s %11s %11s %9s %9s %10s %5s\n", "shard",
                "vclock(s)", "busy(s)", "queued", "executed", "emitted",
                "shed", "rejected", "slowdown", "done");
    const auto& vclock = metrics.by_shard["aqsios_shard_virtual_seconds"];
    bool all_done = !vclock.empty();
    for (const auto& [shard, virtual_sec] : vclock) {
      auto of = [&metrics, shard = shard](const char* name) {
        const auto& series = metrics.by_shard[name];
        const auto it = series.find(shard);
        return it != series.end() ? it->second : 0.0;
      };
      const double done = of("aqsios_shard_done");
      all_done = all_done && done > 0.0;
      std::printf(
          "%5d %12.3f %12.3f %9.0f %11.0f %11.0f %9.0f %9.0f %10.2f %5s\n",
          shard, virtual_sec, of("aqsios_shard_busy_seconds"),
          of("aqsios_shard_queued_tuples"), of("aqsios_tuples_executed_total"),
          of("aqsios_tuples_emitted_total"), of("aqsios_tuples_shed_total"),
          of("aqsios_admission_rejected_total"),
          of("aqsios_shard_slowdown_mean"), done > 0.0 ? "yes" : "no");
    }
    ++shown;
    if (iterations > 0 && shown >= iterations) return 0;
    if (iterations == 0 && all_done) return 0;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(interval_ms));
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("trace_tool");
  std::string in;
  std::string out = "trace.txt";
  int64_t count = 100000;
  double on_rate = 1000.0;
  double mean_on = 0.5;
  double mean_off = 0.5;
  int64_t seed = 42;
  int64_t queries = 30;
  std::string policy = "hnr";
  double interval_ms = 500.0;
  int64_t iterations = 0;
  flags.AddString("in", &in, "input trace file");
  flags.AddString("out", &out, "output trace file");
  flags.AddInt("count", &count, "arrivals to generate");
  flags.AddDouble("on-rate", &on_rate, "ON-state arrival rate (1/s)");
  flags.AddDouble("mean-on", &mean_on, "mean ON duration (s)");
  flags.AddDouble("mean-off", &mean_off, "mean OFF duration (s)");
  flags.AddInt("seed", &seed, "generator seed");
  flags.AddInt("queries", &queries, "queries for the chrome subcommand");
  flags.AddString("policy", &policy,
                  "scheduling policy for the chrome subcommand");
  flags.AddDouble("interval-ms", &interval_ms,
                  "refresh period for the top subcommand");
  flags.AddInt("iterations", &iterations,
               "top refreshes before exiting (0 = until all shards done)");
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    if (flags.help_requested()) return 0;
    return Fail(status);
  }
  // Default to a demo generate+inspect round trip when run without
  // arguments (so the binary is self-demonstrating).
  std::string command =
      flags.positional().empty() ? "demo" : flags.positional().front();
  if (command == "generate") {
    return Generate(out, count, on_rate, mean_on, mean_off, seed);
  }
  if (command == "convert") return Convert(in, out);
  if (command == "inspect") return Inspect(in);
  if (command == "chrome") {
    return Chrome(in, out, static_cast<int>(queries), policy);
  }
  if (command == "top") return Top(in, interval_ms, iterations);
  if (command == "demo") {
    std::cout << "== trace_tool demo: generate then inspect ==\n";
    const int rc = Generate(out, 50000, on_rate, mean_on, mean_off, seed);
    if (rc != 0) return rc;
    const int rc2 = Inspect(out);
    std::remove(out.c_str());
    return rc2;
  }
  std::cerr << "unknown command: " << command
            << " (expected generate | convert | inspect | chrome | top)\n";
  return 2;
}
