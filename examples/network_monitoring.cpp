// Network monitoring with multi-stream window joins.
//
// Two packet-metadata streams (e.g. two taps) feed correlation queries:
// each query joins the streams over a sliding time window ("flows seen on
// both links within V seconds") after per-stream filtering. Demonstrates:
//
//   * generating an LBL-style bursty trace, persisting it to disk, and
//     replaying it through the trace reader (the exact workflow to run the
//     real LBL-PKT-4 trace if you have it);
//   * time-based sliding-window symmetric hash joins;
//   * composite-tuple slowdown (dependency delay excluded, §5) and the
//     policy comparison of Figure 12.

#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "core/dsms.h"
#include "query/builder.h"
#include "stream/arrival_process.h"
#include "stream/trace.h"

int main() {
  using namespace aqsios;

  // --- 1. Build (or load) a packet trace. ----------------------------------
  // GenerateOnOffTrace stands in for the LBL-PKT-4 trace; to use the real
  // thing, convert it once with ReadTimestampColumn and point ReadTrace at
  // the result.
  stream::OnOffConfig traffic;
  traffic.on_rate = 120.0;
  traffic.mean_on_duration = 1.0;
  traffic.mean_off_duration = 1.0;
  const std::string trace_path = "network_monitoring.trace";
  {
    const auto timestamps = stream::GenerateOnOffTrace(traffic, 8000, 7);
    const Status status = stream::WriteTrace(trace_path, timestamps);
    if (!status.ok()) {
      std::cerr << "cannot write trace: " << status << "\n";
      return 1;
    }
  }
  const auto loaded = stream::ReadTrace(trace_path);
  if (!loaded.ok()) {
    std::cerr << "cannot read trace: " << loaded.status() << "\n";
    return 1;
  }
  const stream::TraceStats stats = stream::ComputeTraceStats(loaded.value());
  std::cout << "trace: " << stats.count << " packets over " << stats.duration
            << "s, mean gap " << stats.mean_inter_arrival * 1e3
            << " ms, inter-arrival CV " << stats.inter_arrival_cv
            << " (Poisson would be 1)\n\n";

  // --- 2. Two tap streams: replay the trace on tap A, Poisson on tap B. ----
  stream::TraceArrivalProcess tap_a(loaded.value());
  stream::PoissonArrivalProcess tap_b(1.0 / stats.mean_inter_arrival, 11);
  auto arrivals_a = stream::GenerateArrivals(tap_a, /*stream=*/0, 8000,
                                             /*seed=*/21, /*join_keys=*/32);
  auto arrivals_b = stream::GenerateArrivals(tap_b, /*stream=*/1, 8000,
                                             /*seed=*/22, /*join_keys=*/32);
  const SimTime tau_a = stats.mean_inter_arrival;
  const SimTime tau_b = stats.mean_inter_arrival;

  // --- 3. Correlation queries: filter each tap, join on flow key within a
  //        sliding window, project the match. ------------------------------
  core::Dsms dsms;
  for (int i = 0; i < 8; ++i) {
    const double selectivity = 0.3 + 0.1 * static_cast<double>(i % 5);
    const double window = 0.5 + 0.25 * static_cast<double>(i % 4);
    dsms.AddQuery(query::QueryBuilder(/*stream=*/0)
                      .Select(0.2, selectivity)
                      .WindowJoinWith(/*stream=*/1, /*cost_ms=*/0.2,
                                      /*match_probability=*/0.3, window,
                                      /*mean_inter_arrival=*/tau_b)
                      .Select(0.2, selectivity)
                      .Common()
                      .Project(0.2)
                      .LeftMeanInterArrival(tau_a)
                      .CostClass(i % 3)
                      .ClassSelectivity(selectivity)
                      .Build());
  }
  dsms.SetArrivals(stream::MergeArrivalTables(
      {std::move(arrivals_a), std::move(arrivals_b)}));

  // --- 4. Compare policies on the l2 norm of slowdowns (Figure 12). --------
  Table table({"policy", "composites", "avg slowdown", "max slowdown",
               "l2 norm"});
  for (sched::PolicyKind kind :
       {sched::PolicyKind::kRoundRobin, sched::PolicyKind::kFcfs,
        sched::PolicyKind::kHnr, sched::PolicyKind::kBsd}) {
    const core::RunResult r = dsms.Run(sched::PolicyConfig::Of(kind));
    table.AddRow(r.policy_name,
                 {static_cast<double>(r.counters.composites_generated),
                  r.qos.avg_slowdown, r.qos.max_slowdown, r.qos.l2_slowdown});
  }
  std::cout << table.ToAscii();
  std::cout << "\nThe selectivity-aware policies (HNR, BSD) beat RR/FCFS on "
               "average slowdown and l2 norm; BSD additionally caps the "
               "maximum slowdown HNR lets grow.\n";
  std::remove(trace_path.c_str());
  return 0;
}
