// Adaptive dashboard: stale statistics, run-time monitoring, and burst
// transients in one scenario.
//
// An operations dashboard registers queries whose selectivities were
// estimated at deploy time but drifted since (alert rates change, feeds get
// noisier). The demo shows:
//   1. how badly a static HNR scheduler does with the stale estimates,
//   2. how the run-time statistics monitor (§10's dynamic-environment
//      support) recovers the loss without redeploying,
//   3. the per-burst slowdown timeline that aggregate numbers hide.

#include <algorithm>
#include <iostream>

#include "common/table.h"
#include "core/dsms.h"
#include "query/builder.h"
#include "query/workload.h"
#include "stream/arrival_process.h"

int main() {
  using namespace aqsios;

  core::Dsms dsms;
  // Ten queries whose deploy-time selectivity estimates are badly stale:
  // the cheap "rare" alerts actually fire often, the heavy "frequent"
  // analytics actually rarely pass their filter. A static scheduler
  // prioritizes exactly backwards.
  for (int i = 0; i < 5; ++i) {
    dsms.AddQuery(query::QueryBuilder(0)
                      .Select(0.5, /*assumed=*/0.05)
                      .WithActualSelectivity(0.6)
                      .Project(0.5)
                      .CostClass(0)
                      .ClassSelectivity(0.05)
                      .Build());
  }
  for (int i = 0; i < 5; ++i) {
    dsms.AddQuery(query::QueryBuilder(0)
                      .Select(4.0, /*assumed=*/0.9)
                      .WithActualSelectivity(0.1)
                      .StoredJoin(4.0, 1.0)
                      .Project(4.0)
                      .CostClass(3)
                      .ClassSelectivity(0.9)
                      .Build());
  }

  stream::OnOffConfig bursts;
  bursts.on_rate = 120.0;
  bursts.mean_on_duration = 0.4;
  bursts.mean_off_duration = 0.6;
  stream::OnOffArrivalProcess process(bursts, 7);
  dsms.SetArrivals(stream::MergeArrivalTables(
      {stream::GenerateArrivals(process, 0, 25000, 8)}));

  // --- static vs adaptive HNR ----------------------------------------------
  core::SimulationOptions stale_options;
  stale_options.qos.timeline_bucket = 5.0;
  core::SimulationOptions adaptive_options = stale_options;
  adaptive_options.adaptation.enabled = true;
  adaptive_options.adaptation.period = 0.5;

  const core::RunResult stale = dsms.Run(
      sched::PolicyConfig::Of(sched::PolicyKind::kHnr), stale_options);
  const core::RunResult adaptive = dsms.Run(
      sched::PolicyConfig::Of(sched::PolicyKind::kHnr), adaptive_options);

  Table table({"scheduler", "avg slowdown", "max slowdown", "l2 norm",
               "adaptation ticks"});
  table.AddRow("HNR (stale statistics)",
               {stale.qos.avg_slowdown, stale.qos.max_slowdown,
                stale.qos.l2_slowdown,
                static_cast<double>(stale.counters.adaptation_ticks)});
  table.AddRow("HNR (adaptive monitor)",
               {adaptive.qos.avg_slowdown, adaptive.qos.max_slowdown,
                adaptive.qos.l2_slowdown,
                static_cast<double>(adaptive.counters.adaptation_ticks)});
  std::cout << "=== adaptive dashboard: deploy-time estimates vs reality "
               "===\n\n"
            << table.ToAscii() << "\n";

  // --- burst timeline -------------------------------------------------------
  std::cout << "slowdown per 5s bucket (s = stale, a = adaptive), log-ish "
               "bars:\n";
  const auto& s_series = stale.qos.slowdown_timeline_mean;
  const auto& a_series = adaptive.qos.slowdown_timeline_mean;
  double peak = 1.0;
  for (double v : s_series) peak = std::max(peak, v);
  const size_t buckets = std::min(s_series.size(), a_series.size());
  for (size_t i = 0; i < buckets; ++i) {
    const auto bar = [&](double v) {
      const int width =
          v <= 0.0 ? 0
                   : static_cast<int>(30.0 * std::log1p(v) / std::log1p(peak));
      return std::string(static_cast<size_t>(width), '#');
    };
    std::cout << "t=" << FormatDouble(5.0 * static_cast<double>(i), 4)
              << "s  s|" << bar(s_series[i]) << "\n        a|"
              << bar(a_series[i]) << "\n";
    if (i >= 11) {
      std::cout << "        ... (" << buckets - i - 1
                << " more buckets)\n";
      break;
    }
  }
  std::cout << "\nThe monitor re-learns S and C̄ within a few ticks; the "
               "adaptive run tracks the oracle ordering of the previous "
               "examples without redeploying any statistics.\n";
  return 0;
}
