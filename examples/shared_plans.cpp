// Operator sharing in optimized multi-query plans (§7).
//
// Several dashboard queries watch the same stream and share an identical
// (expensive) select operator; the optimizer merges them so the shared
// filter runs once per tuple. This example shows how the scheduler should
// price that shared operator: the Max / Sum / PDT strategies of the paper,
// and why the PDT wins — a handful of unproductive sibling segments must not
// drag down the shared operator's priority.

#include <iostream>

#include "common/table.h"
#include "core/dsms.h"
#include "query/workload.h"

int main() {
  using namespace aqsios;

  // The §9.3 testbed: queries in groups of 10, each group sharing its
  // select operator, bursty arrivals, high load.
  query::WorkloadConfig config;
  config.num_queries = 60;
  config.num_arrivals = 15000;
  config.utilization = 0.95;
  config.sharing_group_size = 10;
  config.seed = 99;
  const query::Workload workload = query::GenerateWorkload(config);

  std::cout << "=== shared operator plans: " << config.num_queries
            << " queries in groups of " << config.sharing_group_size
            << " ===\n";
  std::cout << "cost scale K = " << workload.scale_factor_k_ms
            << " ms (calibrated for utilization " << config.utilization
            << " *with* the sharing discount)\n\n";

  Table table({"strategy", "HNR avg slowdown", "BSD l2 norm"});
  for (sched::SharingStrategy strategy :
       {sched::SharingStrategy::kMax, sched::SharingStrategy::kSum,
        sched::SharingStrategy::kPdt}) {
    core::SimulationOptions options;
    options.sharing_strategy = strategy;
    const core::RunResult hnr = core::Simulate(
        workload, sched::PolicyConfig::Of(sched::PolicyKind::kHnr), options);
    const core::RunResult bsd = core::Simulate(
        workload, sched::PolicyConfig::Of(sched::PolicyKind::kBsd), options);
    table.AddRow(sched::SharingStrategyName(strategy),
                 {hnr.qos.avg_slowdown, bsd.qos.l2_slowdown});
  }
  std::cout << table.ToAscii();
  std::cout << "\nMax underestimates the shared operator (ignores sibling "
               "output); Sum lets weak siblings dilute it; the PDT takes "
               "exactly the prefix of segments that maximizes the aggregate "
               "priority.\n";
  return 0;
}
