#!/usr/bin/env python3
"""Compare two benchmark reports and flag perf regressions.

Accepts either report the repo's bench binaries write:

  * aqsios-bench-perf/1  (bench_micro_sched / bench_scaling / bench_stress
    --out BENCH_perf.json): benchmarks are matched by "name" and compared on
    ns_per_op. The shard-scaling cells (scaling/<policy>/q=N/shards=K) are
    additionally compared on the *inverse* of speedup_vs_shards1 under the
    synthetic key "<name>/speedup" — inverting keeps every compared number
    lower-is-better, so a shrinking shard speedup shows up as a REGRESSION
    like any slowdown would. The overload-stress cells
    (stress/<policy>/q=N/shed=F and .../admission=shards4) are additionally
    compared on p99_slowdown under "<name>/p99" — the frontier's QoS axis is
    a deterministic virtual quantity, so a worsening p99 at the same shed
    fraction is a real scheduling regression, not machine noise. The
    statistics-drift cells (drift/{static,calibrated}/<policy>/q=N from
    bench_drift) are compared on p99_slowdown the same way under
    "<name>/p99", and the candidate's drift/calibrated/ cells are
    additionally gated *within the report* against their drift/static/
    partner: calibrated p99 must stay at or below --max-drift-p99-ratio of
    the static cell's (both are deterministic virtual quantities from the
    same run, so the gate is machine-independent). The steady-state
    calibration pair (drift/steady/.../calibration=on) carries
    calibration_overhead_pct, gated absolutely against
    --max-calibration-overhead like the telemetry sampler overhead. The
    columnar-kernel cells (kernel/columnar/...) are additionally compared on
    the inverse of speedup_vs_scalar under "<name>/speedup", and the
    candidate's speedups are gated absolutely against --min-kernel-speedup:
    the speedup is measured within one report on one machine, so unlike raw
    ns_per_op it is robust to host differences and can be a hard floor.
  * aqsios-bench-sweep/1 (bench_sweep_all --out BENCH_sweep.json):
    cells are matched by (figure, utilization, policy) and compared on
    wall_ms.

For every matched entry the ratio new/old is printed; entries whose ratio
exceeds 1 + --threshold are regressions, entries below 1 - --threshold are
improvements, the rest are noise-level. Cells present in only one report are
coverage drift — a renamed or silently dropped benchmark looks exactly like
a fixed regression — and fail the comparison alongside regressions. Exit
status is 1 when any regression or coverage drift was found, unless
--warn-only (CI runners are noisy shared machines — the committed-baseline
check runs with --warn-only so it informs instead of flaking).

Usage:
    scripts/perf_compare.py old.json new.json
    scripts/perf_compare.py BENCH_perf.json /tmp/perf_new.json \
        --threshold 0.25 --warn-only
    scripts/perf_compare.py BENCH_sweep.json /tmp/sweep_new.json

Standard library only.
"""

import argparse
import json
import sys


def load_entries(path, overheads=None, kernel_speedups=None,
                 skew_imbalances=None, drift_p99s=None,
                 calibration_overheads=None):
    """Returns (schema, {key: value}) for one report file.

    Keys are benchmark names (perf schema) or "figure/util/policy" strings
    (sweep schema); values are the compared metric (ns_per_op / wall_ms).
    When `overheads` is a dict, cells carrying telemetry_overhead_pct (the
    bench_scaling sampler-overhead pair) record it there by name. When
    `kernel_speedups` is a dict, cells carrying speedup_vs_scalar (the
    columnar-kernel cells) record it there by name. When `skew_imbalances`
    is a dict, the skewed scaling cells (scaling/skew/...) record their
    load_imbalance there by name. When `drift_p99s` is a dict, the
    statistics-drift cells (drift/...) record their p99_slowdown there by
    name; when `calibration_overheads` is a dict, cells carrying
    calibration_overhead_pct (the bench_drift steady-state pair) record it
    there by name.
    """
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    schema = report.get("schema", "")
    entries = {}
    if schema.startswith("aqsios-bench-perf/"):
        for bench in report["benchmarks"]:
            entries[bench["name"]] = float(bench["ns_per_op"])
            # Scaling-curve cells also gate on the shard speedup itself,
            # inverted so lower stays better (see module docstring).
            speedup = bench.get("speedup_vs_shards1")
            if speedup:
                entries[bench["name"] + "/speedup"] = 1.0 / float(speedup)
            # Overload-stress cells also gate on the frontier's QoS axis
            # (deterministic virtual p99 slowdown, lower is better).
            if bench["name"].startswith("stress/"):
                p99 = bench.get("p99_slowdown")
                if p99 is not None:
                    entries[bench["name"] + "/p99"] = float(p99)
            # Statistics-drift cells gate on p99 the same way, and their
            # calibrated/static pairs are additionally gated within-report
            # (see main).
            if bench["name"].startswith("drift/"):
                p99 = bench.get("p99_slowdown")
                if p99 is not None:
                    entries[bench["name"] + "/p99"] = float(p99)
                    if drift_p99s is not None:
                        drift_p99s[bench["name"]] = float(p99)
            cal_pct = bench.get("calibration_overhead_pct")
            if cal_pct is not None and calibration_overheads is not None:
                calibration_overheads[bench["name"]] = float(cal_pct)
            # Columnar-kernel cells also gate on their within-report
            # wall-clock speedup over the paired scalar cell, inverted so
            # lower stays better; the candidate's speedups are additionally
            # gated absolutely (see module docstring).
            kernel = bench.get("speedup_vs_scalar")
            if kernel:
                entries[bench["name"] + "/speedup"] = 1.0 / float(kernel)
                if kernel_speedups is not None:
                    kernel_speedups[bench["name"]] = float(kernel)
            pct = bench.get("telemetry_overhead_pct")
            if pct is not None and overheads is not None:
                overheads[bench["name"]] = float(pct)
            # Skewed scaling cells also gate on the within-report ratio of
            # the elastic controller's load imbalance to the static
            # placement's (see main), a deterministic virtual quantity.
            if bench["name"].startswith("scaling/skew/"):
                imbalance = bench.get("load_imbalance")
                if imbalance is not None and skew_imbalances is not None:
                    skew_imbalances[bench["name"]] = float(imbalance)
    elif schema.startswith("aqsios-bench-sweep/"):
        for figure in report["figures"]:
            for cell in figure["cells"]:
                key = "{}/u={}/{}".format(
                    figure["figure"], cell["utilization"], cell["policy"])
                entries[key] = float(cell["wall_ms"])
    else:
        raise ValueError(
            f"{path}: unrecognized schema {schema!r} (expected "
            "aqsios-bench-perf/1 or aqsios-bench-sweep/1)")
    return schema, entries


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", help="baseline report (JSON)")
    parser.add_argument("new", help="candidate report (JSON)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative change treated as noise "
                             "(default: 0.15 = +-15%%)")
    parser.add_argument("--warn-only", action="store_true",
                        help="always exit 0; report regressions as warnings")
    parser.add_argument("--max-telemetry-overhead", type=float, default=2.0,
                        help="absolute ceiling (in percent) for "
                             "telemetry_overhead_pct cells in the candidate "
                             "report (default: 2.0)")
    parser.add_argument("--min-kernel-speedup", type=float, default=1.5,
                        help="absolute floor for speedup_vs_scalar on the "
                             "candidate's kernel/columnar/ cells "
                             "(default: 1.5)")
    parser.add_argument("--max-skew-imbalance-ratio", type=float, default=0.5,
                        help="ceiling for the candidate's scaling/skew/"
                             "rebalance load_imbalance as a fraction of its "
                             "scaling/skew/static cell's (default: 0.5)")
    parser.add_argument("--max-drift-p99-ratio", type=float, default=0.67,
                        help="ceiling for the candidate's drift/calibrated/ "
                             "p99_slowdown as a fraction of its "
                             "drift/static/ cell's (default: 0.67, i.e. "
                             "calibration must beat static by >=1.5x)")
    parser.add_argument("--max-calibration-overhead", type=float, default=2.0,
                        help="absolute ceiling (in percent) for "
                             "calibration_overhead_pct on the candidate's "
                             "steady-state pair (default: 2.0)")
    args = parser.parse_args()

    old_schema, old_entries = load_entries(args.old)
    new_overheads = {}
    new_kernel_speedups = {}
    new_skew_imbalances = {}
    new_drift_p99s = {}
    new_calibration_overheads = {}
    new_schema, new_entries = load_entries(
        args.new, overheads=new_overheads,
        kernel_speedups=new_kernel_speedups,
        skew_imbalances=new_skew_imbalances,
        drift_p99s=new_drift_p99s,
        calibration_overheads=new_calibration_overheads)
    if old_schema != new_schema:
        print(f"error: schema mismatch: {old_schema} vs {new_schema}",
              file=sys.stderr)
        return 2

    shared = [k for k in old_entries if k in new_entries]
    only_old = sorted(k for k in old_entries if k not in new_entries)
    only_new = sorted(k for k in new_entries if k not in old_entries)

    regressions = []
    improvements = []
    width = max((len(k) for k in shared), default=0)
    for key in shared:
        old_value = old_entries[key]
        new_value = new_entries[key]
        if old_value <= 0.0:
            ratio = float("inf") if new_value > 0.0 else 1.0
        else:
            ratio = new_value / old_value
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSION"
            regressions.append(key)
        elif ratio < 1.0 - args.threshold:
            verdict = "improved"
            improvements.append(key)
        else:
            verdict = "ok"
        print(f"{key:<{width}}  {old_value:12.2f} -> {new_value:12.2f}  "
              f"x{ratio:.3f}  {verdict}")

    label = "warning" if args.warn_only else "error"
    for key in only_old:
        print(f"{key}: removed (only in {args.old})")
        print(f"{label}: cell {key} is in the baseline ({args.old}) but "
              f"missing from the candidate ({args.new})", file=sys.stderr)
    for key in only_new:
        print(f"{key}: added (only in {args.new})")
        print(f"{label}: cell {key} is in the candidate ({args.new}) but "
              f"missing from the baseline ({args.old})", file=sys.stderr)

    # Sampler overhead is gated absolutely, not against the baseline: the
    # live-telemetry contract is "attaching the sampler costs <= the bar",
    # whatever the machine.
    for key, pct in sorted(new_overheads.items()):
        if pct > args.max_telemetry_overhead:
            verdict = "REGRESSION"
            regressions.append(key + "/overhead")
        else:
            verdict = "ok"
        print(f"{key}: telemetry overhead {pct:.2f}% "
              f"(max {args.max_telemetry_overhead:.2f}%)  {verdict}")

    # Kernel speedup is gated absolutely too: the columnar train kernels
    # must beat the scalar pass by the floor on whatever machine ran the
    # candidate report.
    for key, speedup in sorted(new_kernel_speedups.items()):
        if speedup < args.min_kernel_speedup:
            verdict = "REGRESSION"
            regressions.append(key + "/kernel-speedup")
        else:
            verdict = "ok"
        print(f"{key}: columnar speedup {speedup:.2f}x "
              f"(min {args.min_kernel_speedup:.2f}x)  {verdict}")

    # The elastic rebalancer is gated within-report: its skewed cell's load
    # imbalance must stay at or below the configured fraction of the static
    # placement's. Both numbers are deterministic virtual quantities from
    # the same candidate run, so the gate is machine-independent.
    for key, imbalance in sorted(new_skew_imbalances.items()):
        if "/rebalance/" not in key:
            continue
        static_key = key.replace("/rebalance/", "/static/")
        static_imbalance = new_skew_imbalances.get(static_key)
        if static_imbalance is None:
            continue
        bound = args.max_skew_imbalance_ratio * static_imbalance
        if imbalance > bound:
            verdict = "REGRESSION"
            regressions.append(key + "/imbalance")
        else:
            verdict = "ok"
        print(f"{key}: load imbalance {imbalance:.3f} vs static "
              f"{static_imbalance:.3f} (max ratio "
              f"{args.max_skew_imbalance_ratio:.2f})  {verdict}")

    # Online calibration is gated within-report the same way: the calibrated
    # drift cell's p99 slowdown must stay at or below the configured
    # fraction of its static partner's — both deterministic virtual
    # quantities from the same candidate run.
    for key, p99 in sorted(new_drift_p99s.items()):
        if "/calibrated/" not in key:
            continue
        static_key = key.replace("/calibrated/", "/static/")
        static_p99 = new_drift_p99s.get(static_key)
        if static_p99 is None:
            continue
        bound = args.max_drift_p99_ratio * static_p99
        if p99 > bound:
            verdict = "REGRESSION"
            regressions.append(key + "/drift-p99")
        else:
            verdict = "ok"
        print(f"{key}: p99 slowdown {p99:.1f} vs static {static_p99:.1f} "
              f"(max ratio {args.max_drift_p99_ratio:.2f})  {verdict}")

    # Steady-state calibration overhead is gated absolutely, like the
    # telemetry sampler: leaving the calibrator on when nothing drifts must
    # cost <= the bar, whatever the machine.
    for key, pct in sorted(new_calibration_overheads.items()):
        if pct > args.max_calibration_overhead:
            verdict = "REGRESSION"
            regressions.append(key + "/calibration-overhead")
        else:
            verdict = "ok"
        print(f"{key}: calibration overhead {pct:.2f}% "
              f"(max {args.max_calibration_overhead:.2f}%)  {verdict}")

    print(f"\n{len(shared)} compared, {len(improvements)} improved, "
          f"{len(regressions)} regressed, {len(only_old)} missing, "
          f"{len(only_new)} extra (threshold +-"
          f"{args.threshold * 100:.0f}%)")
    if regressions:
        for key in regressions:
            print(f"{label}: regression in {key}", file=sys.stderr)
    if (regressions or only_old or only_new) and not args.warn_only:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
