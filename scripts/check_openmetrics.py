#!/usr/bin/env python3
"""Lint an OpenMetrics text exposition (the file bench binaries write via
--metrics-out and trace_tool top tails).

A pure-python subset of the OpenMetrics 1.0 text-format grammar — enough to
catch every way the repo's renderer (src/obs/openmetrics.cc) could drift:

  * metric and label names match the spec ABNF
    ([a-zA-Z_:][a-zA-Z0-9_:]* / [a-zA-Z_][a-zA-Z0-9_]*);
  * every sample line parses as name[{labels}] value with a finite decimal
    value and correctly quoted/escaped label values;
  * every sampled family is declared by exactly one preceding # TYPE line,
    with an allowed type (counter/gauge/...), and at most one # HELP;
  * counter samples carry the _total suffix, and no gauge sample does;
  * the last line is the mandatory # EOF terminator and nothing follows it.

--require FAMILY (repeatable) additionally asserts that the named metric
family is declared and sampled in every checked file — the CI smokes use it
to pin the families a new subsystem must export (e.g. the elastic
rebalancer's aqsios_shard_migrations / aqsios_shard_steals).

Exit status 0 = clean; 1 = violations (each printed with its line number);
2 = usage/IO error. Standard library only.

Usage:
    scripts/check_openmetrics.py metrics.prom [more.prom ...]
    scripts/check_openmetrics.py --require aqsios_shard_migrations m.prom
"""

import argparse
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One label: name="value" with \" \\ \n as the only escapes.
LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\["\\n])*)"')
TYPES = {"counter", "gauge", "histogram", "summary", "info", "stateset",
         "unknown"}
# Sample suffixes each type may (or must) use on top of the family name.
COUNTER_SUFFIXES = ("_total", "_created")


def parse_value(text):
    """True when `text` is a valid OpenMetrics sample value."""
    if text in ("+Inf", "-Inf", "NaN"):
        return True
    try:
        float(text)
    except ValueError:
        return False
    return True


def check_file(path, require=()):
    """Returns a list of "line N: message" violation strings."""
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        return [str(error)]

    errors = []
    types = {}     # family name -> declared type
    helps = set()  # families with a # HELP seen
    sampled = set()
    saw_eof = False

    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()  # the trailing newline
    else:
        errors.append("file must end with a newline")

    for number, line in enumerate(lines, start=1):
        if saw_eof:
            errors.append(f"line {number}: content after # EOF")
            break
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if len(parts) != 2:
                errors.append(f"line {number}: malformed # TYPE line")
                continue
            family, kind = parts
            if not METRIC_NAME.match(family):
                errors.append(f"line {number}: bad metric name {family!r}")
            if kind not in TYPES:
                errors.append(f"line {number}: unknown type {kind!r}")
            if family in types:
                errors.append(
                    f"line {number}: duplicate # TYPE for {family}")
            if family in sampled:
                errors.append(
                    f"line {number}: # TYPE for {family} after its samples")
            types[family] = kind
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            family = parts[0]
            if not METRIC_NAME.match(family):
                errors.append(f"line {number}: bad metric name {family!r}")
            if family in helps:
                errors.append(
                    f"line {number}: duplicate # HELP for {family}")
            helps.add(family)
            continue
        if line.startswith("#"):
            errors.append(f"line {number}: unrecognized comment {line!r}")
            continue

        # Sample line: name[{labels}] value [timestamp].
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (.+)$",
                         line)
        if not match:
            errors.append(f"line {number}: unparsable sample {line!r}")
            continue
        name, labels, rest = match.groups()
        value = rest.split(" ")[0]
        if not parse_value(value):
            errors.append(f"line {number}: bad sample value {value!r}")
        if labels:
            body = labels[1:-1]
            consumed = ",".join(
                f'{label}="{raw}"' for label, raw in LABEL.findall(body))
            if consumed != body:
                errors.append(f"line {number}: malformed labels {labels!r}")

        # Resolve the sample back to its declared family.
        family = None
        if name in types:
            family = name
        else:
            for suffix in COUNTER_SUFFIXES:
                if name.endswith(suffix) and name[:-len(suffix)] in types:
                    family = name[:-len(suffix)]
                    break
        if family is None:
            errors.append(
                f"line {number}: sample {name!r} has no preceding # TYPE")
            continue
        sampled.add(family)
        kind = types[family]
        if kind == "counter" and name == family:
            errors.append(
                f"line {number}: counter sample {name!r} missing _total")
        if kind != "counter" and name != family:
            errors.append(
                f"line {number}: {kind} sample {name!r} uses a counter "
                "suffix")

    if not saw_eof:
        errors.append("missing # EOF terminator")
    for family in require:
        if family not in sampled:
            errors.append(
                f"required family {family!r} is not sampled in this "
                "exposition")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+", metavar="metrics.prom",
                        help="OpenMetrics exposition files to lint")
    parser.add_argument("--require", action="append", default=[],
                        metavar="FAMILY",
                        help="metric family that must be declared and "
                             "sampled in every checked file (repeatable)")
    args = parser.parse_args()
    failed = False
    for path in args.paths:
        errors = check_file(path, require=args.require)
        if errors:
            failed = True
            for error in errors:
                print(f"{path}: {error}")
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
