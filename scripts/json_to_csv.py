#!/usr/bin/env python3
"""Convert bench --json output into plot-ready CSV.

The sweep benches emit a machine-readable line when run with --json:

    JSON: [{"utilization":0.5,"policy":"RR","wall_ms":12.3,"qos":{...}}, ...]

and the unified driver (bench_sweep_all) writes a multi-figure report
(schema aqsios-bench-sweep/1) with the same cell arrays nested under
"figures". This script extracts one cell array (from a file or stdin; raw
JSON works too), pivots one metric into a utilization x policy grid, and
writes CSV — one row per utilization, one column per policy — ready for any
plotting tool.

Micro-benchmark reports (schema aqsios-bench-perf/1, written by
bench_micro_sched / bench_scaling / bench_stress --out BENCH_perf.json) are
detected automatically and emitted as a flat table — the pivot options do
not apply to them. Besides name,ns_per_op,ops,wall_ms the table carries the
optional per-cell columns: tuples_per_vsec (deterministic virtual
throughput of the batched sim cells), the columnar-kernel cells'
tuples_per_wall_sec and speedup_vs_scalar
(kernel/{scalar,columnar}/<policy>/... cells, see docs/performance.md),
the shard-scaling curve's
tuples_per_wall_sec, speedup_vs_shards1 and load_imbalance
(scaling/<policy>/q=N/shards=K cells, see docs/scaling.md), the skewed
elastic cells' migrations, steals and speedup_vs_static
(scaling/skew/<mode>/... cells), and the
overload-stress frontier's shed_ratio, p99_slowdown, avg_slowdown,
peak_queued_tuples, tuples_emitted and admission_dropped
(stress/<policy>/... cells, see docs/overload.md), and the
statistics-drift cells' calibration_epochs, calibration_updates,
calibration_rekeys, est_cost_drift, est_sel_drift,
p99_slowdown_vs_static and calibration_overhead_pct
(drift/{static,calibrated,steady}/... cells, see docs/calibration.md).
Columns are empty for cells without the field.

Telemetry JSONL logs (schema aqsios-telemetry/1, written by the bench
binaries' --telemetry-jsonl flag, see docs/telemetry.md) are also detected
automatically and flattened to one CSV row per sample x shard, with the
sampler tick, wall clock, per-shard snapshot fields, and any watchdog
events fired that tick (kind names joined with "|").

For sweep reports the metric is looked up in the cell's "qos" object first (avg/max/l2
slowdown, the histogram quantiles p50/p95/p99/p999_slowdown, ...), then in
the cell itself (timing fields such as wall_ms / max_rss_kb), then in its
"counters", "decisions" (scheduling_points, mean_candidates,
mean_priority_computations) and "attribution" (mean_queue_wait_ms,
mean_sched_overhead_ms, mean_processing_ms, mean_dependency_delay_ms)
objects when present. Histogram summaries nested inside counters are
reachable with a dotted path, e.g. "counters.queue_length.p99".

Usage:
    build/bench/bench_fig5_avg_slowdown --json | \
        scripts/json_to_csv.py --metric avg_slowdown > fig5.csv
    scripts/json_to_csv.py --metric p999_slowdown --in sweep.json
    scripts/json_to_csv.py --metric mean_candidates --in sweep.json
    scripts/json_to_csv.py --metric mean_queue_wait_ms --in sweep.json
    scripts/json_to_csv.py --metric counters.exec_busy_seconds.p99 \
        --in sweep.json
    scripts/json_to_csv.py --metric wall_ms --figure fig8_9 \
        --in BENCH_sweep.json
    scripts/json_to_csv.py --in BENCH_perf.json
Standard library only.
"""

import argparse
import json
import sys


def extract_cells(text, figure=None):
    """Returns the requested sweep-cell array found in `text`.

    Accepts three shapes: bench output with a "JSON: [...]" line, a raw cell
    array, or a bench_sweep_all report (object with a "figures" array, in
    which case `figure` selects the grid — required when there are several).
    """
    data = None
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("JSON: "):
            data = json.loads(line[len("JSON: "):])
            break
    if data is None:
        data = json.loads(text)
    if (isinstance(data, dict)
            and str(data.get("schema", "")).startswith("aqsios-bench-perf/")):
        return data["benchmarks"]
    if isinstance(data, dict) and "figures" in data:
        names = [f.get("figure") for f in data["figures"]]
        if figure is None:
            if len(names) != 1:
                raise ValueError(
                    f"--figure required to pick one of: {', '.join(names)}")
            return data["figures"][0]["cells"]
        for entry in data["figures"]:
            if entry.get("figure") == figure:
                return entry["cells"]
        raise KeyError(
            f"figure '{figure}' not found; available: {', '.join(names)}")
    if not isinstance(data, list):
        raise ValueError("expected a JSON array of sweep cells")
    if figure is not None:
        raise ValueError("--figure only applies to bench_sweep_all reports")
    return data


TELEMETRY_SHARD_FIELDS = [
    "virtual_sec", "busy_sec", "queued_tuples", "tuples_executed",
    "tuples_emitted", "tuples_filtered", "tuples_shed", "tuples_offered",
    "scheduling_points", "routed", "admission_rejected", "migrations",
    "steals", "slowdown_mean", "slowdown_max", "calibration_updates",
    "calibration_rekeys", "calibration_cost_drift", "done"]


def telemetry_to_csv(lines):
    """Flattens an aqsios-telemetry/1 JSONL log: one row per sample x shard,
    watchdog events of the tick joined into the trailing column."""
    print(",".join(["sample", "wall_ms", "final", "shard"]
                   + TELEMETRY_SHARD_FIELDS + ["events"]))
    for line in lines:
        record = json.loads(line)
        events = "|".join(e["kind"] for e in record.get("events", []))
        for shard in record["shards"]:
            row = [str(record["sample"]), repr(record["wall_ms"]),
                   str(record["final"]), str(shard["shard"])]
            for field in TELEMETRY_SHARD_FIELDS:
                # Logs written before a field existed leave the column empty.
                value = shard.get(field)
                row.append("" if value is None else str(value))
            row.append(events)
            print(",".join(row))
    return 0


def cell_metric(cell, metric):
    """Looks up `metric` in qos, then the cell itself, then counters,
    decisions and attribution. Dotted metrics ("counters.queue_length.p99")
    descend from the cell root."""
    if "." in metric:
        value = cell
        for part in metric.split("."):
            if not isinstance(value, dict) or part not in value:
                raise KeyError(f"metric path '{metric}' not found at '{part}'")
            value = value[part]
        if isinstance(value, (dict, list)):
            raise KeyError(f"metric path '{metric}' is not scalar")
        return value
    scopes = (cell.get("qos", {}), cell, cell.get("counters", {}),
              cell.get("decisions", {}), cell.get("attribution", {}))
    for scope in scopes:
        value = scope.get(metric)
        if value is not None and not isinstance(value, (dict, list)):
            return value
    available = sorted(set().union(*scopes))
    raise KeyError(f"metric '{metric}' not found; available: {available}")


def pivot(cells, metric):
    """Pivots cells into (policies, {utilization: {policy: value}})."""
    policies = []
    grid = {}
    for cell in cells:
        policy = cell["policy"]
        if policy not in policies:
            policies.append(policy)
        grid.setdefault(cell["utilization"], {})[policy] = cell_metric(
            cell, metric)
    return policies, grid


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metric", default="avg_slowdown",
                        help="field to pivot: a qos metric, a per-cell "
                             "timing field (wall_ms, max_rss_kb), or a "
                             "counter (default: avg_slowdown)")
    parser.add_argument("--figure", default=None,
                        help="grid to extract from a bench_sweep_all report "
                             "(e.g. fig5, fig8_9)")
    parser.add_argument("--in", dest="input", default="-",
                        help="input file ('-' = stdin)")
    args = parser.parse_args()

    text = (sys.stdin.read() if args.input == "-"
            else open(args.input, encoding="utf-8").read())
    lines = [line for line in text.splitlines() if line.strip()]
    if lines and lines[0].startswith('{"schema":"aqsios-telemetry/'):
        return telemetry_to_csv(lines[1:])
    cells = extract_cells(text, args.figure)
    if cells and isinstance(cells[0], dict) and "ns_per_op" in cells[0]:
        # aqsios-bench-perf/1 micro-benchmark rows: flat table, no pivot.
        optional = ["tuples_per_vsec", "tuples_per_wall_sec",
                    "speedup_vs_scalar",
                    "speedup_vs_shards1", "load_imbalance", "shed_ratio",
                    "p99_slowdown", "avg_slowdown", "peak_queued_tuples",
                    "tuples_emitted", "admission_dropped",
                    "migrations", "steals", "speedup_vs_static",
                    "telemetry_overhead_pct", "calibration_epochs",
                    "calibration_updates", "calibration_rekeys",
                    "est_cost_drift", "est_sel_drift",
                    "p99_slowdown_vs_static", "calibration_overhead_pct",
                    "healthy", "health"]
        print(",".join(["name", "ns_per_op", "ops", "wall_ms"] + optional))
        for bench in cells:
            row = [bench["name"], repr(bench["ns_per_op"]),
                   str(bench["ops"]), repr(bench["wall_ms"])]
            for field in optional:
                value = bench.get(field)
                row.append("" if value is None
                           else str(value) if isinstance(value, (str, bool))
                           else repr(value))
            print(",".join(row))
        return 0
    policies, grid = pivot(cells, args.metric)

    print(",".join(["utilization"] + policies))
    for utilization in sorted(grid):
        row = [str(utilization)]
        for policy in policies:
            value = grid[utilization].get(policy, "")
            row.append(repr(value) if value != "" else "")
        print(",".join(row))
    return 0


if __name__ == "__main__":
    sys.exit(main())
