#!/usr/bin/env python3
"""Convert bench --json output into plot-ready CSV.

The sweep benches emit a machine-readable line when run with --json:

    JSON: [{"utilization":0.5,"policy":"RR","qos":{...}}, ...]

This script extracts that array (from a file or stdin; raw JSON arrays work
too), pivots one QoS metric into a utilization x policy grid, and writes
CSV — one row per utilization, one column per policy — ready for any
plotting tool.

Usage:
    build/bench/bench_fig5_avg_slowdown --json | \
        scripts/json_to_csv.py --metric avg_slowdown > fig5.csv
    scripts/json_to_csv.py --metric l2_slowdown --in sweep.json
Standard library only.
"""

import argparse
import json
import sys


def extract_cells(text):
    """Returns the first sweep-cell array found in `text`."""
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("JSON: "):
            return json.loads(line[len("JSON: "):])
    # Fall back to treating the whole input as JSON.
    data = json.loads(text)
    if not isinstance(data, list):
        raise ValueError("expected a JSON array of sweep cells")
    return data


def pivot(cells, metric):
    """Pivots cells into (policies, {utilization: {policy: value}})."""
    policies = []
    grid = {}
    for cell in cells:
        policy = cell["policy"]
        if policy not in policies:
            policies.append(policy)
        value = cell["qos"].get(metric)
        if value is None:
            raise KeyError(
                f"metric '{metric}' not in qos; available: "
                f"{sorted(cell['qos'])}")
        grid.setdefault(cell["utilization"], {})[policy] = value
    return policies, grid


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metric", default="avg_slowdown",
                        help="qos field to pivot (default: avg_slowdown)")
    parser.add_argument("--in", dest="input", default="-",
                        help="input file ('-' = stdin)")
    args = parser.parse_args()

    text = (sys.stdin.read() if args.input == "-"
            else open(args.input, encoding="utf-8").read())
    cells = extract_cells(text)
    policies, grid = pivot(cells, args.metric)

    print(",".join(["utilization"] + policies))
    for utilization in sorted(grid):
        row = [str(utilization)]
        for policy in policies:
            value = grid[utilization].get(policy, "")
            row.append(repr(value) if value != "" else "")
        print(",".join(row))
    return 0


if __name__ == "__main__":
    sys.exit(main())
