# Empty compiler generated dependencies file for aqsios_metrics.
# This may be replaced when dependencies are built.
