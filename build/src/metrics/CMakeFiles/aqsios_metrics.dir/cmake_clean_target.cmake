file(REMOVE_RECURSE
  "libaqsios_metrics.a"
)
