
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/qos.cc" "src/metrics/CMakeFiles/aqsios_metrics.dir/qos.cc.o" "gcc" "src/metrics/CMakeFiles/aqsios_metrics.dir/qos.cc.o.d"
  "/root/repo/src/metrics/timeline.cc" "src/metrics/CMakeFiles/aqsios_metrics.dir/timeline.cc.o" "gcc" "src/metrics/CMakeFiles/aqsios_metrics.dir/timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aqsios_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
