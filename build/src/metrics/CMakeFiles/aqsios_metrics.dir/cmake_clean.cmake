file(REMOVE_RECURSE
  "CMakeFiles/aqsios_metrics.dir/qos.cc.o"
  "CMakeFiles/aqsios_metrics.dir/qos.cc.o.d"
  "CMakeFiles/aqsios_metrics.dir/timeline.cc.o"
  "CMakeFiles/aqsios_metrics.dir/timeline.cc.o.d"
  "libaqsios_metrics.a"
  "libaqsios_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqsios_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
