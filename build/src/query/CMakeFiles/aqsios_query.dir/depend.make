# Empty dependencies file for aqsios_query.
# This may be replaced when dependencies are built.
