file(REMOVE_RECURSE
  "CMakeFiles/aqsios_query.dir/builder.cc.o"
  "CMakeFiles/aqsios_query.dir/builder.cc.o.d"
  "CMakeFiles/aqsios_query.dir/operator.cc.o"
  "CMakeFiles/aqsios_query.dir/operator.cc.o.d"
  "CMakeFiles/aqsios_query.dir/plan.cc.o"
  "CMakeFiles/aqsios_query.dir/plan.cc.o.d"
  "CMakeFiles/aqsios_query.dir/query.cc.o"
  "CMakeFiles/aqsios_query.dir/query.cc.o.d"
  "CMakeFiles/aqsios_query.dir/workload.cc.o"
  "CMakeFiles/aqsios_query.dir/workload.cc.o.d"
  "libaqsios_query.a"
  "libaqsios_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqsios_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
