file(REMOVE_RECURSE
  "libaqsios_query.a"
)
