# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("stream")
subdirs("query")
subdirs("metrics")
subdirs("sched")
subdirs("exec")
subdirs("core")
