file(REMOVE_RECURSE
  "CMakeFiles/aqsios_stream.dir/arrival_process.cc.o"
  "CMakeFiles/aqsios_stream.dir/arrival_process.cc.o.d"
  "CMakeFiles/aqsios_stream.dir/trace.cc.o"
  "CMakeFiles/aqsios_stream.dir/trace.cc.o.d"
  "CMakeFiles/aqsios_stream.dir/tuple.cc.o"
  "CMakeFiles/aqsios_stream.dir/tuple.cc.o.d"
  "libaqsios_stream.a"
  "libaqsios_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqsios_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
