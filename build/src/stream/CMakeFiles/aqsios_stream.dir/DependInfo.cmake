
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/arrival_process.cc" "src/stream/CMakeFiles/aqsios_stream.dir/arrival_process.cc.o" "gcc" "src/stream/CMakeFiles/aqsios_stream.dir/arrival_process.cc.o.d"
  "/root/repo/src/stream/trace.cc" "src/stream/CMakeFiles/aqsios_stream.dir/trace.cc.o" "gcc" "src/stream/CMakeFiles/aqsios_stream.dir/trace.cc.o.d"
  "/root/repo/src/stream/tuple.cc" "src/stream/CMakeFiles/aqsios_stream.dir/tuple.cc.o" "gcc" "src/stream/CMakeFiles/aqsios_stream.dir/tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aqsios_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
