# Empty dependencies file for aqsios_stream.
# This may be replaced when dependencies are built.
