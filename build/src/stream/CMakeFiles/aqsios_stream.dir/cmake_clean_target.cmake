file(REMOVE_RECURSE
  "libaqsios_stream.a"
)
