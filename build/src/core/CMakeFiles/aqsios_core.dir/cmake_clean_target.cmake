file(REMOVE_RECURSE
  "libaqsios_core.a"
)
