file(REMOVE_RECURSE
  "CMakeFiles/aqsios_core.dir/dsms.cc.o"
  "CMakeFiles/aqsios_core.dir/dsms.cc.o.d"
  "CMakeFiles/aqsios_core.dir/experiment.cc.o"
  "CMakeFiles/aqsios_core.dir/experiment.cc.o.d"
  "CMakeFiles/aqsios_core.dir/report.cc.o"
  "CMakeFiles/aqsios_core.dir/report.cc.o.d"
  "libaqsios_core.a"
  "libaqsios_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqsios_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
