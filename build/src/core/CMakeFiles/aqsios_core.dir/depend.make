# Empty dependencies file for aqsios_core.
# This may be replaced when dependencies are built.
