file(REMOVE_RECURSE
  "libaqsios_exec.a"
)
