# Empty dependencies file for aqsios_exec.
# This may be replaced when dependencies are built.
