file(REMOVE_RECURSE
  "CMakeFiles/aqsios_exec.dir/engine.cc.o"
  "CMakeFiles/aqsios_exec.dir/engine.cc.o.d"
  "CMakeFiles/aqsios_exec.dir/stats_monitor.cc.o"
  "CMakeFiles/aqsios_exec.dir/stats_monitor.cc.o.d"
  "CMakeFiles/aqsios_exec.dir/unit_builder.cc.o"
  "CMakeFiles/aqsios_exec.dir/unit_builder.cc.o.d"
  "CMakeFiles/aqsios_exec.dir/window_join.cc.o"
  "CMakeFiles/aqsios_exec.dir/window_join.cc.o.d"
  "libaqsios_exec.a"
  "libaqsios_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqsios_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
