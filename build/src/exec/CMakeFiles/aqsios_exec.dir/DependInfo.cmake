
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/engine.cc" "src/exec/CMakeFiles/aqsios_exec.dir/engine.cc.o" "gcc" "src/exec/CMakeFiles/aqsios_exec.dir/engine.cc.o.d"
  "/root/repo/src/exec/stats_monitor.cc" "src/exec/CMakeFiles/aqsios_exec.dir/stats_monitor.cc.o" "gcc" "src/exec/CMakeFiles/aqsios_exec.dir/stats_monitor.cc.o.d"
  "/root/repo/src/exec/unit_builder.cc" "src/exec/CMakeFiles/aqsios_exec.dir/unit_builder.cc.o" "gcc" "src/exec/CMakeFiles/aqsios_exec.dir/unit_builder.cc.o.d"
  "/root/repo/src/exec/window_join.cc" "src/exec/CMakeFiles/aqsios_exec.dir/window_join.cc.o" "gcc" "src/exec/CMakeFiles/aqsios_exec.dir/window_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aqsios_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/aqsios_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/aqsios_query.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/aqsios_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/aqsios_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
