# Empty compiler generated dependencies file for aqsios_common.
# This may be replaced when dependencies are built.
