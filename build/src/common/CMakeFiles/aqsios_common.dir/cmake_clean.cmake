file(REMOVE_RECURSE
  "CMakeFiles/aqsios_common.dir/flags.cc.o"
  "CMakeFiles/aqsios_common.dir/flags.cc.o.d"
  "CMakeFiles/aqsios_common.dir/stats.cc.o"
  "CMakeFiles/aqsios_common.dir/stats.cc.o.d"
  "CMakeFiles/aqsios_common.dir/status.cc.o"
  "CMakeFiles/aqsios_common.dir/status.cc.o.d"
  "CMakeFiles/aqsios_common.dir/table.cc.o"
  "CMakeFiles/aqsios_common.dir/table.cc.o.d"
  "libaqsios_common.a"
  "libaqsios_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqsios_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
