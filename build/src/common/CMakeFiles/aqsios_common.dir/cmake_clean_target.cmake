file(REMOVE_RECURSE
  "libaqsios_common.a"
)
