
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/basic_policies.cc" "src/sched/CMakeFiles/aqsios_sched.dir/basic_policies.cc.o" "gcc" "src/sched/CMakeFiles/aqsios_sched.dir/basic_policies.cc.o.d"
  "/root/repo/src/sched/chain_policy.cc" "src/sched/CMakeFiles/aqsios_sched.dir/chain_policy.cc.o" "gcc" "src/sched/CMakeFiles/aqsios_sched.dir/chain_policy.cc.o.d"
  "/root/repo/src/sched/clustered_bsd.cc" "src/sched/CMakeFiles/aqsios_sched.dir/clustered_bsd.cc.o" "gcc" "src/sched/CMakeFiles/aqsios_sched.dir/clustered_bsd.cc.o.d"
  "/root/repo/src/sched/clustering.cc" "src/sched/CMakeFiles/aqsios_sched.dir/clustering.cc.o" "gcc" "src/sched/CMakeFiles/aqsios_sched.dir/clustering.cc.o.d"
  "/root/repo/src/sched/lp_norm_policy.cc" "src/sched/CMakeFiles/aqsios_sched.dir/lp_norm_policy.cc.o" "gcc" "src/sched/CMakeFiles/aqsios_sched.dir/lp_norm_policy.cc.o.d"
  "/root/repo/src/sched/policy.cc" "src/sched/CMakeFiles/aqsios_sched.dir/policy.cc.o" "gcc" "src/sched/CMakeFiles/aqsios_sched.dir/policy.cc.o.d"
  "/root/repo/src/sched/qos_graph.cc" "src/sched/CMakeFiles/aqsios_sched.dir/qos_graph.cc.o" "gcc" "src/sched/CMakeFiles/aqsios_sched.dir/qos_graph.cc.o.d"
  "/root/repo/src/sched/sharing.cc" "src/sched/CMakeFiles/aqsios_sched.dir/sharing.cc.o" "gcc" "src/sched/CMakeFiles/aqsios_sched.dir/sharing.cc.o.d"
  "/root/repo/src/sched/two_level.cc" "src/sched/CMakeFiles/aqsios_sched.dir/two_level.cc.o" "gcc" "src/sched/CMakeFiles/aqsios_sched.dir/two_level.cc.o.d"
  "/root/repo/src/sched/unit.cc" "src/sched/CMakeFiles/aqsios_sched.dir/unit.cc.o" "gcc" "src/sched/CMakeFiles/aqsios_sched.dir/unit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aqsios_common.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/aqsios_query.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/aqsios_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
