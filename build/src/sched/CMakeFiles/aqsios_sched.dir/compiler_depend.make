# Empty compiler generated dependencies file for aqsios_sched.
# This may be replaced when dependencies are built.
