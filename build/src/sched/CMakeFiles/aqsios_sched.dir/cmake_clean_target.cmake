file(REMOVE_RECURSE
  "libaqsios_sched.a"
)
