file(REMOVE_RECURSE
  "CMakeFiles/aqsios_sched.dir/basic_policies.cc.o"
  "CMakeFiles/aqsios_sched.dir/basic_policies.cc.o.d"
  "CMakeFiles/aqsios_sched.dir/chain_policy.cc.o"
  "CMakeFiles/aqsios_sched.dir/chain_policy.cc.o.d"
  "CMakeFiles/aqsios_sched.dir/clustered_bsd.cc.o"
  "CMakeFiles/aqsios_sched.dir/clustered_bsd.cc.o.d"
  "CMakeFiles/aqsios_sched.dir/clustering.cc.o"
  "CMakeFiles/aqsios_sched.dir/clustering.cc.o.d"
  "CMakeFiles/aqsios_sched.dir/lp_norm_policy.cc.o"
  "CMakeFiles/aqsios_sched.dir/lp_norm_policy.cc.o.d"
  "CMakeFiles/aqsios_sched.dir/policy.cc.o"
  "CMakeFiles/aqsios_sched.dir/policy.cc.o.d"
  "CMakeFiles/aqsios_sched.dir/qos_graph.cc.o"
  "CMakeFiles/aqsios_sched.dir/qos_graph.cc.o.d"
  "CMakeFiles/aqsios_sched.dir/sharing.cc.o"
  "CMakeFiles/aqsios_sched.dir/sharing.cc.o.d"
  "CMakeFiles/aqsios_sched.dir/two_level.cc.o"
  "CMakeFiles/aqsios_sched.dir/two_level.cc.o.d"
  "CMakeFiles/aqsios_sched.dir/unit.cc.o"
  "CMakeFiles/aqsios_sched.dir/unit.cc.o.d"
  "libaqsios_sched.a"
  "libaqsios_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqsios_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
