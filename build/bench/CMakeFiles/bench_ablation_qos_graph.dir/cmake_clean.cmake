file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_qos_graph.dir/bench_ablation_qos_graph.cc.o"
  "CMakeFiles/bench_ablation_qos_graph.dir/bench_ablation_qos_graph.cc.o.d"
  "bench_ablation_qos_graph"
  "bench_ablation_qos_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_qos_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
