# Empty compiler generated dependencies file for bench_ablation_qos_graph.
# This may be replaced when dependencies are built.
