file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_per_class.dir/bench_fig11_per_class.cc.o"
  "CMakeFiles/bench_fig11_per_class.dir/bench_fig11_per_class.cc.o.d"
  "bench_fig11_per_class"
  "bench_fig11_per_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_per_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
