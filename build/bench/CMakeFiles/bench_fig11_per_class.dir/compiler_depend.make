# Empty compiler generated dependencies file for bench_fig11_per_class.
# This may be replaced when dependencies are built.
