file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_sharing.dir/bench_table2_sharing.cc.o"
  "CMakeFiles/bench_table2_sharing.dir/bench_table2_sharing.cc.o.d"
  "bench_table2_sharing"
  "bench_table2_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
