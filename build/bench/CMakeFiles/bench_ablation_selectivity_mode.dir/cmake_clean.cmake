file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_selectivity_mode.dir/bench_ablation_selectivity_mode.cc.o"
  "CMakeFiles/bench_ablation_selectivity_mode.dir/bench_ablation_selectivity_mode.cc.o.d"
  "bench_ablation_selectivity_mode"
  "bench_ablation_selectivity_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_selectivity_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
