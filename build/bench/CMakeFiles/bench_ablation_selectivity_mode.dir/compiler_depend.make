# Empty compiler generated dependencies file for bench_ablation_selectivity_mode.
# This may be replaced when dependencies are built.
