file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multijoin.dir/bench_ext_multijoin.cc.o"
  "CMakeFiles/bench_ext_multijoin.dir/bench_ext_multijoin.cc.o.d"
  "bench_ext_multijoin"
  "bench_ext_multijoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multijoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
