# Empty compiler generated dependencies file for bench_ext_multijoin.
# This may be replaced when dependencies are built.
