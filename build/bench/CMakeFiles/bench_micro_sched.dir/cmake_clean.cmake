file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_sched.dir/bench_micro_sched.cc.o"
  "CMakeFiles/bench_micro_sched.dir/bench_micro_sched.cc.o.d"
  "bench_micro_sched"
  "bench_micro_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
