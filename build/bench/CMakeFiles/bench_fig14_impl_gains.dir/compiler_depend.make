# Empty compiler generated dependencies file for bench_fig14_impl_gains.
# This may be replaced when dependencies are built.
