file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_impl_gains.dir/bench_fig14_impl_gains.cc.o"
  "CMakeFiles/bench_fig14_impl_gains.dir/bench_fig14_impl_gains.cc.o.d"
  "bench_fig14_impl_gains"
  "bench_fig14_impl_gains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_impl_gains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
