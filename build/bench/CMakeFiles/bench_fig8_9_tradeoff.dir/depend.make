# Empty dependencies file for bench_fig8_9_tradeoff.
# This may be replaced when dependencies are built.
