file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_9_tradeoff.dir/bench_fig8_9_tradeoff.cc.o"
  "CMakeFiles/bench_fig8_9_tradeoff.dir/bench_fig8_9_tradeoff.cc.o.d"
  "bench_fig8_9_tradeoff"
  "bench_fig8_9_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_9_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
