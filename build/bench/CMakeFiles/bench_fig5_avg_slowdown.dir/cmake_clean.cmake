file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_avg_slowdown.dir/bench_fig5_avg_slowdown.cc.o"
  "CMakeFiles/bench_fig5_avg_slowdown.dir/bench_fig5_avg_slowdown.cc.o.d"
  "bench_fig5_avg_slowdown"
  "bench_fig5_avg_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_avg_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
