# Empty compiler generated dependencies file for bench_fig5_avg_slowdown.
# This may be replaced when dependencies are built.
