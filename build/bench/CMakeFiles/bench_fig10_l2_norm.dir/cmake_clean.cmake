file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_l2_norm.dir/bench_fig10_l2_norm.cc.o"
  "CMakeFiles/bench_fig10_l2_norm.dir/bench_fig10_l2_norm.cc.o.d"
  "bench_fig10_l2_norm"
  "bench_fig10_l2_norm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_l2_norm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
