# Empty dependencies file for bench_fig10_l2_norm.
# This may be replaced when dependencies are built.
