file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_avg_response.dir/bench_fig6_avg_response.cc.o"
  "CMakeFiles/bench_fig6_avg_response.dir/bench_fig6_avg_response.cc.o.d"
  "bench_fig6_avg_response"
  "bench_fig6_avg_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_avg_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
