# Empty dependencies file for bench_fig6_avg_response.
# This may be replaced when dependencies are built.
