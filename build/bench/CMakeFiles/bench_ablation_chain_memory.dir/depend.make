# Empty dependencies file for bench_ablation_chain_memory.
# This may be replaced when dependencies are built.
