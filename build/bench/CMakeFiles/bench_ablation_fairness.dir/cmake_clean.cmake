file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fairness.dir/bench_ablation_fairness.cc.o"
  "CMakeFiles/bench_ablation_fairness.dir/bench_ablation_fairness.cc.o.d"
  "bench_ablation_fairness"
  "bench_ablation_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
