# Empty compiler generated dependencies file for bench_ablation_fairness.
# This may be replaced when dependencies are built.
