# Empty compiler generated dependencies file for bench_fig13_clustering.
# This may be replaced when dependencies are built.
