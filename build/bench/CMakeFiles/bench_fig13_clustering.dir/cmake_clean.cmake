file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_clustering.dir/bench_fig13_clustering.cc.o"
  "CMakeFiles/bench_fig13_clustering.dir/bench_fig13_clustering.cc.o.d"
  "bench_fig13_clustering"
  "bench_fig13_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
