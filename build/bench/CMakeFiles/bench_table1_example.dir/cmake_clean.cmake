file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_example.dir/bench_table1_example.cc.o"
  "CMakeFiles/bench_table1_example.dir/bench_table1_example.cc.o.d"
  "bench_table1_example"
  "bench_table1_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
