# Empty dependencies file for bench_table1_example.
# This may be replaced when dependencies are built.
