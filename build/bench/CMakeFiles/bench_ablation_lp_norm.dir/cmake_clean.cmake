file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lp_norm.dir/bench_ablation_lp_norm.cc.o"
  "CMakeFiles/bench_ablation_lp_norm.dir/bench_ablation_lp_norm.cc.o.d"
  "bench_ablation_lp_norm"
  "bench_ablation_lp_norm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lp_norm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
