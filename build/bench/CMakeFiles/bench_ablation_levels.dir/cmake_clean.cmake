file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_levels.dir/bench_ablation_levels.cc.o"
  "CMakeFiles/bench_ablation_levels.dir/bench_ablation_levels.cc.o.d"
  "bench_ablation_levels"
  "bench_ablation_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
