# Empty compiler generated dependencies file for bench_fig7_max_slowdown.
# This may be replaced when dependencies are built.
