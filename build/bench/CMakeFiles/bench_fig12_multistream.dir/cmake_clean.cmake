file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_multistream.dir/bench_fig12_multistream.cc.o"
  "CMakeFiles/bench_fig12_multistream.dir/bench_fig12_multistream.cc.o.d"
  "bench_fig12_multistream"
  "bench_fig12_multistream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_multistream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
