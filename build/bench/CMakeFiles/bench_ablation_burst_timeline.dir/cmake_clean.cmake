file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_burst_timeline.dir/bench_ablation_burst_timeline.cc.o"
  "CMakeFiles/bench_ablation_burst_timeline.dir/bench_ablation_burst_timeline.cc.o.d"
  "bench_ablation_burst_timeline"
  "bench_ablation_burst_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_burst_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
