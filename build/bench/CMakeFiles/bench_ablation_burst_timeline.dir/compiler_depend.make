# Empty compiler generated dependencies file for bench_ablation_burst_timeline.
# This may be replaced when dependencies are built.
