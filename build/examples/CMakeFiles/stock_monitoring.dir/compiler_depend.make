# Empty compiler generated dependencies file for stock_monitoring.
# This may be replaced when dependencies are built.
