# Empty compiler generated dependencies file for network_monitoring.
# This may be replaced when dependencies are built.
