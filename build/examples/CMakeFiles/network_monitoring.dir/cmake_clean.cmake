file(REMOVE_RECURSE
  "CMakeFiles/network_monitoring.dir/network_monitoring.cpp.o"
  "CMakeFiles/network_monitoring.dir/network_monitoring.cpp.o.d"
  "network_monitoring"
  "network_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
