file(REMOVE_RECURSE
  "CMakeFiles/adaptive_dashboard.dir/adaptive_dashboard.cpp.o"
  "CMakeFiles/adaptive_dashboard.dir/adaptive_dashboard.cpp.o.d"
  "adaptive_dashboard"
  "adaptive_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
