# Empty dependencies file for adaptive_dashboard.
# This may be replaced when dependencies are built.
