file(REMOVE_RECURSE
  "CMakeFiles/shared_plans.dir/shared_plans.cpp.o"
  "CMakeFiles/shared_plans.dir/shared_plans.cpp.o.d"
  "shared_plans"
  "shared_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
