# Empty compiler generated dependencies file for shared_plans.
# This may be replaced when dependencies are built.
