file(REMOVE_RECURSE
  "CMakeFiles/core_dsms_test.dir/core_dsms_test.cc.o"
  "CMakeFiles/core_dsms_test.dir/core_dsms_test.cc.o.d"
  "core_dsms_test"
  "core_dsms_test.pdb"
  "core_dsms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dsms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
