# Empty dependencies file for core_dsms_test.
# This may be replaced when dependencies are built.
