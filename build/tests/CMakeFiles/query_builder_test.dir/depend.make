# Empty dependencies file for query_builder_test.
# This may be replaced when dependencies are built.
