# Empty compiler generated dependencies file for query_builder_test.
# This may be replaced when dependencies are built.
