file(REMOVE_RECURSE
  "CMakeFiles/query_builder_test.dir/query_builder_test.cc.o"
  "CMakeFiles/query_builder_test.dir/query_builder_test.cc.o.d"
  "query_builder_test"
  "query_builder_test.pdb"
  "query_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
