# Empty dependencies file for exec_invariants_test.
# This may be replaced when dependencies are built.
