file(REMOVE_RECURSE
  "CMakeFiles/exec_invariants_test.dir/exec_invariants_test.cc.o"
  "CMakeFiles/exec_invariants_test.dir/exec_invariants_test.cc.o.d"
  "exec_invariants_test"
  "exec_invariants_test.pdb"
  "exec_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
