# Empty dependencies file for common_flags_test.
# This may be replaced when dependencies are built.
