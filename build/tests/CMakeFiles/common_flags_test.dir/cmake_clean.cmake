file(REMOVE_RECURSE
  "CMakeFiles/common_flags_test.dir/common_flags_test.cc.o"
  "CMakeFiles/common_flags_test.dir/common_flags_test.cc.o.d"
  "common_flags_test"
  "common_flags_test.pdb"
  "common_flags_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_flags_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
