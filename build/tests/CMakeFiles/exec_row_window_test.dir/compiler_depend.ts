# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exec_row_window_test.
