file(REMOVE_RECURSE
  "CMakeFiles/exec_row_window_test.dir/exec_row_window_test.cc.o"
  "CMakeFiles/exec_row_window_test.dir/exec_row_window_test.cc.o.d"
  "exec_row_window_test"
  "exec_row_window_test.pdb"
  "exec_row_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_row_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
