# Empty dependencies file for exec_row_window_test.
# This may be replaced when dependencies are built.
