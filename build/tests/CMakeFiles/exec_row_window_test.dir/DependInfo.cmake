
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/exec_row_window_test.cc" "tests/CMakeFiles/exec_row_window_test.dir/exec_row_window_test.cc.o" "gcc" "tests/CMakeFiles/exec_row_window_test.dir/exec_row_window_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aqsios_core.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/aqsios_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/aqsios_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/aqsios_query.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/aqsios_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/aqsios_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aqsios_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
