file(REMOVE_RECURSE
  "CMakeFiles/stream_arrival_test.dir/stream_arrival_test.cc.o"
  "CMakeFiles/stream_arrival_test.dir/stream_arrival_test.cc.o.d"
  "stream_arrival_test"
  "stream_arrival_test.pdb"
  "stream_arrival_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_arrival_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
