# Empty dependencies file for stream_arrival_test.
# This may be replaced when dependencies are built.
