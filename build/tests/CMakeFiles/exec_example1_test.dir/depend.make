# Empty dependencies file for exec_example1_test.
# This may be replaced when dependencies are built.
