file(REMOVE_RECURSE
  "CMakeFiles/exec_example1_test.dir/exec_example1_test.cc.o"
  "CMakeFiles/exec_example1_test.dir/exec_example1_test.cc.o.d"
  "exec_example1_test"
  "exec_example1_test.pdb"
  "exec_example1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_example1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
