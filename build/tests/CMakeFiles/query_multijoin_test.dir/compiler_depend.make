# Empty compiler generated dependencies file for query_multijoin_test.
# This may be replaced when dependencies are built.
