file(REMOVE_RECURSE
  "CMakeFiles/query_multijoin_test.dir/query_multijoin_test.cc.o"
  "CMakeFiles/query_multijoin_test.dir/query_multijoin_test.cc.o.d"
  "query_multijoin_test"
  "query_multijoin_test.pdb"
  "query_multijoin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_multijoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
