# Empty dependencies file for query_stats_test.
# This may be replaced when dependencies are built.
