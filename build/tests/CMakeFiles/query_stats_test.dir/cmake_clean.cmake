file(REMOVE_RECURSE
  "CMakeFiles/query_stats_test.dir/query_stats_test.cc.o"
  "CMakeFiles/query_stats_test.dir/query_stats_test.cc.o.d"
  "query_stats_test"
  "query_stats_test.pdb"
  "query_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
