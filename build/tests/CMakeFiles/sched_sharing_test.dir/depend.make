# Empty dependencies file for sched_sharing_test.
# This may be replaced when dependencies are built.
