file(REMOVE_RECURSE
  "CMakeFiles/sched_sharing_test.dir/sched_sharing_test.cc.o"
  "CMakeFiles/sched_sharing_test.dir/sched_sharing_test.cc.o.d"
  "sched_sharing_test"
  "sched_sharing_test.pdb"
  "sched_sharing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_sharing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
