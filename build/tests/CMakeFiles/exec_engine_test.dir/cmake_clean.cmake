file(REMOVE_RECURSE
  "CMakeFiles/exec_engine_test.dir/exec_engine_test.cc.o"
  "CMakeFiles/exec_engine_test.dir/exec_engine_test.cc.o.d"
  "exec_engine_test"
  "exec_engine_test.pdb"
  "exec_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
