file(REMOVE_RECURSE
  "CMakeFiles/sched_qos_graph_test.dir/sched_qos_graph_test.cc.o"
  "CMakeFiles/sched_qos_graph_test.dir/sched_qos_graph_test.cc.o.d"
  "sched_qos_graph_test"
  "sched_qos_graph_test.pdb"
  "sched_qos_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_qos_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
