# Empty dependencies file for sched_qos_graph_test.
# This may be replaced when dependencies are built.
