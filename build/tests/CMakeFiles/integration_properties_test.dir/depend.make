# Empty dependencies file for integration_properties_test.
# This may be replaced when dependencies are built.
