file(REMOVE_RECURSE
  "CMakeFiles/integration_properties_test.dir/integration_properties_test.cc.o"
  "CMakeFiles/integration_properties_test.dir/integration_properties_test.cc.o.d"
  "integration_properties_test"
  "integration_properties_test.pdb"
  "integration_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
