# Empty compiler generated dependencies file for metrics_qos_test.
# This may be replaced when dependencies are built.
