file(REMOVE_RECURSE
  "CMakeFiles/metrics_qos_test.dir/metrics_qos_test.cc.o"
  "CMakeFiles/metrics_qos_test.dir/metrics_qos_test.cc.o.d"
  "metrics_qos_test"
  "metrics_qos_test.pdb"
  "metrics_qos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_qos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
