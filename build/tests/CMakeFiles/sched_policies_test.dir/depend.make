# Empty dependencies file for sched_policies_test.
# This may be replaced when dependencies are built.
