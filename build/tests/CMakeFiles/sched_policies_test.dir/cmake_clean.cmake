file(REMOVE_RECURSE
  "CMakeFiles/sched_policies_test.dir/sched_policies_test.cc.o"
  "CMakeFiles/sched_policies_test.dir/sched_policies_test.cc.o.d"
  "sched_policies_test"
  "sched_policies_test.pdb"
  "sched_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
