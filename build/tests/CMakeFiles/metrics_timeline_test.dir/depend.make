# Empty dependencies file for metrics_timeline_test.
# This may be replaced when dependencies are built.
