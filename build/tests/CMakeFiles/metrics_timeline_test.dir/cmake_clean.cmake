file(REMOVE_RECURSE
  "CMakeFiles/metrics_timeline_test.dir/metrics_timeline_test.cc.o"
  "CMakeFiles/metrics_timeline_test.dir/metrics_timeline_test.cc.o.d"
  "metrics_timeline_test"
  "metrics_timeline_test.pdb"
  "metrics_timeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_timeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
