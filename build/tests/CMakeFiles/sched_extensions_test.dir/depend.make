# Empty dependencies file for sched_extensions_test.
# This may be replaced when dependencies are built.
