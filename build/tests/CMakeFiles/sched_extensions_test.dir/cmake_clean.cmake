file(REMOVE_RECURSE
  "CMakeFiles/sched_extensions_test.dir/sched_extensions_test.cc.o"
  "CMakeFiles/sched_extensions_test.dir/sched_extensions_test.cc.o.d"
  "sched_extensions_test"
  "sched_extensions_test.pdb"
  "sched_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
