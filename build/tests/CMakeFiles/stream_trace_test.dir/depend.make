# Empty dependencies file for stream_trace_test.
# This may be replaced when dependencies are built.
