file(REMOVE_RECURSE
  "CMakeFiles/stream_trace_test.dir/stream_trace_test.cc.o"
  "CMakeFiles/stream_trace_test.dir/stream_trace_test.cc.o.d"
  "stream_trace_test"
  "stream_trace_test.pdb"
  "stream_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
