file(REMOVE_RECURSE
  "CMakeFiles/integration_extensions_test.dir/integration_extensions_test.cc.o"
  "CMakeFiles/integration_extensions_test.dir/integration_extensions_test.cc.o.d"
  "integration_extensions_test"
  "integration_extensions_test.pdb"
  "integration_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
