# Empty dependencies file for integration_extensions_test.
# This may be replaced when dependencies are built.
