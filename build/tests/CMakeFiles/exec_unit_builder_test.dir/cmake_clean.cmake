file(REMOVE_RECURSE
  "CMakeFiles/exec_unit_builder_test.dir/exec_unit_builder_test.cc.o"
  "CMakeFiles/exec_unit_builder_test.dir/exec_unit_builder_test.cc.o.d"
  "exec_unit_builder_test"
  "exec_unit_builder_test.pdb"
  "exec_unit_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_unit_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
