# Empty dependencies file for exec_unit_builder_test.
# This may be replaced when dependencies are built.
