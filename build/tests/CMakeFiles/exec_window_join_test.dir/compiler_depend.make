# Empty compiler generated dependencies file for exec_window_join_test.
# This may be replaced when dependencies are built.
