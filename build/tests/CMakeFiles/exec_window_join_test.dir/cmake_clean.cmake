file(REMOVE_RECURSE
  "CMakeFiles/exec_window_join_test.dir/exec_window_join_test.cc.o"
  "CMakeFiles/exec_window_join_test.dir/exec_window_join_test.cc.o.d"
  "exec_window_join_test"
  "exec_window_join_test.pdb"
  "exec_window_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_window_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
