file(REMOVE_RECURSE
  "CMakeFiles/sched_clustering_test.dir/sched_clustering_test.cc.o"
  "CMakeFiles/sched_clustering_test.dir/sched_clustering_test.cc.o.d"
  "sched_clustering_test"
  "sched_clustering_test.pdb"
  "sched_clustering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_clustering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
