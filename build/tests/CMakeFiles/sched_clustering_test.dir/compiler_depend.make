# Empty compiler generated dependencies file for sched_clustering_test.
# This may be replaced when dependencies are built.
