file(REMOVE_RECURSE
  "CMakeFiles/exec_adaptive_test.dir/exec_adaptive_test.cc.o"
  "CMakeFiles/exec_adaptive_test.dir/exec_adaptive_test.cc.o.d"
  "exec_adaptive_test"
  "exec_adaptive_test.pdb"
  "exec_adaptive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_adaptive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
