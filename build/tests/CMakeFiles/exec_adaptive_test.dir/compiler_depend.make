# Empty compiler generated dependencies file for exec_adaptive_test.
# This may be replaced when dependencies are built.
