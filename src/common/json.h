// Minimal JSON writer shared by reports, the observability exports, and the
// bench drivers (values are numbers, strings, arrays, objects, and booleans;
// strings are escaped per RFC 8259).

#ifndef AQSIOS_COMMON_JSON_H_
#define AQSIOS_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace aqsios {

/// Minimal JSON writer with explicit structure calls:
///
///   JsonWriter json;
///   json.BeginObject();
///   json.Key("policy"); json.String("BSD");
///   json.Key("avg_slowdown"); json.Number(2.9);
///   json.EndObject();
///   json.str(); // {"policy":"BSD","avg_slowdown":2.9}
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  /// Emits an object key; must be inside an object.
  void Key(const std::string& name);
  void String(const std::string& value);
  void Number(double value);
  void Number(int64_t value);
  void Bool(bool value);

  const std::string& str() const { return out_; }

  /// Escapes a string per JSON rules (quotes, backslash, control chars).
  static std::string Escape(const std::string& text);

 private:
  /// Emits a separating comma when a value follows a previous sibling.
  void BeforeValue();

  std::string out_;
  /// Per nesting level: whether a value was already emitted.
  std::vector<bool> has_sibling_ = {false};
  bool pending_key_ = false;
};

}  // namespace aqsios

#endif  // AQSIOS_COMMON_JSON_H_
