#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace aqsios {

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  AQSIOS_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  AQSIOS_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void Table::AddRow(const std::string& label, const std::vector<double>& values,
                   int precision) {
  AQSIOS_CHECK_EQ(values.size() + 1, header_.size());
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, precision));
  AddRow(std::move(row));
}

std::string Table::ToAscii() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::ToCsv() const {
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace aqsios
