#include "common/flags.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/check.h"

namespace aqsios {
namespace {

bool ParseBoolText(const std::string& text, bool* out) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

FlagSet::FlagSet(std::string program_name)
    : program_name_(std::move(program_name)) {}

void FlagSet::AddInt(const std::string& name, int64_t* target,
                     const std::string& help) {
  AQSIOS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back(Flag{name, Kind::kInt64, target, help});
}

void FlagSet::AddInt(const std::string& name, int* target,
                     const std::string& help) {
  AQSIOS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back(Flag{name, Kind::kInt, target, help});
}

void FlagSet::AddDouble(const std::string& name, double* target,
                        const std::string& help) {
  AQSIOS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back(Flag{name, Kind::kDouble, target, help});
}

void FlagSet::AddBool(const std::string& name, bool* target,
                      const std::string& help) {
  AQSIOS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back(Flag{name, Kind::kBool, target, help});
}

void FlagSet::AddString(const std::string& name, std::string* target,
                        const std::string& help) {
  AQSIOS_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back(Flag{name, Kind::kString, target, help});
}

const FlagSet::Flag* FlagSet::Find(const std::string& name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

Status FlagSet::SetValue(const Flag& flag, const std::string& text) {
  std::istringstream in(text);
  switch (flag.kind) {
    case Kind::kInt64: {
      int64_t value = 0;
      if (!(in >> value)) {
        return Status::InvalidArgument("bad integer for --" + flag.name +
                                       ": " + text);
      }
      *static_cast<int64_t*>(flag.target) = value;
      return Status::Ok();
    }
    case Kind::kInt: {
      int value = 0;
      if (!(in >> value)) {
        return Status::InvalidArgument("bad integer for --" + flag.name +
                                       ": " + text);
      }
      *static_cast<int*>(flag.target) = value;
      return Status::Ok();
    }
    case Kind::kDouble: {
      double value = 0;
      if (!(in >> value)) {
        return Status::InvalidArgument("bad number for --" + flag.name + ": " +
                                       text);
      }
      *static_cast<double*>(flag.target) = value;
      return Status::Ok();
    }
    case Kind::kBool: {
      bool value = false;
      if (!ParseBoolText(text, &value)) {
        return Status::InvalidArgument("bad boolean for --" + flag.name +
                                       ": " + text);
      }
      *static_cast<bool*>(flag.target) = value;
      return Status::Ok();
    }
    case Kind::kString: {
      *static_cast<std::string*>(flag.target) = text;
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable flag kind");
}

Status FlagSet::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    if (arg == "help") {
      help_requested_ = true;
      std::cout << Usage();
      return Status::FailedPrecondition("--help requested");
    }
    std::string name = arg;
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    const Flag* flag = Find(name);
    // Support --noflag for booleans.
    if (flag == nullptr && name.rfind("no", 0) == 0) {
      const Flag* negated = Find(name.substr(2));
      if (negated != nullptr && negated->kind == Kind::kBool && !has_value) {
        *static_cast<bool*>(negated->target) = false;
        continue;
      }
    }
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    if (!has_value) {
      if (flag->kind == Kind::kBool) {
        *static_cast<bool*>(flag->target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for --" + name);
      }
      value = argv[++i];
    }
    AQSIOS_RETURN_IF_ERROR(SetValue(*flag, value));
  }
  return Status::Ok();
}

std::string FlagSet::Usage() const {
  std::ostringstream os;
  os << "usage: " << program_name_ << " [flags]\n";
  for (const Flag& flag : flags_) {
    os << "  --" << flag.name;
    switch (flag.kind) {
      case Kind::kInt64:
        os << "=" << *static_cast<const int64_t*>(flag.target);
        break;
      case Kind::kInt:
        os << "=" << *static_cast<const int*>(flag.target);
        break;
      case Kind::kDouble:
        os << "=" << *static_cast<const double*>(flag.target);
        break;
      case Kind::kBool:
        os << "=" << (*static_cast<const bool*>(flag.target) ? "true"
                                                             : "false");
        break;
      case Kind::kString:
        os << "=\"" << *static_cast<const std::string*>(flag.target) << "\"";
        break;
    }
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace aqsios
