// Lock-free single-producer/single-consumer ring buffer.
//
// The sharded runtime routes per-stream arrivals from the routing thread
// into each shard's collector through one of these rings, so the arrival
// hot path stays lock-free and allocation-free: the slot storage is
// preallocated up front, TryPush/TryPop are one relaxed load, one
// acquire/release pair and a memcpy-sized store each, and neither side ever
// blocks in the kernel (callers spin/yield on full/empty).
//
// Correctness: `tail_` is written only by the producer, `head_` only by the
// consumer. The producer's release-store of `tail_` after writing the slot
// publishes the element; the consumer's acquire-load of `tail_` before
// reading the slot synchronizes with it (and symmetrically for `head_` so
// the producer never overwrites an unread slot). Close() is a release-store
// the consumer uses to distinguish "empty for now" from "drained".

#ifndef AQSIOS_COMMON_SPSC_RING_H_
#define AQSIOS_COMMON_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace aqsios {

template <typename T>
class SpscRing {
 public:
  /// `capacity` slots are preallocated; must be a power of two >= 2.
  explicit SpscRing(size_t capacity) : buffer_(capacity), mask_(capacity - 1) {
    AQSIOS_CHECK_GE(capacity, 2u);
    AQSIOS_CHECK_EQ(capacity & (capacity - 1), 0u)
        << "SpscRing capacity must be a power of two";
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return buffer_.size(); }

  /// Producer side. Returns false when the ring is full (caller retries).
  bool TryPush(const T& value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == buffer_.size()) {
      return false;
    }
    buffer_[static_cast<size_t>(tail) & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    *out = buffer_[static_cast<size_t>(head) & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Producer side: marks the stream complete. The consumer drains with
  /// TryPop until it fails *after* observing closed().
  void Close() { closed_.store(true, std::memory_order_release); }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Entries currently in flight (approximate under concurrency; exact when
  /// one side is quiescent).
  size_t size() const {
    return static_cast<size_t>(tail_.load(std::memory_order_acquire) -
                               head_.load(std::memory_order_acquire));
  }

 private:
  std::vector<T> buffer_;
  size_t mask_;
  /// Producer and consumer indexes on separate cache lines so the two sides
  /// do not false-share.
  alignas(64) std::atomic<uint64_t> tail_{0};  // next slot to write
  alignas(64) std::atomic<uint64_t> head_{0};  // next slot to read
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace aqsios

#endif  // AQSIOS_COMMON_SPSC_RING_H_
