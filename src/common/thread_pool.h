// A fixed-size thread pool with a single FIFO task queue (no work stealing —
// tasks here are coarse simulation cells, so a shared queue is contention-free
// in practice and keeps dispatch order deterministic).
//
//   ThreadPool pool(4);
//   std::future<void> done = pool.Submit([] { HeavyWork(); });
//   done.get();  // rethrows any exception HeavyWork threw
//
// Guarantees:
//  * tasks start in submission order (completion order depends on runtimes);
//  * exceptions escaping a task are captured in its future and rethrown by
//    future::get();
//  * the destructor drains all already-submitted tasks, then joins — no task
//    is dropped on shutdown.

#ifndef AQSIOS_COMMON_THREAD_POOL_H_
#define AQSIOS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace aqsios {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (must be >= 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains pending tasks and joins all workers.
  ~ThreadPool();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task`; the returned future becomes ready when it finishes and
  /// rethrows anything it threw. Must not be called during destruction.
  std::future<void> Submit(std::function<void()> task);

  /// A sensible default worker count for CPU-bound work: the hardware
  /// concurrency, or 1 when it is unknown.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::packaged_task<void()>> tasks_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace aqsios

#endif  // AQSIOS_COMMON_THREAD_POOL_H_
