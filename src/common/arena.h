// Arena (bump) allocator and a typed free-list object pool on top of it.
//
// The simulator's per-tuple hot paths — window-join tables in particular —
// used node-based standard containers whose steady-state behaviour is one
// heap round-trip per tuple. The arena replaces that with pointer-bump
// allocation out of geometrically growing chunks: allocation is a cursor
// add, deallocation is free (dropped wholesale when the arena dies), and
// consecutively allocated objects are contiguous, which is what makes
// batched tuple trains cache-friendly (cf. the chunked storage layout of
// column stores such as Hyrise).
//
// ObjectPool<T> adds O(1) reuse for fixed-size objects with FIFO churn
// (join-state bucket nodes): released slots go on an intrusive free list
// threaded through the dead objects themselves, so a steady-state
// insert/evict cycle touches no allocator at all.

#ifndef AQSIOS_COMMON_ARENA_H_
#define AQSIOS_COMMON_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace aqsios {

class Arena {
 public:
  /// `min_chunk_bytes` sizes the first chunk; later chunks double up to
  /// kMaxChunkBytes. No memory is reserved until the first Allocate.
  explicit Arena(size_t min_chunk_bytes = 4096);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  /// Chunks are heap blocks owned via unique_ptr, so objects allocated from
  /// the arena stay at their addresses when the arena itself is moved.
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Returns `bytes` of storage aligned to `alignment` (a power of two).
  void* Allocate(size_t bytes, size_t alignment);

  /// Cache-line / SIMD-friendly default alignment for column storage.
  static constexpr size_t kColumnAlignment = 64;

  /// Allocation entry point for column storage: identical to Allocate, but
  /// the alignment contract is CHECKed in release builds too. Columnar
  /// callers compute large alignments (cache lines, vector widths) from
  /// configuration rather than from a type, so a bad value must fail loudly
  /// instead of silently mis-aligning every kernel load.
  void* AllocateAligned(size_t bytes, size_t alignment);

  /// Typed column allocation: a `count`-element array of trivially
  /// destructible T aligned to `alignment` (default: one cache line, so
  /// adjacent columns never share a line and vector loads are aligned).
  /// Storage is raw — no constructors run.
  template <typename T>
  T* AllocateSpan(size_t count, size_t alignment = kColumnAlignment) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without running destructors");
    return static_cast<T*>(
        AllocateAligned(count * sizeof(T), std::max(alignment, alignof(T))));
  }

  /// Drops every chunk and returns the arena to its freshly constructed
  /// state. Invalidates all outstanding allocations.
  void Reset();

  /// Total bytes handed out (including alignment padding).
  size_t bytes_used() const { return bytes_used_; }
  /// Total bytes of chunk capacity reserved from the heap.
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t num_chunks() const { return chunks_.size(); }

 private:
  static constexpr size_t kMaxChunkBytes = size_t{1} << 20;  // 1 MiB

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t capacity = 0;
  };

  /// Starts a new chunk with room for at least `min_bytes`.
  void AddChunk(size_t min_bytes);

  std::vector<Chunk> chunks_;
  std::byte* cursor_ = nullptr;
  std::byte* limit_ = nullptr;
  size_t next_chunk_bytes_;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
};

/// Arena-backed pool of fixed-size objects with an intrusive free list.
/// T must be trivially destructible: the pool never runs destructors, its
/// storage is reclaimed wholesale by the owning arena.
template <typename T>
class ObjectPool {
  static_assert(std::is_trivially_destructible_v<T>,
                "ObjectPool storage is reclaimed without running "
                "destructors");

 public:
  explicit ObjectPool(size_t min_chunk_bytes = 4096)
      : arena_(min_chunk_bytes) {}

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;
  ObjectPool(ObjectPool&&) noexcept = default;
  ObjectPool& operator=(ObjectPool&&) noexcept = default;

  /// Constructs a T in a recycled slot when one is free, otherwise in fresh
  /// arena storage.
  template <typename... Args>
  T* New(Args&&... args) {
    void* slot;
    if (free_ != nullptr) {
      slot = free_;
      free_ = free_->next;
      --free_count_;
    } else {
      slot = arena_.Allocate(sizeof(T),
                             std::max(alignof(T), alignof(FreeNode)));
    }
    ++live_;
    return new (slot) T(std::forward<Args>(args)...);
  }

  /// Returns `object`'s slot to the free list for reuse by a later New.
  void Release(T* object) {
    auto* node = reinterpret_cast<FreeNode*>(object);
    node->next = free_;
    free_ = node;
    --live_;
    ++free_count_;
  }

  /// Drops every object and every chunk (outstanding pointers invalidated).
  void Clear() {
    arena_.Reset();
    free_ = nullptr;
    live_ = 0;
    free_count_ = 0;
  }

  int64_t live() const { return live_; }
  int64_t free_count() const { return free_count_; }
  const Arena& arena() const { return arena_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static_assert(sizeof(T) >= sizeof(FreeNode),
                "pooled objects must be able to hold a free-list link");

  Arena arena_;
  FreeNode* free_ = nullptr;
  int64_t live_ = 0;
  int64_t free_count_ = 0;
};

}  // namespace aqsios

#endif  // AQSIOS_COMMON_ARENA_H_
