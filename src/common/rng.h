// Deterministic random number generation.
//
// All stochastic components of the simulator draw from an explicitly seeded
// Rng so every experiment is reproducible bit-for-bit. Hash-based "frozen
// randomness" (FrozenUniform) is used where an outcome must be a pure
// function of identifiers — e.g. whether tuple i passes operator j of query k
// must not depend on the order in which scheduling policies process tuples.

#ifndef AQSIOS_COMMON_RNG_H_
#define AQSIOS_COMMON_RNG_H_

#include <cstdint>
#include <random>

#include "common/check.h"

namespace aqsios {

/// Seedable pseudo-random generator with the distributions the simulator
/// needs. Not thread-safe; each component owns its own instance.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    AQSIOS_DCHECK_LE(lo, hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    AQSIOS_DCHECK_LE(lo, hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Exponential variate with the given rate (mean 1/rate).
  double Exponential(double rate) {
    AQSIOS_DCHECK_GT(rate, 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    AQSIOS_DCHECK_GE(p, 0.0);
    AQSIOS_DCHECK_LE(p, 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Raw 64-bit draw.
  uint64_t NextUint64() { return engine_(); }

  /// Derives an independent child seed; used to split one experiment seed
  /// into per-component seeds.
  uint64_t Fork() { return engine_(); }

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 finalizer; good avalanche for hash-based frozen randomness.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines identifiers into one hash key.
constexpr uint64_t MixKeys(uint64_t a, uint64_t b) {
  return Mix64(a ^ Mix64(b + 0x517cc1b727220a95ULL));
}

constexpr uint64_t MixKeys(uint64_t a, uint64_t b, uint64_t c) {
  return MixKeys(MixKeys(a, b), c);
}

constexpr uint64_t MixKeys(uint64_t a, uint64_t b, uint64_t c, uint64_t d) {
  return MixKeys(MixKeys(a, b, c), d);
}

/// Deterministic uniform in [0, 1) as a pure function of the key. Two calls
/// with the same key always return the same value, regardless of call order.
inline double FrozenUniform(uint64_t key) {
  // 53 mantissa bits of the mixed key.
  return static_cast<double>(Mix64(key) >> 11) * 0x1.0p-53;
}

/// Deterministic Bernoulli(p) as a pure function of the key.
inline bool FrozenBernoulli(uint64_t key, double p) {
  return FrozenUniform(key) < p;
}

}  // namespace aqsios

#endif  // AQSIOS_COMMON_RNG_H_
