#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace aqsios {

void RunningStats::Add(double value) {
  ++count_;
  sum_ += value;
  sum_squares_ += value * value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  count_ += other.count_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::L2Norm() const { return std::sqrt(sum_squares_); }

double RunningStats::Rms() const {
  return count_ == 0 ? 0.0 : std::sqrt(sum_squares_ / count_);
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  const double mean = Mean();
  return sum_squares_ / count_ - mean * mean;
}

LpNorm::LpNorm(double p) : p_(p) { AQSIOS_CHECK_GE(p, 1.0); }

void LpNorm::Add(double value) {
  ++count_;
  sum_pow_ += std::pow(std::abs(value), p_);
}

double LpNorm::Value() const {
  return count_ == 0 ? 0.0 : std::pow(sum_pow_, 1.0 / p_);
}

ReservoirSample::ReservoirSample(size_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  AQSIOS_CHECK_GT(capacity, 0u);
  samples_.reserve(capacity);
}

void ReservoirSample::Add(double value) {
  ++count_;
  if (samples_.size() < capacity_) {
    samples_.push_back(value);
    return;
  }
  // Vitter's algorithm R: keep each of the first n items with prob k/n.
  const int64_t slot = rng_.UniformInt(0, count_ - 1);
  if (slot < static_cast<int64_t>(capacity_)) {
    samples_[static_cast<size_t>(slot)] = value;
  }
}

double ReservoirSample::Quantile(double q) const {
  AQSIOS_CHECK_GE(q, 0.0);
  AQSIOS_CHECK_LE(q, 1.0);
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

LogHistogram::LogHistogram(double min_value, double base, int num_buckets)
    : min_value_(min_value), log_base_(std::log(base)) {
  AQSIOS_CHECK_GT(min_value, 0.0);
  AQSIOS_CHECK_GT(base, 1.0);
  AQSIOS_CHECK_GT(num_buckets, 0);
  // One extra slot for overflow.
  counts_.assign(static_cast<size_t>(num_buckets) + 1, 0);
}

int LogHistogram::BucketIndex(double value) const {
  if (value <= min_value_) return 0;
  const int index =
      static_cast<int>(std::floor(std::log(value / min_value_) / log_base_));
  return std::min(index, num_buckets() - 1);
}

void LogHistogram::Add(double value) {
  ++counts_[static_cast<size_t>(BucketIndex(value))];
  ++total_;
}

double LogHistogram::BucketLowerEdge(int i) const {
  return min_value_ * std::exp(log_base_ * i);
}

std::string LogHistogram::ToString() const {
  std::ostringstream os;
  for (int i = 0; i < num_buckets(); ++i) {
    if (counts_[static_cast<size_t>(i)] == 0) continue;
    os << "[" << BucketLowerEdge(i) << ", " << BucketLowerEdge(i + 1)
       << "): " << counts_[static_cast<size_t>(i)] << "\n";
  }
  return os.str();
}

}  // namespace aqsios
