// Virtual-time conventions used throughout the simulator.
//
// Simulated time is a double measured in seconds. The paper specifies
// operator costs in milliseconds; conversions live here so the unit boundary
// is explicit at every call site.

#ifndef AQSIOS_COMMON_SIM_TIME_H_
#define AQSIOS_COMMON_SIM_TIME_H_

namespace aqsios {

/// Simulated time (or duration) in seconds.
using SimTime = double;

/// Converts milliseconds (paper's cost unit) into SimTime seconds.
constexpr SimTime MillisToSimTime(double millis) { return millis * 1e-3; }

/// Converts SimTime seconds into milliseconds for reporting.
constexpr double SimTimeToMillis(SimTime t) { return t * 1e3; }

/// Converts microseconds into SimTime seconds.
constexpr SimTime MicrosToSimTime(double micros) { return micros * 1e-6; }

}  // namespace aqsios

#endif  // AQSIOS_COMMON_SIM_TIME_H_
