// Minimal Status / StatusOr implementation for recoverable errors.
//
// Programmer errors are handled with AQSIOS_CHECK (common/check.h); Status is
// reserved for conditions a caller can reasonably recover from, such as
// missing trace files or malformed configuration.

#ifndef AQSIOS_COMMON_STATUS_H_
#define AQSIOS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace aqsios {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
};

/// Returns a human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail without it being a programming error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

/// Holds either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  // Implicit construction from both arms keeps call sites readable
  // (`return Status::NotFound(...)` / `return value`), mirroring absl.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : payload_(std::move(status)) {
    AQSIOS_CHECK(!std::get<Status>(payload_).ok())
        << "StatusOr constructed from OK status without a value";
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : payload_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    AQSIOS_CHECK(ok()) << "value() on error StatusOr: " << status();
    return std::get<T>(payload_);
  }
  T& value() & {
    AQSIOS_CHECK(ok()) << "value() on error StatusOr: " << status();
    return std::get<T>(payload_);
  }
  T&& value() && {
    AQSIOS_CHECK(ok()) << "value() on error StatusOr: " << status();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> payload_;
};

}  // namespace aqsios

/// Propagates a non-OK status to the caller.
#define AQSIOS_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::aqsios::Status status_macro_tmp = (expr); \
    if (!status_macro_tmp.ok()) {               \
      return status_macro_tmp;                  \
    }                                           \
  } while (false)

#endif  // AQSIOS_COMMON_STATUS_H_
