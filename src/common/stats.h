// Streaming statistics accumulators used by the QoS metric collectors.

#ifndef AQSIOS_COMMON_STATS_H_
#define AQSIOS_COMMON_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"

namespace aqsios {

/// Single-pass accumulator for count / mean / min / max / l2 norm.
///
/// The l2 norm follows the paper's Definition 4: sqrt(sum of squares), i.e.
/// it grows with N; it is not normalized by the count.
class RunningStats {
 public:
  RunningStats() = default;

  void Add(double value);

  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double sum_squares() const { return sum_squares_; }

  /// Arithmetic mean; 0 when empty.
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  /// Max observed value; 0 when empty.
  double Max() const { return count_ == 0 ? 0.0 : max_; }

  /// Min observed value; 0 when empty.
  double Min() const { return count_ == 0 ? 0.0 : min_; }

  /// l2 norm, sqrt(sum x_i^2) (Definition 4 of the paper).
  double L2Norm() const;

  /// Root mean square, L2Norm()/sqrt(N); useful for size-independent
  /// comparisons across runs with different tuple counts.
  double Rms() const;

  /// Population variance; 0 when fewer than 2 samples.
  double Variance() const;

 private:
  int64_t count_ = 0;
  double sum_ = 0.0;
  double sum_squares_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Accumulates the generalized lp norm (sum |x|^p)^(1/p). p must be >= 1.
/// p = 1 gives the total, p = 2 the paper's l2 metric; large p approaches the
/// max. Used by the lp-norm ablation benches.
class LpNorm {
 public:
  explicit LpNorm(double p);

  void Add(double value);

  double p() const { return p_; }
  int64_t count() const { return count_; }
  double Value() const;

 private:
  double p_;
  int64_t count_ = 0;
  double sum_pow_ = 0.0;
};

/// Fixed-size uniform reservoir sample for quantile estimates over a stream.
class ReservoirSample {
 public:
  ReservoirSample(size_t capacity, uint64_t seed);

  void Add(double value);

  int64_t count() const { return count_; }
  size_t size() const { return samples_.size(); }

  /// Approximate q-quantile (q in [0,1]) from the reservoir; 0 when empty.
  /// Cost: O(k log k) sort per call.
  double Quantile(double q) const;

 private:
  size_t capacity_;
  int64_t count_ = 0;
  std::vector<double> samples_;
  Rng rng_;
};

/// Histogram over log-spaced buckets: bucket i covers
/// [min_value * base^i, min_value * base^(i+1)). Values below min_value fall
/// into bucket 0; values beyond the last bucket go into the overflow bucket.
class LogHistogram {
 public:
  LogHistogram(double min_value, double base, int num_buckets);

  void Add(double value);

  int num_buckets() const { return static_cast<int>(counts_.size()); }
  int64_t bucket_count(int i) const { return counts_[i]; }
  int64_t total() const { return total_; }

  /// Lower edge of bucket i.
  double BucketLowerEdge(int i) const;

  /// Renders the histogram as an ASCII table, one line per non-empty bucket.
  std::string ToString() const;

 private:
  int BucketIndex(double value) const;

  double min_value_;
  double log_base_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace aqsios

#endif  // AQSIOS_COMMON_STATS_H_
