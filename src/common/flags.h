// Minimal command-line flag parsing for bench and example binaries.
//
// Usage:
//   FlagSet flags("bench_fig5");
//   int queries = 50;
//   flags.AddInt("queries", &queries, "number of registered CQs");
//   AQSIOS_CHECK(flags.Parse(argc, argv).ok());
//
// Accepted syntax: --name=value, --name value, and --flag / --noflag for
// booleans. --help prints the registered flags and exits.

#ifndef AQSIOS_COMMON_FLAGS_H_
#define AQSIOS_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace aqsios {

/// A set of named command-line flags bound to caller-owned variables.
class FlagSet {
 public:
  explicit FlagSet(std::string program_name);

  FlagSet(const FlagSet&) = delete;
  FlagSet& operator=(const FlagSet&) = delete;

  void AddInt(const std::string& name, int64_t* target,
              const std::string& help);
  void AddInt(const std::string& name, int* target, const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);

  /// Parses argv. Unknown flags produce an InvalidArgument status. Positional
  /// arguments are collected into positional(). If --help is present, prints
  /// usage to stdout and returns a kFailedPrecondition status the caller may
  /// treat as "exit 0".
  Status Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders the registered flags with their current (default) values.
  std::string Usage() const;

  /// True when Parse() saw --help.
  bool help_requested() const { return help_requested_; }

 private:
  enum class Kind { kInt64, kInt, kDouble, kBool, kString };

  struct Flag {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
  };

  const Flag* Find(const std::string& name) const;
  Status SetValue(const Flag& flag, const std::string& text);

  std::string program_name_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace aqsios

#endif  // AQSIOS_COMMON_FLAGS_H_
