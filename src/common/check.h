// Lightweight assertion macros for programmer errors.
//
// Following the project convention (no exceptions), violated invariants abort
// the process with a source location and a streamed message:
//
//   AQSIOS_CHECK(n >= 0) << "negative count: " << n;
//   AQSIOS_CHECK_GT(cost, 0.0);
//
// AQSIOS_DCHECK* variants compile to no-ops in NDEBUG builds.

#ifndef AQSIOS_COMMON_CHECK_H_
#define AQSIOS_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace aqsios {
namespace internal_check {

// Accumulates the streamed failure message and aborts on destruction.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "AQSIOS_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Lets the macro's false branch swallow the streamed expression while the
// whole conditional stays of type void. operator& binds looser than <<, so
// `AQSIOS_CHECK(x) << a << b` streams into the failure message.
struct Voidifier {
  void operator&(CheckFailureStream&) {}
  void operator&(CheckFailureStream&&) {}
};

}  // namespace internal_check
}  // namespace aqsios

#define AQSIOS_CHECK(condition)                               \
  (condition) ? static_cast<void>(0)                          \
              : ::aqsios::internal_check::Voidifier() &       \
                    ::aqsios::internal_check::CheckFailureStream( \
                        #condition, __FILE__, __LINE__)

#define AQSIOS_CHECK_OP(op, a, b) AQSIOS_CHECK((a)op(b))
#define AQSIOS_CHECK_EQ(a, b) AQSIOS_CHECK_OP(==, a, b)
#define AQSIOS_CHECK_NE(a, b) AQSIOS_CHECK_OP(!=, a, b)
#define AQSIOS_CHECK_LT(a, b) AQSIOS_CHECK_OP(<, a, b)
#define AQSIOS_CHECK_LE(a, b) AQSIOS_CHECK_OP(<=, a, b)
#define AQSIOS_CHECK_GT(a, b) AQSIOS_CHECK_OP(>, a, b)
#define AQSIOS_CHECK_GE(a, b) AQSIOS_CHECK_OP(>=, a, b)

#ifdef NDEBUG
// Short-circuited so the condition is compiled (names stay checked) but
// never evaluated, and trailing streamed messages are swallowed.
#define AQSIOS_DCHECK(condition) AQSIOS_CHECK(true || (condition))
#define AQSIOS_DCHECK_EQ(a, b) AQSIOS_DCHECK((a) == (b))
#define AQSIOS_DCHECK_GT(a, b) AQSIOS_DCHECK((a) > (b))
#define AQSIOS_DCHECK_GE(a, b) AQSIOS_DCHECK((a) >= (b))
#define AQSIOS_DCHECK_LT(a, b) AQSIOS_DCHECK((a) < (b))
#define AQSIOS_DCHECK_LE(a, b) AQSIOS_DCHECK((a) <= (b))
#else
#define AQSIOS_DCHECK(condition) AQSIOS_CHECK(condition)
#define AQSIOS_DCHECK_EQ(a, b) AQSIOS_CHECK_EQ(a, b)
#define AQSIOS_DCHECK_GT(a, b) AQSIOS_CHECK_GT(a, b)
#define AQSIOS_DCHECK_GE(a, b) AQSIOS_CHECK_GE(a, b)
#define AQSIOS_DCHECK_LT(a, b) AQSIOS_CHECK_LT(a, b)
#define AQSIOS_DCHECK_LE(a, b) AQSIOS_CHECK_LE(a, b)
#endif

#endif  // AQSIOS_COMMON_CHECK_H_
