#include "common/thread_pool.h"

#include "common/check.h"

namespace aqsios {

ThreadPool::ThreadPool(int num_threads) {
  AQSIOS_CHECK_GE(num_threads, 1) << "thread pool needs at least one worker";
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> result = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    AQSIOS_CHECK(!shutting_down_) << "Submit after shutdown began";
    tasks_.push_back(std::move(packaged));
  }
  work_available_.notify_one();
  return result;
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      // Drain remaining tasks even when shutting down; exit only once empty.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

}  // namespace aqsios
