#include "common/json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace aqsios {

std::string JsonWriter::Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // key already emitted the separator
  }
  if (has_sibling_.back()) out_ += ',';
  has_sibling_.back() = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_sibling_.push_back(false);
}

void JsonWriter::EndObject() {
  AQSIOS_CHECK_GT(has_sibling_.size(), 1u) << "unbalanced EndObject";
  has_sibling_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_sibling_.push_back(false);
}

void JsonWriter::EndArray() {
  AQSIOS_CHECK_GT(has_sibling_.size(), 1u) << "unbalanced EndArray";
  has_sibling_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(const std::string& name) {
  if (has_sibling_.back()) out_ += ',';
  has_sibling_.back() = true;
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
}

void JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  out_ += buffer;
}

void JsonWriter::Number(int64_t value) {
  BeforeValue();
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
  out_ += buffer;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

}  // namespace aqsios
