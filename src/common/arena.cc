#include "common/arena.h"

#include "common/check.h"

namespace aqsios {

Arena::Arena(size_t min_chunk_bytes)
    : next_chunk_bytes_(std::max<size_t>(min_chunk_bytes, 64)) {}

void Arena::AddChunk(size_t min_bytes) {
  const size_t capacity = std::max(next_chunk_bytes_, min_bytes);
  chunks_.push_back(Chunk{std::make_unique<std::byte[]>(capacity), capacity});
  cursor_ = chunks_.back().data.get();
  limit_ = cursor_ + capacity;
  bytes_reserved_ += capacity;
  next_chunk_bytes_ = std::min(capacity * 2, kMaxChunkBytes);
}

void* Arena::Allocate(size_t bytes, size_t alignment) {
  AQSIOS_DCHECK_GT(alignment, 0u);
  AQSIOS_DCHECK_EQ(alignment & (alignment - 1), 0u)
      << "alignment must be a power of two";
  auto address = reinterpret_cast<uintptr_t>(cursor_);
  uintptr_t aligned = (address + alignment - 1) & ~(alignment - 1);
  size_t padding = aligned - address;
  if (cursor_ == nullptr ||
      bytes + padding > static_cast<size_t>(limit_ - cursor_)) {
    // A fresh chunk is alignment-padded at most alignment-1 bytes.
    AddChunk(bytes + alignment - 1);
    address = reinterpret_cast<uintptr_t>(cursor_);
    aligned = (address + alignment - 1) & ~(alignment - 1);
    padding = aligned - address;
  }
  cursor_ += padding + bytes;
  bytes_used_ += padding + bytes;
  return reinterpret_cast<void*>(aligned);
}

void* Arena::AllocateAligned(size_t bytes, size_t alignment) {
  AQSIOS_CHECK_GT(alignment, 0u);
  AQSIOS_CHECK_EQ(alignment & (alignment - 1), 0u)
      << "alignment must be a power of two";
  return Allocate(bytes, alignment);
}

void Arena::Reset() {
  chunks_.clear();
  cursor_ = nullptr;
  limit_ = nullptr;
  bytes_used_ = 0;
  bytes_reserved_ = 0;
}

}  // namespace aqsios
