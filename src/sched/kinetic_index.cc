#include "sched/kinetic_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace aqsios::sched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void KineticIndex::Reserve(int max_ids) {
  int capacity = 1;
  while (capacity < max_ids) capacity <<= 1;
  dense_ = capacity <= kDenseMaxCapacity;
  capacity_ = capacity;
  const size_t leaves = static_cast<size_t>(capacity_);
  occupied_.assign(leaves, 0);
  lines_.assign(leaves, Line{});
  dense_ids_.clear();
  dense_pos_.assign(leaves, -1);
  dense_anchor_.clear();
  dense_coef_.clear();
  dense_tie_.clear();
  if (dense_) {
    nodes_.clear();
  } else {
    nodes_.assign(leaves * 2, Node{-1, kInf, kInf});
  }
  size_ = 0;
}

void KineticIndex::Clear() {
  ++clears_;
  std::fill(occupied_.begin(), occupied_.end(), 0);
  std::fill(nodes_.begin(), nodes_.end(), Node{-1, kInf, kInf});
  dense_ids_.clear();
  dense_anchor_.clear();
  dense_coef_.clear();
  dense_tie_.clear();
  std::fill(dense_pos_.begin(), dense_pos_.end(), -1);
  size_ = 0;
}

void KineticIndex::Rebuild(int new_capacity) {
  const size_t leaves = static_cast<size_t>(new_capacity);
  occupied_.resize(leaves, 0);
  lines_.resize(leaves, Line{});
  dense_pos_.resize(leaves, -1);
  capacity_ = new_capacity;
  if (capacity_ <= kDenseMaxCapacity) {
    // Still small: stay dense — the live-id list and lines carry over.
    return;
  }
  // Crossing into tree territory (or already there): build the tournament
  // from the occupancy bitmap. The dense bookkeeping goes dormant.
  dense_ = false;
  dense_ids_.clear();
  dense_anchor_.clear();
  dense_coef_.clear();
  dense_tie_.clear();
  std::fill(dense_pos_.begin(), dense_pos_.end(), -1);
  nodes_.assign(leaves * 2, Node{-1, kInf, kInf});
  for (int slot = 0; slot < capacity_; ++slot) {
    if (occupied_[static_cast<size_t>(slot)]) {
      nodes_[static_cast<size_t>(capacity_ + slot)].winner = slot;
    }
  }
  for (int node = capacity_ - 1; node >= 1; --node) {
    RecomputeNode(node, last_time_);
  }
}

void KineticIndex::Insert(int id, double anchor, double coef,
                          double tie_key) {
  AQSIOS_DCHECK_GE(id, 0);
  AQSIOS_DCHECK_GT(coef, 0.0);
  if (id >= capacity_) {
    int capacity = capacity_ == 0 ? 1 : capacity_;
    while (capacity <= id) capacity <<= 1;
    Rebuild(capacity);
  }
  const size_t slot = static_cast<size_t>(id);
  if (!occupied_[slot]) {
    occupied_[slot] = 1;
    ++size_;
    if (dense_) {
      dense_pos_[slot] = static_cast<int>(dense_ids_.size());
      dense_ids_.push_back(id);
      dense_anchor_.push_back(anchor);
      dense_coef_.push_back(coef);
      dense_tie_.push_back(tie_key);
    } else {
      nodes_[static_cast<size_t>(capacity_ + id)].winner = id;
    }
  } else if (dense_) {
    const size_t pos = static_cast<size_t>(dense_pos_[slot]);
    dense_anchor_[pos] = anchor;
    dense_coef_[pos] = coef;
    dense_tie_[pos] = tie_key;
  }
  Line& line = lines_[slot];
  line.anchor = anchor;
  line.coef = coef;
  line.slope = mode_ == EvalMode::kRatio ? 1.0 / coef : coef;
  line.tie = tie_key;
  if (!dense_) MarkPath(id);
}

void KineticIndex::Erase(int id) {
  if (!Contains(id)) return;
  occupied_[static_cast<size_t>(id)] = 0;
  --size_;
  if (dense_) {
    const size_t pos = static_cast<size_t>(dense_pos_[static_cast<size_t>(id)]);
    const int last = dense_ids_.back();
    dense_ids_[pos] = last;
    dense_anchor_[pos] = dense_anchor_.back();
    dense_coef_[pos] = dense_coef_.back();
    dense_tie_[pos] = dense_tie_.back();
    dense_pos_[static_cast<size_t>(last)] = static_cast<int>(pos);
    dense_ids_.pop_back();
    dense_anchor_.pop_back();
    dense_coef_.pop_back();
    dense_tie_.pop_back();
    dense_pos_[static_cast<size_t>(id)] = -1;
    return;
  }
  nodes_[static_cast<size_t>(capacity_ + id)].winner = -1;
  MarkPath(id);
}

void KineticIndex::MarkPath(int slot) {
  // Flag the leaf and its ancestors as dirty (-inf expiry). Stops as soon as
  // an ancestor is already dirty: by construction dirtiness always extends
  // to the root, so the remaining prefix is already marked. No priority
  // arithmetic happens here — it is all deferred to the next ArgMax, which
  // both deduplicates overlapping paths and evaluates matches at the query
  // time instead of a stale clock.
  size_t node = static_cast<size_t>(capacity_ + slot);
  while (nodes_[node].subtree_exp != -kInf) {
    nodes_[node].subtree_exp = -kInf;
    if (node == 1) break;
    node >>= 1;
  }
}

void KineticIndex::RecomputeNode(int node, double t) {
  ++node_recomputes_;
  const size_t i = static_cast<size_t>(node);
  const size_t l = i << 1;
  const size_t r = l | 1;
  const int wl = nodes_[l].winner;
  const int wr = nodes_[r].winner;
  int winner;
  double match_exp = kInf;
  if (wl < 0 || wr < 0) {
    winner = wl < 0 ? wr : wl;
  } else {
    const double pl = Eval(wl, t);
    const double pr = Eval(wr, t);
    const Line& ll = lines_[static_cast<size_t>(wl)];
    const Line& lr = lines_[static_cast<size_t>(wr)];
    bool left_wins;
    if (pl != pr) {
      left_wins = pl > pr;
    } else if (ll.tie != lr.tie) {
      left_wins = ll.tie < lr.tie;
    } else {
      left_wins = wl < wr;
    }
    winner = left_wins ? wl : wr;
    const Line& lw = left_wins ? ll : lr;
    const Line& lo = left_wins ? lr : ll;
    if (lo.slope > lw.slope) {
      // The losing line is steeper: it overtakes at the algebraic crossover
      // tc. Re-check a relative margin early; never certify past-the-present
      // validity (a certificate at `t` means "re-check on the next query").
      const double tc =
          (lo.slope * lo.anchor - lw.slope * lw.anchor) / (lo.slope - lw.slope);
      double cert = tc - 1e-9 * std::max(1.0, std::abs(tc));
      if (!(cert > t)) cert = t;
      match_exp = cert;
    }
  }
  nodes_[i].winner = winner;
  nodes_[i].match_exp = match_exp;
  nodes_[i].subtree_exp = std::min(
      match_exp, std::min(nodes_[l].subtree_exp, nodes_[r].subtree_exp));
}

bool KineticIndex::RefreshNode(int node, double now) {
  const size_t i = static_cast<size_t>(node);
  const size_t l = i << 1;
  const size_t r = l | 1;
  bool left_changed = false;
  bool right_changed = false;
  if (static_cast<int>(l) >= capacity_) {
    // Children are leaves. A leaf with an expired (-inf, i.e. dirty) marker
    // had its line rewritten — or the slot emptied — by an Insert/Erase
    // since the last query. Reporting "changed" forces every ancestor match
    // its line participates in to be recomputed: the winning *slot* of
    // those matches may be unchanged while the line behind it is not, so a
    // slot comparison alone would be unsound.
    if (nodes_[l].subtree_exp <= now) {
      nodes_[l].subtree_exp = kInf;
      left_changed = true;
    }
    if (nodes_[r].subtree_exp <= now) {
      nodes_[r].subtree_exp = kInf;
      right_changed = true;
    }
  } else {
    // Recurse only into expired/dirty subtrees; clean ones are not entered.
    if (nodes_[l].subtree_exp <= now) left_changed = RefreshNode(l, now);
    if (nodes_[r].subtree_exp <= now) right_changed = RefreshNode(r, now);
  }
  const int old_winner = nodes_[i].winner;
  if (!(left_changed || right_changed) && nodes_[i].match_exp > now) {
    // Only descendants tightened their expiries; the cached match is intact.
    nodes_[i].subtree_exp =
        std::min(nodes_[i].match_exp,
                 std::min(nodes_[l].subtree_exp, nodes_[r].subtree_exp));
    return false;
  }
  RecomputeNode(node, now);
  const int w = nodes_[i].winner;
  if (w != old_winner) return true;
  // Same winning slot — but if the winner came out of a subtree that
  // reported a change, its *line* may have been rewritten, and ancestors
  // matched against the old line must re-run their matches too.
  return w == nodes_[l].winner ? left_changed : right_changed;
}

int KineticIndex::DenseArgMax(SimTime now, double* priority) {
  // Walks the packed parallel arrays — contiguous loads, no id indirection
  // on the hot comparisons; ids are only consulted to break exact ties.
  const size_t n = dense_ids_.size();
  const double* const anchor = dense_anchor_.data();
  const double* const coef = dense_coef_.data();
  const bool ratio = mode_ == EvalMode::kRatio;
  size_t best_pos = 0;
  double best_priority = ratio ? (now - anchor[0]) / coef[0]
                               : coef[0] * (now - anchor[0]);
  for (size_t k = 1; k < n; ++k) {
    const double p = ratio ? (now - anchor[k]) / coef[k]
                           : coef[k] * (now - anchor[k]);
    if (p > best_priority) {
      best_pos = k;
      best_priority = p;
    } else if (p == best_priority) {
      // Exact tie under the scan's own arithmetic: smallest (tie, id) wins,
      // independent of the swap-removal order of the packed arrays.
      if (dense_tie_[k] < dense_tie_[best_pos] ||
          (dense_tie_[k] == dense_tie_[best_pos] &&
           dense_ids_[k] < dense_ids_[best_pos])) {
        best_pos = k;
      }
    }
  }
  if (priority != nullptr) *priority = best_priority;
  return dense_ids_[best_pos];
}

int KineticIndex::ArgMax(SimTime now, double* priority) {
  if (size_ == 0) return -1;
  last_time_ = now;
  if (dense_) return DenseArgMax(now, priority);
  if (capacity_ > 1) {
    if (nodes_[1].subtree_exp <= now) RefreshNode(1, now);
  } else {
    // Single-leaf tree: node 1 is the leaf itself; just clear its marker.
    nodes_[1].subtree_exp = kInf;
  }
  const int winner = nodes_[1].winner;
  if (priority != nullptr) *priority = Eval(winner, now);
  return winner;
}

}  // namespace aqsios::sched
