// Priorities for shared operators (§7).
//
// When an operator O_x is shared by N operator segments, executing it once
// serves all of them; its priority should reflect the aggregate benefit. The
// aggregate normalized rate of a segment set M is (Eq. 7):
//
//     V = Σ_{i∈M} (S_i / T_i)  /  S̄C,   S̄C = Σ_{i∈M} C̄_i − (|M|−1)·c_x
//
// (and analogously with T_i² in the denominator for BSD's Φ). Three
// strategies are compared in the paper (§9.3, Table 2):
//
//   Max — priority of the single best segment;
//   Sum — aggregate over all N segments;
//   PDT — the Priority-Defining Tree: the aggregate over the best prefix of
//         segments in descending individual-priority order, grown greedily
//         while the aggregate keeps increasing. Segments outside the PDT are
//         scheduled separately as remainder units.

#ifndef AQSIOS_SCHED_SHARING_H_
#define AQSIOS_SCHED_SHARING_H_

#include <vector>

#include "query/query.h"
#include "sched/unit.h"

namespace aqsios::sched {

enum class SharingStrategy { kMax, kSum, kPdt };

const char* SharingStrategyName(SharingStrategy strategy);

/// Which priority function the strategy optimizes; the PDT (and Max argmax)
/// depend on it because segments order differently under 1/T and 1/T².
enum class SharingObjective { kHnr, kBsd };

/// One member segment E_x^i of a sharing group, described by its full
/// characterizing parameters (shared operator included).
struct MemberSegment {
  query::QueryId query = 0;
  /// S_x^i — global selectivity of the full segment.
  double selectivity = 1.0;
  /// C̄_x^i — global average cost of the full segment (seconds).
  SimTime expected_cost = 0.0;
  /// T_i — ideal total processing time of query i (seconds).
  SimTime ideal_time = 0.0;

  double HnrPriority() const {
    return selectivity / (expected_cost * ideal_time);
  }
  double BsdPhi() const {
    return selectivity / (expected_cost * ideal_time * ideal_time);
  }
};

/// Aggregate stats of a segment subset under the shared-cost model.
struct GroupAggregate {
  /// S̄C — total cost with the shared operator counted once (seconds).
  SimTime shared_cost = 0.0;
  double sum_selectivity = 0.0;       // Σ S_i
  double sum_sel_over_t = 0.0;        // Σ S_i / T_i
  double sum_sel_over_t2 = 0.0;       // Σ S_i / T_i²
  SimTime min_ideal_time = 0.0;       // min T_i

  double OutputRate() const { return sum_selectivity / shared_cost; }
  double NormalizedRate() const { return sum_sel_over_t / shared_cost; }
  double Phi() const { return sum_sel_over_t2 / shared_cost; }
};

/// Aggregates `members[indices]` with shared operator cost c_x.
GroupAggregate AggregateMembers(const std::vector<MemberSegment>& members,
                                const std::vector<int>& indices,
                                SimTime shared_op_cost);

/// Result of applying a sharing strategy to a group.
struct GroupPriority {
  /// Stats to install on the group's schedulable unit.
  UnitStats stats;
  /// Queries whose segments run as one pipelined bundle when the shared
  /// operator is scheduled.
  std::vector<query::QueryId> executed_members;
  /// Queries scheduled separately as remainder units L_x^i (PDT only).
  std::vector<query::QueryId> remainder_members;
};

/// Computes the group priority and execution split under `strategy`.
GroupPriority ComputeGroupPriority(const std::vector<MemberSegment>& members,
                                   SimTime shared_op_cost,
                                   SharingStrategy strategy,
                                   SharingObjective objective);

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_SHARING_H_
