#include "sched/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aqsios::sched {

CostCalibrator::CostCalibrator(const CalibrationConfig& config,
                               UnitTable* units, Scheduler* scheduler)
    : config_(config), units_(units), scheduler_(scheduler) {
  AQSIOS_CHECK(units != nullptr);
  AQSIOS_CHECK(scheduler != nullptr);
  AQSIOS_CHECK_GT(config.period, 0.0);
  AQSIOS_CHECK_GT(config.decay, 0.0);
  AQSIOS_CHECK_LE(config.decay, 1.0);
  AQSIOS_CHECK_GT(config.min_weight, 0.0);
  AQSIOS_CHECK_GE(config.rel_epsilon, 0.0);
  acc_.resize(units->size());
  baseline_.reserve(units->size());
  estimated_cost_.reserve(units->size());
  estimated_selectivity_.reserve(units->size());
  for (const Unit& unit : *units) {
    baseline_.push_back(Baseline{unit.stats.expected_cost,
                                 unit.stats.selectivity,
                                 unit.stats.ideal_time});
    estimated_cost_.push_back(unit.stats.expected_cost);
    estimated_selectivity_.push_back(unit.stats.selectivity);
  }
  changed_.reserve(units->size());
  next_epoch_ = config.period;
}

bool CostCalibrator::MaybeCalibrate(SimTime now) {
  if (now < next_epoch_) return false;
  // Catch up in one epoch even if several periods elapsed while idle.
  while (next_epoch_ <= now) next_epoch_ += config_.period;
  ++epochs_;
  changed_.clear();

  double cost_drift_sum = 0.0;
  double selectivity_drift_sum = 0.0;
  for (size_t u = 0; u < units_->size(); ++u) {
    Acc& acc = acc_[u];
    if (acc.tuples >= config_.min_weight) {
      // The decayed ratios: decay scales numerator and denominator alike, so
      // this is the exponentially-weighted average of the per-epoch
      // observations, floored like the adaptive monitor so rate priorities
      // stay finite.
      const SimTime cost = std::max(acc.busy / acc.tuples, 1e-9);
      const double selectivity = std::max(acc.emitted / acc.tuples, 1e-6);
      estimated_cost_[u] = cost;
      estimated_selectivity_[u] = selectivity;

      UnitStats& stats = (*units_)[u].stats;
      const bool cost_moved =
          std::abs(cost - stats.expected_cost) >
          config_.rel_epsilon * stats.expected_cost;
      const bool selectivity_moved =
          std::abs(selectivity - stats.selectivity) >
          config_.rel_epsilon * stats.selectivity;
      if (cost_moved || selectivity_moved) {
        const Baseline& base = baseline_[u];
        stats.expected_cost = cost;
        stats.selectivity = selectivity;
        // The whole segment's operator costs drift by one common factor
        // (stream/drift.h selects whole queries), so the true ideal time
        // scales with the observed per-tuple cost.
        stats.ideal_time = base.ideal_time * (cost / base.cost);
        RederiveUnitStats(&stats);
        changed_.push_back(static_cast<int>(u));
        if ((*units_)[u].has_pending()) ++rekeys_;
      }
    }
    acc.tuples *= config_.decay;
    acc.busy *= config_.decay;
    acc.emitted *= config_.decay;

    cost_drift_sum += std::abs(estimated_cost_[u] / baseline_[u].cost - 1.0);
    selectivity_drift_sum +=
        std::abs(estimated_selectivity_[u] / baseline_[u].selectivity - 1.0);
  }
  const double n = static_cast<double>(units_->size());
  cost_drift_ = n > 0.0 ? cost_drift_sum / n : 0.0;
  selectivity_drift_ = n > 0.0 ? selectivity_drift_sum / n : 0.0;

  last_updated_units_ = static_cast<int64_t>(changed_.size());
  updates_ += last_updated_units_;
  if (!changed_.empty()) scheduler_->OnCalibratedStats(changed_, now);
  return true;
}

}  // namespace aqsios::sched
