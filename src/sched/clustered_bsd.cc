#include "sched/clustered_bsd.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/check.h"

namespace aqsios::sched {

ClusteredBsdScheduler::ClusteredBsdScheduler(
    const ClusteredBsdOptions& options)
    : options_(options) {
  std::ostringstream os;
  os << "BSD-"
     << (options.clustering == ClusteringKind::kLogarithmic ? "Logarithmic"
                                                            : "Uniform");
  if (options.use_fagin) os << "+FA";
  if (options.clustered_processing) os << "+CP";
  name_ = os.str();
}

void ClusteredBsdScheduler::Attach(const UnitTable* units) {
  units_ = units;
  clustering_ =
      BuildClustering(*units, options_.clustering, options_.num_clusters);
  cluster_queues_.assign(
      static_cast<size_t>(clustering_.num_clusters), {});
  by_head_time_.clear();
  index_.Reserve(clustering_.num_clusters);
  seen_epoch_.assign(static_cast<size_t>(clustering_.num_clusters), 0);
  fagin_epoch_ = 0;
  cluster_affected_.assign(static_cast<size_t>(clustering_.num_clusters), 0);
  affected_clusters_.clear();
  affected_clusters_.reserve(static_cast<size_t>(clustering_.num_clusters));

  by_pseudo_priority_.resize(
      static_cast<size_t>(clustering_.num_clusters));
  std::iota(by_pseudo_priority_.begin(), by_pseudo_priority_.end(), 0);
  std::stable_sort(by_pseudo_priority_.begin(), by_pseudo_priority_.end(),
                   [this](int a, int b) {
                     return clustering_.pseudo_priority[static_cast<size_t>(
                                a)] >
                            clustering_.pseudo_priority[static_cast<size_t>(
                                b)];
                   });
}

void ClusteredBsdScheduler::OnEnqueue(int unit) {
  const Unit& u = (*units_)[static_cast<size_t>(unit)];
  AQSIOS_DCHECK(!u.queue.empty());
  const QueueEntry& pushed = u.queue.back();
  const int cluster = clustering_.cluster_of_unit[static_cast<size_t>(unit)];
  auto& queue = cluster_queues_[static_cast<size_t>(cluster)];
  if (queue.empty()) {
    if (kinetic_active()) {
      index_.Insert(cluster, pushed.arrival_time,
                    clustering_.pseudo_priority[static_cast<size_t>(cluster)],
                    /*tie_key=*/pushed.arrival_time);
    } else {
      by_head_time_.insert({pushed.arrival_time, cluster});
    }
  }
  queue.push_back(Entry{unit, pushed.arrival, pushed.arrival_time});
}

void ClusteredBsdScheduler::OnDequeue(int /*unit*/) {
  // Bookkeeping for scheduled entries already happened in PickNext.
}

void ClusteredBsdScheduler::OnBatchDequeue(int unit, int count) {
  // PickNext already retired this unit's head entry (and re-keyed the
  // cluster to its post-pop head). A train additionally consumed the unit's
  // next count-1 queue entries; their shadow entries — the unit's count-1
  // oldest remaining occurrences — may sit anywhere in the cluster FIFO, and
  // removing them can change the cluster head, so the head key is rebuilt
  // once after the sweep.
  int remaining = count - 1;
  if (remaining == 0) return;
  const int cluster = clustering_.cluster_of_unit[static_cast<size_t>(unit)];
  auto& queue = cluster_queues_[static_cast<size_t>(cluster)];
  const bool kinetic = kinetic_active();
  if (!kinetic && !queue.empty()) {
    by_head_time_.erase({queue.front().arrival_time, cluster});
  }
  for (auto it = queue.begin(); it != queue.end() && remaining > 0;) {
    if (it->unit == unit) {
      it = queue.erase(it);
      --remaining;
    } else {
      ++it;
    }
  }
  AQSIOS_DCHECK_EQ(remaining, 0)
      << "cluster queue out of sync for unit " << unit;
  if (queue.empty()) {
    if (kinetic) index_.Erase(cluster);
  } else if (kinetic) {
    index_.Insert(cluster, queue.front().arrival_time,
                  clustering_.pseudo_priority[static_cast<size_t>(cluster)],
                  /*tie_key=*/queue.front().arrival_time);
  } else {
    by_head_time_.insert({queue.front().arrival_time, cluster});
  }
}

void ClusteredBsdScheduler::ResyncQueues(SimTime /*now*/) {
  // Shadow FIFOs: one entry per queued tuple, merged per cluster in
  // (arrival index, unit id) order — the canonical interleaving, identical
  // to true enqueue order for the leaf queues this scheduler serves.
  for (auto& queue : cluster_queues_) queue.clear();
  for (const Unit& u : *units_) {
    auto& queue =
        cluster_queues_[static_cast<size_t>(
            clustering_.cluster_of_unit[static_cast<size_t>(u.id)])];
    for (size_t i = 0; i < u.queue.size(); ++i) {
      const QueueEntry& e = u.queue.at(i);
      queue.push_back(Entry{u.id, e.arrival, e.arrival_time});
    }
  }
  by_head_time_.clear();
  if (kinetic_active()) index_.Clear();
  for (int cluster = 0; cluster < clustering_.num_clusters; ++cluster) {
    auto& queue = cluster_queues_[static_cast<size_t>(cluster)];
    std::sort(queue.begin(), queue.end(), [](const Entry& a, const Entry& b) {
      return a.arrival != b.arrival ? a.arrival < b.arrival
                                    : a.unit < b.unit;
    });
    if (queue.empty()) continue;
    if (kinetic_active()) {
      index_.Insert(cluster, queue.front().arrival_time,
                    clustering_.pseudo_priority[static_cast<size_t>(cluster)],
                    /*tie_key=*/queue.front().arrival_time);
    } else {
      by_head_time_.insert({queue.front().arrival_time, cluster});
    }
  }
}

void ClusteredBsdScheduler::OnCalibratedStats(const std::vector<int>& changed,
                                              SimTime /*now*/) {
  // Re-bucket the units whose drifted Φ crossed a frozen range edge; note
  // which clusters lost or gained a member. Units still inside their range
  // cost one ClusterIndexFor each — the cluster's priority line depends only
  // on its (frozen) pseudo priority and head time, so nothing else moves.
  affected_clusters_.clear();
  for (int unit : changed) {
    const int old_cluster =
        clustering_.cluster_of_unit[static_cast<size_t>(unit)];
    const int new_cluster = ClusterIndexFor(
        clustering_, (*units_)[static_cast<size_t>(unit)].stats.phi);
    if (new_cluster == old_cluster) continue;
    clustering_.cluster_of_unit[static_cast<size_t>(unit)] = new_cluster;
    for (int cluster : {old_cluster, new_cluster}) {
      uint8_t& mark = cluster_affected_[static_cast<size_t>(cluster)];
      if (mark == 0) {
        mark = 1;
        affected_clusters_.push_back(cluster);
      }
    }
  }
  if (affected_clusters_.empty()) return;

  // Rebuild only the affected clusters' shadow FIFOs canonically (the
  // restricted ResyncQueues) and re-key each one's head line individually —
  // O(log m) per affected cluster through dirty-marking, never a Clear.
  for (const int cluster : affected_clusters_) {
    auto& queue = cluster_queues_[static_cast<size_t>(cluster)];
    if (!kinetic_active() && !queue.empty()) {
      by_head_time_.erase({queue.front().arrival_time, cluster});
    }
    queue.clear();
  }
  for (const Unit& u : *units_) {
    const int cluster =
        clustering_.cluster_of_unit[static_cast<size_t>(u.id)];
    if (cluster_affected_[static_cast<size_t>(cluster)] == 0) continue;
    auto& queue = cluster_queues_[static_cast<size_t>(cluster)];
    for (size_t i = 0; i < u.queue.size(); ++i) {
      const QueueEntry& e = u.queue.at(i);
      queue.push_back(Entry{u.id, e.arrival, e.arrival_time});
    }
  }
  for (const int cluster : affected_clusters_) {
    cluster_affected_[static_cast<size_t>(cluster)] = 0;
    auto& queue = cluster_queues_[static_cast<size_t>(cluster)];
    std::sort(queue.begin(), queue.end(), [](const Entry& a, const Entry& b) {
      return a.arrival != b.arrival ? a.arrival < b.arrival
                                    : a.unit < b.unit;
    });
    if (queue.empty()) {
      if (kinetic_active()) index_.Erase(cluster);
      continue;
    }
    if (kinetic_active()) {
      index_.Insert(cluster, queue.front().arrival_time,
                    clustering_.pseudo_priority[static_cast<size_t>(cluster)],
                    /*tie_key=*/queue.front().arrival_time);
    } else {
      by_head_time_.insert({queue.front().arrival_time, cluster});
    }
  }
}

int ClusteredBsdScheduler::SelectByScan(SimTime now,
                                        SchedulingCost* cost) const {
  int best = -1;
  double best_priority = -1.0;
  for (const auto& [head_time, cluster] : by_head_time_) {
    const double priority =
        clustering_.pseudo_priority[static_cast<size_t>(cluster)] *
        (now - head_time);
    ++cost->computations;
    ++cost->comparisons;
    ++cost->candidates;
    if (priority > best_priority) {
      best_priority = priority;
      best = cluster;
    }
  }
  cost->chosen_priority = best_priority;
  return best;
}

int ClusteredBsdScheduler::SelectByFagin(SimTime now,
                                         SchedulingCost* cost) const {
  // List A: clusters in descending pseudo-priority order (skipping empty
  // ones). List B: non-empty clusters in descending head-wait order.
  // Alternate sorted accesses; each accessed cluster's full priority is
  // evaluated (the "random access" of the other attribute is a O(1) lookup).
  // Stop once the best seen priority is at least the threshold
  // pseudo(next unseen in A) × wait(next unseen in B).
  int best = -1;
  double best_priority = -1.0;

  ++fagin_epoch_;
  auto eval = [&](int cluster) {
    // A cluster reached through both lists is only evaluated once.
    int& seen = seen_epoch_[static_cast<size_t>(cluster)];
    if (seen == fagin_epoch_) return;
    seen = fagin_epoch_;
    const double priority =
        clustering_.pseudo_priority[static_cast<size_t>(cluster)] *
        (now - HeadTime(cluster));
    ++cost->computations;
    ++cost->comparisons;
    ++cost->candidates;
    if (priority > best_priority) {
      best_priority = priority;
      best = cluster;
    }
  };

  size_t ia = 0;  // position in by_pseudo_priority_
  auto ib = by_head_time_.begin();

  auto advance_a = [&]() -> int {
    while (ia < by_pseudo_priority_.size()) {
      const int cluster = by_pseudo_priority_[ia];
      if (!cluster_queues_[static_cast<size_t>(cluster)].empty()) {
        return cluster;
      }
      ++ia;
    }
    return -1;
  };

  while (true) {
    const int ca = advance_a();
    if (ca >= 0) {
      eval(ca);
      ++ia;
    }
    if (ib != by_head_time_.end()) {
      eval(ib->second);
      ++ib;
    }
    // Threshold from the next unseen positions.
    const int next_a = advance_a();
    const bool a_done = next_a < 0;
    const bool b_done = ib == by_head_time_.end();
    if (a_done && b_done) break;
    double threshold = 0.0;
    if (!a_done && !b_done) {
      threshold =
          clustering_.pseudo_priority[static_cast<size_t>(next_a)] *
          (now - ib->first);
    } else if (!a_done) {
      // B exhausted: every remaining cluster was already seen via B.
      break;
    } else {
      // A exhausted: every remaining cluster was already seen via A.
      break;
    }
    ++cost->comparisons;
    if (best_priority >= threshold) break;
  }
  cost->chosen_priority = best_priority;
  return best;
}

int ClusteredBsdScheduler::SelectByKinetic(SimTime now,
                                           SchedulingCost* cost) {
  // SelectByScan touches every non-empty cluster, charging one computation,
  // one comparison, and one candidate each; the simulated charges model that
  // scan no matter how few nodes the index revalidated.
  double best_priority = -1.0;
  const int best = index_.ArgMax(now, &best_priority);
  const int64_t non_empty = index_.size();
  cost->computations += non_empty;
  cost->comparisons += non_empty;
  cost->candidates += non_empty;
  cost->chosen_priority = best_priority;
  return best;
}

bool ClusteredBsdScheduler::PickNext(SimTime now, SchedulingCost* cost,
                                     std::vector<int>* out) {
  const bool kinetic = kinetic_active();
  if (kinetic ? index_.empty() : by_head_time_.empty()) return false;
  const int cluster = options_.use_fagin ? SelectByFagin(now, cost)
                      : kinetic          ? SelectByKinetic(now, cost)
                                         : SelectByScan(now, cost);
  AQSIOS_DCHECK_GE(cluster, 0);

  auto& queue = cluster_queues_[static_cast<size_t>(cluster)];
  AQSIOS_DCHECK(!queue.empty());
  if (!kinetic) by_head_time_.erase({queue.front().arrival_time, cluster});

  const stream::ArrivalId head_arrival = queue.front().arrival;
  out->push_back(queue.front().unit);
  queue.pop_front();
  if (options_.clustered_processing) {
    // Execute every member of the cluster pending on the same head tuple.
    while (!queue.empty() && queue.front().arrival == head_arrival) {
      out->push_back(queue.front().unit);
      queue.pop_front();
    }
  }
  if (kinetic) {
    if (queue.empty()) {
      index_.Erase(cluster);
    } else {
      // Re-key to the new head: same line slope, new anchor and tie key.
      index_.Insert(cluster, queue.front().arrival_time,
                    clustering_.pseudo_priority[static_cast<size_t>(cluster)],
                    /*tie_key=*/queue.front().arrival_time);
    }
  } else if (!queue.empty()) {
    by_head_time_.insert({queue.front().arrival_time, cluster});
  }
  return true;
}

}  // namespace aqsios::sched
