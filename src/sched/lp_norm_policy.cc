#include "sched/lp_norm_policy.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace aqsios::sched {

LpNormScheduler::LpNormScheduler(double p) : p_(p) {
  AQSIOS_CHECK_GE(p, 1.0);
  std::ostringstream os;
  os << "L" << p << "-SD";
  name_ = os.str();
}

void LpNormScheduler::Attach(const UnitTable* units) {
  units_ = units;
  ready_.clear();
  OnStatsUpdated();
}

void LpNormScheduler::OnStatsUpdated() {
  static_priority_.clear();
  static_priority_.reserve(units_->size());
  for (const Unit& unit : *units_) {
    // S/(C̄·T^p) = normalized_rate / T^(p-1).
    static_priority_.push_back(unit.stats.normalized_rate /
                               std::pow(unit.stats.ideal_time, p_ - 1.0));
  }
}

double LpNormScheduler::ShedPriority(const Unit& unit) const {
  // Computed from stats (not static_priority_) so the shedder can rank
  // before Attach and after stats refreshes without ordering constraints.
  return unit.stats.normalized_rate /
         std::pow(unit.stats.ideal_time, p_ - 1.0);
}

double LpNormScheduler::PriorityOf(const Unit& unit, SimTime now) const {
  // V = S/(C̄·T^p) · W^(p-1), i.e. normalized rate × stretch^(p-1).
  return static_priority_[static_cast<size_t>(unit.id)] *
         std::pow(unit.HeadWait(now), p_ - 1.0);
}

void LpNormScheduler::OnEnqueue(int unit) {
  if ((*units_)[static_cast<size_t>(unit)].queue.size() == 1) {
    ready_.insert(unit);
  }
}

void LpNormScheduler::OnDequeue(int unit) {
  if ((*units_)[static_cast<size_t>(unit)].queue.empty()) {
    ready_.erase(unit);
  }
}

void LpNormScheduler::ResyncQueues(SimTime /*now*/) {
  ready_.clear();
  for (const Unit& unit : *units_) {
    if (unit.has_pending()) ready_.insert(unit.id);
  }
}

bool LpNormScheduler::PickNext(SimTime now, SchedulingCost* cost,
                               std::vector<int>* out) {
  if (ready_.empty()) return false;
  int best = -1;
  double best_priority = -1.0;
  for (int unit : ready_) {
    const double priority =
        PriorityOf((*units_)[static_cast<size_t>(unit)], now);
    ++cost->computations;
    ++cost->comparisons;
    if (priority > best_priority) {
      best_priority = priority;
      best = unit;
    }
  }
  cost->candidates = static_cast<int64_t>(ready_.size());
  cost->chosen_priority = best_priority;
  out->push_back(best);
  return true;
}

}  // namespace aqsios::sched
