#include "sched/unit.h"

#include "sched/chain_policy.h"

namespace aqsios::sched {

void TupleQueue::Grow() {
  const uint32_t new_cap = cap_ * 2;
  QueueEntry* grown = new QueueEntry[new_cap];
  for (uint32_t i = 0; i < len_; ++i) {
    grown[i] = buf_[(head_ + i) & (cap_ - 1)];
  }
  if (buf_ != inline_) delete[] buf_;
  buf_ = grown;
  cap_ = new_cap;
  head_ = 0;
}

void TupleQueue::shrink_to_fit() {
  if (buf_ == inline_) return;
  uint32_t target = kInlineCapacity;
  while (target < len_) target *= 2;
  if (target == cap_) return;
  QueueEntry* shrunk =
      target == kInlineCapacity ? inline_ : new QueueEntry[target];
  for (uint32_t i = 0; i < len_; ++i) {
    shrunk[i] = buf_[(head_ + i) & (cap_ - 1)];
  }
  delete[] buf_;
  buf_ = shrunk;
  cap_ = target;
  head_ = 0;
}

const char* UnitKindName(UnitKind kind) {
  switch (kind) {
    case UnitKind::kQueryChain:
      return "query_chain";
    case UnitKind::kOperator:
      return "operator";
    case UnitKind::kSharedGroup:
      return "shared_group";
    case UnitKind::kRemainder:
      return "remainder";
    case UnitKind::kJoinSideLeft:
      return "join_side_left";
    case UnitKind::kJoinSideRight:
      return "join_side_right";
    case UnitKind::kJoinInput:
      return "join_input";
  }
  return "unknown";
}

void RederiveUnitStats(UnitStats* stats) {
  stats->output_rate = stats->selectivity / stats->expected_cost;
  stats->normalized_rate = stats->output_rate / stats->ideal_time;
  stats->phi = stats->normalized_rate / stats->ideal_time;
  stats->chain_slope =
      AggregateSlope(stats->selectivity, stats->expected_cost);
}

UnitStats StatsFromSegment(const query::SegmentStats& segment) {
  UnitStats stats;
  stats.selectivity = segment.selectivity;
  stats.expected_cost = segment.expected_cost;
  stats.output_rate = segment.OutputRate();
  stats.normalized_rate = segment.NormalizedRate();
  stats.phi = segment.Phi();
  stats.ideal_time = segment.ideal_time;
  // Default Chain slope from the segment aggregate; unit builders with
  // access to the full operator chain override this with the exact
  // progress-chart envelope slope.
  stats.chain_slope =
      AggregateSlope(segment.selectivity, segment.expected_cost);
  return stats;
}

}  // namespace aqsios::sched
