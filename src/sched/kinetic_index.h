// Kinetic tournament index over linearly-growing priorities.
//
// The time-varying policies (LSF, BSD, clustered BSD) assign every ready
// unit a priority that is a *linear function of the virtual clock*:
//
//   LSF:        p_u(t) = (t - a_u) / T_u            (slope 1/T_u)
//   BSD:        p_u(t) = phi_u * (t - a_u)          (slope phi_u)
//   clustered:  p_c(t) = pseudo_c * (t - head_c)    (slope pseudo_c)
//
// where a_u is the head tuple's arrival time. The argmax over ready units is
// therefore an upper-envelope query, which a kinetic tournament answers in
// O(log n) amortized instead of the naive O(n) scan per scheduling point:
// a complete binary tree holds one leaf per unit; each internal node caches
// the winner of its two subtrees plus a *certificate* — the earliest time
// the losing line could overtake the winning line. ArgMax(now) only
// re-evaluates subtrees whose certificates have expired; inserts and erases
// just mark their leaf-to-root path dirty (plain stores, no arithmetic) and
// the next ArgMax re-runs the marked matches once, at the query time.
//
// The index is a hybrid: up to kDenseMaxCapacity slots it skips the tree
// entirely and answers ArgMax with one exact evaluation per live line over
// a flat array (see kDenseMaxCapacity for why small n favours that), then
// switches to the tournament when it grows past the threshold. Both paths
// implement identical semantics; which one answers is invisible to callers
// except through dense()/node_recomputes().
//
// Bit-identical contract: the index must return exactly the unit the linear
// scan in basic_policies.cc / clustered_bsd.cc would return, including its
// priority *value* with identical floating-point rounding. Two rules make
// that hold:
//
//  1. Matches are decided by evaluating the scan's own arithmetic
//     (EvalMode::kRatio = `(t - anchor) / coef`, EvalMode::kScaled =
//     `coef * (t - anchor)`), never by rearranged line algebra. Certificates
//     are merely conservative *re-check times*; a pessimistic certificate
//     costs a re-evaluation, never a wrong answer.
//  2. Ties reproduce the scan's iteration order: the scan iterates an
//     ordered set and keeps the first maximum (strict `>`), so ties go to
//     the smallest (tie_key, id) pair. LSF/BSD pass tie_key = 0 (lowest id
//     wins, matching std::set<int>); clustered BSD passes tie_key =
//     head time (matching its std::set<pair<SimTime, cluster>>).
//
// Certificates are computed from the algebraic crossover of the two lines
// minus a relative safety margin of 1e-9 (orders of magnitude wider than
// the rounding error of the certificate arithmetic), clamped to be no
// earlier than the evaluation time; a certificate that keeps landing at
// "now" simply degrades that node to re-check-per-query, which is the safe
// direction.

#ifndef AQSIOS_SCHED_KINETIC_INDEX_H_
#define AQSIOS_SCHED_KINETIC_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sim_time.h"

namespace aqsios::sched {

class KineticIndex {
 public:
  enum class EvalMode {
    /// p(t) = (t - anchor) / coef — LSF's HeadWait(now) / ideal_time.
    kRatio,
    /// p(t) = coef * (t - anchor) — BSD's phi * HeadWait(now) and the
    /// clustered pseudo_priority * (now - head_time).
    kScaled,
  };

  explicit KineticIndex(EvalMode mode) : mode_(mode) {}

  /// Pre-sizes the tree for ids in [0, max_ids) and clears it. The index
  /// grows on demand if a larger id is inserted later.
  void Reserve(int max_ids);

  /// Removes all entries (capacity and clock are kept).
  void Clear();

  /// Inserts id with the given line, or re-keys it if already present.
  /// `coef` must be > 0 (priorities are nonnegative and increasing).
  void Insert(int id, double anchor, double coef, double tie_key = 0.0);

  /// Removes id; no-op when absent.
  void Erase(int id);

  bool Contains(int id) const {
    return id >= 0 && id < capacity_ && occupied_[static_cast<size_t>(id)] != 0;
  }

  bool empty() const { return size_ == 0; }
  int size() const { return size_; }

  /// Returns the id maximizing p(now) — ties broken by smallest
  /// (tie_key, id) — and stores its priority, computed with the scan's exact
  /// arithmetic, into *priority when non-null. -1 when empty. `now` must be
  /// non-decreasing across calls (the simulation clock is monotone).
  int ArgMax(SimTime now, double* priority = nullptr);

  /// The priority the scan formula assigns to `id` at time `t` (test aid).
  double EvalAt(int id, SimTime t) const {
    return Eval(id, t);
  }

  /// Internal-node recomputations since construction — the work an ArgMax /
  /// Insert / Erase actually did (test + benchmark introspection; a valid
  /// root certificate makes ArgMax O(1)). Always 0 while the index is in
  /// its dense small-n mode, which keeps no tree at all.
  int64_t node_recomputes() const { return node_recomputes_; }

  /// Whether the index is currently answering queries with the dense linear
  /// fast path instead of the tournament tree (introspection).
  bool dense() const { return dense_; }

  /// Full wipes (Clear calls) since construction. The calibration re-key
  /// path must never trigger one — tests pin this counter to prove re-keys
  /// stay incremental (Insert-on-existing-id + dirty-marking) instead of
  /// degenerating into rebuild-the-world.
  int64_t clears() const { return clears_; }

  /// Largest capacity served by the dense fast path. Below this size the
  /// tournament's ~log n match replays per re-key cost more than simply
  /// evaluating every line over a flat array (a pick re-keys the picked
  /// unit, which was the winner of every match on its leaf-to-root path, so
  /// the whole path must be replayed — certificates cannot save it). The
  /// crossover sits past a hundred units on current hardware; above it the
  /// tree's O(log n) takes over.
  static constexpr int kDenseMaxCapacity = 128;

 private:
  double Eval(int slot, double t) const {
    const Line& line = lines_[static_cast<size_t>(slot)];
    return mode_ == EvalMode::kRatio ? (t - line.anchor) / line.coef
                                     : line.coef * (t - line.anchor);
  }

  /// Re-derives winner, match certificate, and subtree expiry of internal
  /// node `node` from its children, evaluating the match at time `t`.
  void RecomputeNode(int node, double t);

  /// Revalidates the subtree under internal node `node` — the caller has
  /// already established it is expired or dirty — and returns whether the
  /// subtree's winner (slot or line) changed. Recurses only into expired or
  /// dirty children; clean subtrees are never entered.
  bool RefreshNode(int node, double now);

  /// Marks the leaf-to-root path above `slot` dirty (-inf expiries) so the
  /// next ArgMax recomputes it. Mutations do no priority arithmetic at all:
  /// deferring to query time deduplicates overlapping paths and evaluates
  /// matches at the freshest possible clock.
  void MarkPath(int slot);

  /// Rebuilds the whole tree for a new leaf capacity (power of two).
  void Rebuild(int new_capacity);

  /// Dense-mode ArgMax: one exact Eval per live id, running lexicographic
  /// (priority desc, tie asc, id asc) best — identical semantics to the
  /// tree, with zero maintenance on Insert/Erase.
  int DenseArgMax(SimTime now, double* priority);

  EvalMode mode_;
  bool dense_ = true;  // small indexes start dense; Reserve/growth decide
  int capacity_ = 0;  // leaf slots, power of two (0 until first Reserve)
  int size_ = 0;
  /// Latest ArgMax query time; a mid-stream Rebuild evaluates its matches
  /// here (the clock is monotone, so this is the most recent — and
  /// therefore tightest — evaluation point available).
  double last_time_ = 0.0;
  int64_t node_recomputes_ = 0;
  int64_t clears_ = 0;

  /// Per-leaf-slot line state (indexed by id): 32 bytes, two lines per cache
  /// line, so one Eval plus the tie-break touch at most one line of memory.
  struct Line {
    double anchor = 0.0;
    double coef = 1.0;
    double slope = 0.0;  // d p / d t: 1/coef (kRatio) or coef (kScaled)
    double tie = 0.0;
  };

  /// Tournament node, fused for the same reason. Nodes 1..2*capacity_-1,
  /// leaves at capacity_ + slot. Leaves use only `winner` (the slot, or -1
  /// when vacant) and `subtree_exp` (-inf dirty marker, +inf otherwise).
  struct Node {
    int winner = -1;          // winning slot of the subtree, -1 when empty
    double match_exp = 0.0;   // earliest time this node's match can flip
    double subtree_exp = 0.0; // min over subtree: match expiries + dirt
  };

  std::vector<char> occupied_;
  std::vector<Line> lines_;
  std::vector<Node> nodes_;
  /// Dense mode only: the live ids in arbitrary order (swap-removed), each
  /// id's position in that list (-1 when absent), and the live lines packed
  /// in the same order as parallel arrays — the ArgMax scan walks contiguous
  /// memory with no per-element indirection.
  std::vector<int> dense_ids_;
  std::vector<int> dense_pos_;
  std::vector<double> dense_anchor_;
  std::vector<double> dense_coef_;
  std::vector<double> dense_tie_;
};

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_KINETIC_INDEX_H_
