// Generalized lp-norm slowdown scheduling.
//
// BSD (Eq. 6) is the p = 2 member of a family: minimizing the lp norm of
// slowdowns Σ H^p leads, by the same two-segment exchange argument as
// §4.2.2, to the priority
//
//     V_x = (S_x / (C̄_x · T^p)) · W^(p-1)
//
// (the marginal increase of Σ S·(W/T)^p per unit of delay, divided by the
// segment cost). p = 1 recovers HNR exactly (the W term vanishes and the
// priority is the static normalized rate); p = 2 recovers BSD; large p
// weighs the worst-stretched tuple ever more heavily and approaches LSF's
// behaviour. This generalization is the natural "future work" knob of the
// paper: one parameter sweeps average-case optimization into worst-case
// optimization.

#ifndef AQSIOS_SCHED_LP_NORM_POLICY_H_
#define AQSIOS_SCHED_LP_NORM_POLICY_H_

#include <set>
#include <string>
#include <vector>

#include "sched/scheduler.h"

namespace aqsios::sched {

class LpNormScheduler : public Scheduler {
 public:
  /// p must be >= 1. p=1 ~ HNR, p=2 ~ BSD.
  explicit LpNormScheduler(double p);

  void Attach(const UnitTable* units) override;
  void OnEnqueue(int unit) override;
  void OnDequeue(int unit) override;
  /// Readiness depends only on the final queue state: reconcile once.
  void OnBatchDequeue(int unit, int /*count*/) override { OnDequeue(unit); }
  bool PickNext(SimTime now, SchedulingCost* cost,
                std::vector<int>* out) override;
  /// Recomputes the precomputed static factors from refreshed stats.
  void OnStatsUpdated() override;
  void ResyncQueues(SimTime now) override;
  const char* name() const override { return name_.c_str(); }
  /// V = (S/(C̄·T^p))·W^(p-1): the static factor is the line's growth
  /// coefficient, so shed the lowest static factors first.
  double ShedPriority(const Unit& unit) const override;

  double p() const { return p_; }

  /// The instantaneous priority this policy assigns (exposed for tests).
  double PriorityOf(const Unit& unit, SimTime now) const;

 private:
  double p_;
  std::string name_;
  const UnitTable* units_ = nullptr;
  std::set<int> ready_;
  /// Static part S/(C̄·T^p) per unit, precomputed at Attach.
  std::vector<double> static_priority_;
};

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_LP_NORM_POLICY_H_
