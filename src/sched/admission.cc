#include "sched/admission.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/check.h"

namespace aqsios::sched {

AdmissionController::AdmissionController(const query::GlobalPlan& plan,
                                         const ShardAssignment& assignment,
                                         const AdmissionConfig& config)
    : config_(config), num_shards_(assignment.num_shards) {
  AQSIOS_CHECK_GT(config.window_seconds, 0.0);
  AQSIOS_CHECK_GE(config.ewma_alpha, 0.0);
  AQSIOS_CHECK_LE(config.ewma_alpha, 1.0);
  AQSIOS_CHECK_GE(config.min_share, 0.0);
  AQSIOS_CHECK_EQ(static_cast<size_t>(plan.num_queries()),
                  assignment.shard_of_query.size());

  // Expected work per arrival, accumulated per (stream, shard, cost class)
  // from the plan's assumed statistics. The class with the most work "owns"
  // the (stream, shard) subscription and meters its admissions.
  std::map<std::pair<int64_t, int>, double> work;  // (stream*S+shard, class)
  const auto accumulate = [&](stream::StreamId st, const query::CompiledQuery& q) {
    const int shard =
        assignment.shard_of_query[static_cast<size_t>(q.id())];
    const int64_t key =
        static_cast<int64_t>(st) * num_shards_ + shard;
    work[{key, q.spec().cost_class}] += q.ExpectedWorkPerArrival(st);
  };
  for (const query::CompiledQuery& q : plan.queries()) {
    const query::QuerySpec& spec = q.spec();
    accumulate(spec.left_stream, q);
    if (spec.is_multi_stream()) {
      accumulate(spec.right_stream, q);
      for (const query::JoinStage& stage : spec.extra_stages) {
        accumulate(stage.stream, q);
      }
    }
  }

  // Dominant class per (stream, shard): most expected work, ties broken by
  // the smaller class id (map iteration order is (key, class) ascending).
  std::map<int64_t, std::pair<int, double>> dominant;  // key -> (class, work)
  for (const auto& [pair_key, w] : work) {
    auto it = dominant.find(pair_key.first);
    if (it == dominant.end() || w > it->second.second) {
      dominant[pair_key.first] = {pair_key.second, w};
    }
  }

  // One lane per (shard, dominant class) pair actually owning traffic.
  lane_of_.assign(
      static_cast<size_t>(plan.num_streams()) *
          static_cast<size_t>(num_shards_),
      -1);
  std::map<std::pair<int, int>, int> lane_ids;  // (shard, class) -> lane
  for (const auto& [key, best] : dominant) {
    const int shard = static_cast<int>(key % num_shards_);
    auto [it, inserted] =
        lane_ids.insert({{shard, best.first}, num_lanes()});
    if (inserted) {
      shard_of_lane_.push_back(shard);
      class_of_lane_.push_back(best.first);
    }
    lane_of_[static_cast<size_t>(key)] = it->second;
  }

  const size_t lanes = static_cast<size_t>(num_lanes());
  demand_.assign(lanes, 0);
  admitted_.assign(lanes, 0);
  ewma_.assign(lanes, 0.0);
  budget_.assign(lanes, 0);
  dropped_per_shard_.assign(static_cast<size_t>(num_shards_), 0);
  window_end_ = config.window_seconds;
  Reallocate();
}

int AdmissionController::LaneOf(int shard, stream::StreamId stream) const {
  const size_t index =
      static_cast<size_t>(stream) * static_cast<size_t>(num_shards_) +
      static_cast<size_t>(shard);
  return index < lane_of_.size() ? lane_of_[index] : -1;
}

void AdmissionController::RollWindows(SimTime time) {
  while (time >= window_end_) {
    for (size_t i = 0; i < ewma_.size(); ++i) {
      ewma_[i] = config_.ewma_alpha * static_cast<double>(demand_[i]) +
                 (1.0 - config_.ewma_alpha) * ewma_[i];
      demand_[i] = 0;
      admitted_[i] = 0;
    }
    Reallocate();
    window_end_ += config_.window_seconds;
  }
}

void AdmissionController::Reallocate() {
  if (config_.tuples_per_window <= 0 || budget_.empty()) return;
  double total_demand = 0.0;
  for (double e : ewma_) total_demand += e;
  const double uniform = 1.0 / static_cast<double>(budget_.size());
  std::vector<double> share(budget_.size());
  double share_sum = 0.0;
  for (size_t i = 0; i < budget_.size(); ++i) {
    const double raw =
        total_demand > 0.0 ? ewma_[i] / total_demand : uniform;
    share[i] = std::max(raw, config_.min_share);
    share_sum += share[i];
  }
  for (size_t i = 0; i < budget_.size(); ++i) {
    // Floors can push Σshare past 1; renormalize so the total budget holds.
    budget_[i] = std::max<int64_t>(
        1, std::llround(static_cast<double>(config_.tuples_per_window) *
                        share[i] / share_sum));
  }
}

bool AdmissionController::Admit(int shard, stream::StreamId stream,
                                SimTime time) {
  RollWindows(time);
  const int lane = LaneOf(shard, stream);
  ++offered_;
  if (lane < 0) return true;  // no metered work on this (stream, shard)
  const size_t i = static_cast<size_t>(lane);
  ++demand_[i];
  if (config_.tuples_per_window <= 0) return true;
  if (admitted_[i] < budget_[i]) {
    ++admitted_[i];
    return true;
  }
  ++dropped_;
  ++dropped_per_shard_[static_cast<size_t>(shard)];
  return false;
}

}  // namespace aqsios::sched
