#include "sched/sharing.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace aqsios::sched {
namespace {

double ObjectivePriority(const MemberSegment& member,
                         SharingObjective objective) {
  return objective == SharingObjective::kHnr ? member.HnrPriority()
                                             : member.BsdPhi();
}

double ObjectiveValue(const GroupAggregate& aggregate,
                      SharingObjective objective) {
  return objective == SharingObjective::kHnr ? aggregate.NormalizedRate()
                                             : aggregate.Phi();
}

UnitStats StatsFromAggregate(const GroupAggregate& aggregate) {
  UnitStats stats;
  stats.selectivity = aggregate.sum_selectivity;
  stats.expected_cost = aggregate.shared_cost;
  stats.output_rate = aggregate.OutputRate();
  stats.normalized_rate = aggregate.NormalizedRate();
  stats.phi = aggregate.Phi();
  stats.ideal_time = aggregate.min_ideal_time;
  return stats;
}

}  // namespace

const char* SharingStrategyName(SharingStrategy strategy) {
  switch (strategy) {
    case SharingStrategy::kMax:
      return "Max";
    case SharingStrategy::kSum:
      return "Sum";
    case SharingStrategy::kPdt:
      return "PDT";
  }
  return "unknown";
}

GroupAggregate AggregateMembers(const std::vector<MemberSegment>& members,
                                const std::vector<int>& indices,
                                SimTime shared_op_cost) {
  AQSIOS_CHECK(!indices.empty());
  GroupAggregate aggregate;
  aggregate.min_ideal_time = std::numeric_limits<SimTime>::infinity();
  SimTime total_cost = 0.0;
  for (int i : indices) {
    const MemberSegment& m = members[static_cast<size_t>(i)];
    AQSIOS_CHECK_GT(m.expected_cost, 0.0);
    AQSIOS_CHECK_GT(m.ideal_time, 0.0);
    total_cost += m.expected_cost;
    aggregate.sum_selectivity += m.selectivity;
    aggregate.sum_sel_over_t += m.selectivity / m.ideal_time;
    aggregate.sum_sel_over_t2 +=
        m.selectivity / (m.ideal_time * m.ideal_time);
    aggregate.min_ideal_time = std::min(aggregate.min_ideal_time,
                                        m.ideal_time);
  }
  // S̄C_x = Σ C̄_x^i − (N−1)·c_x: the shared operator runs once.
  aggregate.shared_cost =
      total_cost - static_cast<double>(indices.size() - 1) * shared_op_cost;
  AQSIOS_CHECK_GT(aggregate.shared_cost, 0.0);
  return aggregate;
}

GroupPriority ComputeGroupPriority(const std::vector<MemberSegment>& members,
                                   SimTime shared_op_cost,
                                   SharingStrategy strategy,
                                   SharingObjective objective) {
  AQSIOS_CHECK(!members.empty());
  GroupPriority result;

  // Members in descending individual-priority order.
  std::vector<int> order(members.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return ObjectivePriority(members[static_cast<size_t>(a)], objective) >
           ObjectivePriority(members[static_cast<size_t>(b)], objective);
  });

  auto all_members = [&]() {
    std::vector<query::QueryId> ids;
    ids.reserve(members.size());
    for (const MemberSegment& m : members) ids.push_back(m.query);
    return ids;
  };

  switch (strategy) {
    case SharingStrategy::kMax: {
      // Priority of the single best segment; the whole group still executes
      // together (the strategies differ only in the priority value).
      const std::vector<int> best = {order.front()};
      result.stats =
          StatsFromAggregate(AggregateMembers(members, best, shared_op_cost));
      result.executed_members = all_members();
      return result;
    }
    case SharingStrategy::kSum: {
      std::vector<int> all(members.size());
      std::iota(all.begin(), all.end(), 0);
      result.stats =
          StatsFromAggregate(AggregateMembers(members, all, shared_op_cost));
      result.executed_members = all_members();
      return result;
    }
    case SharingStrategy::kPdt: {
      // The PDT is the prefix (in descending individual-priority order) that
      // maximizes the aggregate objective (§7.2). Evaluating every prefix is
      // O(N) with incremental sums and always finds the optimum the paper's
      // grow-while-increasing greedy approximates.
      std::vector<int> prefix;
      GroupAggregate best_aggregate;
      size_t taken = 0;
      for (size_t i = 0; i < order.size(); ++i) {
        prefix.push_back(order[i]);
        const GroupAggregate with =
            AggregateMembers(members, prefix, shared_op_cost);
        if (taken == 0 || ObjectiveValue(with, objective) >
                              ObjectiveValue(best_aggregate, objective)) {
          best_aggregate = with;
          taken = i + 1;
        }
      }
      result.stats = StatsFromAggregate(best_aggregate);
      for (size_t i = 0; i < order.size(); ++i) {
        const query::QueryId q =
            members[static_cast<size_t>(order[i])].query;
        if (i < taken) {
          result.executed_members.push_back(q);
        } else {
          result.remainder_members.push_back(q);
        }
      }
      return result;
    }
  }
  AQSIOS_CHECK(false) << "unknown sharing strategy";
  return result;
}

}  // namespace aqsios::sched
