// Aurora-style QoS-graph scheduling (Carney et al., VLDB'03), the
// application-specified alternative the paper contrasts with in §10.
//
// Each query carries a *QoS graph*: a non-increasing piecewise-linear
// utility over output latency. Aurora's QoS-aware scheduler runs the
// operator whose pending work is about to lose the most utility: the
// priority here is the current utility-loss rate of the head tuple times
// the unit's output rate,
//
//     V_x = (−du/dλ at λ = W_x) · S_x / C̄_x ,
//
// i.e. "utility preserved per second of processing". The paper's §10 point
// stands: this needs the user to predict an appropriate graph per query;
// the slowdown metrics need nothing. The default graph is derived from the
// query's ideal processing time T: full utility until `flat_until_stretch`
// × T of latency, linearly decaying to zero at `zero_at_stretch` × T.

#ifndef AQSIOS_SCHED_QOS_GRAPH_H_
#define AQSIOS_SCHED_QOS_GRAPH_H_

#include <set>
#include <utility>
#include <vector>

#include "sched/scheduler.h"

namespace aqsios::sched {

/// A non-increasing piecewise-linear utility-of-latency curve.
class QosGraph {
 public:
  /// Points are (latency seconds, utility), strictly increasing in latency,
  /// non-increasing in utility; the first point defines the utility at and
  /// before its latency, the last holds beyond it.
  explicit QosGraph(std::vector<std::pair<SimTime, double>> points);

  /// Two-segment convenience graph: utility 1 until `flat_until`, linear to
  /// 0 at `zero_at`.
  static QosGraph FlatThenLinear(SimTime flat_until, SimTime zero_at);

  /// Utility at the given output latency.
  double UtilityAt(SimTime latency) const;

  /// Left-continuous decay rate −du/dλ at the given latency (>= 0; 0 on
  /// flat segments and beyond the last point).
  double DecayRateAt(SimTime latency) const;

  const std::vector<std::pair<SimTime, double>>& points() const {
    return points_;
  }

 private:
  std::vector<std::pair<SimTime, double>> points_;
};

struct QosGraphOptions {
  /// Default graph shape in units of each query's ideal processing time T:
  /// full utility until flat_until_stretch·T, zero at zero_at_stretch·T.
  double flat_until_stretch = 5.0;
  double zero_at_stretch = 50.0;
};

/// Aurora's QoS-aware scheduler over the default (stretch-derived) graphs.
class QosGraphScheduler : public Scheduler {
 public:
  explicit QosGraphScheduler(const QosGraphOptions& options);

  void Attach(const UnitTable* units) override;
  void OnEnqueue(int unit) override;
  void OnDequeue(int unit) override;
  /// Readiness depends only on the final queue state: reconcile once.
  void OnBatchDequeue(int unit, int /*count*/) override { OnDequeue(unit); }
  bool PickNext(SimTime now, SchedulingCost* cost,
                std::vector<int>* out) override;
  void ResyncQueues(SimTime now) override;
  const char* name() const override { return "QoS-Graph"; }

  /// The priority assigned to `unit` at `now` (exposed for tests).
  double PriorityOf(const Unit& unit, SimTime now) const;

 private:
  QosGraphOptions options_;
  const UnitTable* units_ = nullptr;
  std::vector<QosGraph> graphs_;
  std::set<int> ready_;
};

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_QOS_GRAPH_H_
