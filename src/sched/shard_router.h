// Shard assignment and lock-free arrival routing for the sharded runtime.
//
// Sharding partitions the query population into K disjoint shards, each run
// by its own scheduler + engine on a private virtual clock (see
// core/sharded_dsms.h for the execution model and determinism contract).
// This file owns the two pure-routing pieces:
//
//  * AssignShards — the documented, seeded hash placement. Query q lands on
//
//        shard(q) = MixKeys(seed, anchor(q)) mod K
//
//    where anchor(q) is the smallest member id of q's sharing group (so a
//    whole §7 sharing group co-locates and its shared leaf operator still
//    executes once per tuple), or q's own id for standalone queries. The
//    placement is a pure function of (plan, K, seed): stable across runs,
//    thread counts, and platforms.
//
//  * ShardRouter — fan-out of the global arrival table to per-shard SPSC
//    ring buffers. One producer thread walks the time-ordered table and
//    pushes each arrival into the ring of every shard subscribed to its
//    stream; one consumer per shard drains its ring into a shard-local
//    sub-table. The hot path is lock-free and allocation-free (rings are
//    pre-sized; the producer spins with yield on a full ring — backpressure,
//    never loss).
//
// Shard-local sub-tables preserve global Arrival::id values and relative
// time order (the producer walks the table in order and SPSC rings are
// FIFO), so every frozen per-arrival draw inside a shard is identical to the
// single-engine run's.

#ifndef AQSIOS_SCHED_SHARD_ROUTER_H_
#define AQSIOS_SCHED_SHARD_ROUTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/spsc_ring.h"
#include "query/plan.h"
#include "stream/tuple.h"

namespace aqsios::sched {

/// The placement computed by AssignShards.
struct ShardAssignment {
  int num_shards = 1;
  uint64_t seed = 0;
  /// Shard of each query, indexed by global query id.
  std::vector<int> shard_of_query;
  /// Global query ids of each shard, ascending within a shard. A shard may
  /// be empty (hashing gives no occupancy guarantee at small query counts).
  std::vector<std::vector<query::QueryId>> queries_of_shard;
};

/// Computes the seeded hash placement documented above. `num_shards` >= 1.
ShardAssignment AssignShards(const query::GlobalPlan& plan, int num_shards,
                             uint64_t seed);

/// Routes a time-ordered arrival table to per-shard rings. Single producer
/// (Route), one consumer per shard (Collect); all consumers must be running
/// before Route fills a ring, or a full ring blocks the producer forever.
class ShardRouter {
 public:
  /// Ring capacity per shard (entries). 4096 Arrival slots ≈ 160 KiB per
  /// shard: small enough to stay cache-friendly, deep enough that the
  /// producer almost never waits on a healthy consumer.
  static constexpr size_t kDefaultRingCapacity = size_t{1} << 12;

  ShardRouter(const query::GlobalPlan& plan, const ShardAssignment& assignment,
              size_t ring_capacity = kDefaultRingCapacity);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  int num_shards() const { return static_cast<int>(rings_.size()); }

  /// Producer: pushes every arrival into the ring of each shard subscribed
  /// to its stream (spinning on full rings), then closes all rings. Call
  /// exactly once, from one thread.
  void Route(const stream::ArrivalTable& arrivals);

  /// Consumer for `shard`: appends drained arrivals to `out` in push order
  /// until the ring is closed and empty. Call from one thread per shard.
  void Collect(int shard, stream::ArrivalTable* out);

  /// Arrivals routed to each shard (valid after Route returns).
  const std::vector<int64_t>& routed_counts() const { return routed_; }

 private:
  /// Subscribed shards per stream id: sorted, deduplicated.
  std::vector<std::vector<int>> shards_of_stream_;
  std::vector<std::unique_ptr<SpscRing<stream::Arrival>>> rings_;
  std::vector<int64_t> routed_;
};

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_SHARD_ROUTER_H_
