// Shard assignment and lock-free arrival routing for the sharded runtime.
//
// Sharding partitions the query population into K disjoint shards, each run
// by its own scheduler + engine on a private virtual clock (see
// core/sharded_dsms.h for the execution model and determinism contract).
// This file owns the two pure-routing pieces:
//
//  * AssignShards — the documented, seeded hash placement. Query q lands on
//
//        shard(q) = MixKeys(seed, anchor(q)) mod K
//
//    where anchor(q) is the smallest member id of q's sharing group (so a
//    whole §7 sharing group co-locates and its shared leaf operator still
//    executes once per tuple), or q's own id for standalone queries. The
//    placement is a pure function of (plan, K, seed): stable across runs,
//    thread counts, and platforms.
//
//  * ShardRouter — fan-out of the global arrival table to per-shard SPSC
//    ring buffers. One producer thread walks the time-ordered table and
//    pushes each arrival into the ring of every shard subscribed to its
//    stream; one consumer per shard drains its ring into a shard-local
//    sub-table. The hot path is lock-free and allocation-free (rings are
//    pre-sized). A full ring backpressures the producer with a bounded
//    spin that escalates to short sleeps (StallPolicy) — lossless by
//    default; with drop_on_stall the producer instead gives up on a shard
//    whose consumer stays wedged past the stall budget and counts the
//    arrival in dropped_counts(), so one dead consumer cannot livelock the
//    whole router.
//
// Shard-local sub-tables preserve global Arrival::id values and relative
// time order (the producer walks the table in order and SPSC rings are
// FIFO), so every frozen per-arrival draw inside a shard is identical to the
// single-engine run's.

#ifndef AQSIOS_SCHED_SHARD_ROUTER_H_
#define AQSIOS_SCHED_SHARD_ROUTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/spsc_ring.h"
#include "query/plan.h"
#include "stream/tuple.h"

namespace aqsios::sched {

/// The placement computed by AssignShards.
struct ShardAssignment {
  int num_shards = 1;
  uint64_t seed = 0;
  /// Shard of each query, indexed by global query id.
  std::vector<int> shard_of_query;
  /// Global query ids of each shard, ascending within a shard. A shard may
  /// be empty (hashing gives no occupancy guarantee at small query counts).
  std::vector<std::vector<query::QueryId>> queries_of_shard;
};

/// Computes the seeded hash placement documented above. `num_shards` >= 1.
ShardAssignment AssignShards(const query::GlobalPlan& plan, int num_shards,
                             uint64_t seed);

// Forward declaration (sched/admission.h); the controller is attached to
// the router but owned by the caller.
class AdmissionController;

/// Backpressure behaviour of Route() on a full ring. The default is
/// lossless: a short pure-yield spin (cheap when the consumer is merely
/// slow) escalating to sleeps (bounded CPU burn when it is *very* slow).
/// With `drop_on_stall`, a ring still full after `stall_rounds` consecutive
/// sleeps is declared wedged and the arrival is dropped for that shard —
/// accounted in dropped_counts(), never silent — which is the overload
/// escape hatch that keeps one stuck shard from livelocking the router.
struct StallPolicy {
  /// Pure std::this_thread::yield() retries before escalating to sleeps.
  int spin_yields = 1024;
  /// Sleep per escalated retry round (real microseconds).
  int sleep_micros = 50;
  /// Consecutive sleep rounds on one push before the consumer counts as
  /// stalled (only meaningful with drop_on_stall). 200 × 50 µs ≈ 10 ms of
  /// grace — geological time for a consumer that is merely busy.
  int stall_rounds = 200;
  /// Drop (and count) instead of waiting forever on a stalled ring.
  bool drop_on_stall = false;
};

/// Routes a time-ordered arrival table to per-shard rings. Single producer
/// (Route), one consumer per shard (Collect); unless drop_on_stall is set,
/// all consumers must be running before Route fills a ring, or a full ring
/// blocks the producer indefinitely (sleeping, not spinning).
class ShardRouter {
 public:
  /// Ring capacity per shard (entries). 4096 Arrival slots ≈ 160 KiB per
  /// shard: small enough to stay cache-friendly, deep enough that the
  /// producer almost never waits on a healthy consumer.
  static constexpr size_t kDefaultRingCapacity = size_t{1} << 12;

  ShardRouter(const query::GlobalPlan& plan, const ShardAssignment& assignment,
              size_t ring_capacity = kDefaultRingCapacity,
              const StallPolicy& stall = {});

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  int num_shards() const { return static_cast<int>(rings_.size()); }

  /// Attaches per-class admission control (sched/admission.h): Route asks
  /// the controller before every per-shard push and skips — without pushing
  /// or counting in routed_counts() — arrivals the controller rejects. The
  /// caller owns the controller; pass nullptr (default) to route everything.
  void AttachAdmission(AdmissionController* admission) {
    admission_ = admission;
  }

  /// Producer: pushes every arrival into the ring of each shard subscribed
  /// to its stream (backpressuring on full rings per StallPolicy), then
  /// closes all rings. Call exactly once, from one thread.
  void Route(const stream::ArrivalTable& arrivals);

  /// Consumer for `shard`: appends drained arrivals to `out` in push order
  /// until the ring is closed and empty. Call from one thread per shard.
  void Collect(int shard, stream::ArrivalTable* out);

  /// Arrivals routed to each shard (valid after Route returns).
  const std::vector<int64_t>& routed_counts() const { return routed_; }

  /// Arrivals dropped per shard because its ring stayed full past the stall
  /// budget (only ever non-zero with StallPolicy::drop_on_stall).
  const std::vector<int64_t>& dropped_counts() const { return dropped_; }

 private:
  /// Pushes one arrival with the StallPolicy backoff; returns false when
  /// the ring stalled and drop_on_stall elected to drop.
  bool PushWithBackoff(SpscRing<stream::Arrival>& ring,
                       const stream::Arrival& arrival);

  /// Subscribed shards per stream id: sorted, deduplicated.
  std::vector<std::vector<int>> shards_of_stream_;
  std::vector<std::unique_ptr<SpscRing<stream::Arrival>>> rings_;
  StallPolicy stall_;
  AdmissionController* admission_ = nullptr;
  std::vector<int64_t> routed_;
  std::vector<int64_t> dropped_;
};

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_SHARD_ROUTER_H_
