#include "sched/qos_graph.h"

#include <algorithm>

#include "common/check.h"

namespace aqsios::sched {

QosGraph::QosGraph(std::vector<std::pair<SimTime, double>> points)
    : points_(std::move(points)) {
  AQSIOS_CHECK(!points_.empty());
  for (size_t i = 1; i < points_.size(); ++i) {
    AQSIOS_CHECK_GT(points_[i].first, points_[i - 1].first)
        << "QoS graph latencies must be strictly increasing";
    AQSIOS_CHECK_LE(points_[i].second, points_[i - 1].second)
        << "QoS graph utility must be non-increasing";
  }
}

QosGraph QosGraph::FlatThenLinear(SimTime flat_until, SimTime zero_at) {
  AQSIOS_CHECK_GT(zero_at, flat_until);
  return QosGraph({{0.0, 1.0}, {flat_until, 1.0}, {zero_at, 0.0}});
}

double QosGraph::UtilityAt(SimTime latency) const {
  if (latency <= points_.front().first) return points_.front().second;
  for (size_t i = 1; i < points_.size(); ++i) {
    if (latency <= points_[i].first) {
      const auto& [l0, u0] = points_[i - 1];
      const auto& [l1, u1] = points_[i];
      const double fraction = (latency - l0) / (l1 - l0);
      return u0 + fraction * (u1 - u0);
    }
  }
  return points_.back().second;
}

double QosGraph::DecayRateAt(SimTime latency) const {
  if (latency <= points_.front().first) return 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    if (latency <= points_[i].first) {
      const auto& [l0, u0] = points_[i - 1];
      const auto& [l1, u1] = points_[i];
      return (u0 - u1) / (l1 - l0);
    }
  }
  return 0.0;
}

QosGraphScheduler::QosGraphScheduler(const QosGraphOptions& options)
    : options_(options) {
  AQSIOS_CHECK_GT(options.flat_until_stretch, 0.0);
  AQSIOS_CHECK_GT(options.zero_at_stretch, options.flat_until_stretch);
}

void QosGraphScheduler::Attach(const UnitTable* units) {
  units_ = units;
  ready_.clear();
  graphs_.clear();
  graphs_.reserve(units->size());
  for (const Unit& unit : *units) {
    graphs_.push_back(QosGraph::FlatThenLinear(
        options_.flat_until_stretch * unit.stats.ideal_time,
        options_.zero_at_stretch * unit.stats.ideal_time));
  }
}

void QosGraphScheduler::OnEnqueue(int unit) {
  if ((*units_)[static_cast<size_t>(unit)].queue.size() == 1) {
    ready_.insert(unit);
  }
}

void QosGraphScheduler::OnDequeue(int unit) {
  if ((*units_)[static_cast<size_t>(unit)].queue.empty()) {
    ready_.erase(unit);
  }
}

void QosGraphScheduler::ResyncQueues(SimTime /*now*/) {
  ready_.clear();
  for (const Unit& unit : *units_) {
    if (unit.has_pending()) ready_.insert(unit.id);
  }
}

double QosGraphScheduler::PriorityOf(const Unit& unit, SimTime now) const {
  // Utility preserved per second of processing: the head tuple's current
  // decay rate times the unit's output rate.
  return graphs_[static_cast<size_t>(unit.id)].DecayRateAt(
             unit.HeadWait(now)) *
         unit.stats.output_rate;
}

bool QosGraphScheduler::PickNext(SimTime now, SchedulingCost* cost,
                                 std::vector<int>* out) {
  if (ready_.empty()) return false;
  int best = -1;
  double best_priority = 0.0;
  int fallback = -1;
  double fallback_rate = -1.0;
  for (int unit_id : ready_) {
    const Unit& unit = (*units_)[static_cast<size_t>(unit_id)];
    const double priority = PriorityOf(unit, now);
    ++cost->computations;
    ++cost->comparisons;
    if (priority > best_priority) {
      best_priority = priority;
      best = unit_id;
    }
    // Nothing on a decaying segment (everything flat or already at zero
    // utility): fall back to the rate-based order, Aurora's inner level.
    if (unit.stats.output_rate > fallback_rate) {
      fallback_rate = unit.stats.output_rate;
      fallback = unit_id;
    }
  }
  cost->candidates = static_cast<int64_t>(ready_.size());
  cost->chosen_priority = best >= 0 ? best_priority : fallback_rate;
  out->push_back(best >= 0 ? best : fallback);
  return true;
}

}  // namespace aqsios::sched
