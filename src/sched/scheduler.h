// Scheduler interface.
//
// The execution engine owns the unit table (including input queues) and
// notifies the scheduler as entries are enqueued and dequeued. At each
// scheduling point it asks the scheduler which unit(s) to execute next.

#ifndef AQSIOS_SCHED_SCHEDULER_H_
#define AQSIOS_SCHED_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "common/sim_time.h"
#include "sched/unit.h"

namespace aqsios::sched {

/// Opaque serialized scheduler bookkeeping (Scheduler::ExportState /
/// ImportState). Carries only the state a canonical queue resync cannot
/// re-derive from the unit table — FCFS's actual enqueue interleaving,
/// round-robin cursors. Policies define their own layout; an empty state is
/// valid for policies whose bookkeeping is fully queue-derived.
struct SchedulerState {
  std::vector<int64_t> ints;
  std::vector<double> doubles;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Binds the scheduler to the engine's unit table. Called once before the
  /// run; the table's units (ids, stats) are final, only queues mutate.
  virtual void Attach(const UnitTable* units) = 0;

  /// Called after the engine pushed one entry onto units[unit].queue.
  virtual void OnEnqueue(int unit) = 0;

  /// Called after the engine popped the head entry of units[unit].queue.
  virtual void OnDequeue(int unit) = 0;

  /// Batched (train) execution: called once after the engine popped `count`
  /// head entries of units[unit].queue in a single dispatch — the queue
  /// already reflects the post-train state. The default forwards to
  /// OnDequeue once per popped entry, which is correct for any policy whose
  /// OnDequeue is idempotent on the current queue state or counts entries.
  /// Policies that key bookkeeping off the head entry (kinetic re-keys,
  /// per-entry pick orders) override this to reconcile in one pass, so the
  /// priority maintenance cost is paid once per batch instead of once per
  /// tuple.
  virtual void OnBatchDequeue(int unit, int count) {
    for (int i = 0; i < count; ++i) OnDequeue(unit);
  }

  /// Called after the adaptive statistics monitor refreshed UnitStats in
  /// place. Policies that precompute orderings from the stats must rebuild
  /// them here (queues are untouched); policies that read stats at decision
  /// time need not override.
  virtual void OnStatsUpdated() {}

  /// Called after the online cost calibrator (sched/calibration.h) refreshed
  /// UnitStats for exactly the units in `changed` (sorted ascending; queues
  /// are untouched). Unlike OnStatsUpdated, the affected set is known, so
  /// policies with incremental structures re-key only those units — the
  /// kinetic policies re-insert each changed unit's priority line
  /// (O(log n) amortized via dirty-marking) instead of clearing the index.
  /// The default falls back to the full OnStatsUpdated rebuild, which is
  /// correct for every policy.
  virtual void OnCalibratedStats(const std::vector<int>& changed,
                                 SimTime now) {
    (void)changed;
    (void)now;
    OnStatsUpdated();
  }

  /// Chooses the next unit(s) to execute. Returns false when no unit has
  /// pending tuples. On success appends one or more unit ids to `out`; the
  /// engine pops exactly one head entry from each returned unit, in order,
  /// and executes the corresponding segments before the next scheduling
  /// point (more than one unit is returned only by clustered processing,
  /// §6.2.3, where all returned units consume the same head tuple).
  ///
  /// Implementations accumulate the number of priority computations and
  /// comparisons this decision needed into `cost` (used by the
  /// scheduling-overhead experiments, Figures 13–14); policies whose
  /// decisions are O(1)/amortized-trivial report zero.
  ///
  /// `cost` doubles as the observability decision hook: implementations also
  /// fill `cost->candidates` (ready units examined by this decision) and
  /// `cost->chosen_priority` (the chosen unit's priority value, 0 when the
  /// policy has no numeric priority). The engine forwards both to the event
  /// tracer and the per-policy decision counters; neither affects the
  /// simulated clock.
  virtual bool PickNext(SimTime now, SchedulingCost* cost,
                        std::vector<int>* out) = 0;

  /// Human-readable policy name for reports.
  virtual const char* name() const = 0;

  /// The policy's marginal-slowdown line slope for `unit`: the rate at which
  /// the unit's priority grows per second of head wait for wait-varying
  /// policies (LSF's W/T grows at 1/T, BSD's Φ·W at Φ), or the static
  /// priority itself for wait-independent policies (SRPT/HR/HNR/Chain). The
  /// QoS-aware load shedder (exec::ShedConfig) ranks leaf units by this
  /// value once, before the run, and sheds the lowest-slope sources first —
  /// the tuples whose loss costs the policy's own objective the least — so
  /// shedding decisions stay consistent with the scheduling decisions.
  /// Default: the HNR slope S/(C̄·T), the marginal slowdown reduction per
  /// unit of work, also used by policies with no numeric priority of their
  /// own (FCFS, RR, two-level RR, QoS-graph).
  virtual double ShedPriority(const Unit& unit) const {
    return unit.stats.normalized_rate;
  }

  /// Re-derives every queue-dependent internal structure (ready sets, FIFO
  /// shadows, kinetic-index keys, pending counts) from the attached unit
  /// table's *current* queue contents, canonically and deterministically.
  /// Required after the engine bulk-mutates queues outside the
  /// OnEnqueue/OnDequeue notification protocol — elastic group migration and
  /// cross-shard work stealing (core/rebalance.h) move whole queues at once.
  /// Stats-derived state (ranks, static priorities) is untouched; `now` is
  /// the engine clock at the resync point for policies that need it.
  virtual void ResyncQueues(SimTime now) = 0;

  /// Serializes the bookkeeping a canonical ResyncQueues cannot re-derive
  /// (see SchedulerState). Default: nothing beyond the queues themselves.
  virtual SchedulerState ExportState() const { return {}; }

  /// Restores a state captured by ExportState on a scheduler attached to a
  /// unit table with identical queue contents, such that the subsequent pick
  /// sequence matches the exporter's. Default: ignore the payload and resync
  /// canonically.
  virtual void ImportState(const SchedulerState& state, SimTime now) {
    (void)state;
    ResyncQueues(now);
  }
};

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_SCHEDULER_H_
