// Schedulable units.
//
// Following the paper, the scheduler does not pick operators directly but
// *operator segments* (§3): executing a unit means the pipelined execution of
// a segment of operators on the tuple at the head of the unit's input queue.
// Depending on the scheduling level and plan structure, a unit is:
//
//   kQueryChain  — a whole single-stream query (query-level scheduling);
//   kOperator    — one operator of a chain (operator-level scheduling); its
//                  priority derives from the segment E_x starting there;
//   kSharedGroup — the shared leaf operator of a sharing group plus the
//                  member segments executed with it (§7);
//   kRemainder   — the rest L_x^i of a member segment excluded from a PDT;
//   kJoinSideLeft/kJoinSideRight — the virtual segments E_LL / E_RR of a
//                  two-stream window-join query (§5.2).
//
// Every unit carries the static priority ingredients of all policies so the
// scheduler implementations stay trivial and uniform.

#ifndef AQSIOS_SCHED_UNIT_H_
#define AQSIOS_SCHED_UNIT_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "query/query.h"
#include "stream/tuple.h"

namespace aqsios::sched {

enum class UnitKind {
  kQueryChain,
  kOperator,
  kSharedGroup,
  kRemainder,
  kJoinSideLeft,
  kJoinSideRight,
  /// A third-or-later stream input of a left-deep multi-join query;
  /// Unit::op_index holds the join input index (>= 2).
  kJoinInput,
};

const char* UnitKindName(UnitKind kind);

/// One pending tuple in a unit's input queue. `arrival` is the *index* of
/// the referenced arrival in the engine's arrival table (not necessarily the
/// global Arrival::id — shard sub-tables renumber indexes but keep ids).
/// `arrival_time` is the tuple's system arrival time A_i (not the time it
/// entered this particular queue): wait times W in the LSF/BSD priorities
/// measure time in the system.
struct QueueEntry {
  stream::ArrivalId arrival = 0;
  SimTime arrival_time = 0.0;
};

/// FIFO of pending QueueEntry values, tuned for the per-unit queue's common
/// case. At simulation rates the std::deque it replaces allocated a 512-byte
/// chunk per unit up front and churned chunks in steady-state FIFO traffic;
/// most unit queues hold 0–2 entries almost all of the time, so this ring
/// buffer keeps the first two entries inline in the Unit itself and only
/// touches the heap when a queue actually backs up (capacity doubles, powers
/// of two, entries relocated in FIFO order). Supports exactly the deque
/// surface the engine, schedulers, and tests use.
class TupleQueue {
 public:
  TupleQueue() = default;
  TupleQueue(const TupleQueue& other) { CopyFrom(other); }
  TupleQueue& operator=(const TupleQueue& other) {
    if (this != &other) {
      Release();
      CopyFrom(other);
    }
    return *this;
  }
  TupleQueue(TupleQueue&& other) noexcept { MoveFrom(other); }
  TupleQueue& operator=(TupleQueue&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  ~TupleQueue() { Release(); }

  bool empty() const { return len_ == 0; }
  size_t size() const { return len_; }

  QueueEntry& front() { return buf_[head_]; }
  const QueueEntry& front() const { return buf_[head_]; }
  QueueEntry& back() { return buf_[(head_ + len_ - 1) & (cap_ - 1)]; }
  const QueueEntry& back() const {
    return buf_[(head_ + len_ - 1) & (cap_ - 1)];
  }
  /// The i-th entry from the front (0 = head).
  const QueueEntry& at(size_t i) const {
    return buf_[(head_ + static_cast<uint32_t>(i)) & (cap_ - 1)];
  }

  void push_back(const QueueEntry& entry) {
    if (len_ == cap_) Grow();
    buf_[(head_ + len_) & (cap_ - 1)] = entry;
    ++len_;
  }

  void pop_front() {
    head_ = (head_ + 1) & (cap_ - 1);
    --len_;
  }

  void clear() {
    head_ = 0;
    len_ = 0;
  }

  /// Current ring capacity (inline = 2; grows in powers of two).
  size_t capacity() const { return cap_; }

  /// Releases surplus heap capacity left behind by a burst: relocates the
  /// entries (FIFO order preserved) into the smallest power-of-two buffer
  /// that holds them — back into the inline buffer when they fit. Intended
  /// for callers that know a burst has drained; the engine's hot path never
  /// shrinks.
  void shrink_to_fit();

 private:
  static constexpr uint32_t kInlineCapacity = 2;

  void Grow();

  void CopyFrom(const TupleQueue& other) {
    buf_ = inline_;
    cap_ = kInlineCapacity;
    head_ = 0;
    len_ = 0;
    for (size_t i = 0; i < other.size(); ++i) push_back(other.at(i));
  }

  void MoveFrom(TupleQueue& other) {
    if (other.buf_ == other.inline_) {
      buf_ = inline_;
      inline_[0] = other.inline_[0];
      inline_[1] = other.inline_[1];
    } else {
      buf_ = other.buf_;
    }
    cap_ = other.cap_;
    head_ = other.head_;
    len_ = other.len_;
    other.buf_ = other.inline_;
    other.cap_ = kInlineCapacity;
    other.head_ = 0;
    other.len_ = 0;
  }

  void Release() {
    if (buf_ != inline_) delete[] buf_;
    buf_ = inline_;
    cap_ = kInlineCapacity;
    head_ = 0;
    len_ = 0;
  }

  QueueEntry inline_[kInlineCapacity];
  QueueEntry* buf_ = inline_;
  uint32_t cap_ = kInlineCapacity;  // always a power of two
  uint32_t head_ = 0;
  uint32_t len_ = 0;
};

/// Static priority ingredients of a unit (derived from SegmentStats, or from
/// a sharing strategy for kSharedGroup units). "Static" means per-scheduling
/// -point constant; the adaptive statistics monitor may refresh these from
/// run-time observations (followed by Scheduler::OnStatsUpdated).
struct UnitStats {
  /// Global selectivity S of the unit's segment (expected emissions per
  /// execution).
  double selectivity = 1.0;
  /// Global average cost C̄ of the unit's segment (expected busy seconds per
  /// execution).
  SimTime expected_cost = 0.0;
  /// Output rate S/C̄ — the HR priority (Eq. 4).
  double output_rate = 0.0;
  /// Normalized rate S/(C̄·T) — the HNR priority (Eq. 3).
  double normalized_rate = 0.0;
  /// Φ = S/(C̄·T²) — static component of the BSD priority (§6.2.1).
  double phi = 0.0;
  /// Ideal total processing time T of the tuples this unit produces; the
  /// denominator of LSF's W/T and SRPT's shortest-first ordering.
  SimTime ideal_time = 0.0;
  /// Steepest progress-chart slope from this unit's first operator — the
  /// Chain policy's priority (see sched/chain_policy.h).
  double chain_slope = 0.0;
};

/// Builds UnitStats from an operator segment's characterizing parameters.
UnitStats StatsFromSegment(const query::SegmentStats& segment);

/// Recomputes the derived priority fields of `stats` after `selectivity`
/// and/or `expected_cost` changed (ideal_time is preserved). Used by the
/// adaptive statistics monitor.
void RederiveUnitStats(UnitStats* stats);

struct Unit {
  int id = 0;
  UnitKind kind = UnitKind::kQueryChain;
  /// Owning query (kQueryChain/kOperator/kRemainder/kJoinSide*); the first
  /// member for kSharedGroup.
  query::QueryId query = 0;
  /// kOperator: chain position of this operator. kRemainder: first chain
  /// position of the remainder segment. Unused otherwise.
  int op_index = 0;
  /// Sharing group index for kSharedGroup units; -1 otherwise.
  int group = -1;
  /// Stream feeding this unit, or -1 for internal units (kRemainder and
  /// non-leaf kOperator units) fed by upstream units.
  stream::StreamId input_stream = -1;

  UnitStats stats;
  TupleQueue queue;

  bool has_pending() const { return !queue.empty(); }
  const QueueEntry& head() const { return queue.front(); }
  /// Wait time of the head-of-queue tuple (W_x in the paper).
  SimTime HeadWait(SimTime now) const { return now - queue.front().arrival_time; }
};

using UnitTable = std::vector<Unit>;

/// Cost and shape of one scheduling decision. The engine charges
/// (computations + comparisons) × (cheapest operator cost) of simulated time
/// when overhead charging is enabled (§9.2); `candidates` and
/// `chosen_priority` are the observability side of the same decision (trace
/// events, per-policy decision accounting) and never affect the clock.
struct SchedulingCost {
  int64_t computations = 0;
  int64_t comparisons = 0;
  /// Ready units (or clusters) the decision examined; policies that pop a
  /// precomputed order report 1 (the popped candidate).
  int64_t candidates = 0;
  /// Priority value of the chosen unit under the policy's own priority
  /// function; 0 for policies without a numeric priority (FCFS, RR).
  double chosen_priority = 0.0;

  int64_t total() const { return computations + comparisons; }
  void Clear() {
    computations = comparisons = candidates = 0;
    chosen_priority = 0.0;
  }
};

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_UNIT_H_
