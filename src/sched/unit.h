// Schedulable units.
//
// Following the paper, the scheduler does not pick operators directly but
// *operator segments* (§3): executing a unit means the pipelined execution of
// a segment of operators on the tuple at the head of the unit's input queue.
// Depending on the scheduling level and plan structure, a unit is:
//
//   kQueryChain  — a whole single-stream query (query-level scheduling);
//   kOperator    — one operator of a chain (operator-level scheduling); its
//                  priority derives from the segment E_x starting there;
//   kSharedGroup — the shared leaf operator of a sharing group plus the
//                  member segments executed with it (§7);
//   kRemainder   — the rest L_x^i of a member segment excluded from a PDT;
//   kJoinSideLeft/kJoinSideRight — the virtual segments E_LL / E_RR of a
//                  two-stream window-join query (§5.2).
//
// Every unit carries the static priority ingredients of all policies so the
// scheduler implementations stay trivial and uniform.

#ifndef AQSIOS_SCHED_UNIT_H_
#define AQSIOS_SCHED_UNIT_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/sim_time.h"
#include "query/query.h"
#include "stream/tuple.h"

namespace aqsios::sched {

enum class UnitKind {
  kQueryChain,
  kOperator,
  kSharedGroup,
  kRemainder,
  kJoinSideLeft,
  kJoinSideRight,
  /// A third-or-later stream input of a left-deep multi-join query;
  /// Unit::op_index holds the join input index (>= 2).
  kJoinInput,
};

const char* UnitKindName(UnitKind kind);

/// One pending tuple in a unit's input queue. `arrival_time` is the tuple's
/// system arrival time A_i (not the time it entered this particular queue):
/// wait times W in the LSF/BSD priorities measure time in the system.
struct QueueEntry {
  stream::ArrivalId arrival = 0;
  SimTime arrival_time = 0.0;
};

/// Static priority ingredients of a unit (derived from SegmentStats, or from
/// a sharing strategy for kSharedGroup units). "Static" means per-scheduling
/// -point constant; the adaptive statistics monitor may refresh these from
/// run-time observations (followed by Scheduler::OnStatsUpdated).
struct UnitStats {
  /// Global selectivity S of the unit's segment (expected emissions per
  /// execution).
  double selectivity = 1.0;
  /// Global average cost C̄ of the unit's segment (expected busy seconds per
  /// execution).
  SimTime expected_cost = 0.0;
  /// Output rate S/C̄ — the HR priority (Eq. 4).
  double output_rate = 0.0;
  /// Normalized rate S/(C̄·T) — the HNR priority (Eq. 3).
  double normalized_rate = 0.0;
  /// Φ = S/(C̄·T²) — static component of the BSD priority (§6.2.1).
  double phi = 0.0;
  /// Ideal total processing time T of the tuples this unit produces; the
  /// denominator of LSF's W/T and SRPT's shortest-first ordering.
  SimTime ideal_time = 0.0;
  /// Steepest progress-chart slope from this unit's first operator — the
  /// Chain policy's priority (see sched/chain_policy.h).
  double chain_slope = 0.0;
};

/// Builds UnitStats from an operator segment's characterizing parameters.
UnitStats StatsFromSegment(const query::SegmentStats& segment);

/// Recomputes the derived priority fields of `stats` after `selectivity`
/// and/or `expected_cost` changed (ideal_time is preserved). Used by the
/// adaptive statistics monitor.
void RederiveUnitStats(UnitStats* stats);

struct Unit {
  int id = 0;
  UnitKind kind = UnitKind::kQueryChain;
  /// Owning query (kQueryChain/kOperator/kRemainder/kJoinSide*); the first
  /// member for kSharedGroup.
  query::QueryId query = 0;
  /// kOperator: chain position of this operator. kRemainder: first chain
  /// position of the remainder segment. Unused otherwise.
  int op_index = 0;
  /// Sharing group index for kSharedGroup units; -1 otherwise.
  int group = -1;
  /// Stream feeding this unit, or -1 for internal units (kRemainder and
  /// non-leaf kOperator units) fed by upstream units.
  stream::StreamId input_stream = -1;

  UnitStats stats;
  std::deque<QueueEntry> queue;

  bool has_pending() const { return !queue.empty(); }
  const QueueEntry& head() const { return queue.front(); }
  /// Wait time of the head-of-queue tuple (W_x in the paper).
  SimTime HeadWait(SimTime now) const { return now - queue.front().arrival_time; }
};

using UnitTable = std::vector<Unit>;

/// Cost and shape of one scheduling decision. The engine charges
/// (computations + comparisons) × (cheapest operator cost) of simulated time
/// when overhead charging is enabled (§9.2); `candidates` and
/// `chosen_priority` are the observability side of the same decision (trace
/// events, per-policy decision accounting) and never affect the clock.
struct SchedulingCost {
  int64_t computations = 0;
  int64_t comparisons = 0;
  /// Ready units (or clusters) the decision examined; policies that pop a
  /// precomputed order report 1 (the popped candidate).
  int64_t candidates = 0;
  /// Priority value of the chosen unit under the policy's own priority
  /// function; 0 for policies without a numeric priority (FCFS, RR).
  double chosen_priority = 0.0;

  int64_t total() const { return computations + comparisons; }
  void Clear() {
    computations = comparisons = candidates = 0;
    chosen_priority = 0.0;
  }
};

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_UNIT_H_
