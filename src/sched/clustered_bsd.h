// Efficient BSD implementations (§6.2): clustering, Fagin-style search
// pruning, and clustered processing.
//
// The scheduler keeps one FIFO per cluster. A cluster's priority at a
// scheduling point is (pseudo priority) × (wait of its oldest pending
// tuple). Selection is either a linear scan over the non-empty clusters or —
// with `use_fagin` — the top-1 variant of Fagin's Algorithm over two sorted
// lists (clusters by static pseudo priority, clusters by head wait time),
// which typically stops after touching a handful of clusters (§6.2.2, the
// RxW-style pruning).
//
// With `clustered_processing`, one scheduling decision executes the head
// tuple through *every* member query of the winning cluster (§6.2.3),
// amortizing the decision cost.

#ifndef AQSIOS_SCHED_CLUSTERED_BSD_H_
#define AQSIOS_SCHED_CLUSTERED_BSD_H_

#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sched/clustering.h"
#include "sched/kinetic_index.h"
#include "sched/scheduler.h"

namespace aqsios::sched {

struct ClusteredBsdOptions {
  ClusteringKind clustering = ClusteringKind::kLogarithmic;
  /// Number of clusters m (the paper's sweet spot is ~12, Figure 13).
  int num_clusters = 12;
  /// Enable Fagin top-1 search pruning (§6.2.2).
  bool use_fagin = false;
  /// Enable clustered processing (§6.2.3).
  bool clustered_processing = false;
  /// Answer the cluster-selection scan from a kinetic index (wall-clock
  /// only; decisions and simulated charges are bit-identical to the scan).
  /// Ignored when `use_fagin` is set — the Fagin traversal's charges depend
  /// on its own sorted-access order, so it keeps its list-based structures.
  bool use_kinetic_index = true;
};

class ClusteredBsdScheduler : public Scheduler {
 public:
  explicit ClusteredBsdScheduler(const ClusteredBsdOptions& options);

  void Attach(const UnitTable* units) override;
  void OnEnqueue(int unit) override;
  void OnDequeue(int unit) override;
  /// Retires the train's extra entries from the unit's cluster FIFO and
  /// re-keys the cluster's head once for the whole batch.
  void OnBatchDequeue(int unit, int count) override;
  bool PickNext(SimTime now, SchedulingCost* cost,
                std::vector<int>* out) override;
  /// Rebuilds the per-cluster shadow FIFOs canonically — member units'
  /// queued entries merged by (arrival index, unit id) — plus the head keys.
  void ResyncQueues(SimTime now) override;
  /// Calibration path: units whose drifted Φ crossed a frozen range edge are
  /// re-bucketed. Only the clusters that lost or gained members have their
  /// shadow FIFOs rebuilt and their head lines re-keyed (Insert/Erase per
  /// affected cluster — never a full index Clear); the Φ-domain partition
  /// and pseudo priorities stay frozen from Attach.
  void OnCalibratedStats(const std::vector<int>& changed,
                         SimTime now) override;
  const char* name() const override { return name_.c_str(); }
  /// Same Φ line as exact BSD: clustering changes how the line is *served*
  /// (per-cluster pseudo priorities), not which sources matter least.
  double ShedPriority(const Unit& unit) const override {
    return unit.stats.phi;
  }

  const Clustering& clustering() const { return clustering_; }
  const ClusteredBsdOptions& options() const { return options_; }
  /// Test introspection: the kinetic index (clears/recompute counters).
  const KineticIndex& index() const { return index_; }

 private:
  struct Entry {
    int unit = 0;
    stream::ArrivalId arrival = 0;
    SimTime arrival_time = 0.0;
  };

  /// Linear scan over non-empty clusters; returns the winning cluster.
  int SelectByScan(SimTime now, SchedulingCost* cost) const;
  /// Fagin top-1 over the two sorted lists; returns the winning cluster.
  int SelectByFagin(SimTime now, SchedulingCost* cost) const;
  /// Kinetic-index argmax charging exactly what SelectByScan charges.
  int SelectByKinetic(SimTime now, SchedulingCost* cost);

  /// Whether the kinetic index replaces by_head_time_ for this config.
  bool kinetic_active() const {
    return options_.use_kinetic_index && !options_.use_fagin;
  }

  SimTime HeadTime(int cluster) const {
    return cluster_queues_[static_cast<size_t>(cluster)].front().arrival_time;
  }

  ClusteredBsdOptions options_;
  std::string name_;
  const UnitTable* units_ = nullptr;
  Clustering clustering_;
  std::vector<std::deque<Entry>> cluster_queues_;
  /// Cluster ids in descending pseudo-priority order (Fagin's list A).
  std::vector<int> by_pseudo_priority_;
  /// Non-empty clusters keyed by oldest-pending-arrival time, i.e. by
  /// descending head wait (Fagin's list B). Doubles as the non-empty set.
  /// Unused when kinetic_active(): the index then tracks the same clusters
  /// keyed by the line pseudo_c * (t - head_c) with tie key head_c, which
  /// reproduces this set's iteration-order tie-break exactly.
  std::set<std::pair<SimTime, int>> by_head_time_;
  KineticIndex index_{KineticIndex::EvalMode::kScaled};
  /// Per-cluster marker of the last Fagin pass that evaluated it (avoids
  /// duplicate evaluations when a cluster surfaces in both sorted lists).
  mutable std::vector<int> seen_epoch_;
  mutable int fagin_epoch_ = 0;
  /// OnCalibratedStats scratch (preallocated at Attach): which clusters a
  /// re-bucketing pass touched, and the list of their ids.
  std::vector<uint8_t> cluster_affected_;
  std::vector<int> affected_clusters_;
};

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_CLUSTERED_BSD_H_
