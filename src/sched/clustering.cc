#include "sched/clustering.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace aqsios::sched {

const char* ClusteringKindName(ClusteringKind kind) {
  switch (kind) {
    case ClusteringKind::kUniform:
      return "uniform";
    case ClusteringKind::kLogarithmic:
      return "logarithmic";
  }
  return "unknown";
}

std::string Clustering::ToString() const {
  std::ostringstream os;
  os << ClusteringKindName(kind) << " m=" << num_clusters
     << " delta=" << delta;
  if (kind == ClusteringKind::kLogarithmic) os << " epsilon=" << epsilon;
  return os.str();
}

Clustering BuildClustering(const UnitTable& units, ClusteringKind kind,
                           int num_clusters) {
  AQSIOS_CHECK_GT(num_clusters, 0);
  AQSIOS_CHECK(!units.empty());

  double phi_min = std::numeric_limits<double>::infinity();
  double phi_max = 0.0;
  for (const Unit& unit : units) {
    AQSIOS_CHECK_GT(unit.stats.phi, 0.0)
        << "unit " << unit.id << " has non-positive phi";
    phi_min = std::min(phi_min, unit.stats.phi);
    phi_max = std::max(phi_max, unit.stats.phi);
  }

  Clustering clustering;
  clustering.kind = kind;
  clustering.num_clusters = num_clusters;
  clustering.delta = phi_max / phi_min;
  clustering.phi_min = phi_min;
  clustering.cluster_of_unit.resize(units.size());
  clustering.pseudo_priority.assign(static_cast<size_t>(num_clusters), 0.0);

  if (phi_max == phi_min || num_clusters == 1) {
    // Degenerate domain: everything lands in cluster 0.
    clustering.num_clusters = 1;
    clustering.pseudo_priority.assign(1, phi_min);
    clustering.epsilon = 1.0;
    std::fill(clustering.cluster_of_unit.begin(),
              clustering.cluster_of_unit.end(), 0);
    return clustering;
  }

  if (kind == ClusteringKind::kLogarithmic) {
    // Cluster i covers Φ in [Φ_min·ε^i, Φ_min·ε^(i+1)), ε = Δ^(1/m).
    clustering.epsilon =
        std::pow(clustering.delta, 1.0 / static_cast<double>(num_clusters));
    clustering.log_epsilon = std::log(clustering.epsilon);
    for (int i = 0; i < num_clusters; ++i) {
      clustering.pseudo_priority[static_cast<size_t>(i)] =
          phi_min * std::exp(clustering.log_epsilon * i);
    }
  } else {
    // Cluster i covers Φ in [Φ_min + i·w, Φ_min + (i+1)·w).
    clustering.width =
        (phi_max - phi_min) / static_cast<double>(num_clusters);
    for (int i = 0; i < num_clusters; ++i) {
      clustering.pseudo_priority[static_cast<size_t>(i)] =
          phi_min + clustering.width * i;
    }
  }
  for (size_t u = 0; u < units.size(); ++u) {
    clustering.cluster_of_unit[u] =
        ClusterIndexFor(clustering, units[u].stats.phi);
  }
  return clustering;
}

int ClusterIndexFor(const Clustering& clustering, double phi) {
  if (clustering.num_clusters <= 1) return 0;
  int index;
  if (clustering.kind == ClusteringKind::kLogarithmic) {
    index = static_cast<int>(std::floor(std::log(phi / clustering.phi_min) /
                                        clustering.log_epsilon));
  } else {
    index = static_cast<int>(
        std::floor((phi - clustering.phi_min) / clustering.width));
  }
  return std::clamp(index, 0, clustering.num_clusters - 1);
}

}  // namespace aqsios::sched
