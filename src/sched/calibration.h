// Online cost/selectivity calibration (ROADMAP item 2).
//
// Every policy keys its priority on the *assumed* plan statistics (C̄, S,
// T); under drifting stream statistics those go stale and the schedulers
// optimize yesterday's workload. The CostCalibrator closes the loop:
//
//   * Per-unit exponentially-decayed counters accumulate the observed tuple
//     count, busy time, and root emissions of every dispatch. The hot-path
//     tap (OnDispatch) is three fused multiply-adds — no branches beyond the
//     engine's single null-pointer check, no allocations.
//   * Every `period` virtual seconds an epoch fires: each unit with enough
//     decayed tuple mass re-estimates c_x = busy/tuples (per-tuple segment
//     cost) and s_x = emissions/tuples (segment selectivity) from the
//     decayed ratios — an exponentially-weighted average whose window is set
//     by `decay` — and, when an estimate moved by more than `rel_epsilon`
//     relative, rewrites the unit's UnitStats (ideal time rescaled as
//     T·c_est/c_static, valid because a query's operator costs drift by a
//     common factor) and re-derives the priority fields.
//   * The changed set is handed to Scheduler::OnCalibratedStats, whose
//     kinetic implementations re-key only those units' priority lines
//     through the index's dirty-marking — O(log n) amortized per affected
//     unit, never a full heap rebuild (tests pin KineticIndex::clears()).
//
// Epochs fire at deterministic virtual times and all estimator inputs are
// simulated quantities, so calibrated runs are bit-reproducible across
// repetitions and host machines. See docs/calibration.md.

#ifndef AQSIOS_SCHED_CALIBRATION_H_
#define AQSIOS_SCHED_CALIBRATION_H_

#include <cstdint>
#include <vector>

#include "common/sim_time.h"
#include "sched/scheduler.h"
#include "sched/unit.h"

namespace aqsios::sched {

struct CalibrationConfig {
  bool enabled = false;
  /// Virtual time between calibration epochs (seconds).
  SimTime period = 0.25;
  /// Multiplier applied to every accumulator at each epoch; the estimator's
  /// effective memory is ~1/(1-decay) epochs.
  double decay = 0.5;
  /// Decayed tuple mass a unit needs before its ratios are trusted.
  double min_weight = 8.0;
  /// Minimum relative change of c_x or s_x before a unit's stats are
  /// rewritten and its priority line re-keyed (hysteresis: steady-state
  /// noise below this never touches the scheduler).
  double rel_epsilon = 0.01;
};

class CostCalibrator {
 public:
  /// `units` and `scheduler` must outlive the calibrator. The static stats
  /// in the unit table are captured as the calibration baseline.
  CostCalibrator(const CalibrationConfig& config, UnitTable* units,
                 Scheduler* scheduler);

  CostCalibrator(const CostCalibrator&) = delete;
  CostCalibrator& operator=(const CostCalibrator&) = delete;

  /// Hot-path tap: one dispatch of `unit` processed `tuples` queue entries,
  /// spent `busy` seconds, and emitted `emitted` root tuples. Covers the
  /// per-tuple, train, and columnar execution paths uniformly (all three
  /// maintain the engine counters these deltas come from).
  void OnDispatch(int unit, int64_t tuples, SimTime busy, int64_t emitted) {
    Acc& acc = acc_[static_cast<size_t>(unit)];
    acc.tuples += static_cast<double>(tuples);
    acc.busy += busy;
    acc.emitted += static_cast<double>(emitted);
  }

  /// Fires an epoch if `period` elapsed: refreshes estimates, rewrites the
  /// stats of units whose estimates moved, notifies the scheduler with the
  /// changed set, decays the accumulators. Returns true when an epoch fired.
  bool MaybeCalibrate(SimTime now);

  int64_t epochs() const { return epochs_; }
  /// Units whose stats were rewritten, summed over all epochs.
  int64_t updates() const { return updates_; }
  /// Rewritten units that had pending work at their epoch — exactly the
  /// per-unit priority re-keys the kinetic policies perform.
  int64_t rekeys() const { return rekeys_; }
  /// Units rewritten by the most recent epoch.
  int64_t last_updated_units() const { return last_updated_units_; }

  /// Current estimates (exposed for tests; before the first trusted epoch
  /// these are the static baselines).
  SimTime EstimatedCost(int unit) const {
    return estimated_cost_[static_cast<size_t>(unit)];
  }
  double EstimatedSelectivity(int unit) const {
    return estimated_selectivity_[static_cast<size_t>(unit)];
  }

  /// Mean |c_est/c_static - 1| over all units as of the last epoch — the
  /// estimated-vs-static cost drift gauge exported via OpenMetrics.
  double MeanAbsCostDrift() const { return cost_drift_; }
  /// Mean |s_est/s_static - 1| over all units as of the last epoch.
  double MeanAbsSelectivityDrift() const { return selectivity_drift_; }

 private:
  struct Acc {
    double tuples = 0.0;
    SimTime busy = 0.0;
    double emitted = 0.0;
  };
  struct Baseline {
    SimTime cost = 0.0;
    double selectivity = 1.0;
    SimTime ideal_time = 0.0;
  };

  CalibrationConfig config_;
  UnitTable* units_;
  Scheduler* scheduler_;
  std::vector<Acc> acc_;
  std::vector<Baseline> baseline_;
  std::vector<SimTime> estimated_cost_;
  std::vector<double> estimated_selectivity_;
  /// Epoch scratch (capacity reserved up front — the epoch path allocates
  /// nothing in steady state).
  std::vector<int> changed_;
  SimTime next_epoch_ = 0.0;
  int64_t epochs_ = 0;
  int64_t updates_ = 0;
  int64_t rekeys_ = 0;
  int64_t last_updated_units_ = 0;
  double cost_drift_ = 0.0;
  double selectivity_drift_ = 0.0;
};

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_CALIBRATION_H_
