// Per-class admission control at the shard router (overload survival).
//
// Under sustained overload the router would otherwise fan every arrival into
// every subscribed shard's ring and let the shard engines queue without
// bound. The admission controller sits in front of the rings and enforces a
// per-window tuple budget, subdivided into *lanes*: one lane per (shard,
// dominant cost class) pair, where the dominant class of a (stream, shard)
// subscription is the query cost class contributing the most expected work
// per arrival of that stream on that shard (precomputed from the plan's
// assumed statistics). Budgets are reallocated at every window boundary,
// DRS-style (see PAPERS.md: Dynamic Resource Scheduling for Real-Time
// Analytics over Fast Streams): each lane's demand is tracked per window,
// smoothed by an EWMA, and the next window's budgets are split
// proportionally to the smoothed demands with a minimum-share floor — heavy
// lanes grow their allocation over a few windows, idle lanes decay toward
// the floor, and no lane starves.
//
// Determinism contract: decisions are a pure function of the admission
// config and the (shard, stream, time) call sequence — which the router
// derives from the global time-ordered arrival table alone. Ring occupancy,
// consumer timing, and thread scheduling never influence an admission
// decision, so a capped sharded run is exactly repeatable.

#ifndef AQSIOS_SCHED_ADMISSION_H_
#define AQSIOS_SCHED_ADMISSION_H_

#include <cstdint>
#include <vector>

#include "common/sim_time.h"
#include "query/plan.h"
#include "sched/shard_router.h"
#include "stream/tuple.h"

namespace aqsios::sched {

struct AdmissionConfig {
  bool enabled = false;
  /// Total tuples admitted per window, summed over all lanes. <= 0 admits
  /// everything (demand is still tracked, nothing is ever dropped).
  int64_t tuples_per_window = 0;
  /// Budget window width in arrival (virtual) seconds.
  SimTime window_seconds = 1.0;
  /// EWMA smoothing factor for per-lane demand: ewma' = α·window_demand +
  /// (1-α)·ewma. Higher α reallocates faster.
  double ewma_alpha = 0.5;
  /// Minimum fraction of the total budget any lane keeps after
  /// reallocation (the DRS anti-starvation floor).
  double min_share = 0.02;
};

class AdmissionController {
 public:
  AdmissionController(const query::GlobalPlan& plan,
                      const ShardAssignment& assignment,
                      const AdmissionConfig& config);

  /// Admission decision for routing one arrival of `stream` at `time` to
  /// `shard`. Call with non-decreasing times (the router walks the
  /// time-ordered table); window boundaries crossed since the last call are
  /// rolled first. Returns false when the arrival's lane has exhausted its
  /// budget for the current window.
  bool Admit(int shard, stream::StreamId stream, SimTime time);

  /// Lane index of a (shard, stream) pair, or -1 when the shard has no
  /// subscription-induced work on the stream (exposed for tests).
  int LaneOf(int shard, stream::StreamId stream) const;

  int num_lanes() const { return static_cast<int>(class_of_lane_.size()); }
  /// Cost class a lane meters (exposed for tests and reports).
  int LaneClass(int lane) const {
    return class_of_lane_[static_cast<size_t>(lane)];
  }
  int LaneShard(int lane) const {
    return shard_of_lane_[static_cast<size_t>(lane)];
  }
  /// Current per-lane budgets (tuples per window).
  const std::vector<int64_t>& budgets() const { return budget_; }

  int64_t offered() const { return offered_; }
  int64_t dropped() const { return dropped_; }
  const std::vector<int64_t>& dropped_per_shard() const {
    return dropped_per_shard_;
  }

 private:
  /// Rolls every window boundary crossed up to `time`: folds the window's
  /// demand into the EWMAs and reallocates budgets.
  void RollWindows(SimTime time);
  /// Splits tuples_per_window across lanes proportional to EWMA demand with
  /// the min-share floor.
  void Reallocate();

  AdmissionConfig config_;
  int num_shards_ = 1;
  /// Lane of (stream, shard), or -1: stream * num_shards + shard.
  std::vector<int> lane_of_;
  std::vector<int> class_of_lane_;
  std::vector<int> shard_of_lane_;

  SimTime window_end_ = 0.0;
  std::vector<int64_t> demand_;    // offered this window, per lane
  std::vector<int64_t> admitted_;  // admitted this window, per lane
  std::vector<double> ewma_;       // smoothed per-window demand, per lane
  std::vector<int64_t> budget_;    // current allocation, per lane

  int64_t offered_ = 0;
  int64_t dropped_ = 0;
  std::vector<int64_t> dropped_per_shard_;
};

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_ADMISSION_H_
