// Chain scheduling (Babcock et al., SIGMOD'03) — the memory-minimizing
// baseline the paper classifies in Table 3.
//
// Chain looks at an operator path's *progress chart*: starting from (0, 1),
// each operator moves the point by (+cost, ×selectivity). The priority of an
// operator is the steepest slope of the chart's lower envelope from that
// operator's input point — i.e. how fast executing forward from here can
// shed queued tuples per unit of processing time. Operators on steep
// segments run first, which provably minimizes the worst-case run-time
// memory for FIFO-within-priority schedules.
//
// Chain optimizes memory, not QoS; the ablation bench contrasts its memory
// footprint and its slowdown against the QoS policies.

#ifndef AQSIOS_SCHED_CHAIN_POLICY_H_
#define AQSIOS_SCHED_CHAIN_POLICY_H_

#include <vector>

#include "query/operator.h"

namespace aqsios::sched {

/// Steepest lower-envelope slope of the progress chart of ops[x..n), with
/// `effective` the per-operator (conditional) selectivities aligned to ops.
/// The chart runs from (0, 1) through (Σc_i, Πs_i) after each operator and
/// ends at 0: tuples emitted at the root depart the system and free their
/// queue slot just like filtered ones. Hence
///
///   slope = max( max_{k >= x} (1 − Π_{i=x..k} s_i) / (Σ_{i=x..k} c_i),
///                1 / Σ_{i=x..n-1} c_i ).
///
/// Unit: shed queued tuples per second of processing.
double ChainEnvelopeSlope(const std::vector<query::OperatorSpec>& ops,
                          const std::vector<double>& effective, int x);

/// Slope for a segment summarized by its aggregate expected cost: executing
/// the whole segment removes the queued tuple (filtered or emitted) after C̄
/// expected seconds, so the queue-drop rate is 1 / C̄. Used for units
/// without an explicit operator chain (join sides, shared groups).
double AggregateSlope(double selectivity, double expected_cost);

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_CHAIN_POLICY_H_
