#include "sched/shard_router.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/check.h"
#include "common/rng.h"
#include "sched/admission.h"

namespace aqsios::sched {

ShardAssignment AssignShards(const query::GlobalPlan& plan, int num_shards,
                             uint64_t seed) {
  AQSIOS_CHECK_GE(num_shards, 1);
  ShardAssignment assignment;
  assignment.num_shards = num_shards;
  assignment.seed = seed;
  assignment.shard_of_query.resize(
      static_cast<size_t>(plan.num_queries()));
  assignment.queries_of_shard.resize(static_cast<size_t>(num_shards));
  for (const query::CompiledQuery& q : plan.queries()) {
    query::QueryId anchor = q.id();
    const int group = plan.SharingGroupOf(q.id());
    if (group >= 0) {
      const std::vector<query::QueryId>& members =
          plan.sharing_groups()[static_cast<size_t>(group)].members;
      anchor = *std::min_element(members.begin(), members.end());
    }
    const int shard = static_cast<int>(
        MixKeys(seed, static_cast<uint64_t>(anchor)) %
        static_cast<uint64_t>(num_shards));
    assignment.shard_of_query[static_cast<size_t>(q.id())] = shard;
    assignment.queries_of_shard[static_cast<size_t>(shard)].push_back(q.id());
  }
  return assignment;
}

ShardRouter::ShardRouter(const query::GlobalPlan& plan,
                         const ShardAssignment& assignment,
                         size_t ring_capacity, const StallPolicy& stall)
    : stall_(stall),
      routed_(static_cast<size_t>(assignment.num_shards), 0),
      dropped_(static_cast<size_t>(assignment.num_shards), 0) {
  AQSIOS_CHECK_EQ(static_cast<size_t>(plan.num_queries()),
                  assignment.shard_of_query.size());
  shards_of_stream_.resize(static_cast<size_t>(plan.num_streams()));
  const auto subscribe = [this, &assignment](stream::StreamId stream,
                                             query::QueryId q) {
    AQSIOS_CHECK_LT(static_cast<size_t>(stream), shards_of_stream_.size());
    shards_of_stream_[static_cast<size_t>(stream)].push_back(
        assignment.shard_of_query[static_cast<size_t>(q)]);
  };
  for (const query::CompiledQuery& q : plan.queries()) {
    const query::QuerySpec& spec = q.spec();
    subscribe(spec.left_stream, q.id());
    if (spec.is_multi_stream()) {
      subscribe(spec.right_stream, q.id());
      for (const query::JoinStage& stage : spec.extra_stages) {
        subscribe(stage.stream, q.id());
      }
    }
  }
  for (std::vector<int>& shards : shards_of_stream_) {
    std::sort(shards.begin(), shards.end());
    shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  }
  rings_.reserve(static_cast<size_t>(assignment.num_shards));
  for (int s = 0; s < assignment.num_shards; ++s) {
    rings_.push_back(
        std::make_unique<SpscRing<stream::Arrival>>(ring_capacity));
  }
}

bool ShardRouter::PushWithBackoff(SpscRing<stream::Arrival>& ring,
                                  const stream::Arrival& arrival) {
  // Phase 1: pure yields. The common full-ring case is a consumer a few
  // entries behind; it drains within a handful of yields.
  for (int spin = 0; spin < stall_.spin_yields; ++spin) {
    if (ring.TryPush(arrival)) return true;
    std::this_thread::yield();
  }
  // Phase 2: sleeps. Bounded CPU burn while a very slow consumer catches
  // up; with drop_on_stall, a consumer still absent after stall_rounds
  // sleeps is treated as wedged and the push abandoned (the caller counts
  // the drop). Without it, sleep indefinitely — lossless, and still not the
  // hot spin the original unbounded yield loop burned a core on.
  int slept = 0;
  while (true) {
    if (ring.TryPush(arrival)) return true;
    if (stall_.drop_on_stall && slept >= stall_.stall_rounds) return false;
    std::this_thread::sleep_for(
        std::chrono::microseconds(stall_.sleep_micros));
    ++slept;
  }
}

void ShardRouter::Route(const stream::ArrivalTable& arrivals) {
  for (const stream::Arrival& arrival : arrivals.arrivals) {
    AQSIOS_DCHECK_LT(static_cast<size_t>(arrival.stream),
                     shards_of_stream_.size());
    for (int shard : shards_of_stream_[static_cast<size_t>(arrival.stream)]) {
      if (admission_ != nullptr &&
          !admission_->Admit(shard, arrival.stream, arrival.time)) {
        continue;
      }
      SpscRing<stream::Arrival>& ring = *rings_[static_cast<size_t>(shard)];
      if (!PushWithBackoff(ring, arrival)) {
        ++dropped_[static_cast<size_t>(shard)];
        continue;
      }
      ++routed_[static_cast<size_t>(shard)];
    }
  }
  for (std::unique_ptr<SpscRing<stream::Arrival>>& ring : rings_) {
    ring->Close();
  }
}

void ShardRouter::Collect(int shard, stream::ArrivalTable* out) {
  SpscRing<stream::Arrival>& ring = *rings_[static_cast<size_t>(shard)];
  stream::Arrival arrival;
  while (true) {
    if (ring.TryPop(&arrival)) {
      out->arrivals.push_back(arrival);
      continue;
    }
    if (ring.closed()) {
      // Close() happens after the last push; once observed, one failed pop
      // means the ring is drained for good.
      if (!ring.TryPop(&arrival)) break;
      out->arrivals.push_back(arrival);
      continue;
    }
    std::this_thread::yield();
  }
}

}  // namespace aqsios::sched
