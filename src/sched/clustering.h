// Priority-domain clustering for the efficient BSD implementation (§6.2.1).
//
// The BSD priority factors into a static part Φ_x = S/(C̄·T²) and a dynamic
// wait time W. Clustering partitions the Φ domain into m ranges; all units
// in a cluster inherit the cluster's pseudo priority, so the scheduler only
// compares m cluster priorities instead of q unit priorities.
//
// Two partitioning schemes are implemented:
//   * uniform     — equal-width ranges (Aurora's approach, the paper's
//                   strawman): the ratio between the largest and smallest
//                   priority inside one cluster is unbounded;
//   * logarithmic — equal-ratio ranges [ε^i, ε^(i+1)) with ε = Δ^(1/m)
//                   (the paper's proposal): the intra-cluster priority ratio
//                   is exactly ε everywhere.

#ifndef AQSIOS_SCHED_CLUSTERING_H_
#define AQSIOS_SCHED_CLUSTERING_H_

#include <string>
#include <vector>

#include "sched/unit.h"

namespace aqsios::sched {

enum class ClusteringKind { kUniform, kLogarithmic };

const char* ClusteringKindName(ClusteringKind kind);

/// A computed partition of the units' Φ domain.
struct Clustering {
  ClusteringKind kind = ClusteringKind::kLogarithmic;
  int num_clusters = 0;
  /// Cluster index of each unit (aligned with the unit table).
  std::vector<int> cluster_of_unit;
  /// Pseudo priority of each cluster: the lower edge of its Φ range (the
  /// paper assigns cluster i the pseudo priority ε^i).
  std::vector<double> pseudo_priority;
  /// Δ = Φ_max / Φ_min over the unit population.
  double delta = 1.0;
  /// For logarithmic clustering, the per-cluster ratio ε = Δ^(1/m).
  double epsilon = 1.0;
  /// Range-edge state retained so a drifted Φ can be re-bucketed later with
  /// the exact arithmetic BuildClustering used (ClusterIndexFor): the domain
  /// floor, the uniform range width, and log ε.
  double phi_min = 0.0;
  double width = 0.0;
  double log_epsilon = 0.0;

  std::string ToString() const;
};

/// Partitions the units into `num_clusters` clusters by their Φ values.
/// Requires at least one unit with Φ > 0.
Clustering BuildClustering(const UnitTable& units, ClusteringKind kind,
                           int num_clusters);

/// The cluster a unit with priority `phi` belongs to under `clustering` —
/// the same floor-and-clamp BuildClustering applied, so a unit whose Φ has
/// not left its range maps to its original cluster bit-for-bit. Φ values
/// outside the original [Φ_min, Φ_max] domain clamp to the edge clusters
/// (the partition is frozen at Attach; calibration drifts Φ, not the edges).
int ClusterIndexFor(const Clustering& clustering, double phi);

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_CLUSTERING_H_
