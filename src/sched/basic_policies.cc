#include "sched/basic_policies.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/check.h"

namespace aqsios::sched {

// --- FCFS -------------------------------------------------------------------

void FcfsScheduler::Attach(const UnitTable* units) {
  units_ = units;
  fifo_.clear();
}

void FcfsScheduler::OnEnqueue(int unit) { fifo_.push_back(unit); }

void FcfsScheduler::OnDequeue(int /*unit*/) {}

void FcfsScheduler::OnBatchDequeue(int unit, int count) {
  // PickNext already popped the head entry's fifo slot; the train consumed
  // this unit's next count-1 entries — its count-1 oldest remaining fifo
  // occurrences, because unit queues are FIFO.
  int remaining = count - 1;
  if (remaining == 0) return;
  for (auto it = fifo_.begin(); it != fifo_.end() && remaining > 0;) {
    if (*it == unit) {
      it = fifo_.erase(it);
      --remaining;
    } else {
      ++it;
    }
  }
  AQSIOS_DCHECK_EQ(remaining, 0) << "fifo out of sync for unit " << unit;
}

bool FcfsScheduler::PickNext(SimTime /*now*/, SchedulingCost* cost,
                             std::vector<int>* out) {
  // O(1) pop, no priority computations or comparisons: charges zero.
  if (fifo_.empty()) return false;
  cost->candidates = 1;
  out->push_back(fifo_.front());
  fifo_.pop_front();
  return true;
}

void FcfsScheduler::ResyncQueues(SimTime /*now*/) {
  // One fifo slot per queued entry, ordered by (arrival index, unit id):
  // the canonical interleaving. Leaf queues are arrival-ordered, so at
  // query-level scheduling this reproduces the true enqueue order.
  std::vector<std::pair<stream::ArrivalId, int>> slots;
  for (const Unit& u : *units_) {
    for (size_t i = 0; i < u.queue.size(); ++i) {
      slots.emplace_back(u.queue.at(i).arrival, u.id);
    }
  }
  std::sort(slots.begin(), slots.end());
  fifo_.clear();
  for (const auto& [arrival, unit] : slots) {
    (void)arrival;
    fifo_.push_back(unit);
  }
}

SchedulerState FcfsScheduler::ExportState() const {
  SchedulerState state;
  state.ints.assign(fifo_.begin(), fifo_.end());
  return state;
}

void FcfsScheduler::ImportState(const SchedulerState& state, SimTime /*now*/) {
  fifo_.assign(state.ints.begin(), state.ints.end());
}

// --- Round Robin -------------------------------------------------------------

void RoundRobinScheduler::Attach(const UnitTable* units) {
  units_ = units;
  ready_.Reset(static_cast<int>(units->size()));
  cursor_ = 0;
}

void RoundRobinScheduler::OnEnqueue(int unit) {
  if ((*units_)[static_cast<size_t>(unit)].queue.size() == 1) {
    ready_.Insert(unit);
  }
}

void RoundRobinScheduler::OnDequeue(int unit) {
  if ((*units_)[static_cast<size_t>(unit)].queue.empty()) {
    ready_.Erase(unit);
  }
}

bool RoundRobinScheduler::PickNext(SimTime /*now*/, SchedulingCost* cost,
                                   std::vector<int>* out) {
  // lower_bound-with-wraparound over the ordered ready set: the first ready
  // unit at or after the cursor is exactly the unit the modular cursor scan
  // would have stopped at. RR computes no priorities, so it charges zero
  // (the paper treats RR's decision overhead as negligible); `candidates`
  // still reports how many units the scan *would* have tested.
  const int n = static_cast<int>(units_->size());
  if (n == 0) return false;
  const int candidate = ready_.FirstCyclic(cursor_);
  if (candidate < 0) return false;
  const int step =
      candidate >= cursor_ ? candidate - cursor_ : candidate + n - cursor_;
  cursor_ = (candidate + 1) % n;
  cost->candidates = step + 1;
  out->push_back(candidate);
  return true;
}

void RoundRobinScheduler::ResyncQueues(SimTime /*now*/) {
  ready_.Reset(static_cast<int>(units_->size()));
  for (const Unit& u : *units_) {
    if (u.has_pending()) ready_.Insert(u.id);
  }
}

SchedulerState RoundRobinScheduler::ExportState() const {
  SchedulerState state;
  state.ints.push_back(cursor_);
  return state;
}

void RoundRobinScheduler::ImportState(const SchedulerState& state,
                                      SimTime now) {
  cursor_ = state.ints.empty() ? 0 : static_cast<int>(state.ints.front());
  ResyncQueues(now);
}

// --- Static priority family (SRPT / HR / HNR) --------------------------------

double StaticPriorityScheduler::PriorityOf(StaticPolicy policy,
                                           const Unit& unit) {
  switch (policy) {
    case StaticPolicy::kSrpt:
      return 1.0 / unit.stats.ideal_time;
    case StaticPolicy::kHr:
      return unit.stats.output_rate;
    case StaticPolicy::kHnr:
      return unit.stats.normalized_rate;
    case StaticPolicy::kChain:
      return unit.stats.chain_slope;
  }
  AQSIOS_CHECK(false) << "unknown static policy";
  return 0.0;
}

const char* StaticPriorityScheduler::name() const {
  switch (policy_) {
    case StaticPolicy::kSrpt:
      return "SRPT";
    case StaticPolicy::kHr:
      return "HR";
    case StaticPolicy::kHnr:
      return "HNR";
    case StaticPolicy::kChain:
      return "Chain";
  }
  return "static";
}

void StaticPriorityScheduler::RebuildRanks() {
  const int n = static_cast<int>(units_->size());
  order_.resize(static_cast<size_t>(n));
  std::iota(order_.begin(), order_.end(), 0);
  std::stable_sort(order_.begin(), order_.end(), [&](int a, int b) {
    return PriorityOf(policy_, (*units_)[static_cast<size_t>(a)]) >
           PriorityOf(policy_, (*units_)[static_cast<size_t>(b)]);
  });
  rank_.assign(static_cast<size_t>(n), 0);
  for (int r = 0; r < n; ++r) rank_[static_cast<size_t>(order_[r])] = r;
}

void StaticPriorityScheduler::Attach(const UnitTable* units) {
  units_ = units;
  RebuildRanks();
  ready_.Reset(static_cast<int>(units->size()));
}

void StaticPriorityScheduler::OnStatsUpdated() {
  RebuildRanks();
  // Ranks changed; rebuild the ready bitmap keyed by the new ranks.
  ready_.Reset(static_cast<int>(units_->size()));
  for (const Unit& unit : *units_) {
    if (unit.has_pending()) {
      ready_.Insert(rank_[static_cast<size_t>(unit.id)]);
    }
  }
}

void StaticPriorityScheduler::ResyncQueues(SimTime /*now*/) {
  // Ranks are stats-derived and untouched; only the readiness bitmap is
  // queue-derived.
  ready_.Reset(static_cast<int>(units_->size()));
  for (const Unit& unit : *units_) {
    if (unit.has_pending()) {
      ready_.Insert(rank_[static_cast<size_t>(unit.id)]);
    }
  }
}

void StaticPriorityScheduler::OnEnqueue(int unit) {
  const Unit& u = (*units_)[static_cast<size_t>(unit)];
  if (u.queue.size() == 1) {
    ready_.Insert(rank_[static_cast<size_t>(unit)]);
  }
}

void StaticPriorityScheduler::OnDequeue(int unit) {
  const Unit& u = (*units_)[static_cast<size_t>(unit)];
  if (u.queue.empty()) {
    ready_.Erase(rank_[static_cast<size_t>(unit)]);
  }
}

bool StaticPriorityScheduler::PickNext(SimTime /*now*/,
                                       SchedulingCost* cost,
                                       std::vector<int>* out) {
  // Priorities are static ranks maintained on enqueue/dequeue; the pick
  // itself is O(1) (lowest ready rank), so the decision charges zero (§6.1).
  if (ready_.empty()) return false;
  const int chosen = order_[static_cast<size_t>(ready_.First())];
  cost->candidates = 1;
  cost->chosen_priority =
      PriorityOf(policy_, (*units_)[static_cast<size_t>(chosen)]);
  out->push_back(chosen);
  return true;
}

// --- LSF ----------------------------------------------------------------------

void LsfScheduler::Attach(const UnitTable* units) {
  units_ = units;
  ready_.clear();
  index_.Reserve(static_cast<int>(units->size()));
}

void LsfScheduler::OnEnqueue(int unit) {
  const Unit& u = (*units_)[static_cast<size_t>(unit)];
  if (u.queue.size() != 1) return;
  if (use_kinetic_) {
    index_.Insert(unit, u.head().arrival_time, u.stats.ideal_time);
  } else {
    ready_.insert(unit);
  }
}

void LsfScheduler::OnDequeue(int unit) {
  const Unit& u = (*units_)[static_cast<size_t>(unit)];
  if (u.queue.empty()) {
    if (use_kinetic_) {
      index_.Erase(unit);
    } else {
      ready_.erase(unit);
    }
  } else if (use_kinetic_) {
    // The head changed: the priority line is anchored at the new head's
    // arrival time (W measures the head tuple's wait).
    index_.Insert(unit, u.head().arrival_time, u.stats.ideal_time);
  }
}

void LsfScheduler::OnStatsUpdated() {
  // The scan reads stats at decision time and adapts automatically; the
  // kinetic index caches line coefficients (1/T slopes) and must re-key.
  if (!use_kinetic_) return;
  index_.Clear();
  for (const Unit& u : *units_) {
    if (u.has_pending()) {
      index_.Insert(u.id, u.head().arrival_time, u.stats.ideal_time);
    }
  }
}

void LsfScheduler::OnCalibratedStats(const std::vector<int>& changed,
                                     SimTime /*now*/) {
  // The scan path reads stats at decision time — nothing cached. The kinetic
  // path re-keys exactly the changed units that are in the index (pending):
  // same anchor (the head wait is untouched by a stats refresh), new 1/T
  // slope. Insert on an existing id rewrites the line and dirty-marks the
  // leaf-to-root path — O(log n) amortized, no Clear.
  if (!use_kinetic_) return;
  for (int unit : changed) {
    const Unit& u = (*units_)[static_cast<size_t>(unit)];
    if (u.has_pending()) {
      index_.Insert(unit, u.head().arrival_time, u.stats.ideal_time);
    }
  }
}

void LsfScheduler::ResyncQueues(SimTime /*now*/) {
  if (use_kinetic_) {
    index_.Clear();
    for (const Unit& u : *units_) {
      if (u.has_pending()) {
        index_.Insert(u.id, u.head().arrival_time, u.stats.ideal_time);
      }
    }
    return;
  }
  ready_.clear();
  for (const Unit& u : *units_) {
    if (u.has_pending()) ready_.insert(u.id);
  }
}

bool LsfScheduler::PickNext(SimTime now, SchedulingCost* cost,
                            std::vector<int>* out) {
  // Either path: the W/T priority is time-varying, so conceptually every
  // pick recomputes and compares the priority of each ready unit; charge
  // both per ready unit so the Figure 13–14 overhead comparisons see the
  // same accounting across scan-based policies, regardless of how few units
  // the kinetic index actually touched in wall-clock terms.
  if (use_kinetic_) {
    if (index_.empty()) return false;
    double best_priority = 0.0;
    const int best = index_.ArgMax(now, &best_priority);
    const int64_t ready = index_.size();
    cost->computations += ready;
    cost->comparisons += ready;
    cost->candidates = ready;
    cost->chosen_priority = best_priority;
    out->push_back(best);
    return true;
  }
  if (ready_.empty()) return false;
  int best = -1;
  double best_priority = -1.0;
  for (int unit : ready_) {
    const Unit& u = (*units_)[static_cast<size_t>(unit)];
    const double priority = u.HeadWait(now) / u.stats.ideal_time;
    ++cost->computations;
    ++cost->comparisons;
    if (priority > best_priority) {
      best_priority = priority;
      best = unit;
    }
  }
  cost->candidates = static_cast<int64_t>(ready_.size());
  cost->chosen_priority = best_priority;
  out->push_back(best);
  return true;
}

// --- Exact BSD ------------------------------------------------------------------

void BsdScheduler::Attach(const UnitTable* units) {
  units_ = units;
  ready_.clear();
  index_.Reserve(static_cast<int>(units->size()));
}

void BsdScheduler::OnEnqueue(int unit) {
  const Unit& u = (*units_)[static_cast<size_t>(unit)];
  if (u.queue.size() != 1) return;
  if (use_kinetic_) {
    index_.Insert(unit, u.head().arrival_time, u.stats.phi);
  } else {
    ready_.insert(unit);
  }
}

void BsdScheduler::OnDequeue(int unit) {
  const Unit& u = (*units_)[static_cast<size_t>(unit)];
  if (u.queue.empty()) {
    if (use_kinetic_) {
      index_.Erase(unit);
    } else {
      ready_.erase(unit);
    }
  } else if (use_kinetic_) {
    index_.Insert(unit, u.head().arrival_time, u.stats.phi);
  }
}

void BsdScheduler::OnStatsUpdated() {
  if (!use_kinetic_) return;
  index_.Clear();
  for (const Unit& u : *units_) {
    if (u.has_pending()) {
      index_.Insert(u.id, u.head().arrival_time, u.stats.phi);
    }
  }
}

void BsdScheduler::OnCalibratedStats(const std::vector<int>& changed,
                                     SimTime /*now*/) {
  // Same targeted re-key as LSF, over the Φ lines.
  if (!use_kinetic_) return;
  for (int unit : changed) {
    const Unit& u = (*units_)[static_cast<size_t>(unit)];
    if (u.has_pending()) {
      index_.Insert(unit, u.head().arrival_time, u.stats.phi);
    }
  }
}

void BsdScheduler::ResyncQueues(SimTime /*now*/) {
  if (use_kinetic_) {
    index_.Clear();
    for (const Unit& u : *units_) {
      if (u.has_pending()) {
        index_.Insert(u.id, u.head().arrival_time, u.stats.phi);
      }
    }
    return;
  }
  ready_.clear();
  for (const Unit& u : *units_) {
    if (u.has_pending()) ready_.insert(u.id);
  }
}

bool BsdScheduler::PickNext(SimTime now, SchedulingCost* cost,
                            std::vector<int>* out) {
  int best = -1;
  double best_priority = -1.0;
  int64_t ready_count = 0;
  if (use_kinetic_) {
    if (index_.empty()) return false;
    best = index_.ArgMax(now, &best_priority);
    ready_count = index_.size();
  } else {
    if (ready_.empty()) return false;
    for (int unit : ready_) {
      const Unit& u = (*units_)[static_cast<size_t>(unit)];
      const double priority = u.stats.phi * u.HeadWait(now);
      if (priority > best_priority) {
        best_priority = priority;
        best = unit;
      }
    }
    ready_count = static_cast<int64_t>(ready_.size());
  }
  // §6.2: a naive implementation recomputes the priority of every installed
  // query's leaf at each scheduling point. The charge models that naive
  // implementation in both pick paths — simulated cost is a property of the
  // policy being simulated, not of how fast this simulator finds the argmax.
  const int64_t touched =
      count_all_units_ ? static_cast<int64_t>(units_->size()) : ready_count;
  cost->computations += touched;
  cost->comparisons += touched;
  cost->candidates = ready_count;
  cost->chosen_priority = best_priority;
  out->push_back(best);
  return true;
}

}  // namespace aqsios::sched
