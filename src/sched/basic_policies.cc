#include "sched/basic_policies.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace aqsios::sched {

// --- FCFS -------------------------------------------------------------------

void FcfsScheduler::Attach(const UnitTable* units) {
  units_ = units;
  fifo_.clear();
}

void FcfsScheduler::OnEnqueue(int unit) { fifo_.push_back(unit); }

void FcfsScheduler::OnDequeue(int /*unit*/) {}

bool FcfsScheduler::PickNext(SimTime /*now*/, SchedulingCost* cost,
                             std::vector<int>* out) {
  // O(1) pop, no priority computations or comparisons: charges zero.
  if (fifo_.empty()) return false;
  cost->candidates = 1;
  out->push_back(fifo_.front());
  fifo_.pop_front();
  return true;
}

// --- Round Robin -------------------------------------------------------------

void RoundRobinScheduler::Attach(const UnitTable* units) {
  units_ = units;
  cursor_ = 0;
}

bool RoundRobinScheduler::PickNext(SimTime /*now*/, SchedulingCost* cost,
                                   std::vector<int>* out) {
  // The cursor scan tests has_pending() but computes no priorities, so RR
  // charges zero (the paper treats RR's decision overhead as negligible).
  const int n = static_cast<int>(units_->size());
  if (n == 0) return false;
  for (int step = 0; step < n; ++step) {
    const int candidate = (cursor_ + step) % n;
    if ((*units_)[static_cast<size_t>(candidate)].has_pending()) {
      cursor_ = (candidate + 1) % n;
      cost->candidates = step + 1;
      out->push_back(candidate);
      return true;
    }
  }
  return false;
}

// --- Static priority family (SRPT / HR / HNR) --------------------------------

double StaticPriorityScheduler::PriorityOf(StaticPolicy policy,
                                           const Unit& unit) {
  switch (policy) {
    case StaticPolicy::kSrpt:
      return 1.0 / unit.stats.ideal_time;
    case StaticPolicy::kHr:
      return unit.stats.output_rate;
    case StaticPolicy::kHnr:
      return unit.stats.normalized_rate;
    case StaticPolicy::kChain:
      return unit.stats.chain_slope;
  }
  AQSIOS_CHECK(false) << "unknown static policy";
  return 0.0;
}

const char* StaticPriorityScheduler::name() const {
  switch (policy_) {
    case StaticPolicy::kSrpt:
      return "SRPT";
    case StaticPolicy::kHr:
      return "HR";
    case StaticPolicy::kHnr:
      return "HNR";
    case StaticPolicy::kChain:
      return "Chain";
  }
  return "static";
}

void StaticPriorityScheduler::RebuildRanks() {
  const int n = static_cast<int>(units_->size());
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return PriorityOf(policy_, (*units_)[static_cast<size_t>(a)]) >
           PriorityOf(policy_, (*units_)[static_cast<size_t>(b)]);
  });
  rank_.assign(static_cast<size_t>(n), 0);
  for (int r = 0; r < n; ++r) rank_[static_cast<size_t>(order[r])] = r;
}

void StaticPriorityScheduler::Attach(const UnitTable* units) {
  units_ = units;
  ready_.clear();
  RebuildRanks();
}

void StaticPriorityScheduler::OnStatsUpdated() {
  RebuildRanks();
  // Ranks changed; rebuild the ready set keyed by the new ranks.
  ready_.clear();
  for (const Unit& unit : *units_) {
    if (unit.has_pending()) {
      ready_.insert({rank_[static_cast<size_t>(unit.id)], unit.id});
    }
  }
}

void StaticPriorityScheduler::OnEnqueue(int unit) {
  const Unit& u = (*units_)[static_cast<size_t>(unit)];
  if (u.queue.size() == 1) {
    ready_.insert({rank_[static_cast<size_t>(unit)], unit});
  }
}

void StaticPriorityScheduler::OnDequeue(int unit) {
  const Unit& u = (*units_)[static_cast<size_t>(unit)];
  if (u.queue.empty()) {
    ready_.erase({rank_[static_cast<size_t>(unit)], unit});
  }
}

bool StaticPriorityScheduler::PickNext(SimTime /*now*/,
                                       SchedulingCost* cost,
                                       std::vector<int>* out) {
  // Priorities are static ranks maintained on enqueue/dequeue; the pick
  // itself is O(1) (set front), so the decision charges zero (§6.1).
  if (ready_.empty()) return false;
  const int chosen = ready_.begin()->second;
  cost->candidates = 1;
  cost->chosen_priority =
      PriorityOf(policy_, (*units_)[static_cast<size_t>(chosen)]);
  out->push_back(chosen);
  return true;
}

// --- LSF ----------------------------------------------------------------------

void LsfScheduler::Attach(const UnitTable* units) {
  units_ = units;
  ready_.clear();
}

void LsfScheduler::OnEnqueue(int unit) {
  if ((*units_)[static_cast<size_t>(unit)].queue.size() == 1) {
    ready_.insert(unit);
  }
}

void LsfScheduler::OnDequeue(int unit) {
  if ((*units_)[static_cast<size_t>(unit)].queue.empty()) {
    ready_.erase(unit);
  }
}

bool LsfScheduler::PickNext(SimTime now, SchedulingCost* cost,
                            std::vector<int>* out) {
  if (ready_.empty()) return false;
  int best = -1;
  double best_priority = -1.0;
  // Like BSD, the W/T priority is time-varying, so every pick recomputes and
  // compares the priority of each ready unit; charge both so the Figure 13–14
  // overhead comparisons see the same accounting across scan-based policies.
  for (int unit : ready_) {
    const Unit& u = (*units_)[static_cast<size_t>(unit)];
    const double priority = u.HeadWait(now) / u.stats.ideal_time;
    ++cost->computations;
    ++cost->comparisons;
    if (priority > best_priority) {
      best_priority = priority;
      best = unit;
    }
  }
  cost->candidates = static_cast<int64_t>(ready_.size());
  cost->chosen_priority = best_priority;
  out->push_back(best);
  return true;
}

// --- Exact BSD ------------------------------------------------------------------

void BsdScheduler::Attach(const UnitTable* units) {
  units_ = units;
  ready_.clear();
}

void BsdScheduler::OnEnqueue(int unit) {
  if ((*units_)[static_cast<size_t>(unit)].queue.size() == 1) {
    ready_.insert(unit);
  }
}

void BsdScheduler::OnDequeue(int unit) {
  if ((*units_)[static_cast<size_t>(unit)].queue.empty()) {
    ready_.erase(unit);
  }
}

bool BsdScheduler::PickNext(SimTime now, SchedulingCost* cost,
                            std::vector<int>* out) {
  if (ready_.empty()) return false;
  int best = -1;
  double best_priority = -1.0;
  for (int unit : ready_) {
    const Unit& u = (*units_)[static_cast<size_t>(unit)];
    const double priority = u.stats.phi * u.HeadWait(now);
    if (priority > best_priority) {
      best_priority = priority;
      best = unit;
    }
  }
  // §6.2: a naive implementation recomputes the priority of every installed
  // query's leaf at each scheduling point.
  const int64_t touched = count_all_units_
                              ? static_cast<int64_t>(units_->size())
                              : static_cast<int64_t>(ready_.size());
  cost->computations += touched;
  cost->comparisons += touched;
  cost->candidates = static_cast<int64_t>(ready_.size());
  cost->chosen_priority = best_priority;
  out->push_back(best);
  return true;
}

}  // namespace aqsios::sched
