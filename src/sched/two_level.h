// Aurora's two-level scheduling scheme (§10, [9]): Round-Robin across
// queries, rate-based ordering of operators *within* the selected query.
//
// At query-level granularity this degenerates to plain Round-Robin (a
// selected query's whole chain runs pipelined anyway); the interesting case
// is operator-level scheduling, where each query may have several operators
// with pending tuples and the inner level picks the one with the highest
// local output rate (RB, [23]).

#ifndef AQSIOS_SCHED_TWO_LEVEL_H_
#define AQSIOS_SCHED_TWO_LEVEL_H_

#include <vector>

#include "sched/scheduler.h"

namespace aqsios::sched {

class TwoLevelRrScheduler : public Scheduler {
 public:
  void Attach(const UnitTable* units) override;
  void OnEnqueue(int unit) override;
  void OnDequeue(int unit) override;
  /// One counter update for the whole train.
  void OnBatchDequeue(int unit, int count) override;
  bool PickNext(SimTime now, SchedulingCost* cost,
                std::vector<int>* out) override;
  /// Re-sorts the inner rate-based orders from refreshed stats.
  void OnStatsUpdated() override;
  /// Recounts per-query pending tuples from the member queues.
  void ResyncQueues(SimTime now) override;
  /// The outer round-robin cursor survives export/import.
  SchedulerState ExportState() const override;
  void ImportState(const SchedulerState& state, SimTime now) override;
  const char* name() const override { return "RR+RB"; }

 private:
  const UnitTable* units_ = nullptr;
  /// Unit ids of each query, in descending segment output rate (the inner
  /// rate-based order).
  std::vector<std::vector<int>> units_of_query_;
  /// Pending-tuple count per query (outer-level readiness).
  std::vector<int64_t> pending_of_query_;
  int cursor_ = 0;
};

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_TWO_LEVEL_H_
