// A dense ordered ready-set over unit ids [0, n).
//
// The cursor/rank-ordered schedulers (RR, the static-priority family) only
// ever need three operations on their ready set: membership updates, "first
// ready id", and "first ready id at or after a cursor, wrapping around".
// A bitmap with find-first-set gives all three in a handful of word
// operations with zero allocation — unlike std::set, whose per-insert node
// allocation dominates the pick path at simulation rates (~10^6 decisions
// per sweep cell). Iteration order (ascending id) matches std::set<int>, so
// swapping it in preserves every pick sequence bit for bit.

#ifndef AQSIOS_SCHED_READY_SET_H_
#define AQSIOS_SCHED_READY_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aqsios::sched {

class OrderedReadySet {
 public:
  /// Resets to the empty set over the id universe [0, n).
  void Reset(int n) {
    n_ = n;
    count_ = 0;
    words_.assign(static_cast<size_t>((n + 63) / 64), 0);
  }

  void Insert(int id) {
    uint64_t& word = words_[static_cast<size_t>(id >> 6)];
    const uint64_t bit = 1ull << (id & 63);
    count_ += (word & bit) == 0;
    word |= bit;
  }

  void Erase(int id) {
    uint64_t& word = words_[static_cast<size_t>(id >> 6)];
    const uint64_t bit = 1ull << (id & 63);
    count_ -= (word & bit) != 0;
    word &= ~bit;
  }

  bool Contains(int id) const {
    return (words_[static_cast<size_t>(id >> 6)] >> (id & 63)) & 1;
  }

  bool empty() const { return count_ == 0; }
  int count() const { return count_; }

  /// Smallest member, or -1 when empty.
  int First() const { return FirstAtOrAfter(0); }

  /// Smallest member >= from, or -1 when there is none.
  int FirstAtOrAfter(int from) const {
    if (count_ == 0 || from >= n_) return -1;
    size_t w = static_cast<size_t>(from >> 6);
    uint64_t word = words_[w] & (~0ull << (from & 63));
    while (true) {
      if (word != 0) {
        return static_cast<int>(w * 64) + __builtin_ctzll(word);
      }
      if (++w == words_.size()) return -1;
      word = words_[w];
    }
  }

  /// Smallest member >= from, wrapping to First() past the end; -1 when
  /// empty. This is exactly the order a modular cursor scan visits ids in.
  int FirstCyclic(int from) const {
    const int at_or_after = FirstAtOrAfter(from);
    return at_or_after >= 0 ? at_or_after : First();
  }

 private:
  int n_ = 0;
  int count_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_READY_SET_H_
