#include "sched/policy.h"

#include <algorithm>
#include <cctype>

#include "common/check.h"
#include "sched/basic_policies.h"
#include "sched/lp_norm_policy.h"
#include "sched/two_level.h"

namespace aqsios::sched {

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFcfs:
      return "FCFS";
    case PolicyKind::kRoundRobin:
      return "RR";
    case PolicyKind::kSrpt:
      return "SRPT";
    case PolicyKind::kHr:
      return "HR";
    case PolicyKind::kHnr:
      return "HNR";
    case PolicyKind::kLsf:
      return "LSF";
    case PolicyKind::kBsd:
      return "BSD";
    case PolicyKind::kBsdClustered:
      return "BSD-Clustered";
    case PolicyKind::kChain:
      return "Chain";
    case PolicyKind::kTwoLevelRr:
      return "RR+RB";
    case PolicyKind::kLpNorm:
      return "Lp-SD";
    case PolicyKind::kQosGraph:
      return "QoS-Graph";
  }
  return "unknown";
}

StatusOr<PolicyKind> ParsePolicyKind(const std::string& text) {
  std::string lower = text;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "fcfs") return PolicyKind::kFcfs;
  if (lower == "rr" || lower == "roundrobin") return PolicyKind::kRoundRobin;
  if (lower == "srpt") return PolicyKind::kSrpt;
  if (lower == "hr") return PolicyKind::kHr;
  if (lower == "hnr") return PolicyKind::kHnr;
  if (lower == "lsf") return PolicyKind::kLsf;
  if (lower == "bsd") return PolicyKind::kBsd;
  if (lower == "bsd-clustered" || lower == "bsdclustered") {
    return PolicyKind::kBsdClustered;
  }
  if (lower == "chain") return PolicyKind::kChain;
  if (lower == "rr-rb" || lower == "rrrb") return PolicyKind::kTwoLevelRr;
  if (lower == "lp") return PolicyKind::kLpNorm;
  if (lower == "qos-graph" || lower == "qosgraph") {
    return PolicyKind::kQosGraph;
  }
  return Status::InvalidArgument("unknown policy: " + text);
}

std::unique_ptr<Scheduler> CreateScheduler(const PolicyConfig& config) {
  switch (config.kind) {
    case PolicyKind::kFcfs:
      return std::make_unique<FcfsScheduler>();
    case PolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case PolicyKind::kSrpt:
      return std::make_unique<StaticPriorityScheduler>(StaticPolicy::kSrpt);
    case PolicyKind::kHr:
      return std::make_unique<StaticPriorityScheduler>(StaticPolicy::kHr);
    case PolicyKind::kHnr:
      return std::make_unique<StaticPriorityScheduler>(StaticPolicy::kHnr);
    case PolicyKind::kLsf:
      return std::make_unique<LsfScheduler>(config.use_kinetic_index);
    case PolicyKind::kBsd:
      return std::make_unique<BsdScheduler>(config.bsd_count_all_units,
                                            config.use_kinetic_index);
    case PolicyKind::kBsdClustered:
      return std::make_unique<ClusteredBsdScheduler>(config.clustered);
    case PolicyKind::kChain:
      return std::make_unique<StaticPriorityScheduler>(StaticPolicy::kChain);
    case PolicyKind::kTwoLevelRr:
      return std::make_unique<TwoLevelRrScheduler>();
    case PolicyKind::kLpNorm:
      return std::make_unique<LpNormScheduler>(config.lp_norm_p);
    case PolicyKind::kQosGraph:
      return std::make_unique<QosGraphScheduler>(config.qos_graph);
  }
  AQSIOS_CHECK(false) << "unknown policy kind";
  return nullptr;
}

}  // namespace aqsios::sched
