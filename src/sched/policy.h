// Policy configuration and scheduler factory.

#ifndef AQSIOS_SCHED_POLICY_H_
#define AQSIOS_SCHED_POLICY_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "sched/clustered_bsd.h"
#include "sched/qos_graph.h"
#include "sched/scheduler.h"

namespace aqsios::sched {

enum class PolicyKind {
  kFcfs,
  kRoundRobin,  // Aurora's two-level RR(+rate-based) scheme
  kSrpt,
  kHr,
  kHnr,
  kLsf,
  kBsd,           // exact scan-based BSD
  kBsdClustered,  // clustered BSD implementation (§6.2)
  kChain,         // memory-minimizing baseline (Table 3, [5])
  kTwoLevelRr,    // Aurora's RR-across-queries + rate-based-within (§10)
  kLpNorm,        // generalized lp-norm slowdown policy (p in `lp_norm_p`)
  kQosGraph,      // Aurora's QoS-graph-driven scheduler (§10, [9])
};

const char* PolicyKindName(PolicyKind kind);

/// Parses "fcfs", "rr", "srpt", "hr", "hnr", "lsf", "bsd", "bsd-clustered",
/// "chain", "rr-rb", "lp" (case-insensitive).
StatusOr<PolicyKind> ParsePolicyKind(const std::string& text);

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kHnr;
  /// Options for kBsdClustered.
  ClusteredBsdOptions clustered;
  /// For kBsd: whether the overhead accounting touches all q units (the
  /// naive implementation of §6.2) or only ready ones.
  bool bsd_count_all_units = true;
  /// For kLpNorm: the norm exponent p (1 = HNR, 2 = BSD).
  double lp_norm_p = 2.0;
  /// For kQosGraph: the default utility-graph shape.
  QosGraphOptions qos_graph;
  /// For kLsf/kBsd (kBsdClustered carries its own copy in `clustered`):
  /// answer picks from the kinetic tournament index instead of the naive
  /// O(ready) scan. Wall-clock only — decisions, QoS results, and simulated
  /// SchedulingCost charges are bit-identical either way (pinned by
  /// tests/sched_kinetic_index_test.cc).
  bool use_kinetic_index = true;

  static PolicyConfig Of(PolicyKind kind) {
    PolicyConfig config;
    config.kind = kind;
    return config;
  }
};

std::unique_ptr<Scheduler> CreateScheduler(const PolicyConfig& config);

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_POLICY_H_
