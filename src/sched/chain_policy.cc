#include "sched/chain_policy.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace aqsios::sched {

double ChainEnvelopeSlope(const std::vector<query::OperatorSpec>& ops,
                          const std::vector<double>& effective, int x) {
  AQSIOS_CHECK_EQ(ops.size(), effective.size());
  AQSIOS_CHECK_GE(x, 0);
  AQSIOS_CHECK_LT(static_cast<size_t>(x), ops.size());
  double selectivity = 1.0;
  double cost = 0.0;
  double best = std::numeric_limits<double>::lowest();
  for (size_t k = static_cast<size_t>(x); k < ops.size(); ++k) {
    selectivity *= effective[k];
    cost += ops[k].cost();
    best = std::max(best, (1.0 - selectivity) / cost);
  }
  // Terminal departure: survivors of the whole segment are emitted at the
  // root and leave the system, dropping the chart to 0.
  best = std::max(best, 1.0 / cost);
  return best;
}

double AggregateSlope(double selectivity, double expected_cost) {
  AQSIOS_CHECK_GT(expected_cost, 0.0);
  (void)selectivity;  // every queued tuple departs, filtered or emitted
  return 1.0 / expected_cost;
}

}  // namespace aqsios::sched
