// The non-clustered scheduling policies: FCFS, RR (Aurora-style), the static
// priority family (SRPT / HR / HNR), LSF, and the exact (scan-based) BSD.
//
// Priorities (paper Eq. 3–6):
//   SRPT:  1 / T           — shortest ideal processing time first
//   HR:    S / C̄           — highest global output rate first
//   HNR:   S / (C̄·T)       — highest normalized rate first
//   LSF:   W / T           — longest current stretch first
//   BSD:   (S / (C̄·T²))·W  — balance slowdown
//
// LSF and BSD have time-varying priorities; by default they answer each pick
// from a KineticIndex (O(log n) amortized wall-clock) instead of the naive
// O(n) scan. The two implementations return bit-identical decisions and
// charge identical simulated SchedulingCost — the flag only changes how fast
// the simulator itself runs (see docs/performance.md).

#ifndef AQSIOS_SCHED_BASIC_POLICIES_H_
#define AQSIOS_SCHED_BASIC_POLICIES_H_

#include <deque>
#include <set>
#include <vector>

#include "sched/kinetic_index.h"
#include "sched/ready_set.h"
#include "sched/scheduler.h"

namespace aqsios::sched {

/// First-come-first-served over system arrival order. Entries are served in
/// global enqueue order, which coincides with arrival order for leaf queues.
class FcfsScheduler : public Scheduler {
 public:
  void Attach(const UnitTable* units) override;
  void OnEnqueue(int unit) override;
  void OnDequeue(int unit) override;
  /// A train consumed `count - 1` entries beyond the one PickNext popped
  /// from the fifo; their fifo occurrences must be retired too.
  void OnBatchDequeue(int unit, int count) override;
  bool PickNext(SimTime now, SchedulingCost* cost,
                std::vector<int>* out) override;
  const char* name() const override { return "FCFS"; }
  /// Rebuilds the fifo canonically: all queued entries ordered by (arrival
  /// index, unit id). Coincides with true enqueue order for leaf queues.
  void ResyncQueues(SimTime now) override;
  /// The fifo order itself is state a resync can't always reproduce
  /// (operator-level internal queues enqueue in execution order, not arrival
  /// order), so export carries it verbatim.
  SchedulerState ExportState() const override;
  void ImportState(const SchedulerState& state, SimTime now) override;

 private:
  const UnitTable* units_ = nullptr;
  std::deque<int> fifo_;
};

/// Aurora's two-level scheme reduced to the unit level: Round-Robin across
/// units with pending tuples. (Within a unit, execution is the pipelined
/// rate-based segment run, which at query-level granularity is the whole
/// query — matching the RR/RB combination the paper compares against.)
///
/// The pick is an ordered-ready-set lower_bound with wraparound rather than
/// a modular cursor scan; the visit order — and therefore the pick sequence
/// and the reported candidates count — is identical to the scan's.
class RoundRobinScheduler : public Scheduler {
 public:
  void Attach(const UnitTable* units) override;
  void OnEnqueue(int unit) override;
  void OnDequeue(int unit) override;
  /// Readiness depends only on the final queue state: reconcile once.
  void OnBatchDequeue(int unit, int /*count*/) override { OnDequeue(unit); }
  bool PickNext(SimTime now, SchedulingCost* cost,
                std::vector<int>* out) override;
  const char* name() const override { return "RR"; }
  void ResyncQueues(SimTime now) override;
  /// The round-robin cursor survives export/import; readiness is resynced.
  SchedulerState ExportState() const override;
  void ImportState(const SchedulerState& state, SimTime now) override;

 private:
  const UnitTable* units_ = nullptr;
  OrderedReadySet ready_;
  int cursor_ = 0;
};

/// Which static priority a StaticPriorityScheduler orders by. kChain is the
/// memory-minimizing baseline (progress-chart envelope slope, see
/// sched/chain_policy.h).
enum class StaticPolicy { kSrpt, kHr, kHnr, kChain };

/// Serves the ready unit with the highest static priority. Ranks are unique
/// per unit, so the ready set is a bitmap over ranks: O(1)-ish per event,
/// allocation-free, same pick order as the rank-ordered std::set it
/// replaced.
class StaticPriorityScheduler : public Scheduler {
 public:
  explicit StaticPriorityScheduler(StaticPolicy policy) : policy_(policy) {}

  void Attach(const UnitTable* units) override;
  void OnEnqueue(int unit) override;
  void OnDequeue(int unit) override;
  /// Readiness depends only on the final queue state: reconcile once.
  void OnBatchDequeue(int unit, int /*count*/) override { OnDequeue(unit); }
  bool PickNext(SimTime now, SchedulingCost* cost,
                std::vector<int>* out) override;
  /// Re-ranks all units by their refreshed stats, preserving queue state.
  void OnStatsUpdated() override;
  void ResyncQueues(SimTime now) override;
  const char* name() const override;
  /// Static priorities are their own shed ranking: shedding drops the units
  /// this policy would serve last.
  double ShedPriority(const Unit& unit) const override {
    return PriorityOf(policy_, unit);
  }

  /// The priority value this policy assigns to `unit` (exposed for tests).
  static double PriorityOf(StaticPolicy policy, const Unit& unit);

 private:
  void RebuildRanks();

  StaticPolicy policy_;
  const UnitTable* units_ = nullptr;
  /// rank[unit] = position in descending priority order (ties by id).
  std::vector<int> rank_;
  /// order[rank] = unit — the inverse permutation of rank_.
  std::vector<int> order_;
  /// Ready units as a bitmap over ranks; First() is the highest-priority
  /// ready unit.
  OrderedReadySet ready_;
};

/// Longest Stretch First (Eq. 5): max W/T among ready units. The ordering is
/// time-varying; picks are answered by a kinetic index (default) or the
/// naive per-pick scan — identical results either way.
class LsfScheduler : public Scheduler {
 public:
  explicit LsfScheduler(bool use_kinetic_index = true)
      : use_kinetic_(use_kinetic_index) {}

  void Attach(const UnitTable* units) override;
  void OnEnqueue(int unit) override;
  void OnDequeue(int unit) override;
  /// One erase-or-re-key on the post-train head instead of `count`
  /// intermediate kinetic re-keys — the once-per-batch priority update.
  void OnBatchDequeue(int unit, int /*count*/) override { OnDequeue(unit); }
  void OnStatsUpdated() override;
  /// Targeted calibration path: re-keys only the changed units' priority
  /// lines (new 1/T slopes, unchanged anchors) through the kinetic index's
  /// Insert-on-existing-id + dirty-marking — O(log n) amortized per changed
  /// unit, never a Clear. The scan path reads stats live and needs nothing.
  void OnCalibratedStats(const std::vector<int>& changed,
                         SimTime now) override;
  void ResyncQueues(SimTime now) override;
  bool PickNext(SimTime now, SchedulingCost* cost,
                std::vector<int>* out) override;
  const char* name() const override { return "LSF"; }
  /// W/T grows at 1/T per second of wait: shed the slowest-stretching
  /// sources first.
  double ShedPriority(const Unit& unit) const override {
    return unit.stats.ideal_time > 0.0 ? 1.0 / unit.stats.ideal_time : 0.0;
  }

  /// Test introspection: the kinetic index (clears/recompute counters).
  const KineticIndex& index() const { return index_; }

 private:
  bool use_kinetic_;
  const UnitTable* units_ = nullptr;
  /// Scan path only; the kinetic path keeps readiness in the index.
  std::set<int> ready_;
  KineticIndex index_{KineticIndex::EvalMode::kRatio};
};

/// Exact Balance Slowdown (Eq. 6): max Φ·W. `count_all_units` selects the
/// naive-implementation accounting the paper describes in §6.2 (the
/// scheduler touches all q units at every scheduling point); otherwise only
/// ready units are counted. The *hypothetical* BSD of §9.2 is this scheduler
/// with engine-side overhead charging disabled. Like LSF, the pick itself is
/// kinetic by default; the simulated charges are unaffected.
class BsdScheduler : public Scheduler {
 public:
  explicit BsdScheduler(bool count_all_units = true,
                        bool use_kinetic_index = true)
      : count_all_units_(count_all_units), use_kinetic_(use_kinetic_index) {}

  void Attach(const UnitTable* units) override;
  void OnEnqueue(int unit) override;
  void OnDequeue(int unit) override;
  /// One erase-or-re-key on the post-train head instead of `count`
  /// intermediate kinetic re-keys — the once-per-batch priority update.
  void OnBatchDequeue(int unit, int /*count*/) override { OnDequeue(unit); }
  void OnStatsUpdated() override;
  /// Targeted calibration path: re-keys only the changed units' Φ lines —
  /// see LsfScheduler::OnCalibratedStats.
  void OnCalibratedStats(const std::vector<int>& changed,
                         SimTime now) override;
  void ResyncQueues(SimTime now) override;
  bool PickNext(SimTime now, SchedulingCost* cost,
                std::vector<int>* out) override;
  const char* name() const override { return "BSD"; }
  /// Φ·W grows at Φ per second of wait: shed the lowest-Φ sources first.
  double ShedPriority(const Unit& unit) const override {
    return unit.stats.phi;
  }

  /// Test introspection: the kinetic index (clears/recompute counters).
  const KineticIndex& index() const { return index_; }

 private:
  bool count_all_units_;
  bool use_kinetic_;
  const UnitTable* units_ = nullptr;
  /// Scan path only; the kinetic path keeps readiness in the index.
  std::set<int> ready_;
  KineticIndex index_{KineticIndex::EvalMode::kScaled};
};

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_BASIC_POLICIES_H_
