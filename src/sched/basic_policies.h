// The non-clustered scheduling policies: FCFS, RR (Aurora-style), the static
// priority family (SRPT / HR / HNR), LSF, and the exact (scan-based) BSD.
//
// Priorities (paper Eq. 3–6):
//   SRPT:  1 / T           — shortest ideal processing time first
//   HR:    S / C̄           — highest global output rate first
//   HNR:   S / (C̄·T)       — highest normalized rate first
//   LSF:   W / T           — longest current stretch first
//   BSD:   (S / (C̄·T²))·W  — balance slowdown

#ifndef AQSIOS_SCHED_BASIC_POLICIES_H_
#define AQSIOS_SCHED_BASIC_POLICIES_H_

#include <deque>
#include <set>
#include <utility>
#include <vector>

#include "sched/scheduler.h"

namespace aqsios::sched {

/// First-come-first-served over system arrival order. Entries are served in
/// global enqueue order, which coincides with arrival order for leaf queues.
class FcfsScheduler : public Scheduler {
 public:
  void Attach(const UnitTable* units) override;
  void OnEnqueue(int unit) override;
  void OnDequeue(int unit) override;
  bool PickNext(SimTime now, SchedulingCost* cost,
                std::vector<int>* out) override;
  const char* name() const override { return "FCFS"; }

 private:
  const UnitTable* units_ = nullptr;
  std::deque<int> fifo_;
};

/// Aurora's two-level scheme reduced to the unit level: Round-Robin across
/// units with pending tuples. (Within a unit, execution is the pipelined
/// rate-based segment run, which at query-level granularity is the whole
/// query — matching the RR/RB combination the paper compares against.)
class RoundRobinScheduler : public Scheduler {
 public:
  void Attach(const UnitTable* units) override;
  void OnEnqueue(int /*unit*/) override {}
  void OnDequeue(int /*unit*/) override {}
  bool PickNext(SimTime now, SchedulingCost* cost,
                std::vector<int>* out) override;
  const char* name() const override { return "RR"; }

 private:
  const UnitTable* units_ = nullptr;
  int cursor_ = 0;
};

/// Which static priority a StaticPriorityScheduler orders by. kChain is the
/// memory-minimizing baseline (progress-chart envelope slope, see
/// sched/chain_policy.h).
enum class StaticPolicy { kSrpt, kHr, kHnr, kChain };

/// Serves the ready unit with the highest static priority. O(log n) per
/// event via a rank-ordered ready set.
class StaticPriorityScheduler : public Scheduler {
 public:
  explicit StaticPriorityScheduler(StaticPolicy policy) : policy_(policy) {}

  void Attach(const UnitTable* units) override;
  void OnEnqueue(int unit) override;
  void OnDequeue(int unit) override;
  bool PickNext(SimTime now, SchedulingCost* cost,
                std::vector<int>* out) override;
  /// Re-ranks all units by their refreshed stats, preserving queue state.
  void OnStatsUpdated() override;
  const char* name() const override;

  /// The priority value this policy assigns to `unit` (exposed for tests).
  static double PriorityOf(StaticPolicy policy, const Unit& unit);

 private:
  void RebuildRanks();

  StaticPolicy policy_;
  const UnitTable* units_ = nullptr;
  /// rank[unit] = position in descending priority order (ties by id).
  std::vector<int> rank_;
  /// Ready units keyed by rank; begin() is the highest-priority ready unit.
  std::set<std::pair<int, int>> ready_;
};

/// Longest Stretch First (Eq. 5): max W/T among ready units. The ordering is
/// time-varying, so each pick scans the ready set.
class LsfScheduler : public Scheduler {
 public:
  void Attach(const UnitTable* units) override;
  void OnEnqueue(int unit) override;
  void OnDequeue(int unit) override;
  bool PickNext(SimTime now, SchedulingCost* cost,
                std::vector<int>* out) override;
  const char* name() const override { return "LSF"; }

 private:
  const UnitTable* units_ = nullptr;
  std::set<int> ready_;
};

/// Exact Balance Slowdown (Eq. 6): max Φ·W. `count_all_units` selects the
/// naive-implementation accounting the paper describes in §6.2 (the
/// scheduler touches all q units at every scheduling point); otherwise only
/// ready units are counted. The *hypothetical* BSD of §9.2 is this scheduler
/// with engine-side overhead charging disabled.
class BsdScheduler : public Scheduler {
 public:
  explicit BsdScheduler(bool count_all_units = true)
      : count_all_units_(count_all_units) {}

  void Attach(const UnitTable* units) override;
  void OnEnqueue(int unit) override;
  void OnDequeue(int unit) override;
  bool PickNext(SimTime now, SchedulingCost* cost,
                std::vector<int>* out) override;
  const char* name() const override { return "BSD"; }

 private:
  bool count_all_units_;
  const UnitTable* units_ = nullptr;
  std::set<int> ready_;
};

}  // namespace aqsios::sched

#endif  // AQSIOS_SCHED_BASIC_POLICIES_H_
