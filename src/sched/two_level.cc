#include "sched/two_level.h"

#include <algorithm>

#include "common/check.h"

namespace aqsios::sched {

void TwoLevelRrScheduler::Attach(const UnitTable* units) {
  units_ = units;
  units_of_query_.clear();
  cursor_ = 0;
  int max_query = -1;
  for (const Unit& unit : *units) {
    max_query = std::max(max_query, static_cast<int>(unit.query));
  }
  units_of_query_.resize(static_cast<size_t>(max_query + 1));
  pending_of_query_.assign(static_cast<size_t>(max_query + 1), 0);
  for (const Unit& unit : *units) {
    units_of_query_[static_cast<size_t>(unit.query)].push_back(unit.id);
  }
  OnStatsUpdated();
}

void TwoLevelRrScheduler::OnStatsUpdated() {
  // Inner level: rate-based (RB) order — highest segment output rate first.
  for (auto& unit_ids : units_of_query_) {
    std::stable_sort(unit_ids.begin(), unit_ids.end(), [this](int a, int b) {
      return (*units_)[static_cast<size_t>(a)].stats.output_rate >
             (*units_)[static_cast<size_t>(b)].stats.output_rate;
    });
  }
}

void TwoLevelRrScheduler::OnEnqueue(int unit) {
  ++pending_of_query_[static_cast<size_t>(
      (*units_)[static_cast<size_t>(unit)].query)];
}

void TwoLevelRrScheduler::OnDequeue(int unit) {
  int64_t& pending = pending_of_query_[static_cast<size_t>(
      (*units_)[static_cast<size_t>(unit)].query)];
  --pending;
  AQSIOS_DCHECK_GE(pending, 0);
}

void TwoLevelRrScheduler::OnBatchDequeue(int unit, int count) {
  int64_t& pending = pending_of_query_[static_cast<size_t>(
      (*units_)[static_cast<size_t>(unit)].query)];
  pending -= count;
  AQSIOS_DCHECK_GE(pending, 0);
}

void TwoLevelRrScheduler::ResyncQueues(SimTime /*now*/) {
  std::fill(pending_of_query_.begin(), pending_of_query_.end(), 0);
  for (const Unit& unit : *units_) {
    pending_of_query_[static_cast<size_t>(unit.query)] +=
        static_cast<int64_t>(unit.queue.size());
  }
}

SchedulerState TwoLevelRrScheduler::ExportState() const {
  SchedulerState state;
  state.ints.push_back(cursor_);
  return state;
}

void TwoLevelRrScheduler::ImportState(const SchedulerState& state,
                                      SimTime now) {
  cursor_ = state.ints.empty() ? 0 : static_cast<int>(state.ints.front());
  ResyncQueues(now);
}

bool TwoLevelRrScheduler::PickNext(SimTime /*now*/, SchedulingCost* cost,
                                   std::vector<int>* out) {
  const int num_queries = static_cast<int>(units_of_query_.size());
  if (num_queries == 0) return false;
  for (int step = 0; step < num_queries; ++step) {
    const int query = (cursor_ + step) % num_queries;
    if (pending_of_query_[static_cast<size_t>(query)] == 0) continue;
    // Inner rate-based pass over this query's ready operators.
    for (int unit : units_of_query_[static_cast<size_t>(query)]) {
      if ((*units_)[static_cast<size_t>(unit)].has_pending()) {
        cursor_ = (query + 1) % num_queries;
        cost->candidates = step + 1;
        cost->chosen_priority =
            (*units_)[static_cast<size_t>(unit)].stats.output_rate;
        out->push_back(unit);
        return true;
      }
    }
    AQSIOS_DCHECK(false) << "pending count out of sync for query " << query;
  }
  return false;
}

}  // namespace aqsios::sched
