#include "metrics/timeline.h"

#include <cmath>

#include "common/check.h"

namespace aqsios::metrics {

TimelineCollector::TimelineCollector(SimTime bucket_width)
    : bucket_width_(bucket_width) {
  AQSIOS_CHECK_GT(bucket_width, 0.0);
}

void TimelineCollector::Record(SimTime arrival_time, double value) {
  AQSIOS_CHECK_GE(arrival_time, 0.0);
  const size_t index =
      static_cast<size_t>(std::floor(arrival_time / bucket_width_));
  if (index >= buckets_.size()) buckets_.resize(index + 1);
  buckets_[index].Add(value);
}

const aqsios::RunningStats& TimelineCollector::Bucket(int i) const {
  AQSIOS_CHECK_GE(i, 0);
  AQSIOS_CHECK_LT(i, num_buckets());
  return buckets_[static_cast<size_t>(i)];
}

std::vector<double> TimelineCollector::MeanSeries() const {
  std::vector<double> series;
  series.reserve(buckets_.size());
  for (const auto& bucket : buckets_) series.push_back(bucket.Mean());
  return series;
}

std::vector<double> TimelineCollector::MaxSeries() const {
  std::vector<double> series;
  series.reserve(buckets_.size());
  for (const auto& bucket : buckets_) series.push_back(bucket.Max());
  return series;
}

}  // namespace aqsios::metrics
