#include "metrics/timeline.h"

#include <cmath>

#include "common/check.h"

namespace aqsios::metrics {

TimelineCollector::TimelineCollector(SimTime bucket_width)
    : bucket_width_(bucket_width) {
  AQSIOS_CHECK_GT(bucket_width, 0.0);
}

void TimelineCollector::Record(SimTime arrival_time, double value) {
  AQSIOS_CHECK_GE(arrival_time, 0.0);
  // Clamp before the cast: converting an out-of-range double to size_t is
  // undefined, so a pathological arrival time must be caught while still a
  // double.
  const double scaled = std::floor(arrival_time / bucket_width_);
  const size_t index = scaled >= static_cast<double>(kMaxBuckets)
                           ? static_cast<size_t>(kMaxBuckets) - 1
                           : static_cast<size_t>(scaled);
  if (index >= buckets_.size()) buckets_.resize(index + 1);
  buckets_[index].Add(value);
}

void TimelineCollector::Merge(const TimelineCollector& other) {
  AQSIOS_CHECK_EQ(bucket_width_, other.bucket_width_)
      << "timelines with different bucket widths cannot be merged";
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size());
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i].Merge(other.buckets_[i]);
  }
}

const aqsios::RunningStats& TimelineCollector::Bucket(int i) const {
  AQSIOS_CHECK_GE(i, 0);
  AQSIOS_CHECK_LT(i, num_buckets());
  return buckets_[static_cast<size_t>(i)];
}

std::vector<double> TimelineCollector::MeanSeries() const {
  std::vector<double> series;
  series.reserve(buckets_.size());
  for (const auto& bucket : buckets_) series.push_back(bucket.Mean());
  return series;
}

std::vector<double> TimelineCollector::MaxSeries() const {
  std::vector<double> series;
  series.reserve(buckets_.size());
  for (const auto& bucket : buckets_) series.push_back(bucket.Max());
  return series;
}

}  // namespace aqsios::metrics
