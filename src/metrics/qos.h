// Per-tuple Quality-of-Service metric collection (paper §3–§4).
//
// For every tuple emitted at a query root, the engine records its response
// time R = D − A (Definition 1) and slowdown H (Definition 2 for
// single-stream tuples; §5.1.2 for composite tuples). The collector
// aggregates the average, maximum, and l2 norm (Definition 4), plus
// per-query-class statistics for the paper's Figure 11 analysis.

#ifndef AQSIOS_METRICS_QOS_H_
#define AQSIOS_METRICS_QOS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/stats.h"
#include "metrics/timeline.h"
#include "obs/histogram.h"

namespace aqsios::metrics {

/// Identifies a query class: operator cost class (cost = K·2^i) and the
/// selectivity decile of the query's filter operators.
struct ClassKey {
  int cost_class = 0;
  /// Selectivity rounded to a decile: round(selectivity * 10).
  int selectivity_decile = 10;

  friend bool operator<(const ClassKey& a, const ClassKey& b) {
    if (a.cost_class != b.cost_class) return a.cost_class < b.cost_class;
    return a.selectivity_decile < b.selectivity_decile;
  }
  friend bool operator==(const ClassKey& a, const ClassKey& b) {
    return a.cost_class == b.cost_class &&
           a.selectivity_decile == b.selectivity_decile;
  }
};

ClassKey MakeClassKey(int cost_class, double selectivity);

/// One emitted tuple, recorded verbatim when Options::track_outputs is set.
/// The (query, arrival_time) pair identifies the tuple across runs of the
/// same workload, so golden-trace tests can compare per-tuple response times
/// between engine configurations rather than only aggregate moments.
struct OutputRecord {
  int32_t query = 0;
  SimTime arrival_time = 0.0;
  SimTime response = 0.0;
  double slowdown = 0.0;
};

/// Aggregated QoS results of one simulation run.
struct QosSnapshot {
  int64_t tuples_emitted = 0;

  /// Source tuples shed at admission (QoS-aware load shedding,
  /// exec::ShedConfig). Shed tuples never reach the collector, so every
  /// response/slowdown statistic below is over *delivered* tuples only;
  /// these two report the loss explicitly. Both stay zero — and the report
  /// writer omits them — when shedding is disabled. Filled by the
  /// simulation entry points (core/dsms.cc) from the run counters: the
  /// collector itself never sees shed tuples, by design.
  int64_t shed_count = 0;
  double shed_ratio = 0.0;

  double avg_response = 0.0;  // seconds
  double max_response = 0.0;
  double avg_slowdown = 0.0;
  double max_slowdown = 0.0;
  /// l2 norm of slowdowns, sqrt(Σ H²) (Definition 4).
  double l2_slowdown = 0.0;
  /// Root-mean-square slowdown, l2 / sqrt(N); comparable across runs with
  /// different output counts.
  double rms_slowdown = 0.0;

  /// Slowdown quantiles from a log-bucketed histogram (obs/histogram.h):
  /// deterministic — a pure function of the recorded slowdowns, identical
  /// across thread counts and unaffected by any sampling seed.
  double p50_slowdown = 0.0;
  double p95_slowdown = 0.0;
  double p99_slowdown = 0.0;
  double p999_slowdown = 0.0;

  /// Per-class average slowdown, keyed by (cost class, selectivity decile).
  std::map<ClassKey, aqsios::RunningStats> per_class_slowdown;

  /// Per-query slowdown statistics (present when track_per_query is set).
  std::map<int32_t, aqsios::RunningStats> per_query_slowdown;

  /// Slowdown-over-virtual-time series (present when timeline_bucket > 0):
  /// per-bucket mean and max of the slowdowns of tuples *arriving* in the
  /// bucket, so series are comparable across policies.
  SimTime timeline_bucket = 0.0;
  std::vector<double> slowdown_timeline_mean;
  std::vector<double> slowdown_timeline_max;

  /// Every recorded output in emission order (present when track_outputs is
  /// set; empty otherwise). Memory grows with the output count — a test and
  /// debugging facility, not for sweep-scale runs.
  std::vector<OutputRecord> outputs;

  /// Jain's fairness index over the per-query mean slowdowns:
  /// (Σ x_i)² / (n · Σ x_i²) ∈ (0, 1]; 1 means every query experiences the
  /// same average slowdown. Captures the fairness dimension of §4 (LSF/BSD
  /// fair, HR/HNR biased). 0 when per-query tracking is off or empty.
  double JainFairnessIndex() const;

  std::string ToString() const;
};

/// Streaming collector; one per simulation run.
class QosCollector {
 public:
  struct Options {
    bool track_per_class = true;
    bool track_per_query = false;
    /// When > 0, collect the slowdown timeline with this bucket width
    /// (virtual seconds).
    SimTime timeline_bucket = 0.0;
    /// Bucket layout of the slowdown histogram behind the quantiles.
    /// Slowdowns are >= 1 by definition, so the first bucket edge sits at 1.
    obs::HistogramOptions slowdown_histogram{.min_value = 1.0};
    /// Outputs with arrival time before this are ignored (warm-up cut).
    SimTime warmup_until = 0.0;
    /// Keep every output tuple's (query, arrival, response, slowdown) in
    /// emission order for golden-trace comparisons (QosSnapshot::outputs).
    bool track_outputs = false;
  };

  QosCollector() : QosCollector(Options()) {}
  explicit QosCollector(const Options& options);

  /// Records one emitted tuple.
  void RecordOutput(int32_t query_id, int cost_class, double selectivity,
                    SimTime arrival_time, SimTime response, double slowdown);

  /// Merges a collector that recorded a disjoint subset of the run's
  /// outputs (one shard of a sharded simulation). `query_id_map[local]`
  /// translates the other collector's query ids into this collector's id
  /// space; pass an empty map for identity. Every aggregate merges exactly
  /// (histogram bucket counts add; RunningStats sums add; timeline buckets
  /// are keyed by arrival time), so merge-of-parts equals a single pass
  /// over the union — outputs_ alone is appended in merge-call order, not
  /// re-interleaved by emission time. Intended for merge-only collectors:
  /// do not RecordOutput on `this` after merging (the per-query class memo
  /// is not rebuilt).
  void MergeFrom(const QosCollector& other,
                 const std::vector<int32_t>& query_id_map);

  QosSnapshot Snapshot() const;

  int64_t tuples_emitted() const { return response_.count(); }

 private:
  Options options_;
  aqsios::RunningStats response_;
  aqsios::RunningStats slowdown_;
  obs::Histogram slowdown_histogram_;
  std::map<ClassKey, aqsios::RunningStats> per_class_slowdown_;
  /// Per-query shortcut into per_class_slowdown_. A query's (cost class,
  /// selectivity) — and hence its ClassKey — never changes mid-run, and
  /// std::map nodes are address-stable, so after the first emission each
  /// query points straight at its class accumulator instead of walking the
  /// map on every output tuple.
  std::vector<aqsios::RunningStats*> per_class_memo_;
  std::map<int32_t, aqsios::RunningStats> per_query_slowdown_;
  std::optional<TimelineCollector> timeline_;
  std::vector<OutputRecord> outputs_;
};

}  // namespace aqsios::metrics

#endif  // AQSIOS_METRICS_QOS_H_
