// Time-bucketed QoS series.
//
// Aggregate metrics hide the transient behaviour that bursty On/Off arrivals
// create: slowdown accumulates during a burst and drains afterwards, and
// policies differ most near the peaks. The TimelineCollector buckets
// per-tuple observations by *arrival* time (so buckets are comparable across
// policies — every policy sees the same arrivals) and keeps full
// RunningStats per bucket.

#ifndef AQSIOS_METRICS_TIMELINE_H_
#define AQSIOS_METRICS_TIMELINE_H_

#include <vector>

#include "common/sim_time.h"
#include "common/stats.h"

namespace aqsios::metrics {

class TimelineCollector {
 public:
  /// Hard cap on allocated buckets: one pathological arrival time must not
  /// allocate an unbounded dense series. Observations past the cap collapse
  /// into the last bucket (see Record).
  static constexpr int kMaxBuckets = 1 << 16;

  /// Buckets cover [k·width, (k+1)·width) in virtual seconds.
  explicit TimelineCollector(SimTime bucket_width);

  /// Records one observation for the bucket of `arrival_time`. Out-of-order
  /// arrival times are fine (buckets are keyed by time, not call order);
  /// times at or past kMaxBuckets·width clamp into the last bucket.
  void Record(SimTime arrival_time, double value);

  /// Merges another collector with the same bucket width: bucket i absorbs
  /// the other's bucket i (exact — buckets are keyed by arrival time, so a
  /// run split across collectors merges to the single-pass series).
  void Merge(const TimelineCollector& other);

  SimTime bucket_width() const { return bucket_width_; }

  /// Number of buckets (index of the last populated bucket + 1).
  int num_buckets() const { return static_cast<int>(buckets_.size()); }

  /// Start time of bucket i.
  SimTime BucketStart(int i) const { return bucket_width_ * i; }

  /// Stats of bucket i (empty RunningStats when nothing arrived in it).
  const aqsios::RunningStats& Bucket(int i) const;

  /// Mean value per bucket, 0 for empty buckets (dense series for plots).
  std::vector<double> MeanSeries() const;

  /// Max value per bucket.
  std::vector<double> MaxSeries() const;

 private:
  SimTime bucket_width_;
  std::vector<aqsios::RunningStats> buckets_;
};

}  // namespace aqsios::metrics

#endif  // AQSIOS_METRICS_TIMELINE_H_
