#include "metrics/qos.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace aqsios::metrics {

ClassKey MakeClassKey(int cost_class, double selectivity) {
  ClassKey key;
  key.cost_class = cost_class;
  key.selectivity_decile =
      static_cast<int>(std::lround(selectivity * 10.0));
  return key;
}

std::string QosSnapshot::ToString() const {
  std::ostringstream os;
  os << "emitted=" << tuples_emitted
     << " avg_response=" << SimTimeToMillis(avg_response) << "ms"
     << " avg_slowdown=" << avg_slowdown << " max_slowdown=" << max_slowdown
     << " l2_slowdown=" << l2_slowdown << " rms_slowdown=" << rms_slowdown;
  return os.str();
}

QosCollector::QosCollector(const Options& options)
    : options_(options), slowdown_histogram_(options.slowdown_histogram) {
  if (options.timeline_bucket > 0.0) {
    timeline_.emplace(options.timeline_bucket);
  }
}

double QosSnapshot::JainFairnessIndex() const {
  if (per_query_slowdown.empty()) return 0.0;
  double sum = 0.0;
  double sum_squares = 0.0;
  int64_t n = 0;
  for (const auto& [query, stats] : per_query_slowdown) {
    if (stats.count() == 0) continue;
    const double mean = stats.Mean();
    sum += mean;
    sum_squares += mean * mean;
    ++n;
  }
  if (n == 0 || sum_squares == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(n) * sum_squares);
}

void QosCollector::RecordOutput(int32_t query_id, int cost_class,
                                double selectivity, SimTime arrival_time,
                                SimTime response, double slowdown) {
  AQSIOS_DCHECK_GE(response, 0.0);
  AQSIOS_DCHECK_GE(slowdown, 1.0 - 1e-9)
      << "slowdown below 1 implies response below ideal processing time";
  if (arrival_time < options_.warmup_until) return;
  response_.Add(response);
  slowdown_.Add(slowdown);
  slowdown_histogram_.Add(slowdown);
  if (options_.track_per_class) {
    if (static_cast<size_t>(query_id) >= per_class_memo_.size()) {
      per_class_memo_.resize(static_cast<size_t>(query_id) + 1, nullptr);
    }
    aqsios::RunningStats*& stats =
        per_class_memo_[static_cast<size_t>(query_id)];
    if (stats == nullptr) {
      stats = &per_class_slowdown_[MakeClassKey(cost_class, selectivity)];
    }
    stats->Add(slowdown);
  }
  if (options_.track_per_query) {
    per_query_slowdown_[query_id].Add(slowdown);
  }
  if (timeline_.has_value()) {
    timeline_->Record(arrival_time, slowdown);
  }
  if (options_.track_outputs) {
    outputs_.push_back({query_id, arrival_time, response, slowdown});
  }
}

void QosCollector::MergeFrom(const QosCollector& other,
                             const std::vector<int32_t>& query_id_map) {
  const auto remap = [&query_id_map](int32_t query) {
    if (query_id_map.empty()) return query;
    AQSIOS_CHECK_LT(static_cast<size_t>(query), query_id_map.size());
    return query_id_map[static_cast<size_t>(query)];
  };
  response_.Merge(other.response_);
  slowdown_.Merge(other.slowdown_);
  slowdown_histogram_.Merge(other.slowdown_histogram_);
  // Class keys are global (cost class, selectivity decile) — no remap.
  for (const auto& [key, stats] : other.per_class_slowdown_) {
    per_class_slowdown_[key].Merge(stats);
  }
  for (const auto& [query, stats] : other.per_query_slowdown_) {
    per_query_slowdown_[remap(query)].Merge(stats);
  }
  if (timeline_.has_value() && other.timeline_.has_value()) {
    timeline_->Merge(*other.timeline_);
  }
  outputs_.reserve(outputs_.size() + other.outputs_.size());
  for (OutputRecord record : other.outputs_) {
    record.query = remap(record.query);
    outputs_.push_back(record);
  }
}

QosSnapshot QosCollector::Snapshot() const {
  QosSnapshot snap;
  snap.tuples_emitted = response_.count();
  snap.avg_response = response_.Mean();
  snap.max_response = response_.Max();
  snap.avg_slowdown = slowdown_.Mean();
  snap.max_slowdown = slowdown_.Max();
  snap.l2_slowdown = slowdown_.L2Norm();
  snap.rms_slowdown = slowdown_.Rms();
  snap.p50_slowdown = slowdown_histogram_.Quantile(0.5);
  snap.p95_slowdown = slowdown_histogram_.Quantile(0.95);
  snap.p99_slowdown = slowdown_histogram_.Quantile(0.99);
  snap.p999_slowdown = slowdown_histogram_.Quantile(0.999);
  snap.per_class_slowdown = per_class_slowdown_;
  snap.per_query_slowdown = per_query_slowdown_;
  if (timeline_.has_value()) {
    snap.timeline_bucket = timeline_->bucket_width();
    snap.slowdown_timeline_mean = timeline_->MeanSeries();
    snap.slowdown_timeline_max = timeline_->MaxSeries();
  }
  snap.outputs = outputs_;
  return snap;
}

}  // namespace aqsios::metrics
