#include "stream/tuple.h"

namespace aqsios::stream {

SimTime ArrivalTable::MeanInterArrival() const {
  if (arrivals.size() < 2) return 0.0;
  const SimTime span = arrivals.back().time - arrivals.front().time;
  return span / static_cast<double>(arrivals.size() - 1);
}

SimTime ArrivalTable::MeanInterArrival(StreamId stream) const {
  SimTime first = 0.0;
  SimTime last = 0.0;
  int64_t count = 0;
  for (const Arrival& a : arrivals) {
    if (a.stream != stream) continue;
    if (count == 0) first = a.time;
    last = a.time;
    ++count;
  }
  if (count < 2) return 0.0;
  return (last - first) / static_cast<double>(count - 1);
}

SimTime ArrivalTable::Horizon() const {
  return arrivals.empty() ? 0.0 : arrivals.back().time;
}

}  // namespace aqsios::stream
