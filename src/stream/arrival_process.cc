#include "stream/arrival_process.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace aqsios::stream {

PoissonArrivalProcess::PoissonArrivalProcess(double rate, uint64_t seed)
    : rate_(rate), rng_(seed) {
  AQSIOS_CHECK_GT(rate, 0.0);
}

SimTime PoissonArrivalProcess::NextArrivalTime() {
  now_ += rng_.Exponential(rate_);
  return now_;
}

DeterministicArrivalProcess::DeterministicArrivalProcess(SimTime interval,
                                                         SimTime start)
    : interval_(interval), next_(start) {
  AQSIOS_CHECK_GT(interval, 0.0);
}

SimTime DeterministicArrivalProcess::NextArrivalTime() {
  const SimTime t = next_;
  next_ += interval_;
  return t;
}

OnOffArrivalProcess::OnOffArrivalProcess(const OnOffConfig& config,
                                         uint64_t seed)
    : config_(config), rng_(seed) {
  AQSIOS_CHECK_GT(config.on_rate, 0.0);
  AQSIOS_CHECK_GT(config.mean_on_duration, 0.0);
  AQSIOS_CHECK_GT(config.mean_off_duration, 0.0);
}

SimTime OnOffArrivalProcess::NextArrivalTime() {
  while (true) {
    if (!in_on_period_) {
      // Enter the next ON period after an exponential OFF sojourn.
      now_ += rng_.Exponential(1.0 / config_.mean_off_duration);
      on_period_end_ = now_ + rng_.Exponential(1.0 / config_.mean_on_duration);
      in_on_period_ = true;
    }
    const SimTime candidate = now_ + rng_.Exponential(config_.on_rate);
    if (candidate <= on_period_end_) {
      now_ = candidate;
      return now_;
    }
    // ON period expired before the candidate arrival: move to its end and
    // fall into the OFF branch.
    now_ = on_period_end_;
    in_on_period_ = false;
  }
}

TraceArrivalProcess::TraceArrivalProcess(std::vector<SimTime> timestamps)
    : timestamps_(std::move(timestamps)) {
  for (size_t i = 1; i < timestamps_.size(); ++i) {
    AQSIOS_CHECK_GE(timestamps_[i], timestamps_[i - 1])
        << "trace timestamps must be non-decreasing (index " << i << ")";
  }
}

SimTime TraceArrivalProcess::NextArrivalTime() {
  if (next_index_ >= static_cast<int64_t>(timestamps_.size())) {
    return std::numeric_limits<SimTime>::infinity();
  }
  return timestamps_[static_cast<size_t>(next_index_++)];
}

std::vector<Arrival> GenerateArrivals(ArrivalProcess& process, StreamId stream,
                                      int64_t count, uint64_t seed,
                                      int32_t num_join_keys) {
  AQSIOS_CHECK_GE(count, 0);
  AQSIOS_CHECK_GT(num_join_keys, 0);
  Rng rng(seed);
  std::vector<Arrival> result;
  result.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    Arrival a;
    a.stream = stream;
    a.time = process.NextArrivalTime();
    if (a.time == std::numeric_limits<SimTime>::infinity()) break;
    // (0, 100]: matches the paper's uniform [1,100] attribute while keeping
    // "attribute <= selectivity * 100" an exact selectivity realization.
    a.attribute = 100.0 - rng.Uniform(0.0, 100.0);
    a.join_key = static_cast<int32_t>(rng.UniformInt(0, num_join_keys - 1));
    result.push_back(a);
  }
  return result;
}

ArrivalTable MergeArrivalTables(std::vector<std::vector<Arrival>> per_stream) {
  ArrivalTable table;
  size_t total = 0;
  for (const auto& v : per_stream) total += v.size();
  table.arrivals.reserve(total);
  for (auto& v : per_stream) {
    table.arrivals.insert(table.arrivals.end(), v.begin(), v.end());
  }
  std::stable_sort(table.arrivals.begin(), table.arrivals.end(),
                   [](const Arrival& a, const Arrival& b) {
                     return a.time < b.time;
                   });
  for (size_t i = 0; i < table.arrivals.size(); ++i) {
    table.arrivals[i].id = static_cast<ArrivalId>(i);
  }
  return table;
}

}  // namespace aqsios::stream
