// Tuple and stream-arrival records.
//
// The simulator separates a stream *arrival* (one physical tuple entering
// the DSMS, fanned out to every query subscribed to that stream) from the
// per-query pending work items that reference it.

#ifndef AQSIOS_STREAM_TUPLE_H_
#define AQSIOS_STREAM_TUPLE_H_

#include <cstdint>
#include <vector>

#include "common/sim_time.h"

namespace aqsios::stream {

/// Global identifier of an arrival. In a whole-workload table ids equal the
/// table index; a shard's sub-table keeps the global ids of the arrivals
/// routed to it (so frozen per-arrival draws and trace ids are
/// shard-invariant) while queue entries index into the sub-table.
using ArrivalId = int64_t;

/// Identifier of a data stream within a workload.
using StreamId = int32_t;

/// One physical tuple arriving on a stream.
///
/// Following the paper's testbed (§8), each tuple carries a synthetic
/// attribute uniform in [1, 100] used to realize operator selectivities, and
/// a join key used by windowed joins.
struct Arrival {
  ArrivalId id = 0;
  StreamId stream = 0;
  /// Arrival timestamp A_i (seconds).
  SimTime time = 0.0;
  /// Synthetic selectivity-control attribute, uniform real in (0, 100].
  double attribute = 0.0;
  /// Join key for windowed joins.
  int32_t join_key = 0;
};

/// An arrival table: arrivals of all streams merged in non-decreasing time
/// order. In a full workload table Arrival::id equals the index into
/// `arrivals`; shard sub-tables preserve global ids (see ArrivalId).
struct ArrivalTable {
  std::vector<Arrival> arrivals;

  int64_t size() const { return static_cast<int64_t>(arrivals.size()); }
  bool empty() const { return arrivals.empty(); }

  /// Mean inter-arrival time across the whole table; 0 if fewer than two
  /// arrivals.
  SimTime MeanInterArrival() const;

  /// Mean inter-arrival time of one stream's arrivals; 0 if fewer than two.
  SimTime MeanInterArrival(StreamId stream) const;

  /// Total simulated horizon (time of last arrival); 0 when empty.
  SimTime Horizon() const;
};

}  // namespace aqsios::stream

#endif  // AQSIOS_STREAM_TUPLE_H_
