// Trace file I/O and the synthetic LBL-style trace generator.
//
// The paper's single-stream experiments replay the LBL-PKT-4 packet trace
// (an hour of wide-area traffic). That trace is not redistributable here, so
// GenerateOnOffTrace produces a synthetic stand-in with the same relevant
// property — bursty On/Off arrivals — using the MMPP process of
// stream/arrival_process.h. Traces round-trip through a plain text format so
// experiments can also be run against *real* trace timestamps if available:
//
//   # aqsios-trace v1
//   # any number of comment lines
//   <timestamp-seconds> per line, non-decreasing
//
// A real LBL-PKT-4 file (whitespace-separated "timestamp ..." lines) can be
// converted with ReadTimestampColumn.

#ifndef AQSIOS_STREAM_TRACE_H_
#define AQSIOS_STREAM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "stream/arrival_process.h"

namespace aqsios::stream {

/// Generates `count` bursty On/Off arrival timestamps (see OnOffConfig).
std::vector<SimTime> GenerateOnOffTrace(const OnOffConfig& config,
                                        int64_t count, uint64_t seed);

/// Writes timestamps in the aqsios-trace text format.
Status WriteTrace(const std::string& path,
                  const std::vector<SimTime>& timestamps);

/// Reads an aqsios-trace file. Fails if timestamps decrease.
StatusOr<std::vector<SimTime>> ReadTrace(const std::string& path);

/// Reads the first whitespace-separated column of every non-comment line as
/// a timestamp (e.g. an ita.ee.lbl.gov packet trace). Timestamps are shifted
/// so the first arrival is at 0.
StatusOr<std::vector<SimTime>> ReadTimestampColumn(const std::string& path);

/// Summary statistics of a trace, used to characterize burstiness.
struct TraceStats {
  int64_t count = 0;
  SimTime duration = 0.0;
  SimTime mean_inter_arrival = 0.0;
  /// Coefficient of variation of inter-arrival times (1 for Poisson; On/Off
  /// traffic is substantially above 1).
  double inter_arrival_cv = 0.0;
  double max_inter_arrival = 0.0;
};

TraceStats ComputeTraceStats(const std::vector<SimTime>& timestamps);

}  // namespace aqsios::stream

#endif  // AQSIOS_STREAM_TRACE_H_
