// Mid-run statistics drift: the workload scenario where online calibration
// pays off (ROADMAP item 2, docs/calibration.md).
//
// A drift scenario multiplies the per-tuple processing cost and/or the
// operator selectivities of a *subset of queries* (ids with
// `id % modulo == phase`) by a factor that steps or ramps at a configured
// virtual time. Selecting by query id — not by stream — matters because the
// single-stream workloads attach every query to stream 0: per-stream drift
// would scale all queries uniformly and leave every policy's *relative*
// priorities intact, which is exactly the case where static priorities stay
// optimal and there is nothing to adapt to.
//
// Determinism contract: the factor for a tuple is a pure function of
// (query id, the tuple's arrival time) — never of the engine clock at
// processing time — so filter outcomes and clock charges are identical
// across policies, repetitions, and shard layouts. A factor of exactly 1.0
// multiplies bit-exactly (IEEE 754), so `enabled = false` (or a query
// outside the drifting subset before the step) perturbs nothing.

#ifndef AQSIOS_STREAM_DRIFT_H_
#define AQSIOS_STREAM_DRIFT_H_

#include <cstdint>
#include <vector>

#include "common/sim_time.h"

namespace aqsios::stream {

struct DriftConfig {
  bool enabled = false;
  /// Queries with `id % modulo == phase` drift; the rest stay static.
  int modulo = 2;
  int phase = 0;
  /// Optional explicit membership override, indexed by query id; when
  /// non-empty it replaces the modulo rule. The sharded runner fills this
  /// per shard from the *global* ids so `modulo` keeps its whole-population
  /// meaning even though each engine sees local dense ids.
  std::vector<uint8_t> applies;
  /// Virtual time the drift begins.
  SimTime step_time = 0.0;
  /// Linear ramp duration from factor 1 to the target (0 = hard step).
  SimTime ramp_seconds = 0.0;
  /// Target multiplier on the drifting queries' per-tuple cost (the engine
  /// scales every clock charge of such a tuple — and the tuple's true ideal
  /// time, so reported slowdowns stay honest stretch).
  double cost_factor = 1.0;
  /// Target multiplier on the drifting queries' operator selectivities.
  double selectivity_factor = 1.0;

  bool AppliesTo(int query) const {
    if (!enabled) return false;
    if (!applies.empty()) {
      return query >= 0 && query < static_cast<int>(applies.size()) &&
             applies[static_cast<size_t>(query)] != 0;
    }
    return modulo > 0 && query % modulo == phase;
  }

  /// Ramp progress at time t: 0 before the step, linear over the ramp, 1
  /// after (a zero ramp is a hard step).
  double Progress(SimTime t) const {
    if (t <= step_time) return 0.0;
    if (ramp_seconds <= 0.0 || t >= step_time + ramp_seconds) return 1.0;
    return (t - step_time) / ramp_seconds;
  }

  double CostFactorAt(int query, SimTime t) const {
    if (!AppliesTo(query)) return 1.0;
    return 1.0 + (cost_factor - 1.0) * Progress(t);
  }

  double SelectivityFactorAt(int query, SimTime t) const {
    if (!AppliesTo(query)) return 1.0;
    return 1.0 + (selectivity_factor - 1.0) * Progress(t);
  }
};

}  // namespace aqsios::stream

#endif  // AQSIOS_STREAM_DRIFT_H_
