#include "stream/trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace aqsios::stream {

namespace {
constexpr char kTraceHeader[] = "# aqsios-trace v1";
}  // namespace

std::vector<SimTime> GenerateOnOffTrace(const OnOffConfig& config,
                                        int64_t count, uint64_t seed) {
  OnOffArrivalProcess process(config, seed);
  std::vector<SimTime> timestamps;
  timestamps.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    timestamps.push_back(process.NextArrivalTime());
  }
  return timestamps;
}

Status WriteTrace(const std::string& path,
                  const std::vector<SimTime>& timestamps) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open trace file for writing: " + path);
  }
  out << kTraceHeader << "\n";
  out << "# count=" << timestamps.size() << "\n";
  out.precision(12);
  for (SimTime t : timestamps) {
    out << t << "\n";
  }
  if (!out) {
    return Status::IoError("write failure on trace file: " + path);
  }
  return Status::Ok();
}

StatusOr<std::vector<SimTime>> ReadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  std::vector<SimTime> timestamps;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    SimTime t = 0.0;
    if (!(row >> t)) {
      return Status::InvalidArgument("bad timestamp at " + path + ":" +
                                     std::to_string(line_number));
    }
    if (!timestamps.empty() && t < timestamps.back()) {
      return Status::InvalidArgument("decreasing timestamp at " + path + ":" +
                                     std::to_string(line_number));
    }
    timestamps.push_back(t);
  }
  return timestamps;
}

StatusOr<std::vector<SimTime>> ReadTimestampColumn(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  std::vector<SimTime> timestamps;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    SimTime t = 0.0;
    if (!(row >> t)) {
      return Status::InvalidArgument("bad timestamp at " + path + ":" +
                                     std::to_string(line_number));
    }
    timestamps.push_back(t);
  }
  if (timestamps.empty()) return timestamps;
  // Packet traces may interleave several flows; enforce global time order and
  // rebase to zero.
  std::sort(timestamps.begin(), timestamps.end());
  const SimTime base = timestamps.front();
  for (SimTime& t : timestamps) t -= base;
  return timestamps;
}

TraceStats ComputeTraceStats(const std::vector<SimTime>& timestamps) {
  TraceStats stats;
  stats.count = static_cast<int64_t>(timestamps.size());
  if (timestamps.size() < 2) return stats;
  stats.duration = timestamps.back() - timestamps.front();
  const int64_t gaps = stats.count - 1;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t i = 1; i < timestamps.size(); ++i) {
    const double gap = timestamps[i] - timestamps[i - 1];
    sum += gap;
    sum_sq += gap * gap;
    stats.max_inter_arrival = std::max(stats.max_inter_arrival, gap);
  }
  stats.mean_inter_arrival = sum / static_cast<double>(gaps);
  const double mean = stats.mean_inter_arrival;
  const double variance =
      std::max(0.0, sum_sq / static_cast<double>(gaps) - mean * mean);
  stats.inter_arrival_cv = mean > 0.0 ? std::sqrt(variance) / mean : 0.0;
  return stats;
}

}  // namespace aqsios::stream
