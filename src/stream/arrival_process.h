// Stochastic arrival processes generating stream timestamps.
//
// The paper drives its single-stream experiments with the LBL-PKT-4 packet
// trace, used purely as a realistic bursty (On/Off) arrival pattern, and its
// multi-stream experiments with Poisson arrivals. We implement:
//
//  * PoissonArrivalProcess       — exponential inter-arrivals;
//  * DeterministicArrivalProcess — fixed spacing (useful in tests);
//  * OnOffArrivalProcess         — Markov-modulated Poisson process
//                                  (exponential ON/OFF sojourn times, Poisson
//                                  arrivals during ON, silence during OFF):
//                                  the standard generative model for LBL-style
//                                  wide-area On/Off traffic (see DESIGN.md
//                                  substitution table);
//  * TraceArrivalProcess         — replays explicit timestamps (e.g. from a
//                                  trace file, see stream/trace.h).

#ifndef AQSIOS_STREAM_ARRIVAL_PROCESS_H_
#define AQSIOS_STREAM_ARRIVAL_PROCESS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "stream/tuple.h"

namespace aqsios::stream {

/// Produces a monotonically non-decreasing sequence of arrival timestamps.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Returns the next absolute arrival time (seconds). Values are
  /// non-decreasing across calls.
  virtual SimTime NextArrivalTime() = 0;
};

/// Poisson arrivals with the given mean rate (arrivals per second).
class PoissonArrivalProcess : public ArrivalProcess {
 public:
  PoissonArrivalProcess(double rate, uint64_t seed);

  SimTime NextArrivalTime() override;

 private:
  double rate_;
  Rng rng_;
  SimTime now_ = 0.0;
};

/// Fixed-interval arrivals starting at `start`.
class DeterministicArrivalProcess : public ArrivalProcess {
 public:
  explicit DeterministicArrivalProcess(SimTime interval, SimTime start = 0.0);

  SimTime NextArrivalTime() override;

 private:
  SimTime interval_;
  SimTime next_;
};

/// Configuration of the On/Off (MMPP-2) arrival process.
struct OnOffConfig {
  /// Arrival rate while in the ON state (arrivals/second).
  double on_rate = 1000.0;
  /// Mean sojourn time in the ON state (seconds).
  double mean_on_duration = 0.5;
  /// Mean sojourn time in the OFF state (seconds).
  double mean_off_duration = 0.5;

  /// Long-run mean arrival rate implied by this configuration.
  double MeanRate() const {
    return on_rate * mean_on_duration / (mean_on_duration + mean_off_duration);
  }
};

/// Markov-modulated Poisson process: alternating exponentially distributed
/// ON and OFF periods; Poisson arrivals at `on_rate` during ON periods and no
/// arrivals during OFF periods. Stands in for the LBL-PKT-4 trace's bursty
/// On/Off wide-area traffic.
class OnOffArrivalProcess : public ArrivalProcess {
 public:
  OnOffArrivalProcess(const OnOffConfig& config, uint64_t seed);

  SimTime NextArrivalTime() override;

 private:
  OnOffConfig config_;
  Rng rng_;
  SimTime now_ = 0.0;
  /// End of the current ON period; arrivals past it roll into the next one.
  SimTime on_period_end_ = 0.0;
  bool in_on_period_ = false;
};

/// Replays a fixed vector of timestamps (must be non-decreasing). After the
/// trace is exhausted, returns +infinity.
class TraceArrivalProcess : public ArrivalProcess {
 public:
  explicit TraceArrivalProcess(std::vector<SimTime> timestamps);

  SimTime NextArrivalTime() override;

  int64_t remaining() const {
    return static_cast<int64_t>(timestamps_.size()) - next_index_;
  }

 private:
  std::vector<SimTime> timestamps_;
  int64_t next_index_ = 0;
};

/// Draws `count` arrivals from `process` for stream `stream`, assigning each
/// tuple a uniform (0, 100] attribute and a join key uniform in
/// [0, num_join_keys). Arrival ids are assigned by the caller when tables of
/// several streams are merged (see MergeArrivalTables).
std::vector<Arrival> GenerateArrivals(ArrivalProcess& process, StreamId stream,
                                      int64_t count, uint64_t seed,
                                      int32_t num_join_keys = 100);

/// Merges per-stream arrival vectors into one time-ordered table and assigns
/// dense ArrivalIds.
ArrivalTable MergeArrivalTables(std::vector<std::vector<Arrival>> per_stream);

}  // namespace aqsios::stream

#endif  // AQSIOS_STREAM_ARRIVAL_PROCESS_H_
