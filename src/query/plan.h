// The global multi-query plan hosted by the DSMS.
//
// Multiple queries with common sub-expressions can be merged so the shared
// prefix operator executes once per tuple (paper §7). A SharingGroup records
// which queries share their leaf operator; everything else about a member
// query is described by its own QuerySpec (whose chain *includes* the shared
// operator as its first element — the engine deduplicates execution).

#ifndef AQSIOS_QUERY_PLAN_H_
#define AQSIOS_QUERY_PLAN_H_

#include <vector>

#include "common/check.h"
#include "query/query.h"
#include "stream/tuple.h"

namespace aqsios::query {

/// A set of single-stream queries whose identical leaf operator is executed
/// once per input tuple.
struct SharingGroup {
  int id = 0;
  std::vector<QueryId> members;
};

/// Immutable collection of compiled queries plus sharing structure.
class GlobalPlan {
 public:
  GlobalPlan() = default;
  GlobalPlan(std::vector<CompiledQuery> queries,
             std::vector<SharingGroup> sharing_groups, int num_streams);

  GlobalPlan(GlobalPlan&&) = default;
  GlobalPlan& operator=(GlobalPlan&&) = default;
  GlobalPlan(const GlobalPlan&) = default;
  GlobalPlan& operator=(const GlobalPlan&) = default;

  const std::vector<CompiledQuery>& queries() const { return queries_; }
  // Defined inline: looked up per operator invocation on the engine's hot
  // path.
  const CompiledQuery& query(QueryId id) const {
    AQSIOS_DCHECK_GE(id, 0);
    AQSIOS_DCHECK_LT(id, num_queries());
    return queries_[static_cast<size_t>(id)];
  }
  int num_queries() const { return static_cast<int>(queries_.size()); }

  const std::vector<SharingGroup>& sharing_groups() const {
    return sharing_groups_;
  }
  /// Sharing group index of a query, or -1 if it is standalone.
  int SharingGroupOf(QueryId id) const {
    AQSIOS_DCHECK_GE(id, 0);
    AQSIOS_DCHECK_LT(id, num_queries());
    return group_of_query_[static_cast<size_t>(id)];
  }

  int num_streams() const { return num_streams_; }

  /// Smallest operator cost across the whole plan (seconds); the paper's
  /// unit cost for scheduling-overhead operations (§9.2).
  SimTime MinOperatorCost() const;

  /// Expected total work (seconds) triggered by one arrival on `stream`,
  /// accounting for shared leaf operators being executed once per group.
  SimTime ExpectedWorkPerArrival(stream::StreamId stream) const;

  /// Same, under the operators' actual execution-time selectivities (what
  /// the system really incurs when assumed statistics are stale).
  SimTime ActualExpectedWorkPerArrival(stream::StreamId stream) const;

  /// Expected number of tuples emitted (across all queries) per arrival on
  /// `stream`.
  double ExpectedOutputsPerArrival(stream::StreamId stream) const;

 private:
  std::vector<CompiledQuery> queries_;
  std::vector<SharingGroup> sharing_groups_;
  std::vector<int> group_of_query_;
  int num_streams_ = 1;
};

}  // namespace aqsios::query

#endif  // AQSIOS_QUERY_PLAN_H_
